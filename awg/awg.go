// Package awg is the public API of the AWG simulator, a reproduction of
// "Independent Forward Progress of Work-groups" (Duțu et al., ISCA 2020).
//
// It composes the internal substrates — discrete-event engine, memory
// hierarchy, GPU execution model, SyncMon, Command Processor — into single
// simulation runs:
//
//	res, err := awg.Run(awg.Config{Benchmark: "SPM_G", Policy: "AWG"})
//
// runs the global-scope spin-mutex benchmark under the Autonomous
// Work-Groups architecture on the paper's Table 1 machine and reports
// runtime, scheduling activity, and synchronization characterization.
// Setting Oversubscribe reproduces the paper's dynamic resource-loss
// experiment: one CU is preempted away 50 µs into the kernel.
package awg

import (
	"fmt"
	"strconv"
	"strings"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/policy"
)

// Result re-exports the run result type.
type Result = metrics.Result

// Config describes one simulation run. Zero-valued fields take the paper's
// baseline (Table 1 machine, 32 WGs of 64 work-items, default policy
// parameters).
type Config struct {
	// Benchmark names the kernel: one of Benchmarks().
	Benchmark string
	// Policy names the scheduling architecture: one of Policies(), or a
	// parameterized form such as "Sleep-16k" / "Timeout-50k".
	Policy string

	// GPU/Mem override the Table 1 machine when non-zero.
	GPU gpu.Config
	Mem mem.Config

	// Params override the launch shape when NumWGs is non-zero. Groups and
	// WGs-per-group must match the machine (Groups = NumCUs, WGsPerGroup =
	// MaxWGsPerCU) for the local-scope benchmarks to be meaningful.
	Params kernels.Params

	// Oversubscribe enables the dynamic resource-loss experiment: one CU is
	// preempted at PreemptAt (default 100k cycles = 50 µs at 2 GHz).
	Oversubscribe bool
	PreemptAt     event.Cycle

	// SkipVerify disables the post-run functional validation (used only by
	// experiments that expect a deadlock).
	SkipVerify bool
}

// Benchmarks lists the twelve paper benchmarks in figure order.
func Benchmarks() []string { return kernels.All() }

// AppBenchmarks lists the application workloads (hash table, bank account).
func AppBenchmarks() []string { return kernels.Apps() }

// ExtensionBenchmarks lists the primitives added beyond the paper's suite
// (counting semaphore, reader-writer lock).
func ExtensionBenchmarks() []string { return kernels.Extensions() }

// Policies lists the canonical policy names in the paper's design-space
// order.
func Policies() []string {
	return []string{
		"Baseline", "Sleep", "Timeout",
		"MonRS-All", "MonR-All", "MonNR-All", "MonNR-One",
		"AWG", "MinResume",
	}
}

// NewPolicy builds a scheduling policy from its name. Sleep and Timeout
// accept an interval suffix in thousands of cycles: "Sleep-16k",
// "Timeout-50k". Bare "Sleep" and "Timeout" use 16k and 20k respectively.
func NewPolicy(name string) (gpu.Policy, error) {
	switch name {
	case "Baseline":
		return policy.NewBaseline(), nil
	case "Sleep":
		return policy.NewSleep(name, 16_000), nil
	case "Timeout":
		return policy.NewTimeout(name, 20_000), nil
	case "MonRS-All":
		return policy.NewMonRSAll(), nil
	case "MonR-All":
		return policy.NewMonRAll(), nil
	case "MonNR-All":
		return policy.NewMonNRAll(), nil
	case "MonNR-One":
		return policy.NewMonNROne(), nil
	case "AWG":
		return policy.NewAWG(), nil
	case "MinResume":
		return policy.NewMinResume(), nil
	case "AWG-nostall":
		return policy.NewAWGNoStallPredict(), nil
	case "AWG-nopredict":
		return policy.NewAWGNoResumePredict(), nil
	case "AWG-nocache":
		// AWG with the SyncMon condition cache disabled: every waiting
		// condition virtualizes through the Monitor Log and the CP — the
		// configuration Figure 13 sizes the CP structures under.
		return policy.NewAWGNoCache(), nil
	}
	if k, ok := strings.CutPrefix(name, "Sleep-"); ok {
		iv, err := parseK(k)
		if err != nil {
			return nil, fmt.Errorf("awg: bad sleep interval %q: %w", name, err)
		}
		return policy.NewSleep(name, iv), nil
	}
	if k, ok := strings.CutPrefix(name, "Timeout-"); ok {
		iv, err := parseK(k)
		if err != nil {
			return nil, fmt.Errorf("awg: bad timeout interval %q: %w", name, err)
		}
		return policy.NewTimeout(name, iv), nil
	}
	return nil, fmt.Errorf("awg: unknown policy %q", name)
}

// parseK parses "16k" or "500" into cycles.
func parseK(s string) (event.Cycle, error) {
	mult := event.Cycle(1)
	if k, ok := strings.CutSuffix(s, "k"); ok {
		mult = 1000
		s = k
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("zero interval")
	}
	return event.Cycle(n) * mult, nil
}

// fill derives defaults.
func (c *Config) fill() error {
	if c.Benchmark == "" {
		return fmt.Errorf("awg: no benchmark named")
	}
	if c.Policy == "" {
		return fmt.Errorf("awg: no policy named")
	}
	if c.GPU.NumCUs == 0 {
		c.GPU = gpu.DefaultConfig()
	}
	if c.Mem.LineSize == 0 {
		c.Mem = mem.DefaultConfig()
	}
	if c.Params.NumWGs == 0 {
		c.Params = kernels.DefaultParams()
		c.Params.Groups = c.GPU.NumCUs
		c.Params.NumWGs = c.GPU.NumCUs * c.GPU.MaxWGsPerCU
	}
	if c.PreemptAt == 0 {
		c.PreemptAt = 100_000 // 50 µs at 2 GHz
	}
	return nil
}

// Run executes one simulation and returns its result. Unless SkipVerify is
// set, a completed run is functionally validated (lock counts, conserved
// balances, barrier epochs); a validation failure is returned as an error.
// A deadlocked run is not an error — Result.Deadlocked reports it.
func Run(cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	bench, err := kernels.Build(cfg.Benchmark, cfg.Params)
	if err != nil {
		return Result{}, err
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return Result{}, err
	}
	m, err := gpu.NewMachine(cfg.GPU, cfg.Mem, &bench.Spec, pol)
	if err != nil {
		return Result{}, err
	}
	if bench.Init != nil {
		bench.Init(m.Mem().Write)
	}
	if cfg.Oversubscribe {
		last := gpu.CUID(cfg.GPU.NumCUs - 1)
		m.Engine().At(cfg.PreemptAt, func() { m.PreemptCU(last) })
	}
	res := m.Run()
	if !res.Deadlocked && !cfg.SkipVerify && bench.Verify != nil {
		if verr := bench.Verify(m.Mem().Read); verr != nil {
			return res, fmt.Errorf("awg: %s under %s completed but failed validation: %w",
				cfg.Benchmark, cfg.Policy, verr)
		}
	}
	return res, nil
}

// MustRun is Run, panicking on configuration or validation errors; it keeps
// example code terse.
func MustRun(cfg Config) Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}
