// Package awg is the public API of the AWG simulator, a reproduction of
// "Independent Forward Progress of Work-groups" (Duțu et al., ISCA 2020).
//
// It is a thin facade over the internal/sim session layer, which composes
// the internal substrates — discrete-event engine, memory hierarchy, GPU
// execution model, SyncMon, Command Processor — into single simulation
// runs:
//
//	res, err := awg.Run(awg.Config{Benchmark: "SPM_G", Policy: "AWG"})
//
// runs the global-scope spin-mutex benchmark under the Autonomous
// Work-Groups architecture on the paper's Table 1 machine and reports
// runtime, scheduling activity, and synchronization characterization.
// Setting Oversubscribe reproduces the paper's dynamic resource-loss
// experiment: one CU is preempted away 50 µs into the kernel.
package awg

import (
	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// Result re-exports the run result type.
type Result = metrics.Result

// Config describes one simulation run. Zero-valued fields take the paper's
// baseline (Table 1 machine, 32 WGs of 64 work-items, default policy
// parameters).
type Config struct {
	// Benchmark names the kernel: one of Benchmarks().
	Benchmark string
	// Policy names the scheduling architecture: one of Policies(), or a
	// parameterized form such as "Sleep-16k" / "Timeout-50k".
	Policy string

	// GPU/Mem override the Table 1 machine when non-zero.
	GPU gpu.Config
	Mem mem.Config

	// Params override the launch shape when NumWGs is non-zero. Groups and
	// WGs-per-group must match the machine (Groups = NumCUs, WGsPerGroup =
	// MaxWGsPerCU) for the local-scope benchmarks to be meaningful.
	Params kernels.Params

	// Oversubscribe enables the dynamic resource-loss experiment: one CU is
	// preempted at PreemptAt (default 100k cycles = 50 µs at 2 GHz).
	Oversubscribe bool
	PreemptAt     event.Cycle

	// SkipVerify disables the post-run functional validation (used only by
	// experiments that expect a deadlock).
	SkipVerify bool

	// Seed perturbs the machine's deterministic jitter stream. Runs with
	// equal seeds are bit-identical; the default 0 reproduces the
	// historical stream.
	Seed uint64
}

// session translates the public config into the session layer's form.
func (c Config) session() sim.Config {
	return sim.Config{
		Benchmark:     c.Benchmark,
		Policy:        c.Policy,
		GPU:           c.GPU,
		Mem:           c.Mem,
		Params:        c.Params,
		Oversubscribe: c.Oversubscribe,
		PreemptAt:     c.PreemptAt,
		SkipVerify:    c.SkipVerify,
		Seed:          c.Seed,
	}
}

// Benchmarks lists the twelve paper benchmarks in figure order.
func Benchmarks() []string { return kernels.All() }

// AppBenchmarks lists the application workloads (hash table, bank account).
func AppBenchmarks() []string { return kernels.Apps() }

// ExtensionBenchmarks lists the primitives added beyond the paper's suite
// (counting semaphore, reader-writer lock).
func ExtensionBenchmarks() []string { return kernels.Extensions() }

// Policies lists the canonical policy names in the paper's design-space
// order.
func Policies() []string { return sim.Policies() }

// NewPolicy builds a scheduling policy from its name. Sleep and Timeout
// accept an interval suffix in thousands of cycles: "Sleep-16k",
// "Timeout-50k". Bare "Sleep" and "Timeout" use 16k and 20k respectively.
func NewPolicy(name string) (gpu.Policy, error) { return sim.NewPolicy(name) }

// Run executes one simulation and returns its result. Unless SkipVerify is
// set, a completed run is functionally validated (lock counts, conserved
// balances, barrier epochs); a validation failure is returned as an error.
// A deadlocked run is not an error — Result.Deadlocked reports it.
func Run(cfg Config) (Result, error) {
	return sim.Run(cfg.session())
}

// RunAll executes many independent simulations in parallel, one worker per
// core, preserving input order. Per-run results are bit-identical to Run;
// see internal/sim for the pooled session layer this wraps.
func RunAll(cfgs []Config) ([]Result, []error) {
	jobs := make([]sim.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = sim.Job{Config: c.session()}
	}
	outs := sim.RunAll(jobs)
	results := make([]Result, len(outs))
	errs := make([]error, len(outs))
	for i, o := range outs {
		results[i], errs[i] = o.Result, o.Err
	}
	return results, errs
}

// MustRun is Run, panicking on configuration or validation errors; it keeps
// example code terse.
func MustRun(cfg Config) Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}
