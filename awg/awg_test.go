package awg_test

import (
	"strings"
	"testing"

	"awgsim/awg"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
)

// quickCfg shrinks a run so the full matrix stays fast while keeping the
// launch exactly machine-filling.
func quickCfg(bench, policy string) awg.Config {
	g := gpu.DefaultConfig()
	g.MaxWGsPerCU = 4
	p := kernels.DefaultParams()
	p.NumWGs = g.NumCUs * g.MaxWGsPerCU
	p.Iters = 3
	return awg.Config{Benchmark: bench, Policy: policy, GPU: g, Params: p}
}

// TestMatrixAllBenchmarksAllPolicies runs every benchmark under every
// canonical policy and functionally validates each completed run (lock
// counts, conserved balances, barrier epochs). This is the repository's
// strongest end-to-end guarantee: no policy wins by breaking
// synchronization.
func TestMatrixAllBenchmarksAllPolicies(t *testing.T) {
	benches := append(awg.Benchmarks(), awg.AppBenchmarks()...)
	benches = append(benches, awg.ExtensionBenchmarks()...)
	for _, b := range benches {
		for _, p := range awg.Policies() {
			b, p := b, p
			t.Run(b+"/"+p, func(t *testing.T) {
				t.Parallel()
				res, err := awg.Run(quickCfg(b, p))
				if err != nil {
					t.Fatal(err)
				}
				if res.Deadlocked {
					t.Fatalf("%s deadlocked under %s (non-oversubscribed)", b, p)
				}
				if res.Completed == 0 {
					t.Fatal("no WGs completed")
				}
			})
		}
	}
}

// TestOversubscribedMatrix: with a CU preempted mid-kernel, Baseline and
// Sleep must deadlock on every benchmark (they cannot release resources)
// while every monitor/timeout policy completes — Figure 15's headline
// qualitative result.
func TestOversubscribedMatrix(t *testing.T) {
	for _, b := range awg.Benchmarks() {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			mustDeadlock := []string{"Baseline", "Sleep"}
			mustComplete := []string{"Timeout", "MonNR-All", "MonNR-One", "AWG"}
			for _, p := range mustDeadlock {
				cfg := quickCfg(b, p)
				cfg.Oversubscribe = true
				cfg.PreemptAt = 3_000
				res, err := awg.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if !res.Deadlocked {
					t.Errorf("%s completed an oversubscribed run — it cannot provide IFP", p)
				}
			}
			for _, p := range mustComplete {
				cfg := quickCfg(b, p)
				cfg.Oversubscribe = true
				cfg.PreemptAt = 3_000
				res, err := awg.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if res.Deadlocked {
					t.Errorf("%s deadlocked in the oversubscribed scenario", p)
				}
			}
		})
	}
}

func TestNewPolicyParsing(t *testing.T) {
	for _, name := range awg.Policies() {
		if _, err := awg.NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%s): %v", name, err)
		}
	}
	for _, name := range []string{"Sleep-8k", "Sleep-256k", "Timeout-10k", "Timeout-500", "AWG-nocache"} {
		p, err := awg.NewPolicy(name)
		if err != nil {
			t.Errorf("NewPolicy(%s): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%s).Name() = %s", name, p.Name())
		}
	}
	for _, bad := range []string{"", "Nope", "Sleep-", "Sleep-0", "Timeout-x", "Sleep--5"} {
		if _, err := awg.NewPolicy(bad); err == nil {
			t.Errorf("NewPolicy(%q) accepted", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := awg.Run(awg.Config{Policy: "AWG"}); err == nil {
		t.Error("missing benchmark accepted")
	}
	if _, err := awg.Run(awg.Config{Benchmark: "SPM_G"}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := awg.Run(awg.Config{Benchmark: "nope", Policy: "AWG"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := awg.Run(awg.Config{Benchmark: "SPM_G", Policy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := awg.Run(quickCfg("FAM_G", "AWG"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := awg.Run(quickCfg("FAM_G", "AWG"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Atomics != b.Atomics || a.Resumes != b.Resumes {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestResultMetadata(t *testing.T) {
	res, err := awg.Run(quickCfg("SPM_G", "AWG"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "SPM_G" || res.Policy != "AWG" {
		t.Fatalf("metadata %s/%s", res.Benchmark, res.Policy)
	}
	if res.ContextKB <= 0 {
		t.Fatal("no context size reported")
	}
	if res.SyncVars == 0 {
		t.Fatal("no sync variables characterized")
	}
}

func TestListsAreConsistent(t *testing.T) {
	if len(awg.Benchmarks()) != 12 {
		t.Fatalf("%d benchmarks, want 12", len(awg.Benchmarks()))
	}
	if len(awg.AppBenchmarks()) != 2 {
		t.Fatalf("%d app benchmarks, want 2", len(awg.AppBenchmarks()))
	}
	joined := strings.Join(awg.Policies(), " ")
	for _, want := range []string{"Baseline", "AWG", "MonNR-One", "MinResume"} {
		if !strings.Contains(joined, want) {
			t.Errorf("policy list missing %s", want)
		}
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun with a bad config did not panic")
		}
	}()
	awg.MustRun(awg.Config{Benchmark: "nope", Policy: "AWG"})
}

// TestAWGBeatsBaselineOnContendedMutex pins the headline direction at test
// scale: AWG must be at least 1.5x faster than busy-waiting on the
// centralized ticket lock.
func TestAWGBeatsBaselineOnContendedMutex(t *testing.T) {
	base, err := awg.Run(quickCfg("FAM_G", "Baseline"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := awg.Run(quickCfg("FAM_G", "AWG"))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Speedup(base); s < 1.5 {
		t.Fatalf("AWG speedup on FAM_G = %.2f, want >= 1.5", s)
	}
	if res.Atomics*2 > base.Atomics {
		t.Fatalf("AWG used %d atomics vs baseline %d — monitors not reducing traffic",
			res.Atomics, base.Atomics)
	}
}

// TestAppWorkloadsConserveInvariants runs the two applications under AWG at
// a larger scale than the matrix and checks their invariants via the
// built-in validation (Run returns an error on violation).
func TestAppWorkloadsConserveInvariants(t *testing.T) {
	for _, b := range awg.AppBenchmarks() {
		cfg := quickCfg(b, "AWG")
		cfg.Params.Iters = 8
		if _, err := awg.Run(cfg); err != nil {
			t.Errorf("%s: %v", b, err)
		}
	}
}
