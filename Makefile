GO ?= go

.PHONY: all build test race vet fmt lint lint-fix fuzz ci bench benchdiff exp quick litmus-quick

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI mode); run `gofmt -w .` to fix.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs awglint, the repo's domain analyzer suite: simdeterminism,
# hotpathalloc, hotpathmap, snapcover, fpcover, replaypure, waiterhome,
# ctorerr, schedpast, plus reduced nilness and shadow checks. Suppress a
# justified finding with `//lint:allow <analyzer> <reason>` on (or above)
# the offending line. The wall-clock cost of the suite is recorded into
# the newest BENCH_results.json trajectory entry (tooling.lint_secs) so
# analyzer-cost regressions show up alongside the perf trajectory.
lint:
	$(GO) run ./cmd/awglint -bench-json BENCH_results.json ./...

# lint-fix applies the mechanical SuggestedFixes (e.g. After(0) -> After(1),
# replaypure's `if !m.replaying { ... }` gate) in place, then re-reports
# anything that remains.
lint-fix:
	$(GO) run ./cmd/awglint -fix ./...

# fuzz runs short native-fuzzing smokes: random fault schedules through a
# small oversubscribed sim with the IFP invariant enforced on every outcome,
# random schedule/run interleavings through the event-engine calendar
# checked against a reference heap oracle, random condition-cache op
# streams diffed against a map-based oracle of the slab condition store,
# fuzzed snapshot/restore cuts that must replay bit-identically, the
# litmus shrinker driven against abstract progress-model oracles, and
# random IR programs run through both exec modes (inline interpreter vs
# goroutine oracle) with results and final memory diffed.
fuzz:
	$(GO) test ./internal/fault -fuzz FuzzSchedule -fuzztime 5s -run '^$$'
	$(GO) test ./internal/event -fuzz FuzzCalendar -fuzztime 5s -run '^$$'
	$(GO) test ./internal/syncmon -fuzz FuzzCondStore -fuzztime 5s -run '^$$'
	$(GO) test ./internal/sim -fuzz FuzzSnapshotRestore -fuzztime 5s -run '^$$'
	$(GO) test ./internal/fleet -fuzz FuzzFleetEvents -fuzztime 5s -run '^$$'
	$(GO) test ./internal/litmus -fuzz FuzzLitmusShrink -fuzztime 5s -run '^$$'
	$(GO) test ./internal/gpu -fuzz FuzzProgIR -fuzztime 5s -run '^$$'

# golden runs the quick experiment suite four ways — the fork planner vs
# -no-fork, and the inline IR interpreter (the default) vs the goroutine
# runtime — checks each against the committed golden record, and diffs the
# runs' records byte-for-byte: a forked sweep must be indistinguishable
# from a cold one, and the two exec modes from each other. After an
# intentional model change: `go run ./cmd/awgexp -quick -golden
# GOLDEN_quick.json -update-golden`. The intermediate records are kept on
# failure for diffing.
golden:
	$(GO) run ./cmd/awgexp -quick -golden GOLDEN_quick.json -golden-out .golden_forked.json > /dev/null
	$(GO) run ./cmd/awgexp -quick -no-fork -golden GOLDEN_quick.json -golden-out .golden_unforked.json > /dev/null
	$(GO) run ./cmd/awgexp -quick -exec goroutine -golden GOLDEN_quick.json -golden-out .golden_goroutine.json > /dev/null
	cmp .golden_forked.json .golden_unforked.json
	cmp .golden_forked.json .golden_goroutine.json
	@rm -f .golden_forked.json .golden_unforked.json .golden_goroutine.json

# litmus-quick regenerates the quick litmus conformance sweep and checks
# it against its own golden record (the sweep also runs inside the main
# golden target; this gate pins the matrix and worked examples standalone
# so a conformance drift is reported by name). After an intentional
# change: `go run ./cmd/awgexp -quick -exp litmus -golden
# GOLDEN_litmus.json -update-golden`.
litmus-quick:
	$(GO) run ./cmd/awgexp -quick -exp litmus -golden GOLDEN_litmus.json > /dev/null

# ci is the full gate: formatting, static checks (go vet plus the awglint
# domain analyzers), the race-instrumented test suite (which exercises the
# parallel experiment pool), the fuzz smokes, and the golden-record drift
# checks (suite-wide and the standalone litmus conformance gate).
# benchdiff is advisory (leading -): the trajectory spans machines, so a
# wall-clock delta is a prompt to look, not a gate.
ci: fmt vet lint race fuzz golden litmus-quick
	-$(GO) run ./cmd/benchdiff

# bench appends a perf-trajectory entry to BENCH_results.json and runs the
# hot-path benchmarks: the event-engine calendar microbenchmarks and the
# fig15-shaped (oversubscribed) and fault-injection experiment workloads.
bench:
	$(GO) run ./cmd/awgexp -quick -json BENCH_results.json > /dev/null
	$(GO) test ./internal/event -bench 'BenchmarkEngine' -benchmem -run '^$$'
	$(GO) test . -bench 'BenchmarkFig15Oversubscribed|BenchmarkFaults' -benchmem -run '^$$'

# benchdiff compares the two newest trajectory entries and exits non-zero
# on a >10% total wall-clock regression.
benchdiff:
	$(GO) run ./cmd/benchdiff

# exp/quick print the full and reduced-scale experiment suites.
exp:
	$(GO) run ./cmd/awgexp

quick:
	$(GO) run ./cmd/awgexp -quick
