GO ?= go

.PHONY: all build test race vet fmt fuzz ci bench exp quick

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI mode); run `gofmt -w .` to fix.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# fuzz runs a short native-fuzzing smoke over the fault scheduler: random
# schedules through a small oversubscribed sim with the IFP invariant
# enforced on every outcome.
fuzz:
	$(GO) test ./internal/fault -fuzz FuzzSchedule -fuzztime 5s -run '^$$'

# ci is the full gate: formatting, static checks, the race-instrumented
# test suite (which exercises the parallel experiment pool), and the
# fault-scheduler fuzz smoke.
ci: fmt vet race fuzz

# bench regenerates the perf baseline the repository tracks.
bench:
	$(GO) run ./cmd/awgexp -quick -json BENCH_results.json > /dev/null

# exp/quick print the full and reduced-scale experiment suites.
exp:
	$(GO) run ./cmd/awgexp

quick:
	$(GO) run ./cmd/awgexp -quick
