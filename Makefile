GO ?= go

.PHONY: all build test race vet fmt ci bench exp quick

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI mode); run `gofmt -w .` to fix.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the full gate: formatting, static checks, and the race-instrumented
# test suite (which exercises the parallel experiment pool).
ci: fmt vet race

# bench regenerates the perf baseline the repository tracks.
bench:
	$(GO) run ./cmd/awgexp -quick -json BENCH_results.json > /dev/null

# exp/quick print the full and reduced-scale experiment suites.
exp:
	$(GO) run ./cmd/awgexp

quick:
	$(GO) run ./cmd/awgexp -quick
