// Package main_test is the repository's benchmark harness: one testing.B
// benchmark per table and figure of the paper. Each benchmark regenerates
// its experiment (at reduced "quick" scale so `go test -bench=.` stays
// tractable) and reports the experiment's headline number as a custom
// metric. For full-scale regeneration use `go run ./cmd/awgexp`.
package main_test

import (
	"strconv"
	"strings"
	"testing"

	"awgsim/awg"
	"awgsim/internal/experiments"
	"awgsim/internal/metrics"
)

var quick = experiments.Options{Quick: true}

func runExperiment(b *testing.B, id string) *metrics.Table {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab, err = e.Run(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// lastRowMetric extracts a named column from the final (GeoMean) row.
func lastRowMetric(tab *metrics.Table, col string) float64 {
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	header := strings.Fields(lines[1])
	last := strings.Fields(lines[len(lines)-1])
	for i, h := range header {
		if h == col && i < len(last) {
			if v, err := strconv.ParseFloat(last[i], 64); err == nil {
				return v
			}
		}
	}
	return 0
}

func BenchmarkTable1Config(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkTable2Characteristics(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig5ContextSize(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6Signatures(b *testing.B)        { runExperiment(b, "fig6") }

func BenchmarkFig7SleepSweep(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8TimeoutSweep(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9WaitEfficiency(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig11Breakdown(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig13CPStructures(b *testing.B)  { runExperiment(b, "fig13") }

func BenchmarkFig14NonOversubscribed(b *testing.B) {
	tab := runExperiment(b, "fig14")
	b.ReportMetric(lastRowMetric(tab, "AWG"), "AWGgeomean-speedup")
}

func BenchmarkFig15Oversubscribed(b *testing.B) {
	tab := runExperiment(b, "fig15")
	b.ReportMetric(lastRowMetric(tab, "AWG"), "AWGgeomean-vs-Timeout")
}

// BenchmarkSingleRun* time one simulation each, the unit of cost every
// experiment is built from.
func benchmarkSingleRun(b *testing.B, bench, policy string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := awg.Config{Benchmark: bench, Policy: policy}
		cfg.GPU.NumCUs = 0 // defaults
		res, err := awg.Run(awg.Config{Benchmark: bench, Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlocked {
			b.Fatal("deadlocked")
		}
		b.ReportMetric(float64(res.Cycles), "simcycles")
	}
}

func BenchmarkSingleRunSPMGBaseline(b *testing.B) { benchmarkSingleRun(b, "SPM_G", "Baseline") }
func BenchmarkSingleRunSPMGAWG(b *testing.B)      { benchmarkSingleRun(b, "SPM_G", "AWG") }
func BenchmarkSingleRunTBLGAWG(b *testing.B)      { benchmarkSingleRun(b, "TB_LG", "AWG") }

func BenchmarkAblation(b *testing.B)  { runExperiment(b, "ablation") }
func BenchmarkPriority(b *testing.B)  { runExperiment(b, "priority") }
func BenchmarkOversweep(b *testing.B) { runExperiment(b, "oversweep") }
func BenchmarkFaults(b *testing.B)    { runExperiment(b, "faults") }
