// Command awglint is the repository's domain lint driver: a multichecker
// over the analyzers in internal/lint/analyzers, enforcing the invariants
// the simulator's determinism and forward-progress guarantees rest on.
//
// Usage:
//
//	go run ./cmd/awglint ./...                     # report findings (exit 1 if any)
//	go run ./cmd/awglint -fix ./...                # also apply mechanical suggested fixes
//	go run ./cmd/awglint -json ./...               # machine-readable findings
//	go run ./cmd/awglint -write-baseline B ./...   # snapshot current findings
//	go run ./cmd/awglint -baseline B ./...         # report only new findings
//
// Findings are suppressed line-by-line with a justified directive:
//
//	start := time.Now() //lint:allow simdeterminism wall-clock for bench trajectory only
//
// An unknown analyzer name in a directive is itself reported, so a typo
// cannot silently disable a check.
package main

import (
	"awgsim/internal/lint/analyzers/chansend"
	"awgsim/internal/lint/analyzers/ctorerr"
	"awgsim/internal/lint/analyzers/fpcover"
	"awgsim/internal/lint/analyzers/hotpathalloc"
	"awgsim/internal/lint/analyzers/hotpathmap"
	"awgsim/internal/lint/analyzers/nilness"
	"awgsim/internal/lint/analyzers/progclosure"
	"awgsim/internal/lint/analyzers/replaypure"
	"awgsim/internal/lint/analyzers/schedpast"
	"awgsim/internal/lint/analyzers/shadow"
	"awgsim/internal/lint/analyzers/simdeterminism"
	"awgsim/internal/lint/analyzers/snapcover"
	"awgsim/internal/lint/analyzers/waiterhome"
	"awgsim/internal/lint/checker"
)

func main() {
	checker.Main(
		simdeterminism.Analyzer,
		hotpathalloc.Analyzer,
		hotpathmap.Analyzer,
		snapcover.Analyzer,
		fpcover.Analyzer,
		replaypure.Analyzer,
		progclosure.Analyzer,
		chansend.Analyzer,
		waiterhome.Analyzer,
		ctorerr.Analyzer,
		schedpast.Analyzer,
		nilness.Analyzer,
		shadow.Analyzer,
	)
}
