// Command awglitmus runs open-ended litmus hunts for progress-model
// conformance bugs: generate a seeded batch of synchronization patterns,
// run every pattern x policy x occupancy cell through the simulator, check
// each against the OBE / HSA / linear-occupancy / IFP oracles, and shrink
// every unexpected violation to a minimal reproducer rendered as a
// committable Go test.
//
// Usage:
//
//	go run ./cmd/awglitmus [-seed 1] [-count 256] [-policies all]
//	                       [-occ full,half,one] [-budget 2000000]
//	                       [-workers 0] [-show-expected] [-no-shrink]
//
// The golden-pinned regression sweep lives in `awgexp -exp litmus`; this
// tool is for hunting with fresh seeds at scale. Exit status is 1 when any
// unexpected violation is found, 0 otherwise (expected non-IFP outcomes —
// Baseline/Sleep failing patterns only IFP requires — do not fail a hunt).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"awgsim/internal/litmus"
	"awgsim/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed (splitmix64 stream address)")
	count := flag.Int("count", 256, "patterns to generate")
	policiesFlag := flag.String("policies", "all", "comma-separated policy list, or 'all'")
	occFlag := flag.String("occ", "full,half,one", "comma-separated occupancy levels")
	budget := flag.Uint64("budget", 0, "per-run cycle budget (0 = harness default)")
	workers := flag.Int("workers", 0, "parallel sim workers (0 = GOMAXPROCS)")
	showExpected := flag.Bool("show-expected", false, "also list expected non-IFP outcomes")
	noShrink := flag.Bool("no-shrink", false, "skip shrinking unexpected violations")
	flag.Parse()

	policies := sim.Policies()
	if *policiesFlag != "all" {
		policies = strings.Split(*policiesFlag, ",")
		for _, p := range policies {
			if _, err := sim.NewPolicy(p); err != nil {
				fmt.Fprintf(os.Stderr, "awglitmus: %v\n", err)
				os.Exit(2)
			}
		}
	}
	var occs []litmus.Occupancy
	for _, name := range strings.Split(*occFlag, ",") {
		found := false
		for _, o := range litmus.Occupancies() {
			if o.Name == name {
				occs = append(occs, o)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "awglitmus: unknown occupancy %q (have full, half, one)\n", name)
			os.Exit(2)
		}
	}

	pats := litmus.Generate(*seed, *count)
	fmt.Printf("awglitmus: hunting with %d patterns (seed %d), %d policies, %d occupancy levels\n",
		len(pats), *seed, len(policies), len(occs))
	s := litmus.Conformance(pats, policies, occs, *budget, *workers)
	fmt.Println(s.Matrix(fmt.Sprintf("Litmus hunt: seed %d, %d patterns", *seed, *count)).String())

	unexpected := s.Unexpected()
	expected := len(s.Violations) - len(unexpected)
	fmt.Printf("%d cells: %d unexpected violation(s), %d expected non-IFP outcome(s), cache replayed %d runs\n",
		len(s.Cells), len(unexpected), expected, sim.CacheHits())
	if *showExpected {
		fmt.Println(s.Summary())
	}

	for i, v := range unexpected {
		fmt.Printf("\n--- violation %d/%d ---\n%s\n", i+1, len(unexpected), v.Detail)
		if *noShrink {
			continue
		}
		l := s.Patterns[v.Cell.Pattern]
		occ := occByName(occs, v.Cell.Occ)
		fail := litmus.ViolationFailFn(v.Cell.Policy, v.Model, occ, *budget)
		min := litmus.Shrink(l, fail)
		wgCap := occ.Cap(min.NumWGs())
		fmt.Printf("shrunk (%d -> %d): %s at cap %d\n", litmus.Size(l), litmus.Size(min), min.Encode(), wgCap)
		name := fmt.Sprintf("LitmusRepro%s%d", strings.NewReplacer("-", "", ".", "").Replace(v.Cell.Policy), i+1)
		fmt.Println(litmus.RenderGoTest(min, name, "litmus_test", v.Cell.Policy, wgCap, v.Model))
	}
	if len(unexpected) > 0 {
		os.Exit(1)
	}
}

func occByName(occs []litmus.Occupancy, name string) litmus.Occupancy {
	for _, o := range occs {
		if o.Name == name {
			return o
		}
	}
	return litmus.Occupancies()[0]
}
