// Command awgsim runs one benchmark under one scheduling policy on the
// simulated GPU and prints the run's metrics.
//
// Usage:
//
//	awgsim -bench SPM_G -policy AWG
//	awgsim -bench FAM_G -policy Timeout-50k -oversubscribe
//	awgsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"awgsim/awg"
	"awgsim/internal/kernels"
)

func main() {
	var (
		bench   = flag.String("bench", "SPM_G", "benchmark name (see -list)")
		policy  = flag.String("policy", "AWG", "scheduling policy (see -list); Sleep-Xk and Timeout-Xk parameterized forms accepted")
		oversub = flag.Bool("oversubscribe", false, "preempt one CU 50us into the kernel (the paper's dynamic resource-loss experiment)")
		iters   = flag.Int("iters", 0, "synchronization rounds per WG (0 = default)")
		wgs     = flag.Int("wgs", 0, "work-groups to launch (0 = exactly fill the GPU)")
		seed    = flag.Uint64("seed", 0, "jitter-stream seed; equal seeds replay bit-identically (0 = historical stream)")
		list    = flag.Bool("list", false, "list benchmarks and policies, then exit")
		asJSON  = flag.Bool("json", false, "emit the full result as JSON")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(awg.Benchmarks(), " "))
		fmt.Println("apps:      ", strings.Join(awg.AppBenchmarks(), " "))
		fmt.Println("extensions:", strings.Join(awg.ExtensionBenchmarks(), " "))
		fmt.Println("policies:  ", strings.Join(awg.Policies(), " "))
		return
	}

	cfg := awg.Config{Benchmark: *bench, Policy: *policy, Oversubscribe: *oversub, Seed: *seed}
	if *iters > 0 || *wgs > 0 {
		p := kernels.DefaultParams()
		if *iters > 0 {
			p.Iters = *iters
		}
		if *wgs > 0 {
			p.NumWGs = *wgs
		}
		cfg.Params = p
	}
	res, err := awg.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "awgsim:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "awgsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("policy           %s\n", res.Policy)
	if res.Deadlocked {
		fmt.Printf("result           DEADLOCK after %d cycles (%d WGs completed)\n",
			res.Cycles, res.Completed)
	} else {
		fmt.Printf("runtime          %d cycles (%.1f us at 2 GHz)\n", res.Cycles, float64(res.Cycles)/2000)
	}
	fmt.Printf("completed WGs    %d\n", res.Completed)
	fmt.Printf("atomics          %d (bank wait %d cycles)\n", res.Atomics, res.BankWait)
	fmt.Printf("exec breakdown   running %d / waiting %d cycles (max single wait %d)\n",
		res.Breakdown.Running, res.Breakdown.Waiting, res.MaxWait)
	fmt.Printf("waits            stalls %d, resumes %d (wasted %d), timeouts %d\n",
		res.Stalls, res.Resumes, res.WastedResumes, res.Timeouts)
	fmt.Printf("context switches out %d / in %d (%d bytes moved)\n",
		res.SwitchesOut, res.SwitchesIn, res.ContextBytes)
	fmt.Printf("syncmon peak     %d conditions, %d waiting WGs, %d monitored vars\n",
		res.MaxConditions, res.MaxWaitingWGs, res.MaxMonitoredVar)
	fmt.Printf("monitor log      %d spills, %d rejects, peak %d entries\n",
		res.LogSpills, res.LogRejects, res.MaxLogEntries)
	if res.PredictAll+res.PredictOne > 0 {
		fmt.Printf("awg predictor    resume-all %d, resume-one %d, bloom resets %d\n",
			res.PredictAll, res.PredictOne, res.BloomResets)
	}
	fmt.Printf("wg context       %.2f KB\n", res.ContextKB)
	fmt.Printf("sync vars        %d (%d conditions, max %d waiters/cond, %.1f updates/met)\n",
		res.SyncVars, res.VarStats.Conditions, res.VarStats.MaxWaiters, res.VarStats.UpdatesPerCond)
}
