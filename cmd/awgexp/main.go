// Command awgexp regenerates the paper's tables and figures from fresh
// simulations and prints each as an aligned text table.
//
// Usage:
//
//	awgexp                       # everything, full scale (minutes)
//	awgexp -quick                # everything, reduced scale (seconds)
//	awgexp -exp fig14            # one experiment
//	awgexp -json out.json        # append a bench trajectory entry (wall time, cycles)
//	awgexp -workers 4            # cap the simulation worker pool
//	awgexp -golden GOLDEN.json   # fail if outputs drift from the golden record
//	awgexp -golden GOLDEN.json -update-golden   # rewrite the golden record
//	awgexp -cpuprofile cpu.out   # profile the suite (see README, Profiling)
//	awgexp -nodedupe             # simulate every run, even repeated configs
//	awgexp -no-fork              # simulate every sweep member from cycle zero
//	awgexp -snapshot-every 50000 # time-travel traces for diagnosed deadlocks
//	awgexp -exec=goroutine       # force the goroutine WG runtime (default: inline IR)
//	awgexp -golden-out out.json  # also write this run's golden record
//	awgexp -list
//
// Identical declarative configs recurring across experiments simulate
// once and replay from the run cache (outputs are bit-identical either
// way); -nodedupe opts out.
//
// A failing experiment no longer aborts the suite: its error is reported,
// the remaining experiments still run, and awgexp exits non-zero at the
// end if anything failed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"awgsim/internal/experiments"
	"awgsim/internal/gpu"
	"awgsim/internal/sim"
)

// benchEntry is one experiment's row in the -json trajectory.
type benchEntry struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	WallSecs  float64 `json:"wall_secs"`
	SimCycles uint64  `json:"sim_cycles"` // simulated cycles across the experiment's runs
	SimRuns   uint64  `json:"sim_runs"`
	CacheHits uint64  `json:"cache_hits"` // runs replayed from the dedupe cache (counted in sim_runs)
	// Fork-planner activity (see internal/sim/forkplan.go): members
	// completed from a shared-prefix snapshot, the prefix cycles they did
	// not re-simulate (counted in sim_cycles — the ledger matches the cold
	// path), and the snapshot bytes captured.
	Forks             uint64 `json:"forks"`
	PrefixCyclesSaved uint64 `json:"prefix_cycles_saved"`
	SnapshotBytes     uint64 `json:"snapshot_bytes"`
	// Host allocator pressure per accounted run (runtime.ReadMemStats
	// deltas across the experiment): the hot-state trajectory metric.
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
	Error        string  `json:"error,omitempty"`
}

// benchReport is one -json trajectory entry: a perf snapshot of the
// experiment suite, comparable across commits when quick/workers match.
// The trajectory file holds an array of these, one appended per run.
type benchReport struct {
	Generated   string       `json:"generated"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"` // 0 = GOMAXPROCS
	Quick       bool         `json:"quick"`
	Experiments []benchEntry `json:"experiments"`
	TotalSecs   float64      `json:"total_secs"`
	TotalCycles uint64       `json:"total_cycles"`
	TotalRuns   uint64       `json:"total_runs"`
	CacheHits   uint64       `json:"cache_hits"`
	// Suite-wide fork-planner totals (see benchEntry).
	Forks             uint64 `json:"forks"`
	PrefixCyclesSaved uint64 `json:"prefix_cycles_saved"`
	SnapshotBytes     uint64 `json:"snapshot_bytes"`
	// WG execution-path split (gpu.ExecStats deltas): device ops the inline
	// IR interpreter executed, and WG program goroutines spawned (closure
	// kernels plus any -exec=goroutine runs). The IR trajectory goal is the
	// first number high and the second at zero.
	OpsInterpreted    uint64 `json:"ops_interpreted"`
	GoroutinesSpawned uint64 `json:"goroutines_spawned"`
}

// goldenEntry pins one experiment's deterministic outputs: the simulated
// cycle/run totals and a hash of the rendered tables (wall time excluded).
// Any engine or model change that alters simulated behavior shows up here.
type goldenEntry struct {
	ID        string `json:"id"`
	SimCycles uint64 `json:"sim_cycles"`
	SimRuns   uint64 `json:"sim_runs"`
	OutputSHA string `json:"output_sha256"`
}

type goldenFile struct {
	Quick       bool          `json:"quick"`
	Experiments []goldenEntry `json:"experiments"`
}

func main() {
	var (
		exp        = flag.String("exp", "", "single experiment id (table1, table2, fig5..fig15); empty = all")
		quick      = flag.Bool("quick", false, "reduced launches: shapes only, runs in seconds")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath   = flag.String("json", "", "append a bench-trajectory entry (per-experiment wall time and simulated cycles) to this JSON file")
		workers    = flag.Int("workers", 0, "simulation worker pool size; 0 = GOMAXPROCS")
		golden     = flag.String("golden", "", "golden-record JSON: compare deterministic outputs against it and exit non-zero on drift")
		updGolden  = flag.Bool("update-golden", false, "rewrite the -golden file from this run instead of comparing")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memprofile = flag.String("memprofile", "", "write a heap allocation profile to this file at exit")
		nodedupe   = flag.Bool("nodedupe", false, "disable run deduplication: simulate every job even when an identical Config already ran this invocation")
		nofork     = flag.Bool("no-fork", false, "disable prefix-forked sweeps: simulate every fault-sweep member from cycle zero instead of forking a shared-prefix snapshot")
		snapEvery  = flag.Uint64("snapshot-every", 0, "keep a ring of machine snapshots every N cycles; a diagnosed deadlock then attaches a time-travel trace replayed from the last pre-stall snapshot (0 = off; implies unforked runs)")
		goldenOut  = flag.String("golden-out", "", "also write this run's golden record (deterministic outputs) to this file; CI diffs forked vs unforked records byte-for-byte")
		execMode   = flag.String("exec", "ir", "WG execution mode: 'ir' runs kernels carrying a program IR on the machine's inline interpreter; 'goroutine' forces the closure runtime for every kernel (outputs are bit-identical either way; CI diffs the two golden records)")
	)
	flag.Parse()
	switch *execMode {
	case "ir":
		sim.SetExecMode(gpu.ExecIR)
	case "goroutine":
		sim.SetExecMode(gpu.ExecGoroutine)
	default:
		fmt.Fprintf(os.Stderr, "awgexp: -exec must be 'ir' or 'goroutine', got %q\n", *execMode)
		os.Exit(2)
	}
	if *nodedupe {
		sim.SetDedupe(false)
	}
	if *nofork {
		sim.SetForking(false)
	}
	if *snapEvery > 0 {
		sim.SetSnapshotEvery(*snapEvery)
	}
	// awgexp is a short-lived batch process whose live heap is dominated by
	// in-flight simulation events (saturated runs queue 100k+ pooled tasks);
	// trade heap headroom for fewer GC mark cycles over that backlog. GOGC
	// in the environment still wins if set.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *workers > 0 {
		// The pool sizes itself from GOMAXPROCS; narrowing it also keeps
		// the engine goroutines' scheduling pressure down.
		runtime.GOMAXPROCS(*workers)
	}

	opts := experiments.Options{Quick: *quick}
	run := experiments.All()
	if *exp != "" {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
	}

	report := benchReport{
		//lint:allow simdeterminism bench-report timestamp; never enters simulated state or golden output
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Quick:      *quick,
	}
	record := goldenFile{Quick: *quick}
	var failures []string
	suiteStart := time.Now() //lint:allow simdeterminism wall time for the bench trajectory only
	ops0, spawns0 := gpu.ExecStats()
	var ms0, ms1 runtime.MemStats
	for _, e := range run {
		start := time.Now() //lint:allow simdeterminism wall time for the bench trajectory only
		cyc0, runs0 := sim.Totals()
		hits0 := sim.CacheHits()
		forks0, saved0, snapBytes0 := sim.ForkStats()
		runtime.ReadMemStats(&ms0)
		tab, err := e.Run(opts)
		runtime.ReadMemStats(&ms1)
		cyc1, runs1 := sim.Totals()
		entry := benchEntry{
			ID:    e.ID,
			Title: e.Title,
			//lint:allow simdeterminism wall time for the bench trajectory only
			WallSecs:  time.Since(start).Seconds(),
			SimCycles: cyc1 - cyc0,
			SimRuns:   runs1 - runs0,
			CacheHits: sim.CacheHits() - hits0,
		}
		forks1, saved1, snapBytes1 := sim.ForkStats()
		entry.Forks = forks1 - forks0
		entry.PrefixCyclesSaved = saved1 - saved0
		entry.SnapshotBytes = snapBytes1 - snapBytes0
		if entry.SimRuns > 0 {
			entry.AllocsPerRun = float64(ms1.Mallocs-ms0.Mallocs) / float64(entry.SimRuns)
			entry.BytesPerRun = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(entry.SimRuns)
		}
		if err != nil {
			entry.Error = err.Error()
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
			fmt.Fprintf(os.Stderr, "awgexp: %s: %v\n", e.ID, err)
		} else {
			out := tab.String() + "\n"
			if e.ID == "fig6" {
				if tl, tlErr := experiments.Fig6Timelines(opts); tlErr == nil {
					out += tl + "\n"
				}
			}
			if e.ID == "faults" {
				if ex, exErr := experiments.FaultsWorkedExample(opts); exErr == nil {
					out += ex + "\n"
				}
			}
			if e.ID == "fleet" {
				if ex, exErr := experiments.FleetWorkedExample(opts); exErr == nil {
					out += ex + "\n"
				}
			}
			if e.ID == "litmus" {
				if ex, exErr := experiments.LitmusWorkedExamples(opts); exErr == nil {
					out += ex + "\n"
				}
			}
			fmt.Print(out)
			if entry.CacheHits > 0 {
				fmt.Printf("[%s regenerated in %.1fs; %d/%d runs replayed from cache]\n\n",
					e.ID, entry.WallSecs, entry.CacheHits, entry.SimRuns)
			} else {
				fmt.Printf("[%s regenerated in %.1fs]\n\n", e.ID, entry.WallSecs)
			}
			record.Experiments = append(record.Experiments, goldenEntry{
				ID:        e.ID,
				SimCycles: entry.SimCycles,
				SimRuns:   entry.SimRuns,
				OutputSHA: fmt.Sprintf("%x", sha256.Sum256([]byte(out))),
			})
		}
		report.Experiments = append(report.Experiments, entry)
	}
	if *exp == "" && len(failures) == 0 {
		fmt.Println(experiments.HardwareOverhead().String())
	}
	report.TotalSecs = time.Since(suiteStart).Seconds() //lint:allow simdeterminism wall time for the bench trajectory only
	report.TotalCycles, report.TotalRuns = sim.Totals()
	report.CacheHits = sim.CacheHits()
	report.Forks, report.PrefixCyclesSaved, report.SnapshotBytes = sim.ForkStats()
	ops1, spawns1 := gpu.ExecStats()
	report.OpsInterpreted, report.GoroutinesSpawned = ops1-ops0, spawns1-spawns0
	if report.CacheHits > 0 {
		fmt.Fprintf(os.Stderr, "awgexp: run cache replayed %d of %d runs\n",
			report.CacheHits, report.TotalRuns)
	}
	if report.Forks > 0 {
		fmt.Fprintf(os.Stderr, "awgexp: fork planner completed %d runs from shared prefixes, saving %d prefix cycles\n",
			report.Forks, report.PrefixCyclesSaved)
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "awgexp: CPU profile written to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "awgexp: heap profile written to %s\n", *memprofile)
	}

	if *jsonPath != "" {
		if err := appendReport(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "awgexp: bench trajectory entry appended to %s\n", *jsonPath)
	}
	if *goldenOut != "" {
		if err := writeJSON(*goldenOut, record); err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "awgexp: golden record written to %s\n", *goldenOut)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "awgexp: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	if *golden != "" {
		if *updGolden {
			if err := writeJSON(*golden, record); err != nil {
				fmt.Fprintln(os.Stderr, "awgexp:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "awgexp: golden record written to %s\n", *golden)
		} else if drifts := compareGolden(*golden, record); len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "awgexp: outputs drifted from golden record %s:\n", *golden)
			for _, d := range drifts {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			fmt.Fprintln(os.Stderr, "awgexp: if the change is intentional, regenerate with -update-golden")
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "awgexp: outputs match golden record %s\n", *golden)
		}
	}
}

// appendReport appends r to the trajectory array at path, converting a
// legacy single-object file into an array on first append.
func appendReport(path string, r benchReport) error {
	var traj []benchReport
	if data, err := os.ReadFile(path); err == nil {
		if jsonErr := json.Unmarshal(data, &traj); jsonErr != nil {
			var single benchReport
			if jsonErr2 := json.Unmarshal(data, &single); jsonErr2 != nil {
				return fmt.Errorf("%s is neither a trajectory array nor a report: %v", path, jsonErr)
			}
			traj = []benchReport{single}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	traj = append(traj, r)
	return writeJSON(path, traj)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareGolden diffs this run's deterministic outputs against the golden
// record, returning human-readable drift descriptions (empty = match).
func compareGolden(path string, got goldenFile) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var drifts []string
	if want.Quick != got.Quick {
		drifts = append(drifts, fmt.Sprintf("quick mode mismatch: golden %v, run %v", want.Quick, got.Quick))
	}
	wantByID := make(map[string]goldenEntry, len(want.Experiments))
	for _, e := range want.Experiments {
		wantByID[e.ID] = e
	}
	seen := make(map[string]bool, len(got.Experiments))
	for _, g := range got.Experiments {
		seen[g.ID] = true
		w, ok := wantByID[g.ID]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: not in golden record", g.ID))
			continue
		}
		if w.SimCycles != g.SimCycles {
			drifts = append(drifts, fmt.Sprintf("%s: sim_cycles %d -> %d", g.ID, w.SimCycles, g.SimCycles))
		}
		if w.SimRuns != g.SimRuns {
			drifts = append(drifts, fmt.Sprintf("%s: sim_runs %d -> %d", g.ID, w.SimRuns, g.SimRuns))
		}
		if w.OutputSHA != g.OutputSHA {
			drifts = append(drifts, fmt.Sprintf("%s: rendered output changed (sha256 %.12s -> %.12s)", g.ID, w.OutputSHA, g.OutputSHA))
		}
	}
	for _, w := range want.Experiments {
		if !seen[w.ID] {
			drifts = append(drifts, fmt.Sprintf("%s: in golden record but did not run", w.ID))
		}
	}
	return drifts
}
