// Command awgexp regenerates the paper's tables and figures from fresh
// simulations and prints each as an aligned text table.
//
// Usage:
//
//	awgexp                # everything, full scale (minutes)
//	awgexp -quick         # everything, reduced scale (seconds)
//	awgexp -exp fig14     # one experiment
//	awgexp -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"awgsim/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "single experiment id (table1, table2, fig5..fig15); empty = all")
		quick = flag.Bool("quick", false, "reduced launches: shapes only, runs in seconds")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: *quick}
	run := experiments.All()
	if *exp != "" {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}

	for _, e := range run {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "awgexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		if e.ID == "fig6" {
			if tl, err := experiments.Fig6Timelines(opts); err == nil {
				fmt.Println(tl)
			}
		}
		fmt.Printf("[%s regenerated in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
	if *exp == "" {
		fmt.Println(experiments.HardwareOverhead().String())
	}
}
