// Command awgexp regenerates the paper's tables and figures from fresh
// simulations and prints each as an aligned text table.
//
// Usage:
//
//	awgexp                # everything, full scale (minutes)
//	awgexp -quick         # everything, reduced scale (seconds)
//	awgexp -exp fig14     # one experiment
//	awgexp -json out.json # also write a bench trajectory (wall time, cycles)
//	awgexp -workers 4     # cap the simulation worker pool
//	awgexp -list
//
// A failing experiment no longer aborts the suite: its error is reported,
// the remaining experiments still run, and awgexp exits non-zero at the
// end if anything failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"awgsim/internal/experiments"
	"awgsim/internal/sim"
)

// benchEntry is one experiment's row in the -json trajectory.
type benchEntry struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	WallSecs  float64 `json:"wall_secs"`
	SimCycles uint64  `json:"sim_cycles"` // simulated cycles across the experiment's runs
	SimRuns   uint64  `json:"sim_runs"`
	Error     string  `json:"error,omitempty"`
}

// benchReport is the -json file: a perf baseline of the experiment suite,
// comparable across commits when quick/workers match.
type benchReport struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"` // 0 = GOMAXPROCS
	Quick       bool         `json:"quick"`
	Experiments []benchEntry `json:"experiments"`
	TotalSecs   float64      `json:"total_secs"`
	TotalCycles uint64       `json:"total_cycles"`
	TotalRuns   uint64       `json:"total_runs"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "single experiment id (table1, table2, fig5..fig15); empty = all")
		quick    = flag.Bool("quick", false, "reduced launches: shapes only, runs in seconds")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath = flag.String("json", "", "write a bench-trajectory JSON (per-experiment wall time and simulated cycles) to this file")
		workers  = flag.Int("workers", 0, "simulation worker pool size; 0 = GOMAXPROCS")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *workers > 0 {
		// The pool sizes itself from GOMAXPROCS; narrowing it also keeps
		// the engine goroutines' scheduling pressure down.
		runtime.GOMAXPROCS(*workers)
	}

	opts := experiments.Options{Quick: *quick}
	run := experiments.All()
	if *exp != "" {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}

	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Quick:      *quick,
	}
	var failures []string
	suiteStart := time.Now()
	for _, e := range run {
		start := time.Now()
		cyc0, runs0 := sim.Totals()
		tab, err := e.Run(opts)
		cyc1, runs1 := sim.Totals()
		entry := benchEntry{
			ID:        e.ID,
			Title:     e.Title,
			WallSecs:  time.Since(start).Seconds(),
			SimCycles: cyc1 - cyc0,
			SimRuns:   runs1 - runs0,
		}
		if err != nil {
			entry.Error = err.Error()
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
			fmt.Fprintf(os.Stderr, "awgexp: %s: %v\n", e.ID, err)
		} else {
			fmt.Println(tab.String())
			if e.ID == "fig6" {
				if tl, tlErr := experiments.Fig6Timelines(opts); tlErr == nil {
					fmt.Println(tl)
				}
			}
			if e.ID == "faults" {
				if ex, exErr := experiments.FaultsWorkedExample(opts); exErr == nil {
					fmt.Println(ex)
				}
			}
			fmt.Printf("[%s regenerated in %.1fs]\n\n", e.ID, entry.WallSecs)
		}
		report.Experiments = append(report.Experiments, entry)
	}
	if *exp == "" && len(failures) == 0 {
		fmt.Println(experiments.HardwareOverhead().String())
	}
	report.TotalSecs = time.Since(suiteStart).Seconds()
	report.TotalCycles, report.TotalRuns = sim.Totals()

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "awgexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "awgexp: bench trajectory written to %s\n", *jsonPath)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "awgexp: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
}

func writeReport(path string, r benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
