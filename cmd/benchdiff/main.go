// Command benchdiff compares the two newest perf-trajectory entries in
// BENCH_results.json (appended by `make bench`) and reports the wall-clock
// and allocator-pressure movement per experiment.
//
// Usage:
//
//	go run ./cmd/benchdiff [-json BENCH_results.json] [-threshold 10]
//
// Exit status is non-zero when total wall clock regressed by more than
// threshold percent between the two entries; experiments present only in
// the newer entry are reported but excluded from the gate, so adding an
// experiment does not read as a regression. In `make ci` the step is
// advisory (prefixed with -): trajectory entries are recorded on whatever
// machine ran `make bench` last, so a cross-machine comparison can
// legitimately exceed the threshold without a code regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	ID           string  `json:"id"`
	WallSecs     float64 `json:"wall_secs"`
	SimRuns      uint64  `json:"sim_runs"`
	CacheHits    uint64  `json:"cache_hits"`
	Forks        uint64  `json:"forks"`
	PrefixSaved  uint64  `json:"prefix_cycles_saved"`
	SnapBytes    uint64  `json:"snapshot_bytes"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

type report struct {
	Generated   string  `json:"generated"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Quick       bool    `json:"quick"`
	Exps        []entry `json:"experiments"`
	TotalSecs   float64 `json:"total_secs"`
	CacheHits   uint64  `json:"cache_hits"`
	Forks       uint64  `json:"forks"`
	PrefixSaved uint64  `json:"prefix_cycles_saved"`
	SnapBytes   uint64  `json:"snapshot_bytes"`
	// Execution-path split: device ops run by the inline IR interpreter
	// vs WG goroutines spawned for the closure fallback.
	OpsInterpreted    uint64 `json:"ops_interpreted"`
	GoroutinesSpawned uint64 `json:"goroutines_spawned"`
}

func main() {
	path := flag.String("json", "BENCH_results.json", "trajectory file to compare")
	threshold := flag.Float64("threshold", 10, "regression gate on total wall clock, percent")
	flag.Parse()

	data, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var reports []report
	if err := json.Unmarshal(data, &reports); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *path, err)
		os.Exit(2)
	}
	if len(reports) < 2 {
		fmt.Printf("benchdiff: %s has %d entr%s; need two to compare — run `make bench` again after a change\n",
			*path, len(reports), plural(len(reports), "y", "ies"))
		return
	}
	old, cur := reports[len(reports)-2], reports[len(reports)-1]
	comparable := old.Quick == cur.Quick && old.Workers == cur.Workers && old.GOMAXPROCS == cur.GOMAXPROCS
	fmt.Printf("benchdiff: %s (%s -> %s)\n", *path, orUnstamped(old.Generated), orUnstamped(cur.Generated))
	if !comparable {
		fmt.Printf("  note: configs differ (quick=%v/%v workers=%d/%d gomaxprocs=%d/%d); deltas are indicative only\n",
			old.Quick, cur.Quick, old.Workers, cur.Workers, old.GOMAXPROCS, cur.GOMAXPROCS)
	}

	prev := map[string]entry{}
	for _, e := range old.Exps {
		prev[e.ID] = e
	}
	fmt.Printf("  %-10s %10s %10s %8s   %s\n", "experiment", "old secs", "new secs", "delta", "allocs/run old->new")
	var newOnlySecs float64
	for _, e := range cur.Exps {
		p, ok := prev[e.ID]
		if !ok {
			newOnlySecs += e.WallSecs
			fmt.Printf("  %-10s %10s %10.3f %8s   (new experiment)\n", e.ID, "-", e.WallSecs, "-")
			continue
		}
		extra := ""
		if e.CacheHits > 0 {
			extra = fmt.Sprintf("  [%d/%d runs from cache]", e.CacheHits, e.SimRuns)
		}
		if e.Forks > 0 {
			extra += fmt.Sprintf("  [%d forked, %s prefix cycles saved]", e.Forks, human(e.PrefixSaved))
		}
		fmt.Printf("  %-10s %10.3f %10.3f %+7.1f%%   %.0f -> %.0f%s\n",
			e.ID, p.WallSecs, e.WallSecs, pct(p.WallSecs, e.WallSecs), p.AllocsPerRun, e.AllocsPerRun, extra)
	}
	// Gate on like-for-like work: experiments that only exist in the new
	// entry (a PR adding one) are reported above but their wall time is
	// excluded from the regression comparison — new coverage is not a
	// slowdown of the old coverage.
	gatedSecs := cur.TotalSecs - newOnlySecs
	total := pct(old.TotalSecs, gatedSecs)
	fmt.Printf("  %-10s %10.3f %10.3f %+7.1f%%\n", "TOTAL", old.TotalSecs, cur.TotalSecs, pct(old.TotalSecs, cur.TotalSecs))
	if newOnlySecs > 0 {
		fmt.Printf("  gate excludes %.3fs of new experiment(s): %+.1f%% on comparable work\n", newOnlySecs, total)
	}
	if cur.CacheHits > 0 {
		fmt.Printf("  run cache: %d replayed runs in the new entry\n", cur.CacheHits)
	}
	if cur.Forks > 0 || old.Forks > 0 {
		fmt.Printf("  fork planner: %d -> %d forked runs, %s -> %s prefix cycles saved, %s -> %s snapshot bytes\n",
			old.Forks, cur.Forks, human(old.PrefixSaved), human(cur.PrefixSaved),
			human(old.SnapBytes), human(cur.SnapBytes))
	}
	if cur.OpsInterpreted > 0 || old.OpsInterpreted > 0 ||
		cur.GoroutinesSpawned > 0 || old.GoroutinesSpawned > 0 {
		fmt.Printf("  exec paths: %s -> %s IR ops interpreted, %s -> %s WG goroutines spawned\n",
			human(old.OpsInterpreted), human(cur.OpsInterpreted),
			human(old.GoroutinesSpawned), human(cur.GoroutinesSpawned))
	}
	if total > *threshold {
		fmt.Fprintf(os.Stderr, "benchdiff: total wall clock regressed %.1f%% (> %.0f%% gate)\n", total, *threshold)
		os.Exit(1)
	}
}

// pct is the relative movement from old to new in percent; +10 means new
// is 10% slower.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// human renders a count with a k/M/G suffix for the fork-planner columns.
func human(n uint64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

func orUnstamped(s string) string {
	if s == "" {
		return "unstamped"
	}
	return s
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
