package fault_test

import (
	"testing"

	"awgsim/internal/fault"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/sim"
)

// FuzzSchedule feeds seed-generated fault schedules through a small
// oversubscribed simulation under a rotating policy and enforces the IFP
// invariant on every outcome: no panic, IFP policies complete verified,
// non-IFP deadlocks carry a structured diagnosis. The Makefile's ci target
// runs this for a short -fuzztime as a robustness smoke.
func FuzzSchedule(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(seed, uint8(seed))
	}
	policies := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
	f.Fuzz(func(t *testing.T, seed uint64, polIdx uint8) {
		policy := policies[int(polIdx)%len(policies)]
		gcfg := gpu.DefaultConfig()
		gcfg.NumCUs = 2
		gcfg.MaxWGsPerCU = 4
		gcfg.ProgressWindow = 100_000
		sched := fault.Random(seed, gcfg.NumCUs, 5_000, 40_000)
		if err := sched.Validate(gcfg.NumCUs); err != nil {
			t.Fatalf("generated schedule invalid: %v", err)
		}
		p := kernels.DefaultParams()
		p.Groups = gcfg.NumCUs
		p.NumWGs = 2 * gcfg.NumCUs * gcfg.MaxWGsPerCU // oversubscribed 2x
		p.Iters = 3
		res, err := sim.Run(sim.Config{
			Benchmark:   "SPM_G",
			Policy:      policy,
			GPU:         gcfg,
			Params:      p,
			Faults:      &sched,
			CycleBudget: 5_000_000,
		})
		if cerr := fault.CheckOutcome(policy, res, err); cerr != nil {
			t.Fatal(cerr)
		}
	})
}
