package fault

import (
	"fmt"
	"strings"

	"awgsim/internal/metrics"
)

// ProvidesIFP reports whether a policy (by results name) guarantees
// independent forward progress of work-groups. Baseline busy-waits and
// Sleep backs off without ever yielding resources, so neither can make
// progress when the WGs they wait for cannot be dispatched; every other
// architecture in the design space eventually yields (timeout, monitor
// notification, or fallback) and therefore must complete under any fault
// schedule that leaves at least one CU enabled.
func ProvidesIFP(policy string) bool {
	if policy == "Baseline" {
		return false
	}
	if policy == "Sleep" || strings.HasPrefix(policy, "Sleep-") {
		return false
	}
	return true
}

// CheckOutcome enforces the IFP invariant on one run's outcome:
//
//   - an IFP-providing policy must complete (no error, not deadlocked) —
//     a deadlock under any fault schedule is an IFP violation;
//   - a non-IFP policy may deadlock, but a deadlocked run must carry a
//     structured diagnosis — "diagnosed, not hung".
//
// A nil return means the invariant holds for this run.
func CheckOutcome(policy string, res metrics.Result, err error) error {
	if ProvidesIFP(policy) {
		if err != nil {
			return fmt.Errorf("fault: IFP policy %s failed: %w", policy, err)
		}
		if res.Deadlocked {
			why := "no diagnosis"
			if res.Diagnosis != nil {
				why = res.Diagnosis.Summary()
			}
			return fmt.Errorf("fault: IFP policy %s deadlocked on %s: %s", policy, res.Benchmark, why)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("fault: %s failed: %w", policy, err)
	}
	if res.Deadlocked && res.Diagnosis == nil {
		return fmt.Errorf("fault: %s deadlocked on %s without a diagnosis", policy, res.Benchmark)
	}
	return nil
}
