// Package fault implements the deterministic fault-injection subsystem of
// the robustness evaluation: seed-driven schedules of mid-run hardware
// faults — CU loss/restore cycles, SyncMon capacity degradation (forcing
// Monitor-Log spills), and CP firmware-cadence jitter — armed onto a
// machine's event calendar before the kernel launches.
//
// Schedules are data, not behaviour: the same (schedule, config, seed)
// triple always replays bit-identically, because every fault fires as an
// ordinary engine event at a fixed cycle. The IFP invariant the paper
// claims (Section III) is then checkable mechanically: IFP-providing
// policies must complete with verified results under *every* schedule,
// while Baseline/Sleep may deadlock but must be diagnosed, never hung —
// see invariant.go.
package fault

import (
	"fmt"
	"sort"

	"awgsim/internal/cp"
	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/syncmon"
)

// Op enumerates the injectable fault kinds.
type Op int

const (
	// CULoss preempts a CU mid-run (context-saves its resident WGs and
	// removes it from placement), as when another process's kernel claims
	// the CU for a scheduling time slice.
	CULoss Op = iota
	// CURestore returns a previously lost CU to placement.
	CURestore
	// DegradeSyncMon shrinks the monitor's condition-cache ways and
	// waiting-WG list mid-run, displacing entries into the Monitor Log
	// (and, past the log, into unchecked Mesa-style wakes).
	DegradeSyncMon
	// JitterCP stretches the Command Processor's drain/check cadence by a
	// deterministic pseudo-random skew, modelling busy or descheduled
	// firmware.
	JitterCP
)

func (o Op) String() string {
	switch o {
	case CULoss:
		return "cu-loss"
	case CURestore:
		return "cu-restore"
	case DegradeSyncMon:
		return "degrade-syncmon"
	case JitterCP:
		return "jitter-cp"
	default:
		return "?"
	}
}

// Event is one scheduled fault. Only the fields its Op reads are
// meaningful: CU for CULoss/CURestore; Ways and WaitList for
// DegradeSyncMon; Seed and MaxSkew for JitterCP.
type Event struct {
	At event.Cycle
	Op Op

	CU int // CULoss / CURestore target

	Ways     int // DegradeSyncMon: new condition-cache ways per set (>= 1)
	WaitList int // DegradeSyncMon: new waiting-WG list capacity (>= 0)

	Seed    uint64      // JitterCP: skew stream seed
	MaxSkew event.Cycle // JitterCP: max added cadence skew, cycles
}

// Schedule is a named, time-ordered fault sequence. Seed records the
// generator seed for seed-addressable schedules (Random), zero for
// hand-written ones; error paths carry it so a failing sweep cell is
// reproducible from the message alone.
type Schedule struct {
	Name   string
	Seed   uint64
	Events []Event
}

// String renders the schedule compactly for logs and test names.
func (s Schedule) String() string {
	return fmt.Sprintf("%s(%d events)", s.label(), len(s.Events))
}

// label names the schedule in error strings, appending the generator seed
// when one is recorded: regenerate the offending schedule with
// Random(seed, ...) straight from the message.
func (s Schedule) label() string {
	if s.Seed == 0 {
		return s.Name
	}
	return fmt.Sprintf("%s[seed=%d]", s.Name, s.Seed)
}

// Validate checks a schedule against a machine with numCUs compute units:
// CU indices must be in range, a CU may only be lost while enabled and
// restored while lost, at least one CU must remain enabled after every
// event, degrade geometries must be sane, and events must be time-ordered.
func (s Schedule) Validate(numCUs int) error {
	if numCUs <= 0 {
		return fmt.Errorf("fault: %d CUs", numCUs)
	}
	enabled := numCUs
	lost := make(map[int]bool)
	var prev event.Cycle
	for i, e := range s.Events {
		if e.At < prev {
			return fmt.Errorf("fault: %s event %d at cycle %d before predecessor at %d",
				s.label(), i, e.At, prev)
		}
		prev = e.At
		switch e.Op {
		case CULoss:
			if e.CU < 0 || e.CU >= numCUs {
				return fmt.Errorf("fault: %s event %d: CU %d out of range [0,%d)", s.label(), i, e.CU, numCUs)
			}
			if lost[e.CU] {
				return fmt.Errorf("fault: %s event %d: CU %d lost twice", s.label(), i, e.CU)
			}
			if enabled == 1 {
				return fmt.Errorf("fault: %s event %d: losing CU %d leaves no CU enabled", s.label(), i, e.CU)
			}
			lost[e.CU] = true
			enabled--
		case CURestore:
			if e.CU < 0 || e.CU >= numCUs {
				return fmt.Errorf("fault: %s event %d: CU %d out of range [0,%d)", s.label(), i, e.CU, numCUs)
			}
			if !lost[e.CU] {
				return fmt.Errorf("fault: %s event %d: restoring CU %d that is not lost", s.label(), i, e.CU)
			}
			delete(lost, e.CU)
			enabled++
		case DegradeSyncMon:
			if e.Ways < 1 || e.WaitList < 0 {
				return fmt.Errorf("fault: %s event %d: degrade to %d ways / %d waiters", s.label(), i, e.Ways, e.WaitList)
			}
		case JitterCP:
			// Any seed/skew is valid; cp.Processor clamps cadence >= 1.
		default:
			return fmt.Errorf("fault: %s event %d: unknown op %d", s.label(), i, e.Op)
		}
	}
	return nil
}

// monitorHardware is the structural interface the monitor-family policies
// satisfy; DegradeSyncMon and JitterCP reach the hardware through it.
// Policies without monitor hardware (Baseline, Sleep, Timeout) simply
// don't implement it, and those faults become no-ops — there is nothing
// to degrade.
type monitorHardware interface {
	SyncMon() *syncmon.SyncMon
	CP() *cp.Processor
}

// Arm validates sched against m and schedules every fault as an engine
// event. Call between NewMachine and Run.
func Arm(m *gpu.Machine, sched Schedule) error {
	if err := sched.Validate(m.Config().NumCUs); err != nil {
		return err
	}
	for _, e := range sched.Events {
		switch e.Op {
		case CULoss:
			m.Engine().At(e.At, func() { m.PreemptCU(gpu.CUID(e.CU)) })
		case CURestore:
			m.Engine().At(e.At, func() { m.RestoreCU(gpu.CUID(e.CU)) })
		case DegradeSyncMon:
			hw, ok := m.Policy().(monitorHardware)
			if !ok {
				continue
			}
			m.Engine().At(e.At, func() { hw.SyncMon().Degrade(e.Ways, e.WaitList) })
		case JitterCP:
			hw, ok := m.Policy().(monitorHardware)
			if !ok {
				continue
			}
			m.Engine().At(e.At, func() {
				// The skew walk lives in the CP's snapshotted jitter state,
				// so a machine rewind replays the same stretch sequence.
				hw.CP().SetCadenceJitter(func(state *uint64, base event.Cycle) event.Cycle {
					if e.MaxSkew == 0 {
						return base
					}
					return base + event.Cycle(splitmix(state)%uint64(e.MaxSkew))
				}, e.Seed)
			})
		}
	}
	return nil
}

// applicable reports whether e would schedule an engine event for pol: CU
// faults always do; monitor faults only when the policy exposes monitor
// hardware (Arm skips them entirely otherwise, consuming no sequence
// number).
func applicable(pol gpu.Policy, e Event) bool {
	switch e.Op {
	case DegradeSyncMon, JitterCP:
		_, ok := pol.(monitorHardware)
		return ok
	default:
		return true
	}
}

// CountApplicable reports how many engine events Arm would schedule for
// sched under pol — the sequence numbers a cold arm consumes. The fork
// planner reserves the group-wide maximum at machine construction so
// ArmReserved can splice each member's faults into cold-run firing order.
func CountApplicable(pol gpu.Policy, sched Schedule) int {
	n := 0
	for _, e := range sched.Events {
		if applicable(pol, e) {
			n++
		}
	}
	return n
}

// FirstApplicableAt reports the cycle of the first fault that would
// schedule an engine event under pol, and whether any would. The fork
// planner simulates a sweep group's shared prefix up to just before the
// earliest such cycle across its members.
func FirstApplicableAt(pol gpu.Policy, sched Schedule) (event.Cycle, bool) {
	for _, e := range sched.Events {
		if applicable(pol, e) {
			return e.At, true
		}
	}
	return 0, false
}

// ArmReserved arms sched like Arm, but schedules each fault under a
// previously reserved sequence number (seqBase + its applicable-event
// index). The fork planner calls it after restoring a prefix snapshot: the
// member's machine was built with a matching ReserveSeqs at the point a
// cold run would Arm, so every fault splices into exactly the calendar
// position the cold run gives it and same-cycle firing order — and
// therefore the run's output — is bit-identical. A member consuming fewer
// than the reserved count leaves trailing reservations unused, which shifts
// all later sequence numbers uniformly and cannot reorder same-cycle
// events.
func ArmReserved(m *gpu.Machine, sched Schedule, seqBase uint64) error {
	if err := sched.Validate(m.Config().NumCUs); err != nil {
		return err
	}
	seq := seqBase
	for _, e := range sched.Events {
		if !applicable(m.Policy(), e) {
			continue
		}
		armOneReserved(m, e, seq)
		seq++
	}
	return nil
}

// armOneReserved schedules one applicable fault event under a reserved
// sequence number.
func armOneReserved(m *gpu.Machine, e Event, seq uint64) {
	var fn func()
	switch e.Op {
	case CULoss:
		fn = func() { m.PreemptCU(gpu.CUID(e.CU)) }
	case CURestore:
		fn = func() { m.RestoreCU(gpu.CUID(e.CU)) }
	case DegradeSyncMon:
		hw := m.Policy().(monitorHardware)
		fn = func() { hw.SyncMon().Degrade(e.Ways, e.WaitList) }
	case JitterCP:
		hw := m.Policy().(monitorHardware)
		fn = func() {
			// See Arm: the skew walk lives in snapshotted CP state.
			hw.CP().SetCadenceJitter(func(state *uint64, base event.Cycle) event.Cycle {
				if e.MaxSkew == 0 {
					return base
				}
				return base + event.Cycle(splitmix(state)%uint64(e.MaxSkew))
			}, e.Seed)
		}
	}
	m.Engine().AtWithSeq(e.At, seq, fn)
}

// ArmReservedAfter arms the tail of sched that lies strictly after the
// given cycle, under the same reserved sequence numbers a full ArmReserved
// would give those events (seqBase + applicable-event index over the WHOLE
// schedule — skipped events leave their reservations unused). The fleet
// layer uses it when a workload migrates onto a device mid-run: the target
// device's fault environment applies from the migration instant onward,
// while events whose cycles already passed on the workload's local clock
// are elided (AtWithSeq refuses past cycles). The full schedule is
// validated, so the armed tail is a consistent continuation.
func ArmReservedAfter(m *gpu.Machine, sched Schedule, seqBase uint64, after event.Cycle) error {
	if err := sched.Validate(m.Config().NumCUs); err != nil {
		return err
	}
	seq := seqBase
	for _, e := range sched.Events {
		if !applicable(m.Policy(), e) {
			continue
		}
		if e.At <= after {
			seq++
			continue
		}
		armOneReserved(m, e, seq)
		seq++
	}
	return nil
}

// splitmix advances a splitmix64 state and returns the next value — the
// same generator the machine's jitter stream uses, so fault randomness is
// deterministic and seed-addressable.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	x := *state
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Scripted returns the canonical hand-written schedules, scaled to a
// machine with numCUs compute units and a fault window starting around
// base cycles (faults land after the kernel has built up waiting state).
func Scripted(numCUs int, base event.Cycle) []Schedule {
	if numCUs < 2 {
		// Single-CU machines can't lose a CU; only capacity faults apply.
		return []Schedule{
			{Name: "squeeze", Events: []Event{
				{At: base, Op: DegradeSyncMon, Ways: 1, WaitList: 8},
			}},
		}
	}
	last := numCUs - 1
	flap := Schedule{Name: "flap"}
	// One CU repeatedly lost and restored: the oversubscribed experiment
	// run in a loop.
	for i := 0; i < 4; i++ {
		at := base + event.Cycle(i)*2*base
		flap.Events = append(flap.Events,
			Event{At: at, Op: CULoss, CU: last},
			Event{At: at + base, Op: CURestore, CU: last},
		)
	}
	rolling := Schedule{Name: "rolling"}
	// A loss wave rolls across the CUs, each restored before the next two
	// go down — at most two CUs are ever missing.
	for i := 0; i < numCUs; i++ {
		at := base + event.Cycle(i)*base
		rolling.Events = append(rolling.Events, Event{At: at, Op: CULoss, CU: i})
		rolling.Events = append(rolling.Events, Event{At: at + 2*base, Op: CURestore, CU: i})
	}
	sort.SliceStable(rolling.Events, func(i, j int) bool { return rolling.Events[i].At < rolling.Events[j].At })
	squeeze := Schedule{Name: "squeeze", Events: []Event{
		// Two-step monitor capacity collapse: first to a sliver, then to
		// one way and a handful of waiters, forcing Monitor-Log spills and
		// eventually log rejects.
		{At: base, Op: DegradeSyncMon, Ways: 2, WaitList: 32},
		{At: 3 * base, Op: DegradeSyncMon, Ways: 1, WaitList: 4},
	}}
	jitter := Schedule{Name: "jitter", Events: []Event{
		// CP cadence stretched by up to 16x its default drain interval,
		// with a capacity squeeze to make spilled waiters depend on it.
		{At: base, Op: DegradeSyncMon, Ways: 1, WaitList: 16},
		{At: base, Op: JitterCP, Seed: 0xc0ffee, MaxSkew: 128_000},
	}}
	halfdown := Schedule{Name: "halfdown"}
	// Half the machine disappears one CU at a time and never comes back:
	// the strongest oversubscription ramp short of losing everything.
	for i := 0; i < numCUs/2; i++ {
		halfdown.Events = append(halfdown.Events,
			Event{At: base + event.Cycle(i)*base/2, Op: CULoss, CU: numCUs - 1 - i})
	}
	return []Schedule{flap, rolling, squeeze, jitter, halfdown}
}

// Random generates a seed-addressable random schedule: a splitmix64 stream
// drives fault kinds, targets, and timestamps across [base, base+span).
// The generator tracks CU enablement so the schedule always validates —
// restores pair with losses and at least one CU stays enabled throughout.
// Identical (seed, numCUs, base, span) inputs yield identical schedules.
func Random(seed uint64, numCUs int, base, span event.Cycle) Schedule {
	s := Schedule{Name: fmt.Sprintf("rand-%d", seed), Seed: seed}
	state := seed
	if span == 0 {
		span = 1
	}
	n := 6 + int(splitmix(&state)%7) // 6..12 events
	enabled := make([]bool, numCUs)
	for i := range enabled {
		enabled[i] = true
	}
	numEnabled := numCUs
	at := base
	// Inter-event gaps draw from [0, span/n]. When span < n the integer
	// divide would collapse the divisor to 1 and every event would land at
	// exactly base; clamping to 2 keeps a 0-or-1 cycle spread so short
	// windows still order their events. Unchanged whenever span >= n.
	div := span/event.Cycle(n) + 1
	if div < 2 {
		div = 2
	}
	for i := 0; i < n; i++ {
		at += event.Cycle(splitmix(&state) % uint64(div))
		switch splitmix(&state) % 4 {
		case 0: // lose a random enabled CU, keeping one alive
			if numEnabled < 2 {
				continue
			}
			k := int(splitmix(&state) % uint64(numCUs))
			for !enabled[k] {
				k = (k + 1) % numCUs
			}
			enabled[k] = false
			numEnabled--
			s.Events = append(s.Events, Event{At: at, Op: CULoss, CU: k})
		case 1: // restore a random lost CU
			if numEnabled == numCUs {
				continue
			}
			k := int(splitmix(&state) % uint64(numCUs))
			for enabled[k] {
				k = (k + 1) % numCUs
			}
			enabled[k] = true
			numEnabled++
			s.Events = append(s.Events, Event{At: at, Op: CURestore, CU: k})
		case 2: // degrade the monitor to a random small geometry
			// WaitList 0 would model a monitor with ways but nowhere to
			// park a waiter — a degenerate geometry DegradeSyncMon never
			// means (WaitListSize 0 is reserved for the uncached-monitor
			// policy variants). Floor the draw at one entry; the ways draw
			// stays first so schedules that never drew 0 are unchanged.
			ways := 1 + int(splitmix(&state)%4)
			wl := int(splitmix(&state) % 64)
			if wl == 0 {
				wl = 1
			}
			s.Events = append(s.Events, Event{
				At: at, Op: DegradeSyncMon,
				Ways: ways, WaitList: wl,
			})
		default: // jitter the CP cadence
			s.Events = append(s.Events, Event{
				At: at, Op: JitterCP,
				Seed:    splitmix(&state),
				MaxSkew: event.Cycle(splitmix(&state) % 64_000),
			})
		}
	}
	return s
}
