package fault

import (
	"reflect"
	"strings"
	"testing"

	"awgsim/internal/event"
)

func TestRandomDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		a := Random(seed, 8, 10_000, 80_000)
		b := Random(seed, 8, 10_000, 80_000)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\n%+v", seed, a, b)
		}
		if len(a.Events) < 1 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
	}
}

// TestRandomShortSpanSpreads pins the degenerate-schedule fix: with
// span < n the old step divisor truncated to 1 and every event landed at
// exactly base, so short fault windows collapsed to a single burst. The
// clamped divisor keeps a 0-or-1 cycle gap per event.
func TestRandomShortSpanSpreads(t *testing.T) {
	// A single seed can still legitimately draw all-zero gaps (each gap is
	// a coin flip once clamped), so the pin is on the population: the old
	// code collapsed every seed; now bursts are the rare case.
	bursts := 0
	for seed := uint64(1); seed <= 16; seed++ {
		s := Random(seed, 8, 1000, 5)
		if err := s.Validate(8); err != nil {
			t.Fatalf("seed %d: short-span schedule invalid: %v", seed, err)
		}
		ats := map[event.Cycle]bool{}
		for _, e := range s.Events {
			if e.At < 1000 || e.At > 1000+event.Cycle(12) {
				t.Fatalf("seed %d: event at %d outside the window", seed, e.At)
			}
			ats[e.At] = true
		}
		if len(ats) < 2 {
			bursts++
		}
	}
	if bursts > 3 {
		t.Errorf("%d/16 short-span seeds collapsed to a single timestamp", bursts)
	}
	// Long spans are untouched by the clamp: schedules that already spread
	// keep their exact timestamps (div = span/n + 1 >= 2 either way).
	long := Random(1, 8, 10_000, 80_000)
	if err := long.Validate(8); err != nil {
		t.Fatal(err)
	}
}

// TestRandomWaitListFloor pins the other half of the fix: DegradeSyncMon
// events must never carry WaitList 0 (a monitor with ways but nowhere to
// park a waiter — a geometry the fault plane never means; WaitListSize 0
// is reserved for the uncached-monitor policy variants). Seed 60 drew a
// zero from the old generator.
func TestRandomWaitListFloor(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		for _, e := range Random(seed, 8, 10_000, 80_000).Events {
			if e.Op == DegradeSyncMon && (e.WaitList < 1 || e.Ways < 1) {
				t.Errorf("seed %d: degenerate monitor geometry ways=%d waitlist=%d",
					seed, e.Ways, e.WaitList)
			}
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	a := Random(1, 8, 10_000, 80_000)
	b := Random(2, 8, 10_000, 80_000)
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestScriptedValidate(t *testing.T) {
	for _, s := range Scripted(8, 10_000) {
		if err := s.Validate(8); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(s.Events) == 0 {
			t.Errorf("%s: no events", s.Name)
		}
	}
	// The single-CU fallback still yields at least the capacity squeeze.
	one := Scripted(1, 10_000)
	if len(one) == 0 {
		t.Fatal("no single-CU schedules")
	}
	for _, s := range one {
		if err := s.Validate(1); err != nil {
			t.Errorf("single-CU %s: %v", s.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		sched Schedule
	}{
		{"cu out of range", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: CULoss, CU: 8},
		}}},
		{"negative cu", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: CULoss, CU: -1},
		}}},
		{"double loss", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: CULoss, CU: 3},
			{At: 20, Op: CULoss, CU: 3},
		}}},
		{"restore not lost", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: CURestore, CU: 3},
		}}},
		{"all CUs lost", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: CULoss, CU: 0},
			{At: 20, Op: CULoss, CU: 1},
		}}},
		{"unordered", Schedule{Name: "bad", Events: []Event{
			{At: 20, Op: CULoss, CU: 0},
			{At: 10, Op: CURestore, CU: 0},
		}}},
		{"zero ways", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: DegradeSyncMon, Ways: 0, WaitList: 8},
		}}},
		{"negative waitlist", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: DegradeSyncMon, Ways: 1, WaitList: -1},
		}}},
		{"unknown op", Schedule{Name: "bad", Events: []Event{
			{At: 10, Op: Op(99)},
		}}},
	}
	for _, c := range cases {
		if err := c.sched.Validate(2); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.sched.Events)
		}
	}
	if err := (Schedule{}).Validate(0); err == nil {
		t.Error("zero-CU machine accepted")
	}
}

// TestValidateErrorsCarrySeedAndIndex pins the reproducibility contract of
// the error paths: a failing schedule's message alone names the generator
// seed and the offending event index, so a broken sweep cell can be
// regenerated without the sweep's surrounding state.
func TestValidateErrorsCarrySeedAndIndex(t *testing.T) {
	s := Schedule{Name: "rand-42", Seed: 42, Events: []Event{
		{At: 10, Op: CULoss, CU: 0},
		{At: 20, Op: CULoss, CU: 17},
	}}
	err := s.Validate(8)
	if err == nil {
		t.Fatal("out-of-range CU accepted")
	}
	for _, want := range []string{"seed=42", "event 1", "rand-42"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate error %q does not mention %q", err, want)
		}
	}
	// Random's schedules carry their seed, so Arm-time errors in a fleet
	// sweep are reproducible from the message alone.
	if r := Random(7, 8, 10_000, 80_000); r.Seed != 7 {
		t.Errorf("Random(7).Seed = %d, want 7", r.Seed)
	}
	// Hand-written schedules stay unchanged: no seed suffix.
	hand := Schedule{Name: "flap", Events: []Event{{At: 10, Op: CURestore, CU: 1}}}
	herr := hand.Validate(8)
	if herr == nil {
		t.Fatal("unpaired restore accepted")
	}
	if strings.Contains(herr.Error(), "seed=") {
		t.Errorf("seedless schedule error %q mentions a seed", herr)
	}
	if !strings.Contains(herr.Error(), "event 0") {
		t.Errorf("error %q does not name the event index", herr)
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		CULoss: "cu-loss", CURestore: "cu-restore",
		DegradeSyncMon: "degrade-syncmon", JitterCP: "jitter-cp",
		Op(99): "?",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	s := Schedule{Name: "flap", Events: make([]Event, 3)}
	if got := s.String(); got != "flap(3 events)" {
		t.Errorf("Schedule.String() = %q", got)
	}
}

func TestProvidesIFP(t *testing.T) {
	for pol, want := range map[string]bool{
		"Baseline":   false,
		"Sleep":      false,
		"Sleep-16k":  false,
		"Timeout":    true,
		"Timeout-1m": true,
		"MonR":       true,
		"MonNR-All":  true,
		"MonNR-One":  true,
		"AWG":        true,
	} {
		if got := ProvidesIFP(pol); got != want {
			t.Errorf("ProvidesIFP(%q) = %v, want %v", pol, got, want)
		}
	}
}
