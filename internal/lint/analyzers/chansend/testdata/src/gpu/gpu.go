// Package gpu is a stand-in whose path suffix puts it in chansend's
// scope; the method names below match the machine's hot roots, so the
// sends they reach — directly, through a callee, or through a function
// value — are the ones the analyzer must flag.
package gpu

type machine struct {
	resp chan int
	fn   func()
}

// handle is a hot root: the send it reaches through deliver is reported
// at the send site, named after the enclosing function.
func (m *machine) handle() {
	m.deliver(1)
}

func (m *machine) deliver(v int) {
	m.resp <- v // want `channel send in deliver, reachable from a machine hot path`
}

// step only references sendTask as a value; the summary's transitive
// Calls set still carries it, so its send is hot.
func (m *machine) step() {
	m.fn = m.sendTask
}

func (m *machine) sendTask() {
	m.resp <- 0 // want `channel send in sendTask, reachable from a machine hot path`
}

// coldSend is unreachable from every hot root: its send stays quiet.
func coldSend(ch chan int) {
	ch <- 2
}
