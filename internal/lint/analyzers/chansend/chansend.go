// Package chansend keeps channel rendezvous off the machine's hot paths.
//
// The inline IR interpreter removed the two-channel rendezvous (request
// out, response in) that every device operation used to pay; the only
// channel traffic left in the machine belongs to the goroutine fallback —
// delivering responses to closure WGs and the replay/abort surgery around
// snapshot restores. A new channel send reachable from the per-event
// machine path would reintroduce a goroutine hand-off per operation (and,
// under the IR default, likely block forever against a WG that has no
// goroutine), so the analyzer flags every send statement in any function
// reachable from the hot roots. Sends that are the goroutine fallback
// itself carry a reasoned `//lint:allow chansend <reason>` directive.
//
// Reachability reuses the ipsummary call graph: a root's composed summary
// carries its transitive Calls set, including functions referenced only as
// values (pooled-task callees run on the hot path too). Reporting stays
// same-package: the machine package owns its channels.
package chansend

import (
	"go/ast"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the chansend analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "chansend",
	Doc:      "forbid channel sends reachable from machine hot paths without a reasoned allow",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

// machinePackages are the package-path suffixes owning the machine's event
// callbacks (suffix-matched so testdata stand-ins qualify).
var machinePackages = []string{"/gpu"}

// hotRoots are the per-event entry points: the dispatch/advance pair each
// response event runs (handle, advanceIR), the rendezvous loop of the
// goroutine path (step, receive), and the pooled atomic task bodies that
// fire once per atomic (runAtomicApply, runAtomicRespFunc).
var hotRoots = map[string]bool{
	"handle":            true,
	"step":              true,
	"receive":           true,
	"advanceIR":         true,
	"runAtomicApply":    true,
	"runAtomicRespFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ip := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	reachable := ip.Reachable(func(obj *types.Func, fd *ast.FuncDecl) bool {
		return fd != nil && fd.Body != nil && hotRoots[fd.Name.Name]
	})
	for _, obj := range ip.Order {
		fd := ip.Decls[obj]
		if !reachable[obj] || fd == nil || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if send, ok := n.(*ast.SendStmt); ok {
				pass.ReportRangef(send,
					"channel send in %s, reachable from a machine hot path; the IR path is rendezvous-free — justify a goroutine-fallback send with //lint:allow chansend <reason>",
					name)
			}
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range machinePackages {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}
