package chansend_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/chansend"
)

func TestChanSend(t *testing.T) {
	analysistest.Run(t, chansend.Analyzer, "gpu")
}
