package sim

import "strings"

// Interprocedural escapes: a map-range body may call helpers whose
// composed summaries are pure; helpers with effects still flag.

var total int
var names []string

// canon is pure (string manipulation of its argument, stdlib whitelist).
func canon(s string) string { return strings.ToUpper(strings.TrimSpace(s)) }

// double is pure through a local helper hop.
func double(x int) int { return addSelf(x) }

func addSelf(x int) int { return x + x }

// record writes package state: order-sensitive whenever called in a
// map-range body.
func record(s string) { names = append(names, s) }

// tally is pure-per-iteration? No: it accumulates into a package var.
func tally(x int) { total += x }

func pureHelperLoops(m map[string]int) int {
	acc := 0
	for k, v := range m {
		acc += double(v) + len(canon(k)) // pure helpers: order-insensitive
	}
	return acc
}

func impureHelperLoops(m map[string]int) {
	for k := range m { // want `iterates over a map in nondeterministic order`
		record(k)
	}
	for _, v := range m { // want `iterates over a map in nondeterministic order`
		tally(v)
	}
}

func pureCallStmtLoop(m map[string]int) {
	for k := range m {
		canon(k) // pure call as a statement: result discarded, no effects
	}
}
