// Package sim seeds every violation class simdeterminism reports, plus the
// sanctioned idioms it must stay quiet on.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Duration {
	t := time.Now()       // want `time\.Now is a wall-clock read`
	d := time.Since(t)    // want `time\.Since is a wall-clock read`
	d += time.Until(t)    // want `time\.Until is a wall-clock read`
	d += t.Sub(t.Add(-d)) // methods on a Time value are fine
	return d
}

func globalRand() int {
	n := rand.Intn(4)                  // want `math/rand\.Intn draws from the process-global random stream`
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand\.Shuffle draws from the process-global random stream`
	r := rand.New(rand.NewSource(1))   // explicit seeded generator: fine
	return r.Intn(4)
}

func commutative(m map[string]int) int {
	total := 0
	for _, v := range m { // counter accumulation commutes: fine
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // appended slice is sorted below: fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderLeaks(m map[string]int) []string {
	var out []string
	for k := range m { // want `iterates over a map in nondeterministic order`
		out = append(out, k)
	}
	return out // never sorted: first key wins by map order
}

func firstByMapOrder(m map[string]int) int {
	for k, v := range m { // want `iterates over a map in nondeterministic order`
		if k != "" {
			return v
		}
	}
	return 0
}

func callsInBody(m map[string]int, sink func(string)) {
	for k := range m { // want `iterates over a map in nondeterministic order`
		sink(k)
	}
}
