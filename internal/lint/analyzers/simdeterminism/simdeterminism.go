// Package simdeterminism forbids nondeterminism sources in simulator code:
// wall-clock reads, the global math/rand stream, and map iteration whose
// order can leak into schedules, experiment tables, or serialized output.
//
// Every experiment artifact in this repository is pinned by golden records
// and the paper's replay guarantee: a (configuration, seed) pair must
// reproduce bit-identical results. The three constructs below are the ways
// that guarantee has historically been (or nearly been) broken:
//
//   - time.Now / time.Since / time.Until give wall-clock values; any that
//     reach simulated state or rendered output drift between runs.
//   - The global math/rand functions draw from a process-wide stream whose
//     consumption order depends on goroutine interleaving under
//     sim.RunAll; deterministic code must thread an explicit seeded
//     *rand.Rand (or splitmix64 state) instead.
//   - Ranging over a map yields keys in a randomized order. That is fine
//     for commutative updates (counters, map-to-map transforms) but not
//     when the order can reach an append that feeds output, an engine
//     schedule call, or any other order-sensitive sink. The analyzer
//     accepts loops whose bodies are provably order-insensitive and the
//     collect-then-sort idiom (append keys, sort.X afterwards in the same
//     function); everything else is reported.
//
// Wall-clock use that is genuinely wanted (e.g. cmd-layer timestamps and
// benchmark wall time) is annotated `//lint:allow simdeterminism <reason>`.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the simdeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock reads, global math/rand, and order-leaking map iteration\n\n" +
		"Map-range bodies are judged against interprocedural effect summaries:\n" +
		"calling a helper is order-safe when the helper's composed summary is\n" +
		"pure (no non-local writes, scheduling, nondeterminism, or unknown\n" +
		"callees), instead of flagging every call syntactically.",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

// forbiddenCalls maps package path -> function name -> explanation.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
}

// randConstructors are the math/rand package-level functions that build
// explicit seeded generators rather than touching the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	ip := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, ip, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil, nil
}

// checkCall reports wall-clock and global-rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. rand.Rand.Intn, time.Time.Sub) are fine
	}
	pkg := obj.Pkg().Path()
	if why, ok := forbiddenCalls[pkg][obj.Name()]; ok {
		pass.ReportRangef(call, "%s.%s is a %s; simulator state and output must be wall-clock free",
			pkg, obj.Name(), why)
		return
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[obj.Name()] {
		pass.ReportRangef(call, "%s.%s draws from the process-global random stream; thread a seeded *rand.Rand instead",
			pkg, obj.Name())
	}
}

// checkMapRanges walks one function body for range-over-map loops.
func checkMapRanges(pass *analysis.Pass, ip *interproc.Result, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		w := &bodyWalk{pass: pass, ip: ip, rng: rng}
		w.checkStmts(rng.Body.List)
		if !w.sensitive {
			return true
		}
		// Collect-then-sort escape: every slice the body appends to is
		// sorted after the loop in the same function body.
		if len(w.appends) > 0 && w.onlyAppendsSensitive && allSortedAfter(pass, body, rng, w.appends) {
			return true
		}
		pass.Report(analysis.Diagnostic{
			Pos: rng.For, End: rng.X.End(),
			Message: "iterates over a map in nondeterministic order with an order-sensitive body; " +
				"collect and sort the keys first (or keep the body to commutative updates): " + w.why,
		})
		return true
	})
}

// bodyWalk classifies a range body as order-insensitive or not.
type bodyWalk struct {
	pass      *analysis.Pass
	ip        *interproc.Result
	rng       *ast.RangeStmt
	sensitive bool
	why       string
	// appends records canonical strings of outer slices appended to;
	// onlyAppendsSensitive is true when appends are the only reason the
	// body is order-sensitive (enabling the collect-then-sort escape).
	appends              []ast.Expr
	onlyAppendsSensitive bool
}

func (w *bodyWalk) flag(why string) {
	if !w.sensitive {
		w.why = why
		w.onlyAppendsSensitive = false
	}
	w.sensitive = true
}

func (w *bodyWalk) flagAppend(target ast.Expr) {
	w.appends = append(w.appends, target)
	if !w.sensitive {
		w.why = "appends to " + types.ExprString(target)
		w.onlyAppendsSensitive = true
	}
	w.sensitive = true
}

func (w *bodyWalk) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.checkStmt(s)
	}
}

func (w *bodyWalk) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			w.checkAssign(s, lhs, rhs)
		}
		for _, r := range s.Rhs {
			w.checkExpr(r)
		}
	case *ast.IncDecStmt:
		if !w.commutativeLvalue(s.X) {
			w.flag("updates " + types.ExprString(s.X))
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isBuiltin(w.pass, call, "delete") {
				return
			}
			// Interprocedural escape: a callee whose composed summary is
			// pure cannot leak iteration order no matter when it runs.
			if w.ip.PureCall(w.pass.TypesInfo, call) {
				for _, arg := range call.Args {
					w.checkExpr(arg)
				}
				return
			}
		}
		w.flag("calls a function whose effects may be order-sensitive")
	case *ast.IfStmt:
		w.checkExpr(s.Cond)
		if s.Init != nil {
			w.checkStmt(s.Init)
		}
		w.checkStmts(s.Body.List)
		if s.Else != nil {
			w.checkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.checkStmts(s.List)
	case *ast.DeclStmt:
		// Local declarations are fine; their initializers are vetted.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	case *ast.RangeStmt:
		// Nested ranges are analyzed independently; their bodies still
		// inherit this loop's sensitivity rules.
		w.checkExpr(s.X)
		w.checkStmts(s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.checkStmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		if s.Post != nil {
			w.checkStmt(s.Post)
		}
		w.checkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.checkStmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e)
				}
				w.checkStmts(cc.Body)
			}
		}
	default:
		// return, go, defer, send, select, type switch, labeled, ...:
		// all can export iteration order.
		w.flag("statement can export iteration order")
	}
}

// checkAssign vets one LHS of an assignment inside the loop body.
func (w *bodyWalk) checkAssign(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	// Blank: discards the value; RHS side effects are vetted separately.
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Map writes commute across iteration orders (unless the value itself
	// is order-dependent, which the RHS vetting catches via calls).
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if bt := w.pass.TypesInfo.Types[ix.X].Type; bt != nil {
			if _, isMap := bt.Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	// Variables declared by this loop (the key/value vars or := inside the
	// body) are per-iteration temporaries.
	if w.declaredInside(lhs) {
		return
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		if w.commutativeLvalue(lhs) {
			return
		}
		w.flag("accumulates into non-integer " + types.ExprString(lhs))
	case token.ASSIGN:
		// x = append(x, ...) participates in the collect-then-sort escape.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(w.pass, call, "append") &&
			len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(lhs) {
			w.flagAppend(lhs)
			return
		}
		w.flag("assigns " + types.ExprString(lhs) + " whose final value depends on iteration order")
	default:
		w.flag("updates " + types.ExprString(lhs) + " order-sensitively")
	}
}

// commutativeLvalue reports whether accumulating into this lvalue is
// order-insensitive: an integer (or boolean) variable or map entry.
// Floating-point accumulation is excluded — float addition is not
// associative, so summation order changes low bits.
func (w *bodyWalk) commutativeLvalue(e ast.Expr) bool {
	t := w.pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// declaredInside reports whether lhs is a variable declared within the
// range statement (key/value vars or body-local).
func (w *bodyWalk) declaredInside(lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[id]
	}
	return obj != nil && obj.Pos() >= w.rng.Pos() && obj.Pos() < w.rng.End()
}

// checkExpr vets an expression for calls with order-sensitive effects.
func (w *bodyWalk) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(w.pass, call, "len"), isBuiltin(w.pass, call, "cap"),
			isBuiltin(w.pass, call, "append"), isBuiltin(w.pass, call, "delete"),
			isBuiltin(w.pass, call, "min"), isBuiltin(w.pass, call, "max"),
			isConversion(w.pass, call):
			return true
		case w.ip.PureCall(w.pass.TypesInfo, call):
			// Pure per its interprocedural summary: value depends only on
			// arguments, which are themselves vetted.
			return true
		default:
			w.flag("calls " + types.ExprString(call.Fun) + " inside the loop")
			return true
		}
	})
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// allSortedAfter reports whether every appended-to slice is passed to a
// sort.* / slices.Sort* call after the range statement within fn's body.
func allSortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, targets []ast.Expr) bool {
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			sorted[types.ExprString(arg)] = true
		}
		return true
	})
	for _, t := range targets {
		if !sorted[types.ExprString(t)] {
			return false
		}
	}
	return true
}
