package simdeterminism_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, simdeterminism.Analyzer, "sim")
}
