// Package gpu is a stand-in: its package-path suffix matches the real
// machine package, so the named Program type below is what progclosure
// treats as a closure kernel body.
package gpu

// Device is the operation surface a closure Program runs against.
type Device interface{ ID() int }

// Program is the goroutine-mode closure form of a kernel body.
type Program func(d Device)

// KernelSpec mirrors the real spec: a kernel may carry a closure Program,
// an IR body, or both.
type KernelSpec struct {
	Name    string
	Program Program
	IR      []int
}
