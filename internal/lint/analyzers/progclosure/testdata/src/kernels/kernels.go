// Package kernels seeds Program definitions the analyzer must flag and
// the forms it must leave alone: clearing a Program with nil and touching
// the spec's other fields.
package kernels

import "awgsim/internal/lint/analyzers/progclosure/testdata/src/gpu"

func literalClosure() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:    "lit",
		Program: func(d gpu.Device) { _ = d.ID() }, // want `closure Program definition in the kernel library`
	}
}

func assignedClosure(spec *gpu.KernelSpec) {
	spec.Program = func(d gpu.Device) {} // want `closure Program definition in the kernel library`
}

func namedBody(d gpu.Device) {}

// A named function is still the goroutine path: flagged like a closure.
func assignedNamed(spec *gpu.KernelSpec) {
	spec.Program = namedBody // want `closure Program definition in the kernel library`
}

func localVar() gpu.Program {
	var p gpu.Program
	p = func(d gpu.Device) {} // want `closure Program definition in the kernel library`
	return p
}

func cleared(spec *gpu.KernelSpec) {
	spec.Program = nil // clearing is not a definition
	spec.Name = "renamed"
	spec.IR = []int{1}
}
