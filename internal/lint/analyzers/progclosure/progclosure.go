// Package progclosure keeps the kernel library on the program IR.
//
// The inline interpreter executes IR kernels with no goroutine and no
// channel rendezvous; a kernel defined only as a Go closure (gpu.Program)
// forces every run back onto the goroutine runtime — per-WG goroutines,
// response logging for snapshot replay, and the respawn machinery that the
// IR path made unnecessary. The analyzer flags every closure Program
// definition in internal/kernels so a new kernel is ported to the IR by
// default, and a deliberate closure — the goroutine-mode oracle paired with
// an IR body, or a harness-only kernel exercising the fallback — carries a
// reasoned `//lint:allow progclosure <reason>` directive.
//
// A definition is an assignment or composite-literal field giving a
// gpu.Program a non-nil value. Clearing a Program (= nil) is not a
// definition and stays unflagged.
package progclosure

import (
	"go/ast"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the progclosure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "progclosure",
	Doc:  "require kernels to define program IR; closure Program definitions need a reasoned allow",
	Run:  run,
}

// kernelPackages are the package-path suffixes holding the kernel library.
// Suffix matching keeps the analyzer testable from analysistest testdata
// packages of the same name.
var kernelPackages = []string{"/kernels"}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if isNilExpr(n.Rhs[i]) {
						continue
					}
					if t := pass.TypesInfo.TypeOf(lhs); isGPUProgram(t) {
						report(pass, n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok || isNilExpr(n.Value) {
					return true
				}
				// In a struct composite literal the key identifier resolves
				// to the field object, whose type is authoritative.
				if obj, ok := pass.TypesInfo.Uses[key].(*types.Var); ok && isGPUProgram(obj.Type()) {
					report(pass, n.Value)
				}
			}
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range kernelPackages {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// isGPUProgram reports whether t is the named function type Program of a
// gpu package (suffix-matched for testdata stand-ins).
func isGPUProgram(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Program" || named.Obj().Pkg() == nil {
		return false
	}
	if _, ok := named.Underlying().(*types.Signature); !ok {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "/gpu") || named.Obj().Pkg().Path() == "gpu"
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func report(pass *analysis.Pass, at ast.Expr) {
	pass.ReportRangef(at,
		"closure Program definition in the kernel library; port the kernel to the prog IR, or justify the goroutine fallback with //lint:allow progclosure <reason>")
}
