package progclosure_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/progclosure"
)

func TestProgClosure(t *testing.T) {
	analysistest.Run(t, progclosure.Analyzer, "kernels")
}
