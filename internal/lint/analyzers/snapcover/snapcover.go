// Package snapcover verifies statically that every type carrying a
// Snapshot/Restore transfer pair covers all of its mutable state: each
// field that runtime code mutates must be captured by the Snapshot side AND
// reinstated by the Restore side — transitively through embedded and
// nested structs — or carry an explicit `//lint:allow snapcover <reason>`
// on its declaration.
//
// Coverage is judged on the interprocedural summaries of the pair's
// transitive call closure, so copying a nested slab field-by-field in a
// helper, delegating to a nested type's own snapshot/restore, or invoking
// a Clone/CopyFrom on a field all count. A field is considered mutable
// when it is exported (callers anywhere may write it) or when some
// non-constructor function in the declaring package writes it; fields
// written only during construction (New*/init*) are immutable wiring and
// exempt.
//
// This check subsumes the reflect-based snapshot_guard tests: those fired
// at test time after a field shipped, this one fires in `make lint` at the
// field's declaration site.
package snapcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the snapcover entry point.
var Analyzer = &analysis.Analyzer{
	Name: "snapcover",
	Doc: "snapshot/restore pairs must cover every mutable field of their type\n\n" +
		"Transitive coverage through helpers, delegation, and nested structs is\n" +
		"computed from interprocedural summaries; uncovered mutable fields are\n" +
		"reported at their declaration so `//lint:allow snapcover <reason>` can\n" +
		"sit beside the field it exempts.",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	r := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	pkgPath := pass.Pkg.Path()

	// Field declaration sites, for reporting at the field itself.
	declPos := map[interproc.FieldKey]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if len(fld.Names) == 0 {
					// Embedded field: named after its type.
					name := embeddedName(fld.Type)
					if name != "" {
						declPos[interproc.FieldKey{Pkg: pkgPath, Type: ts.Name.Name, Field: name}] = fld.Pos()
					}
					continue
				}
				for _, id := range fld.Names {
					declPos[interproc.FieldKey{Pkg: pkgPath, Type: ts.Name.Name, Field: id.Name}] = id.Pos()
				}
			}
			return true
		})
	}

	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	reported := map[interproc.FieldKey]bool{}
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		snap, rest := interproc.SnapshotPair(named)
		if snap == nil || rest == nil {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		c := &checker{
			pass:     pass,
			r:        r,
			pkgPath:  pkgPath,
			declPos:  declPos,
			snapSum:  r.SummaryOf(snap),
			restSum:  r.SummaryOf(rest),
			pairName: name,
			reported: reported,
			visiting: map[*types.Named]bool{},
		}
		c.checkStruct(named, st, "")
	}
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	r        *interproc.Result
	pkgPath  string
	declPos  map[interproc.FieldKey]token.Pos
	snapSum  *interproc.Summary
	restSum  *interproc.Summary
	pairName string
	reported map[interproc.FieldKey]bool
	visiting map[*types.Named]bool
}

// checkStruct verifies one struct's fields against the pair's closure,
// recursing into same-package named struct fields whose state the pair may
// cover field-by-field. via carries the access path for messages.
func (c *checker) checkStruct(named *types.Named, st *types.Struct, via string) {
	if c.visiting[named] {
		return
	}
	c.visiting[named] = true
	defer delete(c.visiting, named)

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fk := interproc.FieldKey{Pkg: c.pkgPath, Type: named.Obj().Name(), Field: f.Name()}
		inSnap := covers(c.snapSum, fk)
		inRest := covers(c.restSum, fk)
		if inSnap && inRest {
			continue
		}
		// A nested same-package struct may be covered member-by-member
		// instead of as a whole — descend before judging the outer field
		// (whose own mutability is irrelevant: the nested fields mutate
		// through it even when the field itself is never reassigned).
		// Types with their own transfer pair don't get this leniency: the
		// pair must be *invoked* for the field, which would have shown up
		// as coverage above. A nested type nothing in the package writes
		// outside construction (a Config/Options/Spec block wired once in
		// New*) is not descended into: its exported fields are unreachable
		// for writers when the path field is unexported, so the field is
		// judged as a unit below instead of member-by-member.
		if nt, nst, ok := nestedStruct(f.Type(), c.pkgPath); ok {
			if s, r := interproc.SnapshotPair(nt); s == nil || r == nil {
				if c.typeMutated(nt) {
					c.checkStruct(nt, nst, joinVia(via, named.Obj().Name()+"."+f.Name()))
					continue
				}
			}
		}
		if !c.mutable(fk, f) {
			continue
		}
		if c.reported[fk] {
			continue
		}
		c.reported[fk] = true
		pos := c.declPos[fk]
		if !pos.IsValid() {
			pos = named.Obj().Pos()
		}
		c.pass.Reportf(pos, "mutable field %s.%s is %s by the %s snapshot/restore pair%s",
			fk.Type, fk.Field, missing(inSnap, inRest), c.pairName, viaSuffix(via))
	}
}

func missing(inSnap, inRest bool) string {
	switch {
	case !inSnap && !inRest:
		return "not covered"
	case !inSnap:
		return "not captured on the snapshot side"
	default:
		return "not reinstated on the restore side"
	}
}

func joinVia(via, seg string) string {
	if via == "" {
		return seg
	}
	return via + " -> " + seg
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " (reached via " + via + ")"
}

// mutable reports whether runtime code can change the field: exported
// fields always (any importer may write them), unexported ones when a
// non-constructor function in this package writes them.
func (c *checker) mutable(fk interproc.FieldKey, f *types.Var) bool {
	if f.Exported() {
		return true
	}
	return len(c.r.MutWrites[fk]) > 0
}

// typeMutated reports whether any field declared on the named type is
// written outside construction anywhere in this package — the signal that
// a pair-less nested struct carries runtime state worth descending into.
func (c *checker) typeMutated(nt *types.Named) bool {
	name := nt.Obj().Name()
	hit := false
	//lint:allow simdeterminism commutative boolean OR over the write index
	for fk := range c.r.MutWrites {
		if fk.Pkg == c.pkgPath && fk.Type == name {
			hit = true
		}
	}
	return hit
}

// nestedStruct unwraps pointers and returns the named struct type of a
// field declared in the same package, if any.
func nestedStruct(t types.Type, pkgPath string) (*types.Named, *types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pkgPath {
		return nil, nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, false
	}
	return named, st, true
}

func covers(s *interproc.Summary, fk interproc.FieldKey) bool {
	return s != nil && (s.Reads[fk] || s.Writes[fk])
}

func embeddedName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}
