package snapcover_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/snapcover"
)

func TestSnapCover(t *testing.T) {
	analysistest.Run(t, snapcover.Analyzer, "sc")
}
