// Package sc seeds snapshot-coverage shapes: a machine whose transfer pair
// misses fields outright, misses one side only, delegates to a nested
// type's pair, copies a nested slab member-by-member, and leaves
// constructor-only wiring untouched.
package sc

// Machine carries the exemplar mix of covered, uncovered, delegated, and
// immutable state.
type Machine struct {
	cycles  uint64
	stalled bool // want `mutable field Machine\.stalled is not covered by the Machine snapshot/restore pair`
	oneWay  int  // want `mutable field Machine\.oneWay is not reinstated on the restore side by the Machine snapshot/restore pair`
	log     *Log
	slab    slab
	stride  int // written only by NewMachine: immutable geometry, exempt
	cfg     config
	eng     *engine
}

// Snap is Machine's snapshot payload.
type Snap struct {
	cycles  uint64
	oneWay  int
	log     *LogSnap
	slabEnt []entry
	slabGen uint64
}

// Log has its own transfer pair; Machine delegates to it.
type Log struct {
	lines []string
	drops int // want `mutable field Log\.drops is not covered by the Log snapshot/restore pair`
}

// LogSnap is Log's snapshot payload.
type LogSnap struct{ lines []string }

func (l *Log) snapshot() *LogSnap { return &LogSnap{lines: append([]string(nil), l.lines...)} }
func (l *Log) restore(s *LogSnap) { l.lines = append(l.lines[:0], s.lines...) }

// slab is a nested struct without its own pair: the Machine pair covers it
// member-by-member (ents, gen) but misses hot.
type slab struct {
	ents []entry
	gen  uint64
	hot  int // want `mutable field slab\.hot is not covered by the Machine snapshot/restore pair`
}

type entry struct{ v int }

// config is a pair-less nested struct with exported fields that nothing
// writes outside construction: the analyzer must not descend into it (its
// exported fields are unreachable for writers through the unexported cfg
// field), so no findings despite the missing coverage.
type config struct {
	Rate  int
	Depth int
}

// engine is runtime wiring: never written after construction, exempt.
type engine struct{ width int }

// NewMachine is constructor wiring; its writes do not make fields mutable.
func NewMachine(width int) *Machine {
	m := &Machine{stride: width, eng: &engine{width: width}}
	m.cfg = config{Rate: width, Depth: 2}
	m.log = &Log{}
	return m
}

// Step is the runtime mutator that makes the fields above interesting.
func (m *Machine) Step() {
	m.cycles++
	m.stalled = !m.stalled
	m.oneWay++
	m.slab.ents = append(m.slab.ents, entry{v: int(m.cycles)})
	m.slab.gen++
	m.slab.hot++
	m.log.lines = append(m.log.lines, "step")
	m.log.drops++
}

// Snapshot covers cycles and oneWay directly, delegates log, and copies the
// slab member-by-member — deliberately skipping stalled and slab.hot.
func (m *Machine) Snapshot() *Snap {
	return &Snap{
		cycles:  m.cycles,
		oneWay:  m.oneWay,
		log:     m.log.snapshot(),
		slabEnt: copyEntries(m.slab.ents),
		slabGen: m.slab.gen,
	}
}

// Restore reinstates everything Snapshot captured except oneWay (seeded
// one-side-only violation).
func (m *Machine) Restore(s *Snap) {
	m.cycles = s.cycles
	m.log.restore(s.log)
	m.slab.ents = copyEntries(s.slabEnt)
	m.slab.gen = s.slabGen
}

// copyEntries is the helper hop that proves coverage is interprocedural.
func copyEntries(src []entry) []entry {
	return append([]entry(nil), src...)
}
