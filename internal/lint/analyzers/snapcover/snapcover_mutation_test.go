package snapcover_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/analyzers/snapcover"
	"awgsim/internal/lint/checker"
)

// snapSrc is a minimal machine with complete snapshot coverage: both
// mutable fields are captured by Snapshot and reinstated by Restore.
const snapSrc = `package snap

type Machine struct {
	cycles uint64
	tick   int
}

func (m *Machine) Step() {
	m.cycles++
	m.tick++
}

type Image struct {
	Cycles uint64
	Tick   int
}

func (m *Machine) Snapshot() Image {
	return Image{Cycles: m.cycles, Tick: m.tick}
}

func (m *Machine) Restore(im Image) {
	m.cycles = im.Cycles
	m.tick = im.Tick
}
`

// runSnapcover lints one source string as a temp-module package through the
// real driver path (checker.Run handles the ipsummary Requires and facts).
func runSnapcover(t *testing.T, src string) []checker.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module x\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "snap"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap", "snap.go"),
		[]byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checker.Run(dir, []string{"./snap"},
		[]*analysis.Analyzer{snapcover.Analyzer}, false)
	if err != nil {
		t.Fatalf("checker.Run: %v", err)
	}
	return findings
}

// TestMutationDeletedRestoreField is the analyzer's mutation test: the
// intact machine is clean, and deleting exactly one field reinstatement
// from Restore must produce exactly one snapcover finding naming that
// field. This is the failure mode the analyzer exists for — a field added
// to the machine (or dropped from Restore in a refactor) silently
// desyncing forked replays.
func TestMutationDeletedRestoreField(t *testing.T) {
	if findings := runSnapcover(t, snapSrc); len(findings) != 0 {
		t.Fatalf("intact machine should be clean, got: %v", findings)
	}

	mutated := strings.Replace(snapSrc, "\tm.tick = im.Tick\n", "", 1)
	if mutated == snapSrc {
		t.Fatal("mutation did not apply")
	}
	findings := runSnapcover(t, mutated)
	if len(findings) != 1 {
		t.Fatalf("mutated Restore: got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "snapcover" {
		t.Errorf("finding from %s, want snapcover", f.Analyzer)
	}
	if !strings.Contains(f.Message, "tick") {
		t.Errorf("finding does not name the dropped field: %s", f.Message)
	}
}
