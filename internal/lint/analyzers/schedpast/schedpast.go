// Package schedpast rejects two schedule-time hazard classes:
//
//  1. Constant zero delays passed to Engine.After/AfterTask. A relative
//     delay of zero re-fires in the same cycle: at best it burns event
//     budget (the engine's livelock backstop exists precisely because a
//     zero-delay loop never advances the clock), at worst it turns a
//     firmware cadence into a spin. Where a same-cycle continuation is
//     intended, At(e.Now(), ...) states it explicitly. The fix — delay 1 —
//     is mechanical and offered as a suggested fix.
//
//  2. Structural mutation of a collection while ranging over it in the
//     same function body — the `cp.checkPass` hazard class: the check pass
//     used to walk p.order by index while a met condition's dropCond
//     spliced p.order underneath it, skipping or repeating conditions.
//     For slices, reassigning the ranged slice inside the body is flagged
//     unless the enclosing block immediately leaves the loop (the
//     splice-then-break idiom is sound: the stale iteration state is never
//     used again). For maps, inserting keys other than the range key is
//     flagged (iteration may or may not produce them — nondeterminism);
//     delete is always allowed, as the spec defines it.
package schedpast

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the schedpast analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "schedpast",
	Doc:  "reject constant-zero engine delays and range-with-structural-mutation (the checkPass hazard)",
	Run:  run,
}

var delayMethods = map[string]bool{"After": true, "AfterTask": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkZeroDelay(pass, n)
			case *ast.RangeStmt:
				checkRangeMutation(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkZeroDelay flags After/AfterTask calls on event.Engine whose delay
// argument is a compile-time constant zero.
func checkZeroDelay(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !delayMethods[sel.Sel.Name] || len(call.Args) < 1 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" ||
		named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "event") {
		return
	}
	delay := call.Args[0]
	tv, ok := pass.TypesInfo.Types[delay]
	if !ok || tv.Value == nil {
		return
	}
	if constant.Sign(tv.Value) > 0 {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: delay.Pos(), End: delay.End(),
		Message: "Engine." + sel.Sel.Name + " with constant delay " + tv.Value.String() +
			": a positive cycle delta is required (zero-delay rescheduling never advances the clock " +
			"and can livelock against the event budget)",
		SuggestedFixes: []analysis.SuggestedFix{{
			Message:   "use the minimum positive delay of one cycle",
			TextEdits: []analysis.TextEdit{{Pos: delay.Pos(), End: delay.End(), NewText: []byte("1")}},
		}},
	})
}

// checkRangeMutation flags structural mutation of the ranged collection
// inside the loop body.
func checkRangeMutation(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	_, isMap := t.Underlying().(*types.Map)
	_, isSlice := t.Underlying().(*types.Slice)
	if !isMap && !isSlice {
		return
	}
	base := types.ExprString(rng.X)
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyName = id.Name
	}

	var walkStmts func(stmts []ast.Stmt)
	checkStmt := func(s ast.Stmt, rest []ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if isSlice && types.ExprString(lhs) == base && !leavesLoop(rest) {
					pass.ReportRangef(lhs, "reassigns %s while ranging over it (the checkPass splice hazard): "+
						"the loop keeps iterating stale state; snapshot the walk first or break immediately after the splice",
						base)
				}
				if isMap {
					if ix, ok := lhs.(*ast.IndexExpr); ok && types.ExprString(ix.X) == base {
						if id, ok := ix.Index.(*ast.Ident); !ok || id.Name != keyName {
							pass.ReportRangef(lhs, "inserts into %s while ranging over it: "+
								"the new entry may or may not be produced by this loop (nondeterministic); "+
								"collect the insertions and apply them after the loop", base)
						}
					}
				}
			}
		}
	}
	walkStmts = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			rest := stmts[i+1:]
			checkStmt(s, rest)
			// Recurse into nested blocks, keeping track of what follows
			// inside the *innermost* statement list for the exemption.
			switch s := s.(type) {
			case *ast.BlockStmt:
				walkStmts(s.List)
			case *ast.IfStmt:
				walkIf(s, walkStmts)
			case *ast.ForStmt:
				walkStmts(s.Body.List)
			case *ast.RangeStmt:
				walkStmts(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkStmts(cc.Body)
					}
				}
			}
		}
	}
	walkStmts(rng.Body.List)
}

func walkIf(s *ast.IfStmt, walkStmts func([]ast.Stmt)) {
	walkStmts(s.Body.List)
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		walkStmts(e.List)
	case *ast.IfStmt:
		walkIf(e, walkStmts)
	}
}

// leavesLoop reports whether the statements following the mutation in its
// innermost block unconditionally leave the loop: the splice-then-break /
// splice-then-return idiom. Any trailing break or return qualifies;
// intermediate bookkeeping statements are permitted as long as the block
// cannot fall back into the iteration.
func leavesLoop(rest []ast.Stmt) bool {
	if len(rest) == 0 {
		return false
	}
	switch last := rest[len(rest)-1].(type) {
	case *ast.BranchStmt:
		return last.Tok == token.BREAK
	case *ast.ReturnStmt:
		return true
	}
	return false
}
