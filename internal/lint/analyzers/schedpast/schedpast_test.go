package schedpast_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/schedpast"
)

func TestSchedPast(t *testing.T) {
	analysistest.Run(t, schedpast.Analyzer, "sched")
}
