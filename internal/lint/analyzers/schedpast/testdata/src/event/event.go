// Package event is a structural stand-in for awgsim/internal/event, matched
// by the analyzer via type name and package-path suffix.
package event

// Cycle mirrors event.Cycle.
type Cycle uint64

// Task mirrors the pooled event.Task.
type Task struct {
	Env [4]any
	I   [6]int64
}

// Engine mirrors the scheduling surface of event.Engine.
type Engine struct{}

func (e *Engine) Now() Cycle                 { return 0 }
func (e *Engine) At(at Cycle, fn func())     {}
func (e *Engine) After(d Cycle, fn func())   {}
func (e *Engine) AtTask(at Cycle, t *Task)   {}
func (e *Engine) AfterTask(d Cycle, t *Task) {}
