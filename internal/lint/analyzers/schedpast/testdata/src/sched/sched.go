// Package sched seeds the two schedpast hazard classes: constant-zero
// engine delays and structural mutation of a ranged collection — the
// cp.checkPass bug shape.
package sched

import "awgsim/internal/lint/analyzers/schedpast/testdata/src/event"

type proc struct {
	eng   *event.Engine
	order []int64
	table map[int64]int
}

func tick() {}

func (p *proc) delays() {
	p.eng.After(0, tick) // want `Engine\.After with constant delay 0`
	const cadence event.Cycle = 0
	p.eng.After(cadence, tick)        // want `Engine\.After with constant delay 0`
	p.eng.AfterTask(0, &event.Task{}) // want `Engine\.AfterTask with constant delay 0`
	p.eng.After(1, tick)              // minimum positive delay: fine
	p.eng.At(0, tick)                 // At takes an absolute cycle, not a delta
	d := event.Cycle(0)
	p.eng.After(d, tick) // non-constant expression: runtime concern, not this analyzer's
}

// spliceMidWalk is the checkPass hazard verbatim: the ranged slice is
// spliced and iteration continues over stale state.
func (p *proc) spliceMidWalk() {
	for i, id := range p.order {
		if id == 0 {
			p.order = append(p.order[:i], p.order[i+1:]...) // want `reassigns p\.order while ranging over it`
		}
	}
}

// spliceThenBreak is the sanctioned variant: the stale iteration state is
// never used again.
func (p *proc) spliceThenBreak() {
	for i, id := range p.order {
		if id == 1 {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// snapshotWalk is the other sanctioned fix: walk a copy, splice the real one.
func (p *proc) snapshotWalk(scratch []int64) {
	scratch = append(scratch[:0], p.order...)
	for i, id := range scratch {
		if id == 2 {
			p.order = append(p.order[:i], p.order[i+1:]...)
		}
	}
}

func (p *proc) mapMutation() {
	for k := range p.table {
		p.table[k+1] = 1   // want `inserts into p\.table while ranging over it`
		p.table[k] = 2     // writing the range key commutes: fine
		delete(p.table, k) // delete during range is defined by the spec: fine
	}
}
