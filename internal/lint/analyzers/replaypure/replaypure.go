// Package replaypure statically audits the rewind/replay window: every
// event callback re-executes during trace replay, so a callback that
// writes state the Snapshot/Restore pair does not cover — or that emits
// external effects (Engine.Stop, printed output) — observably diverges a
// replayed run from the original unless the effect is gated on the
// machine's replaying flag.
//
// Scope: packages declaring a struct with both a snapshot/restore pair and
// a `replaying` field. Roots are the callbacks handed to the event
// engine's scheduling methods (function literals, local closure variables,
// declared functions). The traversal is gate-aware — any `if` whose
// condition consults the replaying field exempts its branches — and
// descends into package-local callees, skipping the snapshot machinery
// itself and the functions that toggle the replaying flag. Ungated writes
// to uncovered fields get a mechanical SuggestedFix wrapping the statement
// in `if !<recv>.replaying { ... }`, which `awglint -fix` (make lint-fix)
// applies.
package replaypure

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/types"
	"sort"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the replaypure entry point.
var Analyzer = &analysis.Analyzer{
	Name: "replaypure",
	Doc: "effects in the replay window must be gated on the replaying flag\n\n" +
		"Writes to non-snapshot-covered fields and external effects (Engine.Stop,\n" +
		"fmt/log output) reachable from scheduled event callbacks are reported\n" +
		"unless guarded by a condition consulting the machine's replaying field.",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	r := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	pkgPath := pass.Pkg.Path()

	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !hasField(st, "replaying") {
			continue
		}
		snap, rest := interproc.SnapshotPair(named)
		if snap == nil || rest == nil {
			continue
		}
		check(pass, r, pkgPath, named, snap, rest)
	}
	return nil, nil
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// check audits one machine type's replay window.
func check(pass *analysis.Pass, r *interproc.Result, pkgPath string, machine *types.Named, snap, rest *types.Func) {
	mName := machine.Obj().Name()
	replayingKey := interproc.FieldKey{Pkg: pkgPath, Type: mName, Field: "replaying"}

	// State the pair round-trips: writes to these fields during replay are
	// undone by the restore that follows, so they are not divergence.
	covered := map[interproc.FieldKey]bool{}
	snapTypes := map[string]bool{mName: true}
	for _, s := range []*interproc.Summary{r.SummaryOf(snap), r.SummaryOf(rest)} {
		if s == nil {
			continue
		}
		for fk := range s.Reads {
			covered[fk] = true
			snapTypes[fk.Type] = true
		}
		for fk := range s.Writes {
			covered[fk] = true
			snapTypes[fk.Type] = true
		}
	}

	// Exempt: the snapshot machinery itself and the replay driver (any
	// function writing the replaying flag, e.g. replayTrace).
	exempt := map[interproc.FuncKey]bool{
		interproc.Key(snap): true,
		interproc.Key(rest): true,
	}
	for _, s := range []*interproc.Summary{r.SummaryOf(snap), r.SummaryOf(rest)} {
		if s == nil {
			continue
		}
		for k := range s.Calls {
			exempt[k] = true
		}
	}
	for _, k := range r.MutWrites[replayingKey] {
		exempt[k] = true
	}
	for _, obj := range r.Order {
		if s := r.SummaryOf(obj); s != nil && s.Writes[replayingKey] {
			exempt[r.Keys[obj]] = true
		}
	}

	w := &walker{
		pass:         pass,
		r:            r,
		pkgPath:      pkgPath,
		machine:      machine,
		replayingKey: replayingKey,
		covered:      covered,
		snapTypes:    snapTypes,
		exempt:       exempt,
		visited:      map[ast.Node]bool{},
	}

	// Roots: every callback handed to an engine scheduling call anywhere in
	// the package — all of them re-execute inside the replay window.
	for _, obj := range r.Order {
		fd := r.Decls[obj]
		if fd == nil || exempt[r.Keys[obj]] {
			continue
		}
		// Closure variables bound to function literals in this function,
		// for the hoisted `tick`-style scheduling idiom.
		litOf := map[types.Object]*ast.FuncLit{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					var o types.Object = pass.TypesInfo.Defs[id]
					if o == nil {
						o = pass.TypesInfo.Uses[id]
					}
					if o != nil {
						litOf[o] = lit
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := interproc.EngineSchedCall(pass.TypesInfo, call); !ok {
				return true
			}
			for _, arg := range call.Args {
				w.enterRoot(arg, litOf)
			}
			return true
		})
	}
}

// walker traverses replay-window code, honoring replaying gates.
type walker struct {
	pass         *analysis.Pass
	r            *interproc.Result
	pkgPath      string
	machine      *types.Named
	replayingKey interproc.FieldKey
	covered      map[interproc.FieldKey]bool
	snapTypes    map[string]bool
	exempt       map[interproc.FuncKey]bool
	visited      map[ast.Node]bool
}

// enterRoot resolves one scheduling-call argument to a body and walks it.
func (w *walker) enterRoot(arg ast.Expr, litOf map[types.Object]*ast.FuncLit) {
	switch a := arg.(type) {
	case *ast.FuncLit:
		w.walkBody(a.Body)
	case *ast.Ident:
		if o := w.pass.TypesInfo.Uses[a]; o != nil {
			if lit, ok := litOf[o]; ok {
				w.walkBody(lit.Body)
				return
			}
			if f, ok := o.(*types.Func); ok {
				w.walkCallee(f)
			}
		}
	case *ast.SelectorExpr:
		// Method value: m.step passed as a callback.
		if f, ok := w.pass.TypesInfo.Uses[a.Sel].(*types.Func); ok {
			w.walkCallee(f)
		}
	}
}

// walkCallee walks a package-local function's body unless exempt.
func (w *walker) walkCallee(f *types.Func) {
	f = f.Origin()
	if f.Pkg() == nil || f.Pkg().Path() != w.pkgPath {
		return
	}
	if w.exempt[interproc.Key(f)] {
		return
	}
	fd := w.r.Decls[f]
	if fd == nil {
		return
	}
	w.walkBody(fd.Body)
}

// walkBody inspects one body, skipping replaying-gated regions, reporting
// ungated effects, and descending into package-local callees.
func (w *walker) walkBody(body *ast.BlockStmt) {
	if body == nil || w.visited[body] {
		return
	}
	w.visited[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if w.mentionsReplaying(x.Cond) {
				// The author already branched on the replay flag: both arms
				// are deliberate replay-window behavior.
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				w.checkWrite(lhs, x)
			}
		case *ast.IncDecStmt:
			w.checkWrite(x.X, x)
		case *ast.CallExpr:
			w.checkCall(x)
		}
		return true
	})
}

// mentionsReplaying reports whether an expression consults the machine's
// replaying field.
func (w *walker) mentionsReplaying(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if selection, ok := w.pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if fk, ok := interproc.FieldOf(selection); ok && fk == w.replayingKey {
				found = true
			}
		}
		return true
	})
	return found
}

// checkWrite reports an ungated write to a non-snapshot-covered field of a
// snapshot-managed type, with a mechanical gating fix.
func (w *walker) checkWrite(lhs ast.Expr, stmt ast.Stmt) {
	base := lhs
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		default:
			goto resolved
		}
	}
resolved:
	sel, ok := base.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fk, ok := interproc.FieldOf(selection)
	if !ok {
		return
	}
	if fk.Pkg != w.pkgPath || !w.snapTypes[fk.Type] || w.covered[fk] || fk == w.replayingKey {
		return
	}
	d := analysis.Diagnostic{
		Pos: stmt.Pos(),
		End: stmt.End(),
		Message: fmt.Sprintf(
			"write to %s.%s (not snapshot-covered) in the replay window; gate it on the replaying flag or cover the field",
			fk.Type, fk.Field),
	}
	if fix, ok := w.gateFix(sel, stmt); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	w.pass.Report(d)
}

// gateFix wraps the offending statement in `if !<recv>.replaying { ... }`
// when the selector's root expression is the machine value itself.
func (w *walker) gateFix(sel *ast.SelectorExpr, stmt ast.Stmt) (analysis.SuggestedFix, bool) {
	root := ast.Expr(sel)
	for {
		if s, ok := root.(*ast.SelectorExpr); ok {
			root = s.X
			continue
		}
		if p, ok := root.(*ast.ParenExpr); ok {
			root = p.X
			continue
		}
		break
	}
	t := w.pass.TypesInfo.TypeOf(root)
	if t == nil {
		return analysis.SuggestedFix{}, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); !ok || named.Obj() != w.machine.Obj() {
		return analysis.SuggestedFix{}, false
	}
	var recv, orig bytes.Buffer
	if err := printer.Fprint(&recv, w.pass.Fset, root); err != nil {
		return analysis.SuggestedFix{}, false
	}
	if err := printer.Fprint(&orig, w.pass.Fset, stmt); err != nil {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("gate on !%s.replaying", recv.String()),
		TextEdits: []analysis.TextEdit{{
			Pos:     stmt.Pos(),
			End:     stmt.End(),
			NewText: []byte(fmt.Sprintf("if !%s.replaying {\n%s\n}", recv.String(), orig.String())),
		}},
	}, true
}

// checkCall reports external effects and descends into local callees.
func (w *walker) checkCall(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if isEngineStop(f) {
				w.pass.Reportf(call.Pos(),
					"Engine.Stop in the replay window; gate it on the replaying flag (a replayed run must not halt the engine differently from the original)")
				return
			}
			if pkg := f.Pkg(); pkg != nil {
				switch pkg.Path() {
				case "fmt":
					if strings.HasPrefix(f.Name(), "Print") {
						w.pass.Reportf(call.Pos(),
							"fmt.%s in the replay window; gate it on the replaying flag (replay would duplicate the output)", f.Name())
						return
					}
				case "log":
					w.pass.Reportf(call.Pos(),
						"log.%s in the replay window; gate it on the replaying flag (replay would duplicate the output)", f.Name())
					return
				}
			}
		}
	}
	if f := staticCallee(info, call); f != nil {
		w.walkCallee(f)
	}
}

func isEngineStop(f *types.Func) bool {
	if f.Name() != "Stop" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "event")
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
