package replaypure_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/replaypure"
)

func TestReplayPure(t *testing.T) {
	analysistest.Run(t, replaypure.Analyzer, "rp/gpu")
}
