// Package gpu seeds replay-window effect shapes against the event
// stand-in: gated and ungated writes to uncovered machine state, an
// ungated Engine.Stop, printed output, and effects behind a helper hop.
package gpu

import (
	"fmt"

	"awgsim/internal/lint/analyzers/replaypure/testdata/src/rp/event"
)

// Machine mirrors the simulator machine: snapshot pair + replaying flag.
// Only cycles is snapshot-covered; deadlocked, diag, and snapRing are
// diagnostics/ring state outside the snapshot.
type Machine struct {
	eng        *event.Engine
	cycles     uint64
	replaying  bool
	deadlocked bool
	diag       string
	snapRing   []uint64
}

// Snap is Machine's snapshot payload.
type Snap struct{ cycles uint64 }

// Snapshot covers exactly cycles.
func (m *Machine) Snapshot() *Snap { return &Snap{cycles: m.cycles} }

// Restore reinstates exactly cycles.
func (m *Machine) Restore(s *Snap) { m.cycles = s.cycles }

// replayTrace is the replay driver: it toggles the flag, so everything it
// does is exempt machinery.
func (m *Machine) replayTrace() {
	snap := m.Snapshot()
	m.replaying = true
	m.Restore(snap)
	m.replaying = false
}

// Prepare arms the event callbacks that form the replay window.
func (m *Machine) Prepare() {
	// Covered-state writes are restored afterwards: fine ungated.
	m.eng.At(1, func() {
		m.cycles++
	})

	// Watchdog shape from PR 6, minus the gate: ungated uncovered writes
	// and an ungated Stop.
	m.eng.After(2, func() {
		m.deadlocked = true // want `write to Machine\.deadlocked \(not snapshot-covered\) in the replay window`
		m.diag = "deadlock" // want `write to Machine\.diag \(not snapshot-covered\) in the replay window`
		m.eng.Stop()        // want `Engine\.Stop in the replay window`
	})

	// Properly gated snapshot-ring tick: no findings.
	m.eng.After(3, func() {
		if !m.replaying {
			m.snapRing = append(m.snapRing, m.cycles)
		}
	})

	// Hoisted closure scheduled by identifier, effect behind a helper hop.
	watch := func() {
		m.noteDiag()
	}
	m.eng.AtWithSeq(4, watch)

	// Printed output duplicates under replay.
	m.eng.After(5, func() {
		fmt.Println("heartbeat") // want `fmt\.Println in the replay window`
	})
}

// noteDiag is reached only through the scheduled watch closure.
func (m *Machine) noteDiag() {
	m.diag = "note" // want `write to Machine\.diag \(not snapshot-covered\) in the replay window`
	if m.replaying {
		m.snapRing = nil // replay-machinery branch: deliberate, no finding
	}
}
