// Package event is a structural stand-in for awgsim/internal/event: the
// analyzer matches the Engine type by name and package-path suffix.
package event

// Cycle mirrors event.Cycle.
type Cycle uint64

// Engine mirrors the scheduling and stop surface of event.Engine.
type Engine struct{ stopped bool }

func (e *Engine) At(at Cycle, fn func())        {}
func (e *Engine) After(d Cycle, fn func())      {}
func (e *Engine) AtWithSeq(at Cycle, fn func()) {}
func (e *Engine) Stop()                         { e.stopped = true }
