package hotpathmap_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/hotpathmap"
)

func TestHotPathMap(t *testing.T) {
	analysistest.Run(t, hotpathmap.Analyzer, "syncmon", "cp", "mem")
}
