// Package mem seeds bank-service map traffic: Read/Write are hot roots,
// construction-time code is not.
package mem

type system struct {
	words map[uint64]int64
	banks map[uint64]int
}

func (s *system) Read(addr uint64) int64 {
	return s.words[addr] // want `map indexed in Read, reachable from a bank-service/wake hot path`
}

func (s *system) Write(addr uint64, v int64) {
	s.bankOf(addr)
	s.words[addr] = v // want `map indexed in Write, reachable from a bank-service/wake hot path`
}

func (s *system) bankOf(addr uint64) int {
	return s.banks[addr] // want `map indexed in bankOf, reachable from a bank-service/wake hot path`
}

// newSystem runs once at construction: seeding the maps there is cold.
func newSystem(n int) *system {
	s := &system{words: map[uint64]int64{}, banks: map[uint64]int{}}
	for i := 0; i < n; i++ {
		s.banks[uint64(i)] = i % 4
	}
	return s
}
