// Package syncmon seeds map operations on and off the monitor's hot
// paths: the package-path suffix puts it in the analyzer's syncmon scope.
package syncmon

type monitor struct {
	conds   map[uint64]int
	waiters map[uint64][]int
	stats   map[string]int
}

// observe is a hot root: direct map reads, writes, ranges, and deletes are
// all flagged.
func (m *monitor) observe(addr uint64) {
	c := m.conds[addr]             // want `map indexed in observe, reachable from a bank-service/wake hot path`
	m.conds[addr] = c + 1          // want `map indexed in observe, reachable from a bank-service/wake hot path`
	for a, ws := range m.waiters { // want `map ranged over in observe, reachable from a bank-service/wake hot path`
		_ = a
		_ = ws
	}
	delete(m.conds, addr) // want `map deleted from in observe, reachable from a bank-service/wake hot path`
	if len(m.conds) > 0 { // len carries no hashing; allowed
		return
	}
}

// Register reaches bump through an ordinary call: the helper is hot too.
func (m *monitor) Register(addr uint64) {
	m.bump(addr)
}

func (m *monitor) bump(addr uint64) {
	m.conds[addr]++ // want `map indexed in bump, reachable from a bank-service/wake hot path`
}

// spill reaches drainOne only as a function value (a pooled-task callee
// pattern): the ipsummary call graph counts value references as edges, so
// the callee is still hot.
func (m *monitor) spill(addr uint64) {
	step := m.drainOne
	step(addr)
}

// wakeAllOnAddr reaches sweepTwo two calls deep: the transitive Calls set
// in the root's summary covers the whole chain.
func (m *monitor) wakeAllOnAddr(addr uint64) {
	m.sweepOne(addr)
}

func (m *monitor) sweepOne(addr uint64) { m.sweepTwo(addr) }

func (m *monitor) sweepTwo(addr uint64) {
	delete(m.waiters, addr) // want `map deleted from in sweepTwo, reachable from a bank-service/wake hot path`
}

func (m *monitor) drainOne(addr uint64) {
	m.waiters[addr] = nil // want `map indexed in drainOne, reachable from a bank-service/wake hot path`
}

// report is never reached from a root: its map traffic is cold and legal.
func (m *monitor) report() int {
	total := 0
	for _, n := range m.stats {
		total += n
	}
	return total
}
