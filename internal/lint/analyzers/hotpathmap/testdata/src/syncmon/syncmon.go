// Package syncmon seeds map operations on and off the monitor's hot
// paths: the package-path suffix puts it in the analyzer's syncmon scope.
package syncmon

type monitor struct {
	conds   map[uint64]int
	waiters map[uint64][]int
	stats   map[string]int
}

// observe is a hot root: direct map reads, writes, ranges, and deletes are
// all flagged.
func (m *monitor) observe(addr uint64) {
	c := m.conds[addr]             // want `map indexed in observe, reachable from a bank-service/wake hot path`
	m.conds[addr] = c + 1          // want `map indexed in observe, reachable from a bank-service/wake hot path`
	for a, ws := range m.waiters { // want `map ranged over in observe, reachable from a bank-service/wake hot path`
		_ = a
		_ = ws
	}
	delete(m.conds, addr) // want `map deleted from in observe, reachable from a bank-service/wake hot path`
	if len(m.conds) > 0 { // len carries no hashing; allowed
		return
	}
}

// Register reaches bump through an ordinary call: the helper is hot too.
func (m *monitor) Register(addr uint64) {
	m.bump(addr)
}

func (m *monitor) bump(addr uint64) {
	m.conds[addr]++ // want `map indexed in bump, reachable from a bank-service/wake hot path`
}

// report is never reached from a root: its map traffic is cold and legal.
func (m *monitor) report() int {
	total := 0
	for _, n := range m.stats {
		total += n
	}
	return total
}
