// Package cp seeds the function-value edge: a helper only ever passed as
// a callback from a hot root still runs on the hot path and is flagged.
package cp

type proc struct {
	table map[uint64][]int
	sched func(fn func())
}

// drainPass is a hot root; it never calls finish directly, only hands it
// to the scheduler. The reference alone makes finish hot.
func (p *proc) drainPass() {
	p.sched(p.finish)
}

func (p *proc) finish() {
	for k := range p.table { // want `map ranged over in finish, reachable from a bank-service/wake hot path`
		delete(p.table, k) // want `map deleted from in finish, reachable from a bank-service/wake hot path`
	}
}

// rebuild is cold (reached from no root): map construction and access are
// fine here.
func (p *proc) rebuild(keys []uint64) {
	p.table = make(map[uint64][]int, len(keys))
	for _, k := range keys {
		p.table[k] = nil
	}
}
