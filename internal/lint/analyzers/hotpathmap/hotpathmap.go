// Package hotpathmap keeps Go maps off the simulator's bank-service and
// wake paths.
//
// The data-oriented hot-state overhaul replaced the SyncMon condition
// cache's maps, the CP spilled-condition table's maps, and the memory
// system's value store with slab/flat structures: profiled suites spent
// over a quarter of their wall clock in map runtime (hash, probe, grow)
// and the allocations behind it. A map reintroduced on those paths —
// indexed, ranged, or deleted in any function reachable from a
// bank-service or wake root — quietly reverts that, so the analyzer flags
// it at review time.
//
// Reachability comes from the ipsummary call graph: a root's composed
// summary carries its transitive Calls set, which deliberately includes
// functions referenced as values — e.g. pooled-task callees — since those
// do run on the hot path. Reporting stays same-package: cold code sharing
// a package is not flagged unless a hot root reaches it, and cross-package
// callees are the importing package's problem. len(m) is allowed (no
// hashing); a genuinely cold or setup-time map access on a hot path
// carries a `//lint:allow hotpathmap <reason>` directive.
package hotpathmap

import (
	"go/ast"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the hotpathmap analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "hotpathmap",
	Doc:      "forbid Go map access in functions reachable from bank-service/wake hot paths",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

// scope names one hot package (by path suffix, so testdata stand-ins
// match) and its hot roots: the entry points the bank-service and wake
// machinery calls per atomic / per wake.
type scope struct {
	pkgSuffix string
	roots     map[string]bool
}

var scopes = []scope{
	{
		// SyncMon: per-atomic observation, registration/withdrawal at bank
		// time, spill, and the sporadic-wake sweep.
		pkgSuffix: "/syncmon",
		roots: map[string]bool{
			"Register": true, "Unregister": true, "observe": true,
			"spill": true, "wakeAllOnAddr": true,
		},
	},
	{
		// CP firmware: drain/check passes, check results, and waiter
		// withdrawal all run against every spilled condition.
		pkgSuffix: "/cp",
		roots: map[string]bool{
			"Unregister": true, "drainPass": true, "checkPass": true,
			"runCheckResult": true,
		},
	},
	{
		// Memory system: value reads/writes and every timing query run per
		// access at bank-service rate.
		pkgSuffix: "/mem",
		roots: map[string]bool{
			"Read": true, "Write": true, "Access": true,
			"AtomicTiming": true, "LocalAtomicTiming": true, "ArmTiming": true,
			"LoadTiming": true, "StoreTiming": true,
		},
	},
}

func run(pass *analysis.Pass) (any, error) {
	sc := scopeFor(pass.Pkg.Path())
	if sc == nil {
		return nil, nil
	}
	// ipsummary already holds the package's declarations in file order and
	// each root's transitive Calls set (function-value references included),
	// so reachability is a single hop per root.
	ip := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	reachable := ip.Reachable(func(obj *types.Func, fd *ast.FuncDecl) bool {
		return fd != nil && fd.Body != nil && sc.roots[fd.Name.Name]
	})
	for _, obj := range ip.Order {
		if reachable[obj] && ip.Decls[obj].Body != nil {
			checkBody(pass, ip.Decls[obj])
		}
	}
	return nil, nil
}

func scopeFor(path string) *scope {
	for i := range scopes {
		if strings.HasSuffix(path, scopes[i].pkgSuffix) {
			return &scopes[i]
		}
	}
	return nil
}

// checkBody flags map index, range, and delete operations inside one hot
// function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if isMap(pass, n.X) {
				report(pass, n, name, "indexed")
			}
		case *ast.RangeStmt:
			if isMap(pass, n.X) {
				report(pass, n, name, "ranged over")
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "delete" || len(n.Args) == 0 {
				return true
			}
			if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && isMap(pass, n.Args[0]) {
				report(pass, n, name, "deleted from")
			}
		}
		return true
	})
}

func isMap(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func report(pass *analysis.Pass, n ast.Node, fn, verb string) {
	pass.Report(analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(),
		Message: "map " + verb + " in " + fn + ", reachable from a bank-service/wake hot path; " +
			"use a slab or hashutil.Flat index (see the hot-state layout in DESIGN.md)",
	})
}
