// Package nilcheck seeds the two nilness report shapes and the guarded
// idioms the reduced analyzer must stay quiet on.
package nilcheck

type node struct {
	next *node
	v    int
}

func guardDeref(n *node) {
	if n == nil {
		n.v = 1 // want `field or method access of nil pointer n`
	}
}

func guardSliceIndex(s []int) int {
	if s == nil {
		return s[0] // want `index of nil pointer s`
	}
	return 0
}

func localNil() {
	var p *node
	p.v = 2 // want `field or method access of nil pointer p`
}

func assignedNil(q *node) {
	q = nil
	_ = q.next // want `field or method access of nil pointer q`
}

// narrowestGuard is the `best == nil || use(best)` idiom: the right side of
// the short-circuit only runs when best is non-nil.
func narrowestGuard(list []*node) *node {
	var best *node
	for _, n := range list {
		if best == nil || n.v < best.v {
			best = n
		}
	}
	return best
}

func ifGuard() {
	var p *node
	if p != nil {
		p.v = 3 // guarded: fine
	}
}

func andGuard(m map[int]*node) {
	var p *node
	if p != nil && p.v > 0 { // short-circuit guard: fine
		return
	}
	_ = m
}

func assignedFirst() {
	var p *node
	p = &node{}
	p.v = 4 // reassigned above: fine
}

func addressTaken(fill func(**node)) {
	var p *node
	fill(&p)
	p.v = 5 // may have been set through the pointer: fine
}
