// Package nilness is a reduced, syntax-directed reimplementation of the
// x/tools nilness analyzer (which is SSA-based and unavailable offline —
// this module builds without external dependencies).
//
// It reports the two highest-signal shapes:
//
//  1. Dereference of a variable inside the body of `if x == nil { ... }`
//     (field access, method call, index, call, or explicit *x) before any
//     reassignment of x in that body.
//
//  2. Dereference of a local declared `var x *T` (or assigned a literal
//     nil) with no intervening reassignment in the same statement list.
//
// Unlike the SSA version it does not track flow through loops, phi nodes,
// or interprocedural facts; it trades completeness for zero dependencies.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the reduced nilness analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of provably nil pointers (reduced, syntax-directed port)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				checkNilGuard(pass, n)
			case *ast.BlockStmt:
				checkNilLocals(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkNilGuard handles `if x == nil { ...use of x... }`.
func checkNilGuard(pass *analysis.Pass, ifs *ast.IfStmt) {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return
	}
	var target *ast.Ident
	switch {
	case isNilIdent(pass, bin.Y):
		target, _ = bin.X.(*ast.Ident)
	case isNilIdent(pass, bin.X):
		target, _ = bin.Y.(*ast.Ident)
	}
	if target == nil {
		return
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil || !isPointerish(obj.Type()) {
		return
	}
	reportDerefs(pass, ifs.Body.List, obj, "nil-checked immediately above")
}

// checkNilLocals handles statement lists beginning `var x *T` / `x = nil`.
func checkNilLocals(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, s := range block.List {
		obj := nilDeclared(pass, s)
		if obj == nil {
			continue
		}
		reportDerefs(pass, block.List[i+1:], obj, "declared nil above with no intervening assignment")
	}
}

// nilDeclared returns the object a statement leaves provably nil:
// `var x *T` with no initializer, or `x = nil` / `x := (*T)(nil)`.
func nilDeclared(pass *analysis.Pass, s ast.Stmt) types.Object {
	switch s := s.(type) {
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 {
			return nil
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Values) != 0 || len(vs.Names) != 1 {
			return nil
		}
		obj := pass.TypesInfo.Defs[vs.Names[0]]
		if obj != nil && isPointer(obj.Type()) {
			return obj
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !isNilIdent(pass, s.Rhs[0]) {
			return nil
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && isPointer(obj.Type()) {
			return obj
		}
	}
	return nil
}

// reportDerefs walks stmts reporting dereferences of obj, stopping at the
// first reassignment (or address-taking, which may feed a setter). Guarded
// uses are respected: the right side of `x == nil || ...` and `x != nil &&
// ...` short-circuits, and the body of `if x != nil { ... }`, only execute
// when x is non-nil.
func reportDerefs(pass *analysis.Pass, stmts []ast.Stmt, obj types.Object, why string) {
	stopped := false
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	// guardsNonNil reports whether cond proves obj non-nil when true:
	// `x != nil` itself, or a conjunction whose left side does.
	var guardsNonNil func(cond ast.Expr) bool
	guardsNonNil = func(cond ast.Expr) bool {
		switch c := cond.(type) {
		case *ast.ParenExpr:
			return guardsNonNil(c.X)
		case *ast.BinaryExpr:
			if c.Op == token.NEQ && (isObj(c.X) && isNilIdent(pass, c.Y) || isObj(c.Y) && isNilIdent(pass, c.X)) {
				return true
			}
			if c.Op == token.LAND {
				return guardsNonNil(c.X) || guardsNonNil(c.Y)
			}
		}
		return false
	}
	guardsNil := func(cond ast.Expr) bool {
		c, ok := cond.(*ast.BinaryExpr)
		return ok && c.Op == token.EQL &&
			(isObj(c.X) && isNilIdent(pass, c.Y) || isObj(c.Y) && isNilIdent(pass, c.X))
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isObj(lhs) {
					stopped = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && isObj(n.X) {
				stopped = true
				return false
			}
		case *ast.FuncLit:
			return false // separate frame; flow unknown
		case *ast.BinaryExpr:
			// `x == nil || use(x)` / `x != nil && use(x)`: the right side
			// only runs when x is non-nil.
			if n.Op == token.LOR && guardsNil(n.X) || n.Op == token.LAND && guardsNonNil(n.X) {
				ast.Inspect(n.X, visit)
				return false
			}
		case *ast.IfStmt:
			if n.Init == nil && guardsNonNil(n.Cond) {
				// The guarded body may use x freely; the else branch (and
				// statements after, via the outer walk) may not.
				ast.Inspect(n.Cond, visit)
				if n.Else != nil {
					ast.Inspect(n.Else, visit)
				}
				return false
			}
		}
		if id, base := derefBase(n); id != nil && pass.TypesInfo.Uses[id] == obj {
			pass.ReportRangef(base, "%s of nil pointer %s (%s)", derefKind(base), obj.Name(), why)
			stopped = true
			return false
		}
		return true
	}
	for _, s := range stmts {
		if stopped {
			return
		}
		ast.Inspect(s, visit)
	}
}

// derefBase returns (ident, node) when n dereferences a plain identifier:
// x.f (pointer receiver field), *x, x[i], x(...).
func derefBase(n ast.Node) (*ast.Ident, ast.Node) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if id, ok := n.X.(*ast.Ident); ok {
			return id, n
		}
	case *ast.StarExpr:
		if id, ok := n.X.(*ast.Ident); ok {
			return id, n
		}
	case *ast.IndexExpr:
		if id, ok := n.X.(*ast.Ident); ok {
			return id, n
		}
	}
	return nil, nil
}

func derefKind(n ast.Node) string {
	switch n.(type) {
	case *ast.SelectorExpr:
		return "field or method access"
	case *ast.StarExpr:
		return "dereference"
	case *ast.IndexExpr:
		return "index"
	}
	return "use"
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// isPointer: a plain *T.
func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// isPointerish: types whose nil value faults on dereference-like use.
// Maps are excluded (nil map reads are defined); interfaces excluded
// (method sets may be value-receiver on a typed-nil — the guard-then-call
// shape is still a likely bug for *T but not provable for interfaces
// without SSA).
func isPointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}
