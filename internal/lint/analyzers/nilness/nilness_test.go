package nilness_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, nilness.Analyzer, "nilcheck")
}
