// Package fpcover closes the run-cache dedup-unsoundness hole statically:
// every sim.Config field that reachable simulation code reads must be
// folded into the canonical fingerprint, or two semantically different
// configurations could share a cache entry.
//
// The analyzer finds the Config type and the fingerprint function in the
// package whose import path ends in "/sim", takes the fingerprint's
// interprocedural read set over Config fields, and exports it as a package
// fact. Every package (the sim package itself included) is then scanned
// for value reads of Config fields absent from that set; each such read is
// reported at its site. Unlike the reflect guard — which pins the field
// *list* — this check pins field *use*: a new field consulted anywhere in
// reachable code without a fingerprint entry fails `make lint` at the
// offending read.
package fpcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the fpcover entry point.
var Analyzer = &analysis.Analyzer{
	Name: "fpcover",
	Doc: "every sim.Config field read by simulation code must be fingerprinted\n\n" +
		"The fingerprint function's interprocedural read set flows to importing\n" +
		"packages as a fact; reads of unfingerprinted Config fields are reported\n" +
		"at the read site.",
	Requires:  []*analysis.Analyzer{interproc.Analyzer},
	FactBased: true,
	Run:       run,
}

// Fact is the exported fingerprint read set of one /sim package.
type Fact struct {
	ConfigPkg string          // package path declaring Config
	Read      map[string]bool // Config fields the fingerprint consumes
}

func run(pass *analysis.Pass) (any, error) {
	r := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	pkgPath := pass.Pkg.Path()

	var facts []*Fact
	if strings.HasSuffix(pkgPath, "/sim") || pkgPath == "sim" {
		if f := computeFact(pass, r); f != nil {
			pass.ExportFact(f)
			facts = append(facts, f)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		if v, ok := pass.PackageFact(imp.Path()); ok {
			if f, ok := v.(*Fact); ok {
				facts = append(facts, f)
			}
		}
	}
	if len(facts) == 0 {
		return nil, nil
	}

	for _, file := range pass.Files {
		checkFile(pass, file, facts)
	}
	return nil, nil
}

// computeFact derives the fingerprint's Config read set from its summary.
func computeFact(pass *analysis.Pass, r *interproc.Result) *Fact {
	scope := pass.Pkg.Scope()
	tn, ok := scope.Lookup("Config").(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	fp, ok := scope.Lookup("fingerprint").(*types.Func)
	if !ok {
		return nil
	}
	sum := r.SummaryOf(fp)
	if sum == nil {
		return nil
	}
	f := &Fact{ConfigPkg: pass.Pkg.Path(), Read: map[string]bool{}}
	for fk := range sum.Reads {
		if fk.Pkg == f.ConfigPkg && fk.Type == "Config" {
			f.Read[fk.Field] = true
		}
	}
	return f
}

// checkFile reports value reads of unfingerprinted Config fields. Pure
// assignment targets are excluded: storing into a Config field (builders,
// flag parsing) does not consult its value.
func checkFile(pass *analysis.Pass, file *ast.File, facts []*Fact) {
	info := pass.TypesInfo

	// Selectors that are plain assignment targets (after peeling parens,
	// indexing, and derefs) are writes, not reads.
	writeOnly := map[*ast.SelectorExpr]bool{}
	markLHS := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				if sel, ok := e.(*ast.SelectorExpr); ok {
					writeOnly[sel] = true
				}
				return
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for _, lhs := range as.Lhs {
				markLHS(lhs)
			}
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if writeOnly[sel] {
			return true
		}
		fk, ok := interproc.FieldOf(selection)
		if !ok {
			return true
		}
		for _, f := range facts {
			if fk.Pkg == f.ConfigPkg && fk.Type == "Config" && !f.Read[fk.Field] {
				pass.Reportf(sel.Sel.Pos(),
					"Config field %s is read by simulation code but absent from the run-cache fingerprint (%s); add it to fingerprint() or the cache will conflate differing runs",
					fk.Field, f.ConfigPkg)
			}
		}
		return true
	})
}
