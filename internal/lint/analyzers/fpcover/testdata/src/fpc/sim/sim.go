// Package sim is a structural stand-in for awgsim/internal/sim: the
// analyzer matches the Config type and fingerprint function by name in any
// package whose path ends in "/sim".
package sim

import "strconv"

// Config mirrors the run-configuration surface: two fingerprinted fields,
// two consulted-but-unfingerprinted ones, and a write-only tag.
type Config struct {
	Benchmark string
	Seed      int64
	Oversub   int
	Verbose   bool
	Tag       string
}

// fingerprint folds Benchmark and Seed — deliberately not Oversub or
// Verbose — into the cache key, via a helper to prove the read set is
// interprocedural.
func fingerprint(c *Config) string {
	return c.Benchmark + "|" + encodeSeed(c)
}

func encodeSeed(c *Config) string {
	return strconv.FormatInt(c.Seed, 10)
}

// Run consults Verbose, which the fingerprint above ignores.
func Run(c *Config) string {
	key := fingerprint(c)
	if c.Verbose { // want `Config field Verbose is read by simulation code but absent from the run-cache fingerprint`
		key += "+v"
	}
	return key
}
