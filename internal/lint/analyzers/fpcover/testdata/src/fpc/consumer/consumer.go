// Package consumer reads sim.Config fields from an importing package: the
// fingerprint read set reaches it as a package fact.
package consumer

import "awgsim/internal/lint/analyzers/fpcover/testdata/src/fpc/sim"

// Plan reads the unfingerprinted Oversub field (twice) and the
// fingerprinted Benchmark field, and stores into Tag without reading it.
func Plan(c *sim.Config) int {
	n := 1
	if c.Oversub > 0 { // want `Config field Oversub is read by simulation code but absent from the run-cache fingerprint`
		n = c.Oversub // want `Config field Oversub is read by simulation code but absent from the run-cache fingerprint`
	}
	c.Tag = "planned" // pure store: not a read, no finding
	_ = c.Benchmark   // fingerprinted: fine
	return n
}
