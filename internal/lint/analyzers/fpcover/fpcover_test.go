package fpcover_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/fpcover"
)

func TestFPCover(t *testing.T) {
	analysistest.Run(t, fpcover.Analyzer, "fpc/sim", "fpc/consumer")
}
