// Package fleet seeds single-home violations against a stand-in for the
// fleet layer's device placement: a workload id lives in exactly one
// Device.workloads slice, moved only by the attach/detach transfer pair.
package fleet

// Device mirrors the fleet's protected placement container.
type Device struct {
	id        int
	workloads []int
}

// attach is an approved transfer function: appending here is sanctioned.
func attach(d *Device, id int) {
	d.workloads = append(d.workloads, id)
}

// detach is an approved transfer function: splicing here is sanctioned.
func detach(d *Device, id int) {
	for i, w := range d.workloads {
		if w == id {
			d.workloads = append(d.workloads[:i], d.workloads[i+1:]...)
			return
		}
	}
}

// migrate must route the move through detach/attach, not write the slices
// itself — a direct write on either side can leave the workload homed on
// two devices (paced twice, waiters woken twice).
func migrate(from, to *Device, id int) {
	to.workloads = append(to.workloads, id) // want `Device\.workloads holds single-home waiter state`
	for i, w := range from.workloads {
		if w == id {
			from.workloads = append(from.workloads[:i], from.workloads[i+1:]...) // want `Device\.workloads holds single-home waiter state`
			return
		}
	}
}

// rebalance uses the transfer pair and is clean.
func rebalance(from, to *Device, id int) {
	detach(from, id)
	attach(to, id)
}

// drop clears a device's placement wholesale; only approved functions may.
func drop(d *Device) {
	d.workloads = nil // want `Device\.workloads holds single-home waiter state`
}
