// Package syncmon seeds single-home violations against stand-ins for the
// SyncMon condition cache and the Monitor Log ring. The flagged shapes are
// the PR 3 lost-wakeup bugs: code outside the approved transfer functions
// reaching into a waiter container directly.
package syncmon

type entry struct {
	addr int64
	want int64
}

// MonitorLog mirrors the ring's protected state.
type MonitorLog struct {
	entries []entry
	dead    []bool
	head    int
	size    int
	live    int
	maxLive int
}

func NewMonitorLog(n int) *MonitorLog {
	return &MonitorLog{entries: make([]entry, n), dead: make([]bool, n), size: n}
}

// Push is an approved ring accessor: its writes are the transfer function.
func (l *MonitorLog) Push(e entry) {
	l.entries[l.head%l.size] = e
	l.head++
	l.live++
	if l.live > l.maxLive {
		l.maxLive = l.live
	}
}

// Remove is the sanctioned way to take an entry out of the ring.
func (l *MonitorLog) Remove(i int) {
	l.dead[i] = true
	l.live--
}

// SyncMon mirrors the condition cache's protected state.
type SyncMon struct {
	sets    [][]entry
	waiters map[int64]int
	byAddr  map[int64][]int
	log     *MonitorLog
}

// Register is approved for the cache fields.
func (s *SyncMon) Register(id int64, e entry) {
	s.waiters[id]++
	s.sets[0] = append(s.sets[0], e)
}

// Unregister may touch the cache, but the ring write below is the PR 3 bug
// shape: tombstoning the Monitor Log behind the CP's back instead of going
// through MonitorLog.Remove, leaving the waiter without a home.
func (s *SyncMon) Unregister(id int64) {
	delete(s.waiters, id) // approved: Unregister is a cache transfer function
	s.log.dead[0] = true  // want `MonitorLog\.dead holds single-home waiter state`
	s.log.live--          // want `MonitorLog\.live holds single-home waiter state`
}

// evictHalf is not an approved transfer function for the cache.
func (s *SyncMon) evictHalf() {
	s.sets[0] = nil       // want `SyncMon\.sets holds single-home waiter state`
	delete(s.byAddr, 0)   // want `SyncMon\.byAddr holds single-home waiter state`
	borrow(&s.waiters)    // want `SyncMon\.waiters holds single-home waiter state`
	s.log.Remove(0)       // routed through the approved accessor: fine
	_ = len(s.sets)       // reads are unrestricted
	_, ok := s.waiters[0] // reads are unrestricted
	_ = ok
}

// Restore is the approved whole-home rewind: rewriting every container
// from one snapshot image cannot split a waiter across homes.
func (s *SyncMon) Restore(sets [][]entry, waiters map[int64]int) {
	s.sets = sets       // approved: Restore is a transfer function
	s.waiters = waiters // approved: Restore is a transfer function
}

// restore is the ring's approved rewind.
func (l *MonitorLog) restore(head, live int) {
	l.head = head // approved: restore is a ring transfer function
	l.live = live // approved: restore is a ring transfer function
}

// restoreFast is NOT an approved name: a partial rewind outside the
// snapshot layer is exactly the two-homes hazard the rule exists for.
func (l *MonitorLog) restoreFast(head int) {
	l.head = head // want `MonitorLog\.head holds single-home waiter state`
}

func borrow(m *map[int64]int) {}
