// Package cp seeds single-home violations against a stand-in for the CP's
// spilled-condition table.
package cp

type cond struct {
	addr int64
	want int64
}

// Processor mirrors the CP's protected table state.
type Processor struct {
	table   map[int64]*cond
	order   []int64
	inTable map[int64]bool
	addrs   map[int64]int
	removed map[int64]bool
}

func New() *Processor {
	return &Processor{
		table:   map[int64]*cond{},
		inTable: map[int64]bool{},
		addrs:   map[int64]int{},
		removed: map[int64]bool{},
	}
}

// dropCond is an approved transfer function: splicing here is sanctioned.
func (p *Processor) dropCond(id int64, i int) {
	delete(p.table, id)
	delete(p.inTable, id)
	p.order = append(p.order[:i], p.order[i+1:]...)
}

// checkPass is not approved to splice the walk order directly — it must
// route removals through dropCond.
func (p *Processor) checkPass() {
	for i, id := range p.order {
		if c, ok := p.table[id]; ok && c.addr == c.want {
			p.order = append(p.order[:i], p.order[i+1:]...) // want `Processor\.order holds single-home waiter state`
			p.removed[id] = true                            // want `Processor\.removed holds single-home waiter state`
			break
		}
	}
}

// Restore is the approved whole-home rewind: every container is rewritten
// from one snapshot image, so no waiter can end up split across homes.
func (p *Processor) Restore(order []int64, removed map[int64]bool) {
	p.order = append(p.order[:0], order...) // approved: Restore is a transfer function
	p.removed = removed                     // approved: Restore is a transfer function
}

// rewind is NOT an approved name: snapshot-style rewrites must live in the
// named snapshot layer, not be scattered under ad-hoc names.
func (p *Processor) rewind(order []int64) {
	p.order = order // want `Processor\.order holds single-home waiter state`
}
