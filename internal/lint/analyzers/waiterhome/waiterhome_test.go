package waiterhome_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/waiterhome"
)

func TestWaiterHome(t *testing.T) {
	analysistest.Run(t, waiterhome.Analyzer, "syncmon", "cp", "fleet")
}
