// Package waiterhome mechanizes the single-home rule: a waiter lives in
// exactly one of the SyncMon condition cache, the Monitor Log ring, or the
// CP spilled-condition table.
//
// PR 3 fixed two lost-wakeup bugs that were both violations of this rule —
// sm.Unregister tombstoning the ring behind the CP's back, and
// cp.Unregister recording a stale removed-tombstone after the ring entry
// was already consumed. The rule cannot be checked dynamically without the
// failing schedule in hand, but its structural precondition can: waiter
// state moves only through a small set of named transfer functions, so any
// direct mutation of the underlying containers from other code is a bug in
// the making.
//
// The analyzer restricts writes (assignment, ++/--, delete, splice-append)
// to the protected fields below to their approved transfer functions.
// Reads are unrestricted. A function literal defined inside an approved
// function inherits its approval.
package waiterhome

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the waiterhome analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "waiterhome",
	Doc:  "restrict waiter-state mutation to the approved single-home transfer functions",
	Run:  run,
}

// home describes one protected container: the owning type (matched by
// package-path suffix + type name, so testdata stand-ins work), the fields
// holding waiter state, and the functions allowed to mutate them.
type home struct {
	pkgSuffix string
	typeName  string
	fields    map[string]bool
	approved  map[string]bool // enclosing function names (methods or frees)
}

var homes = []home{
	{
		// SyncMon condition cache: conditions, waiters, and the slab store
		// holding them move together through registration/wake/evict paths.
		// (sets/byAddr/monitored survive as testdata stand-in fields.)
		pkgSuffix: "/syncmon", typeName: "SyncMon",
		fields: map[string]bool{
			"sets": true, "waiters": true, "byAddr": true,
			"monitored": true, "conds": true, "store": true,
		},
		approved: map[string]bool{
			"New": true, "Register": true, "Unregister": true,
			"dropEntry": true, "observe": true, "wakeAllOnAddr": true,
			"Degrade": true,
			// Restore rewrites every container of the home from one saved
			// image, so the single-home invariant holds by construction.
			"Restore": true,
		},
	},
	{
		// A condition entry's waiter queue is part of the cache home.
		pkgSuffix: "/syncmon", typeName: "condEntry",
		fields: map[string]bool{"waiters": true},
		approved: map[string]bool{
			"Register": true, "Unregister": true, "observe": true,
			"wakeAllOnAddr": true, "Degrade": true, "dropEntry": true,
		},
	},
	{
		// The slab condition store's containers: only the store's own
		// accessors move entries, waiter nodes, freelists, or set arrays.
		pkgSuffix: "/syncmon", typeName: "condStore",
		fields: map[string]bool{
			"setEnt": true, "setLen": true, "ents": true, "freeEnt": true,
			"wnodes": true, "freeW": true, "byAddr": true,
		},
		approved: map[string]bool{
			"newCondStore": true, "insert": true, "drop": true,
			"pushWaiter": true, "popWaiter": true, "shedTailWaiter": true,
			"removeWaiter": true, "clearWaiters": true,
			// Whole-store rewind from a snapshot image (see Restore above).
			"restore": true,
		},
	},
	{
		// A slab condition slot's intrusive links and waiter list heads.
		pkgSuffix: "/syncmon", typeName: "condSlot",
		fields: map[string]bool{
			"addrNext": true, "wHead": true, "wTail": true, "wLen": true,
			"next": true,
		},
		approved: map[string]bool{
			"insert": true, "drop": true, "pushWaiter": true,
			"popWaiter": true, "shedTailWaiter": true, "removeWaiter": true,
			"clearWaiters": true,
		},
	},
	{
		// Waiter-node freelist links.
		pkgSuffix: "/syncmon", typeName: "waiterSlot",
		fields: map[string]bool{"next": true},
		approved: map[string]bool{
			"drop": true, "pushWaiter": true, "popWaiter": true,
			"shedTailWaiter": true, "removeWaiter": true, "clearWaiters": true,
		},
	},
	{
		// Per-address chain heads in the open-addressed index.
		pkgSuffix: "/syncmon", typeName: "addrState",
		fields:   map[string]bool{"head": true, "tail": true, "count": true},
		approved: map[string]bool{"insert": true, "drop": true},
	},
	{
		// Monitor Log ring state: only the ring's own accessors may touch
		// slots, tombstones, or occupancy — sm/cp code goes through
		// Push/Pop/Remove.
		pkgSuffix: "/syncmon", typeName: "MonitorLog",
		fields: map[string]bool{
			"entries": true, "dead": true, "head": true,
			"size": true, "live": true, "maxLive": true,
		},
		approved: map[string]bool{
			"NewMonitorLog": true, "Push": true, "Pop": true, "Remove": true,
			// Whole-ring rewind from a snapshot image (see Restore above).
			"restore": true,
		},
	},
	{
		// CP spilled-condition table, its walk order, and the wake buffer
		// waiters travel through. (table/inTable/addrs/removed survive as
		// testdata stand-in fields.)
		pkgSuffix: "/cp", typeName: "Processor",
		fields: map[string]bool{
			"table": true, "order": true, "inTable": true,
			"addrs": true, "removed": true, "tab": true, "wakeBuf": true,
		},
		approved: map[string]bool{
			"New": true, "Unregister": true, "drainPass": true,
			"dropCond": true, "runCheckResult": true,
			// Restore rewrites every container of the home from one saved
			// image, so the single-home invariant holds by construction.
			"Restore": true,
		},
	},
	{
		// The CP slab table's containers, counters, and indexes.
		pkgSuffix: "/cp", typeName: "spillTable",
		fields: map[string]bool{
			"ents": true, "freeEnt": true, "wnodes": true, "freeW": true,
			"idx": true, "addrs": true, "waiters": true, "condLive": true,
		},
		approved: map[string]bool{
			"newSpillTable": true, "alloc": true, "maybeFree": true,
			"pushNode": true, "addWaiter": true, "removeWaiter": true,
			"dropWaiters": true, "addTombstone": true, "consumeTombstone": true,
			// Whole-table rewind from a snapshot image (see Restore above).
			"restore": true,
		},
	},
	{
		// A spilled condition's waiter and tombstone list heads.
		pkgSuffix: "/cp", typeName: "spillSlot",
		fields: map[string]bool{
			"wHead": true, "wTail": true, "wLen": true,
			"rHead": true, "rLen": true, "next": true,
		},
		approved: map[string]bool{
			"alloc": true, "maybeFree": true, "addWaiter": true,
			"removeWaiter": true, "dropWaiters": true,
			"addTombstone": true, "consumeTombstone": true,
		},
	},
	{
		// Waiter/tombstone node freelist links.
		pkgSuffix: "/cp", typeName: "wgNode",
		fields: map[string]bool{"next": true},
		approved: map[string]bool{
			"pushNode": true, "removeWaiter": true, "dropWaiters": true,
			"addTombstone": true, "consumeTombstone": true,
		},
	},
	{
		// Fleet device placement: a workload id is homed on exactly one
		// device, the cross-device analogue of the waiter rule — a
		// double-homed workload would be paced (and its waiters woken)
		// twice. Only the attach/detach transfer pair moves ids.
		pkgSuffix: "/fleet", typeName: "Device",
		fields:   map[string]bool{"workloads": true},
		approved: map[string]bool{"attach": true, "detach": true},
	},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fd, n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && len(n.Args) > 0 {
					checkWrite(pass, fd, n.Args[0])
				}
			}
			// &s.field escaping into a call could alias the container, but
			// every legitimate use in-tree passes values; taking the
			// address of protected state is treated as a write.
			for _, arg := range n.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					checkWrite(pass, fd, u.X)
				}
			}
		}
		return true
	})
}

// checkWrite reports lhs when it denotes (or indexes into) a protected
// field and fd is not approved for it.
func checkWrite(pass *analysis.Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	// Unwrap indexing/slicing: writing s.sets[i] (or through it) mutates
	// the container rooted at the field selector.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.SliceExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return
	}
	owner := ownerNamed(selection.Recv())
	if owner == nil || owner.Obj().Pkg() == nil {
		return
	}
	for _, h := range homes {
		if !strings.HasSuffix(owner.Obj().Pkg().Path(), h.pkgSuffix) ||
			owner.Obj().Name() != h.typeName || !h.fields[field.Name()] {
			continue
		}
		if h.approved[fd.Name.Name] {
			return
		}
		pass.ReportRangef(sel, "%s.%s holds single-home waiter state; only %s may mutate it (got %s) — "+
			"route the transfer through an approved function so the waiter cannot end up in two homes",
			h.typeName, field.Name(), approvedList(h), fd.Name.Name)
		return
	}
}

func ownerNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func approvedList(h home) string {
	names := make([]string, 0, len(h.approved))
	for n := range h.approved {
		names = append(names, n)
	}
	// Deterministic message ordering.
	sort.Strings(names)
	return strings.Join(names, "/")
}
