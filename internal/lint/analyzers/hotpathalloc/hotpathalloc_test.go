package hotpathalloc_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "gpu")
}
