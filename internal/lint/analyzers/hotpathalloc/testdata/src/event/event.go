// Package event is a structural stand-in for awgsim/internal/event: the
// analyzer matches the Engine type by name and package-path suffix, so this
// testdata copy exercises it without importing the real simulator.
package event

// Cycle mirrors event.Cycle.
type Cycle uint64

// TaskFunc mirrors event.TaskFunc.
type TaskFunc func(*Task)

// Task mirrors the pooled event.Task argument slots.
type Task struct {
	Env [4]any
	I   [6]int64
}

// Engine mirrors the scheduling surface of event.Engine.
type Engine struct{}

func (e *Engine) Now() Cycle                             { return 0 }
func (e *Engine) At(at Cycle, fn func())                 {}
func (e *Engine) After(d Cycle, fn func())               {}
func (e *Engine) AtWithSeq(at Cycle, seq int, fn func()) {}
func (e *Engine) AtTask(at Cycle, t *Task)               {}
func (e *Engine) AfterTask(d Cycle, t *Task)             {}
func (e *Engine) NewTask(fn TaskFunc) *Task              { return &Task{} }

// Defer forwards its callback into Engine.At: ipsummary marks fn as a
// scheduling parameter, so capturing literals handed to Defer from hot
// packages are flagged even though event itself is out of scope.
func Defer(e *Engine, fn func()) { e.At(e.Now()+1, fn) }
