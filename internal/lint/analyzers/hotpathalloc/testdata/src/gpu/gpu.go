// Package gpu seeds hot-path scheduling sites: its package-path suffix
// puts it in the analyzer's scope, and the event stand-in's Engine matches
// the scheduling-method signatures.
package gpu

import "awgsim/internal/lint/analyzers/hotpathalloc/testdata/src/event"

type machine struct {
	eng *event.Engine
	n   int
}

func (m *machine) perEventClosures(w int) {
	m.eng.After(3, func() { m.n += w }) // want `capturing closure \(m, w\) scheduled via Engine\.After`
	m.eng.At(1, func() { m.n++ })       // want `capturing closure \(m\) scheduled via Engine\.At`
}

func (m *machine) sanctioned() {
	m.eng.At(1, func() { println("static") }) // non-capturing literal: allocated once

	hoisted := func() { m.n++ } // built once per episode, identifier at the call site
	m.eng.After(2, hoisted)

	t := m.eng.NewTask(runStep) // pooled task with a top-level callee
	t.Env[0] = m
	m.eng.AfterTask(4, t)
}

func (m *machine) capturingTaskFunc() {
	m.eng.NewTask(func(t *event.Task) { m.n++ }) // want `capturing closure \(m\) scheduled via Engine\.NewTask`
}

// snapshotRing mirrors the machine's periodic snapshot-ring arming: the
// tick closure is built once at Prepare and rescheduled by identifier, so
// only the naive per-tick literal is a finding.
func (m *machine) snapshotRing(every event.Cycle) {
	var tick func()
	tick = func() {
		m.eng.After(every, tick) // identifier at the call site: hoisted once
		m.n++                    // stand-in for pushRingSnapshot
	}
	m.eng.After(every, tick)
}

func (m *machine) snapshotRingNaive(every event.Cycle) {
	m.eng.After(every, func() { // want `capturing closure \(m, every\) scheduled via Engine\.After`
		m.snapshotRingNaive(every) // reschedules by allocating a fresh closure per tick
	})
}

func runStep(t *event.Task) { t.Env[0].(*machine).n++ }

// atSeq forwards its callback into Engine.AtWithSeq; ipsummary marks fn
// as a scheduling parameter.
func (m *machine) atSeq(seq int, fn func()) {
	m.eng.AtWithSeq(m.eng.Now(), seq, fn)
}

// armLater hops through atSeq — the in-component fixpoint must propagate
// the scheduling-parameter mark one level further.
func (m *machine) armLater(fn func()) { m.atSeq(7, fn) }

func (m *machine) forwarded(w int) {
	m.eng.AtWithSeq(0, 1, func() { m.n += w }) // want `capturing closure \(m, w\) scheduled via Engine\.AtWithSeq`

	m.atSeq(2, func() { m.n++ })    // want `capturing closure \(m\) forwarded to atSeq which schedules it on the engine`
	m.armLater(func() { m.n += w }) // want `capturing closure \(m, w\) forwarded to armLater which schedules it on the engine`

	// Cross-package forwarder: event.Defer's summary arrives via the fact.
	event.Defer(m.eng, func() { m.n++ }) // want `capturing closure \(m\) forwarded to Defer which schedules it on the engine`

	m.atSeq(3, func() { println("static") }) // non-capturing: fine through forwarders too

	hoisted := func() { m.n++ }
	m.armLater(hoisted) // identifier at the call site: hoisted once per episode
}
