// Package hotpathalloc guards the event-engine hot path against the
// per-event closure allocations PR 3 removed.
//
// Scheduling a capturing func literal on the engine allocates a closure
// (and often a heap-escaped context) for every event. On the simulator's
// highest-rate paths — CU issue, bank service, wake delivery — that cost a
// 4–7x slowdown before pooled event.Task replaced it. The analyzer flags a
// capturing function literal passed directly to Engine.At / After /
// AtTask / AfterTask (or to Engine.NewTask) inside the hot-path packages
// (internal/gpu, internal/syncmon, internal/policy).
//
// The sanctioned patterns remain available:
//   - pooled tasks: e.NewTask(topLevelFunc) with arguments in Env/I slots;
//   - episode hoisting: build the closure once per wait episode, then pass
//     the identifier on every retry (only literals at the call site are
//     flagged);
//   - non-capturing literals, which the compiler allocates once.
//
// Genuinely cold scheduling sites in these packages carry a
// `//lint:allow hotpathalloc <reason>` directive.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid capturing closure literals scheduled on the event engine in hot-path packages",
	Run:  run,
}

// hotPackages are the package-path suffixes whose scheduling sites are on
// (or adjacent to) the event hot path. Suffix matching keeps the analyzer
// testable from analysistest testdata packages of the same name.
var hotPackages = []string{"/gpu", "/syncmon", "/policy"}

// schedMethods are the event.Engine methods that place work on the
// calendar (NewTask included: a capturing TaskFunc defeats pooling).
var schedMethods = map[string]bool{
	"At": true, "After": true, "AtTask": true, "AfterTask": true, "NewTask": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := engineSchedCall(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				if capt := captured(pass, lit); len(capt) > 0 {
					pass.Report(analysis.Diagnostic{
						Pos: lit.Pos(), End: lit.Type.End(),
						Message: "capturing closure (" + strings.Join(capt, ", ") + ") scheduled via Engine." +
							name + " allocates per event; use a pooled Task (Engine.NewTask + Env/I slots) " +
							"or hoist the closure out of the per-event path",
					})
				}
			}
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range hotPackages {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// engineSchedCall reports whether call invokes a scheduling method on
// *event.Engine (matched by type name, so testdata stand-ins work) and
// returns the method name.
func engineSchedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !schedMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return "", false
	}
	if pkg := named.Obj().Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "event") {
		return "", false
	}
	return sel.Sel.Name, true
}

// captured returns the names of free variables the literal captures:
// objects used inside the body but declared outside it (and not at package
// scope — package-level vars don't force a closure context allocation per
// schedule... they do force a closure, but a shared static one).
func captured(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level variables are not per-call captures.
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}
