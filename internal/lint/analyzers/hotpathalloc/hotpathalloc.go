// Package hotpathalloc guards the event-engine hot path against the
// per-event closure allocations PR 3 removed.
//
// Scheduling a capturing func literal on the engine allocates a closure
// (and often a heap-escaped context) for every event. On the simulator's
// highest-rate paths — CU issue, bank service, wake delivery — that cost a
// 4–7x slowdown before pooled event.Task replaced it. The analyzer flags a
// capturing function literal passed directly to an Engine scheduling
// method (At / After / AtWithSeq / AtTask / AfterTask / NewTask) inside
// the hot-path packages (internal/gpu, internal/syncmon, internal/policy).
//
// The check is interprocedural: the ipsummary framework marks
// function-typed parameters that a callee (transitively, across package
// boundaries via facts) forwards into an engine-schedule call. A capturing
// literal handed to such a forwarder is flagged exactly like one handed to
// Engine.At directly — wrapping the schedule in a helper does not launder
// the per-event allocation.
//
// The sanctioned patterns remain available:
//   - pooled tasks: e.NewTask(topLevelFunc) with arguments in Env/I slots;
//   - episode hoisting: build the closure once per wait episode, then pass
//     the identifier on every retry (only literals at the call site are
//     flagged);
//   - non-capturing literals, which the compiler allocates once.
//
// Genuinely cold scheduling sites in these packages carry a
// `//lint:allow hotpathalloc <reason>` directive.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "hotpathalloc",
	Doc:      "forbid capturing closure literals scheduled on the event engine in hot-path packages",
	Requires: []*analysis.Analyzer{interproc.Analyzer},
	Run:      run,
}

// hotPackages are the package-path suffixes whose scheduling sites are on
// (or adjacent to) the event hot path. Suffix matching keeps the analyzer
// testable from analysistest testdata packages of the same name.
var hotPackages = []string{"/gpu", "/syncmon", "/policy"}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ip := pass.ResultOf[interproc.Analyzer].(*interproc.Result)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := interproc.EngineSchedCall(pass.TypesInfo, call); ok {
				for _, arg := range call.Args {
					reportCapturing(pass, arg, "scheduled via Engine."+name)
				}
				return true
			}
			// A callee whose summary forwards a func-typed parameter into
			// an engine-schedule call is a scheduling site by proxy.
			callee, fwd := forwarder(pass, ip, call)
			for _, i := range fwd {
				if i < len(call.Args) {
					reportCapturing(pass, call.Args[i],
						"forwarded to "+callee+" which schedules it on the engine")
				}
			}
			return true
		})
	}
	return nil, nil
}

// reportCapturing flags arg if it is a func literal with free variables.
func reportCapturing(pass *analysis.Pass, arg ast.Expr, via string) {
	lit, ok := arg.(*ast.FuncLit)
	if !ok {
		return
	}
	if capt := captured(pass, lit); len(capt) > 0 {
		pass.Report(analysis.Diagnostic{
			Pos: lit.Pos(), End: lit.Type.End(),
			Message: "capturing closure (" + strings.Join(capt, ", ") + ") " + via +
				" allocates per event; use a pooled Task (Engine.NewTask + Env/I slots) " +
				"or hoist the closure out of the per-event path",
		})
	}
}

func inScope(path string) bool {
	for _, s := range hotPackages {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// forwarder resolves call's static callee and returns its display name
// plus the argument indices its summary forwards into engine scheduling.
func forwarder(pass *analysis.Pass, ip *interproc.Result, call *ast.CallExpr) (string, []int) {
	var obj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil {
		return "", nil
	}
	s := ip.SummaryOf(obj)
	if s == nil || len(s.SchedParams) == 0 {
		return "", nil
	}
	return obj.Name(), s.SchedParams
}

// captured returns the names of free variables the literal captures:
// objects used inside the body but declared outside it (and not at package
// scope — package-level vars don't force a closure context allocation per
// schedule... they do force a closure, but a shared static one).
func captured(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level variables are not per-call captures.
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}
