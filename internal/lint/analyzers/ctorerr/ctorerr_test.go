package ctorerr_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/ctorerr"
)

func TestCtorErr(t *testing.T) {
	analysistest.Run(t, ctorerr.Analyzer, "ctor")
}
