// Package ctorerr reports discarded error results from New* constructors.
//
// PR 2 converted the config-validation panics in syncmon/cp/mem into
// constructor errors (`New... (T, error)`). A caller that discards the
// error — `m, _ := New(...)` or a bare call statement — silently
// reintroduces the panic it replaced: the component is built on an invalid
// config and fails later, far from the cause. The analyzer flags any call
// to a function or method named New or New<Upper>... whose final result is
// an error, when that error lands in a blank identifier or the call's
// results are dropped entirely.
package ctorerr

import (
	"go/ast"
	"go/types"
	"unicode"
	"unicode/utf8"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the ctorerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctorerr",
	Doc:  "report discarded error results from New* constructors",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := ctorWithError(pass, call); ok {
						pass.ReportRangef(call, "result of %s dropped: its error reports an invalid config "+
							"that previously panicked; handle it", name)
					}
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.GoStmt:
				if name, ok := ctorWithError(pass, n.Call); ok {
					pass.ReportRangef(n.Call, "result of %s dropped in go statement; handle its error", name)
				}
			case *ast.DeferStmt:
				if name, ok := ctorWithError(pass, n.Call); ok {
					pass.ReportRangef(n.Call, "result of %s dropped in defer statement; handle its error", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkAssign flags `x, _ := New(...)` forms: the constructor's error
// position assigned to blank.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Only the single-call multi-assign form can discard a trailing error:
	//   a, b := New(...)
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(as.Lhs) < 2 {
		return
	}
	name, ok := ctorWithError(pass, call)
	if !ok {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.ReportRangef(last, "error from %s discarded with blank identifier; "+
		"an invalid config now fails silently instead of at construction", name)
}

// ctorWithError reports whether call invokes a New*-named function whose
// last result is an error, returning a display name.
func ctorWithError(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !isNewName(id.Name) {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() < 2 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name, true
}

// isNewName matches New, NewFoo, New_... — the constructor convention.
func isNewName(s string) bool {
	if s == "New" {
		return true
	}
	if len(s) <= 3 || s[:3] != "New" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(s[3:])
	return unicode.IsUpper(r) || r == '_'
}
