// Package ctor seeds discarded constructor errors — the shapes that would
// silently reintroduce the config-validation panics PR 2 converted to
// errors.
package ctor

import "errors"

type Mon struct{ ways int }

func New(ways int) (*Mon, error) {
	if ways <= 0 {
		return nil, errors.New("ctor: ways must be positive")
	}
	return &Mon{ways: ways}, nil
}

func NewTable(n int) (*Mon, error) { return New(n) }

// newScratch is not a constructor by the New<Upper> convention.
func newScratch() *Mon { return &Mon{} }

// Newish has no error result, so discarding it is not this analyzer's
// business.
func Newish() *Mon { return &Mon{} }

func use() *Mon {
	New(4)         // want `result of New dropped`
	m, _ := New(4) // want `error from New discarded with blank identifier`
	_ = m
	go New(1)    // want `result of New dropped in go statement`
	defer New(1) // want `result of New dropped in defer statement`

	t, err := NewTable(2) // handled: fine
	if err != nil {
		return nil
	}
	_ = newScratch()
	_ = Newish()
	return t
}
