// Package shadowed seeds behavioral shadows (outer variable read again
// after the inner declaration) and the harmless idioms the analyzer must
// stay quiet on.
package shadowed

func reported(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x * 2 // want `declaration of "total" shadows declaration at line 7`
			_ = total
		}
	}
	return total
}

func errShadow(get func() (int, error)) error {
	v, err := get()
	if v > 0 {
		v, err := get() // want `declaration of "v" shadows declaration at line 18` `declaration of "err" shadows declaration at line 18`
		_, _ = v, err
	}
	_ = v
	return err
}

func deadShadow(xs []int) {
	v := 1
	_ = v
	if len(xs) > 0 {
		v := 2 // outer v never read after this point: quiet
		_ = v
	}
}

func rebind(fs []func()) {
	for _, f := range fs {
		f := f // the x := x pinning idiom: quiet
		defer f()
	}
}

// bareTypeParams mirrors the gpu/atomics.go shape: parameter names inside a
// func *type* expression bind no code and cannot shadow.
func bareTypeParams(env any) int64 {
	old := int64(1)
	if fn, ok := env.(func(old, new int64)); ok { // quiet: type-assertion param names
		fn(old, old)
	}
	return old
}
