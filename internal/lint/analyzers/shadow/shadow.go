// Package shadow is a from-source reimplementation of the vet/x/tools
// shadow analyzer (unavailable offline; this module builds without
// external dependencies), using the same reporting heuristic.
//
// A declaration `x := ...` that shadows an outer function-scope x is only
// reported when it can plausibly change behavior: the outer variable must
// be referenced again after the inner declaration appears (otherwise the
// shadow is dead and harmless — the idiomatic `err := ...` inside a branch
// stays quiet). Package-level names and the blank identifier are never
// considered.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"awgsim/internal/lint/analysis"
)

// Analyzer is the shadow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report declarations that shadow an outer variable still used afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Collect every use position of every variable, so the "outer variable
	// used after the shadow" heuristic has the data it needs; also collect
	// the identifiers that cannot meaningfully shadow anything — parameter
	// names of bodiless function types (type expressions declare no code)
	// and the `x := x` rebinding idiom (the shadow is the point).
	uses := map[types.Object][]ast.Node{}
	skip := map[*ast.Ident]bool{}
	bodied := map[*ast.FuncType]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
					uses[obj] = append(uses[obj], n)
				}
			case *ast.FuncDecl:
				bodied[n.Type] = true
			case *ast.FuncLit:
				bodied[n.Type] = true
			case *ast.FuncType:
				if !bodied[n] {
					markTypeParams(n, skip)
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if l, ok := n.Lhs[0].(*ast.Ident); ok {
						if r, ok := n.Rhs[0].(*ast.Ident); ok && l.Name == r.Name {
							skip[l] = true
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name == "_" || skip[id] {
				return true
			}
			inner, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok || inner.IsField() {
				return true
			}
			checkShadow(pass, id, inner, uses)
			return true
		})
	}
	return nil, nil
}

// markTypeParams adds ft's parameter/result names to skip: ft is a bare
// type expression (a func type in a field, type assertion, or variable
// declaration) whose names bind no code and so cannot cause a behavioral
// shadow. FuncDecl/FuncLit nodes are visited before their Type child, so
// bodied signatures are excluded via the bodied set before reaching here.
func markTypeParams(ft *ast.FuncType, skip map[*ast.Ident]bool) {
	for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				skip[name] = true
			}
		}
	}
}

func checkShadow(pass *analysis.Pass, id *ast.Ident, inner *types.Var, uses map[types.Object][]ast.Node) {
	// Find the scope in which the declaration appears and look the name up
	// starting from its *parent*, so we find what the new declaration hides.
	scope := pass.Pkg.Scope().Innermost(id.Pos())
	if scope == nil {
		return
	}
	_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == inner {
		return
	}
	// Only function-scope shadows: hiding a package-level or universe name
	// is a different (and much noisier) class.
	if outer.Parent() == nil || outer.Pkg() == nil || outer.Parent() == outer.Pkg().Scope() {
		return
	}
	// Heuristic (vet's): the outer variable must be used again at or after
	// the inner declaration; a shadow nothing reads past is harmless.
	usedAfter := false
	for _, u := range uses[outer] {
		if u.Pos() > id.Pos() {
			usedAfter = true
			break
		}
	}
	if !usedAfter {
		return
	}
	outerPos := pass.Fset.Position(outer.Pos())
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer %s is read again after this point",
		id.Name, outerPos.Line, id.Name)
}
