package shadow_test

import (
	"testing"

	"awgsim/internal/lint/analysistest"
	"awgsim/internal/lint/analyzers/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, shadow.Analyzer, "shadowed")
}
