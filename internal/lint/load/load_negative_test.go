package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module in a temp dir: path->contents,
// plus a minimal go.mod. The loader shells out to `go list`, so negative
// shapes (cycles, broken imports) must live in a real module, not in this
// repo's tree where they would break every build.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module x\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadImportCycle: a two-package import cycle must surface as a load
// error naming the cycle, not a hang, panic, or silent partial graph.
func TestLoadImportCycle(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport _ \"x/b\"\n\nvar A = 1\n",
		"b/b.go": "package b\n\nimport _ \"x/a\"\n\nvar B = 1\n",
	})
	_, _, err := LoadGraph(dir, "./a")
	if err == nil {
		t.Fatal("LoadGraph succeeded on an import cycle")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}

// TestLoadMissingImport: an import that resolves nowhere (not in-module,
// not GOROOT — the loader runs offline) is a load error naming the missing
// path.
func TestLoadMissingImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"c/c.go": "package c\n\nimport _ \"nosuch/missing\"\n\nvar C = 1\n",
	})
	_, _, err := LoadGraph(dir, "./c")
	if err == nil {
		t.Fatal("LoadGraph succeeded with an unresolvable import")
	}
	if !strings.Contains(err.Error(), "nosuch/missing") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

// TestLoadBuildTags: files excluded by build constraints must not reach the
// parser or type checker — the tagged file here references an undefined
// symbol and would fail the package if loaded.
func TestLoadBuildTags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"d/d.go": "package d\n\nvar Kept = 1\n",
		"d/tagged.go": "//go:build simstub\n\npackage d\n\n" +
			"var Dropped = thisSymbolDoesNotExist\n",
	})
	roots, _, err := LoadGraph(dir, "./d")
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d packages, want 1", len(roots))
	}
	p := roots[0]
	if len(p.TypeErrors) > 0 {
		t.Fatalf("tagged-out file reached the type checker: %v", p.TypeErrors)
	}
	if len(p.GoFiles) != 1 || filepath.Base(p.GoFiles[0]) != "d.go" {
		t.Fatalf("GoFiles = %v, want just d.go", p.GoFiles)
	}
	if p.Types.Scope().Lookup("Kept") == nil {
		t.Error("Kept missing from package scope")
	}
	if p.Types.Scope().Lookup("Dropped") != nil {
		t.Error("Dropped (build-tagged out) leaked into the package scope")
	}
}
