// Package load type-checks Go packages for the lint driver without any
// dependency outside the standard library and the go command.
//
// `go list -deps -json` (offline: every import resolves in-module or to
// GOROOT) yields the transitive package graph in dependency-first order;
// each package is then parsed and type-checked from source, with
// already-checked dependencies supplied through a map-backed importer. This
// replaces golang.org/x/tools/go/packages, which is unavailable in this
// build environment.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	PkgPath  string
	Dir      string
	GoFiles  []string // absolute paths, non-test files only
	Imports  []string // resolved import paths (ImportMap applied)
	Standard bool     // GOROOT package
	Module   bool     // belongs to the module being linted

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-checking problems. Module packages are
	// expected to be error-free (the tree builds); seeded lint testdata may
	// reference only in-module and stdlib identifiers, so errors here mean
	// the testdata itself is broken.
	TypeErrors []error
}

// listed mirrors the go list -json fields we consume.
type listed struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	// DepsErrors carries problems in the dependency cone (go list -e
	// attaches an import cycle here on the member it emits first, with the
	// Error field only on a later member — checking just Error would let
	// type-checking fail on a masked "could not import" instead).
	DepsErrors []*struct{ Err string }
}

// Load lists patterns from dir (the module root when empty) and returns the
// type-checked packages the patterns matched, in deterministic (import
// path) order. Dependencies are checked too but not returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, _, err := LoadGraph(dir, patterns...)
	return roots, err
}

// LoadGraph is Load, additionally returning every non-standard package in
// the dependency graph (roots included) in dependency-first order — the
// order a facts-based analyzer must visit packages so each import's facts
// exist before its importers run.
func LoadGraph(dir string, patterns ...string) (roots, graph []*Package, err error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	// Decode the JSON stream. go list -deps emits dependencies before
	// dependents, so a single forward pass can type-check everything.
	var order []*listed
	byPath := map[string]*listed{}
	dec := json.NewDecoder(&out)
	for dec.More() {
		var l listed
		if err := dec.Decode(&l); err != nil {
			return nil, nil, fmt.Errorf("go list: decoding: %v", err)
		}
		order = append(order, &l)
		byPath[l.ImportPath] = &l
	}

	// The roots (the packages the patterns actually matched) are the trailing
	// entries go list prints after their dependencies; recompute them instead
	// by re-listing without -deps, which is cheap and unambiguous.
	rootsCmd := exec.Command("go", append([]string{"list", "-e"}, patterns...)...)
	rootsCmd.Dir = dir
	rootsOut, rootsErr := rootsCmd.Output()
	rootSet := map[string]bool{}
	if rootsErr == nil {
		for _, p := range strings.Fields(string(rootsOut)) {
			rootSet[p] = true
		}
	}

	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	pkgs := map[string]*Package{}
	imp := &mapImporter{typed: typed}

	var result []*Package
	for _, l := range order {
		if l.ImportPath == "unsafe" {
			continue
		}
		if l.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", l.ImportPath, l.Error.Err)
		}
		if len(l.DepsErrors) > 0 {
			return nil, nil, fmt.Errorf("go list: %s: %s", l.ImportPath, l.DepsErrors[0].Err)
		}
		p, err := check(fset, l, imp)
		if err != nil {
			return nil, nil, err
		}
		typed[l.ImportPath] = p.Types
		pkgs[l.ImportPath] = p
		if !p.Standard {
			// `order` is dependency-first, which is exactly the graph order
			// facts-based analyzers need.
			graph = append(graph, p)
		}
		if rootSet[l.ImportPath] {
			result = append(result, p)
		}
	}
	if len(result) == 0 {
		// go list without -deps failed (or matched nothing): fall back to
		// every non-standard package listed.
		result = append(result, graph...)
	}
	sort.Slice(result, func(i, j int) bool { return result[i].PkgPath < result[j].PkgPath })
	return result, graph, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, l *listed, imp *mapImporter) (*Package, error) {
	p := &Package{
		PkgPath:  l.ImportPath,
		Dir:      l.Dir,
		Standard: l.Standard,
		Module:   l.Module != nil,
		Fset:     fset,
	}
	for _, f := range l.GoFiles {
		p.GoFiles = append(p.GoFiles, filepath.Join(l.Dir, f))
	}
	for _, im := range l.Imports {
		if mapped, ok := l.ImportMap[im]; ok {
			im = mapped
		}
		p.Imports = append(p.Imports, im)
	}
	for _, path := range p.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := types.Config{
		Importer: imp.forPackage(l),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	tp, err := cfg.Check(l.ImportPath, fset, p.Files, p.Info)
	p.Types = tp
	// Hard failures in standard-library internals don't block linting the
	// module; only surface errors for module packages, whose source must be
	// sound for analyzer results to mean anything.
	if err != nil && !l.Standard {
		return nil, fmt.Errorf("type-checking %s: %v", l.ImportPath, err)
	}
	return p, nil
}

// mapImporter resolves imports from the already-type-checked set, applying
// the per-package ImportMap (vendor/ or version rewrites from go list).
type mapImporter struct {
	typed map[string]*types.Package
}

type scopedImporter struct {
	*mapImporter
	importMap map[string]string
}

func (m *mapImporter) forPackage(l *listed) types.ImporterFrom {
	return &scopedImporter{mapImporter: m, importMap: l.ImportMap}
}

func (s *scopedImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, "", 0)
}

func (s *scopedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := s.importMap[path]; ok {
		path = mapped
	}
	if p, ok := s.typed[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("load: import %q not in dependency graph", path)
}
