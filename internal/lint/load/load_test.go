package load

import (
	"go/types"
	"testing"
	"time"
)

// TestLoadModulePackage type-checks a real module package (and, behind it,
// its stdlib dependency chain from source) and spot-checks the type
// information analyzers rely on.
func TestLoadModulePackage(t *testing.T) {
	start := time.Now()
	pkgs, err := Load("", "awgsim/internal/event")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Logf("loaded in %v", time.Since(start))
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "awgsim/internal/event" {
		t.Fatalf("PkgPath = %q", p.PkgPath)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors in module package: %v", p.TypeErrors)
	}
	if !p.Module || p.Standard {
		t.Errorf("Module/Standard flags wrong: %+v", p)
	}
	eng := p.Types.Scope().Lookup("Engine")
	if eng == nil {
		t.Fatal("Engine not found in package scope")
	}
	named, ok := eng.Type().(*types.Named)
	if !ok {
		t.Fatalf("Engine is %T", eng.Type())
	}
	var sawAfter bool
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "After" {
			sawAfter = true
		}
	}
	if !sawAfter {
		t.Error("Engine.After method not resolved")
	}
}

// TestLoadMultiple loads several packages in one go list invocation and
// checks deterministic ordering.
func TestLoadMultiple(t *testing.T) {
	pkgs, err := Load("", "awgsim/internal/hashutil", "awgsim/internal/event")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].PkgPath != "awgsim/internal/event" || pkgs[1].PkgPath != "awgsim/internal/hashutil" {
		t.Fatalf("order: %s, %s", pkgs[0].PkgPath, pkgs[1].PkgPath)
	}
}
