// Package analysistest runs one analyzer over packages under a testdata
// tree and checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// A want comment trails the offending line and holds one quoted regular
// expression per expected diagnostic:
//
//	rand.Intn(4) // want `math/rand global`
//	bad()        // want "first" "second"
//
// Directive suppression (`//lint:allow`) is deliberately NOT applied here —
// it is a driver feature, tested at the checker layer — so seeded
// violations always surface.
package analysistest

import (
	"fmt"
	"go/ast"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/load"
)

// Run loads ./testdata/src/<pkg> for each named pkg (relative to the
// calling test's package directory, where `go test` runs) and applies the
// analyzer, failing t on any mismatch between reported diagnostics and
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./" + path.Join("testdata", "src", p)
	}
	loaded, graph, err := load.LoadGraph("", patterns...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(loaded) != len(pkgs) {
		t.Fatalf("analysistest: loaded %d packages for %d patterns", len(loaded), len(pkgs))
	}
	// Mirror the driver: fact-based analyzers in the Requires closure run
	// over the whole dependency graph first (dependency order), so facts
	// from one testdata package are visible when analyzing its importers.
	ex := &executor{results: map[passKey]passResult{}, facts: map[*analysis.Analyzer]map[string]any{}}
	for _, p := range graph {
		for _, req := range factClosure(a) {
			if _, err := ex.run(p, req); err != nil {
				t.Fatalf("analysistest: %v", err)
			}
		}
	}
	for _, p := range loaded {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("analysistest: %s: testdata does not type-check: %v", p.PkgPath, p.TypeErrors[0])
		}
		runOne(t, ex, a, p)
	}
}

// factClosure returns the fact-based analyzers in a's transitive Requires
// closure (a included if fact-based), dependencies first.
func factClosure(a *analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	var visit func(x *analysis.Analyzer)
	visit = func(x *analysis.Analyzer) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, req := range x.Requires {
			visit(req)
		}
		if x.FactBased {
			out = append(out, x)
		}
	}
	visit(a)
	return out
}

// executor memoizes per-(package, analyzer) runs with a shared fact store,
// matching the checker driver's execution model.
type executor struct {
	results map[passKey]passResult
	facts   map[*analysis.Analyzer]map[string]any
}

type passKey struct {
	pkg *load.Package
	an  *analysis.Analyzer
}

type passResult struct {
	value any
	diags []analysis.Diagnostic
}

func (ex *executor) run(p *load.Package, a *analysis.Analyzer) (passResult, error) {
	k := passKey{p, a}
	if res, ok := ex.results[k]; ok {
		return res, nil
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		res, err := ex.run(p, req)
		if err != nil {
			return passResult{}, err
		}
		resultOf[req] = res.value
	}
	if ex.facts[a] == nil {
		ex.facts[a] = map[string]any{}
	}
	store := ex.facts[a]
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		ResultOf:  resultOf,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportPackageFact: func(pkgPath string) (any, bool) {
			f, ok := store[pkgPath]
			return f, ok
		},
		ExportPackageFact: func(fact any) { store[p.PkgPath] = fact },
	}
	value, err := a.Run(pass)
	if err != nil {
		return passResult{}, fmt.Errorf("%s: analyzer %s: %v", p.PkgPath, a.Name, err)
	}
	res := passResult{value: value, diags: diags}
	ex.results[k] = res
	return res, nil
}

type key struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, ex *executor, a *analysis.Analyzer, p *load.Package) {
	t.Helper()
	wants := map[key][]*want{}
	for _, f := range p.Files {
		collectWants(t, p, f, wants)
	}

	res, err := ex.run(p, a)
	if err != nil {
		t.Fatalf("analysistest: %s: %v", p.PkgPath, err)
	}
	diags := res.diags

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		var hit *want
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		hit.matched = true
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.raw)
			}
		}
	}
}

// collectWants parses `// want "re"...` trailing comments.
func collectWants(t *testing.T, p *load.Package, f *ast.File, wants map[key][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			k := key{pos.Filename, pos.Line}
			rest := strings.TrimSpace(text)
			for rest != "" {
				lit, remainder, err := cutString(rest)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
				}
				wants[k] = append(wants[k], &want{re: re, raw: lit})
				rest = strings.TrimSpace(remainder)
			}
		}
	}
}

// cutString consumes one leading Go string literal (interpreted or raw)
// from s and returns its value and the remainder.
func cutString(s string) (string, string, error) {
	if s == "" {
		return "", "", fmt.Errorf("empty literal")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				val, err := strconv.Unquote(s[:i+1])
				return val, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("expected quoted regexp, got %q", s)
	}
}
