package interproc

import (
	"go/ast"
	"go/token"
	"go/types"

	"awgsim/internal/lint/analysis"
)

// writeKind classifies how an lvalue selector participates in a statement.
type writeKind int

const (
	wkNone      writeKind = iota
	wkWrite               // plain assignment target
	wkReadWrite           // op-assign, ++/--, or address-taken
)

// extract walks one function body and records its direct effects: field
// reads/writes, call edges (local, cross-package, stdlib), scheduling,
// nondeterminism taint, and parameter-forwarding sites.
func extract(pass *analysis.Pass, obj *types.Func, fd *ast.FuncDecl, r *Result) *extraction {
	ex := &extraction{
		sum:       newSummary(),
		fnParams:  map[*types.Var]int{},
		schedArgs: map[*types.Var]bool{},
	}
	info := pass.TypesInfo

	// Function-typed parameters, candidates for schedule forwarding.
	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if _, isFunc := p.Type().Underlying().(*types.Signature); isFunc {
				ex.fnParams[p] = i
			}
		}
	}

	// Locals declared in this function (value writes to them are invisible
	// to callers).
	locals := map[types.Object]bool{}
	//lint:allow simdeterminism set insertion keyed by object identity is commutative; Defs order never reaches a summary
	for id, o := range info.Defs {
		if v, ok := o.(*types.Var); ok && id.Pos() >= fd.Pos() && id.End() <= fd.End() {
			locals[v] = true
		}
	}

	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	writes := map[ast.Expr]writeKind{}
	seenLocal := map[*types.Func]bool{}

	// markWrite peels index/star/paren wrappers off an lvalue and records
	// the root selector (if any) as written; non-selector roots that reach
	// outside the function mark WritesNonLocal.
	markWrite := func(e ast.Expr, kind writeKind) {
		deref := false
		indexed := false
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				indexed = true
				e = x.X
			case *ast.SliceExpr:
				indexed = true
				e = x.X
			case *ast.StarExpr:
				deref = true
				e = x.X
			default:
				goto done
			}
		}
	done:
		switch x := e.(type) {
		case *ast.SelectorExpr:
			writes[x] = kind
		case *ast.Ident:
			o := info.Uses[x]
			if o == nil {
				o = info.Defs[x]
			}
			if o == nil || x.Name == "_" {
				return
			}
			if !locals[o] {
				ex.sum.WritesNonLocal = true
				return
			}
			// Writing through a deref or into the elements of a local that
			// aliases caller data (a pointer/slice/map parameter) is
			// caller-visible.
			if deref {
				ex.sum.WritesNonLocal = true
			} else if indexed {
				if v, ok := o.(*types.Var); ok && v.IsField() {
					ex.sum.WritesNonLocal = true
				} else if isParam(obj, o) {
					ex.sum.WritesNonLocal = true
				}
			}
		default:
			// Composite expressions (call results etc.): conservatively
			// caller-visible.
			ex.sum.WritesNonLocal = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch x := n.(type) {
		case *ast.AssignStmt:
			kind := wkWrite
			if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
				kind = wkReadWrite // op-assign reads then writes
			}
			if x.Tok != token.DEFINE {
				for _, lhs := range x.Lhs {
					markWrite(lhs, kind)
				}
			}
		case *ast.IncDecStmt:
			markWrite(x.X, wkReadWrite)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWrite(x.X, wkReadWrite)
			}
		case *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt:
			// Concurrency: effects and ordering invisible to the summary.
			ex.sum.Unknown = true
		case *ast.CallExpr:
			extractCall(pass, ex, x, seenLocal, r)
		case *ast.SelectorExpr:
			classifySelector(pass, ex, x, parents, writes)
		case *ast.Ident:
			extractFuncValueRef(pass, ex, x, parents, seenLocal, r)
		}
		return true
	})
	return ex
}

// isParam reports whether o is one of fn's parameters (including the
// receiver).
func isParam(fn *types.Func, o types.Object) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == o {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == o {
			return true
		}
	}
	return false
}

// classifySelector records the effect of one field selection: write (from
// the precomputed lvalue map), covering read, or nothing for pure
// navigation (x.f.g and x.f.m() record the deeper access, not f — except
// for snapshot-shaped methods, which deep-copy the field they are called
// on and therefore count as covering it).
func classifySelector(pass *analysis.Pass, ex *extraction, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node, writes map[ast.Expr]writeKind) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fk, ok := fieldKeyOf(selection)
	if !ok {
		return
	}
	if kind, isWrite := writes[sel]; isWrite {
		ex.sum.Writes[fk] = true
		if kind == wkReadWrite {
			ex.sum.Reads[fk] = true
		}
		return
	}
	// Navigation check: this selector is the operand of a deeper selection.
	if p, ok := parents[sel].(*ast.SelectorExpr); ok && p.X == sel {
		if psel, ok := pass.TypesInfo.Selections[p]; ok {
			if psel.Kind() == types.MethodVal && snapMethodNames[p.Sel.Name] {
				// x.f.Clone() / x.f.restore(...) — transfer method invoked
				// directly on the field: covers it.
				ex.sum.Reads[fk] = true
			}
			// Otherwise x.f.g or x.f.m(): the deeper access is recorded when
			// the walker reaches it; f itself is only a path segment.
			return
		}
	}
	ex.sum.Reads[fk] = true
}

// fieldKeyOf resolves a field selection to the named type that declares
// the selected field, walking the embedding path.
func fieldKeyOf(selection *types.Selection) (FieldKey, bool) {
	t := selection.Recv()
	index := selection.Index()
	var owner *types.Named
	var field *types.Var
	for _, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return FieldKey{}, false
		}
		owner, field = named, st.Field(i)
		t = field.Type()
	}
	if owner == nil || field == nil || owner.Obj().Pkg() == nil {
		return FieldKey{}, false
	}
	return FieldKey{
		Pkg:   owner.Obj().Pkg().Path(),
		Type:  owner.Obj().Name(),
		Field: field.Name(),
	}, true
}

// extractCall records the effects of one call expression: engine
// scheduling, stdlib nondeterminism, local and cross-package edges, and
// parameter forwarding.
func extractCall(pass *analysis.Pass, ex *extraction, call *ast.CallExpr, seenLocal map[*types.Func]bool, r *Result) {
	info := pass.TypesInfo

	if _, ok := EngineSchedCall(info, call); ok {
		ex.sum.Schedules = true
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if _, isFnParam := ex.fnParams[v]; isFnParam {
						ex.schedArgs[v] = true
					}
				}
			}
		}
		return
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Conversion, builtin, or dynamic call.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch o := info.Uses[fun].(type) {
			case *types.Builtin:
				return // append/len/copy/... have no hidden effects
			case *types.TypeName:
				return // conversion
			case *types.Var:
				_ = o
				ex.sum.Unknown = true // calling a function value
				return
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
				ex.sum.Unknown = true // calling a func-typed field
				return
			}
			if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
				return // qualified conversion
			}
		case *ast.ArrayType, *ast.MapType, *ast.FuncType, *ast.InterfaceType, *ast.StarExpr:
			return // conversion
		case *ast.FuncLit:
			return // immediately-invoked literal: body walked inline
		}
		ex.sum.Unknown = true
		return
	}

	pkg := callee.Pkg()
	if pkg == nil {
		ex.sum.Unknown = true // error.Error and friends
		return
	}

	if pkg.Path() == pass.Pkg.Path() {
		if decl, ok := r.Decls[callee.Origin()]; ok && decl != nil {
			if !seenLocal[callee.Origin()] {
				seenLocal[callee.Origin()] = true
				ex.local = append(ex.local, callee.Origin())
			}
			ex.sum.Calls[Key(callee)] = true
			recordForwarding(info, ex, call, callee)
			return
		}
		// Same-package method without body here (interface method on a
		// local interface type, or generated): unknown.
		ex.sum.Unknown = true
		return
	}

	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			ex.sum.Unknown = true // dynamic dispatch
			return
		}
	}

	key := Key(callee)
	if _, known := r.Funcs[key]; known {
		// Module dependency with an imported fact.
		ex.sum.Calls[key] = true
		recordForwarding(info, ex, call, callee)
		return
	}

	// Standard library (or module package whose facts are absent).
	classifyStdlibCall(ex, callee, pkg.Path())
}

// recordForwarding notes function-typed parameters passed into a callee
// whose own SchedParams may make this a scheduling site.
func recordForwarding(info *types.Info, ex *extraction, call *ast.CallExpr, callee *types.Func) {
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			continue
		}
		if _, isFnParam := ex.fnParams[v]; isFnParam {
			ex.fwdArgs = append(ex.fwdArgs, fwdArg{callee: callee.Origin(), index: i, param: v})
		}
	}
}

// classifyStdlibCall folds a standard-library call into the summary:
// nondeterminism taint for clocks and the global rand stream, purity for a
// small whitelist, Unknown otherwise.
func classifyStdlibCall(ex *extraction, callee *types.Func, pkgPath string) {
	name := callee.Name()
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		// Stdlib method call (strings.Builder.WriteString, rand.Rand.Intn on
		// a seeded source, ...): receiver mutation is invisible here.
		// rand.Rand methods on explicitly-seeded sources are deterministic,
		// which is exactly why only package-level rand functions taint.
		ex.sum.Unknown = true
		return
	}
	if m, ok := nondetCalls[pkgPath]; ok {
		if label, ok := m[name]; ok {
			addNondet(ex.sum, label)
			return
		}
	}
	if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
		if !randConstructors[name] {
			addNondet(ex.sum, pkgPath+"."+name)
		}
		return
	}
	if pureStdlibPkgs[pkgPath] {
		return
	}
	if pkgPath == "fmt" && pureFmtFuncs[name] {
		return
	}
	if pkgPath == "sort" || pkgPath == "slices" || pkgPath == "maps" {
		// Deterministic argument manipulation (sort.Slice mutates its
		// argument, which the call site's own analysis sees; the functions
		// themselves introduce no hidden state). maps.Keys iteration order
		// is the *caller's* range concern, not a call effect.
		return
	}
	ex.sum.Unknown = true
}

// calleeFunc resolves a call's static callee, nil for dynamic calls and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// extractFuncValueRef records module functions referenced as values (not
// in call position): they may run later, so reachability must include
// them. This is the function-value / method-value edge of the call graph.
func extractFuncValueRef(pass *analysis.Pass, ex *extraction, id *ast.Ident, parents map[ast.Node]ast.Node, seenLocal map[*types.Func]bool, r *Result) {
	f, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	// Skip idents that are the callee of a direct call (handled by
	// extractCall) or the Sel of a selector (the selector path handles it).
	switch p := parents[id].(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == ast.Expr(id) {
			return
		}
	case *ast.SelectorExpr:
		if p.Sel == id {
			// Method value or qualified ref: check the selector's parent.
			if call, ok := parents[p].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Expr(p) {
				return
			}
		} else {
			return // id is the X of the selector: a package name or value
		}
	}
	pkg := f.Pkg()
	if pkg == nil {
		return
	}
	if pkg.Path() == pass.Pkg.Path() {
		if _, ok := r.Decls[f.Origin()]; ok {
			if !seenLocal[f.Origin()] {
				seenLocal[f.Origin()] = true
				ex.local = append(ex.local, f.Origin())
			}
			ex.sum.Calls[Key(f)] = true
		}
		return
	}
	if _, known := r.Funcs[Key(f)]; known {
		ex.sum.Calls[Key(f)] = true
	}
	// Stdlib function values (sort.Strings passed around): ignore; if
	// called dynamically the call site reports Unknown.
}
