// Package top exercises the summary lattice: a mutually recursive pair
// (one SCC), cross-package effect composition through dep's fact, field
// read/write classification, and purity.
package top

import "awgsim/internal/lint/interproc/testdata/src/ip/dep"

// State carries local fields for read/write classification.
type State struct {
	hits  int
	label string
	inner nested
}

type nested struct{ gen uint64 }

// Even and Odd form one strongly connected component; Odd's taint (via
// dep.Stamp) must surface in Even's summary too.
func Even(s *State, c *dep.Counter, n int) {
	if n == 0 {
		return
	}
	s.hits++
	Odd(s, c, n-1)
}

// Odd calls into dep, picking up its writes and nondeterminism.
func Odd(s *State, c *dep.Counter, n int) {
	dep.Stamp(c)
	dep.Bump(c)
	s.inner.gen++
	Even(s, c, n-1)
}

// ReadLabel reads State.label as a value without writing anything local.
func ReadLabel(s *State) string { return s.label }

// Twice is pure: only a pure dep call and locals.
func Twice(x int) int { return dep.Pure(x) + dep.Pure(x) }
