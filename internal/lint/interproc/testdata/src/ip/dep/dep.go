// Package dep is the dependency layer of the interproc framework test:
// its summaries reach the importing package only through the exported
// package fact.
package dep

import "time"

// Counter is mutated by the importing package through helpers here.
type Counter struct {
	N    int
	last int64
}

// Bump writes Counter.N.
func Bump(c *Counter) { c.N++ }

// Stamp is nondeterministic: it reads the wall clock.
func Stamp(c *Counter) { c.last = time.Now().UnixNano() }

// Pure has no effects at all.
func Pure(x int) int { return x * 2 }
