// Package interproc is the interprocedural core of the awglint framework:
// a package-set call graph (including function-value and method-value
// edges), per-function effect summaries computed bottom-up over strongly
// connected components, and a package-fact export so analyzers compose
// across the module's package DAG through the offline loader.
//
// The per-function Summary records the effects the domain analyzers need:
//
//   - struct fields read as values and fields written (keyed by declaring
//     type, so effects compose through embedding, nesting, and helper
//     calls) — snapcover and fpcover consume these;
//   - engine-schedule effects (calls to event.Engine's At/After/AtTask/
//     AfterTask/AtWithSeq/NewTask) and which function-typed parameters are
//     forwarded into such calls — hotpathalloc consumes these;
//   - nondeterminism taint (wall-clock reads, global math/rand) and a
//     conservative purity verdict — simdeterminism consumes these;
//   - the transitive set of module functions called, including functions
//     merely referenced as values (they may run later) — hotpathmap's
//     reachability and replaypure's traversal consume these.
//
// Within one package, summaries are computed by collapsing Tarjan SCCs of
// the package-local call graph and iterating each component to a fixpoint
// in reverse topological order. Across packages, each analyzed package
// exports its composed summaries as a package fact; importers merge the
// facts of their dependencies, so effects flow bottom-up through the
// package DAG in the dependency-first order the driver visits packages.
package interproc

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"awgsim/internal/lint/analysis"
)

// FieldKey identifies one struct field by the package path and name of the
// named type that declares it. Keying by declaring type (not access path)
// is what lets effects compose: a helper mutating condStore.ents reports
// the same key whether it is called on s.store or on a local copy.
type FieldKey struct {
	Pkg   string
	Type  string
	Field string
}

func (k FieldKey) String() string { return k.Pkg + "." + k.Type + "." + k.Field }

// FuncKey canonically identifies a declared function or method across
// packages: "pkg.Func" or "pkg.(Type).Method" (pointer receivers collapse
// onto the value type; generic instances collapse onto their origin).
type FuncKey string

// Summary is the composed effect summary of one function: its own direct
// effects plus those of everything it (transitively) calls.
type Summary struct {
	// Reads holds fields read as values (copied, compared, passed, sliced,
	// appended from, or handed to a Clone/CopyFrom/Snapshot/Restore-shaped
	// method). Pure navigation (x.f.g, x.f.m()) records the inner access,
	// not f itself — so a snapshot that copies a nested slab field-by-field
	// is credited with exactly the fields it touches.
	Reads map[FieldKey]bool
	// Writes holds fields assigned, element-assigned, or address-taken.
	Writes map[FieldKey]bool
	// Calls is the transitive set of module functions reachable from this
	// one, including functions referenced as values.
	Calls map[FuncKey]bool
	// Schedules reports that the function (transitively) places work on the
	// event engine.
	Schedules bool
	// SchedParams lists the indices of function-typed parameters that are
	// (transitively) forwarded into an engine-schedule call.
	SchedParams []int
	// Nondet lists nondeterminism sources reached (transitively):
	// "time.Now", "math/rand.Intn", ... with provenance through helpers.
	Nondet []string
	// WritesNonLocal reports writes through pointers, slices, maps, or
	// package-level variables that the field tracking above cannot name.
	WritesNonLocal bool
	// Unknown reports a call whose effects the framework cannot see: a
	// dynamic function value, an interface method, or unlisted standard
	// library code.
	Unknown bool
}

// Pure reports whether calling this function cannot leak iteration order or
// nondeterminism: no writes beyond locals, no scheduling, no taint, and no
// calls to code the framework cannot see.
func (s *Summary) Pure() bool {
	return s != nil && len(s.Writes) == 0 && !s.WritesNonLocal &&
		!s.Schedules && len(s.Nondet) == 0 && !s.Unknown
}

// Fact is the package fact ipsummary exports: the composed summaries of
// every function the package declares.
type Fact struct {
	Funcs map[FuncKey]*Summary
}

// Result is ipsummary's per-package return value, consumed by dependent
// analyzers through Pass.ResultOf.
type Result struct {
	// Order lists the package's declared functions in file order (the
	// deterministic iteration order for reporting).
	Order []*types.Func
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Keys maps each declared function to its canonical key.
	Keys map[*types.Func]FuncKey
	// Funcs holds the composed summaries of this package's functions and
	// of every module function imported (directly or transitively) from
	// dependency packages' facts.
	Funcs map[FuncKey]*Summary
	// CtorWrites holds fields written only from constructor-shaped
	// functions (New*/new*/init*/Init*/Attach/validate*): construction
	// wiring, not runtime mutation.
	CtorWrites map[FieldKey]bool
	// MutWrites holds fields written from non-constructor functions in
	// this package, mapped to the (sorted) keys of the writers.
	MutWrites map[FieldKey][]FuncKey
}

// SummaryOf returns the composed summary for a declared or imported module
// function, nil when the framework has none.
func (r *Result) SummaryOf(obj *types.Func) *Summary {
	if obj == nil {
		return nil
	}
	return r.Funcs[Key(obj)]
}

// Reachable floods the package-local call graph from the declared
// functions satisfying root, following the transitive Calls sets.
func (r *Result) Reachable(root func(*types.Func, *ast.FuncDecl) bool) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	byKey := map[FuncKey]*types.Func{}
	for _, obj := range r.Order {
		byKey[r.Keys[obj]] = obj
	}
	for _, obj := range r.Order {
		if !root(obj, r.Decls[obj]) {
			continue
		}
		reach[obj] = true
		if s := r.Funcs[r.Keys[obj]]; s != nil {
			for k := range s.Calls {
				if callee, ok := byKey[k]; ok {
					reach[callee] = true
				}
			}
		}
	}
	return reach
}

// Analyzer computes the interprocedural summaries. It reports nothing
// itself; domain analyzers depend on it via Requires and read its Result.
var Analyzer = &analysis.Analyzer{
	Name:      "ipsummary",
	Doc:       "compute interprocedural per-function effect summaries (framework helper, no diagnostics)",
	FactBased: true,
	Run:       run,
}

// SchedMethods are the event.Engine methods that place work on the
// calendar (NewTask included: its TaskFunc runs as events).
var SchedMethods = map[string]bool{
	"At": true, "After": true, "AtTask": true, "AfterTask": true,
	"AtWithSeq": true, "NewTask": true,
}

// EngineSchedCall reports whether call invokes a scheduling method on
// *event.Engine (matched by type name and package suffix, so testdata
// stand-ins work) and returns the method name.
func EngineSchedCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !SchedMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return "", false
	}
	if pkg := named.Obj().Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "event") {
		return "", false
	}
	return sel.Sel.Name, true
}

// PureCall reports whether a call's static callee is known to be
// side-effect-free and deterministic: a module function whose composed
// summary is pure, or a whitelisted standard-library function. Dynamic
// calls and unknown callees are impure.
func (r *Result) PureCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	if s, ok := r.Funcs[Key(f)]; ok {
		return s.Pure()
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false // methods may mutate their receiver invisibly
	}
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	if pureStdlibPkgs[pkg.Path()] {
		return true
	}
	return pkg.Path() == "fmt" && pureFmtFuncs[f.Name()]
}

// FieldOf resolves a field selection to the FieldKey of the named type
// declaring the selected field (walking the embedding path), false when the
// declaring struct is unnamed.
func FieldOf(selection *types.Selection) (FieldKey, bool) {
	return fieldKeyOf(selection)
}

// SnapshotPair returns a named type's snapshot/restore transfer methods
// (exported or unexported spelling), nil when absent.
func SnapshotPair(named *types.Named) (snap, rest *types.Func) {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		switch m.Name() {
		case "Snapshot", "snapshot":
			snap = m
		case "Restore", "restore":
			rest = m
		}
	}
	return snap, rest
}

// Key returns the canonical cross-package key for a function or method.
func Key(obj *types.Func) FuncKey {
	obj = obj.Origin()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return FuncKey(pkg + ".(" + named.Obj().Name() + ")." + obj.Name())
		}
	}
	return FuncKey(pkg + "." + obj.Name())
}

// nondetCalls maps stdlib package path -> function name -> taint label.
var nondetCalls = map[string]map[string]string{
	"time": {"Now": "time.Now", "Since": "time.Since", "Until": "time.Until"},
}

// randConstructors build explicit seeded generators; every other
// math/rand package-level function draws from the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// pureStdlibPkgs are standard-library packages whose package-level
// functions neither mutate arguments nor observe ambient state; calls into
// them do not poison a summary's purity.
var pureStdlibPkgs = map[string]bool{
	"strings": true, "strconv": true, "unicode": true, "unicode/utf8": true,
	"math": true, "math/bits": true, "errors": true,
}

// pureFmtFuncs are the value-returning fmt functions (the printing ones
// write to process streams, which is an ordering-visible effect).
var pureFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// snapMethodNames are method names that, called directly on a struct field
// (x.f.Clone()), deep-copy or overwrite the field's state and therefore
// count as covering reads of that field.
var snapMethodNames = map[string]bool{
	"Snapshot": true, "snapshot": true, "Restore": true, "restore": true,
	"Clone": true, "CopyFrom": true,
}

// ctorName reports whether writes inside a function of this name are
// construction wiring rather than runtime mutation.
func ctorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "init") || strings.HasPrefix(name, "Init") ||
		strings.HasPrefix(name, "validate") || name == "Attach"
}

func run(pass *analysis.Pass) (any, error) {
	r := &Result{
		Decls:      map[*types.Func]*ast.FuncDecl{},
		Keys:       map[*types.Func]FuncKey{},
		Funcs:      map[FuncKey]*Summary{},
		CtorWrites: map[FieldKey]bool{},
		MutWrites:  map[FieldKey][]FuncKey{},
	}

	// Merge dependency facts: effects of module functions below us in the
	// DAG. The driver has already run ipsummary over them.
	for _, imp := range pass.Pkg.Imports() {
		if f, ok := pass.PackageFact(imp.Path()); ok {
			if fact, ok := f.(*Fact); ok {
				for k, s := range fact.Funcs {
					r.Funcs[k] = s
				}
			}
		}
	}

	// Collect the package's declared functions in file order.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r.Order = append(r.Order, obj)
			r.Decls[obj] = fd
			r.Keys[obj] = Key(obj)
		}
	}

	// Extract each function's direct effects and local call edges.
	direct := map[*types.Func]*extraction{}
	for _, obj := range r.Order {
		direct[obj] = extract(pass, obj, r.Decls[obj], r)
	}

	// Tarjan SCCs over the package-local call graph, emitted in reverse
	// topological order (callees before callers), then one summary per
	// component with an in-component fixpoint for the forwarding bits.
	sccs := tarjan(r.Order, func(f *types.Func) []*types.Func { return direct[f].local })
	for _, scc := range sccs {
		inSCC := map[*types.Func]bool{}
		for _, f := range scc {
			inSCC[f] = true
		}
		// Collapse: all members share the union of direct effects plus the
		// already-final summaries of out-of-component callees.
		u := newSummary()
		for _, f := range scc {
			mergeExtraction(u, direct[f], r)
			for _, callee := range direct[f].local {
				if !inSCC[callee] {
					mergeSummary(u, r.Funcs[r.Keys[callee]], "")
				}
			}
		}
		for _, f := range scc {
			s := cloneSummary(u)
			// SchedParams are per-function: a parameter index means nothing
			// across different members, so compute them per member against
			// the component's shared Schedules/Calls knowledge.
			s.SchedParams = schedParams(pass, direct[f], r, inSCC, u)
			r.Funcs[r.Keys[f]] = s
		}
		// In-component forwarding fixpoint: a member may forward its param
		// into another member's forwarding param.
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				s := r.Funcs[r.Keys[f]]
				np := schedParams(pass, direct[f], r, nil, nil)
				if len(np) != len(s.SchedParams) {
					s.SchedParams = np
					changed = true
				}
			}
		}
	}

	// Mutation index: which fields does this package write, and from where.
	for _, obj := range r.Order {
		ex := direct[obj]
		isCtor := ctorName(obj.Name())
		for fk := range ex.sum.Writes {
			if isCtor {
				r.CtorWrites[fk] = true
			} else {
				r.MutWrites[fk] = append(r.MutWrites[fk], r.Keys[obj])
			}
		}
	}
	for _, fk := range sortedFieldKeys(r.MutWrites) {
		ws := r.MutWrites[fk]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	}

	// Export this package's composed summaries for importers.
	fact := &Fact{Funcs: map[FuncKey]*Summary{}}
	for _, obj := range r.Order {
		fact.Funcs[r.Keys[obj]] = r.Funcs[r.Keys[obj]]
	}
	pass.ExportFact(fact)
	return r, nil
}

// extraction is one function's direct effects plus its outgoing edges.
type extraction struct {
	sum      *Summary      // direct effects only
	local    []*types.Func // same-package callees (deduped, file order)
	fnParams map[*types.Var]int
	// schedArgs are parameter objects passed directly to an engine-schedule
	// call; fwdArgs are (callee, argIndex, param) triples passed to another
	// function's parameter.
	schedArgs map[*types.Var]bool
	fwdArgs   []fwdArg
}

type fwdArg struct {
	callee *types.Func
	index  int
	param  *types.Var
}

func newSummary() *Summary {
	return &Summary{
		Reads:  map[FieldKey]bool{},
		Writes: map[FieldKey]bool{},
		Calls:  map[FuncKey]bool{},
	}
}

func cloneSummary(s *Summary) *Summary {
	c := newSummary()
	mergeSummary(c, s, "")
	return c
}

// mergeSummary folds src into dst; via, when non-empty, annotates taint
// provenance ("time.Now (via render)").
func mergeSummary(dst, src *Summary, via string) {
	if src == nil {
		dst.Unknown = true
		return
	}
	for k := range src.Reads {
		dst.Reads[k] = true
	}
	for k := range src.Writes {
		dst.Writes[k] = true
	}
	for k := range src.Calls {
		dst.Calls[k] = true
	}
	dst.Schedules = dst.Schedules || src.Schedules
	dst.WritesNonLocal = dst.WritesNonLocal || src.WritesNonLocal
	dst.Unknown = dst.Unknown || src.Unknown
	for _, n := range src.Nondet {
		if via != "" && !strings.Contains(n, " (via ") {
			n = n + " (via " + via + ")"
		}
		addNondet(dst, n)
	}
}

func addNondet(s *Summary, cause string) {
	for _, n := range s.Nondet {
		if n == cause {
			return
		}
	}
	s.Nondet = append(s.Nondet, cause)
	sort.Strings(s.Nondet)
}

// sortedFieldKeys returns m's keys in deterministic order.
func sortedFieldKeys[V any](m map[FieldKey]V) []FieldKey {
	keys := make([]FieldKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Field < b.Field
	})
	return keys
}

// mergeExtraction folds a member's direct effects into the component
// summary, resolving external (cross-package) callees through r.Funcs.
func mergeExtraction(dst *Summary, ex *extraction, r *Result) {
	mergeSummary(dst, ex.sum, "")
	calls := make([]FuncKey, 0, len(ex.sum.Calls))
	for k := range ex.sum.Calls {
		calls = append(calls, k)
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i] < calls[j] })
	for _, k := range calls {
		if s, ok := r.Funcs[k]; ok {
			name := string(k)
			if i := strings.LastIndexByte(name, '.'); i >= 0 {
				name = name[i+1:]
			}
			mergeSummary(dst, s, name)
		}
	}
}

// schedParams computes which function-typed parameters of ex's function are
// forwarded into engine scheduling, using current summaries for callees.
func schedParams(pass *analysis.Pass, ex *extraction, r *Result, _ map[*types.Func]bool, _ *Summary) []int {
	idx := map[int]bool{}
	for p := range ex.schedArgs {
		idx[ex.fnParams[p]] = true
	}
	for _, fa := range ex.fwdArgs {
		s := r.Funcs[Key(fa.callee)]
		if s == nil {
			continue
		}
		for _, j := range s.SchedParams {
			if j == fa.index {
				idx[ex.fnParams[fa.param]] = true
			}
		}
	}
	out := make([]int, 0, len(idx))
	for i := range idx {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// tarjan returns the strongly connected components of the call graph in
// reverse topological order (every edge leaves a later component).
func tarjan(nodes []*types.Func, succ func(*types.Func) []*types.Func) [][]*types.Func {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 1

	var strong func(v *types.Func)
	strong = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ(v) {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strong(v)
		}
	}
	return sccs
}
