package interproc_test

import (
	"testing"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/interproc"
	"awgsim/internal/lint/load"
)

// runOver mirrors the driver: ipsummary over the dependency graph in
// dependency-first order with a shared fact store, returning the Result of
// the named root package.
func runOver(t *testing.T, wantPkg string) *interproc.Result {
	t.Helper()
	_, graph, err := load.LoadGraph("",
		"./testdata/src/ip/dep", "./testdata/src/ip/top")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	facts := map[string]any{}
	var out *interproc.Result
	for _, p := range graph {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", p.PkgPath, p.TypeErrors[0])
		}
		pass := &analysis.Pass{
			Analyzer:  interproc.Analyzer,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Report:    func(analysis.Diagnostic) {},
			ImportPackageFact: func(pkgPath string) (any, bool) {
				f, ok := facts[pkgPath]
				return f, ok
			},
		}
		pkgPath := p.PkgPath
		pass.ExportPackageFact = func(fact any) { facts[pkgPath] = fact }
		v, err := interproc.Analyzer.Run(pass)
		if err != nil {
			t.Fatalf("%s: %v", p.PkgPath, err)
		}
		if p.PkgPath == wantPkg {
			out = v.(*interproc.Result)
		}
	}
	if out == nil {
		t.Fatalf("package %s not analyzed", wantPkg)
	}
	return out
}

const (
	depPath = "awgsim/internal/lint/interproc/testdata/src/ip/dep"
	topPath = "awgsim/internal/lint/interproc/testdata/src/ip/top"
)

func summary(t *testing.T, r *interproc.Result, key string) *interproc.Summary {
	t.Helper()
	s, ok := r.Funcs[interproc.FuncKey(key)]
	if !ok {
		t.Fatalf("no summary for %s", key)
	}
	return s
}

func TestSCCAndCrossPackageComposition(t *testing.T) {
	r := runOver(t, topPath)

	// Even and Odd form one SCC: both carry Odd's cross-package effects.
	for _, fn := range []string{topPath + ".Even", topPath + ".Odd"} {
		s := summary(t, r, fn)
		if !s.Writes[interproc.FieldKey{Pkg: depPath, Type: "Counter", Field: "N"}] {
			t.Errorf("%s: missing Counter.N write through dep.Bump", fn)
		}
		if !s.Writes[interproc.FieldKey{Pkg: depPath, Type: "Counter", Field: "last"}] {
			t.Errorf("%s: missing Counter.last write through dep.Stamp", fn)
		}
		if !s.Writes[interproc.FieldKey{Pkg: topPath, Type: "State", Field: "hits"}] {
			t.Errorf("%s: missing State.hits write from SCC partner", fn)
		}
		if !s.Writes[interproc.FieldKey{Pkg: topPath, Type: "nested", Field: "gen"}] {
			t.Errorf("%s: missing nested.gen write (declaring-type keying)", fn)
		}
		if len(s.Nondet) == 0 {
			t.Errorf("%s: missing time.Now taint through dep.Stamp, summary %+v", fn, s)
		}
		if !s.Calls[interproc.FuncKey(depPath+".Stamp")] {
			t.Errorf("%s: transitive Calls missing dep.Stamp", fn)
		}
	}
}

func TestPurityAndReads(t *testing.T) {
	r := runOver(t, topPath)

	if s := summary(t, r, topPath+".Twice"); !s.Pure() {
		t.Errorf("Twice should be pure, got %+v", s)
	}
	if s := summary(t, r, topPath+".Even"); s.Pure() {
		t.Errorf("Even must not be pure")
	}
	s := summary(t, r, topPath+".ReadLabel")
	if !s.Reads[interproc.FieldKey{Pkg: topPath, Type: "State", Field: "label"}] {
		t.Errorf("ReadLabel: missing State.label read, got %+v", s)
	}
	if len(s.Writes) != 0 || s.WritesNonLocal {
		t.Errorf("ReadLabel must not write, got %+v", s)
	}
}

func TestDepFactStandsAlone(t *testing.T) {
	r := runOver(t, depPath)
	s := summary(t, r, depPath+".Stamp")
	if len(s.Nondet) == 0 {
		t.Errorf("Stamp: expected time.Now taint, got %+v", s)
	}
	if s := summary(t, r, depPath+".Pure"); !s.Pure() {
		t.Errorf("dep.Pure should be pure, got %+v", s)
	}
}
