// Package dirs exercises //lint:allow directive handling at the checker
// layer: trailing and line-above suppression, unknown analyzer names, and
// missing reasons.
package dirs

import "time"

var a = time.Now() //lint:allow simdeterminism sanctioned wall clock, suppressed on the same line

//lint:allow simdeterminism suppression also covers the next line
var b = time.Now()

var c = time.Now() //lint:allow nosuchanalyzer a typo must not silently suppress

var d = time.Now() //lint:allow simdeterminism

var e = time.Now()

//lint:allow simdeterminism covers the whole multi-line initializer below
var f = []int64{
	time.Now().UnixNano(),
	time.Now().UnixNano(),
}

//lint:allow simdeterminism one blank line breaks adjacency

var g = time.Now()
