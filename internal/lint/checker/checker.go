// Package checker is the multichecker driver behind cmd/awglint: it loads
// packages, applies every registered analyzer, honors `//lint:allow`
// suppression directives, renders diagnostics deterministically, and can
// apply suggested fixes in place.
package checker

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/load"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Diag     analysis.Diagnostic
	Fset     *token.FileSet
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// directive is one parsed `//lint:allow <analyzer> <reason>` comment. It
// suppresses diagnostics of the named analyzer on its own line and on the
// line that follows (covering both trailing-comment and
// comment-above-statement placement).
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// Run loads patterns (from dir, module root when empty), applies the
// analyzers to every module package matched, and returns the surviving
// findings in deterministic order. When fix is set, suggested fixes of
// surviving findings are applied to the source files before returning.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, fix bool) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		known[a.Name] = a
	}

	var findings []Finding
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors[0])
		}
		directives, bad := parseDirectives(p, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			var diags []analysis.Diagnostic
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %v", p.PkgPath, a.Name, err)
			}
			for _, d := range diags {
				pos := p.Fset.Position(d.Pos)
				if suppressed(directives, a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{
					Position: pos,
					Analyzer: a.Name,
					Message:  d.Message,
					Diag:     d,
					Fset:     p.Fset,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if fix {
		if err := applyFixes(findings); err != nil {
			return findings, err
		}
	}
	return findings, nil
}

// parseDirectives extracts //lint:allow directives from a package's
// comments. Malformed directives (missing reason) and directives naming an
// analyzer the driver does not know are themselves reported as findings, so
// a typo cannot silently suppress nothing.
func parseDirectives(p *load.Package, known map[string]*analysis.Analyzer) ([]directive, []Finding) {
	var ds []directive
	var bad []Finding
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{Position: pos, Analyzer: "lintdirective",
						Message: "//lint:allow directive missing analyzer name"})
					continue
				}
				if _, ok := known[fields[0]]; !ok {
					bad = append(bad, Finding{Position: pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(names, ", "))})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Position: pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("//lint:allow %s needs a reason", fields[0])})
					continue
				}
				ds = append(ds, directive{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return ds, bad
}

// suppressed reports whether a directive covers a diagnostic of analyzer at
// pos: same file, named analyzer, and the diagnostic sits on the
// directive's line (trailing comment) or the next one (comment above).
func suppressed(ds []directive, analyzer string, pos token.Position) bool {
	for _, d := range ds {
		if d.analyzer == analyzer && d.file == pos.Filename &&
			(pos.Line == d.line || pos.Line == d.line+1) {
			return true
		}
	}
	return false
}

// applyFixes applies the first suggested fix of every finding that has one,
// rewriting files bottom-up so earlier edits don't shift later offsets.
func applyFixes(findings []Finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.Diag.SuggestedFixes[0].TextEdits {
			start := f.Fset.Position(te.Pos)
			end := start
			if te.End.IsValid() {
				end = f.Fset.Position(te.End)
			}
			if start.Filename == "" || end.Filename != start.Filename {
				return fmt.Errorf("fix for %s has invalid edit range", f)
			}
			byFile[start.Filename] = append(byFile[start.Filename],
				edit{start.Offset, end.Offset, te.NewText})
		}
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := byFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev || e.start > e.end || e.end > len(src) {
				return fmt.Errorf("%s: overlapping or out-of-range suggested fixes", file)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Main is the cmd/awglint entry point: parses -fix and package patterns,
// prints findings to stderr, and exits non-zero when any survive.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(MainInto(os.Stderr, os.Args[1:], analyzers...))
}

// MainInto is Main with injectable output and arguments, for testing.
func MainInto(w io.Writer, args []string, analyzers ...*analysis.Analyzer) int {
	fix := false
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-fix" || a == "--fix":
			fix = true
		case a == "-h" || a == "--help":
			fmt.Fprintln(w, "usage: awglint [-fix] [packages]")
			fmt.Fprintln(w, "analyzers:")
			for _, an := range analyzers {
				doc, _, _ := strings.Cut(an.Doc, "\n")
				fmt.Fprintf(w, "  %-16s %s\n", an.Name, doc)
			}
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(w, "awglint: unknown flag %s\n", a)
			return 2
		default:
			patterns = append(patterns, a)
		}
	}
	findings, err := Run("", patterns, analyzers, fix)
	if err != nil {
		fmt.Fprintf(w, "awglint: %v\n", err)
		return 2
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Position
		if wd != "" {
			if rel, ok := strings.CutPrefix(pos.Filename, wd+string(os.PathSeparator)); ok {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(w, "%s: %s: %s\n", pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
