// Package checker is the multichecker driver behind cmd/awglint: it loads
// packages, applies every registered analyzer (running each analyzer's
// Requires closure first, with package facts flowing dependency-first
// across the module DAG), honors `//lint:allow` suppression directives,
// renders diagnostics deterministically, and can apply suggested fixes in
// place.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/load"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Package  string
	Position token.Position
	Analyzer string
	Message  string
	Diag     analysis.Diagnostic
	Fset     *token.FileSet
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// directive is one parsed `//lint:allow <analyzer> <reason>` comment. It
// suppresses diagnostics of the named analyzer on the lines [line, endLine]:
// its own line plus the full extent of the statement, field, or declaration
// that starts on its line or the next (so a directive above a multi-line
// call covers every line of that call, not just the first).
type directive struct {
	file     string
	line     int
	endLine  int
	analyzer string
	reason   string
	pos      token.Pos
}

// Run loads patterns (from dir, module root when empty), applies the
// analyzers to every module package matched, and returns the surviving
// findings in deterministic order. Each analyzer's transitive Requires run
// first; FactBased analyzers in the closure additionally run over every
// module package in the dependency graph (dependency-first) so their
// package facts exist before importers are analyzed. When fix is set,
// suggested fixes of surviving findings are applied to the source files
// before returning.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, fix bool) ([]Finding, error) {
	roots, graph, err := load.LoadGraph(dir, patterns...)
	if err != nil {
		return nil, err
	}

	closure := analyzerClosure(analyzers)
	known := map[string]*analysis.Analyzer{}
	for _, a := range closure {
		known[a.Name] = a
	}
	var factBased []*analysis.Analyzer
	for _, a := range closure {
		if a.FactBased {
			factBased = append(factBased, a)
		}
	}

	ex := &executor{
		results: map[passKey]passResult{},
		facts:   map[*analysis.Analyzer]map[string]any{},
	}

	// Dependency-first sweep: give every fact-based analyzer a chance to
	// export facts for each module package before its importers run.
	for _, p := range graph {
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors[0])
		}
		for _, a := range factBased {
			if _, err := ex.run(p, a); err != nil {
				return nil, err
			}
		}
	}

	var findings []Finding
	isRoot := map[*load.Package]bool{}
	for _, p := range roots {
		isRoot[p] = true
	}
	for _, p := range roots {
		if p.Standard {
			continue
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors[0])
		}
		directives, bad := parseDirectives(p, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			res, err := ex.run(p, a)
			if err != nil {
				return nil, err
			}
			for _, d := range res.diags {
				pos := p.Fset.Position(d.Pos)
				if suppressed(directives, a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{
					Package:  p.PkgPath,
					Position: pos,
					Analyzer: a.Name,
					Message:  d.Message,
					Diag:     d,
					Fset:     p.Fset,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if fix {
		if err := applyFixes(findings); err != nil {
			return findings, err
		}
	}
	return findings, nil
}

// analyzerClosure returns the analyzers plus their transitive Requires,
// dependencies first.
func analyzerClosure(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// executor memoizes per-(package, analyzer) runs and holds the shared
// in-memory fact store for the driver invocation.
type executor struct {
	results map[passKey]passResult
	facts   map[*analysis.Analyzer]map[string]any
}

type passKey struct {
	pkg *load.Package
	an  *analysis.Analyzer
}

type passResult struct {
	value any
	diags []analysis.Diagnostic
}

// run executes one analyzer on one package, running its Requires first and
// wiring their results and the analyzer's fact store into the pass.
func (ex *executor) run(p *load.Package, a *analysis.Analyzer) (passResult, error) {
	key := passKey{p, a}
	if res, ok := ex.results[key]; ok {
		return res, nil
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		res, err := ex.run(p, req)
		if err != nil {
			return passResult{}, err
		}
		resultOf[req] = res.value
	}
	if ex.facts[a] == nil {
		ex.facts[a] = map[string]any{}
	}
	factStore := ex.facts[a]
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		ResultOf:  resultOf,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportPackageFact: func(pkgPath string) (any, bool) {
			f, ok := factStore[pkgPath]
			return f, ok
		},
		ExportPackageFact: func(fact any) { factStore[p.PkgPath] = fact },
	}
	value, err := a.Run(pass)
	if err != nil {
		return passResult{}, fmt.Errorf("%s: analyzer %s: %v", p.PkgPath, a.Name, err)
	}
	res := passResult{value: value, diags: diags}
	ex.results[key] = res
	return res, nil
}

// parseDirectives extracts //lint:allow directives from a package's
// comments. Malformed directives (missing reason) and directives naming an
// analyzer the driver does not know are themselves reported as findings, so
// a typo cannot silently suppress nothing.
func parseDirectives(p *load.Package, known map[string]*analysis.Analyzer) ([]directive, []Finding) {
	var ds []directive
	var bad []Finding
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{Package: p.PkgPath, Position: pos, Analyzer: "lintdirective",
						Message: "//lint:allow directive missing analyzer name"})
					continue
				}
				if _, ok := known[fields[0]]; !ok {
					bad = append(bad, Finding{Package: p.PkgPath, Position: pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(names, ", "))})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Package: p.PkgPath, Position: pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("//lint:allow %s needs a reason", fields[0])})
					continue
				}
				ds = append(ds, directive{
					file:     pos.Filename,
					line:     pos.Line,
					endLine:  pos.Line + 1,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
		extendDirectives(p.Fset, f, ds)
	}
	return ds, bad
}

// extendDirectives widens each directive's coverage to the full extent of
// the outermost statement, struct field, or declaration that begins on the
// directive's line or the line below it. Without this, a directive above a
// multi-line call or composite literal would only cover the first line,
// while analyzers may report at a position further down inside it.
func extendDirectives(fset *token.FileSet, f *ast.File, ds []directive) {
	if len(ds) == 0 {
		return
	}
	fileName := fset.Position(f.Pos()).Filename
	type idx int
	starts := map[int][]idx{} // start line -> directives it may extend
	for i := range ds {
		if ds[i].file != fileName {
			continue
		}
		starts[ds[i].line] = append(starts[ds[i].line], idx(i))
		starts[ds[i].line+1] = append(starts[ds[i].line+1], idx(i))
	}
	if len(starts) == 0 {
		return
	}
	consider := func(n ast.Node) {
		startLine := fset.Position(n.Pos()).Line
		targets, ok := starts[startLine]
		if !ok {
			return
		}
		endLine := fset.Position(n.End()).Line
		for _, i := range targets {
			if endLine > ds[i].endLine {
				ds[i].endLine = endLine
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			consider(n)
		}
		return true
	})
}

// suppressed reports whether a directive covers a diagnostic of analyzer at
// pos: same file, named analyzer, and the diagnostic's line falls within
// the directive's extended extent.
func suppressed(ds []directive, analyzer string, pos token.Position) bool {
	for _, d := range ds {
		if d.analyzer == analyzer && d.file == pos.Filename &&
			pos.Line >= d.line && pos.Line <= d.endLine {
			return true
		}
	}
	return false
}

// applyFixes applies the first suggested fix of every finding that has one,
// rewriting files bottom-up so earlier edits don't shift later offsets.
func applyFixes(findings []Finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.Diag.SuggestedFixes[0].TextEdits {
			start := f.Fset.Position(te.Pos)
			end := start
			if te.End.IsValid() {
				end = f.Fset.Position(te.End)
			}
			if start.Filename == "" || end.Filename != start.Filename {
				return fmt.Errorf("fix for %s has invalid edit range", f)
			}
			byFile[start.Filename] = append(byFile[start.Filename],
				edit{start.Offset, end.Offset, te.NewText})
		}
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := byFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev || e.start > e.end || e.end > len(src) {
				return fmt.Errorf("%s: overlapping or out-of-range suggested fixes", file)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// baselineKey identifies a finding for baseline matching. Line numbers are
// deliberately excluded so unrelated edits above a known finding don't make
// it look new; the count per key catches genuine duplicates.
func baselineKey(f Finding, wd string) string {
	file := relTo(f.Position.Filename, wd)
	return f.Package + "|" + file + "|" + f.Analyzer + "|" + f.Message
}

func relTo(path, wd string) string {
	if wd == "" {
		return path
	}
	if rel, ok := strings.CutPrefix(path, wd+string(os.PathSeparator)); ok {
		return rel
	}
	return path
}

// baselineFile is the on-disk baseline format: finding keys to counts.
type baselineFile struct {
	Comment  string         `json:"comment,omitempty"`
	Findings map[string]int `json:"findings"`
}

// loadBaseline reads a baseline written by -write-baseline.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if bf.Findings == nil {
		bf.Findings = map[string]int{}
	}
	return bf.Findings, nil
}

// writeBaseline records the findings so later runs fail only on new ones.
func writeBaseline(path string, findings []Finding, wd string) error {
	bf := baselineFile{
		Comment:  "awglint baseline: known findings tolerated by CI; regenerate with awglint -write-baseline",
		Findings: map[string]int{},
	}
	for _, f := range findings {
		bf.Findings[baselineKey(f, wd)]++
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filterBaseline drops findings covered by the baseline, consuming counts
// so N baselined instances tolerate at most N occurrences.
func filterBaseline(findings []Finding, baseline map[string]int, wd string) []Finding {
	budget := make(map[string]int, len(baseline))
	for k, v := range baseline {
		budget[k] = v
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey(f, wd)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// jsonFinding is the -json output shape, one object per finding.
type jsonFinding struct {
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// recordBenchTiming writes the lint wall time into the "tooling" section of
// the newest trajectory entry in a BENCH_results.json-shaped file.
func recordBenchTiming(path string, elapsed time.Duration, nFindings int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []map[string]any
	if uerr := json.Unmarshal(data, &entries); uerr != nil {
		return fmt.Errorf("%s: %v", path, uerr)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: no trajectory entries", path)
	}
	last := entries[len(entries)-1]
	tooling, _ := last["tooling"].(map[string]any)
	if tooling == nil {
		tooling = map[string]any{}
	}
	tooling["lint_secs"] = float64(int(elapsed.Seconds()*1000)) / 1000
	tooling["lint_findings"] = nFindings
	last["tooling"] = tooling
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Main is the cmd/awglint entry point: parses flags and package patterns,
// prints findings to stderr, and exits non-zero when any survive.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(MainInto(os.Stderr, os.Args[1:], analyzers...))
}

// MainInto is Main with injectable output and arguments, for testing.
//
// Flags: -fix applies suggested fixes; -json emits findings as a JSON
// array; -baseline FILE tolerates findings recorded in FILE and fails only
// on new ones; -write-baseline FILE records the current findings and exits
// zero; -bench-json FILE stamps the lint wall time into FILE's newest
// trajectory entry (tooling section).
func MainInto(w io.Writer, args []string, analyzers ...*analysis.Analyzer) int {
	fix := false
	asJSON := false
	baselinePath := ""
	writeBaselinePath := ""
	benchJSONPath := ""
	var patterns []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		stringFlag := func(name string) (string, bool) {
			if a != "-"+name && a != "--"+name {
				return "", false
			}
			if i+1 >= len(args) {
				fmt.Fprintf(w, "awglint: -%s needs a file argument\n", name)
				return "", false
			}
			i++
			return args[i], true
		}
		switch {
		case a == "-fix" || a == "--fix":
			fix = true
		case a == "-json" || a == "--json":
			asJSON = true
		case a == "-baseline" || a == "--baseline":
			v, ok := stringFlag("baseline")
			if !ok {
				return 2
			}
			baselinePath = v
		case a == "-write-baseline" || a == "--write-baseline":
			v, ok := stringFlag("write-baseline")
			if !ok {
				return 2
			}
			writeBaselinePath = v
		case a == "-bench-json" || a == "--bench-json":
			v, ok := stringFlag("bench-json")
			if !ok {
				return 2
			}
			benchJSONPath = v
		case a == "-h" || a == "--help":
			fmt.Fprintln(w, "usage: awglint [-fix] [-json] [-baseline file] [-write-baseline file] [-bench-json file] [packages]")
			fmt.Fprintln(w, "analyzers:")
			for _, an := range analyzers {
				doc, _, _ := strings.Cut(an.Doc, "\n")
				fmt.Fprintf(w, "  %-16s %s\n", an.Name, doc)
			}
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(w, "awglint: unknown flag %s\n", a)
			return 2
		default:
			patterns = append(patterns, a)
		}
	}

	start := time.Now() //lint:allow simdeterminism tooling wall-clock for the lint-cost trajectory, not simulator state
	findings, err := Run("", patterns, analyzers, fix)
	elapsed := time.Since(start) //lint:allow simdeterminism tooling wall-clock for the lint-cost trajectory, not simulator state
	if err != nil {
		fmt.Fprintf(w, "awglint: %v\n", err)
		return 2
	}
	wd, _ := os.Getwd()

	if benchJSONPath != "" {
		if err := recordBenchTiming(benchJSONPath, elapsed, len(findings)); err != nil {
			fmt.Fprintf(w, "awglint: recording timing: %v\n", err)
			return 2
		}
	}
	if writeBaselinePath != "" {
		if err := writeBaseline(writeBaselinePath, findings, wd); err != nil {
			fmt.Fprintf(w, "awglint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(w, "awglint: baseline with %d finding(s) written to %s\n", len(findings), writeBaselinePath)
		return 0
	}
	if baselinePath != "" {
		baseline, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(w, "awglint: %v\n", err)
			return 2
		}
		findings = filterBaseline(findings, baseline, wd)
	}

	if asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Package:  f.Package,
				File:     relTo(f.Position.Filename, wd),
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(w, "awglint: %v\n", err)
			return 2
		}
		fmt.Fprintln(w, string(data))
	} else {
		for _, f := range findings {
			pos := f.Position
			pos.Filename = relTo(pos.Filename, wd)
			fmt.Fprintf(w, "%s: %s: %s\n", pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
