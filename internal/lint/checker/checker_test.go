package checker

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/analyzers/simdeterminism"
)

// TestDirectives runs the real simdeterminism analyzer over the directive
// testdata: valid directives suppress (same line and line above), while an
// unknown analyzer name or a missing reason is itself a finding and leaves
// the diagnostic unsuppressed.
func TestDirectives(t *testing.T) {
	findings, err := Run("", []string{"./testdata/src/dirs"},
		[]*analysis.Analyzer{simdeterminism.Analyzer}, false)
	if err != nil {
		t.Fatal(err)
	}
	type fkey struct {
		line     int
		analyzer string
	}
	got := map[fkey]string{}
	for _, f := range findings {
		k := fkey{f.Position.Line, f.Analyzer}
		if _, dup := got[k]; dup {
			t.Errorf("duplicate finding for %+v", k)
		}
		got[k] = f.Message
	}
	wants := []struct {
		line     int
		analyzer string
		contains string
	}{
		{13, "lintdirective", `unknown analyzer "nosuchanalyzer"`},
		{13, "simdeterminism", "wall-clock read"}, // invalid directive suppresses nothing
		{15, "lintdirective", "needs a reason"},
		{15, "simdeterminism", "wall-clock read"},
		{17, "simdeterminism", "wall-clock read"}, // no directive at all
	}
	for _, w := range wants {
		msg, ok := got[fkey{w.line, w.analyzer}]
		if !ok {
			t.Errorf("line %d: missing %s finding", w.line, w.analyzer)
			continue
		}
		if !strings.Contains(msg, w.contains) {
			t.Errorf("line %d %s: message %q does not contain %q", w.line, w.analyzer, msg, w.contains)
		}
		delete(got, fkey{w.line, w.analyzer})
	}
	for k, msg := range got {
		t.Errorf("unexpected finding at line %d (%s): %s", k.line, k.analyzer, msg)
	}
}

// TestApplyFixes applies a suggested fix through the same path `awglint
// -fix` uses and checks the file rewrite.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := "package f\n\nfunc g() { schedule(0) }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, -1, len(src))
	file.SetLinesForContent([]byte(src))
	off := strings.Index(src, "0")
	pos := file.Pos(off)
	end := file.Pos(off + 1)
	f := Finding{
		Position: fset.Position(pos),
		Analyzer: "schedpast",
		Fset:     fset,
		Diag: analysis.Diagnostic{
			Pos: pos, End: end,
			Message: "constant zero delay",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "use one cycle",
				TextEdits: []analysis.TextEdit{{Pos: pos, End: end, NewText: []byte("1")}},
			}},
		},
	}
	if err := applyFixes([]Finding{f}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package f\n\nfunc g() { schedule(1) }\n"
	if string(got) != want {
		t.Errorf("after fix:\n%s\nwant:\n%s", got, want)
	}
}
