package checker

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awgsim/internal/lint/analysis"
	"awgsim/internal/lint/analyzers/simdeterminism"
)

// TestDirectives runs the real simdeterminism analyzer over the directive
// testdata: valid directives suppress (same line and line above), while an
// unknown analyzer name or a missing reason is itself a finding and leaves
// the diagnostic unsuppressed.
func TestDirectives(t *testing.T) {
	findings, err := Run("", []string{"./testdata/src/dirs"},
		[]*analysis.Analyzer{simdeterminism.Analyzer}, false)
	if err != nil {
		t.Fatal(err)
	}
	type fkey struct {
		line     int
		analyzer string
	}
	got := map[fkey]string{}
	for _, f := range findings {
		k := fkey{f.Position.Line, f.Analyzer}
		if _, dup := got[k]; dup {
			t.Errorf("duplicate finding for %+v", k)
		}
		got[k] = f.Message
	}
	wants := []struct {
		line     int
		analyzer string
		contains string
	}{
		{13, "lintdirective", `unknown analyzer "nosuchanalyzer"`},
		{13, "simdeterminism", "wall-clock read"}, // invalid directive suppresses nothing
		{15, "lintdirective", "needs a reason"},
		{15, "simdeterminism", "wall-clock read"},
		{17, "simdeterminism", "wall-clock read"}, // no directive at all
		// Lines 21-22 (inside the multi-line initializer under a directive)
		// must be suppressed: the directive spans the statement's extent.
		{27, "simdeterminism", "wall-clock read"}, // blank line breaks directive adjacency
	}
	for _, w := range wants {
		msg, ok := got[fkey{w.line, w.analyzer}]
		if !ok {
			t.Errorf("line %d: missing %s finding", w.line, w.analyzer)
			continue
		}
		if !strings.Contains(msg, w.contains) {
			t.Errorf("line %d %s: message %q does not contain %q", w.line, w.analyzer, msg, w.contains)
		}
		delete(got, fkey{w.line, w.analyzer})
	}
	for k, msg := range got {
		t.Errorf("unexpected finding at line %d (%s): %s", k.line, k.analyzer, msg)
	}
}

// dirsFindings is how many findings the dirs testdata yields with the
// simdeterminism analyzer (kept in sync with TestDirectives's wants).
const dirsFindings = 6

// TestJSONOutput drives MainInto with -json and checks the machine-readable
// rendering: a JSON array sorted by (package, file, line, column, analyzer)
// with workdir-relative paths.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	code := MainInto(&buf, []string{"-json", "./testdata/src/dirs"}, simdeterminism.Analyzer)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	var got []struct {
		Package  string `json:"package"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != dirsFindings {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), dirsFindings, buf.String())
	}
	for i, f := range got {
		if f.Package == "" || f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d has empty fields: %+v", i, f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding %d: file %q not relativized to the working directory", i, f.File)
		}
		if i == 0 {
			continue
		}
		p := got[i-1]
		if p.Package > f.Package ||
			(p.Package == f.Package && p.File > f.File) ||
			(p.Package == f.Package && p.File == f.File && p.Line > f.Line) {
			t.Errorf("findings %d and %d out of (package, file, line) order", i-1, i)
		}
	}
}

// TestBaselineRoundTrip snapshots the dirs findings with -write-baseline,
// verifies a -baseline run is then clean, and checks that shrinking one
// key's count resurfaces exactly one finding (count semantics, not
// all-or-nothing).
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")

	var buf bytes.Buffer
	if code := MainInto(&buf, []string{"-write-baseline", base, "./testdata/src/dirs"},
		simdeterminism.Analyzer); code != 0 {
		t.Fatalf("write-baseline exit = %d; output:\n%s", code, buf.String())
	}

	buf.Reset()
	if code := MainInto(&buf, []string{"-baseline", base, "./testdata/src/dirs"},
		simdeterminism.Analyzer); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; output:\n%s", code, buf.String())
	}
	if out := strings.TrimSpace(buf.String()); out != "" {
		t.Fatalf("baselined run still reports:\n%s", out)
	}

	// Drop one unit from a duplicated key: with two identical wall-clock
	// findings in the same file, a budget of one must let exactly one
	// through.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Comment  string         `json:"comment"`
		Findings map[string]int `json:"findings"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	shrunk := ""
	for k, n := range bf.Findings {
		if n > 1 {
			bf.Findings[k] = n - 1
			shrunk = k
			break
		}
	}
	if shrunk == "" {
		t.Fatal("baseline has no key with count > 1; dirs testdata should duplicate a message")
	}
	out, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, out, 0o644); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if code := MainInto(&buf, []string{"-baseline", base, "./testdata/src/dirs"},
		simdeterminism.Analyzer); code != 1 {
		t.Fatalf("shrunk-baseline run exit = %d, want 1; output:\n%s", code, buf.String())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("shrunk baseline should resurface exactly 1 finding, got %d:\n%s",
			len(lines), buf.String())
	}
}

// TestApplyFixes applies a suggested fix through the same path `awglint
// -fix` uses and checks the file rewrite.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := "package f\n\nfunc g() { schedule(0) }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, -1, len(src))
	file.SetLinesForContent([]byte(src))
	off := strings.Index(src, "0")
	pos := file.Pos(off)
	end := file.Pos(off + 1)
	f := Finding{
		Position: fset.Position(pos),
		Analyzer: "schedpast",
		Fset:     fset,
		Diag: analysis.Diagnostic{
			Pos: pos, End: end,
			Message: "constant zero delay",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "use one cycle",
				TextEdits: []analysis.TextEdit{{Pos: pos, End: end, NewText: []byte("1")}},
			}},
		},
	}
	if err := applyFixes([]Finding{f}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package f\n\nfunc g() { schedule(1) }\n"
	if string(got) != want {
		t.Errorf("after fix:\n%s\nwant:\n%s", got, want)
	}
}
