// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library.
//
// This repository builds offline with no module cache, so the x/tools
// analysis framework cannot be added as a dependency. The subset here —
// Analyzer, Pass, Diagnostic, SuggestedFix/TextEdit — mirrors the upstream
// API shape closely enough that the domain analyzers in
// internal/lint/analyzers could be ported to the real framework by changing
// only their import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, documentation, and a Run
// function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, optionally
	// followed by a blank line and further prose.
	Doc string

	// Requires lists analyzers that must run on the same package first;
	// their return values are available through Pass.ResultOf. A required
	// analyzer that exports package facts (FactBased) additionally runs
	// over every module package in the dependency graph, in dependency
	// order, so its facts compose bottom-up across the package DAG.
	Requires []*Analyzer

	// FactBased marks an analyzer that exports a package fact via
	// Pass.ExportPackageFact. The driver runs it over dependency packages
	// (not only the requested roots) so importers can consume the facts.
	FactBased bool

	// Run applies the analyzer to a package. It reports findings via
	// Pass.Report/Reportf and may return an arbitrary result value, which
	// the driver hands to dependent analyzers through Pass.ResultOf.
	Run func(*Pass) (any, error)
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	// ResultOf holds the return values of this pass's Requires analyzers,
	// keyed by analyzer, for the same package.
	ResultOf map[*Analyzer]any

	// ImportPackageFact returns the fact this pass's analyzer exported for
	// an already-analyzed package (a dependency in the current driver run).
	// The driver installs it; nil when the driver does not support facts.
	ImportPackageFact func(pkgPath string) (any, bool)

	// ExportPackageFact publishes a fact for the current package, visible
	// to later passes of the same analyzer via ImportPackageFact. The
	// driver installs it; nil when the driver does not support facts.
	ExportPackageFact func(fact any)
}

// PackageFact is a nil-safe ImportPackageFact.
func (p *Pass) PackageFact(pkgPath string) (any, bool) {
	if p.ImportPackageFact == nil {
		return nil, false
	}
	return p.ImportPackageFact(pkgPath)
}

// ExportFact is a nil-safe ExportPackageFact.
func (p *Pass) ExportFact(fact any) {
	if p.ExportPackageFact != nil {
		p.ExportPackageFact(fact)
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic over the node's extent.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string

	// SuggestedFixes optionally carry mechanical rewrites for the finding;
	// `awglint -fix` applies the first fix of each surviving diagnostic.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite that addresses a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
