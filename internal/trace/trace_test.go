package trace

import (
	"strings"
	"testing"
)

func TestRecorderOrdersEvents(t *testing.T) {
	r := NewRecorder(0)
	r.Record(50, 1, Attempt)
	r.Record(10, 0, Start)
	r.Record(30, 1, Start)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 10; i++ {
		r.Record(0, 0, Attempt)
	}
	if r.Len() != 2 {
		t.Fatalf("limit ignored: %d events", r.Len())
	}
}

func TestCountByKind(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Attempt)
	r.Record(1, 0, Attempt)
	r.Record(2, 0, Resume)
	c := r.CountByKind()
	if c[Attempt] != 2 || c[Resume] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Start)
	r.Record(500, 0, Attempt)
	r.Record(1000, 0, Finish)
	r.Record(0, 3, Start)
	r.Record(1000, 3, Finish)
	out := r.Timeline(40)
	if !strings.Contains(out, "WG0") || !strings.Contains(out, "WG3") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 lanes
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	lane0 := lines[1]
	if !strings.Contains(lane0, "[") || !strings.HasSuffix(lane0, "]") {
		t.Fatalf("lane missing start/finish glyphs: %q", lane0)
	}
	if !strings.Contains(lane0, "a") {
		t.Fatalf("lane missing attempt glyph: %q", lane0)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder(0)
	if got := r.Timeline(40); !strings.Contains(got, "no events") {
		t.Fatalf("empty timeline rendered %q", got)
	}
}

func TestTimelineSingleInstant(t *testing.T) {
	r := NewRecorder(0)
	r.Record(7, 0, Start)
	out := r.Timeline(10)
	if !strings.Contains(out, "[") {
		t.Fatalf("glyph missing: %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Start: "start", Resume: "resume", TimeoutFire: "timeout"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

func TestSignature(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Attempt)
	r.Record(1, 0, StallBegin)
	r.Record(2, 0, Resume)
	s := r.Signature()
	for _, want := range []string{"atomics=1", "stalls=1", "resumes=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("signature %q missing %q", s, want)
		}
	}
}
