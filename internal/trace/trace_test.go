package trace

import (
	"strings"
	"testing"

	"awgsim/internal/event"
)

func TestRecorderOrdersEvents(t *testing.T) {
	r := NewRecorder(0)
	r.Record(50, 1, Attempt)
	r.Record(10, 0, Start)
	r.Record(30, 1, Start)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 10; i++ {
		r.Record(0, 0, Attempt)
	}
	if r.Len() != 2 {
		t.Fatalf("limit ignored: %d events", r.Len())
	}
}

func TestCountByKind(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Attempt)
	r.Record(1, 0, Attempt)
	r.Record(2, 0, Resume)
	c := r.CountByKind()
	if c[Attempt] != 2 || c[Resume] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Start)
	r.Record(500, 0, Attempt)
	r.Record(1000, 0, Finish)
	r.Record(0, 3, Start)
	r.Record(1000, 3, Finish)
	out := r.Timeline(40)
	if !strings.Contains(out, "WG0") || !strings.Contains(out, "WG3") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 lanes
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	lane0 := lines[1]
	if !strings.Contains(lane0, "[") || !strings.HasSuffix(lane0, "]") {
		t.Fatalf("lane missing start/finish glyphs: %q", lane0)
	}
	if !strings.Contains(lane0, "a") {
		t.Fatalf("lane missing attempt glyph: %q", lane0)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder(0)
	if got := r.Timeline(40); !strings.Contains(got, "no events") {
		t.Fatalf("empty timeline rendered %q", got)
	}
}

func TestTimelineSingleInstant(t *testing.T) {
	r := NewRecorder(0)
	r.Record(7, 0, Start)
	out := r.Timeline(10)
	if !strings.Contains(out, "[") {
		t.Fatalf("glyph missing: %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Start: "start", Resume: "resume", TimeoutFire: "timeout"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

// TestRenderingDeterministic: identical event sets must render identically
// regardless of recording order, and every Kind must carry a name and
// glyph (the Kind-indexed arrays leave no room for map-order drift, but a
// newly added Kind could still be forgotten).
func TestRenderingDeterministic(t *testing.T) {
	build := func(perm []int) *Recorder {
		r := NewRecorder(0)
		for _, i := range perm {
			// 17 WGs recorded in permuted order; unique timestamps give the
			// time sort a total order (same-cycle ties keep recording order
			// by design, which a permutation would legitimately change).
			r.Record(event.Cycle(i)*7, i%17, Kind(i%int(NumKinds)))
		}
		return r
	}
	fwd := make([]int, 200)
	rev := make([]int, 200)
	for i := range fwd {
		fwd[i], rev[len(rev)-1-i] = i, i
	}
	a, b := build(fwd), build(rev)
	if at, bt := a.Timeline(60), b.Timeline(60); at != bt {
		t.Fatalf("timeline depends on recording order:\n%s\nvs\n%s", at, bt)
	}
	if ac, bc := a.CountByKind(), b.CountByKind(); ac != bc {
		t.Fatalf("counts depend on recording order: %v vs %v", ac, bc)
	}
	if as, bs := a.Signature(), b.Signature(); as != bs {
		t.Fatalf("signature depends on recording order: %q vs %q", as, bs)
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
		if glyphs[k] == 0 {
			t.Errorf("kind %d has no glyph", k)
		}
	}
}

func TestSignature(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, 0, Attempt)
	r.Record(1, 0, StallBegin)
	r.Record(2, 0, Resume)
	s := r.Signature()
	for _, want := range []string{"atomics=1", "stalls=1", "resumes=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("signature %q missing %q", s, want)
		}
	}
}
