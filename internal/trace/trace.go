// Package trace records per-work-group execution timelines from a
// simulation and renders them as the paper's Figure 6-style signatures:
// for each WG, an annotated sequence of phases (running, busy-polling,
// stalled, switching, switched out) with the synchronization events
// (atomic attempts, monitor arming, resumes, timeouts) that separate them.
//
// Tracing is optional: a Machine runs untraced unless a Recorder is
// attached, and recording costs one append per event.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"awgsim/internal/event"
)

// Kind classifies a timeline event.
type Kind int

const (
	// Start: the WG was dispatched and began executing.
	Start Kind = iota
	// Attempt: a synchronization atomic was issued.
	Attempt
	// Arm: a wait instruction armed the monitor (MonR/MonRS only).
	Arm
	// StallBegin: the WG parked on its CU, releasing issue slots.
	StallBegin
	// SwitchOut: the WG began a context save.
	SwitchOut
	// SwitchIn: the WG became resident again.
	SwitchIn
	// Resume: a monitor/CP notification woke the WG.
	Resume
	// TimeoutFire: the policy's fallback timeout ended a wait.
	TimeoutFire
	// Acquired: the wait episode completed successfully.
	Acquired
	// Finish: the WG completed.
	Finish

	// NumKinds bounds the Kind space; CountByKind tallies are indexed by it.
	NumKinds
)

// kindNames/glyphs are Kind-indexed arrays: rendering iterates them, so
// their order is fixed at compile time rather than by map traversal.
var kindNames = [NumKinds]string{
	Start:       "start",
	Attempt:     "atomic",
	Arm:         "arm",
	StallBegin:  "stall",
	SwitchOut:   "ctx-out",
	SwitchIn:    "ctx-in",
	Resume:      "resume",
	TimeoutFire: "timeout",
	Acquired:    "acquired",
	Finish:      "finish",
}

func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return "?"
}

// glyphs renders each kind as a single timeline character.
var glyphs = [NumKinds]byte{
	Start:       '[',
	Attempt:     'a',
	Arm:         'm',
	StallBegin:  '_',
	SwitchOut:   '<',
	SwitchIn:    '>',
	Resume:      '!',
	TimeoutFire: 'T',
	Acquired:    '+',
	Finish:      ']',
}

// Event is one recorded timeline entry.
type Event struct {
	At   event.Cycle
	WG   int
	Kind Kind
}

// Recorder collects events. The zero value is ready to use.
type Recorder struct {
	events []Event
	limit  int
}

// NewRecorder builds a recorder keeping at most limit events (0 =
// unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Record appends an event; silently drops once the limit is reached.
func (r *Recorder) Record(at event.Cycle, wg int, kind Kind) {
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{At: at, WG: wg, Kind: kind})
}

// Len reports recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CountByKind tallies events per kind, indexed by Kind. The fixed array
// (rather than a map) makes every consumer's iteration order — and thus any
// rendering built on the tallies — deterministic by construction.
func (r *Recorder) CountByKind() [NumKinds]int {
	var m [NumKinds]int
	for _, e := range r.events {
		m[e.Kind]++
	}
	return m
}

// Timeline renders the recorded events as one fixed-width lane per WG
// (Figure 6 style): time flows left to right across `width` columns, with
// each event drawn at its proportional position; later events in a column
// overwrite earlier ones.
//
//	[ start   a atomic   m arm   _ stall   < ctx-out   > ctx-in
//	! resume  T timeout  + acquired  ] finish
func (r *Recorder) Timeline(width int) string {
	if width <= 0 {
		width = 80
	}
	evs := r.Events()
	if len(evs) == 0 {
		return "(no events)\n"
	}
	start, end := evs[0].At, evs[0].At
	ids := make([]int, 0, 16)
	for _, e := range evs {
		if e.At < start {
			start = e.At
		}
		if e.At > end {
			end = e.At
		}
		ids = append(ids, e.WG)
	}
	span := end - start
	if span == 0 {
		span = 1
	}
	// Sorted unique WG ids; a lane's index is its id's rank, so the whole
	// render is ordered without any map in the path.
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if i == 0 || id != uniq[len(uniq)-1] {
			uniq = append(uniq, id)
		}
	}
	ids = uniq
	lanes := make([][]byte, len(ids))
	for li := range lanes {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		lanes[li] = lane
	}
	for _, e := range evs {
		col := int(uint64(e.At-start) * uint64(width-1) / uint64(span))
		li := sort.SearchInts(ids, e.WG)
		lanes[li][col] = glyphs[e.Kind]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d, one lane per WG (%s)\n", start, end, legend())
	for li, id := range ids {
		fmt.Fprintf(&b, "WG%-3d %s\n", id, lanes[li])
	}
	return b.String()
}

func legend() string {
	order := []Kind{Start, Attempt, Arm, StallBegin, SwitchOut, SwitchIn, Resume, TimeoutFire, Acquired, Finish}
	parts := make([]string, len(order))
	for i, k := range order {
		parts[i] = fmt.Sprintf("%c=%s", glyphs[k], k)
	}
	return strings.Join(parts, " ")
}

// Signature summarizes the recording as the per-policy counts Figure 6's
// timeline annotations correspond to.
func (r *Recorder) Signature() string {
	c := r.CountByKind()
	return fmt.Sprintf("atomics=%d arms=%d stalls=%d switches=%d resumes=%d timeouts=%d",
		c[Attempt], c[Arm], c[StallBegin], c[SwitchOut], c[Resume], c[TimeoutFire])
}
