// Package policy implements the paper's design space of cooperative WG
// scheduling architectures (Figure 6), all behind gpu.Policy:
//
//	Baseline   software busy-waiting; deadlocks when oversubscribed
//	Sleep      exponential backoff with the s_sleep instruction
//	Timeout    fixed-interval stall / context switch
//	MonRS-All  wait instructions + sporadic monitor, resume all
//	MonR-All   wait instructions + condition-checking monitor, resume all
//	MonNR-All  waiting atomics (race-free), resume all
//	MonNR-One  waiting atomics, resume one per met condition
//	AWG        waiting atomics + resume-count and stall-time prediction
//	MinResume  oracle resume selection (Figure 9's normalization base)
//
// A policy's only job is to complete Wait episodes: retry the program's
// atomic until it returns the wanted value, deciding what the WG does in
// between.
package policy

import (
	"awgsim/internal/event"
	"awgsim/internal/gpu"
)

// Baseline busy-waits: the WG re-issues its atomic as fast as the loop
// overhead allows, holding its CU resources throughout. Matches the
// HeteroSync benchmarks as written. For hint.Backoff call sites (the
// SPMBO_* variants) it inserts software exponential backoff, burned as
// compute rather than slept, exactly like a backoff loop in kernel code.
type Baseline struct {
	m *gpu.Machine
	// BackoffBase/Max bound the software backoff for hinted call sites.
	BackoffBase, BackoffMax event.Cycle
}

// NewBaseline returns the busy-waiting baseline.
func NewBaseline() *Baseline {
	return &Baseline{BackoffBase: 64, BackoffMax: 8192}
}

func (b *Baseline) Name() string                { return "Baseline" }
func (b *Baseline) Attach(m *gpu.Machine) error { b.m = m; return nil }

// backoffEpisode is the per-wait record of the backoff policies: the only
// mutable episode state is the current backoff interval. It lives in the
// WG's PolicyData slot (rather than a closure-local variable) so machine
// snapshots can capture and rewind it — the episode's calendar closures
// keep referencing the same record across a restore.
type backoffEpisode struct {
	backoff event.Cycle
}

// SaveEpisode captures the episode's mutable state for a machine snapshot.
func (ep *backoffEpisode) SaveEpisode() any { return ep.backoff }

// LoadEpisode rewinds the episode to state captured by SaveEpisode.
func (ep *backoffEpisode) LoadEpisode(s any) { ep.backoff = s.(event.Cycle) }

func (b *Baseline) Wait(w *gpu.WG, v gpu.Var, op gpu.AtomicOp, a, b2, want int64, cmp gpu.Cmp, hint gpu.WaitHint, done func(int64)) {
	// The retry loop shares one attempt and one response continuation per
	// episode: a contended episode can spin thousands of times, and each
	// retry must not allocate.
	ep := &backoffEpisode{backoff: b.BackoffBase}
	w.PolicyData = ep
	var attempt func()
	var onResp func(int64)
	onResp = func(ret int64) {
		if cmp.Test(ret, want) {
			w.PolicyData = nil
			done(ret)
			return
		}
		delay := b.m.PollOverhead()
		if hint.Backoff {
			delay += ep.backoff + event.Cycle(b.m.Jitter(uint64(ep.backoff/4+1)))
			if ep.backoff*2 <= b.BackoffMax {
				ep.backoff *= 2
			}
		}
		b.m.Engine().After(delay, attempt)
	}
	attempt = func() { b.m.IssueAtomic(w, v, op, a, b2, nil, onResp) }
	attempt()
}

// Sleep models exponential backoff built on the s_sleep instruction: after
// each failed retry the WG sleeps for a doubling interval capped at
// MaxBackoff (the X in the paper's Sleep-Xk sweep). The WG keeps its
// hardware resources while sleeping, so Sleep cannot provide IFP when the
// GPU is oversubscribed — Figure 15 shows it deadlocking there.
type Sleep struct {
	m          *gpu.Machine
	Base       event.Cycle
	MaxBackoff event.Cycle
	name       string
}

// NewSleep builds a Sleep policy with the given maximum backoff interval.
func NewSleep(name string, maxBackoff event.Cycle) *Sleep {
	return &Sleep{Base: 512, MaxBackoff: maxBackoff, name: name}
}

func (s *Sleep) Name() string                { return s.name }
func (s *Sleep) Attach(m *gpu.Machine) error { s.m = m; return nil }

func (s *Sleep) Wait(w *gpu.WG, v gpu.Var, op gpu.AtomicOp, a, b, want int64, cmp gpu.Cmp, _ gpu.WaitHint, done func(int64)) {
	ep := &backoffEpisode{backoff: s.Base}
	if ep.backoff > s.MaxBackoff {
		ep.backoff = s.MaxBackoff
	}
	w.PolicyData = ep
	var attempt func()
	resume := func() {
		s.m.SetStalled(w, false)
		attempt()
	}
	var onResp func(int64)
	onResp = func(ret int64) {
		if cmp.Test(ret, want) {
			w.PolicyData = nil
			done(ret)
			return
		}
		s.m.Count.Stalls++
		d := ep.backoff + event.Cycle(s.m.Jitter(uint64(ep.backoff/8+1)))
		if ep.backoff*2 <= s.MaxBackoff {
			ep.backoff *= 2
		}
		// s_sleep parks the wavefront: issue slots free up while the
		// timer runs, though all other resources stay held.
		s.m.SetStalled(w, true)
		s.m.Engine().After(d, resume)
	}
	attempt = func() { s.m.IssueAtomic(w, v, op, a, b, nil, onResp) }
	attempt()
}

// Timeout is the paper's simplest IFP-providing architecture: a failed
// synchronization attempt parks the WG for a fixed interval — stalled on
// its CU when the machine is not oversubscribed, context switched out when
// it is — and retries when the interval expires. No monitor exists, so the
// interval is a blind guess; Figure 8 shows no single interval suits all
// primitives.
type Timeout struct {
	m        *gpu.Machine
	Interval event.Cycle
	name     string
}

// NewTimeout builds a Timeout policy with the given fixed interval (e.g.
// 10_000 for the paper's Timeout-10k).
func NewTimeout(name string, interval event.Cycle) *Timeout {
	return &Timeout{Interval: interval, name: name}
}

func (t *Timeout) Name() string                { return t.name }
func (t *Timeout) Attach(m *gpu.Machine) error { t.m = m; return nil }

func (t *Timeout) Wait(w *gpu.WG, v gpu.Var, op gpu.AtomicOp, a, b, want int64, cmp gpu.Cmp, _ gpu.WaitHint, done func(int64)) {
	var attempt func()
	deliver := func() { t.m.Deliver(w, attempt) }
	resume := func() {
		t.m.SetStalled(w, false)
		attempt()
	}
	var onResp func(int64)
	onResp = func(ret int64) {
		if cmp.Test(ret, want) {
			done(ret)
			return
		}
		t.m.Count.Stalls++
		if t.m.Oversubscribed() {
			// Yield resources for the interval.
			t.m.SwitchOut(w)
			t.m.Engine().After(t.Interval, deliver)
		} else {
			t.m.SetStalled(w, true)
			t.m.Engine().After(t.Interval, resume)
		}
	}
	attempt = func() { t.m.IssueAtomic(w, v, op, a, b, nil, onResp) }
	attempt()
}
