package policy

import "awgsim/internal/mem"

// memAddr shortens the address type in selector plumbing.
type memAddr = mem.Addr
