package policy_test

import (
	"testing"

	"awgsim/internal/cp"
	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/policy"
	"awgsim/internal/syncmon"
)

func testConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.NumCUs = 2
	cfg.MaxWGsPerCU = 4
	cfg.ProgressWindow = 300_000
	cfg.MaxCycles = 50_000_000
	return cfg
}

// producerConsumer builds a kernel where WG 0 stores `val` into flag after
// `delay` cycles and every other WG waits for it.
func producerConsumer(numWGs int, delay event.Cycle, flag mem.Addr, val int64) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name: "pc", NumWGs: numWGs, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			v := gpu.GlobalVar(flag)
			if d.ID() == 0 {
				d.Compute(delay)
				d.AtomicStore(v, val)
				return
			}
			d.AwaitEq(v, val)
		},
	}
}

// lockContender builds a kernel where every WG takes a test-and-set lock a
// few times around a shared counter.
func lockContender(numWGs, iters int, lock, counter mem.Addr) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name: "lock", NumWGs: numWGs, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			v := gpu.GlobalVar(lock)
			for i := 0; i < iters; i++ {
				d.AcquireExch(v, 1, 0)
				x := d.Load(counter)
				d.Compute(100)
				d.Store(counter, x+1)
				d.AtomicExch(v, 0)
			}
		},
	}
}

func run(t *testing.T, spec *gpu.KernelSpec, pol gpu.Policy) (metrics.Result, *gpu.Machine) {
	t.Helper()
	m, err := gpu.NewMachine(testConfig(), mem.DefaultConfig(), spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(), m
}

// Every policy must complete both canonical synchronization shapes and
// preserve lock-protected data.
func TestEveryPolicyCompletesAndIsCorrect(t *testing.T) {
	mk := map[string]func() gpu.Policy{
		"Baseline":  func() gpu.Policy { return policy.NewBaseline() },
		"Sleep":     func() gpu.Policy { return policy.NewSleep("Sleep", 16_000) },
		"Timeout":   func() gpu.Policy { return policy.NewTimeout("Timeout", 10_000) },
		"MonRS-All": func() gpu.Policy { return policy.NewMonRSAll() },
		"MonR-All":  func() gpu.Policy { return policy.NewMonRAll() },
		"MonNR-All": func() gpu.Policy { return policy.NewMonNRAll() },
		"MonNR-One": func() gpu.Policy { return policy.NewMonNROne() },
		"AWG":       func() gpu.Policy { return policy.NewAWG() },
		"MinResume": func() gpu.Policy { return policy.NewMinResume() },
	}
	for name, build := range mk {
		t.Run(name+"/producer-consumer", func(t *testing.T) {
			res, m := run(t, producerConsumer(8, 5000, 0x1000, 9), build())
			if res.Deadlocked {
				t.Fatal("deadlocked")
			}
			if got := m.Mem().Read(0x1000); got != 9 {
				t.Fatalf("flag = %d", got)
			}
		})
		t.Run(name+"/mutex", func(t *testing.T) {
			res, m := run(t, lockContender(8, 4, 0x2000, 0x2040), build())
			if res.Deadlocked {
				t.Fatal("deadlocked")
			}
			if got := m.Mem().Read(0x2040); got != 32 {
				t.Fatalf("counter = %d, want 32 (lost update under %s)", got, name)
			}
		})
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		pol  gpu.Policy
		want string
	}{
		{policy.NewBaseline(), "Baseline"},
		{policy.NewSleep("Sleep-8k", 8000), "Sleep-8k"},
		{policy.NewTimeout("Timeout-10k", 10_000), "Timeout-10k"},
		{policy.NewMonRSAll(), "MonRS-All"},
		{policy.NewMonRAll(), "MonR-All"},
		{policy.NewMonNRAll(), "MonNR-All"},
		{policy.NewMonNROne(), "MonNR-One"},
		{policy.NewAWG(), "AWG"},
		{policy.NewMinResume(), "MinResume"},
		{policy.NewAWGNoCache(), "AWG-nocache"},
	} {
		if got := tc.pol.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestWindowOfVulnerability demonstrates the Figure 10 race: with wait
// instructions (MonR) and the safety-net timeout disabled, an update that
// lands between the failed atomic and the monitor arming is lost for good
// and the kernel deadlocks. Waiting atomics (MonNR) registering at the
// atomic's own bank instant are immune.
func TestWindowOfVulnerability(t *testing.T) {
	// The producer fires while consumers are mid-arming: a short delay
	// maximizes the overlap; run several delays to land in the window.
	raceyRun := func(build func() gpu.Policy) bool {
		deadlocked := false
		for _, delay := range []event.Cycle{60, 100, 140, 180, 220} {
			cfg := testConfig()
			cfg.ProgressWindow = 100_000
			spec := producerConsumer(8, delay, 0x3000, 1)
			m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), spec, build())
			if err != nil {
				t.Fatal(err)
			}
			if m.Run().Deadlocked {
				deadlocked = true
			}
		}
		return deadlocked
	}
	monRNoFallback := func() gpu.Policy {
		return policy.NewMonitor(policy.MonitorOptions{
			Name: "MonR-NoFallback", Arm: policy.ArmWaitInstr, Fallback: 0,
		})
	}
	monNRNoFallback := func() gpu.Policy {
		return policy.NewMonitor(policy.MonitorOptions{
			Name: "MonNR-NoFallback", Arm: policy.ArmWaitingAtomic, Fallback: 0,
		})
	}
	if !raceyRun(monRNoFallback) {
		t.Error("MonR without fallback never lost a wake-up across the race window")
	}
	if raceyRun(monNRNoFallback) {
		t.Error("waiting atomics lost a wake-up; registration is supposed to be race-free")
	}
}

// TestMonRFallbackPapersOverRace: with the fallback enabled, MonR survives
// the same schedule, at the cost of counted timeouts.
func TestMonRFallbackPapersOverRace(t *testing.T) {
	cfg := testConfig()
	spec := producerConsumer(8, 100, 0x4000, 1)
	m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), spec, policy.NewMonRAll())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("MonR-All with fallback deadlocked")
	}
}

// TestFig12Walkthrough exercises the full AWG mechanism of Figure 12 in one
// scenario: waiting atomics register in a deliberately tiny SyncMon, spill
// through the Monitor Log, the CP drains and checks them, and the WGs are
// resumed when the producer writes.
func TestFig12Walkthrough(t *testing.T) {
	smCfg := syncmon.DefaultConfig()
	smCfg.Sets = 1
	smCfg.Ways = 1 // one cached condition; everyone else spills
	cpCfg := cp.DefaultConfig()
	cpCfg.DrainInterval = 2_000
	cpCfg.CheckInterval = 2_000
	pol := policy.NewMonitor(policy.MonitorOptions{
		Name: "AWG-tiny", Arm: policy.ArmWaitingAtomic,
		Fallback:      50_000,
		SyncMonConfig: &smCfg, CPConfig: &cpCfg,
	})
	// Consumers wait on distinct flags so their conditions cannot share the
	// single SyncMon entry.
	const base = mem.Addr(0x5000)
	spec := &gpu.KernelSpec{
		Name: "walkthrough", NumWGs: 8, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			if d.ID() == 0 {
				d.Compute(20_000)
				for i := 1; i < 8; i++ {
					d.AtomicStore(gpu.GlobalVar(base+mem.Addr(i*64)), 1)
				}
				return
			}
			d.AwaitEq(gpu.GlobalVar(base+mem.Addr(int(d.ID())*64)), 1)
		},
	}
	m, err := gpu.NewMachine(testConfig(), mem.DefaultConfig(), spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("walkthrough deadlocked")
	}
	if res.LogSpills == 0 {
		t.Fatal("no conditions spilled through the Monitor Log")
	}
	if res.Resumes+res.Timeouts == 0 {
		t.Fatal("no waiter was ever resumed")
	}
}

// TestMesaRetryOnFullLog: when both the SyncMon and the Monitor Log are
// full, the waiting atomic fails without entering a waiting state and the
// WG retries (Mesa semantics) — the kernel still completes.
func TestMesaRetryOnFullLog(t *testing.T) {
	smCfg := syncmon.DefaultConfig()
	smCfg.Sets = 0
	smCfg.WaitListSize = 0
	smCfg.LogCapacity = 1 // effectively everything is rejected
	pol := policy.NewMonitor(policy.MonitorOptions{
		Name: "AWG-fullog", Arm: policy.ArmWaitingAtomic,
		Fallback:      25_000,
		SyncMonConfig: &smCfg,
	})
	spec := producerConsumer(8, 10_000, 0x6000, 1)
	m, err := gpu.NewMachine(testConfig(), mem.DefaultConfig(), spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked with full log")
	}
	if res.LogRejects == 0 {
		t.Fatal("no Mesa rejections recorded")
	}
}

// TestSleepBacksOffExponentially: a longer max backoff must reduce the
// number of retry atomics for a long wait.
func TestSleepBacksOffExponentially(t *testing.T) {
	atomicsWith := func(max event.Cycle) uint64 {
		spec := producerConsumer(2, 60_000, 0x7000, 1)
		res, _ := run(t, spec, policy.NewSleep("Sleep", max))
		if res.Deadlocked {
			t.Fatal("deadlocked")
		}
		return res.Atomics
	}
	short, long := atomicsWith(1_000), atomicsWith(64_000)
	if long >= short {
		t.Fatalf("backoff cap 64k used %d atomics, cap 1k used %d — no reduction", long, short)
	}
}

// TestTimeoutYieldsWhenOversubscribed: with more WGs than slots, the
// Timeout policy must context switch waiters out so pending WGs can run.
func TestTimeoutYieldsWhenOversubscribed(t *testing.T) {
	cfg := testConfig() // 8 slots
	spec := producerConsumer(12, 50_000, 0x8000, 1)
	m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), spec, policy.NewTimeout("Timeout", 5_000))
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.SwitchesOut == 0 {
		t.Fatal("oversubscribed Timeout never context switched")
	}
}

// TestBaselineDeadlocksWhenOversubscribed: with more WGs than slots and
// the producer dispatched last, busy-waiting consumers hold every slot and
// the producer never runs — the motivating deadlock of the paper.
func TestBaselineDeadlocksWhenOversubscribed(t *testing.T) {
	cfg := testConfig() // 8 slots
	cfg.ProgressWindow = 150_000
	const flag = mem.Addr(0x9000)
	spec := &gpu.KernelSpec{
		Name: "inverted-pc", NumWGs: 12, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			v := gpu.GlobalVar(flag)
			if int(d.ID()) == 11 { // producer is the last WG dispatched
				d.AtomicStore(v, 1)
				return
			}
			d.AwaitEq(v, 1)
		},
	}
	m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), spec, policy.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if !res.Deadlocked {
		t.Fatal("baseline completed an oversubscribed dependent kernel — impossible without IFP")
	}
	// The same kernel under AWG completes: waiting WGs yield their slots.
	m2, err := gpu.NewMachine(cfg, mem.DefaultConfig(), spec, policy.NewAWG())
	if err != nil {
		t.Fatal(err)
	}
	if res2 := m2.Run(); res2.Deadlocked {
		t.Fatal("AWG deadlocked where it must provide forward progress")
	}
}

// TestMonNROneServializesMutexHandoff: resume-one must wake exactly one
// waiter per release, so wasted resumes stay near zero on a mutex, while
// resume-all wakes the whole herd.
func TestMonNROneAvoidsHerd(t *testing.T) {
	one, _ := run(t, lockContender(8, 6, 0xa000, 0xa040), policy.NewMonNROne())
	all, _ := run(t, lockContender(8, 6, 0xb000, 0xb040), policy.NewMonNRAll())
	if one.Deadlocked || all.Deadlocked {
		t.Fatal("deadlocked")
	}
	if one.WastedResumes >= all.WastedResumes {
		t.Fatalf("resume-one wasted %d resumes, resume-all %d — herd not visible",
			one.WastedResumes, all.WastedResumes)
	}
}

// ticketContender builds a centralized ticket-lock kernel: every waiter
// waits on its own condition of one now-serving variable — the shape on
// which sporadic notifications are maximally wasteful (Figure 9).
func ticketContender(numWGs, iters int, tail, serving mem.Addr) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name: "ticket", NumWGs: numWGs, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			for i := 0; i < iters; i++ {
				tkt := d.AtomicAdd(gpu.GlobalVar(tail), 1)
				d.AwaitGE(gpu.GlobalVar(serving), tkt)
				d.Compute(200)
				d.AtomicAdd(gpu.GlobalVar(serving), 1)
			}
		},
	}
}

// TestSporadicWakesAreWasteful: a checking monitor wakes exactly the served
// ticket holder per release; the sporadic monitor wakes every registered
// waiter on every access — the Figure 9 wait-efficiency gap.
func TestSporadicWakesAreWasteful(t *testing.T) {
	rs, _ := run(t, ticketContender(8, 6, 0xc000, 0xc040), policy.NewMonRSAll())
	r, _ := run(t, ticketContender(8, 6, 0xd000, 0xd040), policy.NewMonRAll())
	if rs.Deadlocked || r.Deadlocked {
		t.Fatal("deadlocked")
	}
	if rs.Atomics <= r.Atomics {
		t.Fatalf("sporadic atomics (%d) not above checking atomics (%d)", rs.Atomics, r.Atomics)
	}
	if rs.WastedResumes <= r.WastedResumes {
		t.Fatalf("sporadic wasted resumes (%d) not above checking (%d)",
			rs.WastedResumes, r.WastedResumes)
	}
}

// TestTimeoutWithdrawalDoesNotLoseCPWakeup is the lost-wakeup regression:
// a spilled waiter's fallback timeout withdraws its registration while the
// entry is still in the Monitor Log ring; the WG retries, fails, and spills
// the same condition again. The withdrawal used to tombstone the ring entry
// (SyncMon side) AND record a deferred tombstone with the CP — the ring
// tombstone is skipped by Pop and never consumed, so the CP one stayed
// stale and silently swallowed the re-spilled entry at drain time. The
// waiter then never reached the CP table and only ever resumed through its
// own timeouts, never through a CP wake.
func TestTimeoutWithdrawalDoesNotLoseCPWakeup(t *testing.T) {
	// No SyncMon cache: every registration spills to the log. The drain
	// cadence (20k) is longer than the fallback (12k), so the first timeout
	// fires while the entry is still in the ring; the producer satisfies
	// the condition just after the first drain, and the frequent check
	// passes (1k) must then wake the re-spilled waiter before its next
	// timeout would paper over the loss.
	smCfg := syncmon.DefaultConfig()
	smCfg.Sets = 0
	smCfg.WaitListSize = 0
	cpCfg := cp.DefaultConfig()
	cpCfg.DrainInterval = 20_000
	cpCfg.CheckInterval = 1_000
	pol := policy.NewMonitor(policy.MonitorOptions{
		Name: "MonNR-All-slowdrain", Arm: policy.ArmWaitingAtomic,
		Fallback:      12_000,
		SyncMonConfig: &smCfg,
		CPConfig:      &cpCfg,
	})
	res, m := run(t, producerConsumer(2, 20_200, 0x5000, 1), pol)
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.Timeouts == 0 {
		t.Fatal("scenario never exercised the timeout withdrawal")
	}
	if res.LogSpills < 2 {
		t.Fatalf("LogSpills = %d, want >= 2 (initial spill + re-spill)", res.LogSpills)
	}
	if res.Resumes == 0 {
		t.Fatal("waiter never woken by the CP: re-spill swallowed by a stale tombstone")
	}
	if got := m.Mem().Read(0x5000); got != 1 {
		t.Fatalf("flag = %d", got)
	}
}

// TestAWGPredictorActivity: AWG must actually exercise its predictor on a
// mixed mutex+barrier kernel.
func TestAWGPredictorActivity(t *testing.T) {
	const lock, counter, bar = mem.Addr(0xe000), mem.Addr(0xe040), mem.Addr(0xe080)
	spec := &gpu.KernelSpec{
		Name: "mixed", NumWGs: 8, WIsPerWG: 64,
		Program: func(d gpu.Device) {
			for i := 0; i < 4; i++ {
				d.AcquireExch(gpu.GlobalVar(lock), 1, 0)
				x := d.Load(counter)
				d.Compute(200)
				d.Store(counter, x+1)
				d.AtomicExch(gpu.GlobalVar(lock), 0)
				// Barrier: counter sweep.
				v := gpu.GlobalVar(bar)
				target := int64((i + 1) * 8)
				if d.AtomicAdd(v, 1)+1 != target {
					d.AwaitGE(v, target)
				}
			}
		},
	}
	res, m := run(t, spec, policy.NewAWG())
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if got := m.Mem().Read(counter); got != 32 {
		t.Fatalf("counter = %d, want 32", got)
	}
	if res.PredictAll+res.PredictOne == 0 {
		t.Fatal("AWG predictor never consulted")
	}
}
