package policy

import (
	"awgsim/internal/core"
	"awgsim/internal/cp"
	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/metrics"
	"awgsim/internal/syncmon"
	"awgsim/internal/trace"
)

// ArmStyle selects how a waiting WG's condition reaches the SyncMon.
type ArmStyle int

const (
	// ArmWaitInstr sends a separate wait instruction after the failed
	// atomic's response, leaving the window of vulnerability of Section
	// IV.C.iv: an update applied between the two is missed.
	ArmWaitInstr ArmStyle = iota
	// ArmWaitingAtomic registers the condition at the failing atomic's own
	// bank-service instant — the race-free waiting atomics of Section IV.D.
	ArmWaitingAtomic
)

// MonitorOptions configures a member of the monitor policy family.
type MonitorOptions struct {
	Name     string
	Arm      ArmStyle
	Sporadic bool                   // wake on any access, unchecked (MonRS)
	Selector syncmon.ResumeSelector // resume-count decision
	// StallPredict enables AWG's stall-period prediction: waiting WGs stall
	// for a predicted period and only context switch when it expires unmet.
	StallPredict bool
	// Fallback is the safety-net timeout after which a waiting WG retries
	// regardless of notifications (Mesa semantics demand rechecks anyway).
	// Zero disables it — demonstrating the MonR deadlock of Figure 10.
	Fallback event.Cycle
	// SyncMon / CP geometry; zero values take the paper defaults.
	SyncMonConfig *syncmon.Config
	CPConfig      *cp.Config
	// Predictor exposes AWG's predictor for counter reporting (optional;
	// set when Selector is a *core.Predictor).
	Predictor *core.Predictor
}

// Monitor is the unified monitor-family policy: MonRS-All, MonR-All,
// MonNR-All, MonNR-One, MinResume and AWG are all instances.
type Monitor struct {
	opt MonitorOptions
	m   *gpu.Machine
	sm  *syncmon.SyncMon
	cpp *cp.Processor

	stallPred *core.StallPredictor
}

// NewMonRSAll builds the sporadic monitor with wait instructions.
func NewMonRSAll() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "MonRS-All", Arm: ArmWaitInstr, Sporadic: true,
		Selector: core.ResumeAll{}, Fallback: 50_000,
	})
}

// NewMonRAll builds the condition-checking monitor with wait instructions
// (window of vulnerability present; the fallback timeout papers over it).
func NewMonRAll() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "MonR-All", Arm: ArmWaitInstr,
		Selector: core.ResumeAll{}, Fallback: 50_000,
	})
}

// NewMonNRAll builds the waiting-atomic monitor resuming all waiters.
func NewMonNRAll() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "MonNR-All", Arm: ArmWaitingAtomic,
		Selector: core.ResumeAll{}, Fallback: 50_000,
	})
}

// NewMonNROne builds the waiting-atomic monitor resuming one waiter per
// met condition; the others resume on later updates or their timeout.
func NewMonNROne() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "MonNR-One", Arm: ArmWaitingAtomic,
		Selector: core.ResumeOne{}, Fallback: 25_000,
	})
}

// NewMinResume builds the oracle of Figure 9: waiting atomics with a
// resume count that never wakes a WG whose retry cannot succeed.
func NewMinResume() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "MinResume", Arm: ArmWaitingAtomic,
		Selector: core.Oracle{}, Fallback: 50_000,
	})
}

// NewAWG builds the paper's final design: waiting atomics, Bloom-filter
// resume-count prediction, and stall-period prediction.
func NewAWG() *Monitor {
	pred := core.NewPredictor(core.DefaultPredictorConfig())
	return NewMonitor(MonitorOptions{
		Name: "AWG", Arm: ArmWaitingAtomic,
		Selector: pred, Predictor: pred,
		StallPredict: true, Fallback: 25_000,
	})
}

// NewAWGNoStallPredict builds AWG without the stall-period predictor:
// waiting WGs context switch out immediately whenever the machine is
// oversubscribed, like MonNR, but keep the resume-count prediction. The
// ablation experiment quantifies what the stall predictor buys.
func NewAWGNoStallPredict() *Monitor {
	pred := core.NewPredictor(core.DefaultPredictorConfig())
	return NewMonitor(MonitorOptions{
		Name: "AWG-nostall", Arm: ArmWaitingAtomic,
		Selector: pred, Predictor: pred,
		Fallback: 25_000,
	})
}

// NewAWGNoResumePredict builds AWG without the Bloom resume-count
// predictor (resume-all semantics) but with stall-period prediction — the
// other half of the ablation.
func NewAWGNoResumePredict() *Monitor {
	return NewMonitor(MonitorOptions{
		Name: "AWG-nopredict", Arm: ArmWaitingAtomic,
		Selector:     core.ResumeAll{},
		StallPredict: true, Fallback: 25_000,
	})
}

// NewAWGNoCache builds AWG with the SyncMon condition cache disabled, so
// every waiting condition spills to the Monitor Log and the CP carries the
// full scheduling state — the measurement configuration of Figure 13.
func NewAWGNoCache() *Monitor {
	pred := core.NewPredictor(core.DefaultPredictorConfig())
	smCfg := syncmon.DefaultConfig()
	smCfg.Sets = 0
	smCfg.WaitListSize = 0
	smCfg.LogCapacity = 16384
	return NewMonitor(MonitorOptions{
		Name: "AWG-nocache", Arm: ArmWaitingAtomic,
		Selector: pred, Predictor: pred,
		StallPredict: true, Fallback: 25_000,
		SyncMonConfig: &smCfg,
	})
}

// NewMonitor builds a custom monitor-family member.
func NewMonitor(opt MonitorOptions) *Monitor {
	if opt.Selector == nil {
		opt.Selector = core.ResumeAll{}
	}
	return &Monitor{opt: opt}
}

func (p *Monitor) Name() string { return p.opt.Name }

// Attach wires the SyncMon and CP onto the machine; an invalid SyncMon or
// CP geometry surfaces here as an error instead of a panic.
func (p *Monitor) Attach(m *gpu.Machine) error {
	p.m = m
	smCfg := syncmon.DefaultConfig()
	if p.opt.SyncMonConfig != nil {
		smCfg = *p.opt.SyncMonConfig
	}
	smCfg.Sporadic = p.opt.Sporadic
	var err error
	if p.sm, err = syncmon.New(smCfg, m, p.countingSelector(), p.onWake); err != nil {
		return err
	}
	cpCfg := cp.DefaultConfig()
	if p.opt.CPConfig != nil {
		cpCfg = *p.opt.CPConfig
	}
	if p.cpp, err = cp.New(cpCfg, m, p.sm.Log(), p.onWake); err != nil {
		return err
	}
	p.cpp.Start(func() bool { return !m.Done() })
	if p.opt.StallPredict {
		// Predictions are clamped between one L2 round trip and the
		// context-switch break-even: once the expected wait costs more
		// than saving and restoring the context, the WG should yield
		// immediately rather than squat on its CU.
		p.stallPred = core.NewStallPredictor(256, 3_000)
	}
	m.AddDiagnostic(func(d *metrics.Diagnosis) {
		d.SyncMonConditions = p.sm.Conditions()
		d.SyncMonWaiters = p.sm.Waiters()
		d.MonitorLogLen = p.sm.Log().Len()
		d.CPTableSize = p.cpp.TableSize()
	})
	m.AddSnapshotHook(p.snapshot, p.restore)
	return nil
}

// monitorSnap bundles the monitor hardware's snapshots: the SyncMon (with
// its condition cache and Monitor Log), the CP spill table, and — when the
// policy carries them — the resume-count and stall-time predictors.
type monitorSnap struct {
	sm    *syncmon.Snapshot
	cpp   *cp.Snapshot
	pred  *core.PredictorSnap
	stall *core.StallSnap
}

// Bytes estimates the snapshot's memory footprint.
func (s *monitorSnap) Bytes() int {
	n := s.sm.Bytes() + s.cpp.Bytes()
	if s.pred != nil {
		n += s.pred.Bytes()
	}
	if s.stall != nil {
		n += s.stall.Bytes()
	}
	return n
}

func (p *Monitor) snapshot() any {
	s := &monitorSnap{sm: p.sm.Snapshot(), cpp: p.cpp.Snapshot()}
	if p.opt.Predictor != nil {
		s.pred = p.opt.Predictor.Snapshot()
	}
	if p.stallPred != nil {
		s.stall = p.stallPred.Snapshot()
	}
	return s
}

func (p *Monitor) restore(v any) {
	s := v.(*monitorSnap)
	p.sm.Restore(s.sm)
	p.cpp.Restore(s.cpp)
	if s.pred != nil {
		p.opt.Predictor.Restore(s.pred)
	}
	if s.stall != nil {
		p.stallPred.Restore(s.stall)
	}
}

// SyncMon exposes the attached monitor hardware; nil before Attach. Fault
// injection degrades its capacity through this accessor.
func (p *Monitor) SyncMon() *syncmon.SyncMon { return p.sm }

// CP exposes the attached Command Processor; nil before Attach.
func (p *Monitor) CP() *cp.Processor { return p.cpp }

// countingSelector wraps the configured selector so machine counters see
// the predictor's decisions.
func (p *Monitor) countingSelector() syncmon.ResumeSelector {
	return &selectorCounter{inner: p.opt.Selector, p: p}
}

type selectorCounter struct {
	inner syncmon.ResumeSelector
	p     *Monitor
}

func (s *selectorCounter) ObserveUpdate(a memAddr, v int64) { s.inner.ObserveUpdate(a, v) }
func (s *selectorCounter) AddressUnmonitored(a memAddr) {
	s.inner.AddressUnmonitored(a)
	if s.p.opt.Predictor != nil {
		s.p.m.Count.BloomResets = s.p.opt.Predictor.Resets
	}
}
func (s *selectorCounter) Select(a memAddr, want int64, classes []syncmon.OpClass) int {
	n := s.inner.Select(a, want, classes)
	if s.p.opt.Predictor != nil {
		s.p.m.Count.PredictAll = s.p.opt.Predictor.PredictedAll
		s.p.m.Count.PredictOne = s.p.opt.Predictor.PredictedOne
	}
	return n
}

// episode is one in-flight wait; it lives in the WG's PolicyData slot.
type episode struct {
	v            gpu.Var
	op           gpu.AtomicOp
	a, b, want   int64
	cmp          gpu.Cmp
	done         func(int64)
	waiting      bool
	justWoken    bool
	earlyWake    bool // notification arrived before enterWait ran
	registeredAt event.Cycle

	// A contended episode retries thousands of times, so its continuations
	// are built once (in Wait, or lazily on first use) and threaded through
	// episode fields instead of captured per retry.
	reg        syncmon.RegisterResult // registration outcome of the attempt in flight
	lastRet    int64                  // atomic return carried between the arm legs (ArmWaitInstr)
	retry      func()                 // p.attempt(w, ep)
	atBank     func(old, new int64)   // waiting-atomic registration leg
	onResp     func(ret int64)        // atomic response leg
	armBank    func()                 // wait-instruction arm legs
	armResp    func()
	fire       func()          // fallback timeout, built on first enterWait
	onFireLoad func(val int64) // CP condition recheck for non-resident waiters
	predExpire func()          // stall-prediction expiry, built on first use
}

// episodeState is the mutable half of an episode, captured by machine
// snapshots. The identity half (condition, continuations) is immutable for
// the episode's lifetime, and the hoisted closures capture only the stable
// (w, ep, p) triple, so they survive a rewind untouched.
type episodeState struct {
	waiting, justWoken, earlyWake bool
	registeredAt                  event.Cycle
	reg                           syncmon.RegisterResult
	lastRet                       int64
}

// SaveEpisode captures the episode's mutable state for a machine snapshot.
func (ep *episode) SaveEpisode() any {
	return episodeState{
		waiting: ep.waiting, justWoken: ep.justWoken, earlyWake: ep.earlyWake,
		registeredAt: ep.registeredAt, reg: ep.reg, lastRet: ep.lastRet,
	}
}

// LoadEpisode rewinds the episode to state captured by SaveEpisode.
func (ep *episode) LoadEpisode(s any) {
	st := s.(episodeState)
	ep.waiting, ep.justWoken, ep.earlyWake = st.waiting, st.justWoken, st.earlyWake
	ep.registeredAt, ep.reg, ep.lastRet = st.registeredAt, st.reg, st.lastRet
}

func (p *Monitor) Wait(w *gpu.WG, v gpu.Var, op gpu.AtomicOp, a, b, want int64, cmp gpu.Cmp, _ gpu.WaitHint, done func(int64)) {
	ep := &episode{v: v, op: op, a: a, b: b, want: want, cmp: cmp, done: done}
	ep.retry = func() { p.attempt(w, ep) }
	if p.opt.Arm == ArmWaitingAtomic {
		ep.atBank = func(old, _ int64) {
			if !ep.cmp.Test(old, ep.want) {
				// Race-free: same bank-service instant as the op itself.
				ep.reg = p.sm.Register(w.ID(), ep.v, ep.want, ep.cmp, syncmon.ClassOf(ep.op))
			}
		}
		ep.onResp = func(ret int64) { p.resolve(w, ep, ret, ep.reg) }
	} else {
		// Wait-instruction style: plain atomic, then a separate arm. Updates
		// applied between the atomic's service and the arm's service are
		// missed — the window of vulnerability.
		ep.armBank = func() {
			ep.reg = p.sm.Register(w.ID(), ep.v, ep.want, ep.cmp, syncmon.ClassOf(ep.op))
		}
		ep.armResp = func() { p.resolve(w, ep, ep.lastRet, ep.reg) }
		ep.onResp = func(ret int64) {
			if ep.cmp.Test(ret, ep.want) {
				p.resolve(w, ep, ret, -1)
				return
			}
			ep.lastRet = ret
			p.m.IssueArm(w, ep.v, ep.armBank, ep.armResp)
		}
	}
	w.PolicyData = ep
	p.attempt(w, ep)
}

func (ep *episode) activeFor(w *gpu.WG) bool {
	cur, _ := w.PolicyData.(*episode)
	return cur == ep && ep.waiting
}

func (p *Monitor) finish(w *gpu.WG, ep *episode, ret int64) {
	ep.waiting = false
	w.PolicyData = nil
	ep.done(ret)
}

// attempt issues the synchronization atomic once and routes the outcome.
func (p *Monitor) attempt(w *gpu.WG, ep *episode) {
	p.m.SetStalled(w, false)
	ep.reg = syncmon.RegisterResult(-1)
	if p.opt.Arm == ArmWaitingAtomic {
		p.m.IssueAtomic(w, ep.v, ep.op, ep.a, ep.b, ep.atBank, ep.onResp)
		return
	}
	p.m.IssueAtomic(w, ep.v, ep.op, ep.a, ep.b, nil, ep.onResp)
}

// resolve handles an attempt's response given its registration outcome.
func (p *Monitor) resolve(w *gpu.WG, ep *episode, ret int64, reg syncmon.RegisterResult) {
	if ep.cmp.Test(ret, ep.want) {
		if ep.justWoken && p.stallPred != nil {
			p.stallPred.Record(ep.v.Addr.WordAligned(), p.m.Engine().Now()-ep.registeredAt)
		}
		p.finish(w, ep, ret)
		return
	}
	if ep.justWoken {
		// A notification resumed us but the retry failed: the wake was
		// wasted (sporadic hint, or contention stole the acquire).
		p.m.Count.WastedResumes++
		ep.justWoken = false
	}
	switch reg {
	case syncmon.Registered, syncmon.Spilled:
		if ep.earlyWake {
			// The condition was met (and our registration consumed) in the
			// window between the atomic's bank service and its response
			// reaching the CU; the resume message is already here, so retry
			// instead of waiting.
			ep.earlyWake = false
			ep.justWoken = true
			p.m.Engine().After(p.m.PollOverhead(), ep.retry)
			return
		}
		p.enterWait(w, ep)
	default: // Rejected (log full) — Mesa semantics: keep retrying.
		p.m.Engine().After(p.m.PollOverhead()+64, ep.retry)
	}
}

// enterWait parks the registered waiter: stalled on its CU, or context
// switched out when the machine is oversubscribed (after AWG's predicted
// stall period, when enabled).
func (p *Monitor) enterWait(w *gpu.WG, ep *episode) {
	ep.waiting = true
	ep.registeredAt = p.m.Engine().Now()
	p.m.Count.Stalls++
	p.m.SetStalled(w, true)

	if p.m.Oversubscribed() {
		if p.stallPred != nil {
			// AWG: stall for the predicted period first; switch out only
			// if the condition is still unmet when it expires.
			if ep.predExpire == nil {
				ep.predExpire = func() {
					if ep.activeFor(w) && w.Resident() && p.m.Oversubscribed() {
						p.m.SwitchOut(w)
					}
				}
			}
			d := p.stallPred.Predict(ep.v.Addr.WordAligned())
			p.m.Engine().After(d, ep.predExpire)
		} else {
			p.m.SwitchOut(w)
		}
	}

	if p.opt.Fallback > 0 {
		if ep.fire == nil {
			ep.onFireLoad = func(val int64) {
				if !ep.activeFor(w) {
					return
				}
				if !ep.cmp.Test(val, ep.want) {
					p.m.Engine().After(p.opt.Fallback, ep.fire)
					return
				}
				// A waiter is registered in exactly one place: the SyncMon
				// cache or, spilled, the log/CP side. Unregistering with the
				// CP after a cache hit would plant a stale tombstone there
				// that swallows this WG's next spill on the same condition.
				if !p.sm.Unregister(w.ID(), ep.v, ep.want, ep.cmp) {
					p.cpp.Unregister(w.ID(), ep.v, ep.want, ep.cmp)
				}
				p.m.Count.Timeouts++
				p.m.Trace(w, trace.TimeoutFire)
				ep.waiting = false
				ep.justWoken = true
				p.m.Deliver(w, ep.retry)
			}
			ep.fire = func() {
				if !ep.activeFor(w) {
					return
				}
				if !w.Resident() {
					// Context-switched waiter: switching it in just to poll
					// would thrash the dispatcher, so the CP re-checks the
					// condition on its behalf with an L2 read and restores the
					// WG only if the condition actually holds.
					p.m.IssueAtomic(nil, gpu.GlobalVar(ep.v.Addr), gpu.OpLoad, 0, 0, nil, ep.onFireLoad)
					return
				}
				// Stalled on the CU: withdraw the registration and recheck
				// ourselves ("eventually the stalled WGs will time out and be
				// activated"). Same single-home rule as above: the CP only
				// hears about the withdrawal when the cache did not hold it.
				if !p.sm.Unregister(w.ID(), ep.v, ep.want, ep.cmp) {
					p.cpp.Unregister(w.ID(), ep.v, ep.want, ep.cmp)
				}
				p.m.Count.Timeouts++
				p.m.Trace(w, trace.TimeoutFire)
				ep.waiting = false
				p.m.Deliver(w, ep.retry)
			}
		}
		d := p.opt.Fallback + event.Cycle(p.m.Jitter(uint64(p.opt.Fallback/4+1)))
		p.m.Engine().After(d, ep.fire)
	}
}

// onWake receives SyncMon and CP notifications.
func (p *Monitor) onWake(id gpu.WGID, addr memAddr, want int64, met bool) {
	w := p.m.WGs()[id]
	ep, _ := w.PolicyData.(*episode)
	if ep == nil || ep.v.Addr.WordAligned() != addr || ep.want != want {
		return // stale notification; the episode already ended
	}
	if !ep.waiting {
		// The waiting atomic's response is still in flight back to the CU:
		// latch the resume so resolve() retries instead of waiting.
		ep.earlyWake = true
		p.m.Count.Resumes++
		return
	}
	ep.waiting = false
	ep.justWoken = true
	p.m.Count.Resumes++
	p.m.Trace(w, trace.Resume)
	if p.stallPred != nil && met {
		p.stallPred.Record(addr, p.m.Engine().Now()-ep.registeredAt)
	}
	p.m.Deliver(w, ep.retry)
}
