package policy

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversEpisodes pins the field lists of the per-WG episode
// structs the snapshot layer saves through gpu.EpisodeState. If one fails,
// a field was added (or renamed): decide whether it mutates across the
// episode's retries — if so it belongs in SaveEpisode/LoadEpisode — and
// update the list here.
func TestSnapshotCoversEpisodes(t *testing.T) {
	// episodeState saves the six fields that change between retries:
	// waiting, justWoken, earlyWake, registeredAt, reg, lastRet. The rest
	// are fixed when the episode is built (condition identity, hoisted
	// closures, bank/response wiring) and survive in the episode object the
	// restored calendar still references.
	episodeFields := []string{
		"v", "op", "a", "b", "want", "cmp", "done", "waiting", "justWoken",
		"earlyWake", "registeredAt", "reg", "lastRet", "retry", "atBank",
		"onResp", "armBank", "armResp", "fire", "onFireLoad", "predExpire",
	}
	stateFields := []string{
		"waiting", "justWoken", "earlyWake", "registeredAt", "reg", "lastRet",
	}
	// backoffEpisode saves in full: backoff is its only mutable field.
	backoffFields := []string{"backoff"}
	// Monitor bundles SyncMon + CP + predictor states via monitorSnap.
	monitorSnapFields := []string{"sm", "cpp", "pred", "stall"}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"policy.episode", fieldNames(episode{}), episodeFields},
		{"policy.episodeState", fieldNames(episodeState{}), stateFields},
		{"policy.backoffEpisode", fieldNames(backoffEpisode{}), backoffFields},
		{"policy.monitorSnap", fieldNames(monitorSnap{}), monitorSnapFields},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating the episode snapshot:\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
