// Package litmus is the progress-model conformance harness: a seeded
// generator of small inter-WG synchronization patterns (producer/consumer
// chains, rendezvous rings, cross-WG handoff DAGs over waiting atomics),
// abstract must-terminate oracles for the four progress models of Sorensen
// et al. (arXiv:2109.06132) — OBE, HSA, linear occupancy, and the paper's
// IFP claim — and a conformance runner that executes every pattern across
// policies and occupancy levels through the simulator and reduces the
// outcomes to a matrix of which policy satisfies which model.
//
// The pattern grammar (kernels.Litmus) is restricted so abstract execution
// is confluent: signals are monotone (counter increments, one-shot flags),
// waits are monotone conditions (>=, or == on a single-write flag). The
// quiescent state of any set of fairly scheduled WGs is therefore unique,
// which makes the oracles decision procedures rather than model checkers
// over interleavings: a model's adversary only chooses *admission*, and
// memoizing on the admitted set explores every choice exactly once.
//
// A pattern that must terminate under model M at occupancy K but
// deadlocks in the simulator is a conformance violation; the shrinker
// (Shrink) reduces it — dropping WGs, dropping ops, compacting variables,
// re-running through the session run cache — to a minimal reproducer that
// RenderGoTest turns into a committable regression test.
package litmus

import (
	"fmt"

	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/sim"
)

// Model names one of the progress models a scheduler may guarantee,
// ordered weakest to strongest.
type Model int

const (
	// OBE is occupancy-bound execution: once a WG is occupant it is fairly
	// scheduled until it finishes, but admission is adversarial — any
	// pending WG may take a freed slot, in any order.
	OBE Model = iota
	// HSA is the HSA-spec model: the lowest-id unfinished WG is fairly
	// scheduled; no other WG is guaranteed anything.
	HSA
	// LinOcc is linear occupancy-bound execution: WGs are admitted in ID
	// order as slots free, and occupants are fairly scheduled (OBE with
	// in-order admission — what a real in-order dispatcher provides).
	LinOcc
	// IFP is the paper's claim: every WG is fairly scheduled regardless of
	// residency, because waiting occupants eventually yield their slots.
	IFP
)

// Models lists all models in presentation (weakest-first) order.
func Models() []Model { return []Model{OBE, HSA, LinOcc, IFP} }

func (m Model) String() string {
	switch m {
	case OBE:
		return "OBE"
	case HSA:
		return "HSA"
	case LinOcc:
		return "LinOcc"
	case IFP:
		return "IFP"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// maxOracleWGs bounds the OBE oracle's admission-set search (2^n masks).
const maxOracleWGs = 16

// MustTerminate reports whether pattern l is guaranteed to terminate under
// every scheduler satisfying model m with occupancy cap wgCap (resident-WG
// slots). For HSA and IFP the cap is irrelevant (those models speak about
// fair scheduling regardless of residency) and is ignored.
func MustTerminate(l kernels.Litmus, m Model, wgCap int) bool {
	switch m {
	case IFP:
		_, complete := l.FairFinal()
		return complete
	case HSA:
		return mustHSA(l)
	case LinOcc:
		return mustLinOcc(l, wgCap)
	case OBE:
		return mustOBE(l, wgCap)
	}
	return false
}

// quiesce runs every admitted WG fairly until none can advance, mutating
// pc/vals in place. Confluence of the grammar makes the result independent
// of iteration order.
func quiesce(l kernels.Litmus, admitted func(wg int) bool, pc []int, vals []int64) {
	for {
		progressed := false
		for wg, prog := range l.Progs {
			if !admitted(wg) {
				continue
			}
			for pc[wg] < len(prog) {
				if !litmusStepAbstract(prog[pc[wg]], vals) {
					break
				}
				pc[wg]++
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// litmusStepAbstract applies one op to the abstract memory, reporting
// false for an unsatisfied wait. It mirrors kernels.Litmus.FairFinal's
// step function.
func litmusStepAbstract(op kernels.LitmusOp, vals []int64) bool {
	switch op.Kind {
	case kernels.LitmusAdd:
		vals[op.Var]++
	case kernels.LitmusSet:
		vals[op.Var] = op.Val
	case kernels.LitmusWaitGE:
		return vals[op.Var] >= op.Val
	case kernels.LitmusWaitEq:
		return vals[op.Var] == op.Val
	case kernels.LitmusWork:
	}
	return true
}

// mustHSA decides termination under the HSA adversary, which runs only the
// lowest-id unfinished WG: the pattern must complete executed serially in
// ID order.
func mustHSA(l kernels.Litmus) bool {
	vals := make([]int64, l.NumVars())
	for _, prog := range l.Progs {
		for _, op := range prog {
			if !litmusStepAbstract(op, vals) {
				return false
			}
		}
	}
	return true
}

// mustLinOcc decides termination under linear occupancy at cap K: the
// resident set is always the lowest-id unfinished WGs within the admitted
// prefix, the prefix grows by one for every finished WG, and residents run
// fairly to quiescence between admissions.
func mustLinOcc(l kernels.Litmus, wgCap int) bool {
	n := l.NumWGs()
	if wgCap >= n {
		_, complete := l.FairFinal()
		return complete
	}
	if wgCap < 1 {
		return false
	}
	pc := make([]int, n)
	vals := make([]int64, l.NumVars())
	// Only admitted WGs can finish: an empty (or quickly completing)
	// program past the prefix frees no slot until a slot admits it.
	finished := func(limit int) int {
		f := 0
		for wg := 0; wg < limit; wg++ {
			if pc[wg] == len(l.Progs[wg]) {
				f++
			}
		}
		return f
	}
	admitted := wgCap
	for {
		limit := admitted
		quiesce(l, func(wg int) bool { return wg < limit }, pc, vals)
		f := finished(limit)
		if f == n {
			return true
		}
		next := min(n, wgCap+f)
		if next == admitted {
			return false // quiescent, unfinished, no slot frees: stuck
		}
		admitted = next
	}
}

// mustOBE decides termination under OBE at cap K by exhausting the
// admission adversary: from each quiescent admitted set (memoized — the
// grammar's confluence makes the quiescent state a function of the set),
// every choice of next admission must lead to termination. Occupants never
// leave until they finish, so a state with every slot held by a blocked WG
// is stuck.
func mustOBE(l kernels.Litmus, wgCap int) bool {
	n := l.NumWGs()
	if n > maxOracleWGs {
		return false
	}
	if wgCap >= n {
		_, complete := l.FairFinal()
		return complete
	}
	if wgCap < 1 {
		return false
	}
	memo := make(map[uint32]bool)
	var ok func(mask uint32) bool
	ok = func(mask uint32) bool {
		if v, seen := memo[mask]; seen {
			return v
		}
		pc := make([]int, n)
		vals := make([]int64, l.NumVars())
		quiesce(l, func(wg int) bool { return mask&(1<<wg) != 0 }, pc, vals)
		blocked := 0
		for wg, prog := range l.Progs {
			if mask&(1<<wg) != 0 && pc[wg] < len(prog) {
				blocked++
			}
		}
		allIn := mask == (1<<n)-1
		res := true
		switch {
		case allIn:
			res = blocked == 0
		case blocked >= wgCap:
			// Every slot is held by a blocked occupant and WGs remain
			// pending: no admission can happen, no occupant can advance.
			res = false
		default:
			for wg := 0; wg < n; wg++ {
				if mask&(1<<wg) == 0 && !ok(mask|1<<wg) {
					res = false
					break
				}
			}
		}
		memo[mask] = res
		return res
	}
	return ok(0)
}

// Occupancy is one resident-capacity level of the conformance sweep.
type Occupancy struct {
	Name string
	// Cap maps the pattern's WG count to the machine's resident-WG slots.
	Cap func(numWGs int) int
}

// Occupancies returns the sweep's three levels: full residency (every WG
// fits — any fair occupant scheduler terminates every fair-terminating
// pattern), half (ceil(n/2) slots — the oversubscribed regime the paper
// targets), and one (maximal pressure: a single slot, where only policies
// that evict waiting WGs can finish anything that waits on a later WG).
func Occupancies() []Occupancy {
	return []Occupancy{
		{Name: "full", Cap: func(n int) int { return n }},
		{Name: "half", Cap: func(n int) int { return (n + 1) / 2 }},
		{Name: "one", Cap: func(n int) int { return 1 }},
	}
}

// RunConfig builds the declarative simulator config for one pattern at one
// occupancy: a single-CU machine with wgCap resident slots, a short
// progress window (patterns are tiny, so a stall is detected quickly), and
// a cycle budget that terminates livelocked runs diagnosed. The benchmark
// name is the pattern's canonical encoding, so the config stays
// fingerprintable by the session run cache.
func RunConfig(l kernels.Litmus, policy string, wgCap int, budget uint64) sim.Config {
	g := gpu.DefaultConfig()
	g.NumCUs = 1
	g.MaxWGsPerCU = wgCap
	g.ProgressWindow = 60_000
	if budget == 0 {
		budget = 2_000_000
	}
	return sim.Config{
		Benchmark:   l.Encode(),
		Policy:      policy,
		GPU:         g,
		Params:      kernels.Params{NumWGs: l.NumWGs(), Groups: 1, WIsPerWG: 1, Iters: 1},
		CycleBudget: budget,
	}
}
