package litmus

import (
	"testing"

	"awgsim/internal/kernels"
)

// FuzzLitmusShrink drives the shrinker with fuzzed generator seeds against
// abstract (oracle-level) failure predicates and enforces its contract:
// the output validates, still fails identically to the input, is no larger
// than the input, and is a fixpoint (shrinking again changes nothing).
// Abstract predicates keep iterations fast enough for native fuzzing while
// exercising exactly the reduction logic the sim-backed hunts rely on.
func FuzzLitmusShrink(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(7), uint8(1))
	f.Add(uint64(42), uint8(2))
	f.Add(uint64(0xdeadbeef), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, mode uint8) {
		pats := Generate(seed, 8)
		l := pats[int(seed%uint64(len(pats)))]
		var fail FailFn
		switch mode % 3 {
		case 0:
			// Not fair-terminating (the broken-pattern signature).
			fail = func(c kernels.Litmus) bool {
				_, complete := c.FairFinal()
				return !complete
			}
		case 1:
			// IFP-only discriminator: fair-terminating but wedgeable by
			// in-order admission at a single slot.
			fail = func(c kernels.Litmus) bool {
				_, complete := c.FairFinal()
				return complete && !MustTerminate(c, LinOcc, 1)
			}
		default:
			// Contains a cross-WG wait the HSA adversary starves.
			fail = func(c kernels.Litmus) bool {
				return MustTerminate(c, IFP, 1) && !mustHSA(c)
			}
		}
		orig := fail(l)
		out := Shrink(l, fail)
		if err := out.Validate(); err != nil {
			t.Fatalf("shrunk pattern invalid: %v\nin:  %s\nout: %s", err, l.Encode(), out.Encode())
		}
		if !orig {
			if out.Encode() != l.Encode() {
				t.Fatalf("input does not fail but Shrink changed it: %s -> %s", l.Encode(), out.Encode())
			}
			return
		}
		if !fail(out) {
			t.Fatalf("shrunk pattern no longer fails\nin:  %s\nout: %s", l.Encode(), out.Encode())
		}
		if Size(out) > Size(l) {
			t.Fatalf("shrunk pattern grew: %d -> %d\nin:  %s\nout: %s", Size(l), Size(out), l.Encode(), out.Encode())
		}
		if again := Shrink(out, fail); Size(again) < Size(out) {
			t.Fatalf("shrink not a fixpoint: %s -> %s", out.Encode(), again.Encode())
		}
		// The reproducer must survive the codec round trip it will be
		// committed through.
		back, err := kernels.DecodeLitmus(out.Encode())
		if err != nil || back.Encode() != out.Encode() {
			t.Fatalf("shrunk pattern does not round-trip: %s (%v)", out.Encode(), err)
		}
	})
}
