package litmus

import (
	"fmt"
	"strings"

	"awgsim/internal/kernels"
	"awgsim/internal/sim"
)

// FailFn reports whether a candidate pattern still exhibits the failure
// being shrunk. Shrink only keeps reductions for which fail returns true,
// so the property — "this policy stalls on it", "the HSA oracle accepts it
// but the run deadlocks", or any abstract predicate — is preserved
// end-to-end.
type FailFn func(l kernels.Litmus) bool

// Shrink greedily reduces l while fail keeps holding: it tries dropping
// whole WGs, then single ops, then compacting the variable space, and
// restarts after every accepted reduction until a fixpoint. The result is
// 1-minimal (no single WG or op can be removed), still valid under the
// grammar, and fail(result) is true; if fail(l) is false, l is returned
// unchanged. Candidates that fail Validate are skipped, so a FailFn may
// assume its argument is well-formed.
func Shrink(l kernels.Litmus, fail FailFn) kernels.Litmus {
	if !fail(l) {
		return l
	}
	cur := l
	for {
		reduced := false
		// Drop a whole WG (only while at least two remain).
		for wg := 0; wg < cur.NumWGs() && cur.NumWGs() > 1; wg++ {
			cand := dropWG(cur, wg)
			if accept(cand, fail) {
				cur, reduced = cand, true
				wg--
			}
		}
		// Drop a single op.
		for wg := 0; wg < cur.NumWGs(); wg++ {
			for i := 0; i < len(cur.Progs[wg]); i++ {
				cand := dropOp(cur, wg, i)
				if accept(cand, fail) {
					cur, reduced = cand, true
					i--
				}
			}
		}
		// Compact variable indices (cosmetic, but it shortens the encoded
		// reproducer and keeps NumVars honest after op drops).
		if cand := compactVars(cur); cand.NumVars() < cur.NumVars() && accept(cand, fail) {
			cur, reduced = cand, true
		}
		if !reduced {
			return cur
		}
	}
}

func accept(cand kernels.Litmus, fail FailFn) bool {
	return cand.Validate() == nil && fail(cand)
}

func dropWG(l kernels.Litmus, wg int) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, 0, l.NumWGs()-1)
	for i, p := range l.Progs {
		if i == wg {
			continue
		}
		progs = append(progs, append([]kernels.LitmusOp(nil), p...))
	}
	return kernels.Litmus{Progs: progs}
}

func dropOp(l kernels.Litmus, wg, op int) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, l.NumWGs())
	for i, p := range l.Progs {
		if i != wg {
			progs[i] = append([]kernels.LitmusOp(nil), p...)
			continue
		}
		progs[i] = append(append([]kernels.LitmusOp(nil), p[:op]...), p[op+1:]...)
	}
	return kernels.Litmus{Progs: progs}
}

// compactVars renumbers variables to close the gaps op-dropping leaves,
// preserving first-use order.
func compactVars(l kernels.Litmus) kernels.Litmus {
	remap := map[int]int{}
	progs := make([][]kernels.LitmusOp, l.NumWGs())
	for i, p := range l.Progs {
		progs[i] = append([]kernels.LitmusOp(nil), p...)
	}
	for _, p := range progs {
		for j := range p {
			if p[j].Kind == kernels.LitmusWork {
				continue
			}
			nv, ok := remap[p[j].Var]
			if !ok {
				nv = len(remap)
				remap[p[j].Var] = nv
			}
			p[j].Var = nv
		}
	}
	return kernels.Litmus{Progs: progs}
}

// Size is the shrinker's metric: WGs plus total ops.
func Size(l kernels.Litmus) int { return l.NumWGs() + l.NumOps() }

// SimFailFn builds the FailFn the conformance hunts shrink with: the
// candidate still fails (stalls or errors) when the policy runs it at the
// given capacity. Probes go through sim.Run, so repeated candidates replay
// from the session run cache instead of re-simulating.
func SimFailFn(policy string, wgCap int, budget uint64) FailFn {
	return func(l kernels.Litmus) bool {
		res, err := sim.Run(RunConfig(l, policy, wgCap, budget))
		return err != nil || res.Deadlocked
	}
}

// ViolationFailFn builds the FailFn for shrinking a conformance violation:
// a candidate counts only if the oracle still demands termination under
// the violated model at the occupancy level's capacity (recomputed as WG
// drops change the pattern size) AND the policy still fails it. Plain
// SimFailFn would happily shrink a violation into a trivially broken
// pattern no model requires terminating; this keeps the reproducer a
// violation all the way down.
func ViolationFailFn(policy string, model Model, occ Occupancy, budget uint64) FailFn {
	return func(l kernels.Litmus) bool {
		wgCap := occ.Cap(l.NumWGs())
		if !MustTerminate(l, model, wgCap) {
			return false
		}
		res, err := sim.Run(RunConfig(l, policy, wgCap, budget))
		return err != nil || res.Deadlocked
	}
}

// RenderGoTest renders a shrunk reproducer as a committable regression
// test asserting the *required* behaviour: the policy must complete the
// pattern at the given capacity (the conformance claim the original,
// unshrunk case violated). pkg is the target package name; testName must
// be a valid Go identifier suffix.
func RenderGoTest(l kernels.Litmus, testName, pkg, policy string, wgCap int, model Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	b.WriteString("import (\n\t\"testing\"\n\n\t\"awgsim/internal/kernels\"\n\t\"awgsim/internal/litmus\"\n\t\"awgsim/internal/sim\"\n)\n\n")
	fmt.Fprintf(&b, "// Test%s pins a litmus-harness reproducer: the pattern below must\n", testName)
	fmt.Fprintf(&b, "// terminate under the %s progress model at %d resident slot(s), so the\n", model, wgCap)
	fmt.Fprintf(&b, "// %s policy has to complete it. Shrunk from a generated pattern by\n", policy)
	b.WriteString("// litmus.Shrink; see DESIGN.md §9.\n")
	fmt.Fprintf(&b, "func Test%s(t *testing.T) {\n", testName)
	fmt.Fprintf(&b, "\tl, err := kernels.DecodeLitmus(%q)\n", l.Encode())
	b.WriteString("\tif err != nil {\n\t\tt.Fatalf(\"decode: %v\", err)\n\t}\n")
	fmt.Fprintf(&b, "\tres, err := sim.Run(litmus.RunConfig(l, %q, %d, 0))\n", policy, wgCap)
	b.WriteString("\tif err != nil {\n\t\tt.Fatalf(\"run: %v\", err)\n\t}\n")
	b.WriteString("\tif res.Deadlocked {\n")
	fmt.Fprintf(&b, "\t\tt.Fatalf(\"%s stalled on %%s at cap %d: %%s\", res.Benchmark, res.Diagnosis.Summary())\n", policy, wgCap)
	b.WriteString("\t}\n}\n")
	return b.String()
}
