package litmus

import (
	"testing"

	"awgsim/internal/fault"
	"awgsim/internal/sim"
)

// This file commits the harness's shrunk minimal reproducers as policy
// regression tests, in the exact form RenderGoTest emits them. Each
// pattern must terminate under the named progress model at the given
// capacity, so every IFP-providing policy has to complete it — and the
// non-IFP Baseline's documented failure on the IFP-only shapes is pinned
// too, diagnosis included.

// reproCases are the canonical minimal discriminators the shrinker
// converges to, one per progress-model boundary.
var reproCases = []struct {
	name    string
	pattern string
	model   Model
	wgCap   int
}{
	// The two-WG reverse handoff: the minimal IFP-only pattern. WG 0
	// wedges the single slot until the policy evicts it so WG 1 can
	// publish.
	{"revchain", "litmus:1:e0.1;s0.1", IFP, 1},
	// The three-WG ring at two slots: LinOcc-must (the admitted prefix
	// always contains a satisfiable waiter) — in-order admission plus
	// fair occupants has to finish it even without eviction.
	{"ring", "litmus:1:a0,g1.1;a1,g2.1;a2,g0.1", LinOcc, 2},
	// The gather at one slot: IFP-only — every WG must take a turn
	// bumping the counter before anyone's wait resolves.
	{"gather", "litmus:1:a0,g0.3;a0,g0.3;a0,g0.3", IFP, 1},
	// The broadcast at one slot with the publisher last: wake-one resume
	// policies must not strand the remaining eq-waiters.
	{"scatter", "litmus:1:e0.1;e0.1;s0.1", IFP, 1},
}

// TestLitmusReprosComplete: every policy that claims the violated model's
// guarantee must complete each reproducer at its capacity. All policies
// in the suite claim LinOcc (the dispatcher admits in ID order and
// occupants share the machine fairly); only fault.ProvidesIFP policies
// claim IFP.
func TestLitmusReprosComplete(t *testing.T) {
	for _, tc := range reproCases {
		l := mustDecode(t, tc.pattern)
		if !MustTerminate(l, tc.model, tc.wgCap) {
			t.Fatalf("%s: %s no longer %s-must at cap %d; reproducer rotted",
				tc.name, tc.pattern, tc.model, tc.wgCap)
		}
		for _, policy := range sim.Policies() {
			if tc.model == IFP && !fault.ProvidesIFP(policy) {
				continue
			}
			res, err := sim.Run(RunConfig(l, policy, tc.wgCap, 0))
			if err != nil {
				t.Errorf("%s: %s at cap %d: %v", tc.name, policy, tc.wgCap, err)
				continue
			}
			if res.Deadlocked {
				t.Errorf("%s: %s stalled at cap %d (%s-must): %s",
					tc.name, policy, tc.wgCap, tc.model, res.Diagnosis.Summary())
			}
		}
	}
}

// TestLitmusReprosBaselineDiagnosed pins the other half of the contract:
// Baseline's expected failure on the IFP-only reproducers must stay a
// *diagnosed* stall — deadlocked, with the blocking condition identified —
// not a hang and not a verify-failing completion.
func TestLitmusReprosBaselineDiagnosed(t *testing.T) {
	for _, tc := range reproCases {
		if tc.model != IFP {
			continue
		}
		l := mustDecode(t, tc.pattern)
		res, err := sim.Run(RunConfig(l, "Baseline", tc.wgCap, 0))
		if err != nil {
			t.Errorf("%s: Baseline at cap %d: %v", tc.name, tc.wgCap, err)
			continue
		}
		if !res.Deadlocked || res.Diagnosis == nil {
			t.Errorf("%s: Baseline at cap %d: want a diagnosed stall, got deadlocked=%v diagnosis=%v",
				tc.name, tc.wgCap, res.Deadlocked, res.Diagnosis)
		}
	}
}
