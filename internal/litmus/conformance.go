package litmus

import (
	"fmt"
	"sort"
	"strings"

	"awgsim/internal/fault"
	"awgsim/internal/kernels"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// Cell is one simulated (pattern, policy, occupancy) outcome annotated
// with the oracle verdicts for that pattern at that capacity.
type Cell struct {
	Pattern int // index into the sweep's pattern slice
	Policy  string
	Occ     string
	Cap     int

	Result metrics.Result
	Err    error

	// Must[m] reports whether the pattern must terminate under model m at
	// this cell's capacity.
	Must [4]bool
}

// Failed reports whether the run did not complete: construction/verify
// error or a diagnosed (or undiagnosed) stall.
func (c Cell) Failed() bool { return c.Err != nil || c.Result.Deadlocked }

// Violation is one conformance failure: the strongest claim broken by a
// cell, plus whether it is the expected shape for a policy that never
// promised IFP.
type Violation struct {
	Cell  Cell
	Model Model
	// Expected marks the documented outcome: a non-IFP policy (per
	// fault.ProvidesIFP) failing a pattern only IFP requires. Everything
	// else is a harness-confirmed bug.
	Expected bool
	Detail   string
}

// Sweep is one full conformance run.
type Sweep struct {
	Patterns   []kernels.Litmus
	Policies   []string
	Occupancy  []Occupancy
	Cells      []Cell
	Violations []Violation
}

// Conformance runs every pattern x policy x occupancy cell through the
// session pool (so the run cache and fork planner apply) and checks each
// against the four progress-model oracles. budget is the per-run cycle
// cap (0 = RunConfig's default); workers <= 0 selects GOMAXPROCS.
func Conformance(patterns []kernels.Litmus, policies []string, occs []Occupancy, budget uint64, workers int) *Sweep {
	s := &Sweep{Patterns: patterns, Policies: policies, Occupancy: occs}
	var jobs []sim.Job
	for pi, l := range patterns {
		for _, pol := range policies {
			for _, occ := range occs {
				wgCap := occ.Cap(l.NumWGs())
				cell := Cell{Pattern: pi, Policy: pol, Occ: occ.Name, Cap: wgCap}
				for _, m := range Models() {
					cell.Must[m] = MustTerminate(l, m, wgCap)
				}
				s.Cells = append(s.Cells, cell)
				jobs = append(jobs, sim.Job{Config: RunConfig(l, pol, wgCap, budget)})
			}
		}
	}
	outs := sim.RunAllWorkers(jobs, workers)
	for i := range s.Cells {
		s.Cells[i].Result, s.Cells[i].Err = outs[i].Result, outs[i].Err
		s.check(&s.Cells[i])
	}
	return s
}

// check appends cell's conformance violations, if any. A cell can break at
// most one model claim meaningfully — the strongest one it fails — but a
// *hang* (stall without a structured diagnosis) and a *corruption*
// (completing a pattern no fair scheduler completes, caught by the
// benchmark's Verify and surfaced as Err on a completed run) are always
// violations regardless of the oracles.
func (s *Sweep) check(c *Cell) {
	l := s.Patterns[c.Pattern]
	name := l.Encode()
	if !c.Failed() {
		return // completed and verified; nothing to report
	}
	if c.Err == nil && c.Result.Deadlocked && c.Result.Diagnosis == nil {
		s.Violations = append(s.Violations, Violation{
			Cell: *c, Model: IFP,
			Detail: fmt.Sprintf("%s on %s at occ=%s: stalled without a diagnosis", c.Policy, name, c.Occ),
		})
		return
	}
	// Strongest broken model first: a pattern every OBE scheduler finishes
	// is a stronger indictment than one only IFP promises.
	for _, m := range []Model{OBE, HSA, LinOcc, IFP} {
		if !c.Must[m] {
			continue
		}
		v := Violation{
			Cell: *c, Model: m,
			Expected: m == IFP && onlyIFPMust(c.Must) && !fault.ProvidesIFP(c.Policy),
			Detail: fmt.Sprintf("%s on %s at occ=%s (cap %d): must terminate under %s, got %s",
				c.Policy, name, c.Occ, c.Cap, m, outcomeString(c)),
		}
		s.Violations = append(s.Violations, v)
		return
	}
	if c.Err != nil {
		// Failed a pattern no model requires terminating — only an error
		// (e.g. a construction failure) is reportable; a diagnosed stall
		// on a broken pattern is the correct outcome.
		s.Violations = append(s.Violations, Violation{
			Cell: *c, Model: IFP,
			Detail: fmt.Sprintf("%s on %s at occ=%s: %v", c.Policy, name, c.Occ, c.Err),
		})
	}
}

// onlyIFPMust reports whether IFP is the only model requiring termination.
func onlyIFPMust(must [4]bool) bool {
	return must[IFP] && !must[OBE] && !must[HSA] && !must[LinOcc]
}

func outcomeString(c *Cell) string {
	switch {
	case c.Err != nil:
		return fmt.Sprintf("error: %v", c.Err)
	case c.Result.Deadlocked && c.Result.Diagnosis != nil:
		return "diagnosed stall (" + c.Result.Diagnosis.Summary() + ")"
	case c.Result.Deadlocked:
		return "undiagnosed stall"
	}
	return "completed"
}

// Unexpected returns the violations that are not documented non-IFP
// outcomes — the ones that must each be fixed in-tree.
func (s *Sweep) Unexpected() []Violation {
	var out []Violation
	for _, v := range s.Violations {
		if !v.Expected {
			out = append(out, v)
		}
	}
	return out
}

// Matrix reduces the sweep to the conformance table: one row per policy x
// occupancy, one column per progress model, each cell "pass a/b" where b
// counts the patterns that model requires terminating at that occupancy
// and a counts how many the policy completed. Expected non-IFP failures
// render as "no-IFP"; unexpected violations as "FAIL".
func (s *Sweep) Matrix(title string) *metrics.Table {
	type key struct {
		policy, occ string
		model       Model
	}
	must := map[key]int{}
	pass := map[key]int{}
	expected := map[key]bool{}
	failed := map[key]bool{}
	for _, c := range s.Cells {
		for _, m := range Models() {
			if !c.Must[m] {
				continue
			}
			k := key{c.Policy, c.Occ, m}
			must[k]++
			if !c.Failed() {
				pass[k]++
			}
		}
	}
	for _, v := range s.Violations {
		k := key{v.Cell.Policy, v.Cell.Occ, v.Model}
		if v.Expected {
			expected[k] = true
		} else {
			failed[k] = true
		}
	}
	cols := []string{"Policy", "Occupancy"}
	for _, m := range Models() {
		cols = append(cols, m.String())
	}
	t := metrics.NewTable(title, cols...)
	for _, pol := range s.Policies {
		for _, occ := range s.Occupancy {
			row := []any{pol, occ.Name}
			for _, m := range Models() {
				k := key{pol, occ.Name, m}
				cell := fmt.Sprintf("pass %d/%d", pass[k], must[k])
				switch {
				case failed[k]:
					cell = fmt.Sprintf("FAIL %d/%d", pass[k], must[k])
				case expected[k]:
					cell = fmt.Sprintf("no-IFP %d/%d", pass[k], must[k])
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Summary renders the violation list, expected outcomes last, pattern
// text truncated for readability; deterministic for equal sweeps.
func (s *Sweep) Summary() string {
	if len(s.Violations) == 0 {
		return "no violations"
	}
	vs := append([]Violation(nil), s.Violations...)
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Expected != vs[j].Expected {
			return !vs[i].Expected
		}
		return vs[i].Detail < vs[j].Detail
	})
	var b strings.Builder
	for _, v := range vs {
		tag := "VIOLATION"
		if v.Expected {
			tag = "expected"
		}
		fmt.Fprintf(&b, "[%s] %s\n", tag, v.Detail)
	}
	return strings.TrimRight(b.String(), "\n")
}
