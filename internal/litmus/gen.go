package litmus

import (
	"fmt"

	"awgsim/internal/kernels"
)

// splitmix is the splitmix64 step, the same generator discipline
// fault.Random and the machine's jitter stream use, so a litmus sweep is
// addressed by a single uint64 seed.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	x := *state
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Family names one generator shape. Every family except FamBroken
// constructs patterns that complete under fair scheduling (they are
// IFP-must by construction); where they sit below IFP — HSA-must,
// LinOcc-must at some capacity, OBE-must — is what the oracles decide and
// the conformance matrix tests.
type Family int

const (
	// FamChain is a forward producer/consumer chain: WG i publishes flag i
	// after consuming flag i-1. Signals flow in admission order, so even a
	// serial in-order scheduler (the HSA adversary) completes it.
	FamChain Family = iota
	// FamRevChain is the chain reversed: WG n-1 publishes first and WG 0
	// consumes last, so signals flow *against* admission order — the
	// minimal shape that separates IFP from every occupancy-bound model.
	FamRevChain
	// FamRing is a rendezvous ring: each WG signals its own counter then
	// awaits its successor's. Completes in-order at capacity >= 2 (the
	// prefix always contains a satisfied waiter) but an adversarial
	// admission can wedge it, splitting LinOcc from OBE.
	FamRing
	// FamRing2 is the ring unrolled for two rounds, giving the waits
	// history (targets > 1) and doubling the chances a wake-up policy
	// loses a notification between rounds.
	FamRing2
	// FamDAG is a random handoff DAG built append-only: every wait targets
	// a signal count already appended, so the whole pattern is fair-
	// terminating by construction while the dependency shape is arbitrary.
	FamDAG
	// FamGather is an all-to-all rendezvous on one counter: n adds, then
	// everyone awaits the full count — the centralized-barrier shape.
	FamGather
	// FamScatter is one publisher and n-1 eq-waiters on a single flag —
	// the broadcast shape that stresses wake-one resume policies.
	FamScatter
	// FamBroken appends a wait on a never-written flag to an otherwise
	// fair-terminating pattern: no model must terminate it, and every
	// policy must deadlock *diagnosed* (and certainly must not "complete"
	// by corrupting the wait).
	FamBroken
)

func (f Family) String() string {
	switch f {
	case FamChain:
		return "chain"
	case FamRevChain:
		return "revchain"
	case FamRing:
		return "ring"
	case FamRing2:
		return "ring2"
	case FamDAG:
		return "dag"
	case FamGather:
		return "gather"
	case FamScatter:
		return "scatter"
	case FamBroken:
		return "broken"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// families in generation rotation order. Broken appears once per rotation,
// so roughly one pattern in eight exercises the deadlock-diagnosis path.
var families = []Family{
	FamChain, FamRevChain, FamRing, FamGather,
	FamDAG, FamScatter, FamRing2, FamBroken,
}

// Generate emits count patterns addressed by seed, deterministically:
// equal (seed, count) always yields the same patterns, and the i-th
// pattern does not depend on count. Families rotate; WG counts, work
// skew, and DAG shapes draw from the seeded stream.
func Generate(seed uint64, count int) []kernels.Litmus {
	state := seed
	out := make([]kernels.Litmus, 0, count)
	for i := 0; i < count; i++ {
		fam := families[i%len(families)]
		n := 2 + int(splitmix(&state)%5) // 2..6 WGs
		var l kernels.Litmus
		switch fam {
		case FamChain:
			l = genChain(n, &state, false)
		case FamRevChain:
			l = genChain(n, &state, true)
		case FamRing:
			l = genRing(n, &state, 1)
		case FamRing2:
			l = genRing(n, &state, 2)
		case FamDAG:
			l = genDAG(n, &state)
		case FamGather:
			l = genGather(n, &state)
		case FamScatter:
			l = genScatter(n, &state)
		case FamBroken:
			l = breakPattern(genDAG(n, &state), &state)
		}
		if err := l.Validate(); err != nil {
			// A generator family violating its own grammar is a bug, not
			// an input condition.
			panic(fmt.Sprintf("litmus: generated invalid %s pattern: %v", fam, err))
		}
		out = append(out, l)
	}
	return out
}

// maybeWork prepends a small compute op with probability 1/2, skewing
// arrival times the way real rounds do.
func maybeWork(state *uint64) []kernels.LitmusOp {
	if splitmix(state)%2 == 0 {
		return []kernels.LitmusOp{{Kind: kernels.LitmusWork, Val: int64(20 + splitmix(state)%180)}}
	}
	return nil
}

// genChain builds the (possibly reversed) producer/consumer chain over
// one-shot flags.
func genChain(n int, state *uint64, reversed bool) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, n)
	for i := 0; i < n; i++ {
		prog := maybeWork(state)
		// Forward: WG i consumes flag i-1 and publishes flag i.
		// Reversed: WG i consumes flag i and publishes flag i-1, so the
		// publisher of each flag has a *higher* id than its consumer.
		if reversed {
			if i < n-1 {
				prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusWaitEq, Var: i, Val: 1})
			}
			if i > 0 {
				prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusSet, Var: i - 1, Val: 1})
			}
		} else {
			if i > 0 {
				prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusWaitEq, Var: i - 1, Val: 1})
			}
			if i < n-1 {
				prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusSet, Var: i, Val: 1})
			}
		}
		progs[i] = prog
	}
	return kernels.Litmus{Progs: progs}
}

// genRing builds the rendezvous ring over per-WG counters, unrolled for
// the given number of rounds: in round r, WG i bumps counter i then awaits
// counter (i+1) mod n reaching r.
func genRing(n int, state *uint64, rounds int) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, n)
	for i := 0; i < n; i++ {
		prog := maybeWork(state)
		for r := 1; r <= rounds; r++ {
			prog = append(prog,
				kernels.LitmusOp{Kind: kernels.LitmusAdd, Var: i},
				kernels.LitmusOp{Kind: kernels.LitmusWaitGE, Var: (i + 1) % n, Val: int64(r)})
		}
		progs[i] = prog
	}
	return kernels.Litmus{Progs: progs}
}

// genGather builds the all-to-all rendezvous: everyone bumps counter 0,
// everyone awaits the full count.
func genGather(n int, state *uint64) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, n)
	for i := 0; i < n; i++ {
		progs[i] = append(maybeWork(state),
			kernels.LitmusOp{Kind: kernels.LitmusAdd, Var: 0},
			kernels.LitmusOp{Kind: kernels.LitmusWaitGE, Var: 0, Val: int64(n)})
	}
	return kernels.Litmus{Progs: progs}
}

// genScatter builds the broadcast: a seeded publisher sets the flag, every
// other WG eq-waits on it.
func genScatter(n int, state *uint64) kernels.Litmus {
	pub := int(splitmix(state) % uint64(n))
	progs := make([][]kernels.LitmusOp, n)
	for i := 0; i < n; i++ {
		prog := maybeWork(state)
		if i == pub {
			prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusSet, Var: 0, Val: 1})
		} else {
			prog = append(prog, kernels.LitmusOp{Kind: kernels.LitmusWaitEq, Var: 0, Val: 1})
		}
		progs[i] = prog
	}
	return kernels.Litmus{Progs: progs}
}

// genDAG builds a random handoff DAG over counters, append-only: ops are
// appended to randomly chosen WG programs, and a wait is only ever
// appended with a target no greater than the adds already appended to its
// variable. Every wait's producers therefore precede it in append order,
// which makes the pattern terminate under fair scheduling by induction on
// that order — while the WG-to-WG dependency shape is arbitrary.
func genDAG(n int, state *uint64) kernels.Litmus {
	progs := make([][]kernels.LitmusOp, n)
	nvars := 1 + int(splitmix(state)%uint64(n))
	adds := make([]int64, nvars)
	steps := n * (2 + int(splitmix(state)%3))
	for s := 0; s < steps; s++ {
		wg := int(splitmix(state) % uint64(n))
		v := int(splitmix(state) % uint64(nvars))
		switch splitmix(state) % 4 {
		case 0, 1: // signal
			progs[wg] = append(progs[wg], kernels.LitmusOp{Kind: kernels.LitmusAdd, Var: v})
			adds[v]++
		case 2: // handoff wait on anything already published
			if adds[v] > 0 {
				target := 1 + int64(splitmix(state)%uint64(adds[v]))
				progs[wg] = append(progs[wg], kernels.LitmusOp{Kind: kernels.LitmusWaitGE, Var: v, Val: target})
			} else {
				progs[wg] = append(progs[wg], kernels.LitmusOp{Kind: kernels.LitmusAdd, Var: v})
				adds[v]++
			}
		default: // work
			progs[wg] = append(progs[wg], kernels.LitmusOp{Kind: kernels.LitmusWork, Val: int64(20 + splitmix(state)%120)})
		}
	}
	// Guarantee at least one cross-WG edge so the pattern is not vacuous:
	// WG 0 bumps, the last WG awaits it.
	progs[0] = append([]kernels.LitmusOp{{Kind: kernels.LitmusAdd, Var: 0}}, progs[0]...)
	adds[0]++
	progs[n-1] = append(progs[n-1], kernels.LitmusOp{Kind: kernels.LitmusWaitGE, Var: 0, Val: 1})
	return kernels.Litmus{Progs: progs}
}

// breakPattern appends an eq-wait on a fresh, never-written flag to a
// seeded WG: the result cannot terminate under any scheduler, fair or not.
func breakPattern(l kernels.Litmus, state *uint64) kernels.Litmus {
	wg := int(splitmix(state) % uint64(l.NumWGs()))
	dead := l.NumVars()
	l.Progs[wg] = append(l.Progs[wg], kernels.LitmusOp{Kind: kernels.LitmusWaitEq, Var: dead, Val: 1})
	return l
}
