package litmus

import (
	"testing"

	"awgsim/internal/kernels"
)

func mustDecode(t *testing.T, name string) kernels.Litmus {
	t.Helper()
	l, err := kernels.DecodeLitmus(name)
	if err != nil {
		t.Fatalf("DecodeLitmus(%q): %v", name, err)
	}
	return l
}

// TestOracleChain: a forward chain completes serially in ID order, so
// HSA, LinOcc, and IFP must terminate it at any capacity. OBE must not at
// reduced capacity: the admission adversary seats the *last* WG first and
// wedges every slot on a wait only earlier WGs can satisfy.
func TestOracleChain(t *testing.T) {
	chain := mustDecode(t, "litmus:1:s0.1;e0.1,s1.1;e1.1")
	for _, m := range []Model{HSA, LinOcc, IFP} {
		for _, k := range []int{1, 2, 3} {
			if !MustTerminate(chain, m, k) {
				t.Errorf("chain: MustTerminate(%s, cap %d) = false, want true", m, k)
			}
		}
	}
	if MustTerminate(chain, OBE, 1) || MustTerminate(chain, OBE, 2) {
		t.Errorf("chain: OBE-must at reduced capacity, but reverse admission wedges the slots")
	}
	if !MustTerminate(chain, OBE, 3) {
		t.Errorf("chain: not OBE-must at full capacity")
	}
}

// TestOracleRevChain: the reverse chain (signals flow against admission
// order) is the minimal IFP-only discriminator: under any occupancy-bound
// model a single slot wedges on WG 0, and the HSA adversary starves the
// publisher forever.
func TestOracleRevChain(t *testing.T) {
	rev := mustDecode(t, "litmus:1:e0.1;s0.1")
	if MustTerminate(rev, HSA, 2) {
		t.Errorf("revchain: HSA-must, but the HSA adversary never runs WG 1")
	}
	for _, m := range []Model{OBE, LinOcc} {
		if MustTerminate(rev, m, 1) {
			t.Errorf("revchain: %s-must at cap 1, but WG 0 wedges the only slot", m)
		}
		if !MustTerminate(rev, m, 2) {
			t.Errorf("revchain: not %s-must at cap 2, but both WGs fit", m)
		}
	}
	if !MustTerminate(rev, IFP, 1) {
		t.Errorf("revchain: not IFP-must, but it completes under fair scheduling")
	}
}

// TestOracleRing: the rendezvous ring separates LinOcc from OBE: in-order
// admission always keeps a satisfiable waiter resident at cap >= 2, but an
// adversarial admission picking non-adjacent WGs wedges every slot.
func TestOracleRing(t *testing.T) {
	ring := mustDecode(t, "litmus:1:a0,g1.1;a1,g2.1;a2,g3.1;a3,g0.1")
	if MustTerminate(ring, HSA, 4) {
		t.Errorf("ring: HSA-must, but WG 0 blocks serially")
	}
	if MustTerminate(ring, LinOcc, 1) {
		t.Errorf("ring: LinOcc-must at cap 1")
	}
	if !MustTerminate(ring, LinOcc, 2) {
		t.Errorf("ring: not LinOcc-must at cap 2, but the prefix chain completes")
	}
	if MustTerminate(ring, OBE, 2) {
		t.Errorf("ring: OBE-must at cap 2, but admitting WGs 0 and 2 wedges both slots")
	}
	if !MustTerminate(ring, OBE, 4) {
		t.Errorf("ring: not OBE-must at full capacity")
	}
	if !MustTerminate(ring, IFP, 1) {
		t.Errorf("ring: not IFP-must")
	}
}

// TestOracleBroken: a wait on a never-written flag terminates under no
// model, at any capacity.
func TestOracleBroken(t *testing.T) {
	broken := mustDecode(t, "litmus:1:a0,e1.1;a0")
	for _, m := range Models() {
		if MustTerminate(broken, m, 2) {
			t.Errorf("broken: MustTerminate(%s) = true", m)
		}
	}
}

// TestOracleEmptyProgramAdmission pins the admission subtlety a hunt
// exposed: an empty program past the admitted prefix must not count as
// finished (it frees no slot until admitted). Here WG 0 waits on WG 1's
// signal, WG 2 is empty: at cap 1 the prefix is {0}, which wedges — LinOcc
// must not claim termination just because WG 2 has nothing to do.
func TestOracleEmptyProgramAdmission(t *testing.T) {
	l := kernels.Litmus{Progs: [][]kernels.LitmusOp{
		{{Kind: kernels.LitmusWaitGE, Var: 0, Val: 1}},
		{{Kind: kernels.LitmusAdd, Var: 0}},
		nil,
	}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if MustTerminate(l, LinOcc, 1) {
		t.Errorf("LinOcc-must at cap 1 with an empty trailing program, but the prefix {0} wedges")
	}
	if !MustTerminate(l, LinOcc, 2) {
		t.Errorf("not LinOcc-must at cap 2")
	}
}

// TestOracleContainments: must-terminate sets are ordered by model
// strength — anything OBE guarantees, LinOcc guarantees; anything HSA or
// LinOcc guarantees, IFP guarantees (the LinOcc adversary is one OBE
// adversary; the fair scheduler subsumes them all).
func TestOracleContainments(t *testing.T) {
	for _, l := range Generate(42, 64) {
		n := l.NumWGs()
		for _, k := range []int{1, (n + 1) / 2, n} {
			obe := MustTerminate(l, OBE, k)
			hsa := MustTerminate(l, HSA, k)
			lin := MustTerminate(l, LinOcc, k)
			ifp := MustTerminate(l, IFP, k)
			if obe && !lin {
				t.Errorf("%s cap %d: OBE-must but not LinOcc-must", l.Encode(), k)
			}
			if hsa && !ifp {
				t.Errorf("%s cap %d: HSA-must but not IFP-must", l.Encode(), k)
			}
			if lin && !ifp {
				t.Errorf("%s cap %d: LinOcc-must but not IFP-must", l.Encode(), k)
			}
			if hsa && !lin {
				t.Errorf("%s cap %d: HSA-must but not LinOcc-must", l.Encode(), k)
			}
		}
	}
}

// TestGenerateDeterministic: equal seeds yield identical pattern sets, the
// i-th pattern is count-independent, and different seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(9, 32)
	b := Generate(9, 32)
	for i := range a {
		if a[i].Encode() != b[i].Encode() {
			t.Fatalf("pattern %d differs across equal seeds", i)
		}
	}
	short := Generate(9, 8)
	for i := range short {
		if short[i].Encode() != a[i].Encode() {
			t.Fatalf("pattern %d depends on count", i)
		}
	}
	c := Generate(10, 32)
	same := 0
	for i := range c {
		if c[i].Encode() == a[i].Encode() {
			same++
		}
	}
	if same == len(c) {
		t.Fatalf("seeds 9 and 10 generated identical sweeps")
	}
}

// TestGenerateFairTermination: every family except broken constructs
// fair-terminating (IFP-must) patterns; the broken family never does.
func TestGenerateFairTermination(t *testing.T) {
	pats := Generate(3, 64)
	brokenSeen := 0
	for i, l := range pats {
		_, complete := l.FairFinal()
		if families[i%len(families)] == FamBroken {
			brokenSeen++
			if complete {
				t.Errorf("pattern %d (broken): completes under fair scheduling", i)
			}
			continue
		}
		if !complete {
			t.Errorf("pattern %d (%s): does not complete under fair scheduling: %s",
				i, families[i%len(families)], l.Encode())
		}
	}
	if brokenSeen == 0 {
		t.Fatalf("no broken patterns in 64; family rotation wrong")
	}
}
