package litmus

import (
	"strings"
	"testing"

	"awgsim/internal/sim"
)

// quickPolicies mirrors the experiment's quick policy set.
var testPolicies = []string{"Baseline", "Timeout", "MonNR-One", "AWG"}

// TestConformanceSweep runs a small generated sweep end-to-end and checks
// the invariant the whole harness exists to enforce: IFP-providing
// policies pass every cell; Baseline fails only patterns that nothing
// weaker than IFP requires, and those failures are marked expected.
func TestConformanceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a few hundred simulations")
	}
	pats := Generate(1, 16)
	s := Conformance(pats, testPolicies, Occupancies(), 0, 0)
	if got, want := len(s.Cells), len(pats)*len(testPolicies)*len(Occupancies()); got != want {
		t.Fatalf("%d cells, want %d", got, want)
	}
	if un := s.Unexpected(); len(un) > 0 {
		t.Fatalf("%d unexpected conformance violations, first: %s", len(un), un[0].Detail)
	}
	sawExpected := false
	for _, v := range s.Violations {
		if v.Cell.Policy != "Baseline" {
			t.Errorf("expected violation attributed to %s (only Baseline is non-IFP here): %s", v.Cell.Policy, v.Detail)
		}
		if v.Model != IFP {
			t.Errorf("expected violation against %s, want IFP only: %s", v.Model, v.Detail)
		}
		sawExpected = true
	}
	if !sawExpected {
		t.Errorf("no expected Baseline IFP failures in %d patterns; sweep too weak to discriminate", len(pats))
	}
	// The matrix renders a row per policy x occupancy and never mixes
	// FAIL into a clean sweep.
	m := s.Matrix("test").String()
	if strings.Contains(m, "FAIL") {
		t.Errorf("matrix contains FAIL cells:\n%s", m)
	}
	if !strings.Contains(m, "no-IFP") {
		t.Errorf("matrix has no expected no-IFP cells:\n%s", m)
	}
}

// TestConformanceDeterministic: two sweeps over the same patterns render
// byte-identical matrices and summaries (the property the experiment's
// golden pin relies on).
func TestConformanceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a few hundred simulations")
	}
	pats := Generate(4, 8)
	a := Conformance(pats, testPolicies, Occupancies(), 0, 2)
	b := Conformance(pats, testPolicies, Occupancies(), 0, 3)
	if a.Matrix("d").String() != b.Matrix("d").String() {
		t.Fatalf("matrix differs across worker counts")
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summary differs across worker counts")
	}
}

// TestShrinkViolationToMinimal shrinks a real Baseline IFP violation down
// and checks the canonical minimum comes out: a generated reverse chain
// (with work padding and extra WGs) must reduce to the two-WG handoff.
func TestShrinkViolationToMinimal(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking re-runs simulations")
	}
	rev := mustDecode(t, "litmus:1:c50,e0.1;c80,e1.1,s0.1;e2.1,s1.1;s2.1")
	occOne := Occupancies()[2]
	fail := ViolationFailFn("Baseline", IFP, occOne, 0)
	if !fail(rev) {
		t.Fatalf("Baseline completes the reverse chain at cap 1; nothing to shrink")
	}
	min := Shrink(rev, fail)
	if !fail(min) {
		t.Errorf("shrunk pattern no longer fails: %s", min.Encode())
	}
	if got, want := min.Encode(), "litmus:1:e0.1;s0.1"; got != want {
		t.Errorf("shrunk to %s (size %d), want the canonical minimum %s", got, Size(min), want)
	}
}

// TestRenderGoTest renders a reproducer and checks it carries the decode
// call, the policy, and the capacity — the pieces that make it runnable
// when committed.
func TestRenderGoTest(t *testing.T) {
	l := mustDecode(t, "litmus:1:e0.1;s0.1")
	src := RenderGoTest(l, "LitmusRevChainTimeout", "policy_test", "Timeout", 1, IFP)
	for _, want := range []string{
		"package policy_test",
		"func TestLitmusRevChainTimeout(t *testing.T)",
		`kernels.DecodeLitmus("litmus:1:e0.1;s0.1")`,
		`litmus.RunConfig(l, "Timeout", 1, 0)`,
		"res.Deadlocked",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered test missing %q:\n%s", want, src)
		}
	}
}

// TestSimFailFnUsesCache: a FailFn re-running the same pattern must hit
// the session run cache (shrinking probes the same candidates repeatedly).
func TestSimFailFnUsesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sim.ResetCache()
	l := mustDecode(t, "litmus:1:e0.1;s0.1")
	fail := SimFailFn("Baseline", 1, 0)
	fail(l)
	fail(l)
	if sim.CacheHits() == 0 {
		t.Fatalf("second identical probe did not hit the run cache")
	}
}
