package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Stall reasons a Diagnosis carries; the machine picks one when its forward
// progress watchdog declares a run dead.
const (
	// ReasonProgressStall: no WG made forward progress for a full progress
	// window — the classic deadlock (Baseline oversubscribed, MonR without
	// its fallback timeout).
	ReasonProgressStall = "progress-stall"
	// ReasonCycleBudget: the run was still making progress but exhausted
	// its simulated-cycle budget (livelock, or a budget set too tight).
	ReasonCycleBudget = "cycle-budget"
	// ReasonEventBudget: the engine's event budget ran out — a zero-delay
	// event loop that never advances the simulated clock.
	ReasonEventBudget = "event-budget"
	// ReasonNoEvents: the calendar drained with WGs unfinished — every
	// actor is parked with no timer left to wake anyone.
	ReasonNoEvents = "no-pending-events"
	// ReasonFleetDrain: the fleet layer drained this still-healthy workload
	// because device churn dropped the fleet below its survivable-capacity
	// floor — a clean, diagnosed stop rather than a hang.
	ReasonFleetDrain = "fleet-drain"
	// ReasonFleetBudget: the fleet-level cycle budget expired with this
	// workload unfinished (its own simulated-cycle budget may be untouched —
	// multiplexing and migration pauses slow fleet-relative progress).
	ReasonFleetBudget = "fleet-budget"
)

// BlockedCond is one synchronization condition unfinished WGs are blocked
// on: the (address, expected) pair of the paper's waiting conditions, plus
// the WGs stuck behind it.
type BlockedCond struct {
	Addr    uint64
	Want    int64
	Cmp     string // "==" or ">="
	Waiters []int  // WG ids blocked on this condition, ascending
}

// WGDiag is one unfinished work-group's state at diagnosis time.
type WGDiag struct {
	ID       int
	State    string // scheduling state (pending, resident, switched-out, ...)
	CU       int    // resident CU, -1 when none
	Blocked  bool   // inside a synchronization wait episode
	Addr     uint64 // the wait's condition, valid when Blocked
	Want     int64
	Cmp      string
	StuckFor uint64 // cycles since the wait episode began
}

// Diagnosis is the structured explanation attached to a deadlocked Result:
// what each unfinished WG was doing, which (address, expected) conditions
// they block on, scheduler queue occupancy, monitor/CP occupancy, and when
// progress last happened. It turns a DEADLOCK table cell into a debuggable
// artifact.
type Diagnosis struct {
	Reason       string
	AtCycle      uint64
	LastProgress uint64
	Completed    int
	Total        int

	// Scheduler occupancy.
	PendingWGs int // never-started WGs queued for first dispatch
	ReadyWGs   int // switched-out WGs whose conditions are met
	EnabledCUs int
	TotalCUs   int

	// Monitor-side occupancy, filled by the attached policy when it runs a
	// SyncMon/CP pair (zero for Baseline/Sleep/Timeout).
	SyncMonConditions int
	SyncMonWaiters    int
	MonitorLogLen     int
	CPTableSize       int

	WGs        []WGDiag      // unfinished WGs, ascending id
	Conditions []BlockedCond // blocking conditions, ascending (addr, want)

	// Trace is the rendered time-travel replay of the window before the
	// stall, attached when the machine ran with a snapshot ring
	// (gpu.Config.SnapshotEvery); empty otherwise, and omitted from
	// serialized results so snapshot-less runs are byte-identical.
	Trace string `json:",omitempty"`
}

// Summary is the one-line form: reason plus the headline numbers.
func (d *Diagnosis) Summary() string {
	return fmt.Sprintf("%s at cycle %d (last progress %d): %d/%d WGs done, %d blocked conditions, %d/%d CUs enabled",
		d.Reason, d.AtCycle, d.LastProgress, d.Completed, d.Total, len(d.Conditions), d.EnabledCUs, d.TotalCUs)
}

// String renders the full multi-line diagnosis in the format README
// documents: summary, scheduler and monitor occupancy, the blocking
// conditions with their waiters, and a per-state WG census.
func (d *Diagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock diagnosis: %s\n", d.Summary())
	fmt.Fprintf(&b, "  scheduler: %d pending, %d ready", d.PendingWGs, d.ReadyWGs)
	fmt.Fprintf(&b, "; syncmon: %d conditions / %d waiters; monitor log: %d; cp table: %d\n",
		d.SyncMonConditions, d.SyncMonWaiters, d.MonitorLogLen, d.CPTableSize)
	for _, c := range d.Conditions {
		fmt.Fprintf(&b, "  blocked on [0x%x %s %d]: %d WG(s) %s\n",
			c.Addr, c.Cmp, c.Want, len(c.Waiters), idRanges(c.Waiters))
	}
	// WG census by state, so a 384-WG diagnosis stays readable.
	states := make(map[string][]int)
	for _, w := range d.WGs {
		states[w.State] = append(states[w.State], w.ID)
	}
	names := make([]string, 0, len(states))
	for s := range states {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		ids := states[s]
		fmt.Fprintf(&b, "  %d WG(s) %s: %s\n", len(ids), s, idRanges(ids))
	}
	if d.Trace != "" {
		b.WriteString("  pre-stall trace (replayed from last snapshot):\n")
		for _, line := range strings.Split(strings.TrimRight(d.Trace, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// idRanges compresses a sorted id list into "0-5,8,10-12" form.
func idRanges(ids []int) string {
	var b strings.Builder
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", ids[i], ids[j])
		} else {
			fmt.Fprintf(&b, "%d", ids[i])
		}
		i = j + 1
	}
	return b.String()
}
