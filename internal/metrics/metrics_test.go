package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	base := Result{Cycles: 1200}
	fast := Result{Cycles: 100}
	if got := fast.Speedup(base); got != 12 {
		t.Fatalf("Speedup = %v, want 12", got)
	}
	if got := base.NormalizedRuntime(base); got != 1 {
		t.Fatalf("self-normalized runtime = %v, want 1", got)
	}
}

func TestSpeedupUndefinedOnDeadlock(t *testing.T) {
	base := Result{Cycles: 1000}
	dead := Result{Cycles: 500, Deadlocked: true}
	if got := dead.Speedup(base); got != 0 {
		t.Fatalf("deadlocked speedup = %v, want 0", got)
	}
	if got := base.Speedup(dead); got != 0 {
		t.Fatalf("speedup vs deadlocked base = %v, want 0", got)
	}
	if got := (Result{}).Speedup(base); got != 0 {
		t.Fatalf("zero-cycle speedup = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
	// Zeros (deadlocked bars) are skipped, not counted as zero.
	if got := GeoMean([]float64{4, 0, 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean with zero = %v, want 4", got)
	}
}

func TestGeoMeanProperty(t *testing.T) {
	// Geomean of positive values lies between min and max.
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "Benchmark", "Speedup")
	tb.AddRow("SPM_G", 12.345)
	tb.AddRow("FAM_G", 0.0)
	s := tb.String()
	if !strings.Contains(s, "== Fig X ==") {
		t.Fatalf("missing title in %q", s)
	}
	if !strings.Contains(s, "12.3") {
		t.Fatalf("missing 3-sig-fig float in %q", s)
	}
	if !strings.Contains(s, "-") {
		t.Fatalf("zero not rendered as dash in %q", s)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tb.Rows())
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("", "name")
	tb.AddRow("b")
	tb.AddRow("a")
	tb.SortRowsBy(0)
	s := tb.String()
	if strings.Index(s, "a") > strings.Index(s, "b") {
		t.Fatalf("rows not sorted: %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "x")
	tb.AddRow("longvalue", 1)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The second column must start at the same offset in both lines.
	if strings.Index(lines[0], "x") != strings.Index(lines[1], "1") {
		t.Fatalf("columns misaligned:\n%s", tb.String())
	}
}
