// Package metrics defines the result and statistics types shared by the
// simulator, the experiment harnesses, and the public API, plus the small
// numeric helpers (geometric mean, normalization) the paper's figures use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// WGBreakdown is one work-group's execution-time split, the quantity
// Figure 11 plots (normalized to the Timeout policy).
type WGBreakdown struct {
	Running uint64 // cycles spent executing or moving data
	Waiting uint64 // cycles spent inside synchronization wait episodes
}

// SyncVarStats characterizes one synchronization variable, the raw material
// for Table 2's columns.
type SyncVarStats struct {
	Conditions     int     // distinct (addr, expected) conditions seen
	MaxWaiters     int     // max WGs simultaneously waiting on one condition
	UpdatesPerCond float64 // mean updates to the variable until a condition met
}

// Result is everything one simulation run reports.
type Result struct {
	Benchmark string
	Policy    string

	Cycles     uint64 // kernel runtime in simulated cycles
	Deadlocked bool   // progress watchdog fired (expected for Baseline oversubscribed)
	Completed  int    // WGs that ran to completion

	// Diagnosis explains a deadlocked run: per-WG state, the blocking
	// (address, expected) conditions, queue and monitor occupancy. Nil for
	// completed runs. Results compare equal only when they share the same
	// diagnosis object; compare deadlocked runs field-by-field instead.
	Diagnosis *Diagnosis `json:",omitempty"`

	// Instruction/traffic counters.
	Atomics      uint64 // dynamic atomic instructions (global + local)
	BankWait     uint64 // cycles atomics queued at L2 banks
	ContextBytes uint64 // WG context save/restore traffic

	// Per-WG execution breakdown.
	Breakdown WGBreakdown // summed over WGs
	// MaxWait is the longest single wait episode any WG endured, a
	// fairness/latency-tail indicator (FIFO ticket locks bound it; herd
	// resume policies do not).
	MaxWait uint64

	// Scheduling activity.
	SwitchesOut, SwitchesIn uint64
	Stalls                  uint64
	Resumes                 uint64 // WGs woken by the policy
	WastedResumes           uint64 // woken WGs whose retry failed (contention / sporadic wakeups)
	Timeouts                uint64 // waits ended by a timeout rather than a notification

	// SyncMon / CP occupancy, for Figure 13 and the hardware-overhead table.
	MaxConditions   int // peak waiting conditions tracked (SyncMon + spill)
	MaxWaitingWGs   int // peak waiting WGs tracked
	MaxMonitoredVar int // peak distinct monitored addresses
	MaxLogEntries   int // peak Monitor Log occupancy
	LogSpills       uint64
	LogRejects      uint64 // waiting atomics bounced because the log was full (Mesa retries)

	// AWG predictor activity.
	PredictAll, PredictOne uint64
	BloomResets            uint64

	// Benchmark characterization (Table 2).
	SyncVars int
	VarStats SyncVarStats

	ContextKB float64 // WG context size (Fig. 5)
}

// Speedup reports how much faster this run is than base (base.Cycles /
// r.Cycles). It returns 0 when either run deadlocked or has no cycles.
func (r Result) Speedup(base Result) float64 {
	if r.Deadlocked || base.Deadlocked || r.Cycles == 0 || base.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// NormalizedRuntime reports r.Cycles / base.Cycles, the Y axis of Figures 7
// and 8. Returns 0 when undefined.
func (r Result) NormalizedRuntime(base Result) float64 {
	if r.Deadlocked || base.Deadlocked || base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(base.Cycles)
}

// GeoMean returns the geometric mean of the positive entries of xs; zero and
// negative entries (deadlocks, undefined ratios) are skipped, mirroring how
// the paper reports geomeans over defined bars only.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table renders rows of labelled values as an aligned text table, used by
// the awgexp tool to print each figure's data series.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is formatted with %v, floats with 3
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if v == 0 {
				row[i] = "-"
			} else {
				row[i] = fmt.Sprintf("%.3g", v)
			}
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortRowsBy sorts data rows by the given column index (string order).
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}
