package event

import (
	"reflect"
	"testing"
)

// TestSnapshotCoversEngine pins Engine's exact field list. If this fails,
// a field was added (or renamed): decide whether it is part of the
// machine's replayable state, teach Snapshot()/Restore() about it — either
// save it or document it as host-side/derived — and then update the list
// here.
//
// Covered by Snapshot: now, seq, executed, budget, budgetHit, and the
// calendar contents (near/far/heap serialize into Snapshot.entries).
// Excluded: stopped (transient run-loop flag, reset by RunUntil), nearBase/
// nearScan/nearCnt/farCnt (calendar geometry rebuilt by Restore's
// re-placement), free (host-side bucket pool).
func TestSnapshotCoversEngine(t *testing.T) {
	want := []string{
		"now", "seq", "executed", "stopped", "near", "far", "nearBase",
		"nearScan", "nearCnt", "farCnt", "heap", "free", "budget", "budgetHit",
	}
	rt := reflect.TypeOf(Engine{})
	got := make([]string, rt.NumField())
	for i := range got {
		got[i] = rt.Field(i).Name
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event.Engine fields changed without updating Snapshot():\n  got  %v\n  want %v", got, want)
	}
}
