package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyEngine(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("fresh engine at cycle %d, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty calendar reported an event")
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("Run on empty calendar fired %d events", got)
	}
	if e.NextEventAt() != Never {
		t.Fatalf("NextEventAt = %d, want Never", e.NextEventAt())
	}
}

func TestTimestampOrder(t *testing.T) {
	e := New()
	var fired []Cycle
	for _, at := range []Cycle{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %d after run, want 50", e.Now())
	}
}

func TestFIFOWithinSameCycle(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of scheduling order at %d: %v", i, order[:i+1])
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	e := New()
	var at Cycle
	e.At(100, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 125 {
		t.Fatalf("After(25) from cycle 100 fired at %d, want 125", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Cycle
	for _, at := range []Cycle{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", e.Pending())
	}
	if e.NextEventAt() != 30 {
		t.Fatalf("next event at %d, want 30", e.NextEventAt())
	}
	// Resuming picks up where we left off.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("%d pending after Stop, want 7", e.Pending())
	}
}

func TestCascadedEvents(t *testing.T) {
	// An event chain where each event schedules the next must advance the
	// clock monotonically and fire every link.
	e := New()
	const links = 1000
	count := 0
	var step func()
	step = func() {
		count++
		if count < links {
			e.After(3, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != links {
		t.Fatalf("chain fired %d links, want %d", count, links)
	}
	if e.Now() != Cycle(3*(links-1)) {
		t.Fatalf("clock at %d, want %d", e.Now(), 3*(links-1))
	}
}

// TestOrderingProperty checks, over random schedules, that events always
// fire sorted by (timestamp, insertion order).
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		e := New()
		type stamp struct {
			at  Cycle
			seq int
		}
		var fired []stamp
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(64))
			i := i
			e.At(at, func() { fired = append(fired, stamp{at, i}) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Cycle {
		e := New()
		rng := rand.New(rand.NewSource(42))
		var trace []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth > 0 {
				e.After(Cycle(rng.Intn(10)+1), func() { spawn(depth - 1) })
				e.After(Cycle(rng.Intn(10)+1), func() { spawn(depth - 1) })
			}
		}
		e.At(0, func() { spawn(6) })
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1024; j++ {
			e.At(Cycle(j%97), func() {})
		}
		e.Run()
	}
}
