package event

// TaskFunc is the callee of a pooled Task. It receives the task so it can
// unpack its argument slots.
type TaskFunc func(*Task)

// Task is a pooled calendar entry: a callee plus inline argument slots,
// replacing a fresh closure on the engine's highest-rate paths (CU issue,
// bank service, wake delivery). Env holds pointer-shaped arguments
// (pointers, funcs — storing those in an `any` does not allocate) and I
// holds integer arguments.
//
// Lifecycle: obtain a task with Engine.NewTask, fill the slots, and hand it
// to AtTask/AfterTask. The engine owns it from that point: after the callee
// returns, the task is zeroed and recycled onto the engine's free list, so
// the callee must not retain it. A task may be mutated up until it fires —
// the atomic pipeline uses this to deposit a bank result into an
// already-scheduled response task.
type Task struct {
	fn   TaskFunc
	next *Task

	Env [4]any
	I   [6]int64
}

// NewTask returns a zeroed task from the engine's free list (or a fresh one)
// with its callee set.
func (e *Engine) NewTask(fn TaskFunc) *Task {
	t := e.free
	if t == nil {
		t = &Task{}
	} else {
		e.free = t.next
		t.next = nil
	}
	t.fn = fn
	return t
}

// AtTask schedules t to fire at absolute cycle at. Ordering follows the
// same (timestamp, scheduling order) rule as At.
func (e *Engine) AtTask(at Cycle, t *Task) {
	e.schedule(at, scheduled{at: at, task: t})
}

// AfterTask schedules t to fire d cycles from now.
func (e *Engine) AfterTask(d Cycle, t *Task) {
	e.schedule(e.now+d, scheduled{at: e.now + d, task: t})
}

// releaseTask zeroes a fired task (dropping its Env references for the GC)
// and returns it to the free list.
func (e *Engine) releaseTask(t *Task) {
	*t = Task{next: e.free}
	e.free = t
}
