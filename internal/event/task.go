package event

// TaskFunc is the callee of a pooled Task. It receives the task so it can
// unpack its argument slots.
type TaskFunc func(*Task)

// Task is a pooled calendar entry: a callee plus inline argument slots,
// replacing a fresh closure on the engine's highest-rate paths (CU issue,
// bank service, wake delivery). Env holds pointer-shaped arguments
// (pointers, funcs — storing those in an `any` does not allocate) and I
// holds integer arguments.
//
// Lifecycle: obtain a task with Engine.NewTask, fill the slots, and hand it
// to AtTask/AfterTask. The engine owns it from that point: after the callee
// returns, the task's Env slots are cleared and it is recycled onto the
// engine's free list, so the callee must not retain it. The I slots of a
// recycled task hold stale values from its previous use — a callee must
// read only the slots its scheduler wrote. A task may be mutated up until it fires —
// the atomic pipeline uses this to deposit a bank result into an
// already-scheduled response task.
type Task struct {
	fn   TaskFunc
	next *Task

	Env [4]any
	I   [6]int64
}

// NewTask returns a task from the engine's free list (or a fresh one) with
// its callee set and Env slots nil; see the Task lifecycle note about I.
func (e *Engine) NewTask(fn TaskFunc) *Task {
	t := e.free
	if t == nil {
		t = &Task{}
	} else {
		e.free = t.next
		t.next = nil
	}
	t.fn = fn
	return t
}

// AtTask schedules t to fire at absolute cycle at. Ordering follows the
// same (timestamp, scheduling order) rule as At.
func (e *Engine) AtTask(at Cycle, t *Task) {
	e.schedule(at, nil, t)
}

// AfterTask schedules t to fire d cycles from now.
func (e *Engine) AfterTask(d Cycle, t *Task) {
	e.schedule(e.now+d, nil, t)
}

// releaseTask drops a fired task's Env references (for the GC, and so a
// reused task never carries a stale *Task slot into a snapshot's pending-
// reference walk) and returns it to the free list. The I slots are left
// stale: callees read only the integer slots their scheduler wrote, so
// clearing 48 bytes per fire bought nothing.
func (e *Engine) releaseTask(t *Task) {
	t.fn = nil
	t.Env = [4]any{}
	t.next = e.free
	e.free = t
}
