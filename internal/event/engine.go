// Package event implements the deterministic discrete-event engine that
// drives the GPU timing model.
//
// All simulated hardware (compute units, cache banks, the SyncMon, the
// command processor) advances by scheduling closures at absolute cycle
// timestamps. Events that share a timestamp fire in scheduling order, so a
// given (configuration, seed) pair always produces an identical execution —
// the property every experiment harness and regression test in this
// repository relies on.
package event

import (
	"container/heap"
	"fmt"
)

// Cycle is an absolute simulated-clock timestamp. The baseline GPU model
// runs at 2 GHz, so one Cycle is 0.5 ns of simulated time.
type Cycle uint64

// Never is a sentinel timestamp further in the future than any simulation
// this package is asked to run.
const Never Cycle = 1<<63 - 1

type scheduled struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduled)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = scheduled{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the GPU model funnels all activity through one goroutine.
type Engine struct {
	now      Cycle
	seq      uint64
	events   eventHeap
	executed uint64
	stopped  bool

	// budget, when non-zero, caps the total events the engine will ever
	// execute. A zero-delay event loop never advances the clock, so a
	// cycle cap alone cannot terminate it; the event budget is the
	// watchdog of last resort against such livelocks.
	budget    uint64
	budgetHit bool
}

// New returns an engine positioned at cycle zero with an empty calendar.
func New() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Executed reports how many events have fired so far, a cheap progress
// metric for watchdogs and tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting on the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute cycle at. Scheduling in the past is a
// programming error in the timing model, so it panics rather than silently
// reordering time.
func (e *Engine) At(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at cycle %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, scheduled{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func()) {
	e.At(e.now+d, fn)
}

// SetEventBudget caps the total number of events the engine will execute
// across its lifetime; 0 (the default) disables the cap. Run/RunUntil stop
// once the budget is exhausted, and BudgetExhausted reports it. The cap is
// the livelock backstop: a zero-delay event loop never advances the clock,
// so no cycle limit can end it, but every spin costs an event.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// BudgetExhausted reports whether a Run/RunUntil stopped because the event
// budget ran out.
func (e *Engine) BudgetExhausted() bool { return e.budgetHit }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Further events remain on the calendar.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Step fires the single earliest event. It returns false when the calendar
// is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(scheduled)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// RunUntil fires events in timestamp order until the calendar drains, the
// next event lies beyond limit, or Stop is called. It returns the number of
// events fired.
func (e *Engine) RunUntil(limit Cycle) uint64 {
	e.stopped = false
	start := e.executed
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > limit {
			break
		}
		if e.budget != 0 && e.executed >= e.budget {
			e.budgetHit = true
			break
		}
		e.Step()
	}
	return e.executed - start
}

// Run fires events until the calendar drains or Stop is called.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Never)
}

// NextEventAt reports the timestamp of the earliest pending event, or Never
// when the calendar is empty.
func (e *Engine) NextEventAt() Cycle {
	if len(e.events) == 0 {
		return Never
	}
	return e.events[0].at
}
