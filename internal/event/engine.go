// Package event implements the deterministic discrete-event engine that
// drives the GPU timing model.
//
// All simulated hardware (compute units, cache banks, the SyncMon, the
// command processor) advances by scheduling work at absolute cycle
// timestamps. Events that share a timestamp fire in scheduling order, so a
// given (configuration, seed) pair always produces an identical execution —
// the property every experiment harness and regression test in this
// repository relies on.
//
// # Calendar structure
//
// The calendar is a hierarchical timer wheel backed by a heap, sized for
// this model's event mix: almost every event is an After(d) with small d
// (CU issue chunks, L2/bank service, response legs), a thin band sits at
// the firmware cadences (thousands of cycles), and a handful of watchdog
// and harness events land far out.
//
//   - near wheel: 256 one-cycle buckets covering [nearBase, nearBase+256)
//   - far wheel: 256 buckets of 256 cycles each, covering the next ~65k
//     cycles; a far bucket cascades into the near wheel when the near
//     window advances onto it
//   - overflow heap: a hand-specialized 4-ary min-heap ordered by
//     (at, seq) for events beyond the far horizon, and for events
//     scheduled below nearBase (possible after a cascade ran ahead of
//     the clock)
//
// nearBase stays 256-aligned and only advances when the near window is
// empty, so every pour moves a far bucket's entries — already in seq
// order — into near buckets without any sorting. Firing compares the
// wheel's head against the heap's top by (at, seq), which preserves the
// global FIFO-within-a-timestamp guarantee across all three structures.
package event

import (
	"fmt"
	"math/bits"
)

// Cycle is an absolute simulated-clock timestamp. The baseline GPU model
// runs at 2 GHz, so one Cycle is 0.5 ns of simulated time.
type Cycle uint64

// Never is a sentinel timestamp further in the future than any simulation
// this package is asked to run.
const Never Cycle = 1<<63 - 1

const (
	nearBits = 8
	nearSize = 1 << nearBits // one-cycle buckets in the near wheel
	nearMask = nearSize - 1
	farSize  = 256 // nearSize-cycle buckets in the far wheel
	farMask  = farSize - 1
)

// scheduled is one calendar entry: either a plain closure (fn) or a pooled
// Task, never both.
type scheduled struct {
	at   Cycle
	seq  uint64
	fn   func()
	task *Task
}

// bucket is one wheel slot. pos is the consumption cursor; entries behind
// it have fired. The slice is reset lazily on the next append or pour after
// it fully drains, so steady-state scheduling reuses its backing array.
type bucket struct {
	ev  []scheduled
	pos int
}

func (b *bucket) add(ev scheduled) {
	if b.pos > 0 && b.pos == len(b.ev) {
		b.ev = b.ev[:0]
		b.pos = 0
	}
	b.ev = append(b.ev, ev)
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the GPU model funnels all activity through one goroutine.
type Engine struct {
	now      Cycle
	seq      uint64
	executed uint64
	stopped  bool //lint:allow snapcover cleared by restore; snapshots are only taken from running engines

	near     [nearSize]bucket
	far      [farSize]bucket
	nearBase Cycle //lint:allow snapcover derived wheel geometry; restore recomputes it from the snapshot cycle
	nearScan Cycle //lint:allow snapcover derived wheel geometry; restore recomputes it from the snapshot cycle
	nearCnt  int   // unconsumed entries in the near wheel
	farCnt   int   // entries in the far wheel

	// nearOcc is the near wheel's occupancy bitmap: bit i set ⇔ near[i]
	// holds unconsumed entries. wheelHead finds the next head bucket with
	// a trailing-zeros scan instead of probing up to 256 buckets — the
	// wheel is sparse in this model's event mix, so the linear probe was
	// a measurable share of every fire.
	//lint:allow snapcover derived wheel geometry; restore rebuilds it while re-placing entries
	nearOcc [nearSize / 64]uint64

	heap []scheduled // 4-ary min-heap on (at, seq): overflow + below-base

	// heapMinAt/heapMinSeq mirror heap[0]'s ordering key (all-ones
	// sentinel when the heap is empty). The run loop compares the wheel
	// head against the heap top once per fired event; the cached key makes
	// that two engine-local loads instead of chasing the heap slice.
	//lint:allow snapcover derived heap geometry; restore rebuilds it while re-pushing entries
	heapMinAt Cycle
	//lint:allow snapcover derived heap geometry; restore rebuilds it while re-pushing entries
	heapMinSeq uint64

	free *Task // task free list

	// budget, when non-zero, caps the total events the engine will ever
	// execute. A zero-delay event loop never advances the clock, so a
	// cycle cap alone cannot terminate it; the event budget is the
	// watchdog of last resort against such livelocks.
	budget    uint64
	budgetHit bool
}

// New returns an engine positioned at cycle zero with an empty calendar.
func New() *Engine {
	return &Engine{heapMinAt: ^Cycle(0), heapMinSeq: ^uint64(0)}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Executed reports how many events have fired so far, a cheap progress
// metric for watchdogs and tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting on the calendar.
func (e *Engine) Pending() int { return e.nearCnt + e.farCnt + len(e.heap) }

// At schedules fn to run at absolute cycle at. Scheduling in the past is a
// programming error in the timing model, so it panics rather than silently
// reordering time.
func (e *Engine) At(at Cycle, fn func()) {
	e.schedule(at, fn, nil)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func()) {
	e.schedule(e.now+d, fn, nil)
}

// schedule assigns the next seq and files the entry. The near-window case —
// nearly every After in the model's event mix — is inlined here so the entry
// is built once, directly in the bucket's append slot, instead of being
// copied down a schedule→place→add call chain.
func (e *Engine) schedule(at Cycle, fn func(), task *Task) {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at cycle %d before now %d", at, e.now))
	}
	e.seq++
	if at >= e.nearBase && at-e.nearBase < nearSize {
		b := &e.near[at&nearMask]
		if b.pos > 0 && b.pos == len(b.ev) {
			b.ev = b.ev[:0]
			b.pos = 0
		}
		b.ev = append(b.ev, scheduled{at: at, seq: e.seq, fn: fn, task: task})
		e.nearOcc[(at&nearMask)>>6] |= 1 << (at & 63)
		e.nearCnt++
		if at < e.nearScan {
			e.nearScan = at
		}
		return
	}
	e.place(scheduled{at: at, seq: e.seq, fn: fn, task: task})
}

// place files an entry that already carries its seq into the calendar
// structure its timestamp selects. Restore re-places snapshot entries
// through the same horizon rules scheduling uses.
func (e *Engine) place(ev scheduled) {
	at := ev.at
	if at >= e.nearBase {
		if at-e.nearBase < nearSize {
			e.near[at&nearMask].add(ev)
			e.nearOcc[(at&nearMask)>>6] |= 1 << (at & 63)
			e.nearCnt++
			if at < e.nearScan {
				e.nearScan = at
			}
			return
		}
		if (at>>nearBits)-(e.nearBase>>nearBits) <= farSize {
			e.far[(at>>nearBits)&farMask].add(ev)
			e.farCnt++
			return
		}
	}
	e.heapPush(ev)
}

// wheelHead returns the bucket holding the earliest unconsumed wheel entry,
// cascading far buckets into the near window as needed, or nil when the
// wheel is empty.
func (e *Engine) wheelHead() *bucket {
	for {
		if e.nearCnt > 0 {
			// nearBase is 256-aligned, so a cycle's bucket index within
			// the window is its low byte and the occupancy scan is linear.
			i := int(e.nearScan - e.nearBase)
			w := i >> 6
			word := e.nearOcc[w] & (^uint64(0) << (uint(i) & 63))
			for {
				if word != 0 {
					idx := w<<6 | bits.TrailingZeros64(word)
					e.nearScan = e.nearBase + Cycle(idx)
					return &e.near[idx]
				}
				w++
				if w == len(e.nearOcc) {
					panic("event: near wheel count/content mismatch")
				}
				word = e.nearOcc[w]
			}
		}
		if e.farCnt == 0 {
			return nil
		}
		// The near window drained: advance it one far bucket at a time,
		// pouring that bucket's entries (already in seq order) into their
		// one-cycle slots.
		e.nearBase += nearSize
		e.nearScan = e.nearBase
		fb := &e.far[(e.nearBase>>nearBits)&farMask]
		if n := len(fb.ev); n > 0 {
			for _, ev := range fb.ev {
				e.near[ev.at&nearMask].add(ev)
				e.nearOcc[(ev.at&nearMask)>>6] |= 1 << (ev.at & 63)
			}
			fb.ev = fb.ev[:0]
			e.farCnt -= n
			e.nearCnt += n
		}
	}
}

// peek locates the earliest pending event across the wheel and the heap
// without consuming it. The returned bucket is nil when the winner sits on
// the heap; ok is false when the whole calendar is empty.
func (e *Engine) peek() (b *bucket, ok bool) {
	wb := e.wheelHead()
	if wb == nil {
		return nil, len(e.heap) > 0
	}
	if len(e.heap) > 0 {
		hv, wv := &e.heap[0], &wb.ev[wb.pos]
		if hv.at < wv.at || (hv.at == wv.at && hv.seq < wv.seq) {
			return nil, true
		}
	}
	return wb, true
}

// fire consumes and runs the event peek located.
func (e *Engine) fire(b *bucket) {
	var ev scheduled
	if b == nil {
		ev = e.heapPop()
	} else {
		// The slot is left as-is rather than zeroed: its fn/task pointers
		// are overwritten on the bucket's next append cycle, and nothing
		// reads behind pos.
		ev = b.ev[b.pos]
		b.pos++
		e.nearCnt--
		if b.pos == len(b.ev) {
			e.nearOcc[(ev.at&nearMask)>>6] &^= 1 << (ev.at & 63)
		}
	}
	e.now = ev.at
	e.executed++
	if ev.task != nil {
		t := ev.task
		t.fn(t)
		e.releaseTask(t)
		return
	}
	ev.fn()
}

// SetEventBudget caps the total number of events the engine will execute
// across its lifetime; 0 (the default) disables the cap. Run/RunUntil stop
// once the budget is exhausted, and BudgetExhausted reports it. The cap is
// the livelock backstop: a zero-delay event loop never advances the clock,
// so no cycle limit can end it, but every spin costs an event.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// BudgetExhausted reports whether a Run/RunUntil stopped because the event
// budget ran out.
func (e *Engine) BudgetExhausted() bool { return e.budgetHit }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Further events remain on the calendar.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Step fires the single earliest event. It returns false when the calendar
// is empty.
func (e *Engine) Step() bool {
	b, ok := e.peek()
	if !ok {
		return false
	}
	e.fire(b)
	return true
}

// RunUntil fires events in timestamp order until the calendar drains, the
// next event lies beyond limit, or Stop is called. It returns the number of
// events fired. The loop body is peek+fire fused: this is the simulator's
// innermost loop, and the split version located the head entry twice per
// event.
func (e *Engine) RunUntil(limit Cycle) uint64 {
	e.stopped = false
	start := e.executed
	for !e.stopped {
		// Inline wheelHead's hit case: consecutive fires usually land in
		// the occupancy word nearScan points into, and this loop runs once
		// per event.
		var wb *bucket
		if e.nearCnt > 0 {
			i := int(e.nearScan - e.nearBase)
			w := i >> 6
			if word := e.nearOcc[w] & (^uint64(0) << (uint(i) & 63)); word != 0 {
				idx := w<<6 | bits.TrailingZeros64(word)
				e.nearScan = e.nearBase + Cycle(idx)
				wb = &e.near[idx]
			} else {
				wb = e.wheelHead()
			}
		} else if e.farCnt > 0 {
			wb = e.wheelHead()
		}
		fromHeap := wb == nil
		if wb != nil {
			wv := &wb.ev[wb.pos]
			if e.heapMinAt < wv.at || (e.heapMinAt == wv.at && e.heapMinSeq < wv.seq) {
				fromHeap = true
			}
		}
		var ev scheduled
		if fromHeap {
			if len(e.heap) == 0 {
				break
			}
			if e.heap[0].at > limit {
				break
			}
			if e.budget != 0 && e.executed >= e.budget {
				e.budgetHit = true
				break
			}
			ev = e.heapPop()
		} else {
			ev = wb.ev[wb.pos]
			if ev.at > limit {
				break
			}
			if e.budget != 0 && e.executed >= e.budget {
				e.budgetHit = true
				break
			}
			wb.pos++
			e.nearCnt--
			if wb.pos == len(wb.ev) {
				e.nearOcc[(ev.at&nearMask)>>6] &^= 1 << (ev.at & 63)
			}
		}
		e.now = ev.at
		e.executed++
		if t := ev.task; t != nil {
			t.fn(t)
			e.releaseTask(t)
		} else {
			ev.fn()
		}
	}
	return e.executed - start
}

// Run fires events until the calendar drains or Stop is called.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Never)
}

// NextEventAt reports the timestamp of the earliest pending event, or Never
// when the calendar is empty.
func (e *Engine) NextEventAt() Cycle {
	b, ok := e.peek()
	if !ok {
		return Never
	}
	if b == nil {
		return e.heap[0].at
	}
	return b.ev[b.pos].at
}

// --- 4-ary min-heap on (at, seq) ---

func evLess(a, b *scheduled) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev scheduled) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
	e.heapMinAt, e.heapMinSeq = h[0].at, h[0].seq
}

func (e *Engine) heapPop() scheduled {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = scheduled{}
	h = h[:last]
	i := 0
	for {
		c := i<<2 + 1
		if c >= len(h) {
			break
		}
		m := c
		end := c + 4
		if end > len(h) {
			end = len(h)
		}
		for j := c + 1; j < end; j++ {
			if evLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !evLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.heap = h
	e.syncHeapMin()
	return top
}

// syncHeapMin refreshes the cached heap-top key after a bulk heap
// mutation (pop, reset, restore).
func (e *Engine) syncHeapMin() {
	if len(e.heap) == 0 {
		e.heapMinAt, e.heapMinSeq = ^Cycle(0), ^uint64(0)
		return
	}
	e.heapMinAt, e.heapMinSeq = e.heap[0].at, e.heap[0].seq
}
