package event

import (
	"container/heap"
	"fmt"
	"testing"
)

// oracleEngine is the pre-overhaul calendar — a container/heap of closures —
// kept verbatim as the reference model. The determinism regression replays
// randomized schedules against it: the wheel+heap engine must reproduce its
// firing order exactly, including same-cycle seq ties.
type oracleEngine struct {
	now       Cycle
	seq       uint64
	events    oracleHeap
	executed  uint64
	stopped   bool
	budget    uint64
	budgetHit bool
}

type oracleScheduled struct {
	at  Cycle
	seq uint64
	fn  func()
}

type oracleHeap []oracleScheduled

func (h oracleHeap) Len() int { return len(h) }

func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *oracleHeap) Push(x any) { *h = append(*h, x.(oracleScheduled)) }

func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = oracleScheduled{}
	*h = old[:n-1]
	return ev
}

func newOracle() *oracleEngine { return &oracleEngine{} }

func (e *oracleEngine) Now() Cycle              { return e.now }
func (e *oracleEngine) Executed() uint64        { return e.executed }
func (e *oracleEngine) Pending() int            { return len(e.events) }
func (e *oracleEngine) Stop()                   { e.stopped = true }
func (e *oracleEngine) SetEventBudget(n uint64) { e.budget = n }
func (e *oracleEngine) BudgetExhausted() bool   { return e.budgetHit }

func (e *oracleEngine) At(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("event: scheduling at cycle %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, oracleScheduled{at: at, seq: e.seq, fn: fn})
}

func (e *oracleEngine) After(d Cycle, fn func()) { e.At(e.now+d, fn) }

func (e *oracleEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(oracleScheduled)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

func (e *oracleEngine) RunUntil(limit Cycle) uint64 {
	e.stopped = false
	start := e.executed
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > limit {
			break
		}
		if e.budget != 0 && e.executed >= e.budget {
			e.budgetHit = true
			break
		}
		e.Step()
	}
	return e.executed - start
}

func (e *oracleEngine) Run() uint64 { return e.RunUntil(Never) }

func (e *oracleEngine) NextEventAt() Cycle {
	if len(e.events) == 0 {
		return Never
	}
	return e.events[0].at
}

// calendar is the surface both implementations share; the workload driver
// runs against it.
type calendar interface {
	Now() Cycle
	Executed() uint64
	Pending() int
	At(Cycle, func())
	After(Cycle, func())
	Step() bool
	RunUntil(Cycle) uint64
	Run() uint64
	Stop()
	SetEventBudget(uint64)
	BudgetExhausted() bool
	NextEventAt() Cycle
}

var (
	_ calendar = (*Engine)(nil)
	_ calendar = (*oracleEngine)(nil)
)

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// randDelta draws a delay spanning every calendar region: same-cycle, the
// near wheel, the far wheel, and the overflow heap.
func randDelta(rng *uint64) Cycle {
	switch splitmix(rng) % 10 {
	case 0:
		return 0
	case 1, 2, 3, 4:
		return Cycle(splitmix(rng) % 256)
	case 5, 6, 7:
		return Cycle(256 + splitmix(rng)%65_000)
	case 8:
		return Cycle(65_536 + splitmix(rng)%500_000)
	default:
		return Cycle(splitmix(rng) % 16)
	}
}

type firing struct {
	at Cycle
	id uint64
}

// runWorkload drives c through a seed-derived schedule of At/After/Step/
// RunUntil/Stop/budget operations — including events that schedule children
// and segments that leave the near window ahead of the clock (exercising
// the below-base heap path) — and returns the exact firing trace.
func runWorkload(c calendar, seed uint64) []firing {
	rng := seed
	var trace []firing
	var nextID uint64

	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		d := randDelta(&rng)
		body := func() {
			trace = append(trace, firing{c.Now(), id})
			// Children reseed from the id so both engines make identical
			// decisions regardless of host state.
			crng := seed ^ (id+1)*0x9e3779b97f4a7c15
			n := splitmix(&crng) % 3
			for i := uint64(0); i < n && depth > 0; i++ {
				cid := nextID
				nextID++
				cd := randDelta(&crng)
				cbody := func() { trace = append(trace, firing{c.Now(), cid}) }
				if splitmix(&crng)%2 == 0 {
					c.After(cd, cbody)
				} else {
					c.At(c.Now()+cd, cbody)
				}
			}
			if depth > 0 && splitmix(&crng)%16 == 0 {
				c.Stop()
			}
		}
		if splitmix(&rng)%2 == 0 {
			c.After(d, body)
		} else {
			c.At(c.Now()+d, body)
		}
	}

	for round := 0; round < 40; round++ {
		for i := uint64(0); i < splitmix(&rng)%8; i++ {
			schedule(1)
		}
		switch splitmix(&rng) % 6 {
		case 0:
			c.Step()
		case 1:
			c.SetEventBudget(c.Executed() + splitmix(&rng)%64 + 1)
			c.RunUntil(c.Now() + Cycle(splitmix(&rng)%200_000))
			c.SetEventBudget(0)
		default:
			c.RunUntil(c.Now() + Cycle(splitmix(&rng)%200_000))
		}
		trace = append(trace, firing{c.Now(), ^uint64(c.Pending())})
		if c.NextEventAt() != Never {
			trace = append(trace, firing{c.NextEventAt(), ^uint64(0) - 1})
		}
	}
	c.Run()
	trace = append(trace, firing{c.Now(), ^uint64(c.Pending())})
	return trace
}

// TestCalendarMatchesHeapOracle is the determinism regression for the
// wheel+heap calendar: over many randomized schedules, the firing order
// (including same-cycle seq ties), clock, pending counts, and budget
// behaviour must match the pre-overhaul container/heap engine exactly.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		got := runWorkload(New(), seed)
		want := runWorkload(newOracle(), seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace lengths differ: %d vs oracle %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: diverged at step %d: got (at=%d id=%d), oracle (at=%d id=%d)",
					seed, i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
	}
}

// TestTaskOrderingMatchesClosures checks that AtTask entries interleave
// with At closures in strict scheduling order and that fired tasks are
// recycled through the free list.
func TestTaskOrderingMatchesClosures(t *testing.T) {
	e := New()
	var order []int
	mk := func(i int) *Task {
		tk := e.NewTask(func(tk *Task) { order = append(order, int(tk.I[0])) })
		tk.I[0] = int64(i)
		return tk
	}
	e.At(5, func() { order = append(order, 0) })
	e.AtTask(5, mk(1))
	e.At(5, func() { order = append(order, 2) })
	e.AtTask(3, mk(3))
	e.AfterTask(5, mk(4))
	e.Run()
	want := []int{3, 0, 1, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	// All three tasks came back to the free list: three NewTask calls in a
	// row must reuse them without growing the pool.
	a, b, c := e.NewTask(nil), e.NewTask(nil), e.NewTask(nil)
	if a == b || b == c || a == c {
		t.Fatal("free list handed out the same task twice")
	}
	// Recycling clears the pointer-shaped slots (GC + snapshot safety); the
	// I slots are deliberately left stale — callees read only what their
	// scheduler wrote.
	for _, tk := range []*Task{a, b, c} {
		if tk.Env[0] != nil {
			t.Fatalf("recycled task kept an Env reference: %+v", tk)
		}
	}
}

// TestBelowBaseScheduling pins the regression where a cascade advances the
// near window past the clock and a subsequent event lands below nearBase.
func TestBelowBaseScheduling(t *testing.T) {
	e := New()
	var fired []Cycle
	log := func() { fired = append(fired, e.Now()) }
	e.At(5, log)
	e.At(70_000, log)
	e.RunUntil(10) // fires 5; the peek at 70k cascades the window forward
	if len(fired) != 1 {
		t.Fatalf("fired %v, want just cycle 5", fired)
	}
	e.At(20, log) // below the advanced nearBase: must take the heap path
	e.At(70_001, log)
	e.Run()
	want := []Cycle{5, 20, 70_000, 70_001}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func BenchmarkEngineShortDelays(b *testing.B) {
	// Four concurrent chains of small After delays — the CU-issue/bank-
	// service shape that dominates the experiment workloads.
	b.ReportAllocs()
	e := New()
	remaining := b.N
	var chain func()
	chain = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		e.After(Cycle(remaining%61+1), chain)
	}
	for i := 0; i < 4; i++ {
		e.After(Cycle(i+1), chain)
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkEngineTaskShortDelays(b *testing.B) {
	// Same shape as BenchmarkEngineShortDelays but through the pooled Task
	// path: steady-state this must not allocate at all.
	b.ReportAllocs()
	e := New()
	remaining := b.N
	var chain TaskFunc
	chain = func(t *Task) {
		if remaining <= 0 {
			return
		}
		remaining--
		e.AfterTask(Cycle(remaining%61+1), e.NewTask(chain))
	}
	for i := 0; i < 4; i++ {
		e.AfterTask(Cycle(i+1), e.NewTask(chain))
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkEngineMixedHorizon(b *testing.B) {
	// Delays spanning near wheel, far wheel and overflow heap, like a run
	// with firmware cadences and watchdogs in flight.
	b.ReportAllocs()
	e := New()
	rng := uint64(1)
	remaining := b.N
	var chain func()
	chain = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		e.After(randDelta(&rng)+1, chain)
	}
	for i := 0; i < 8; i++ {
		e.After(Cycle(i+1), chain)
	}
	b.ResetTimer()
	e.Run()
}
