package event

import (
	"fmt"
	"sort"
)

// Snapshot/Restore give the engine checkpointing: Snapshot captures the
// clock, the sequence counter, the budget state and every pending calendar
// entry; Restore rewinds the engine to exactly that point. A restored engine
// fires the same events in the same (at, seq) order a never-interrupted one
// would — the foundation of the machine-level fork/replay machinery.
//
// Pooled Tasks need special care: a calendar entry's Env slots may reference
// another *pending* Task (the atomic pipeline deposits a bank result into an
// already-scheduled response task), and after a restore those references
// must point at the restored task objects, not the recycled originals. The
// snapshot therefore rewrites *Task Env slots into calendar-entry indices
// and the restore patches them back. A Task referenced from Env but absent
// from the calendar would be a retained task — unsupported by the pooling
// lifecycle — and panics.
//
// The task free list is deliberately NOT part of a snapshot: it is host-side
// allocator state, invisible to the simulation. Restore recycles the
// calendar it discards, so repeated restores stay allocation-light.

// Snapshot is a point-in-time copy of an Engine's simulated state. It is
// immutable after capture and may be restored any number of times, on the
// engine that produced it.
type Snapshot struct {
	now       Cycle
	seq       uint64
	executed  uint64
	budget    uint64
	budgetHit bool
	entries   []savedEntry // pending calendar, sorted by (at, seq)
}

// savedEntry is one serialized calendar entry. tfn is non-nil for pooled
// Task entries; fn for plain closures. ref[k] >= 0 records that Env slot k
// held a *Task reference to the entry at that index.
type savedEntry struct {
	at  Cycle
	seq uint64
	fn  func()
	tfn TaskFunc
	env [4]any
	i   [6]int64
	ref [4]int32
}

// snapEntryBytes approximates one savedEntry's memory footprint for the
// fork-statistics accounting (exact sizing would need unsafe).
const snapEntryBytes = 176

// Now reports the simulated cycle at which the snapshot was taken.
func (s *Snapshot) Now() Cycle { return s.now }

// Pending reports how many calendar entries the snapshot holds.
func (s *Snapshot) Pending() int { return len(s.entries) }

// Bytes estimates the snapshot's memory footprint.
func (s *Snapshot) Bytes() int { return 64 + len(s.entries)*snapEntryBytes }

// Snapshot captures the engine's current state: clock, sequence counter,
// executed-event count, budget state, and every pending calendar entry with
// its original firing order.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		now:       e.now,
		seq:       e.seq,
		executed:  e.executed,
		budget:    e.budget,
		budgetHit: e.budgetHit,
	}
	pend := make([]scheduled, 0, e.Pending())
	for i := range e.near {
		b := &e.near[i]
		pend = append(pend, b.ev[b.pos:]...)
	}
	for i := range e.far {
		b := &e.far[i]
		pend = append(pend, b.ev[b.pos:]...)
	}
	pend = append(pend, e.heap...)
	// (at, seq) is a total order: seq values are unique.
	sort.Slice(pend, func(i, j int) bool { return evLess(&pend[i], &pend[j]) })

	index := make(map[*Task]int32, len(pend))
	for idx := range pend {
		if t := pend[idx].task; t != nil {
			index[t] = int32(idx)
		}
	}
	s.entries = make([]savedEntry, len(pend))
	for idx := range pend {
		ev := &pend[idx]
		se := savedEntry{at: ev.at, seq: ev.seq, fn: ev.fn, ref: [4]int32{-1, -1, -1, -1}}
		if t := ev.task; t != nil {
			se.tfn, se.env, se.i = t.fn, t.Env, t.I
			for k, v := range se.env {
				if tt, ok := v.(*Task); ok {
					j, onCal := index[tt]
					if !onCal {
						panic("event: snapshot found a Task reference to a task not on the calendar")
					}
					se.env[k] = nil
					se.ref[k] = j
				}
			}
		}
		s.entries[idx] = se
	}
	return s
}

// Restore rewinds the engine to the snapshot: the current calendar is
// discarded (its pooled tasks recycled), the clock, sequence counter and
// budget state are rewound, and the snapshot's entries are re-placed with
// their original (at, seq) firing order. Any Stop() in effect is cleared.
func (e *Engine) Restore(s *Snapshot) {
	for i := range e.near {
		e.recycleBucket(&e.near[i])
	}
	for i := range e.far {
		e.recycleBucket(&e.far[i])
	}
	for i := range e.heap {
		if t := e.heap[i].task; t != nil {
			e.releaseTask(t)
		}
		e.heap[i] = scheduled{}
	}
	e.heap = e.heap[:0]
	e.syncHeapMin()
	e.nearCnt, e.farCnt = 0, 0
	e.nearOcc = [nearSize / 64]uint64{}

	e.now, e.seq, e.executed = s.now, s.seq, s.executed
	e.budget, e.budgetHit = s.budget, s.budgetHit
	e.stopped = false
	e.nearBase = s.now &^ Cycle(nearMask)
	e.nearScan = s.now

	// Materialize tasks first, then patch cross-task Env references, then
	// place. Placement in (at, seq)-sorted order reproduces the original
	// firing order: a one-cycle near bucket receives its entries in seq
	// order, and a far bucket's pour preserves encounter order per cycle.
	tasks := make([]*Task, len(s.entries))
	for idx := range s.entries {
		se := &s.entries[idx]
		if se.tfn == nil {
			continue
		}
		t := e.NewTask(se.tfn)
		t.Env, t.I = se.env, se.i
		tasks[idx] = t
	}
	for idx := range s.entries {
		se := &s.entries[idx]
		if tasks[idx] == nil {
			continue
		}
		for k, r := range se.ref {
			if r >= 0 {
				tasks[idx].Env[k] = tasks[r]
			}
		}
	}
	for idx := range s.entries {
		se := &s.entries[idx]
		e.place(scheduled{at: se.at, seq: se.seq, fn: se.fn, task: tasks[idx]})
	}
}

// recycleBucket returns a bucket's unconsumed tasks to the free list and
// empties it.
func (e *Engine) recycleBucket(b *bucket) {
	for i := b.pos; i < len(b.ev); i++ {
		if t := b.ev[i].task; t != nil {
			e.releaseTask(t)
		}
		b.ev[i] = scheduled{}
	}
	b.ev = b.ev[:0]
	b.pos = 0
}

// ReserveSeqs consumes n sequence numbers without scheduling anything and
// returns the first. The fork planner reserves, at machine construction,
// the seqs a cold run's fault arming would consume, so that closures
// inserted after a restore (AtWithSeq) land in exactly the firing positions
// the cold run gives them; a member using fewer than n shifts every later
// seq uniformly, which cannot change same-cycle relative order.
func (e *Engine) ReserveSeqs(n int) uint64 {
	base := e.seq + 1
	e.seq += uint64(n)
	return base
}

// AtWithSeq schedules fn at absolute cycle at under a previously reserved
// sequence number, splicing it into the FIFO position it would occupy had
// it been scheduled when the seq was reserved. at must be strictly in the
// future and seq must have been reserved (or otherwise already consumed).
func (e *Engine) AtWithSeq(at Cycle, seq uint64, fn func()) {
	if at <= e.now {
		panic(fmt.Sprintf("event: AtWithSeq at cycle %d not after now %d", at, e.now))
	}
	if seq == 0 || seq > e.seq {
		panic(fmt.Sprintf("event: AtWithSeq seq %d was never reserved (counter %d)", seq, e.seq))
	}
	ev := scheduled{at: at, seq: seq, fn: fn}
	if at >= e.nearBase {
		if at-e.nearBase < nearSize {
			e.near[at&nearMask].insertBySeq(ev)
			e.nearOcc[(at&nearMask)>>6] |= 1 << (at & 63)
			e.nearCnt++
			if at < e.nearScan {
				e.nearScan = at
			}
			return
		}
		if (at>>nearBits)-(e.nearBase>>nearBits) <= farSize {
			e.far[(at>>nearBits)&farMask].insertBySeq(ev)
			e.farCnt++
			return
		}
	}
	e.heapPush(ev)
}

// insertBySeq splices ev into the bucket's unconsumed region before the
// first same-cycle entry with a greater seq. Bucket lists keep entries of
// equal timestamp in ascending seq order (that is the firing order); entries
// of other timestamps — possible in far buckets — are position-irrelevant.
func (b *bucket) insertBySeq(ev scheduled) {
	if b.pos > 0 && b.pos == len(b.ev) {
		b.ev = b.ev[:0]
		b.pos = 0
	}
	i := b.pos
	for i < len(b.ev) {
		e2 := &b.ev[i]
		if e2.at == ev.at && e2.seq > ev.seq {
			break
		}
		i++
	}
	b.ev = append(b.ev, scheduled{})
	copy(b.ev[i+1:], b.ev[i:])
	b.ev[i] = ev
}
