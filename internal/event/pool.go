package event

import "sync"

// Engine recycling. A run's allocation profile is dominated by calendar
// state that every engine regrows from nothing: the task free list, bucket
// backing arrays, and the overflow heap. Harnesses that build one machine
// per configuration (the experiment sweeps run hundreds per suite) recycle
// the engine at teardown instead, so the next machine starts with warmed
// capacity.
//
// The pool is bounded: it only ever holds about as many engines as run
// concurrently, and an overflowing Recycle simply drops the engine for the
// GC to take.

var enginePool struct {
	mu   sync.Mutex
	free []*Engine
}

const enginePoolCap = 64

// NewPooled returns an engine from the recycle pool — reset, but with its
// task free list and calendar capacities intact — or a fresh one when the
// pool is empty.
func NewPooled() *Engine {
	enginePool.mu.Lock()
	if n := len(enginePool.free); n > 0 {
		e := enginePool.free[n-1]
		enginePool.free[n-1] = nil
		enginePool.free = enginePool.free[:n-1]
		enginePool.mu.Unlock()
		return e
	}
	enginePool.mu.Unlock()
	return New()
}

// Recycle resets the engine to its initial state — clock, counters and
// calendar as New() leaves them, retaining allocated capacity and the task
// free list — and offers it to the pool for a later NewPooled. The caller
// must drop every reference to the engine and to snapshots taken from it;
// restoring an old snapshot onto a recycled engine is a use-after-free in
// simulation terms.
func (e *Engine) Recycle() {
	e.reset()
	enginePool.mu.Lock()
	if len(enginePool.free) < enginePoolCap {
		enginePool.free = append(enginePool.free, e)
	}
	enginePool.mu.Unlock()
}

func (e *Engine) reset() {
	for i := range e.near {
		e.drainBucket(&e.near[i])
	}
	for i := range e.far {
		e.drainBucket(&e.far[i])
	}
	for i := range e.heap {
		if t := e.heap[i].task; t != nil {
			e.releaseTask(t)
		}
		e.heap[i] = scheduled{}
	}
	e.heap = e.heap[:0]
	e.syncHeapMin()
	e.nearCnt, e.farCnt = 0, 0
	e.nearOcc = [nearSize / 64]uint64{}
	e.now, e.seq, e.executed = 0, 0, 0
	e.stopped = false
	e.nearBase, e.nearScan = 0, 0
	e.budget, e.budgetHit = 0, false
}

// drainBucket empties a bucket like recycleBucket, additionally clearing
// the consumed slots fire left stale so a pooled engine pins no dead
// closures or tasks.
func (e *Engine) drainBucket(b *bucket) {
	for i := b.pos; i < len(b.ev); i++ {
		if t := b.ev[i].task; t != nil {
			e.releaseTask(t)
		}
	}
	clear(b.ev[:cap(b.ev)])
	b.ev = b.ev[:0]
	b.pos = 0
}
