package event

import "testing"

// runByteWorkload interprets data as an op stream against c and returns the
// firing trace. The encoding is deliberately dense so the fuzzer can reach
// every calendar region (near/far/heap, same-cycle ties, cascades, budget
// stops) from short inputs.
func runByteWorkload(c calendar, data []byte) []firing {
	var trace []firing
	var nextID uint64
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	schedule := func(d Cycle, stop bool) {
		id := nextID
		nextID++
		crng := (id + 1) * 0x9e3779b97f4a7c15
		c.After(d, func() {
			trace = append(trace, firing{c.Now(), id})
			if stop {
				c.Stop()
			}
			if splitmix(&crng)%4 == 0 {
				cid := nextID
				nextID++
				cd := randDelta(&crng)
				c.After(cd, func() { trace = append(trace, firing{c.Now(), cid}) })
			}
		})
	}
	for pos < len(data) {
		op := next()
		switch {
		case op < 0x40: // near-wheel delay
			schedule(Cycle(next()), false)
		case op < 0x70: // far-wheel delay
			schedule(Cycle(next())*256+Cycle(next()), false)
		case op < 0x90: // overflow-heap delay
			schedule(65_536+Cycle(next())*1024, false)
		case op < 0xa0: // same-cycle burst
			n := int(next())%8 + 2
			for i := 0; i < n; i++ {
				schedule(Cycle(op&3), false)
			}
		case op < 0xc0: // bounded run segment
			c.RunUntil(c.Now() + Cycle(next())*Cycle(next()))
			trace = append(trace, firing{c.Now(), ^uint64(c.Pending())})
		case op < 0xd0:
			c.Step()
		case op < 0xe0: // budget-limited segment
			c.SetEventBudget(c.Executed() + uint64(next()) + 1)
			c.RunUntil(c.Now() + 100_000)
			c.SetEventBudget(0)
			trace = append(trace, firing{c.Now(), ^uint64(c.Pending())})
		case op < 0xf0: // event that calls Stop mid-run
			schedule(Cycle(next()), true)
			c.RunUntil(c.Now() + 10_000)
		default:
			trace = append(trace, firing{c.NextEventAt(), ^uint64(0)})
		}
	}
	c.Run()
	trace = append(trace, firing{c.Now(), ^uint64(c.Pending())})
	return trace
}

// FuzzCalendar cross-checks the wheel+heap calendar against the
// container/heap oracle on arbitrary op streams: any divergence in firing
// order, clock, or pending counts is a determinism bug.
func FuzzCalendar(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x01, 0x10, 0xa0, 0x40, 0x40})
	f.Add([]byte{0x90, 0x03, 0x50, 0xff, 0x10, 0xb0, 0xff, 0xff, 0x80, 0x02, 0xa0, 0x01, 0x01})
	f.Add([]byte{0xd5, 0x05, 0xe2, 0x30, 0x00, 0x30, 0x00, 0xc1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		got := runByteWorkload(New(), data)
		want := runByteWorkload(newOracle(), data)
		if len(got) != len(want) {
			t.Fatalf("trace lengths differ: %d vs oracle %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("diverged at step %d: got (at=%d id=%d), oracle (at=%d id=%d)",
					i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
	})
}
