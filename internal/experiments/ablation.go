package experiments

import (
	"fmt"

	"awgsim/internal/metrics"
)

// AblationBenchmarks picks one representative of each synchronization
// class: a contended test-and-set mutex (resume-count prediction matters),
// a FIFO ticket lock (stall/switch decisions dominate), and the two
// tree-barrier flavours (latency-sensitive resume-all).
func AblationBenchmarks() []string {
	return []string{"SPM_G", "FAM_G", "TB_LG", "LFTB_LG"}
}

// Ablation quantifies AWG's design choices (the DESIGN.md ablation index):
// full AWG against AWG without stall-period prediction, AWG without
// resume-count prediction, and AWG with the SyncMon cache disabled
// (everything virtualized through the Monitor Log), in the oversubscribed
// scenario where the mechanisms interact. Values are speedups over the
// Timeout policy, like Figure 15.
func Ablation(o Options) (*metrics.Table, error) {
	iters := fig15Iters(o)
	variants := []string{"AWG", "AWG-nostall", "AWG-nopredict", "AWG-nocache"}
	var cells []cell
	for _, b := range AblationBenchmarks() {
		cells = append(cells, cell{bench: b, policy: "Timeout", oversub: true, iters: iters})
		for _, v := range variants {
			cells = append(cells, cell{bench: b, policy: v, oversub: true, iters: iters})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("ablation %w", err)
	}
	t := metrics.NewTable("Ablation: AWG variants, oversubscribed, speedup vs Timeout",
		append([]string{"Benchmark"}, variants...)...)
	geo := make(map[string][]float64)
	for _, b := range AblationBenchmarks() {
		base := grid[cell{bench: b, policy: "Timeout", oversub: true, iters: iters}]
		row := []any{b}
		for _, v := range variants {
			res := grid[cell{bench: b, policy: v, oversub: true, iters: iters}]
			if res.Deadlocked {
				row = append(row, deadlockMark)
				continue
			}
			s := res.Speedup(base)
			geo[v] = append(geo[v], s)
			row = append(row, s)
		}
		t.AddRow(row...)
	}
	grow := []any{"GeoMean"}
	for _, v := range variants {
		grow = append(grow, metrics.GeoMean(geo[v]))
	}
	t.AddRow(grow...)
	return t, nil
}
