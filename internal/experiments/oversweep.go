package experiments

import (
	"fmt"

	"awgsim/internal/metrics"
)

// Oversweep demonstrates the paper's core portability claim — AWG provides
// IFP "for an arbitrary number of WGs executing in dynamic resource
// environments" — by launching the same synchronizing kernels with 1x, 2x
// and 4x the machine's resident capacity. The busy-waiting Baseline
// deadlocks the moment the launch exceeds capacity (resident waiters hold
// every slot; the WGs they wait for are never dispatched); the
// IFP-providing policies complete at every size, with runtime scaling
// roughly linearly in the WG count.
func Oversweep(o Options) (*metrics.Table, error) {
	benches := []string{"SPM_G", "TB_LG"}
	pols := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
	mults := []int{1, 2, 4}
	cap1 := o.gpuConfig().NumCUs * o.gpuConfig().MaxWGsPerCU
	var cells []cell
	for _, b := range benches {
		for _, p := range pols {
			for _, m := range mults {
				cells = append(cells, cell{bench: b, policy: p, numWGs: cap1 * m})
			}
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("oversweep %w", err)
	}
	t := metrics.NewTable("Launch oversubscription sweep: runtime (cycles) by G/capacity",
		"Benchmark", "Policy", "1x", "2x", "4x")
	for _, b := range benches {
		for _, p := range pols {
			row := []any{b, p}
			for _, m := range mults {
				res := grid[cell{bench: b, policy: p, numWGs: cap1 * m}]
				if res.Deadlocked {
					row = append(row, deadlockMark)
				} else {
					row = append(row, res.Cycles)
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
