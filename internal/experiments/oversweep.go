package experiments

import (
	"fmt"

	"awgsim/internal/metrics"
)

// Oversweep demonstrates the paper's core portability claim — AWG provides
// IFP "for an arbitrary number of WGs executing in dynamic resource
// environments" — by launching the same synchronizing kernels with 1x, 2x
// and 4x the machine's resident capacity. The busy-waiting Baseline
// deadlocks the moment the launch exceeds capacity (resident waiters hold
// every slot; the WGs they wait for are never dispatched); the
// IFP-providing policies complete at every size, with runtime scaling
// roughly linearly in the WG count.
func Oversweep(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Launch oversubscription sweep: runtime (cycles) by G/capacity",
		"Benchmark", "Policy", "1x", "2x", "4x")
	cap1 := o.gpuConfig().NumCUs * o.gpuConfig().MaxWGsPerCU
	for _, bench := range []string{"SPM_G", "TB_LG"} {
		for _, pol := range []string{"Baseline", "Timeout", "MonNR-All", "AWG"} {
			row := []any{bench, pol}
			for _, mult := range []int{1, 2, 4} {
				res, err := o.runScaled(bench, pol, cap1*mult)
				if err != nil {
					return nil, fmt.Errorf("oversweep %s/%s %dx: %w", bench, pol, mult, err)
				}
				if res.Deadlocked {
					row = append(row, deadlockMark)
				} else {
					row = append(row, res.Cycles)
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// runScaled runs a benchmark with an explicit WG count (which may exceed
// the machine's resident capacity).
func (o Options) runScaled(bench, pol string, numWGs int) (metrics.Result, error) {
	p := o.params()
	p.NumWGs = numWGs
	return o.runWith(bench, pol, p, false)
}
