package experiments

// Shape tests: each paper figure's qualitative claims, asserted at quick
// scale so regressions in the simulator or the policies surface in `go
// test`. Absolute ratios are checked loosely — the claims are about
// orderings and crossovers.

import (
	"strconv"
	"strings"
	"testing"

	"awgsim/internal/metrics"
)

// cells parses a rendered table into rows of fields.
func cells(t *testing.T, tab *metrics.Table) (header []string, rows [][]string) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too small:\n%s", tab.String())
	}
	header = strings.Fields(lines[1])
	for _, l := range lines[2:] {
		rows = append(rows, strings.Fields(l))
	}
	return header, rows
}

func field(t *testing.T, header []string, row []string, col string) string {
	t.Helper()
	for i, h := range header {
		if h == col {
			if i >= len(row) {
				t.Fatalf("row %v has no column %s", row, col)
			}
			return row[i]
		}
	}
	t.Fatalf("no column %q in %v", col, header)
	return ""
}

func num(t *testing.T, header []string, row []string, col string) float64 {
	t.Helper()
	s := field(t, header, row, col)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("column %s = %q is not numeric", col, s)
	}
	return v
}

func geoMeanRow(t *testing.T, rows [][]string) []string {
	t.Helper()
	last := rows[len(rows)-1]
	if last[0] != "GeoMean" {
		t.Fatalf("last row is %v, want GeoMean", last)
	}
	return last
}

// Figure 14's claims: AWG has the best geomean; it beats the Baseline by a
// large factor; MonNR-One collapses on the centralized tree barriers while
// AWG does not (the resume-count predictor's whole point).
func TestFig14Shape(t *testing.T) {
	tab, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	gm := geoMeanRow(t, rows)
	awg := num(t, header, gm, "AWG")
	if awg < 1.3 {
		t.Errorf("AWG geomean speedup %.2f — the headline win is gone", awg)
	}
	for _, p := range []string{"Timeout", "MonNR-All", "MonNR-One"} {
		if v := num(t, header, gm, p); v > awg+0.01 {
			t.Errorf("%s geomean %.2f beats AWG %.2f", p, v, awg)
		}
	}
	for _, row := range rows {
		switch row[0] {
		case "TB_LG", "TBEX_LG":
			one := num(t, header, row, "MonNR-One")
			awgRow := num(t, header, row, "AWG")
			if one > 0.9*awgRow {
				t.Errorf("%s: MonNR-One %.2f not clearly below AWG %.2f — "+
					"the barrier resume-one deficiency disappeared", row[0], one, awgRow)
			}
		case "FAM_G":
			if v := num(t, header, row, "AWG"); v < 2 {
				t.Errorf("FAM_G AWG speedup %.2f, want the big centralized-mutex win", v)
			}
		}
	}
}

// Figure 15's claims: Baseline deadlocks everywhere, Sleep deadlocks where
// it appears, AWG has the best (or tied-best) geomean over Timeout.
func TestFig15Shape(t *testing.T) {
	tab, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, row := range rows[:len(rows)-1] {
		if got := field(t, header, row, "Baseline"); got != "DEADLOCK" {
			t.Errorf("%s: Baseline = %s, want DEADLOCK", row[0], got)
		}
		sleep := field(t, header, row, "Sleep")
		if row[0] == "SPMBO_G" || row[0] == "SPMBO_L" {
			if sleep != "DEADLOCK" {
				t.Errorf("%s: Sleep = %s, want DEADLOCK", row[0], sleep)
			}
		} else if sleep != "-" {
			t.Errorf("%s: Sleep = %s, want absent", row[0], sleep)
		}
	}
	gm := geoMeanRow(t, rows)
	awg := num(t, header, gm, "AWG")
	if awg < 1.5 {
		t.Errorf("AWG geomean vs Timeout %.2f, want a clear win", awg)
	}
	if one := num(t, header, gm, "MonNR-One"); one > awg {
		t.Errorf("MonNR-One geomean %.2f above AWG %.2f", one, awg)
	}
}

// Figure 7's claims: some backoff interval beats busy waiting on the
// contended global mutexes, and over-sleeping eventually gives back the
// gains (no monotone improvement).
func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, row := range rows {
		if row[0] != "SPM_G" && row[0] != "FAM_G" {
			continue
		}
		best := 1e9
		for _, iv := range Fig7Intervals() {
			if v := num(t, header, row, "Sleep-"+iv); v < best {
				best = v
			}
		}
		if best >= 1 {
			t.Errorf("%s: no backoff interval beats busy waiting (best %.2f)", row[0], best)
		}
	}
}

// Figure 8's claims, at quick scale: some interval is worse than busy
// waiting on every primitive class, and the penalty grows with the
// interval once past the sweet spot. (The paper's stronger claim — that
// different primitives prefer *different* intervals — needs full-scale
// contention: at 192 WGs, Timeout-1k poll storms make SPM_G prefer 10k
// while FAM_L prefers 1k; see EXPERIMENTS.md.)
func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	anyWorse := false
	for _, row := range rows {
		for _, iv := range Fig8Intervals() {
			if num(t, header, row, "Timeout-"+iv) > 1 {
				anyWorse = true
			}
		}
		// Past the sweet spot the penalty must grow monotonically-ish:
		// 100k is never better than 20k at this scale.
		if num(t, header, row, "Timeout-100k") < num(t, header, row, "Timeout-20k") {
			t.Errorf("%s: Timeout-100k beat Timeout-20k — over-waiting is free?", row[0])
		}
	}
	if !anyWorse {
		t.Error("no timeout interval was ever worse than busy waiting")
	}
}

// Figure 9's claims: the sporadic monitor executes far more atomics than
// MinResume on centralized primitives; the checking monitors sit between.
func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, row := range rows {
		if row[0] != "FAM_G" {
			continue
		}
		rs := num(t, header, row, "MonRS-All")
		nr := num(t, header, row, "MonNR-All")
		if rs < 2 {
			t.Errorf("FAM_G: MonRS-All %.2fx MinResume — sporadic wakeups too cheap", rs)
		}
		if rs <= nr {
			t.Errorf("FAM_G: sporadic (%.2f) not above checking (%.2f)", rs, nr)
		}
		if nr < 1 {
			t.Errorf("FAM_G: MonNR-All %.2f below the MinResume oracle", nr)
		}
	}
}

// Figure 11's claims: MonNR-One spends far more of its time waiting than
// MonNR-All on a centralized tree barrier.
func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	var allWait, oneWait float64
	for _, row := range rows {
		if row[0] != "TB_LG" {
			continue
		}
		switch row[1] {
		case "MonNR-All":
			allWait = num(t, header, row, "Waiting")
		case "MonNR-One":
			oneWait = num(t, header, row, "Waiting")
		}
	}
	if oneWait <= allWait {
		t.Errorf("TB_LG: MonNR-One waiting %.3f not above MonNR-All %.3f", oneWait, allWait)
	}
}

// The ablation must show the SyncMon cache mattering: AWG-nocache pays for
// virtualizing everything through the Monitor Log.
func TestAblationShape(t *testing.T) {
	tab, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	gm := geoMeanRow(t, rows)
	full := num(t, header, gm, "AWG")
	nocache := num(t, header, gm, "AWG-nocache")
	if nocache >= full {
		t.Errorf("AWG without its SyncMon cache (%.2f) not below full AWG (%.2f)", nocache, full)
	}
}

// Table 2's structural claims: centralized vs decentralized shapes.
func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	vars := map[string]float64{}
	waiters := map[string]float64{}
	for _, row := range rows {
		vars[row[0]] = num(t, header, row, "SyncVars")
		waiters[row[0]] = num(t, header, row, "MaxWaiters/Cond")
	}
	p := quick.params()
	// SPM_G: one lock plus the exit barrier.
	if vars["SPM_G"] > 3 {
		t.Errorf("SPM_G has %v sync vars, want ~2 (centralized)", vars["SPM_G"])
	}
	// SLM_G: on the order of G variables (decentralized queue slots).
	if vars["SLM_G"] < float64(p.NumWGs)/2 {
		t.Errorf("SLM_G has %v sync vars, want ~G=%d (decentralized)", vars["SLM_G"], p.NumWGs)
	}
	// SPM_G's lock condition gathers many waiters; SLM's slots have one.
	if waiters["SPM_G"] < 3 {
		t.Errorf("SPM_G max waiters %v, want many (everyone on one condition)", waiters["SPM_G"])
	}
}

// The launch-oversubscription sweep: Baseline deadlocks past capacity;
// the IFP policies complete at every size with runtime growing with G.
func TestOversweepShape(t *testing.T) {
	tab, err := Oversweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, row := range rows {
		pol := row[1]
		for _, col := range []string{"2x", "4x"} {
			cell := field(t, header, row, col)
			if pol == "Baseline" {
				if cell != "DEADLOCK" {
					t.Errorf("%s/Baseline %s = %s, want DEADLOCK", row[0], col, cell)
				}
			} else if cell == "DEADLOCK" {
				t.Errorf("%s/%s %s deadlocked — IFP violated", row[0], pol, col)
			}
		}
		if pol != "Baseline" {
			if num(t, header, row, "4x") <= num(t, header, row, "1x") {
				t.Errorf("%s/%s: 4x launch not slower than 1x", row[0], pol)
			}
		}
	}
}

// The fault-injection experiment: Faults itself enforces the IFP invariant
// (it returns an error on any violation), so the shape assertions here are
// structural — Baseline deadlocks on every schedule, every IFP policy posts
// a numeric runtime in every schedule column, and the schedule set carries
// both the scripted and the seeded-random columns.
func TestFaultsShape(t *testing.T) {
	tab, err := Faults(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, name := range []string{"flap", "rolling", "squeeze", "jitter", "halfdown", "rand-1", "rand-8"} {
		found := false
		for _, h := range header {
			if h == name {
				found = true
			}
		}
		if !found {
			t.Errorf("schedule column %q missing from %v", name, header)
		}
	}
	schedCols := header[2:]
	if len(schedCols) < 12 {
		t.Errorf("%d schedule columns, want >= 12 (scripted + random)", len(schedCols))
	}
	for _, row := range rows {
		pol := row[1]
		for _, col := range schedCols {
			cell := field(t, header, row, col)
			if pol == "Baseline" {
				if cell != "DEADLOCK" {
					t.Errorf("%s/Baseline under %s = %s, want DEADLOCK", row[0], col, cell)
				}
			} else if num(t, header, row, col) <= 0 {
				t.Errorf("%s/%s under %s: non-positive runtime", row[0], pol, col)
			}
		}
	}
}

// The Baseline worked example must render a full diagnosis naming the
// blocking conditions.
func TestFaultsWorkedExample(t *testing.T) {
	ex, err := FaultsWorkedExample(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deadlock diagnosis:", "progress-stall", "blocked on [0x", "scheduler:"} {
		if !strings.Contains(ex, want) {
			t.Errorf("worked example missing %q:\n%s", want, ex)
		}
	}
}

// The priority-injection experiment: the high-priority kernel always
// finishes, and under AWG the low-priority mutex kernel barely notices
// (its waiters were parked anyway).
func TestPriorityShape(t *testing.T) {
	tab, err := Priority(quick)
	if err != nil {
		t.Fatal(err)
	}
	header, rows := cells(t, tab)
	for _, row := range rows {
		if lat := num(t, header, row, "HPlatency"); lat <= 0 {
			t.Errorf("%s/%s: high-priority kernel never finished", row[0], row[1])
		}
	}
}
