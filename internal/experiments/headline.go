package experiments

import (
	"fmt"

	"awgsim/internal/kernels"
	"awgsim/internal/metrics"
)

// Fig14Policies lists Figure 14's bar series (Baseline is the implicit 1.0
// bar; Sleep appears only for the backoff-modified SPMBO benchmarks).
func Fig14Policies() []string {
	return []string{"Sleep", "Timeout", "MonNR-All", "MonNR-One", "AWG"}
}

// deadlockMark renders a deadlocked run the way the figure labels it.
const deadlockMark = "DEADLOCK"

// Fig14 reproduces the headline non-oversubscribed comparison: per-policy
// speedup over the busy-waiting Baseline on all twelve benchmarks, plus
// the geometric mean. Expected shape: AWG wins or ties everywhere, large
// factors on the centralized global-scope mutexes, MonNR-All weak under
// acquire contention, MonNR-One weak on centralized tree barriers.
func Fig14(o Options) (*metrics.Table, error) {
	var cells []cell
	for _, b := range kernels.All() {
		cells = append(cells, cell{bench: b, policy: "Baseline"})
		for _, p := range Fig14Policies() {
			if p == "Sleep" && !isBackoffBench(b) {
				continue
			}
			cells = append(cells, cell{bench: b, policy: p})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig14 %w", err)
	}
	t := metrics.NewTable("Figure 14: speedup vs Baseline (non-oversubscribed)",
		append([]string{"Benchmark", "Baseline"}, Fig14Policies()...)...)
	geo := make(map[string][]float64)
	for _, b := range kernels.All() {
		base := grid[cell{bench: b, policy: "Baseline"}]
		row := []any{b, 1.0}
		for _, p := range Fig14Policies() {
			if p == "Sleep" && !isBackoffBench(b) {
				// Sleep appears only for benchmarks modified to use
				// exponential backoff with s_sleep.
				row = append(row, "-")
				continue
			}
			s := grid[cell{bench: b, policy: p}].Speedup(base)
			geo[p] = append(geo[p], s)
			row = append(row, s)
		}
		t.AddRow(row...)
	}
	grow := []any{"GeoMean", 1.0}
	for _, p := range Fig14Policies() {
		grow = append(grow, metrics.GeoMean(geo[p]))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig15Iters scales the oversubscribed runs up so that every policy is
// still mid-kernel when the CU is preempted at 50 µs.
const Fig15Iters = 40

// fig15Iters returns the iteration override for the oversubscribed
// experiments at the configured scale.
func fig15Iters(o Options) int {
	if o.Quick {
		return 0 // keep the quick default
	}
	return Fig15Iters
}

// Fig15 reproduces the oversubscribed comparison: one CU is preempted 50 µs
// into the kernel, and speedups are normalized to the Timeout policy
// (Baseline and Sleep hold their resources and deadlock — the figure's
// DEADLOCK labels). Expected shape: AWG ahead of Timeout and the fixed
// MonNR strategies on average; prediction helps centralized primitives;
// stall-time misprediction can cost AWG on latency-sensitive barriers.
func Fig15(o Options) (*metrics.Table, error) {
	iters := fig15Iters(o)
	pols := []string{"Baseline", "Sleep", "MonNR-All", "MonNR-One", "AWG"}
	var cells []cell
	for _, b := range kernels.All() {
		cells = append(cells, cell{bench: b, policy: "Timeout", oversub: true, iters: iters})
		for _, p := range pols {
			if p == "Sleep" && !isBackoffBench(b) {
				continue
			}
			cells = append(cells, cell{bench: b, policy: p, oversub: true, iters: iters})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig15 %w", err)
	}
	t := metrics.NewTable("Figure 15: speedup vs Timeout (oversubscribed, 1 CU preempted at 50us)",
		"Benchmark", "Baseline", "Sleep", "Timeout", "MonNR-All", "MonNR-One", "AWG")
	geo := make(map[string][]float64)
	mark := func(b, p string, base metrics.Result) any {
		if p == "Sleep" && !isBackoffBench(b) {
			return "-"
		}
		res := grid[cell{bench: b, policy: p, oversub: true, iters: iters}]
		if res.Deadlocked {
			return deadlockMark
		}
		s := res.Speedup(base)
		geo[p] = append(geo[p], s)
		return s
	}
	for _, b := range kernels.All() {
		base := grid[cell{bench: b, policy: "Timeout", oversub: true, iters: iters}]
		row := []any{b, mark(b, "Baseline", base), mark(b, "Sleep", base), 1.0}
		for _, p := range []string{"MonNR-All", "MonNR-One", "AWG"} {
			row = append(row, mark(b, p, base))
		}
		t.AddRow(row...)
	}
	grow := []any{"GeoMean", "-", "-", 1.0}
	for _, p := range []string{"MonNR-All", "MonNR-One", "AWG"} {
		grow = append(grow, metrics.GeoMean(geo[p]))
	}
	t.AddRow(grow...)
	return t, nil
}

func isBackoffBench(name string) bool {
	return name == "SPMBO_G" || name == "SPMBO_L"
}
