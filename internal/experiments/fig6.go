package experiments

import (
	"fmt"
	"strings"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
	"awgsim/internal/trace"
)

// Fig6 reproduces the timeline-signature comparison as measured per-policy
// behaviour on a canonical two-phase wait: a producer WG updates a flag a
// few thousand cycles after consumers start waiting on it. The columns
// correspond to the annotations in the paper's timelines — how a waiter
// parks (busy / sleep / stall / context switch), how it is resumed
// (poll-retry / timer / sporadic notification / checked notification), and
// what that cost in atomics and wasted resumes.
func Fig6(o Options) (*metrics.Table, error) {
	pols := []string{"Baseline", "Sleep", "Timeout", "MonRS-All", "MonR-All", "MonNR-All", "MonNR-One", "AWG"}
	jobs := make([]sim.Job, len(pols))
	for i, p := range pols {
		jobs[i] = sim.Job{Key: p, Config: producerConsumerConfig(p, nil)}
	}
	t := metrics.NewTable("Figure 6: policy timeline signatures (producer/consumer episode)",
		"Policy", "Waits", "Atomics", "Resumes", "WastedResumes", "Timeouts", "Stalls", "CtxSwitches", "Cycles")
	for _, out := range sim.RunAll(jobs) {
		if out.Err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", out.Key, out.Err)
		}
		res := out.Result
		if res.Deadlocked {
			return nil, fmt.Errorf("fig6: producer/consumer deadlocked under %s", out.Key)
		}
		t.AddRow(out.Key, res.Stalls+res.Resumes, res.Atomics, res.Resumes,
			res.WastedResumes, res.Timeouts, res.Stalls,
			res.SwitchesOut+res.SwitchesIn, res.Cycles)
	}
	return t, nil
}

// Fig6Timelines renders measured Figure 6-style timelines (one lane per
// WG) for three representative policies on the producer/consumer episode:
// the busy-waiting Baseline (a wall of atomic attempts), MonNR-All (one
// attempt, stall, one resume) and AWG (resume-one plus timeouts when its
// prediction is wrong for the one-shot flag).
func Fig6Timelines(o Options) (string, error) {
	var b strings.Builder
	for _, p := range []string{"Baseline", "MonNR-All", "AWG"} {
		rec := trace.NewRecorder(100_000)
		res, err := sim.Run(producerConsumerConfig(p, rec))
		if err != nil {
			return "", fmt.Errorf("fig6 timeline %s: %w", p, err)
		}
		if res.Deadlocked {
			return "", fmt.Errorf("fig6 timeline: producer/consumer deadlocked under %s", p)
		}
		fmt.Fprintf(&b, "--- %s ---\n%s\n", p, rec.Timeline(96))
	}
	return b.String(), nil
}

// producerConsumerConfig builds the episode: one producer WG and a CU's
// worth of consumers waiting on a flag the producer sets after a delay.
func producerConsumerConfig(policy string, rec *trace.Recorder) sim.Config {
	const flag = mem.Addr(0x8000)
	cfg := gpu.DefaultConfig()
	numWGs := cfg.MaxWGsPerCU // one CU's worth: producer + consumers
	spec := &gpu.KernelSpec{
		Name:       "ProducerConsumer",
		NumWGs:     numWGs,
		WIsPerWG:   64,
		VGPRsPerWI: 8,
		SGPRsPerWF: 128,
		Program: func(d gpu.Device) {
			v := gpu.GlobalVar(flag)
			if d.ID() == 0 {
				d.Compute(4000) // consumers wait roughly this long
				d.AtomicStore(v, 1)
				return
			}
			d.AwaitEq(v, 1)
		},
	}
	return sim.Config{
		Policy: policy,
		Kernel: spec,
		Verify: func(read func(mem.Addr) int64) error {
			if got := read(flag); got != 1 {
				return fmt.Errorf("flag = %d after run", got)
			}
			return nil
		},
		GPU:    cfg,
		Tracer: rec,
	}
}
