package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig13", "fig14", "fig15", "faults", "fleet", "litmus"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, err := Get("fig14"); err != nil {
		t.Fatal(err)
	}
	// An unknown id's error enumerates what is available (so a typo on the
	// awgexp command line is self-correcting), including fleet.
	_, err := Get("fig999")
	if err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	for _, want := range []string{`"fig999"`, "available:", "fig14", "fleet"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-experiment error %q missing %q", err, want)
		}
	}
}

func TestTable1(t *testing.T) {
	tab := Table1(quick)
	s := tab.String()
	for _, want := range []string{"Compute units", "2 GHz", "512 KB", "L1 cache"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 12 {
		t.Fatalf("Table 2 has %d rows, want 12", tab.Rows())
	}
	s := tab.String()
	// Centralized vs decentralized structure must be visible: SPM_G has one
	// sync variable plus the exit barrier; SLM_G has on the order of G.
	if !strings.Contains(s, "SPM_G") || !strings.Contains(s, "SLM_G") {
		t.Fatalf("Table 2 missing benchmarks:\n%s", s)
	}
}

func TestFig5ContextSizes(t *testing.T) {
	tab, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 14 { // 12 benchmarks + 2 apps
		t.Fatalf("Fig 5 has %d rows, want 14", tab.Rows())
	}
}

func TestFig6Signatures(t *testing.T) {
	tab, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 8 {
		t.Fatalf("Fig 6 has %d rows, want 8", tab.Rows())
	}
	s := tab.String()
	if !strings.Contains(s, "AWG") || !strings.Contains(s, "MonRS-All") {
		t.Fatalf("Fig 6 missing policies:\n%s", s)
	}
}

func TestFig9WaitEfficiency(t *testing.T) {
	tab, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 12 {
		t.Fatalf("Fig 9 has %d rows, want 12", tab.Rows())
	}
}

func TestFig13Structures(t *testing.T) {
	tab, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 12 {
		t.Fatalf("Fig 13 has %d rows, want 12", tab.Rows())
	}
}

func TestHardwareOverheadTable(t *testing.T) {
	s := HardwareOverhead().String()
	for _, want := range []string{"1024 conditions", "512 entries", "3.18 KB", "1.5 KB"} {
		if !strings.Contains(s, want) {
			t.Errorf("hardware overhead table missing %q", want)
		}
	}
}
