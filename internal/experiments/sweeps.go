package experiments

import (
	"fmt"

	"awgsim/internal/kernels"
	"awgsim/internal/metrics"
)

// Fig7Benchmarks lists the six benchmarks the paper modified to use
// exponential backoff with s_sleep.
func Fig7Benchmarks() []string {
	return []string{"SPM_G", "FAM_G", "SPM_L", "FAM_L", "TB_LG", "TBEX_LG"}
}

// Fig7Intervals lists the maximum backoff intervals of the Sleep-Xk sweep.
func Fig7Intervals() []string {
	return []string{"1k", "2k", "4k", "8k", "16k", "32k", "64k", "128k", "256k"}
}

// Fig7 reproduces the exponential-backoff sweep: runtime of Sleep-Xk for
// X in 1k..256k, normalized to the busy-waiting Baseline, on the six
// modified benchmarks. The paper's findings to match: backoff improves on
// busy waiting up to a point, over-sleeping becomes counterproductive, and
// no single interval is best everywhere.
func Fig7(o Options) (*metrics.Table, error) {
	var cells []cell
	for _, b := range Fig7Benchmarks() {
		cells = append(cells, cell{bench: b, policy: "Baseline"})
		for _, iv := range Fig7Intervals() {
			cells = append(cells, cell{bench: b, policy: "Sleep-" + iv})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig7 %w", err)
	}
	cols := append([]string{"Benchmark", "Baseline"}, prefixAll("Sleep-", Fig7Intervals())...)
	t := metrics.NewTable("Figure 7: Sleep-Xk runtime normalized to Baseline", cols...)
	for _, b := range Fig7Benchmarks() {
		base := grid[cell{bench: b, policy: "Baseline"}]
		row := []any{b, 1.0}
		for _, iv := range Fig7Intervals() {
			row = append(row, grid[cell{bench: b, policy: "Sleep-" + iv}].NormalizedRuntime(base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8Intervals lists the timeout intervals of Figure 8.
func Fig8Intervals() []string { return []string{"1k", "5k", "10k", "20k", "50k", "100k"} }

// Fig8 reproduces the timeout-interval sweep: runtime of Timeout-Xk
// normalized to Baseline across all twelve benchmarks. Expected shape:
// different primitives prefer different intervals, and some intervals are
// much worse than busy waiting.
func Fig8(o Options) (*metrics.Table, error) {
	var cells []cell
	for _, b := range kernels.All() {
		cells = append(cells, cell{bench: b, policy: "Baseline"})
		for _, iv := range Fig8Intervals() {
			cells = append(cells, cell{bench: b, policy: "Timeout-" + iv})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig8 %w", err)
	}
	cols := append([]string{"Benchmark", "Baseline"}, prefixAll("Timeout-", Fig8Intervals())...)
	t := metrics.NewTable("Figure 8: Timeout-Xk runtime normalized to Baseline", cols...)
	for _, b := range kernels.All() {
		base := grid[cell{bench: b, policy: "Baseline"}]
		row := []any{b, 1.0}
		for _, iv := range Fig8Intervals() {
			row = append(row, grid[cell{bench: b, policy: "Timeout-" + iv}].NormalizedRuntime(base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 reproduces the wait-efficiency comparison: dynamic atomic
// instruction counts of the monitor architectures normalized to the
// MinResume oracle (log scale in the paper). Expected shape: MonRS-All is
// up to orders of magnitude worse on centralized primitives; MonR-All
// better; MonNR-All slightly worse than MonR-All (it registers waiters
// earlier and wakes more of them).
func Fig9(o Options) (*metrics.Table, error) {
	pols := []string{"MonRS-All", "MonR-All", "MonNR-All"}
	var cells []cell
	for _, b := range kernels.All() {
		cells = append(cells, cell{bench: b, policy: "MinResume"})
		for _, p := range pols {
			cells = append(cells, cell{bench: b, policy: p})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig9 %w", err)
	}
	t := metrics.NewTable("Figure 9: dynamic atomics normalized to MinResume",
		"Benchmark", "MinResume", "MonRS-All", "MonR-All", "MonNR-All")
	for _, b := range kernels.All() {
		base := grid[cell{bench: b, policy: "MinResume"}]
		row := []any{b, 1.0}
		for _, p := range pols {
			if base.Atomics == 0 {
				row = append(row, 0.0)
				continue
			}
			res := grid[cell{bench: b, policy: p}]
			row = append(row, float64(res.Atomics)/float64(base.Atomics))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 reproduces the execution-time breakdown: per-policy running and
// waiting cycles summed over WGs, normalized to the Timeout policy's total
// (log scale in the paper). Expected shape: MonNR-One spends far more time
// waiting on barrier benchmarks; the monitor policies cut waiting time on
// mutexes.
func Fig11(o Options) (*metrics.Table, error) {
	pols := []string{"Timeout", "MonNR-All", "MonNR-One"}
	var cells []cell
	for _, b := range kernels.All() {
		for _, p := range pols {
			cells = append(cells, cell{bench: b, policy: p})
		}
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig11 %w", err)
	}
	t := metrics.NewTable("Figure 11: WG execution breakdown normalized to Timeout",
		"Benchmark", "Policy", "Running", "Waiting", "Total")
	for _, b := range kernels.All() {
		var baseTotal float64
		for i, p := range pols {
			res := grid[cell{bench: b, policy: p}]
			total := float64(res.Breakdown.Running + res.Breakdown.Waiting)
			if i == 0 {
				baseTotal = total
			}
			if baseTotal == 0 {
				continue
			}
			t.AddRow(b, p,
				float64(res.Breakdown.Running)/baseTotal,
				float64(res.Breakdown.Waiting)/baseTotal,
				total/baseTotal)
		}
	}
	return t, nil
}

func prefixAll(prefix string, xs []string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = prefix + x
	}
	return out
}
