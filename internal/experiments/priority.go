package experiments

import (
	"fmt"

	"awgsim/awg"
	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
)

// Priority reproduces the benefit the paper claims in Section V.D
// ("Reducing interference with kernel scheduling"): a high-priority
// compute kernel arrives mid-run and preempts resident work-groups of a
// lower-priority synchronizing kernel. The experiment reports, per
// scheduling policy, the high-priority kernel's launch-to-finish latency
// and the slowdown it inflicts on the low-priority kernel, against that
// kernel's run with no injection.
//
// The mechanism under test: under AWG the low-priority kernel's waiting
// WGs are parked (stalled or switched out), so the kernel-level scheduler
// evicts WGs that were not making progress anyway; under busy-waiting
// every WG looks busy and the eviction can hit the critical-section
// holder, stalling the whole kernel for the high-priority kernel's
// entire residence.
func Priority(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Priority injection: HP latency and LP overhead per policy",
		"Benchmark", "Policy", "LPalone", "LPwithHP", "LPoverhead", "HPlatency")
	injectAt := event.Cycle(50_000)
	if o.Quick {
		injectAt = 5_000
	}
	for _, bench := range []string{"SPM_G", "TB_LG"} {
		for _, pol := range []string{"Baseline", "Timeout", "MonNR-All", "AWG"} {
			alone, err := o.run(bench, pol, false, priorityIters(o))
			if err != nil {
				return nil, fmt.Errorf("priority %s/%s alone: %w", bench, pol, err)
			}
			lp, hpLatency, err := o.runWithInjection(bench, pol, injectAt)
			if err != nil {
				return nil, fmt.Errorf("priority %s/%s injected: %w", bench, pol, err)
			}
			overhead := "-"
			if alone.Cycles > 0 && !lp.Deadlocked {
				overhead = fmt.Sprintf("%.2fx", float64(lp.Cycles)/float64(alone.Cycles))
			}
			lpCell := any(lp.Cycles)
			if lp.Deadlocked {
				lpCell = deadlockMark
			}
			t.AddRow(bench, pol, alone.Cycles, lpCell, overhead, hpLatency)
		}
	}
	return t, nil
}

func priorityIters(o Options) int {
	if o.Quick {
		return 0
	}
	return 25 // long enough that the injection lands mid-kernel
}

// runWithInjection runs the benchmark with a high-priority compute kernel
// (one CU's worth of WGs, ~20k cycles each) injected at injectAt.
func (o Options) runWithInjection(bench, pol string, injectAt event.Cycle) (metrics.Result, uint64, error) {
	p := o.params()
	if it := priorityIters(o); it > 0 {
		p.Iters = it
	}
	b, err := kernels.Build(bench, p)
	if err != nil {
		return metrics.Result{}, 0, err
	}
	policy, err := awg.NewPolicy(pol)
	if err != nil {
		return metrics.Result{}, 0, err
	}
	cfg := o.gpuConfig()
	m, err := gpu.NewMachine(cfg, mem.DefaultConfig(), &b.Spec, policy)
	if err != nil {
		return metrics.Result{}, 0, err
	}
	if b.Init != nil {
		b.Init(m.Mem().Write)
	}
	hpWork := event.Cycle(20_000)
	if o.Quick {
		hpWork = 4_000
	}
	hp := &gpu.KernelSpec{
		Name:       "HighPriority",
		NumWGs:     cfg.MaxWGsPerCU, // one CU's worth
		WIsPerWG:   64,
		VGPRsPerWI: 8,
		SGPRsPerWF: 128,
		Program:    func(d gpu.Device) { d.Compute(hpWork) },
	}
	h, err := m.InjectKernel(hp, injectAt, 1)
	if err != nil {
		return metrics.Result{}, 0, err
	}
	res := m.Run()
	if !res.Deadlocked && b.Verify != nil {
		if verr := b.Verify(m.Mem().Read); verr != nil {
			return res, 0, fmt.Errorf("validation after injection: %w", verr)
		}
	}
	return res, h.Latency(), nil
}
