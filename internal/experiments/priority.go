package experiments

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// Priority reproduces the benefit the paper claims in Section V.D
// ("Reducing interference with kernel scheduling"): a high-priority
// compute kernel arrives mid-run and preempts resident work-groups of a
// lower-priority synchronizing kernel. The experiment reports, per
// scheduling policy, the high-priority kernel's launch-to-finish latency
// and the slowdown it inflicts on the low-priority kernel, against that
// kernel's run with no injection.
//
// The mechanism under test: under AWG the low-priority kernel's waiting
// WGs are parked (stalled or switched out), so the kernel-level scheduler
// evicts WGs that were not making progress anyway; under busy-waiting
// every WG looks busy and the eviction can hit the critical-section
// holder, stalling the whole kernel for the high-priority kernel's
// entire residence.
func Priority(o Options) (*metrics.Table, error) {
	benches := []string{"SPM_G", "TB_LG"}
	pols := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
	injectAt := event.Cycle(50_000)
	if o.Quick {
		injectAt = 5_000
	}
	// Interleave the alone/injected pairs into one batch: even job indices
	// are the uninjected references, odd the injected runs.
	var jobs []sim.Job
	for _, b := range benches {
		for _, p := range pols {
			alone := o.simConfig(cell{bench: b, policy: p, iters: priorityIters(o)})
			injected := alone
			injected.Inject = &sim.Injection{Spec: o.highPriorityKernel(), At: injectAt, Priority: 1}
			jobs = append(jobs,
				sim.Job{Key: b + "/" + p + "/alone", Config: alone},
				sim.Job{Key: b + "/" + p + "/injected", Config: injected})
		}
	}
	outs := sim.RunAll(jobs)
	for _, out := range outs {
		if out.Err != nil {
			return nil, fmt.Errorf("priority %s: %w", out.Key, out.Err)
		}
	}
	t := metrics.NewTable("Priority injection: HP latency and LP overhead per policy",
		"Benchmark", "Policy", "LPalone", "LPwithHP", "LPoverhead", "HPlatency")
	i := 0
	for _, b := range benches {
		for _, p := range pols {
			alone, injected := outs[i].Result, outs[i+1]
			i += 2
			lp := injected.Result
			overhead := "-"
			if alone.Cycles > 0 && !lp.Deadlocked {
				overhead = fmt.Sprintf("%.2fx", float64(lp.Cycles)/float64(alone.Cycles))
			}
			lpCell := any(lp.Cycles)
			if lp.Deadlocked {
				lpCell = deadlockMark
			}
			t.AddRow(b, p, alone.Cycles, lpCell, overhead, injected.InjectedLatency)
		}
	}
	return t, nil
}

func priorityIters(o Options) int {
	if o.Quick {
		return 0
	}
	return 25 // long enough that the injection lands mid-kernel
}

// highPriorityKernel builds the injected compute kernel: one CU's worth of
// WGs, ~20k cycles each.
func (o Options) highPriorityKernel() *gpu.KernelSpec {
	cfg := o.gpuConfig()
	hpWork := event.Cycle(20_000)
	if o.Quick {
		hpWork = 4_000
	}
	return &gpu.KernelSpec{
		Name:       "HighPriority",
		NumWGs:     cfg.MaxWGsPerCU, // one CU's worth
		WIsPerWG:   64,
		VGPRsPerWI: 8,
		SGPRsPerWF: 128,
		Program:    func(d gpu.Device) { d.Compute(hpWork) },
	}
}
