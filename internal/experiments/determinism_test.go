package experiments

import (
	"runtime"
	"testing"
)

// TestCrossRunDeterminism renders every experiment twice at the quick scale
// with the worker pool forced wide (GOMAXPROCS >= 2, so sim.RunAll really
// interleaves whole simulations across goroutines) and requires
// byte-identical tables — the paper's replay guarantee checked end to end,
// through the same path the golden record pins.
func TestCrossRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-suite passes")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	for _, e := range All() {
		first, err := e.Run(quick)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		second, err := e.Run(quick)
		if err != nil {
			t.Fatalf("%s (second run): %v", e.ID, err)
		}
		if first.String() != second.String() {
			t.Errorf("%s: output differs between identical runs\n--- first\n%s\n--- second\n%s",
				e.ID, first.String(), second.String())
		}
	}
}
