package experiments

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// faultPolicies is the faults experiment's policy set: the non-IFP
// Baseline (expected to deadlock, diagnosed) against the IFP-providing
// timeout and monitor architectures (required to complete verified under
// every schedule).
var faultPolicies = []string{"Baseline", "Timeout", "MonNR-All", "MonNR-One", "AWG"}

// faultRandomSeeds addresses the randomized schedules; fixed so the
// experiment is a regression artifact, not a dice roll.
var faultRandomSeeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}

// faultScale bundles the experiment's time constants at the configured
// scale: where the fault window opens (after waiting state builds up) and
// the per-run cycle budget that terminates livelocked runs diagnosed.
func (o Options) faultScale() (base event.Cycle, budget uint64) {
	if o.Quick {
		return 10_000, 20_000_000
	}
	return 100_000, 200_000_000
}

// faultSchedules enumerates the experiment's schedule set: the scripted
// sequences plus the seeded random ones, all scaled to the machine.
func (o Options) faultSchedules() []fault.Schedule {
	cfg := o.gpuConfig()
	base, _ := o.faultScale()
	scheds := fault.Scripted(cfg.NumCUs, base)
	for _, seed := range faultRandomSeeds {
		scheds = append(scheds, fault.Random(seed, cfg.NumCUs, base, 8*base))
	}
	return scheds
}

// faultConfig is the faults experiment's session for one (bench, policy,
// schedule) cell: a 2x-capacity launch (so the machine is oversubscribed
// and Baseline's busy-waiters pin every slot) under the given schedule and
// the scale's cycle budget.
func (o Options) faultConfig(bench, policy string, sched fault.Schedule) sim.Config {
	cfg := o.simConfig(cell{bench: bench, policy: policy})
	gcfg := o.gpuConfig()
	p := o.params()
	p.NumWGs = 2 * gcfg.NumCUs * gcfg.MaxWGsPerCU
	cfg.Params = p
	s := sched
	cfg.Faults = &s
	_, cfg.CycleBudget = o.faultScale()
	return cfg
}

// Faults is the robustness experiment: every policy runs oversubscribed
// (2x resident capacity) under every fault schedule — repeated CU
// loss/restore, monitor capacity collapse, CP cadence jitter, and seeded
// random mixes — and the IFP invariant is enforced on every cell: the
// IFP-providing policies must complete with verified results; Baseline
// may deadlock but must produce a structured diagnosis. Any violation
// fails the experiment.
func Faults(o Options) (*metrics.Table, error) {
	benches := []string{"SPM_G", "TB_LG"}
	scheds := o.faultSchedules()

	var jobs []sim.Job
	type key struct {
		bench, policy string
		sched         int
	}
	var keys []key
	for _, b := range benches {
		for _, p := range faultPolicies {
			for si, s := range scheds {
				jobs = append(jobs, sim.Job{Config: o.faultConfig(b, p, s)})
				keys = append(keys, key{b, p, si})
			}
		}
	}
	outs := sim.RunAll(jobs)

	cols := []string{"Benchmark", "Policy"}
	for _, s := range scheds {
		cols = append(cols, s.Name)
	}
	t := metrics.NewTable("Fault injection: runtime (cycles) by policy x fault schedule, 2x capacity", cols...)
	byKey := make(map[key]metrics.Result, len(outs))
	var violations []string
	for i, out := range outs {
		k := keys[i]
		if cerr := fault.CheckOutcome(k.policy, out.Result, out.Err); cerr != nil {
			violations = append(violations, fmt.Sprintf("%s under %s: %v", k.bench, scheds[k.sched].Name, cerr))
		}
		byKey[k] = out.Result
	}
	for _, b := range benches {
		for _, p := range faultPolicies {
			row := []any{b, p}
			for si := range scheds {
				res := byKey[key{b, p, si}]
				if res.Deadlocked {
					row = append(row, deadlockMark)
				} else {
					row = append(row, res.Cycles)
				}
			}
			t.AddRow(row...)
		}
	}
	if len(violations) > 0 {
		return t, fmt.Errorf("faults: %d IFP invariant violation(s), first: %s", len(violations), violations[0])
	}
	return t, nil
}

// FaultsWorkedExample renders one Baseline deadlock diagnosis in full — the
// worked example README documents: an oversubscribed SPM_G launch under the
// first scripted schedule, diagnosed with the blocking conditions named.
func FaultsWorkedExample(o Options) (string, error) {
	scheds := o.faultSchedules()
	res, err := sim.Run(o.faultConfig("SPM_G", "Baseline", scheds[0]))
	if err != nil {
		return "", fmt.Errorf("faults example: %w", err)
	}
	if !res.Deadlocked || res.Diagnosis == nil {
		return "", fmt.Errorf("faults example: Baseline 2x under %s did not produce a diagnosis", scheds[0].Name)
	}
	return fmt.Sprintf("Worked example: %s under %s, schedule %q\n%s",
		res.Benchmark, res.Policy, scheds[0].Name, res.Diagnosis.String()), nil
}
