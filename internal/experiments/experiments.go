// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Table* function runs the required simulations and
// returns both the raw data and a rendered text table whose rows/series
// match what the paper reports. The awgexp command prints them; the
// repository's bench harness wraps each in a testing.B benchmark.
//
// Every experiment enumerates its (benchmark × policy × scenario) grid up
// front and hands the whole batch to the sim package's worker pool, so a
// figure's cells simulate in parallel on a multi-core host. Per-cell
// results are bit-identical to serial execution — each simulation keeps its
// own single-goroutine event engine — so the tables are reproducible
// regardless of core count.
//
// Absolute magnitudes differ from the paper (our substrate is a
// from-scratch timing model, not the authors' gem5 configuration); the
// shapes — who wins, roughly by how much, where the crossovers fall — are
// the reproduction target. EXPERIMENTS.md records paper-vs-measured for
// every experiment.
package experiments

import (
	"fmt"
	"strings"

	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// Options scales the experiments.
type Options struct {
	// Quick shrinks the launches so the whole suite runs in seconds;
	// used by unit tests and the benchmark harness. Shapes remain, exact
	// ratios move.
	Quick bool
}

// params returns the launch parameters for the configured scale.
func (o Options) params() kernels.Params {
	p := kernels.DefaultParams()
	if o.Quick {
		cfg := gpu.DefaultConfig()
		p.NumWGs = cfg.NumCUs * cfg.MaxWGsPerCU / 4
		p.Iters = 3
	}
	return p
}

// gpuConfig returns the machine for the configured scale: quick mode
// shrinks the occupancy cap so the launch still exactly fills the GPU.
func (o Options) gpuConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	if o.Quick {
		cfg.MaxWGsPerCU /= 4
	}
	return cfg
}

// cell identifies one simulation in an experiment's grid. Zero iters and
// numWGs take the scale's defaults.
type cell struct {
	bench, policy string
	oversub       bool
	iters         int
	numWGs        int
}

// simConfig translates a grid cell into a session config at the experiment
// scale.
func (o Options) simConfig(c cell) sim.Config {
	p := o.params()
	if c.iters > 0 {
		p.Iters = c.iters
	}
	if c.numWGs > 0 {
		p.NumWGs = c.numWGs
	}
	cfg := sim.Config{
		Benchmark:     c.bench,
		Policy:        c.policy,
		GPU:           o.gpuConfig(),
		Params:        p,
		Oversubscribe: c.oversub,
	}
	if o.Quick {
		// Scale the preemption instant with the shrunken runs so every
		// policy is still mid-kernel when the CU disappears.
		cfg.PreemptAt = 10_000
	}
	return cfg
}

// batch simulates every distinct cell through the sim worker pool and
// returns the results keyed by cell. Duplicate cells (a base run shared by
// several rows) simulate once. Any cell's error fails the whole batch,
// labeled with the cell that produced it.
func (o Options) batch(cells []cell) (map[cell]metrics.Result, error) {
	seen := make(map[cell]bool, len(cells))
	uniq := make([]cell, 0, len(cells))
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	jobs := make([]sim.Job, len(uniq))
	for i, c := range uniq {
		jobs[i] = sim.Job{Config: o.simConfig(c)}
	}
	results := make(map[cell]metrics.Result, len(uniq))
	for i, out := range sim.RunAll(jobs) {
		if out.Err != nil {
			return nil, fmt.Errorf("%s/%s: %w", uniq[i].bench, uniq[i].policy, out.Err)
		}
		results[uniq[i]] = out.Result
	}
	return results, nil
}

// run executes one simulation with the experiment scale applied; the grid
// experiments use batch instead, this serves one-off probes.
func (o Options) run(benchmark, policy string, oversubscribe bool, iters int) (metrics.Result, error) {
	return sim.Run(o.simConfig(cell{bench: benchmark, policy: policy, oversub: oversubscribe, iters: iters}))
}

// Experiment identifies one regenerable artifact.
type Experiment struct {
	ID    string // "table1", "fig14", ...
	Title string
	Run   func(o Options) (*metrics.Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: baseline GPU model", func(o Options) (*metrics.Table, error) { return Table1(o), nil }},
		{"table2", "Table 2: benchmark characterization", Table2},
		{"fig5", "Figure 5: work-group context size", func(o Options) (*metrics.Table, error) { return Fig5(o) }},
		{"fig6", "Figure 6: policy timeline signatures", Fig6},
		{"fig7", "Figure 7: exponential backoff (Sleep-Xk) sweep", Fig7},
		{"fig8", "Figure 8: timeout interval sweep", Fig8},
		{"fig9", "Figure 9: wait efficiency vs MinResume", Fig9},
		{"fig11", "Figure 11: WG execution breakdown", Fig11},
		{"fig13", "Figure 13: CP scheduling structure sizes", Fig13},
		{"fig14", "Figure 14: non-oversubscribed speedup vs Baseline", Fig14},
		{"fig15", "Figure 15: oversubscribed speedup vs Timeout", Fig15},
		{"ablation", "Ablation: AWG predictor/virtualization variants", Ablation},
		{"priority", "Priority: high-priority kernel injection (Section V.D)", Priority},
		{"oversweep", "Launch oversubscription sweep (1x/2x/4x capacity)", Oversweep},
		{"faults", "Fault injection: IFP under CU loss, monitor degradation, CP jitter", Faults},
		{"fleet", "Fleet: device health events, migration under churn, SLO checking", Fleet},
		{"litmus", "Litmus: generated progress-model conformance matrix (OBE/HSA/LinOcc/IFP)", Litmus},
	}
}

// Get returns the experiment with the given ID. An unknown ID's error
// lists every available experiment, so a typo on the awgexp command line
// is self-correcting.
func Get(id string) (Experiment, error) {
	all := All()
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q; available: %s", id, strings.Join(ids, ", "))
}
