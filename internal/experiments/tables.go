package experiments

import (
	"fmt"

	"awgsim/internal/kernels"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
)

// Table1 renders the baseline GPU model, the machine every experiment runs
// on (Table 1 of the paper).
func Table1(o Options) *metrics.Table {
	g := o.gpuConfig()
	m := mem.DefaultConfig()
	t := metrics.NewTable("Table 1: Baseline GPU model", "Component", "Configuration")
	t.AddRow("Compute units", fmt.Sprintf("%d", g.NumCUs))
	t.AddRow("Clock", "2 GHz")
	t.AddRow("SIMD units / CU", fmt.Sprintf("%d", g.SIMDsPerCU))
	t.AddRow("SIMD width", fmt.Sprintf("%d", g.SIMDWidth))
	t.AddRow("Wavefronts / SIMD", fmt.Sprintf("%d", g.WavefrontsPerSIMD))
	t.AddRow("WG occupancy cap / CU", fmt.Sprintf("%d", g.MaxWGsPerCU))
	t.AddRow("LDS / CU", fmt.Sprintf("%d KB", g.LDSPerCU>>10))
	t.AddRow("L1 cache / CU", fmt.Sprintf("%d KB, %d-way, %d cycles", m.L1Bytes>>10, m.L1Ways, m.L1Latency))
	t.AddRow("L2 cache (shared)", fmt.Sprintf("%d KB, %d-way, %d cycles, %d banks", m.L2Bytes>>10, m.L2Ways, m.L2Latency, m.L2Banks))
	t.AddRow("L2 atomic service", fmt.Sprintf("%d cycles/bank", m.AtomicService))
	t.AddRow("DRAM", fmt.Sprintf("%d channels, %d-cycle miss penalty", m.DRAMChannels, m.DRAMLatency))
	return t
}

// Table2 reproduces the benchmark characterization: for every benchmark it
// runs the busy-waiting Baseline with instrumentation and reports the
// number of synchronization variables, conditions, waiters per condition
// and updates until a condition is met, next to the analytic G/L/n
// columns.
func Table2(o Options) (*metrics.Table, error) {
	p := o.params()
	var cells []cell
	for _, name := range kernels.All() {
		cells = append(cells, cell{bench: name, policy: "Baseline"})
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("table2 %w", err)
	}
	t := metrics.NewTable(
		"Table 2: Inter-WG synchronization benchmarks [G total WGs, L WGs/CU, n WIs/WG]",
		"Benchmark", "G", "L", "n", "SyncVars", "Conds", "MaxWaiters/Cond", "Updates/CondMet")
	for _, name := range kernels.All() {
		res := grid[cell{bench: name, policy: "Baseline"}]
		t.AddRow(name, p.NumWGs, p.WGsPerGroup(), p.WIsPerWG,
			res.SyncVars, res.VarStats.Conditions, res.VarStats.MaxWaiters,
			res.VarStats.UpdatesPerCond)
	}
	return t, nil
}

// Fig5 reports the WG context size per benchmark (Figure 5: 2–10 KB).
func Fig5(o Options) (*metrics.Table, error) {
	p := o.params()
	cfg := o.gpuConfig()
	t := metrics.NewTable("Figure 5: Work-group context size", "Benchmark", "Context KB")
	for _, name := range append(kernels.All(), kernels.Apps()...) {
		b, err := kernels.Build(name, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, float64(b.Spec.ContextBytes(cfg.SIMDWidth))/1024)
	}
	return t, nil
}

// Fig13 reports the sizes of the Command Processor's scheduling data
// structures, measured with the SyncMon cache disabled so every waiting
// condition virtualizes through the Monitor Log (the paper's "maximum
// Monitor Log size assuming no SyncMon Cache"). Entry sizes: a waiting
// condition is 16 B (address + value), a monitored address 8 B, a waiting
// WG ID 4 B, and a monitor-table entry 20 B (condition + WG + state).
func Fig13(o Options) (*metrics.Table, error) {
	var cells []cell
	for _, name := range kernels.All() {
		cells = append(cells, cell{bench: name, policy: "AWG-nocache"})
	}
	grid, err := o.batch(cells)
	if err != nil {
		return nil, fmt.Errorf("fig13 %w", err)
	}
	t := metrics.NewTable("Figure 13: CP scheduling structure sizes (KB), SyncMon cache disabled",
		"Benchmark", "WaitingConds KB", "MonitoredAddrs KB", "WaitingWGs KB", "MonitorTable KB", "ContextStore MB")
	cfg := o.gpuConfig()
	for _, name := range kernels.All() {
		res := grid[cell{bench: name, policy: "AWG-nocache"}]
		spec, err := kernels.Build(name, o.params())
		if err != nil {
			return nil, err
		}
		ctxMB := float64(spec.Spec.ContextBytes(cfg.SIMDWidth)) * float64(o.params().NumWGs) / (1 << 20)
		t.AddRow(name,
			float64(res.MaxConditions*16)/1024,
			float64(res.MaxMonitoredVar*8)/1024,
			float64(res.MaxWaitingWGs*4)/1024,
			float64(res.MaxLogEntries*20)/1024,
			ctxMB)
	}
	return t, nil
}

// HardwareOverhead summarizes AWG's structure budget from Section V.C —
// the numbers are architectural constants, reproduced here so the awgexp
// report carries them next to the measured occupancies.
func HardwareOverhead() *metrics.Table {
	t := metrics.NewTable("AWG hardware overhead (Section V.C)", "Structure", "Size")
	t.AddRow("SyncMon condition cache", "4-way x 256 sets = 1024 conditions")
	t.AddRow("Waiting WG list", "512 entries, 2x9-bit head/tail per condition")
	t.AddRow("Condition cache + WG list", "26112 bits = 3.18 KB")
	t.AddRow("Bloom filters", "512 x 24 bits, 6 hash functions = 1.5 KB")
	t.AddRow("L2 monitored bits", "1 bit/tag = 1 KB")
	return t
}
