package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/fleet"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// fleetDevices is the experiment's fleet size K; fleetFloor its
// survivable-capacity floor. Every scripted churn schedule keeps at least
// fleetFloor devices on the bus, so only the worked example's blackout
// actually drains.
const (
	fleetDevices = 4
	fleetFloor   = 2
)

// fleetRandomSeeds addresses the randomized churn schedules; fixed so the
// experiment is a regression artifact, not a dice roll.
var fleetRandomSeeds = []uint64{1, 2}

// fleetScale bundles the fleet experiment's time constants at the
// configured scale: where the churn window opens, the checkpoint cadence
// (the bound on work a migration or ECC rewind loses), and the fleet
// budget that terminates hung fleets diagnosed. The budget is generous —
// it only costs wall-clock when a workload genuinely takes that long, and
// multiplexing plus thermal derates legitimately stretch fleet-relative
// completion times severalfold.
func (o Options) fleetScale() (base, checkpoint, budget event.Cycle) {
	if o.Quick {
		return 10_000, 100_000, 100_000_000
	}
	return 100_000, 1_000_000, 1_000_000_000
}

// fleetSchedules enumerates the churn-schedule set: the scripted
// sequences (every event kind, both migration flavors, compound churn)
// plus the seeded random ones.
func (o Options) fleetSchedules() []fleet.Schedule {
	base, _, _ := o.fleetScale()
	scheds := fleet.Scripted(fleetDevices, base)
	for _, seed := range fleetRandomSeeds {
		scheds = append(scheds, fleet.Random(seed, fleetDevices, fleetFloor, base, 8*base))
	}
	return scheds
}

// fleetConfig assembles one fleet cell: K devices, one 2x-oversubscribed
// workload per device (benchmarks alternating global/local-memory
// synchronization), a device-coupled machine-fault schedule per device,
// and the given churn plane.
func (o Options) fleetConfig(policy string, plane fleet.Schedule) fleet.Config {
	base, checkpoint, budget := o.fleetScale()
	gcfg := o.gpuConfig()
	benches := []string{"SPM_G", "TB_LG"}
	wls := make([]sim.Config, fleetDevices)
	for i := range wls {
		cfg := o.faultConfig(benches[i%len(benches)], policy, fault.Schedule{})
		cfg.Faults = nil
		cfg.Seed = uint64(i + 1)
		wls[i] = cfg
	}
	faults := make([]fault.Schedule, fleetDevices)
	for d := range faults {
		faults[d] = fault.Random(uint64(100+d), gcfg.NumCUs, base, 8*base)
	}
	return fleet.Config{
		Devices:         fleetDevices,
		MinDevices:      fleetFloor,
		Workloads:       wls,
		Plane:           plane,
		DeviceFaults:    faults,
		CheckpointEvery: checkpoint,
		FleetBudget:     budget,
		SLO:             fleet.SLO{StallWindow: budget / 2},
	}
}

// runFleets executes every fleet cell over min(GOMAXPROCS, n) workers.
// Each fleet drives its own machines (each with its own single-goroutine
// engine), so per-cell results are bit-identical to serial execution.
func runFleets(cfgs []fleet.Config) ([]*fleet.Result, []error) {
	res := make([]*fleet.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	n := runtime.GOMAXPROCS(0)
	if n > len(cfgs) {
		n = len(cfgs)
	}
	if n < 1 {
		n = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				res[i], errs[i] = fleet.New(cfgs[i]).Run()
			}
		}()
	}
	wg.Wait()
	return res, errs
}

// Fleet is the fleet-scale robustness experiment: K devices, every IFP
// policy (plus the Baseline control), every churn schedule — device loss
// with mid-kernel WG migration, restore with rebalance, thermal derates,
// uncorrectable ECC with retire-and-rewind — on top of per-device
// machine-fault schedules. The fleet SLO is enforced on every cell: IFP
// policies complete with zero violations, Baseline may hang but hangs
// diagnosed, and the loss schedules must actually migrate work off the
// lost device.
func Fleet(o Options) (*metrics.Table, error) {
	scheds := o.fleetSchedules()
	var cfgs []fleet.Config
	type key struct {
		policy string
		sched  int
	}
	var keys []key
	for _, p := range faultPolicies {
		for si, s := range scheds {
			cfgs = append(cfgs, o.fleetConfig(p, s))
			keys = append(keys, key{p, si})
		}
	}
	results, errs := runFleets(cfgs)

	t := metrics.NewTable(
		fmt.Sprintf("Fleet: %d devices x policy x churn schedule (2x capacity per device)", fleetDevices),
		"Policy", "Schedule", "Outcome", "Migrations", "Rewinds", "HealthEvents", "LostCycles")
	var violations []string
	for i, r := range results {
		k := keys[i]
		if errs[i] != nil {
			return nil, fmt.Errorf("fleet %s under %s: %w", k.policy, scheds[k.sched].Name, errs[i])
		}
		outcome := fmt.Sprintf("%d", r.FleetCycles)
		deadlocked := false
		for _, w := range r.Workloads {
			if w.Result.Deadlocked && !w.Drained {
				deadlocked = true
			}
		}
		switch {
		case r.Degraded:
			outcome = "DEGRADED"
		case deadlocked:
			outcome = deadlockMark
		}
		migrations, rewinds, lost := len(r.Migrations), 0, uint64(0)
		for _, w := range r.Workloads {
			rewinds += w.Recoveries
			lost += w.LostCycles
		}
		t.AddRow(k.policy, scheds[k.sched].Name, outcome, migrations, rewinds, len(r.Events), lost)
		for _, v := range r.Violations {
			violations = append(violations, fmt.Sprintf("%s under %s: %s", k.policy, scheds[k.sched].Name, v))
		}
		// The loss schedules must exercise the migration path, and the
		// Baseline control must actually hang (diagnosed) — otherwise the
		// oversubscription that gives the experiment its teeth is gone.
		if scheds[k.sched].Name == "single-loss" && migrations == 0 {
			violations = append(violations, fmt.Sprintf("%s under single-loss: no migration off the lost device", k.policy))
		}
		if k.policy == "Baseline" && scheds[k.sched].Name == "steady" && !deadlocked {
			violations = append(violations, "Baseline under steady: control did not deadlock")
		}
	}
	if len(violations) > 0 {
		return t, fmt.Errorf("fleet: %d SLO violation(s), first: %s", len(violations), violations[0])
	}
	return t, nil
}

// FleetWorkedExample renders two fleet runs in full — the worked examples
// README documents. First, AWG under the single-loss schedule: the
// health-event log shows device 3 falling off the bus and its mid-kernel
// workload migrating (checkpoint restore, re-homing, fresh checkpoint on
// the surviving device) with every workload still completing verified.
// Second, a blackout below the survivable floor: the fleet degrades
// cleanly, each drained workload carrying a structured fleet-drain
// diagnosis.
func FleetWorkedExample(o Options) (string, error) {
	scheds := o.fleetSchedules()
	var single fleet.Schedule
	for _, s := range scheds {
		if s.Name == "single-loss" {
			single = s
		}
	}
	r, err := fleet.New(o.fleetConfig("AWG", single)).Run()
	if err != nil {
		return "", fmt.Errorf("fleet example: %w", err)
	}
	if len(r.Migrations) == 0 || len(r.Violations) != 0 {
		return "", fmt.Errorf("fleet example: expected a clean migration, got:\n%s", r)
	}

	base, _, _ := o.fleetScale()
	blackout := fleet.Schedule{Name: "blackout", Events: []fleet.Event{
		{At: 3 * base, Kind: fleet.DeviceLoss, Device: 3},
		{At: 4 * base, Kind: fleet.DeviceLoss, Device: 2},
		{At: 5 * base, Kind: fleet.DeviceLoss, Device: 1},
	}}
	cfg := o.fleetConfig("AWG", blackout)
	d, err := fleet.New(cfg).Run()
	if err != nil {
		return "", fmt.Errorf("fleet blackout example: %w", err)
	}
	if !d.Degraded {
		return "", fmt.Errorf("fleet blackout example: fleet did not degrade:\n%s", d)
	}
	for _, v := range d.Violations {
		return "", fmt.Errorf("fleet blackout example: drain violated the SLO: %s", v)
	}
	return fmt.Sprintf(
		"Worked example: migration under churn — AWG, %d devices, schedule %q\n%s\nWorked example: graceful degradation — losses below the floor of %d, schedule %q\n%s",
		fleetDevices, single.Name, r, cfg.MinDevices, blackout.Name, d), nil
}
