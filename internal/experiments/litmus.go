package experiments

import (
	"fmt"
	"strings"

	"awgsim/internal/kernels"
	"awgsim/internal/litmus"
	"awgsim/internal/metrics"
	"awgsim/internal/sim"
)

// litmusPolicies is the conformance experiment's policy set: the non-IFP
// Baseline and Sleep (documented to fail IFP-only patterns when
// oversubscribed) against the timeout, monitor, and AWG architectures
// (required to pass every cell).
var litmusPolicies = []string{"Baseline", "Sleep", "Timeout", "MonNR-All", "MonNR-One", "AWG"}

// litmusScale bundles the sweep's size at the configured scale: the
// generator seed is fixed so the experiment is a regression artifact, not
// a dice roll (open-ended hunts live in cmd/awglitmus).
func (o Options) litmusScale() (seed uint64, count int) {
	if o.Quick {
		return 1, 24
	}
	return 1, 192
}

// Litmus is the progress-model conformance experiment: a seeded sweep of
// generated synchronization patterns (chains, rings, DAG handoffs,
// gathers, broadcasts, plus deliberately broken waits) runs across every
// policy and occupancy level, each cell is checked against the four
// progress-model oracles (OBE / HSA / linear occupancy / IFP), and the
// outcomes reduce to the conformance matrix. Any violation beyond the
// documented non-IFP outcomes (Baseline and Sleep failing patterns only
// IFP requires) fails the experiment.
func Litmus(o Options) (*metrics.Table, error) {
	seed, count := o.litmusScale()
	pats := litmus.Generate(seed, count)
	s := litmus.Conformance(pats, litmusPolicies, litmus.Occupancies(), 0, 0)
	t := s.Matrix(fmt.Sprintf(
		"Litmus conformance: policy x occupancy vs progress models (%d patterns, seed %d)", count, seed))
	if un := s.Unexpected(); len(un) > 0 {
		return t, fmt.Errorf("litmus: %d conformance violation(s), first: %s", len(un), un[0].Detail)
	}
	return t, nil
}

// LitmusWorkedExamples renders the README's two worked minimal
// reproducers end-to-end: an expected non-IFP failure shrunk to its
// canonical two-WG handoff (with the diagnosis and the committable test
// the harness renders for it), and the same pattern completing under an
// IFP policy at the same single-slot occupancy.
func LitmusWorkedExamples(o Options) (string, error) {
	var b strings.Builder

	// Example 1: a padded reverse chain wedges Baseline at one resident
	// slot (an IFP-only pattern), and shrinks to the minimal handoff.
	occOne := litmus.Occupancies()[2]
	seedPattern := "litmus:1:c50,e0.1;c80,e1.1,s0.1;e2.1,s1.1;s2.1"
	l, err := litmusDecode(seedPattern)
	if err != nil {
		return "", err
	}
	fail := litmus.ViolationFailFn("Baseline", litmus.IFP, occOne, 0)
	if !fail(l) {
		return "", fmt.Errorf("litmus example: Baseline completed %s at one slot", seedPattern)
	}
	min := litmus.Shrink(l, fail)
	res, err := litmusRun(min, "Baseline", occOne.Cap(min.NumWGs()))
	if err != nil {
		return "", fmt.Errorf("litmus example: %w", err)
	}
	if !res.Deadlocked || res.Diagnosis == nil {
		return "", fmt.Errorf("litmus example: shrunk reproducer did not stall diagnosed")
	}
	fmt.Fprintf(&b, "Worked example 1: IFP-only pattern vs the non-IFP Baseline\n")
	fmt.Fprintf(&b, "  generated: %s\n", seedPattern)
	fmt.Fprintf(&b, "  shrunk:    %s  (WG 0 waits for a flag only the later WG 1 publishes)\n", min.Encode())
	fmt.Fprintf(&b, "  Baseline at 1 resident slot: %s\n", res.Diagnosis.Summary())
	fmt.Fprintf(&b, "  rendered regression test (pins the IFP policies' required behaviour):\n")
	test := litmus.RenderGoTest(min, "LitmusRevChainAWG", "litmus_test", "AWG", 1, litmus.IFP)
	for _, line := range strings.Split(strings.TrimRight(test, "\n"), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}

	// Example 2: the same shrunk pattern under an IFP policy completes at
	// the same occupancy — the paper's claim in two WGs.
	res2, err := litmusRun(min, "AWG", occOne.Cap(min.NumWGs()))
	if err != nil {
		return "", fmt.Errorf("litmus example: %w", err)
	}
	if res2.Deadlocked {
		return "", fmt.Errorf("litmus example: AWG stalled on the shrunk reproducer")
	}
	fmt.Fprintf(&b, "\nWorked example 2: the same pattern under an IFP policy\n")
	fmt.Fprintf(&b, "  AWG at 1 resident slot: completed in %d cycles (waiting WG yields its slot,\n", res2.Cycles)
	fmt.Fprintf(&b, "  the publisher runs, the monitor wakes the waiter)\n")
	return strings.TrimRight(b.String(), "\n"), nil
}

func litmusDecode(name string) (kernels.Litmus, error) { return kernels.DecodeLitmus(name) }

func litmusRun(l kernels.Litmus, policy string, wgCap int) (metrics.Result, error) {
	return sim.Run(litmus.RunConfig(l, policy, wgCap, 0))
}
