package kernels

import (
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

func testParams() Params {
	return Params{NumWGs: 16, Groups: 4, WIsPerWG: 64, Iters: 3, CSWork: 100, OutsideWork: 100}
}

func TestAddrAlloc(t *testing.T) {
	a := NewAddrAlloc(0x1000)
	w1, w2 := a.Word(), a.Word()
	if w1 != 0x1000 || w2 != 0x1040 {
		t.Fatalf("words %x %x, want line-strided from 0x1000", w1, w2)
	}
	ws := a.Words(3)
	if len(ws) != 3 || ws[0] != 0x1080 || ws[2] != 0x1100 {
		t.Fatalf("Words(3) = %x", ws)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.NumWGs = 10 // not divisible by 8 groups
	if err := bad.validate(); err == nil {
		t.Error("indivisible WG count accepted")
	}
	bad = DefaultParams()
	bad.Iters = 0
	if err := bad.validate(); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestWGsPerGroup(t *testing.T) {
	p := DefaultParams()
	if p.WGsPerGroup()*p.Groups != p.NumWGs {
		t.Fatalf("groups %d x L %d != G %d", p.Groups, p.WGsPerGroup(), p.NumWGs)
	}
}

func TestGroupMembersMatchMachinePlacement(t *testing.T) {
	p := testParams()
	seen := map[int]bool{}
	for g := 0; g < p.Groups; g++ {
		members := p.groupMembers(g)
		if len(members) != p.WGsPerGroup() {
			t.Fatalf("group %d has %d members, want %d", g, len(members), p.WGsPerGroup())
		}
		for _, id := range members {
			if seen[id] {
				t.Fatalf("WG %d in two groups", id)
			}
			seen[id] = true
			// The machine's blocked placement: (id / L) % Groups.
			if (id/p.WGsPerGroup())%p.Groups != g {
				t.Fatalf("WG %d in group %d disagrees with machine placement", id, g)
			}
		}
	}
	if len(seen) != p.NumWGs {
		t.Fatalf("groups cover %d WGs, want %d", len(seen), p.NumWGs)
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("All() lists %d benchmarks, want 12", len(All()))
	}
	for _, name := range append(All(), Apps()...) {
		b, err := Build(name, testParams())
		if err != nil {
			t.Errorf("Build(%s): %v", name, err)
			continue
		}
		if b.Spec.Name != name {
			t.Errorf("%s spec named %q", name, b.Spec.Name)
		}
		if b.Spec.Program == nil {
			t.Errorf("%s has no program", name)
		}
		if b.Verify == nil {
			t.Errorf("%s has no validation", name)
		}
	}
	if _, err := Get("NoSuchBenchmark"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	bad := testParams()
	bad.NumWGs = 0
	for _, name := range All() {
		if _, err := Build(name, bad); err == nil {
			t.Errorf("%s accepted zero WGs", name)
		}
	}
}

func TestContextSizesSpanPaperRange(t *testing.T) {
	// Figure 5: context sizes range roughly 2–10 KB across the suite.
	p := testParams()
	min, max := 1<<30, 0
	for _, name := range All() {
		b, err := Build(name, p)
		if err != nil {
			t.Fatal(err)
		}
		c := b.Spec.ContextBytes(64)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min < 2000 || min > 4000 {
		t.Errorf("smallest context %d B, want ~2-4 KB", min)
	}
	if max < 8000 || max > 11000 {
		t.Errorf("largest context %d B, want ~8-10 KB", max)
	}
}

func TestTreeBarrierTargets(t *testing.T) {
	b := TreeBarrier{Groups: 4}
	// Group of 4: epoch 1 arrives at 4, releases at 5; epoch 2 arrives at
	// 9, releases at 10 (the counter advances GroupSize+1 per epoch).
	for _, tc := range []struct {
		epoch           int64
		arrive, release int64
	}{{1, 4, 5}, {2, 9, 10}, {3, 14, 15}} {
		a, r := b.LocalTargets(4, tc.epoch)
		if a != tc.arrive || r != tc.release {
			t.Errorf("epoch %d: targets (%d,%d), want (%d,%d)", tc.epoch, a, r, tc.arrive, tc.release)
		}
	}
}

func TestQueueMutexInit(t *testing.T) {
	a := NewAddrAlloc(0x100)
	slots := make([]gpu.Var, 4)
	for i, addr := range a.Words(4) {
		slots[i] = gpu.GlobalVar(addr)
	}
	q := QueueMutex{Tail: gpu.GlobalVar(a.Word()), Slots: slots}
	vals := map[uint64]int64{}
	q.InitUnlocked(func(addr mem.Addr, v int64) { vals[uint64(addr)] = v })
	if vals[uint64(slots[0].Addr)] != 1 {
		t.Fatal("first slot not unlocked by InitUnlocked")
	}
	if len(vals) != 1 {
		t.Fatalf("InitUnlocked wrote %d words, want 1", len(vals))
	}
}

func TestScopedVar(t *testing.T) {
	g := scopedVar(0x40, gpu.Global, 3)
	if g.Scope != gpu.Global || g.Group != 0 {
		t.Errorf("global scopedVar = %+v", g)
	}
	l := scopedVar(0x40, gpu.Local, 3)
	if l.Scope != gpu.Local || l.Group != 3 {
		t.Errorf("local scopedVar = %+v", l)
	}
}

func TestSkewedWorkDeterministicAndBounded(t *testing.T) {
	p := testParams()
	for wg := 0; wg < p.NumWGs; wg++ {
		for i := 0; i < p.Iters; i++ {
			a := skewedWork(p, wg, i)
			b := skewedWork(p, wg, i)
			if a != b {
				t.Fatal("skewed work not deterministic")
			}
			if a < p.OutsideWork/2 || a > p.OutsideWork*4 {
				t.Fatalf("skewed work %d outside [0.5x, 4x] of %d", a, p.OutsideWork)
			}
		}
	}
	// The skew must actually vary across WGs.
	seen := map[uint64]bool{}
	for wg := 0; wg < p.NumWGs; wg++ {
		seen[uint64(skewedWork(p, wg, 0))] = true
	}
	if len(seen) < 3 {
		t.Fatalf("skew produced only %d distinct values across %d WGs", len(seen), p.NumWGs)
	}
}

func TestExtensionsRegistered(t *testing.T) {
	if len(Extensions()) != 2 {
		t.Fatalf("Extensions() lists %d, want 2", len(Extensions()))
	}
	for _, name := range Extensions() {
		b, err := Build(name, testParams())
		if err != nil {
			t.Errorf("Build(%s): %v", name, err)
			continue
		}
		if b.Verify == nil {
			t.Errorf("%s has no validation", name)
		}
	}
}

func TestSemaphoreInitPermits(t *testing.T) {
	b, err := Build("Semaphore", testParams())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[uint64]int64{}
	b.Init(func(a mem.Addr, v int64) { vals[uint64(a)] = v })
	found := false
	for _, v := range vals {
		if v == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("semaphore not initialized with its permit count")
	}
}
