package kernels

import (
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/prog"
)

// IR ports of the benchmark programs. Every builder in this file mirrors its
// Go-closure twin in benchmarks.go/extensions.go op for op: the device-
// operation sequence each WG issues must be identical between the two, which
// is what makes the exec modes bit-identical (and what the dual-mode
// regression and FuzzProgIR pin). Pure address/target arithmetic moves into
// registers; scoped variable tables become pool ranges indexed by geometry
// registers. Porting guide: see README.md and DESIGN.md §11.

// addrWords converts an address slice for prog.Builder.AddrRange.
func addrWords(addrs []mem.Addr) []uint64 {
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = uint64(a)
	}
	return out
}

// irScope maps the gpu scope onto the IR's.
func irScope(s gpu.Scope) prog.Scope {
	if s == gpu.Local {
		return prog.Local
	}
	return prog.Global
}

// irLoop emits `for i := start; !(i exitCmp limit); i++ { body(i) }` — the
// exit comparison is the loop condition's negation (GE for `i < limit`,
// GT for `i <= limit`).
func irLoop(b *prog.Builder, start, limit int64, exitCmp prog.Cmp, body func(i prog.Src)) {
	i := b.Let(prog.Imm(start))
	end := b.Label()
	top := b.Here()
	b.Br(exitCmp, i, prog.Imm(limit), end)
	body(i)
	b.ArithTo(prog.OpAdd, i, i, prog.Imm(1))
	b.Jmp(top)
	b.Bind(end)
}

// irSkewedWork emits skewedWork(p, wg, i) into a register.
func irSkewedWork(b *prog.Builder, p Params, wg, i prog.Src) prog.Src {
	spread := b.Mod(b.Add(b.Mul(wg, prog.Imm(2654435761)), b.Mul(i, prog.Imm(40503))), prog.Imm(8))
	return b.Add(prog.Imm(int64(p.OutsideWork/2)), b.Div(b.Mul(prog.Imm(int64(p.OutsideWork)), spread), prog.Imm(2)))
}

// irCentralBarrier emits CentralBarrier.Wait(d, epoch) on the counter at m.
func irCentralBarrier(b *prog.Builder, m prog.Mem, epoch int64) {
	target := b.Mul(prog.Imm(epoch), b.Geom(prog.GeomNumWGs))
	old := b.AtomicAdd(m, prog.Imm(1))
	skip := b.Label()
	b.Br(prog.EQ, b.Add(old, prog.Imm(1)), target, skip)
	b.AwaitGE(m, target)
	b.Bind(skip)
}

// irScopedTable interns a per-group variable table and returns the memory
// operand its idx-th entry, as a runtime-indexed pool access.
func irScopedTable(b *prog.Builder, addrs []mem.Addr, idx prog.Src, sc prog.Scope) prog.Mem {
	base := b.AddrRange(addrWords(addrs))
	return prog.At(b.Add(prog.Imm(base), idx), sc)
}

// irGroupIdx returns the lock/counter index the scoped benchmarks use: 0 in
// global scope, the WG's scheduling group in local scope.
func irGroupIdx(b *prog.Builder, scope gpu.Scope) prog.Src {
	if scope == gpu.Local {
		return b.Geom(prog.GeomGroup)
	}
	return b.Let(prog.Imm(0))
}

// spinMutexIR is the IR twin of spinMutexBench's program.
func spinMutexIR(p Params, scope gpu.Scope, backoff bool, locks, counters []mem.Addr, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sc := irScope(scope)
	idx := irGroupIdx(b, scope)
	lock := irScopedTable(b, locks, idx, sc)
	ctr := irScopedTable(b, counters, idx, sc)
	wg := b.Geom(prog.GeomID)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		b.AcquireExch(lock, prog.Imm(1), prog.Imm(0), backoff)
		x := b.Load(ctr)
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(ctr, b.Add(x, prog.Imm(1)))
		b.AtomicExchX(lock, prog.Imm(0))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// irTicketLock emits TicketMutex.Lock (ticket fetch-add + serve wait),
// returning the ticket register.
func irTicketLock(b *prog.Builder, tail, serving prog.Mem) prog.Src {
	t := b.AtomicAdd(tail, prog.Imm(1))
	b.AwaitGE(serving, t)
	return t
}

// ticketMutexIR is the IR twin of ticketMutexBench's program.
func ticketMutexIR(p Params, scope gpu.Scope, tails, servings, counters []mem.Addr, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sc := irScope(scope)
	idx := irGroupIdx(b, scope)
	tail := irScopedTable(b, tails, idx, sc)
	serving := irScopedTable(b, servings, idx, sc)
	ctr := irScopedTable(b, counters, idx, sc)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(prog.Imm(int64(p.OutsideWork)))
		irTicketLock(b, tail, serving)
		x := b.Load(ctr)
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(ctr, b.Add(x, prog.Imm(1)))
		b.AtomicAddX(serving, prog.Imm(1))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// queueMutexIR is the IR twin of queueMutexBench's program. Each lock's
// slot ring occupies a contiguous pool range, so slot selection is
// base + ticket%len — the pool addresses stay line-separated even though
// their indices are dense.
func queueMutexIR(p Params, scope gpu.Scope, tails []mem.Addr, slots [][]mem.Addr, counters []mem.Addr, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sc := irScope(scope)
	idx := irGroupIdx(b, scope)
	tail := irScopedTable(b, tails, idx, sc)
	ctr := irScopedTable(b, counters, idx, sc)
	nSlots := int64(len(slots[0]))
	slotsBase := b.AddrRange(addrWords(slots[0]))
	for _, ring := range slots[1:] {
		b.AddrRange(addrWords(ring))
	}
	ringBase := b.Add(prog.Imm(slotsBase), b.Mul(idx, prog.Imm(nSlots)))
	slotAt := func(t prog.Src) prog.Mem {
		return prog.At(b.Add(ringBase, b.Mod(t, prog.Imm(nSlots))), sc)
	}
	wg := b.Geom(prog.GeomID)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		t := b.AtomicAdd(tail, prog.Imm(1))
		b.AwaitEq(slotAt(t), prog.Imm(1))
		x := b.Load(ctr)
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(ctr, b.Add(x, prog.Imm(1)))
		b.AtomicExchX(slotAt(t), prog.Imm(-1))
		b.AtomicExchX(slotAt(b.Add(t, prog.Imm(1))), prog.Imm(1))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// treeBarrierIR is the IR twin of treeBarrierBench's program.
func treeBarrierIR(p Params, localScope gpu.Scope, localCount []mem.Addr, globalCount mem.Addr, perWG []mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sc := irScope(localScope)
	lc := irScopedTable(b, localCount, b.Geom(prog.GeomGroup), sc)
	gc := b.GVar(uint64(globalCount))
	me := irScopedTable(b, perWG, b.Geom(prog.GeomID), prog.Global)
	gs := b.Geom(prog.GeomGroupSize)
	perEpoch := b.Add(gs, prog.Imm(1))
	wg := b.Geom(prog.GeomID)
	irLoop(b, 1, int64(p.Iters), prog.GT, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		b.Store(me, i)
		// TreeBarrier.Wait(d, i)
		arrive := b.Add(b.Mul(b.Sub(i, prog.Imm(1)), perEpoch), gs)
		release := b.Mul(i, perEpoch)
		old := b.AtomicAdd(lc, prog.Imm(1))
		waiter, out := b.Label(), b.Label()
		b.Br(prog.NE, b.Add(old, prog.Imm(1)), arrive, waiter)
		// Last arriver: join the global phase, then release the group.
		gTarget := b.Mul(i, prog.Imm(int64(p.Groups)))
		oldG := b.AtomicAdd(gc, prog.Imm(1))
		released := b.Label()
		b.Br(prog.EQ, b.Add(oldG, prog.Imm(1)), gTarget, released)
		b.AwaitGE(gc, gTarget)
		b.Bind(released)
		b.AtomicAddX(lc, prog.Imm(1))
		b.Jmp(out)
		b.Bind(waiter)
		b.AwaitGE(lc, release)
		b.Bind(out)
	})
	return b.MustBuild()
}

// lfTreeBarrierIR is the IR twin of lfTreeBarrierBench's program. Group
// membership is the blocked placement groupMembers reproduces — group g owns
// the contiguous WG range [g*L, (g+1)*L) with its master at g*L — so member
// iteration is a register loop over flag-table indices.
func lfTreeBarrierIR(p Params, localScope gpu.Scope, wgFlag, groupFlag, perWG []mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sc := irScope(localScope)
	l := prog.Imm(int64(p.WGsPerGroup()))
	wgFlagBase := b.AddrRange(addrWords(wgFlag))
	grpFlagBase := b.AddrRange(addrWords(groupFlag))
	me := irScopedTable(b, perWG, b.Geom(prog.GeomID), prog.Global)
	self := b.Geom(prog.GeomID)
	g := b.Geom(prog.GeomGroup)
	master := b.Mul(g, l)
	limit := b.Add(master, l)
	id := b.Reg()
	flagAt := func(i prog.Src) prog.Mem { return prog.At(b.Add(prog.Imm(wgFlagBase), i), sc) }
	grpFlagAt := func(i prog.Src) prog.Mem { return prog.At(b.Add(prog.Imm(grpFlagBase), i), prog.Global) }
	wg := b.Geom(prog.GeomID)
	irLoop(b, 1, int64(p.Iters), prog.GT, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		b.Store(me, i)
		// LFTreeBarrier.Wait(d, i); arrivals write i, releases write -i.
		neg := b.Sub(prog.Imm(0), i)
		isMaster, out := b.Label(), b.Label()
		b.Br(prog.EQ, self, master, isMaster)
		// Member: signal own flag, await release.
		b.AtomicExchX(flagAt(self), i)
		b.AwaitEq(flagAt(self), neg)
		b.Jmp(out)
		b.Bind(isMaster)
		// Gather the group's members.
		b.ArithTo(prog.OpAdd, id, master, prog.Imm(1))
		gatherDone := b.Label()
		gatherTop := b.Here()
		b.Br(prog.GE, id, limit, gatherDone)
		b.AwaitEq(flagAt(id), i)
		b.ArithTo(prog.OpAdd, id, id, prog.Imm(1))
		b.Jmp(gatherTop)
		b.Bind(gatherDone)
		// Cross-group rendezvous through the global master (group 0).
		otherMaster, rendezvoused := b.Label(), b.Label()
		b.Br(prog.NE, g, prog.Imm(0), otherMaster)
		gg := b.Let(prog.Imm(1))
		awaitDone := b.Label()
		awaitTop := b.Here()
		b.Br(prog.GE, gg, prog.Imm(int64(p.Groups)), awaitDone)
		b.AwaitEq(grpFlagAt(gg), i)
		b.ArithTo(prog.OpAdd, gg, gg, prog.Imm(1))
		b.Jmp(awaitTop)
		b.Bind(awaitDone)
		b.Mov(gg, prog.Imm(1))
		relDone := b.Label()
		relTop := b.Here()
		b.Br(prog.GE, gg, prog.Imm(int64(p.Groups)), relDone)
		b.AtomicExchX(grpFlagAt(gg), neg)
		b.ArithTo(prog.OpAdd, gg, gg, prog.Imm(1))
		b.Jmp(relTop)
		b.Bind(relDone)
		b.Jmp(rendezvoused)
		b.Bind(otherMaster)
		b.AtomicExchX(grpFlagAt(g), i)
		b.AwaitEq(grpFlagAt(g), neg)
		b.Bind(rendezvoused)
		// Release the group's members.
		b.ArithTo(prog.OpAdd, id, master, prog.Imm(1))
		memRelDone := b.Label()
		memRelTop := b.Here()
		b.Br(prog.GE, id, limit, memRelDone)
		b.AtomicExchX(flagAt(id), neg)
		b.ArithTo(prog.OpAdd, id, id, prog.Imm(1))
		b.Jmp(memRelTop)
		b.Bind(memRelDone)
		b.Bind(out)
	})
	return b.MustBuild()
}

// hashTableIR is the IR twin of hashTableBench's program.
func hashTableIR(p Params, buckets int, locks, counts []mem.Addr, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	lockBase := b.AddrRange(addrWords(locks))
	countBase := b.AddrRange(addrWords(counts))
	wg := b.Geom(prog.GeomID)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		key := b.Mod(b.Add(b.Mul(wg, prog.Imm(31)), b.Mul(i, prog.Imm(17))), prog.Imm(int64(buckets)))
		lock := prog.At(b.Add(prog.Imm(lockBase), key), prog.Global)
		count := prog.At(b.Add(prog.Imm(countBase), key), prog.Global)
		b.AcquireExch(lock, prog.Imm(1), prog.Imm(0), false)
		n := b.Load(count)
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(count, b.Add(n, prog.Imm(1)))
		b.AtomicExchX(lock, prog.Imm(0))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// bankAccountIR is the IR twin of bankAccountBench's program.
func bankAccountIR(p Params, accounts int, tails, servings, balances []mem.Addr, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	n := prog.Imm(int64(accounts))
	tailBase := b.AddrRange(addrWords(tails))
	servingBase := b.AddrRange(addrWords(servings))
	balanceBase := b.AddrRange(addrWords(balances))
	tailAt := func(i prog.Src) prog.Mem { return prog.At(b.Add(prog.Imm(tailBase), i), prog.Global) }
	servingAt := func(i prog.Src) prog.Mem { return prog.At(b.Add(prog.Imm(servingBase), i), prog.Global) }
	balanceAt := func(i prog.Src) prog.Mem { return prog.At(b.Add(prog.Imm(balanceBase), i), prog.Global) }
	wg := b.Geom(prog.GeomID)
	lo, hi := b.Reg(), b.Reg()
	tmp := b.Reg()
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		from := b.Mod(b.Add(wg, i), n)
		to := b.Mod(b.Add(b.Add(b.Mul(wg, prog.Imm(7)), b.Mul(i, prog.Imm(3))), prog.Imm(1)), n)
		distinct := b.Label()
		b.Br(prog.NE, from, to, distinct)
		b.ArithTo(prog.OpMod, to, b.Add(to, prog.Imm(1)), n)
		b.Bind(distinct)
		// Lock in account order to avoid application-level deadlock.
		b.Mov(lo, from)
		b.Mov(hi, to)
		ordered := b.Label()
		b.Br(prog.LE, lo, hi, ordered)
		b.Mov(tmp, lo)
		b.Mov(lo, hi)
		b.Mov(hi, tmp)
		b.Bind(ordered)
		irTicketLock(b, tailAt(lo), servingAt(lo))
		irTicketLock(b, tailAt(hi), servingAt(hi))
		bf := b.Load(balanceAt(from))
		bt := b.Load(balanceAt(to))
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(balanceAt(from), b.Sub(bf, prog.Imm(1)))
		b.Store(balanceAt(to), b.Add(bt, prog.Imm(1)))
		b.AtomicAddX(servingAt(hi), prog.Imm(1))
		b.AtomicAddX(servingAt(lo), prog.Imm(1))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// irSemaphoreAcquire emits Semaphore.Acquire on m: the policy-lowered wait
// for a free permit with a CAS race among resumed waiters.
func irSemaphoreAcquire(b *prog.Builder, m prog.Mem) {
	again := b.Here()
	v := b.AtomicLoad(m)
	free := b.Label()
	b.Br(prog.GT, v, prog.Imm(0), free)
	b.AwaitGE(m, prog.Imm(1))
	b.Jmp(again)
	b.Bind(free)
	old := b.AtomicCAS(m, v, b.Sub(v, prog.Imm(1)))
	b.Br(prog.NE, old, v, again)
}

// semaphoreIR is the IR twin of semaphoreBench's program.
func semaphoreIR(p Params, semV, inside, entered, maxSeen, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	sem := b.GVar(uint64(semV))
	insideM := b.GVar(uint64(inside))
	enteredM := b.GVar(uint64(entered))
	maxSeenM := b.GVar(uint64(maxSeen))
	wg := b.Geom(prog.GeomID)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		irSemaphoreAcquire(b, sem)
		n := b.Add(b.AtomicAdd(insideM, prog.Imm(1)), prog.Imm(1))
		m := b.AtomicLoad(maxSeenM)
		noBump := b.Label()
		b.Br(prog.LE, n, m, noBump)
		b.AtomicCAS(maxSeenM, m, n)
		b.Bind(noBump)
		b.AtomicAddX(enteredM, prog.Imm(1))
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.AtomicAddX(insideM, prog.Imm(-1))
		b.AtomicAddX(sem, prog.Imm(1))
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// rwLockIR is the IR twin of rwLockBench's program.
func rwLockIR(p Params, lockV, wordA, wordB, writes, torn, barCount mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	lock := b.GVar(uint64(lockV))
	aM := b.GVar(uint64(wordA))
	bM := b.GVar(uint64(wordB))
	writesM := b.GVar(uint64(writes))
	tornM := b.GVar(uint64(torn))
	wg := b.Geom(prog.GeomID)
	irLoop(b, 0, int64(p.Iters), prog.GE, func(i prog.Src) {
		b.Compute(irSkewedWork(b, p, wg, i))
		reader, out := b.Label(), b.Label()
		b.Br(prog.NE, b.Mod(b.Add(wg, i), prog.Imm(5)), prog.Imm(0), reader)
		// Writer: exclusive CAS acquire, update the pair together.
		b.AcquireCAS(lock, prog.Imm(0), prog.Imm(-1))
		x := b.Load(aM)
		b.Compute(prog.Imm(int64(p.CSWork)))
		b.Store(aM, b.Add(x, prog.Imm(1)))
		b.Store(bM, b.Add(x, prog.Imm(1)))
		b.AtomicAddX(writesM, prog.Imm(1))
		b.AtomicExchX(lock, prog.Imm(0))
		b.Jmp(out)
		b.Bind(reader)
		// RWLock.RLock: wait out writers, CAS-race the reader count up.
		again := b.Here()
		v := b.AtomicLoad(lock)
		noWriter := b.Label()
		b.Br(prog.GE, v, prog.Imm(0), noWriter)
		b.AwaitGE(lock, prog.Imm(0))
		b.Jmp(again)
		b.Bind(noWriter)
		old := b.AtomicCAS(lock, v, b.Add(v, prog.Imm(1)))
		b.Br(prog.NE, old, v, again)
		rx := b.Load(aM)
		b.Compute(prog.Imm(int64(p.CSWork / 2)))
		ry := b.Load(bM)
		consistent := b.Label()
		b.Br(prog.EQ, rx, ry, consistent)
		b.AtomicAddX(tornM, prog.Imm(1))
		b.Bind(consistent)
		b.AtomicAddX(lock, prog.Imm(-1))
		b.Bind(out)
	})
	irCentralBarrier(b, b.GVar(uint64(barCount)), 1)
	return b.MustBuild()
}

// litmusIR lowers a litmus pattern onto the IR: a dispatch chain on the WG
// ID selects the WG's straight-line op segment.
func litmusIR(l Litmus, vars []mem.Addr) *prog.Program {
	b := prog.NewBuilder()
	id := b.Geom(prog.GeomID)
	end := b.Label()
	segs := make([]prog.Label, len(l.Progs))
	for wi := range l.Progs {
		segs[wi] = b.Label()
		b.Br(prog.EQ, id, prog.Imm(int64(wi)), segs[wi])
	}
	b.Jmp(end)
	for wi, ops := range l.Progs {
		b.Bind(segs[wi])
		for _, op := range ops {
			switch op.Kind {
			case LitmusAdd:
				b.AtomicAddX(b.GVar(uint64(vars[op.Var])), prog.Imm(1))
			case LitmusSet:
				b.AtomicExchX(b.GVar(uint64(vars[op.Var])), prog.Imm(op.Val))
			case LitmusWaitGE:
				b.AwaitGE(b.GVar(uint64(vars[op.Var])), prog.Imm(op.Val))
			case LitmusWaitEq:
				b.AwaitEq(b.GVar(uint64(vars[op.Var])), prog.Imm(op.Val))
			case LitmusWork:
				b.Compute(prog.Imm(op.Val))
			}
		}
		b.Jmp(end)
	}
	b.Bind(end)
	return b.MustBuild()
}
