package kernels

// Litmus patterns: tiny declarative inter-WG synchronization kernels in the
// style of Sorensen et al., "Specifying and Testing GPU Workgroup Progress
// Models" (arXiv:2109.06132). A pattern is a per-WG straight-line program
// over shared synchronization variables — signal ops (monotone counter
// increments, one-shot flag writes) and waiting ops (the policy-lowered
// AwaitGE/AwaitEq the whole benchmark suite uses) — small enough that its
// termination behaviour under a formal progress model (OBE, HSA, linear
// occupancy, IFP) is decidable by the abstract oracles in internal/litmus.
//
// A pattern is pure data and round-trips through a canonical string
// encoding that doubles as its benchmark name ("litmus:1:..."): a litmus
// sim.Config is therefore fully declarative, so the session layer's run
// cache, dedupe, and fork planner all apply to litmus sweeps exactly as
// they do to the named suite.
//
// The op discipline is deliberately restricted so abstract execution is
// confluent (the property the oracles and Verify rely on): every variable
// is either a counter — signalled only by Add, waited on only by WaitGE —
// or a flag — written by exactly one Set in the whole pattern. Condition
// satisfaction is then monotone in time (once observable, forever
// observable), so the final memory of a completed run, and whether a given
// scheduler class can get stuck, do not depend on interleaving.

import (
	"fmt"
	"strconv"
	"strings"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// LitmusPrefix starts every encoded litmus pattern name; Get dispatches
// names carrying it to the litmus builder instead of the registry.
const LitmusPrefix = "litmus:1:"

// litmusMaxVars bounds the variable index space (and so the encoded name
// and the memory footprint of a pattern).
const litmusMaxVars = 256

// LitmusOpKind enumerates the pattern grammar.
type LitmusOpKind uint8

const (
	// LitmusAdd atomically increments a counter variable by one — the
	// monotone signal every barrier/ticket shape is built from.
	LitmusAdd LitmusOpKind = iota
	// LitmusSet writes Val to a flag variable with an atomic exchange — a
	// one-shot handoff token. A pattern may set each flag at most once.
	LitmusSet
	// LitmusWaitGE blocks until the variable has been observed >= Val
	// (policy-lowered AwaitGE).
	LitmusWaitGE
	// LitmusWaitEq blocks until the variable has been observed == Val
	// (policy-lowered AwaitEq); only valid on flag variables, whose single
	// write makes the condition monotone.
	LitmusWaitEq
	// LitmusWork advances the WG by Val cycles of pure computation,
	// skewing arrival times the way real rounds do.
	LitmusWork
)

// LitmusOp is one step of a WG's program. Var indexes the pattern's shared
// variable space (unused by LitmusWork); Val is the signal value, wait
// target, or work amount depending on Kind (unused by LitmusAdd).
type LitmusOp struct {
	Kind LitmusOpKind
	Var  int
	Val  int64
}

// Litmus is one pattern: program i runs as WG i.
type Litmus struct {
	Progs [][]LitmusOp
}

// NumWGs reports the launch width (one WG per program).
func (l Litmus) NumWGs() int { return len(l.Progs) }

// NumVars reports the shared variable count (max index + 1).
func (l Litmus) NumVars() int {
	n := 0
	for _, prog := range l.Progs {
		for _, op := range prog {
			if op.Kind != LitmusWork && op.Var >= n {
				n = op.Var + 1
			}
		}
	}
	return n
}

// NumOps reports the total op count across programs — the shrinker's size
// metric.
func (l Litmus) NumOps() int {
	n := 0
	for _, prog := range l.Progs {
		n += len(prog)
	}
	return n
}

// Validate checks the pattern against the grammar's confluence discipline:
// in-range variable indices, positive wait targets and work amounts, and
// the counter/flag split — a variable signalled by Add is never Set, a
// flag is Set at most once (with a nonzero value), and WaitEq only targets
// flags.
func (l Litmus) Validate() error {
	if len(l.Progs) == 0 {
		return fmt.Errorf("kernels: litmus pattern with no WGs")
	}
	const (
		counter = 1
		flag    = 2
	)
	role := make([]int, litmusMaxVars)
	setCount := make([]int, litmusMaxVars)
	classify := func(v, want int) error {
		if role[v] == 0 {
			role[v] = want
			return nil
		}
		if role[v] != want {
			return fmt.Errorf("var %d used both as counter and flag", v)
		}
		return nil
	}
	for wg, prog := range l.Progs {
		for i, op := range prog {
			if op.Kind != LitmusWork && (op.Var < 0 || op.Var >= litmusMaxVars) {
				return fmt.Errorf("kernels: litmus WG %d op %d: var %d out of range [0,%d)", wg, i, op.Var, litmusMaxVars)
			}
			var err error
			switch op.Kind {
			case LitmusAdd:
				err = classify(op.Var, counter)
			case LitmusSet:
				if op.Val <= 0 {
					return fmt.Errorf("kernels: litmus WG %d op %d: set value %d, want > 0", wg, i, op.Val)
				}
				err = classify(op.Var, flag)
				setCount[op.Var]++
				if setCount[op.Var] > 1 {
					return fmt.Errorf("kernels: litmus WG %d op %d: flag %d set more than once", wg, i, op.Var)
				}
			case LitmusWaitGE:
				if op.Val <= 0 {
					return fmt.Errorf("kernels: litmus WG %d op %d: wait target %d, want > 0", wg, i, op.Val)
				}
			case LitmusWaitEq:
				if op.Val <= 0 {
					return fmt.Errorf("kernels: litmus WG %d op %d: wait target %d, want > 0", wg, i, op.Val)
				}
				err = classify(op.Var, flag)
			case LitmusWork:
				if op.Val <= 0 {
					return fmt.Errorf("kernels: litmus WG %d op %d: work %d cycles, want > 0", wg, i, op.Val)
				}
			default:
				return fmt.Errorf("kernels: litmus WG %d op %d: unknown kind %d", wg, i, op.Kind)
			}
			if err != nil {
				return fmt.Errorf("kernels: litmus WG %d op %d: %w", wg, i, err)
			}
		}
	}
	// WaitEq targets must be flags even when the variable is otherwise
	// untouched (a wait on a never-written variable is a deliberate
	// "broken" pattern, not a grammar error), and waits on counters must
	// use GE; the classify calls above enforce the Set/Add split, this
	// second pass pins WaitEq-on-counter.
	for wg, prog := range l.Progs {
		for i, op := range prog {
			if op.Kind == LitmusWaitEq && role[op.Var] == counter {
				return fmt.Errorf("kernels: litmus WG %d op %d: eq-wait on counter var %d (use ge)", wg, i, op.Var)
			}
		}
	}
	return nil
}

// Encode renders the pattern as its canonical benchmark name: programs
// joined by ';', ops by ',', with op tokens a<var>, s<var>.<val>,
// g<var>.<val>, e<var>.<val>, c<cycles>. DecodeLitmus(Encode()) round-trips
// exactly, and equal patterns encode identically — the property that makes
// the name a run-cache fingerprint component.
func (l Litmus) Encode() string {
	var b strings.Builder
	b.WriteString(LitmusPrefix)
	for wi, prog := range l.Progs {
		if wi > 0 {
			b.WriteByte(';')
		}
		for i, op := range prog {
			if i > 0 {
				b.WriteByte(',')
			}
			switch op.Kind {
			case LitmusAdd:
				fmt.Fprintf(&b, "a%d", op.Var)
			case LitmusSet:
				fmt.Fprintf(&b, "s%d.%d", op.Var, op.Val)
			case LitmusWaitGE:
				fmt.Fprintf(&b, "g%d.%d", op.Var, op.Val)
			case LitmusWaitEq:
				fmt.Fprintf(&b, "e%d.%d", op.Var, op.Val)
			case LitmusWork:
				fmt.Fprintf(&b, "c%d", op.Val)
			}
		}
	}
	return b.String()
}

// DecodeLitmus parses an encoded litmus benchmark name. The encoding must
// be canonical (DecodeLitmus(name).Encode() == name) and the decoded
// pattern valid; errors carry the offending token.
func DecodeLitmus(name string) (Litmus, error) {
	body, ok := strings.CutPrefix(name, LitmusPrefix)
	if !ok {
		return Litmus{}, fmt.Errorf("kernels: %q is not a litmus pattern name", name)
	}
	var l Litmus
	for wi, progStr := range strings.Split(body, ";") {
		var prog []LitmusOp
		if progStr != "" {
			for _, tok := range strings.Split(progStr, ",") {
				op, err := decodeLitmusOp(tok)
				if err != nil {
					return Litmus{}, fmt.Errorf("kernels: litmus WG %d: %w", wi, err)
				}
				prog = append(prog, op)
			}
		}
		l.Progs = append(l.Progs, prog)
	}
	if err := l.Validate(); err != nil {
		return Litmus{}, err
	}
	if l.Encode() != name {
		return Litmus{}, fmt.Errorf("kernels: non-canonical litmus name %q", name)
	}
	return l, nil
}

func decodeLitmusOp(tok string) (LitmusOp, error) {
	if tok == "" {
		return LitmusOp{}, fmt.Errorf("empty op token")
	}
	kind := tok[0]
	rest := tok[1:]
	parseInt := func(s string) (int64, error) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("op token %q: %w", tok, err)
		}
		return n, nil
	}
	switch kind {
	case 'a':
		v, err := parseInt(rest)
		if err != nil {
			return LitmusOp{}, err
		}
		return LitmusOp{Kind: LitmusAdd, Var: int(v)}, nil
	case 'c':
		n, err := parseInt(rest)
		if err != nil {
			return LitmusOp{}, err
		}
		return LitmusOp{Kind: LitmusWork, Val: n}, nil
	case 's', 'g', 'e':
		varStr, valStr, ok := strings.Cut(rest, ".")
		if !ok {
			return LitmusOp{}, fmt.Errorf("op token %q: missing value", tok)
		}
		v, err := parseInt(varStr)
		if err != nil {
			return LitmusOp{}, err
		}
		n, err := parseInt(valStr)
		if err != nil {
			return LitmusOp{}, err
		}
		k := map[byte]LitmusOpKind{'s': LitmusSet, 'g': LitmusWaitGE, 'e': LitmusWaitEq}[kind]
		return LitmusOp{Kind: k, Var: int(v), Val: n}, nil
	default:
		return LitmusOp{}, fmt.Errorf("op token %q: unknown kind %q", tok, kind)
	}
}

// FairFinal abstractly executes the pattern under fair scheduling of every
// WG at once — the IFP idealization, no occupancy limit — and reports the
// final variable values and whether all WGs complete. By the grammar's
// confluence discipline the result is schedule-independent, so it is both
// the IFP termination oracle and the expected memory Verify checks on a
// completed run.
func (l Litmus) FairFinal() (vals []int64, complete bool) {
	vals = make([]int64, l.NumVars())
	pc := make([]int, len(l.Progs))
	for {
		progressed := false
		for wg, prog := range l.Progs {
			for pc[wg] < len(prog) {
				op := prog[pc[wg]]
				if !litmusStep(op, vals) {
					break
				}
				pc[wg]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	complete = true
	for wg, prog := range l.Progs {
		if pc[wg] < len(prog) {
			complete = false
		}
	}
	return vals, complete
}

// litmusStep applies op to the abstract memory, reporting false when the
// op is a wait whose condition is not yet satisfied.
func litmusStep(op LitmusOp, vals []int64) bool {
	switch op.Kind {
	case LitmusAdd:
		vals[op.Var]++
	case LitmusSet:
		vals[op.Var] = op.Val
	case LitmusWaitGE:
		return vals[op.Var] >= op.Val
	case LitmusWaitEq:
		return vals[op.Var] == op.Val
	case LitmusWork:
		// Pure computation: no abstract effect.
	}
	return true
}

// litmusBench builds the runnable benchmark for a decoded pattern: one WG
// per program, every variable a line-separated global word, and Verify
// comparing the final memory against the pattern's confluent fair-execution
// values — which catches a policy that "completes" by corrupting or
// skipping synchronization.
func litmusBench(l Litmus, p Params) (*Benchmark, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if p.NumWGs != l.NumWGs() {
		return nil, fmt.Errorf("kernels: litmus pattern has %d WGs, launch params ask %d", l.NumWGs(), p.NumWGs)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x80000)
	vars := alloc.Words(max(l.NumVars(), 1))
	finals, complete := l.FairFinal()

	spec := baseSpec(p, l.Encode(), 8, 0)
	spec.IR = litmusIR(l, vars)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		for _, op := range l.Progs[int(d.ID())] {
			switch op.Kind {
			case LitmusAdd:
				d.AtomicAdd(gpu.GlobalVar(vars[op.Var]), 1)
			case LitmusSet:
				d.AtomicExch(gpu.GlobalVar(vars[op.Var]), op.Val)
			case LitmusWaitGE:
				d.AwaitGE(gpu.GlobalVar(vars[op.Var]), op.Val)
			case LitmusWaitEq:
				d.AwaitEq(gpu.GlobalVar(vars[op.Var]), op.Val)
			case LitmusWork:
				d.Compute(event.Cycle(op.Val))
			}
		}
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			if !complete {
				return fmt.Errorf("litmus: pattern cannot complete under fair scheduling, yet the run completed")
			}
			for i, want := range finals {
				if got := read(vars[i]); got != want {
					return fmt.Errorf("litmus: var %d = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}, nil
}
