package kernels

import (
	"fmt"
	"strings"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// Params shapes a benchmark launch. The harness must launch on a machine
// whose scheduling groups match: Groups = NumCUs and WGsPerGroup =
// MaxWGsPerCU (so NumWGs = Groups*WGsPerGroup fills the machine exactly in
// the non-oversubscribed experiment).
type Params struct {
	NumWGs      int
	Groups      int // scheduling groups (the machine's CU count)
	WIsPerWG    int // n in Table 2
	Iters       int // synchronization rounds per WG
	CSWork      event.Cycle
	OutsideWork event.Cycle
}

// DefaultParams fills the Table 1 machine: 192 WGs in 8 groups of 24,
// synchronization-dominated (short work sections), like the HeteroSync
// microbenchmarks.
func DefaultParams() Params {
	return Params{NumWGs: 192, Groups: 8, WIsPerWG: 64, Iters: 10, CSWork: 200, OutsideWork: 200}
}

// WGsPerGroup reports L, the WGs per scheduling group.
func (p Params) WGsPerGroup() int { return p.NumWGs / p.Groups }

func (p Params) validate() error {
	switch {
	case p.NumWGs <= 0 || p.Groups <= 0 || p.WIsPerWG <= 0 || p.Iters <= 0:
		return fmt.Errorf("kernels: non-positive params %+v", p)
	case p.NumWGs%p.Groups != 0:
		return fmt.Errorf("kernels: %d WGs not divisible into %d groups", p.NumWGs, p.Groups)
	}
	return nil
}

// groupMembers reproduces the machine's blocked WG-to-group placement.
func (p Params) groupMembers(g int) []int {
	l := p.WGsPerGroup()
	var out []int
	for i := 0; i < p.NumWGs; i++ {
		if (i/l)%p.Groups == g {
			out = append(out, i)
		}
	}
	_ = l
	return out
}

// Benchmark couples a kernel with its memory initialization and functional
// validation — the validation is what catches a policy that "wins" by
// corrupting synchronization.
type Benchmark struct {
	Spec   gpu.KernelSpec
	Params Params
	// Init seeds the value store before launch (e.g. unlocking the first
	// queue-mutex slot).
	Init func(write func(mem.Addr, int64))
	// Verify checks post-run memory; it returns an error describing any
	// violated invariant.
	Verify func(read func(mem.Addr) int64) error
}

// Builder constructs a benchmark for the given launch parameters.
type Builder func(p Params) (*Benchmark, error)

// All lists the twelve benchmarks of Figures 14/15 in presentation order.
func All() []string {
	return []string{
		"SPM_G", "SPMBO_G", "FAM_G", "SLM_G",
		"SPM_L", "SPMBO_L", "FAM_L", "SLM_L",
		"TB_LG", "LFTB_LG", "TBEX_LG", "LFTBEX_LG",
	}
}

// Apps lists the application benchmarks from the Table 2 caption.
func Apps() []string { return []string{"HashTable", "BankAccount"} }

// Get returns the builder for a benchmark name. Names carrying
// LitmusPrefix are decoded as litmus patterns rather than looked up: the
// pattern's canonical encoding is its benchmark name, which keeps litmus
// sim.Configs declarative (and so run-cache fingerprintable) without
// registering thousands of generated patterns.
func Get(name string) (Builder, error) {
	if strings.HasPrefix(name, LitmusPrefix) {
		l, err := DecodeLitmus(name)
		if err != nil {
			return nil, err
		}
		return func(p Params) (*Benchmark, error) { return litmusBench(l, p) }, nil
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown benchmark %q", name)
	}
	return b, nil
}

// Build is a convenience for Get + Builder.
func Build(name string, p Params) (*Benchmark, error) {
	b, err := Get(name)
	if err != nil {
		return nil, err
	}
	return b(p)
}

var registry = map[string]Builder{
	"SPM_G":       func(p Params) (*Benchmark, error) { return spinMutexBench(p, "SPM_G", gpu.Global, false, 8, 0) },
	"SPMBO_G":     func(p Params) (*Benchmark, error) { return spinMutexBench(p, "SPMBO_G", gpu.Global, true, 10, 0) },
	"FAM_G":       func(p Params) (*Benchmark, error) { return ticketMutexBench(p, "FAM_G", gpu.Global, 12, 0) },
	"SLM_G":       func(p Params) (*Benchmark, error) { return queueMutexBench(p, "SLM_G", gpu.Global, 16, 512) },
	"SPM_L":       func(p Params) (*Benchmark, error) { return spinMutexBench(p, "SPM_L", gpu.Local, false, 8, 1<<10) },
	"SPMBO_L":     func(p Params) (*Benchmark, error) { return spinMutexBench(p, "SPMBO_L", gpu.Local, true, 10, 1<<10) },
	"FAM_L":       func(p Params) (*Benchmark, error) { return ticketMutexBench(p, "FAM_L", gpu.Local, 12, 1<<10) },
	"SLM_L":       func(p Params) (*Benchmark, error) { return queueMutexBench(p, "SLM_L", gpu.Local, 16, 3<<9) },
	"TB_LG":       func(p Params) (*Benchmark, error) { return treeBarrierBench(p, "TB_LG", gpu.Global, 20, 3<<9) },
	"TBEX_LG":     func(p Params) (*Benchmark, error) { return treeBarrierBench(p, "TBEX_LG", gpu.Local, 22, 2<<10) },
	"LFTB_LG":     func(p Params) (*Benchmark, error) { return lfTreeBarrierBench(p, "LFTB_LG", gpu.Global, 24, 2<<10) },
	"LFTBEX_LG":   func(p Params) (*Benchmark, error) { return lfTreeBarrierBench(p, "LFTBEX_LG", gpu.Local, 26, 5<<9) },
	"HashTable":   hashTableBench,
	"BankAccount": bankAccountBench,
}

// skewedWork returns the i-th round's work for a WG: a deterministic
// spread in [0.5x, 4x] of OutsideWork. Real rounds are imbalanced (memory
// divergence, data-dependent work), and the skew is what makes busy
// waiting expensive at barriers: early arrivals burn issue slots polling
// while the laggards are still computing.
func skewedWork(p Params, wg int, i int) event.Cycle {
	spread := event.Cycle((wg*2654435761 + i*40503) % 8)
	return p.OutsideWork/2 + p.OutsideWork*spread/2
}

func baseSpec(p Params, name string, vgprs, lds int) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:       name,
		NumWGs:     p.NumWGs,
		WIsPerWG:   p.WIsPerWG,
		VGPRsPerWI: vgprs,
		SGPRsPerWF: 128,
		LDSBytes:   lds,
	}
}

// spinMutexBench builds SPM/SPMBO in global or local scope: Iters critical
// sections on a shared counter guarded by a test-and-set lock (one lock
// globally, or one per scheduling group for local scope), closed by the
// validation barrier.
func spinMutexBench(p Params, name string, scope gpu.Scope, backoff bool, vgprs, lds int) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x10000)
	nLocks := 1
	if scope == gpu.Local {
		nLocks = p.Groups
	}
	locks := alloc.Words(nLocks)
	counters := alloc.Words(nLocks)
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, name, vgprs, lds)
	spec.IR = spinMutexIR(p, scope, backoff, locks, counters, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		idx := 0
		if scope == gpu.Local {
			idx = d.Group()
		}
		lock := SpinMutex{V: scopedVar(locks[idx], scope, idx), Backoff: backoff}
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			lock.Lock(d)
			x := d.Load(counters[idx])
			d.Compute(p.CSWork)
			d.Store(counters[idx], x+1)
			lock.Unlock(d)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			per := int64(p.NumWGs * p.Iters)
			if scope == gpu.Local {
				per = int64(p.WGsPerGroup() * p.Iters)
			}
			for i, c := range counters {
				if got := read(c); got != per {
					return fmt.Errorf("%s: counter %d = %d, want %d", name, i, got, per)
				}
			}
			if got := read(bar.Count); got != int64(p.NumWGs) {
				return fmt.Errorf("%s: exit barrier count %d, want %d", name, got, p.NumWGs)
			}
			return nil
		},
	}, nil
}

// ticketMutexBench builds FAM in global or local scope: the centralized
// fetch-add ticket lock.
func ticketMutexBench(p Params, name string, scope gpu.Scope, vgprs, lds int) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x20000)
	n := 1
	if scope == gpu.Local {
		n = p.Groups
	}
	tails := alloc.Words(n)
	servings := alloc.Words(n)
	counters := alloc.Words(n)
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, name, vgprs, lds)
	spec.IR = ticketMutexIR(p, scope, tails, servings, counters, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		idx := 0
		if scope == gpu.Local {
			idx = d.Group()
		}
		lock := TicketMutex{
			Tail:    scopedVar(tails[idx], scope, idx),
			Serving: scopedVar(servings[idx], scope, idx),
		}
		for i := 0; i < p.Iters; i++ {
			d.Compute(p.OutsideWork)
			lock.Lock(d)
			x := d.Load(counters[idx])
			d.Compute(p.CSWork)
			d.Store(counters[idx], x+1)
			lock.Unlock(d)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			per := int64(p.NumWGs * p.Iters)
			if scope == gpu.Local {
				per = int64(p.WGsPerGroup() * p.Iters)
			}
			for i := range counters {
				if got := read(counters[i]); got != per {
					return fmt.Errorf("%s: counter %d = %d, want %d", name, i, got, per)
				}
				if got := read(servings[i]); got != per {
					return fmt.Errorf("%s: serving %d = %d, want %d (unlock count)", name, i, got, per)
				}
			}
			if got := read(bar.Count); got != int64(p.NumWGs) {
				return fmt.Errorf("%s: exit barrier count %d, want %d", name, got, p.NumWGs)
			}
			return nil
		},
	}, nil
}

// queueMutexBench builds SLM in global or local scope: Figure 10's
// decentralized ticket lock, one queue slot per acquire.
func queueMutexBench(p Params, name string, scope gpu.Scope, vgprs, lds int) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x30000)
	n := 1
	holders := p.NumWGs
	if scope == gpu.Local {
		n = p.Groups
		holders = p.WGsPerGroup()
	}
	locks := make([]QueueMutex, n)
	counters := alloc.Words(n)
	tailAddrs := make([]mem.Addr, n)
	allSlots := make([][]mem.Addr, n)
	for i := range locks {
		slotAddrs := alloc.Words(holders + 1)
		slots := make([]gpu.Var, len(slotAddrs))
		for j, a := range slotAddrs {
			slots[j] = scopedVar(a, scope, i)
		}
		tailAddrs[i] = alloc.Word()
		allSlots[i] = slotAddrs
		locks[i] = QueueMutex{Tail: scopedVar(tailAddrs[i], scope, i), Slots: slots}
	}
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, name, vgprs, lds)
	spec.IR = queueMutexIR(p, scope, tailAddrs, allSlots, counters, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		idx := 0
		if scope == gpu.Local {
			idx = d.Group()
		}
		lock := locks[idx]
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			t := lock.Lock(d)
			x := d.Load(counters[idx])
			d.Compute(p.CSWork)
			d.Store(counters[idx], x+1)
			lock.Unlock(d, t)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Init: func(write func(mem.Addr, int64)) {
			for _, l := range locks {
				l.InitUnlocked(write)
			}
		},
		Verify: func(read func(mem.Addr) int64) error {
			per := int64(p.NumWGs * p.Iters)
			if scope == gpu.Local {
				per = int64(p.WGsPerGroup() * p.Iters)
			}
			for i, c := range counters {
				if got := read(c); got != per {
					return fmt.Errorf("%s: counter %d = %d, want %d", name, i, got, per)
				}
			}
			if got := read(bar.Count); got != int64(p.NumWGs) {
				return fmt.Errorf("%s: exit barrier count %d, want %d", name, got, p.NumWGs)
			}
			return nil
		},
	}, nil
}

// treeBarrierBench builds TB/TBEX: Iters rounds of the two-level atomic
// tree barrier with per-round work, validating a per-round token each WG
// accumulates.
func treeBarrierBench(p Params, name string, localScope gpu.Scope, vgprs, lds int) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x40000)
	bar := TreeBarrier{
		LocalCount:  alloc.Words(p.Groups),
		GlobalCount: alloc.Word(),
		LocalScope:  localScope,
		Groups:      p.Groups,
	}
	perWG := alloc.Words(p.NumWGs) // per-round progress tokens

	spec := baseSpec(p, name, vgprs, lds)
	spec.IR = treeBarrierIR(p, localScope, bar.LocalCount, bar.GlobalCount, perWG)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		me := perWG[int(d.ID())]
		for i := 1; i <= p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			d.Store(me, int64(i))
			bar.Wait(d, int64(i))
		}
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			if got := read(bar.GlobalCount); got != int64(p.Iters*p.Groups) {
				return fmt.Errorf("%s: global count %d, want %d", name, got, p.Iters*p.Groups)
			}
			for g, lc := range bar.LocalCount {
				want := int64(p.Iters * (p.WGsPerGroup() + 1))
				if got := read(lc); got != want {
					return fmt.Errorf("%s: group %d count %d, want %d", name, g, got, want)
				}
			}
			for i, a := range perWG {
				if got := read(a); got != int64(p.Iters) {
					return fmt.Errorf("%s: WG %d token %d, want %d", name, i, got, p.Iters)
				}
			}
			return nil
		},
	}, nil
}

// lfTreeBarrierBench builds LFTB/LFTBEX: the decentralized two-level tree
// barrier with one flag per WG.
func lfTreeBarrierBench(p Params, name string, localScope gpu.Scope, vgprs, lds int) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x50000)
	bar := LFTreeBarrier{
		WGFlag:     alloc.Words(p.NumWGs),
		GroupFlag:  alloc.Words(p.Groups),
		LocalScope: localScope,
		Groups:     p.Groups,
		WGsOfGroup: p.groupMembers,
	}
	perWG := alloc.Words(p.NumWGs)

	spec := baseSpec(p, name, vgprs, lds)
	spec.IR = lfTreeBarrierIR(p, localScope, bar.WGFlag, bar.GroupFlag, perWG)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		me := perWG[int(d.ID())]
		for i := 1; i <= p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			d.Store(me, int64(i))
			bar.Wait(d, int64(i))
		}
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			for i, a := range perWG {
				if got := read(a); got != int64(p.Iters) {
					return fmt.Errorf("%s: WG %d token %d, want %d", name, i, got, p.Iters)
				}
			}
			return nil
		},
	}, nil
}

// hashTableBench is the Table 2 caption's hash-table application: WGs
// insert into a bucketed table, each bucket guarded by a spin mutex.
func hashTableBench(p Params) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x60000)
	const buckets = 16
	locks := alloc.Words(buckets)
	counts := alloc.Words(buckets)
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, "HashTable", 14, 1<<10)
	spec.IR = hashTableIR(p, buckets, locks, counts, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			key := (int(d.ID())*31 + i*17) % buckets
			lock := SpinMutex{V: gpu.GlobalVar(locks[key])}
			lock.Lock(d)
			n := d.Load(counts[key])
			d.Compute(p.CSWork)
			d.Store(counts[key], n+1)
			lock.Unlock(d)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			var sum int64
			for _, c := range counts {
				sum += read(c)
			}
			if want := int64(p.NumWGs * p.Iters); sum != want {
				return fmt.Errorf("HashTable: %d insertions recorded, want %d", sum, want)
			}
			return nil
		},
	}, nil
}

// bankAccountBench is the Table 2 caption's bank-account application:
// transfers between ticket-locked accounts, locks taken in account order.
func bankAccountBench(p Params) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x70000)
	const accounts = 8
	const initialBalance = 1000
	tails := alloc.Words(accounts)
	servings := alloc.Words(accounts)
	balances := alloc.Words(accounts)
	bar := CentralBarrier{Count: alloc.Word()}

	lockOf := func(i int) TicketMutex {
		return TicketMutex{Tail: gpu.GlobalVar(tails[i]), Serving: gpu.GlobalVar(servings[i])}
	}
	spec := baseSpec(p, "BankAccount", 18, 1<<10)
	spec.IR = bankAccountIR(p, accounts, tails, servings, balances, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			from := (int(d.ID()) + i) % accounts
			to := (int(d.ID())*7 + i*3 + 1) % accounts
			if from == to {
				to = (to + 1) % accounts
			}
			// Lock in account order to avoid application-level deadlock.
			lo, hi := from, to
			if lo > hi {
				lo, hi = hi, lo
			}
			tLo := lockOf(lo).Lock(d)
			tHi := lockOf(hi).Lock(d)
			_ = tLo
			_ = tHi
			bf := d.Load(balances[from])
			bt := d.Load(balances[to])
			d.Compute(p.CSWork)
			d.Store(balances[from], bf-1)
			d.Store(balances[to], bt+1)
			lockOf(hi).Unlock(d)
			lockOf(lo).Unlock(d)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Init: func(write func(mem.Addr, int64)) {
			for _, b := range balances {
				write(b, initialBalance)
			}
		},
		Verify: func(read func(mem.Addr) int64) error {
			var sum int64
			for _, b := range balances {
				sum += read(b)
			}
			if want := int64(accounts * initialBalance); sum != want {
				return fmt.Errorf("BankAccount: total balance %d, want %d (money not conserved)", sum, want)
			}
			return nil
		},
	}, nil
}
