package kernels

import (
	"fmt"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// This file extends the suite beyond the paper's Table 2 with two further
// fine-grained synchronization primitives built from the same waiting
// operations — a counting semaphore and a single-word reader-writer lock —
// exercising condition shapes the twelve HeteroSync benchmarks do not:
// greater-equal waits with multiple simultaneous winners (semaphore) and
// mixed reader/writer conditions on one variable.

// Semaphore is a counting semaphore on one word: the value holds the
// number of free permits.
type Semaphore struct {
	V gpu.Var
}

// Acquire takes one permit, waiting while none are free. The wait is
// policy-lowered (AwaitGE on permits >= 1); the decrement is a CAS race
// among however many waiters were resumed, with losers re-waiting — Mesa
// semantics in miniature.
func (s Semaphore) Acquire(d gpu.Device) {
	for {
		v := d.AtomicLoad(s.V)
		if v <= 0 {
			d.AwaitGE(s.V, 1)
			continue
		}
		if d.AtomicCAS(s.V, v, v-1) == v {
			return
		}
	}
}

// Release returns one permit.
func (s Semaphore) Release(d gpu.Device) { d.AtomicAdd(s.V, 1) }

// RWLock is a single-word reader-writer lock: 0 free, -1 writer held,
// n>0 n readers held.
type RWLock struct {
	V gpu.Var
}

// RLock acquires shared: wait while a writer holds (value < 0), then race
// a CAS to increment the reader count.
func (l RWLock) RLock(d gpu.Device) {
	for {
		v := d.AtomicLoad(l.V)
		if v < 0 {
			d.AwaitGE(l.V, 0)
			continue
		}
		if d.AtomicCAS(l.V, v, v+1) == v {
			return
		}
	}
}

// RUnlock releases shared.
func (l RWLock) RUnlock(d gpu.Device) { d.AtomicAdd(l.V, -1) }

// WLock acquires exclusive: CAS 0 -> -1, with the wait on (value == 0)
// policy-lowered through the acquire path.
func (l RWLock) WLock(d gpu.Device) { d.AcquireCAS(l.V, 0, -1) }

// WUnlock releases exclusive.
func (l RWLock) WUnlock(d gpu.Device) { d.AtomicExch(l.V, 0) }

// Extensions lists the extension benchmarks.
func Extensions() []string { return []string{"Semaphore", "RWLock"} }

func init() {
	registry["Semaphore"] = semaphoreBench
	registry["RWLock"] = rwLockBench
}

// semaphoreBench: every WG repeatedly enters a region admitting at most K
// concurrent holders. Validation: total entries and a zero in-region count
// at the end; an over-admitting scheduler corrupts the occupancy counter's
// high-water mark, which is tracked inside the region under the semaphore's
// protection window.
func semaphoreBench(p Params) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	const permits = 4
	alloc := NewAddrAlloc(0x80000)
	sem := Semaphore{V: gpu.GlobalVar(alloc.Word())}
	inside := alloc.Word()  // current holders
	entered := alloc.Word() // total successful entries
	maxSeen := alloc.Word() // per-WG-observed maximum holders (monotonic)
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, "Semaphore", 12, 1<<10)
	spec.IR = semaphoreIR(p, sem.V.Addr, inside, entered, maxSeen, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			sem.Acquire(d)
			n := d.AtomicAdd(gpu.GlobalVar(inside), 1) + 1
			if m := d.AtomicLoad(gpu.GlobalVar(maxSeen)); n > m {
				d.AtomicCAS(gpu.GlobalVar(maxSeen), m, n)
			}
			d.AtomicAdd(gpu.GlobalVar(entered), 1)
			d.Compute(p.CSWork)
			d.AtomicAdd(gpu.GlobalVar(inside), -1)
			sem.Release(d)
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Init: func(write func(mem.Addr, int64)) {
			write(sem.V.Addr, permits)
		},
		Verify: func(read func(mem.Addr) int64) error {
			if got := read(entered); got != int64(p.NumWGs*p.Iters) {
				return fmt.Errorf("Semaphore: %d entries, want %d", got, p.NumWGs*p.Iters)
			}
			if got := read(inside); got != 0 {
				return fmt.Errorf("Semaphore: %d holders left inside", got)
			}
			if got := read(sem.V.Addr); got != permits {
				return fmt.Errorf("Semaphore: %d permits at end, want %d", got, permits)
			}
			// maxSeen is sampled racily (load+CAS), so it can under-report;
			// it must never exceed the permit count.
			if got := read(maxSeen); got > permits {
				return fmt.Errorf("Semaphore: %d concurrent holders observed, permits %d", got, permits)
			}
			return nil
		},
	}, nil
}

// rwLockBench: 1 writer op in 5; readers observe a consistent pair of
// words the writer updates together — a torn read means the lock failed.
func rwLockBench(p Params) (*Benchmark, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	alloc := NewAddrAlloc(0x90000)
	lock := RWLock{V: gpu.GlobalVar(alloc.Word())}
	a, b := alloc.Word(), alloc.Word() // writer keeps a == b
	writes := alloc.Word()
	torn := alloc.Word()
	bar := CentralBarrier{Count: alloc.Word()}

	spec := baseSpec(p, "RWLock", 14, 1<<10)
	spec.IR = rwLockIR(p, lock.V.Addr, a, b, writes, torn, bar.Count)
	//lint:allow progclosure goroutine-mode oracle for the IR above; dual-mode golden pins their equivalence
	spec.Program = func(d gpu.Device) {
		for i := 0; i < p.Iters; i++ {
			d.Compute(skewedWork(p, int(d.ID()), i))
			if (int(d.ID())+i)%5 == 0 {
				lock.WLock(d)
				x := d.Load(a)
				d.Compute(p.CSWork)
				d.Store(a, x+1)
				d.Store(b, x+1)
				d.AtomicAdd(gpu.GlobalVar(writes), 1)
				lock.WUnlock(d)
			} else {
				lock.RLock(d)
				x := d.Load(a)
				d.Compute(p.CSWork / 2)
				y := d.Load(b)
				if x != y {
					d.AtomicAdd(gpu.GlobalVar(torn), 1)
				}
				lock.RUnlock(d)
			}
		}
		bar.Wait(d, 1)
	}
	return &Benchmark{
		Spec:   spec,
		Params: p,
		Verify: func(read func(mem.Addr) int64) error {
			if got := read(torn); got != 0 {
				return fmt.Errorf("RWLock: %d torn reads — writer exclusivity violated", got)
			}
			if read(a) != read(b) {
				return fmt.Errorf("RWLock: final pair %d != %d", read(a), read(b))
			}
			if got := read(lock.V.Addr); got != 0 {
				return fmt.Errorf("RWLock: lock word %d at end, want 0", got)
			}
			var want int64
			for wg := 0; wg < p.NumWGs; wg++ {
				for i := 0; i < p.Iters; i++ {
					if (wg+i)%5 == 0 {
						want++
					}
				}
			}
			if got := read(writes); got != want {
				return fmt.Errorf("RWLock: %d writes, want %d", got, want)
			}
			return nil
		},
	}, nil
}
