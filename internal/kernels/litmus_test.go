package kernels

import (
	"strings"
	"testing"
)

func TestLitmusEncodeDecodeRoundTrip(t *testing.T) {
	patterns := []Litmus{
		// Two-WG producer/consumer chain over a flag.
		{Progs: [][]LitmusOp{
			{{Kind: LitmusWaitEq, Var: 0, Val: 1}},
			{{Kind: LitmusSet, Var: 0, Val: 1}},
		}},
		// Counter gather with work skew.
		{Progs: [][]LitmusOp{
			{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 0, Val: 3}},
			{{Kind: LitmusWork, Val: 40}, {Kind: LitmusAdd, Var: 0}},
			{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 0, Val: 2}},
		}},
		// A WG with an empty program is legal (pure bystander).
		{Progs: [][]LitmusOp{
			{{Kind: LitmusSet, Var: 1, Val: 7}},
			nil,
		}},
	}
	for _, l := range patterns {
		name := l.Encode()
		if !strings.HasPrefix(name, LitmusPrefix) {
			t.Fatalf("Encode() = %q, missing prefix", name)
		}
		got, err := DecodeLitmus(name)
		if err != nil {
			t.Fatalf("DecodeLitmus(%q): %v", name, err)
		}
		if got.Encode() != name {
			t.Fatalf("round trip: %q -> %q", name, got.Encode())
		}
	}
}

func TestLitmusDecodeRejects(t *testing.T) {
	bad := []string{
		"litmus:1:",                  // no ops anywhere but also no WGs? (single empty WG is valid; see below)
		"litmus:1:x0",                // unknown op kind
		"litmus:1:s0",                // set without value
		"litmus:1:s0.0",              // zero set value
		"litmus:1:g0.0",              // zero wait target
		"litmus:1:c0",                // zero work
		"litmus:1:a0,s0.1",           // var both counter and flag
		"litmus:1:s0.1;s0.2",         // flag set twice
		"litmus:1:e0.1;a0",           // eq-wait on counter
		"litmus:1:a01",               // non-canonical integer
		"litmus:1:a0,",               // trailing comma
		"litmus:2:a0",                // wrong version prefix
		"litmus:1:a999",              // var out of range
		"SPM_G",                      // not litmus at all
		"litmus:1:s0.1,s1.1,e0.1,,a", // garbage
	}
	for _, name := range bad {
		if name == "litmus:1:" {
			// One empty program is a valid (if useless) pattern only if
			// Validate allows zero vars; it does — skip, covered elsewhere.
			continue
		}
		if _, err := DecodeLitmus(name); err == nil {
			t.Errorf("DecodeLitmus(%q): want error, got none", name)
		}
	}
}

func TestLitmusFairFinal(t *testing.T) {
	// Reverse chain: WG1 sets flag 0, WG0 waits for it. Completes fairly.
	rev := Litmus{Progs: [][]LitmusOp{
		{{Kind: LitmusWaitEq, Var: 0, Val: 1}},
		{{Kind: LitmusSet, Var: 0, Val: 1}},
	}}
	vals, complete := rev.FairFinal()
	if !complete || vals[0] != 1 {
		t.Fatalf("revchain FairFinal = %v, %v; want [1], true", vals, complete)
	}

	// Gather: three adders each waiting for the full count.
	gather := Litmus{Progs: [][]LitmusOp{
		{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 0, Val: 3}},
		{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 0, Val: 3}},
		{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 0, Val: 3}},
	}}
	vals, complete = gather.FairFinal()
	if !complete || vals[0] != 3 {
		t.Fatalf("gather FairFinal = %v, %v; want [3], true", vals, complete)
	}

	// Broken: a wait on a never-signalled flag cannot complete even fairly.
	broken := Litmus{Progs: [][]LitmusOp{
		{{Kind: LitmusWaitEq, Var: 0, Val: 1}},
		{{Kind: LitmusAdd, Var: 1}},
	}}
	vals, complete = broken.FairFinal()
	if complete {
		t.Fatalf("broken FairFinal complete; want stuck")
	}
	if vals[1] != 1 {
		t.Fatalf("broken FairFinal vals = %v; non-stuck WG should still run", vals)
	}

	// Cyclic rendezvous ring needs all three resident simultaneously under
	// fair scheduling — completes abstractly (no occupancy bound).
	ring := Litmus{Progs: [][]LitmusOp{
		{{Kind: LitmusAdd, Var: 0}, {Kind: LitmusWaitGE, Var: 1, Val: 1}},
		{{Kind: LitmusAdd, Var: 1}, {Kind: LitmusWaitGE, Var: 2, Val: 1}},
		{{Kind: LitmusAdd, Var: 2}, {Kind: LitmusWaitGE, Var: 0, Val: 1}},
	}}
	if _, complete = ring.FairFinal(); !complete {
		t.Fatalf("ring FairFinal stuck; want complete")
	}
}

func TestLitmusBenchViaGet(t *testing.T) {
	name := "litmus:1:a0,g0.2;c25,a0,g0.2"
	b, err := Build(name, Params{NumWGs: 2, Groups: 1, WIsPerWG: 1, Iters: 1})
	if err != nil {
		t.Fatalf("Build(%q): %v", name, err)
	}
	if b.Spec.Name != name {
		t.Fatalf("spec name %q, want %q", b.Spec.Name, name)
	}
	if b.Spec.NumWGs != 2 || b.Spec.WIsPerWG != 1 {
		t.Fatalf("spec shape %d WGs x %d WIs, want 2x1", b.Spec.NumWGs, b.Spec.WIsPerWG)
	}
	if b.Verify == nil {
		t.Fatalf("litmus benchmark without Verify")
	}
	// Params/pattern WG mismatch is a construction error, not a panic.
	if _, err := Build(name, Params{NumWGs: 3, Groups: 1, WIsPerWG: 1, Iters: 1}); err == nil {
		t.Fatalf("Build with mismatched NumWGs: want error")
	}
}
