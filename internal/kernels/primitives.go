// Package kernels contains the synchronization primitive library and the
// benchmark suite: the twelve HeteroSync-style inter-WG synchronization
// microbenchmarks of Table 2 (spin mutexes with and without backoff,
// centralized and decentralized ticket mutexes, two-level tree barriers and
// their local-exchange variants, each in global- and local-scope forms),
// plus the hash-table and bank-account applications the Table 2 caption
// lists.
//
// Primitives are written exactly like the paper's device code (Figure 10):
// straight-line loops over atomics, with every wait expressed through the
// Device's policy-lowered synchronization operations. The same benchmark
// source therefore runs unchanged under every scheduling architecture.
package kernels

import (
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// AddrAlloc hands out cache-line-separated addresses for synchronization
// variables and data, so false sharing never pollutes the experiments and
// runs are reproducible.
type AddrAlloc struct {
	next mem.Addr
}

// NewAddrAlloc starts allocating at base.
func NewAddrAlloc(base mem.Addr) *AddrAlloc { return &AddrAlloc{next: base} }

// Word returns a fresh cache-line-aligned word address.
func (a *AddrAlloc) Word() mem.Addr {
	p := a.next
	a.next += 64
	return p
}

// Words returns n fresh line-separated word addresses.
func (a *AddrAlloc) Words(n int) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = a.Word()
	}
	return out
}

// scopedVar wraps an address in the requested scope for group g.
func scopedVar(addr mem.Addr, scope gpu.Scope, group int) gpu.Var {
	if scope == gpu.Local {
		return gpu.LocalVar(addr, group)
	}
	return gpu.GlobalVar(addr)
}

// acquireExch issues a test-and-set acquire, with the software-backoff hint
// when the benchmark variant calls for it.
func acquireExch(d gpu.Device, v gpu.Var, backoff bool) {
	if backoff {
		if hd, ok := d.(gpu.HintedDevice); ok {
			hd.AcquireExchHint(v, 1, 0, gpu.WaitHint{Backoff: true})
			return
		}
	}
	d.AcquireExch(v, 1, 0)
}

// SpinMutex is HeteroSync's test-and-set lock (SPM). Lock spins exchanging
// 1 into the word until the previous value was 0; Unlock stores 0.
// Backoff selects the SPMBO variant, which inserts software exponential
// backoff between failed attempts.
type SpinMutex struct {
	V       gpu.Var
	Backoff bool
}

// Lock acquires the mutex.
func (l SpinMutex) Lock(d gpu.Device) { acquireExch(d, l.V, l.Backoff) }

// Unlock releases the mutex.
func (l SpinMutex) Unlock(d gpu.Device) { d.AtomicExch(l.V, 0) }

// TicketMutex is HeteroSync's centralized ticket lock (FAM): a fetch-add
// tail hands out tickets and a single now-serving word is polled by every
// waiter (G conditions on one variable, one waiter each — Table 2).
type TicketMutex struct {
	Tail    gpu.Var
	Serving gpu.Var
}

// Lock takes a ticket and waits until it is served, returning the ticket.
func (l TicketMutex) Lock(d gpu.Device) int64 {
	t := d.AtomicAdd(l.Tail, 1)
	// The serving counter is monotonic; >= keeps a sparse poller (Timeout,
	// Sleep) from missing its turn's value, and == would anyway never
	// overshoot because only the served holder advances it.
	d.AwaitGE(l.Serving, t)
	return t
}

// Unlock serves the next ticket.
func (l TicketMutex) Unlock(d gpu.Device) { d.AtomicAdd(l.Serving, 1) }

// QueueMutex is the decentralized ticket ("sleep") mutex of Figure 10
// (SLM): each acquirer takes a fresh queue slot and waits on its own word,
// so each variable sees a single waiter and a single meaningful update.
// Slot values: 0 untouched, 1 unlocked (holder may enter), -1 retired.
type QueueMutex struct {
	Tail  gpu.Var
	Slots []gpu.Var // slot ring; must exceed the max outstanding acquires
}

// Lock enqueues and waits for its slot to be unlocked, returning the slot
// index for Unlock.
func (l QueueMutex) Lock(d gpu.Device) int64 {
	t := d.AtomicAdd(l.Tail, 1)
	d.AwaitEq(l.Slots[int(t)%len(l.Slots)], 1)
	return t
}

// Unlock retires the held slot and unlocks the next one.
func (l QueueMutex) Unlock(d gpu.Device, ticket int64) {
	d.AtomicExch(l.Slots[int(ticket)%len(l.Slots)], -1)
	d.AtomicExch(l.Slots[int(ticket+1)%len(l.Slots)], 1)
}

// InitUnlocked prepares the queue so the first ticket may proceed. Call on
// host state (the machine's value store) before launch.
func (l QueueMutex) InitUnlocked(write func(mem.Addr, int64)) {
	write(l.Slots[0].Addr, 1)
}

// TreeBarrier is HeteroSync's two-level atomic tree barrier (TB/TBEX):
// WGs of a group count in on a per-group arrival counter, group masters
// count in on a global counter, and waiters poll the counters themselves —
// monotonic targets epoch*size, so the counter's value stream is exactly
// what AWG's Bloom predictor sees for barriers. The LocalExch variant
// (TBEX) scopes the per-group counters locally, servicing them at the CU.
type TreeBarrier struct {
	LocalCount  []mem.Addr // one per group
	GlobalCount mem.Addr
	LocalScope  gpu.Scope // Global for TB, Local for TBEX
	Groups      int
}

// Wait performs the barrier's epoch-th rendezvous (epoch counts from 1).
// The group counter advances GroupSize+1 per epoch (arrivals plus the
// master's release bump), so targets are monotonic across epochs — the
// value stream AWG's Bloom predictor classifies as barrier-like.
func (b TreeBarrier) Wait(d gpu.Device, epoch int64) {
	g := d.Group()
	lc := scopedVar(b.LocalCount[g], b.LocalScope, g)
	arriveTarget, releaseTarget := b.LocalTargets(d.GroupSize(), epoch)
	if d.AtomicAdd(lc, 1)+1 == arriveTarget {
		// Last arriver of the group: join the global phase.
		gc := gpu.GlobalVar(b.GlobalCount)
		globalTarget := epoch * int64(b.Groups)
		if d.AtomicAdd(gc, 1)+1 != globalTarget {
			d.AwaitGE(gc, globalTarget)
		}
		// Release the group by pushing the local counter past the arrival
		// target.
		d.AtomicAdd(lc, 1)
	} else {
		// Wait for the group master's release bump.
		d.AwaitGE(lc, releaseTarget)
	}
}

// LocalTargets reports the per-epoch arrival and release values of a group
// counter (exposed for tests).
func (b TreeBarrier) LocalTargets(groupSize int, epoch int64) (arrive, release int64) {
	perEpoch := int64(groupSize) + 1
	return (epoch-1)*perEpoch + int64(groupSize), epoch * perEpoch
}

// LFTreeBarrier is the decentralized ("lock-free") two-level tree barrier
// (LFTB/LFTBEX): one flag word per WG, written once per direction per
// epoch, so every condition has exactly one waiter and one update
// (Table 2's LFTB row). Group masters gather member flags, rendezvous
// through per-group flags with a global master, and release in reverse.
type LFTreeBarrier struct {
	WGFlag     []mem.Addr // one per WG, indexed by WG ID
	GroupFlag  []mem.Addr // one per group
	LocalScope gpu.Scope  // scope of the member flags (Local for LFTBEX)
	Groups     int
	WGsOfGroup func(group int) []int // WG IDs belonging to a group
}

// Wait performs the epoch-th rendezvous. Arrival writes epoch; release
// writes -epoch.
func (b LFTreeBarrier) Wait(d gpu.Device, epoch int64) {
	g := d.Group()
	self := int(d.ID())
	members := b.WGsOfGroup(g)
	master := members[0]
	if self != master {
		f := scopedVar(b.WGFlag[self], b.LocalScope, g)
		d.AtomicExch(f, epoch)
		d.AwaitEq(f, -epoch)
		return
	}
	// Group master: gather members.
	for _, id := range members[1:] {
		f := scopedVar(b.WGFlag[id], b.LocalScope, g)
		d.AwaitEq(f, epoch)
	}
	// Rendezvous across groups through the global master (group 0's
	// master), flag-per-group.
	if g == 0 {
		for gg := 1; gg < b.Groups; gg++ {
			d.AwaitEq(gpu.GlobalVar(b.GroupFlag[gg]), epoch)
		}
		for gg := 1; gg < b.Groups; gg++ {
			d.AtomicExch(gpu.GlobalVar(b.GroupFlag[gg]), -epoch)
		}
	} else {
		f := gpu.GlobalVar(b.GroupFlag[g])
		d.AtomicExch(f, epoch)
		d.AwaitEq(f, -epoch)
	}
	// Release members.
	for _, id := range members[1:] {
		f := scopedVar(b.WGFlag[id], b.LocalScope, g)
		d.AtomicExch(f, -epoch)
	}
}

// CentralBarrier is a single-level global barrier used as the validation
// epilogue of the mutex benchmarks (the reason every benchmark deadlocks
// under the busy-waiting Baseline when WGs are lost mid-kernel).
type CentralBarrier struct {
	Count mem.Addr
}

// Wait counts in and polls the counter for the full-arrival target.
func (b CentralBarrier) Wait(d gpu.Device, epoch int64) {
	target := epoch * int64(d.NumWGs())
	v := gpu.GlobalVar(b.Count)
	if d.AtomicAdd(v, 1)+1 != target {
		d.AwaitGE(v, target)
	}
}
