package sim

import (
	"fmt"
	"strconv"
	"strings"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/policy"
)

// Policies lists the canonical policy names in the paper's design-space
// order.
func Policies() []string {
	return []string{
		"Baseline", "Sleep", "Timeout",
		"MonRS-All", "MonR-All", "MonNR-All", "MonNR-One",
		"AWG", "MinResume",
	}
}

// NewPolicy builds a scheduling policy from its name. Sleep and Timeout
// accept an interval suffix in thousands of cycles: "Sleep-16k",
// "Timeout-50k". Bare "Sleep" and "Timeout" use 16k and 20k respectively.
func NewPolicy(name string) (gpu.Policy, error) {
	switch name {
	case "Baseline":
		return policy.NewBaseline(), nil
	case "Sleep":
		return policy.NewSleep(name, 16_000), nil
	case "Timeout":
		return policy.NewTimeout(name, 20_000), nil
	case "MonRS-All":
		return policy.NewMonRSAll(), nil
	case "MonR-All":
		return policy.NewMonRAll(), nil
	case "MonNR-All":
		return policy.NewMonNRAll(), nil
	case "MonNR-One":
		return policy.NewMonNROne(), nil
	case "AWG":
		return policy.NewAWG(), nil
	case "MinResume":
		return policy.NewMinResume(), nil
	case "AWG-nostall":
		return policy.NewAWGNoStallPredict(), nil
	case "AWG-nopredict":
		return policy.NewAWGNoResumePredict(), nil
	case "AWG-nocache":
		// AWG with the SyncMon condition cache disabled: every waiting
		// condition virtualizes through the Monitor Log and the CP — the
		// configuration Figure 13 sizes the CP structures under.
		return policy.NewAWGNoCache(), nil
	}
	if k, ok := strings.CutPrefix(name, "Sleep-"); ok {
		iv, err := parseK(k)
		if err != nil {
			return nil, fmt.Errorf("sim: bad sleep interval %q: %w", name, err)
		}
		return policy.NewSleep(name, iv), nil
	}
	if k, ok := strings.CutPrefix(name, "Timeout-"); ok {
		iv, err := parseK(k)
		if err != nil {
			return nil, fmt.Errorf("sim: bad timeout interval %q: %w", name, err)
		}
		return policy.NewTimeout(name, iv), nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q", name)
}

// parseK parses "16k" or "500" into cycles.
func parseK(s string) (event.Cycle, error) {
	mult := event.Cycle(1)
	if k, ok := strings.CutSuffix(s, "k"); ok {
		mult = 1000
		s = k
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("zero interval")
	}
	return event.Cycle(n) * mult, nil
}
