package sim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"awgsim/internal/metrics"
)

// Run deduplication: experiment sweeps share many identical cells (every
// policy column repeats the same baseline, every sweep repeats its
// endpoints), and a simulation is a pure function of its Config — the
// engine is single-goroutine deterministic, so two equal Configs produce
// bit-identical Results. The session layer therefore fingerprints each
// fully-declarative Config, simulates each unique fingerprint once per
// process, and replays the cached Result for duplicates.
//
// A Config is only fingerprintable when it is closed under its own data:
// any closure or pointer the caller can reach back through (explicit
// Kernel/Init/Verify, a mid-run Injection, an attached Tracer) makes runs
// distinguishable in ways the fingerprint cannot see, so those run fresh.
// Faults schedules are pure data and fingerprint fine.
//
// Replays still account one run's cycles in Totals(), so the simulated-work
// ledger (and the golden record's sim_cycles/sim_runs) is identical with
// and without deduplication; only wall-clock changes. SetDedupe(false)
// restores the always-simulate behaviour.

type cacheEntry struct {
	done chan struct{} // closed when res/err/ran are final
	res  metrics.Result
	err  error
	ran  bool // the session was constructed and executed
	// completed mirrors "done is closed" for readers holding cacheMu (the
	// evictor must not select still-running entries, and a channel cannot
	// be polled under a mutex without racing the closer).
	completed bool
}

// cacheQueueEntry records insertion order for FIFO eviction. A queue slot
// can go stale — its entry evicted or deleted on a construction error, or
// its key re-inserted with a fresh entry — so the evictor checks the map
// still holds this exact entry before acting on it.
type cacheQueueEntry struct {
	key string
	e   *cacheEntry
}

// defaultRunCacheCap bounds the resident cache. Sweeps hold a few thousand
// unique cells; long-lived processes (litmus hunts, fuzzers) churn through
// unbounded fingerprints and previously grew the map without limit.
const defaultRunCacheCap = 8192

var (
	cacheMu    sync.Mutex
	runCache   = map[string]*cacheEntry{}
	cacheQueue []cacheQueueEntry // insertion order, guarded by cacheMu
	cacheCap   = defaultRunCacheCap

	dedupeOff atomic.Bool
	cacheHits atomic.Uint64

	// testHookConstruct, when set (tests only), runs after a first arrival
	// claims its fingerprint and before session construction — the window
	// where ResetCache can swap the map out from under it.
	testHookConstruct func()
)

// SetDedupe toggles run deduplication (on by default).
func SetDedupe(on bool) { dedupeOff.Store(!on) }

// SetRunCacheCap bounds how many completed runs stay resident (default
// 8192); the oldest entries are evicted first. n <= 0 removes the bound.
// Eviction never changes results or the Totals() ledger — an evicted
// duplicate simply re-simulates, bit-identically, on its next arrival.
func SetRunCacheCap(n int) {
	cacheMu.Lock()
	cacheCap = n
	evictLocked()
	cacheMu.Unlock()
}

// CacheHits reports how many runs were satisfied by replaying a cached
// duplicate since process start (or the last ResetCache).
func CacheHits() uint64 { return cacheHits.Load() }

// ResetCache drops every cached run and zeroes the hit counter.
func ResetCache() {
	cacheMu.Lock()
	runCache = map[string]*cacheEntry{}
	cacheQueue = nil
	cacheMu.Unlock()
	cacheHits.Store(0)
}

// evictLocked trims the cache to cacheCap, oldest insertion first. Entries
// still simulating are never evicted — waiters are parked on their done
// channel and the singleflight contract needs the map entry stable — so
// the cache can transiently exceed the cap while everything resident is
// in flight. Caller holds cacheMu.
func evictLocked() {
	if cacheCap <= 0 || len(runCache) <= cacheCap {
		return
	}
	over := len(runCache) - cacheCap
	kept := make([]cacheQueueEntry, 0, len(cacheQueue))
	for i, qe := range cacheQueue {
		if over <= 0 {
			kept = append(kept, cacheQueue[i:]...)
			break
		}
		if runCache[qe.key] != qe.e {
			continue // stale slot: entry already gone or replaced
		}
		if !qe.e.completed {
			kept = append(kept, qe)
			continue
		}
		delete(runCache, qe.key)
		over--
	}
	cacheQueue = kept
}

// fingerprint canonically encodes a declarative Config, reporting ok=false
// for Configs carrying closures or pointers the encoding cannot capture.
// fill() has already run, so defaulted and explicit Configs that denote the
// same machine encode identically.
func fingerprint(c *Config) (string, bool) {
	if c.Kernel != nil || c.Init != nil || c.Verify != nil || c.Inject != nil || c.Tracer != nil {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%q|%q|%#v|%#v|%#v|%v|%d|%d|%v|%d",
		c.Benchmark, c.Policy, c.GPU, c.Mem, c.Params,
		c.Oversubscribe, c.PreemptAt, c.CycleBudget, c.SkipVerify, c.Seed)
	if c.Faults != nil {
		fmt.Fprintf(&b, "|%q", c.Faults.Name)
		for _, e := range c.Faults.Events {
			fmt.Fprintf(&b, "|%#v", e)
		}
	}
	return b.String(), true
}

// runDeduped executes cfg through the run cache: the first arrival of a
// fingerprint simulates (concurrent duplicates wait on it — singleflight),
// later arrivals replay the cached Result and account a run in Totals().
func runDeduped(cfg Config) (metrics.Result, error) {
	if err := cfg.fill(); err != nil {
		return metrics.Result{}, err
	}
	key, ok := fingerprint(&cfg)
	if !ok || dedupeOff.Load() {
		return runFresh(cfg)
	}
	cacheMu.Lock()
	e := runCache[key]
	if e != nil {
		cacheMu.Unlock()
		<-e.done
		if e.ran {
			cacheHits.Add(1)
			totalCycles.Add(e.res.Cycles)
			totalRuns.Add(1)
			return e.res, e.err
		}
		// The first arrival failed before running (construction error):
		// nothing was cached, so report the same failure afresh.
		return metrics.Result{}, e.err
	}
	e = &cacheEntry{done: make(chan struct{})}
	runCache[key] = e
	cacheQueue = append(cacheQueue, cacheQueueEntry{key, e})
	evictLocked()
	cacheMu.Unlock()

	if h := testHookConstruct; h != nil {
		h()
	}
	s, err := NewSession(cfg)
	if err != nil {
		e.err = err
		close(e.done)
		cacheMu.Lock()
		// Only drop our own entry: ResetCache may have swapped the map
		// mid-run and a fresh first arrival can own this key by now.
		if runCache[key] == e {
			delete(runCache, key)
		}
		cacheMu.Unlock()
		return metrics.Result{}, err
	}
	e.res, e.err = s.Run()
	s.Release()
	e.ran = true
	cacheMu.Lock()
	e.completed = true
	cacheMu.Unlock()
	close(e.done)
	return e.res, e.err
}

func runFresh(cfg Config) (metrics.Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return metrics.Result{}, err
	}
	res, rerr := s.Run()
	s.Release()
	return res, rerr
}
