package sim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"awgsim/internal/metrics"
)

// Run deduplication: experiment sweeps share many identical cells (every
// policy column repeats the same baseline, every sweep repeats its
// endpoints), and a simulation is a pure function of its Config — the
// engine is single-goroutine deterministic, so two equal Configs produce
// bit-identical Results. The session layer therefore fingerprints each
// fully-declarative Config, simulates each unique fingerprint once per
// process, and replays the cached Result for duplicates.
//
// A Config is only fingerprintable when it is closed under its own data:
// any closure or pointer the caller can reach back through (explicit
// Kernel/Init/Verify, a mid-run Injection, an attached Tracer) makes runs
// distinguishable in ways the fingerprint cannot see, so those run fresh.
// Faults schedules are pure data and fingerprint fine.
//
// Replays still account one run's cycles in Totals(), so the simulated-work
// ledger (and the golden record's sim_cycles/sim_runs) is identical with
// and without deduplication; only wall-clock changes. SetDedupe(false)
// restores the always-simulate behaviour.

type cacheEntry struct {
	done chan struct{} // closed when res/err/ran are final
	res  metrics.Result
	err  error
	ran  bool // the session was constructed and executed
}

var (
	cacheMu  sync.Mutex
	runCache = map[string]*cacheEntry{}

	dedupeOff atomic.Bool
	cacheHits atomic.Uint64
)

// SetDedupe toggles run deduplication (on by default).
func SetDedupe(on bool) { dedupeOff.Store(!on) }

// CacheHits reports how many runs were satisfied by replaying a cached
// duplicate since process start (or the last ResetCache).
func CacheHits() uint64 { return cacheHits.Load() }

// ResetCache drops every cached run and zeroes the hit counter.
func ResetCache() {
	cacheMu.Lock()
	runCache = map[string]*cacheEntry{}
	cacheMu.Unlock()
	cacheHits.Store(0)
}

// fingerprint canonically encodes a declarative Config, reporting ok=false
// for Configs carrying closures or pointers the encoding cannot capture.
// fill() has already run, so defaulted and explicit Configs that denote the
// same machine encode identically.
func fingerprint(c *Config) (string, bool) {
	if c.Kernel != nil || c.Init != nil || c.Verify != nil || c.Inject != nil || c.Tracer != nil {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%q|%q|%#v|%#v|%#v|%v|%d|%d|%v|%d",
		c.Benchmark, c.Policy, c.GPU, c.Mem, c.Params,
		c.Oversubscribe, c.PreemptAt, c.CycleBudget, c.SkipVerify, c.Seed)
	if c.Faults != nil {
		fmt.Fprintf(&b, "|%q", c.Faults.Name)
		for _, e := range c.Faults.Events {
			fmt.Fprintf(&b, "|%#v", e)
		}
	}
	return b.String(), true
}

// runDeduped executes cfg through the run cache: the first arrival of a
// fingerprint simulates (concurrent duplicates wait on it — singleflight),
// later arrivals replay the cached Result and account a run in Totals().
func runDeduped(cfg Config) (metrics.Result, error) {
	if err := cfg.fill(); err != nil {
		return metrics.Result{}, err
	}
	key, ok := fingerprint(&cfg)
	if !ok || dedupeOff.Load() {
		return runFresh(cfg)
	}
	cacheMu.Lock()
	e := runCache[key]
	if e != nil {
		cacheMu.Unlock()
		<-e.done
		if e.ran {
			cacheHits.Add(1)
			totalCycles.Add(e.res.Cycles)
			totalRuns.Add(1)
			return e.res, e.err
		}
		// The first arrival failed before running (construction error):
		// nothing was cached, so report the same failure afresh.
		return metrics.Result{}, e.err
	}
	e = &cacheEntry{done: make(chan struct{})}
	runCache[key] = e
	cacheMu.Unlock()

	s, err := NewSession(cfg)
	if err != nil {
		e.err = err
		close(e.done)
		cacheMu.Lock()
		delete(runCache, key)
		cacheMu.Unlock()
		return metrics.Result{}, err
	}
	e.res, e.err = s.Run()
	e.ran = true
	close(e.done)
	return e.res, e.err
}

func runFresh(cfg Config) (metrics.Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return metrics.Result{}, err
	}
	return s.Run()
}
