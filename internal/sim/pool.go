package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"awgsim/internal/metrics"
)

// Job names one simulation in a batch. Key is the caller's identifier for
// matching outcomes back to grid cells; it is carried through untouched.
type Job struct {
	Key    string
	Config Config
}

// Outcome is one Job's result. Outcomes are returned in Job order, so
// callers may also index instead of matching keys.
type Outcome struct {
	Key             string
	Result          metrics.Result
	InjectedLatency uint64
	Err             error
}

// RunAll executes every job, fanning them out over min(GOMAXPROCS,
// len(jobs)) workers. Each job constructs and runs its own machine with its
// own single-goroutine event engine, so per-job results are bit-identical
// to the serial path regardless of scheduling; only completion order (and
// wall-clock) varies, and the returned slice restores Job order.
//
// A job whose construction or validation fails carries its error in
// Outcome.Err; other jobs are unaffected.
func RunAll(jobs []Job) []Outcome {
	return RunAllWorkers(jobs, 0)
}

// RunAllWorkers is RunAll with an explicit worker count; n <= 0 selects
// GOMAXPROCS. n == 1 reproduces the serial path exactly (same order, same
// goroutine).
//
// Jobs are first partitioned into work units by the fork planner
// (forkplan.go): configs identical except for their fault schedules become
// one unit that simulates the shared prefix once and forks each member from
// a snapshot. Forking changes wall-clock only — each outcome stays
// bit-identical to its cold run and lands at its job's index.
func RunAllWorkers(jobs []Job, n int) []Outcome {
	units := planUnits(jobs)
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(units) {
		n = len(units)
	}
	out := make([]Outcome, len(jobs))
	runUnit := func(u unit) {
		if u.group != nil {
			u.group.run(jobs, out)
			return
		}
		out[u.single] = runJob(jobs[u.single])
	}
	if n <= 1 {
		for _, u := range units {
			runUnit(u)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				runUnit(units[i])
			}
		}()
	}
	wg.Wait()
	return out
}

func runJob(j Job) Outcome {
	o := Outcome{Key: j.Key}
	if j.Config.Inject == nil {
		// No injected kernel means no InjectedLatency to extract, so the
		// job can go through Run's deduplication cache.
		o.Result, o.Err = Run(j.Config)
		return o
	}
	s, err := NewSession(j.Config)
	if err != nil {
		o.Err = err
		return o
	}
	o.Result, o.Err = s.Run()
	o.InjectedLatency = s.InjectedLatency()
	s.Release()
	return o
}
