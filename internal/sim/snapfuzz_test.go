package sim

import (
	"testing"

	"awgsim/internal/event"
	"awgsim/internal/fault"
)

// FuzzSnapshotRestore drives the snapshot contract with fuzzed run shapes:
// a (benchmark, policy, seed, fault schedule) run is simulated cold, then
// re-simulated with a snapshot taken at a fuzzed cycle — once continuing
// past the snapshot, once rewinding to it and replaying. All three must
// produce the same observables; any divergence means some stateful layer
// escaped Snapshot()/Restore().
func FuzzSnapshotRestore(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0), uint16(900), uint64(0))
	f.Add(uint8(1), uint8(2), uint64(7), uint16(11_000), uint64(3))
	f.Add(uint8(2), uint8(1), uint64(42), uint16(30_000), uint64(5))
	f.Add(uint8(3), uint8(3), uint64(1), uint16(1), uint64(0))
	f.Fuzz(func(t *testing.T, benchSel, polSel uint8, seed uint64, cut uint16, faultSeed uint64) {
		benches := []string{"SPM_G", "FAM_G", "TB_LG", "SLM_G"}
		policies := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
		cfg := quickConfig(benches[int(benchSel)%len(benches)], policies[int(polSel)%len(policies)], false, seed)
		if faultSeed != 0 {
			// Oversubscribe and inject a random fault schedule so restores
			// cover deadlocks, CU loss, and monitor degradation.
			cfg.Params.NumWGs = 2 * cfg.GPU.NumCUs * cfg.GPU.MaxWGsPerCU
			sched := fault.Random(1+faultSeed%8, cfg.GPU.NumCUs, 10_000, 80_000)
			cfg.Faults = &sched
			cfg.CycleBudget = 20_000_000
		}
		limit := event.Cycle(cfg.GPU.MaxCycles)
		if cfg.CycleBudget != 0 && cfg.CycleBudget < uint64(limit) {
			limit = event.Cycle(cfg.CycleBudget)
		}

		coldSession, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold, coldDiag := normalize(coldSession.Machine().Run())

		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := s.Machine()
		m.SetResponseLogging(true)
		m.Prepare()
		m.RunTo(1 + event.Cycle(cut))
		snap := m.Snapshot()
		if snap.Bytes() <= 0 {
			t.Fatalf("snapshot reports %d bytes", snap.Bytes())
		}
		m.RunTo(limit)
		cont, contDiag := normalize(m.FinishRun())
		if cont != cold || contDiag != coldDiag {
			t.Fatalf("run continued past a snapshot diverged from cold:\n  cold:      %+v\n  continued: %+v\n--- cold diag ---\n%s\n--- continued diag ---\n%s",
				cold, cont, coldDiag, contDiag)
		}

		m.Restore(snap)
		m.RunTo(limit)
		replay, replayDiag := normalize(m.FinishRun())
		if replay != cold || replayDiag != coldDiag {
			t.Fatalf("run restored to cycle %d diverged from cold:\n  cold:   %+v\n  replay: %+v\n--- cold diag ---\n%s\n--- replay diag ---\n%s",
				1+cut, cold, replay, coldDiag, replayDiag)
		}
	})
}
