package sim

import (
	"encoding/json"
	"fmt"
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
)

// TestDualModeBitIdentity is the regression the tentpole rests on: the
// inline IR interpreter and the goroutine runtime are two executions of the
// same machine, so every benchmark in the registry — the paper suite, the
// apps, and the extensions — must produce an identical metrics.Result
// under both exec modes, across every policy and a couple of seeds.
//
// Results are compared through their JSON encoding, the same canonical
// form the golden record byte-compares, so a deadlocked run's Diagnosis is
// held to the contract too instead of being skipped for being a pointer.
func TestDualModeBitIdentity(t *testing.T) {
	disableDedupe(t)
	benches := append(append(kernels.All(), kernels.Apps()...), kernels.Extensions()...)
	seeds := []uint64{0, 11}
	var jobs []Job
	for _, b := range benches {
		for _, p := range Policies() {
			for _, s := range seeds {
				oversub := p != "Baseline" // Baseline deadlocks oversubscribed; keep it resident-only
				jobs = append(jobs, Job{
					Key:    fmt.Sprintf("%s/%s/seed%d", b, p, s),
					Config: quickConfig(b, p, oversub, s),
				})
			}
		}
	}
	// quickConfig leaves Exec zero, which resolves to the ExecIR default;
	// the second leg pins the goroutine runtime explicitly.
	irOut := RunAll(jobs)
	gorJobs := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Config.GPU.Exec = gpu.ExecGoroutine
		gorJobs[i] = j
	}
	gorOut := RunAll(gorJobs)
	for i := range jobs {
		if err := irOut[i].Err; err != nil {
			t.Fatalf("%s: IR run failed: %v", jobs[i].Key, err)
		}
		if err := gorOut[i].Err; err != nil {
			t.Fatalf("%s: goroutine run failed: %v", jobs[i].Key, err)
		}
		ir, err := json.Marshal(irOut[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		gor, err := json.Marshal(gorOut[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(ir) != string(gor) {
			t.Errorf("%s: exec modes diverged:\n  ir:        %s\n  goroutine: %s",
				jobs[i].Key, ir, gor)
		}
	}
}
