package sim

import (
	"fmt"
	"testing"

	"awgsim/internal/fault"
	"awgsim/internal/metrics"
)

// disableForking turns the fork planner off for one test.
func disableForking(t *testing.T) {
	t.Helper()
	SetForking(false)
	t.Cleanup(func() { SetForking(true) })
}

// faultJobs builds a fork-friendly sweep: one base config per (bench,
// policy) crossed with scripted and random fault schedules, oversubscribed
// 2x so Baseline deadlocks (exercising the diagnosis path through a fork).
func faultJobs() []Job {
	benches := []string{"SPM_G"}
	policies := []string{"Baseline", "Timeout", "AWG"}
	base := quickConfig("SPM_G", "Baseline", false, 0)
	scheds := fault.Scripted(base.GPU.NumCUs, 10_000)[:2]
	scheds = append(scheds,
		fault.Random(1, base.GPU.NumCUs, 10_000, 80_000),
		fault.Random(2, base.GPU.NumCUs, 10_000, 80_000))
	var jobs []Job
	for _, b := range benches {
		for _, p := range policies {
			for i := range scheds {
				cfg := quickConfig(b, p, false, 0)
				cfg.Params.NumWGs = 2 * cfg.GPU.NumCUs * cfg.GPU.MaxWGsPerCU
				s := scheds[i]
				cfg.Faults = &s
				cfg.CycleBudget = 20_000_000
				jobs = append(jobs, Job{
					Key:    fmt.Sprintf("%s/%s/%s", b, p, s.Name),
					Config: cfg,
				})
			}
		}
	}
	return jobs
}

// normalize strips the Diagnosis pointer so Results compare by value, and
// returns its rendering for a separate comparison (two equal deadlocks
// allocate distinct Diagnosis objects).
func normalize(r metrics.Result) (metrics.Result, string) {
	diag := ""
	if r.Diagnosis != nil {
		diag = r.Diagnosis.String() // includes the time-travel trace when present
	}
	r.Diagnosis = nil
	return r, diag
}

// TestForkMatchesCold is the planner's bit-identity contract: every member
// of a prefix-forked sweep must produce exactly the result its cold run
// produces — including deadlocked cells and their diagnoses.
func TestForkMatchesCold(t *testing.T) {
	disableDedupe(t)
	jobs := faultJobs()

	disableForking(t)
	cold := RunAllWorkers(jobs, 1)

	SetForking(true)
	ResetForkStats()
	forked := RunAllWorkers(jobs, 1)

	forks, saved, bytes := ForkStats()
	if forks == 0 || saved == 0 || bytes == 0 {
		t.Fatalf("fork planner idle on a forkable sweep: ForkStats() = %d, %d, %d", forks, saved, bytes)
	}
	deadlocks := 0
	for i := range jobs {
		if (cold[i].Err == nil) != (forked[i].Err == nil) {
			t.Fatalf("%s: error mismatch: cold %v, forked %v", jobs[i].Key, cold[i].Err, forked[i].Err)
		}
		cr, cd := normalize(cold[i].Result)
		fr, fd := normalize(forked[i].Result)
		if cr != fr {
			t.Errorf("%s: forked result diverged from cold:\n  cold:   %+v\n  forked: %+v", jobs[i].Key, cr, fr)
		}
		if cd != fd {
			t.Errorf("%s: forked diagnosis diverged from cold:\n--- cold ---\n%s\n--- forked ---\n%s", jobs[i].Key, cd, fd)
		}
		if cr.Deadlocked {
			deadlocks++
		}
	}
	if deadlocks == 0 {
		t.Fatal("sweep produced no deadlocked cell; the diagnosis path went untested")
	}
}

// TestForkComposesWithRunCache runs the sweep with deduplication on, twice,
// with duplicated jobs: cached members must replay inside fork groups and
// still match the cold results.
func TestForkComposesWithRunCache(t *testing.T) {
	ResetCache()
	t.Cleanup(ResetCache)
	jobs := faultJobs()

	t.Cleanup(func() { SetDedupe(true); SetForking(true) })
	SetDedupe(false)
	SetForking(false)
	cold := RunAllWorkers(jobs, 1)
	SetDedupe(true)
	SetForking(true)
	doubled := append(append([]Job{}, jobs...), jobs...)
	hits0 := CacheHits()
	outs := RunAllWorkers(doubled, 1)
	again := RunAllWorkers(doubled, 1)
	if CacheHits() == hits0 {
		t.Fatal("duplicated sweep produced no cache hits")
	}
	for i := range doubled {
		j := i % len(jobs)
		for name, got := range map[string]Outcome{"first": outs[i], "second": again[i]} {
			if (got.Err == nil) != (cold[j].Err == nil) {
				t.Fatalf("%s (%s): error mismatch: cold %v, got %v", doubled[i].Key, name, cold[j].Err, got.Err)
			}
			cr, cd := normalize(cold[j].Result)
			gr, gd := normalize(got.Result)
			if cr != gr || cd != gd {
				t.Errorf("%s (%s): cached/forked result diverged from cold:\n  cold: %+v\n  got:  %+v",
					doubled[i].Key, name, cr, gr)
			}
		}
	}
}

// TestPlanUnitsGrouping pins the planner's partitioning rules: schedules
// over one base config group; non-fault, injected, and snapshot-ring jobs
// stay single; a lone fault job (singleton group) is demoted.
func TestPlanUnitsGrouping(t *testing.T) {
	jobs := faultJobs()
	n := len(jobs)
	plain := quickConfig("SPM_G", "Baseline", false, 0)
	ringed := jobs[0].Config
	ringed.GPU.SnapshotEvery = 5_000
	lone := quickConfig("TB_LG", "AWG", false, 9)
	sched := fault.Scripted(lone.GPU.NumCUs, 10_000)[0]
	lone.Faults = &sched
	jobs = append(jobs,
		Job{Key: "plain", Config: plain},
		Job{Key: "ringed", Config: ringed},
		Job{Key: "lone-fault", Config: lone},
	)

	units := planUnits(jobs)
	groups, singles := 0, 0
	for _, u := range units {
		if u.group != nil {
			groups++
			if len(u.group.members) != 4 {
				t.Errorf("group has %d members, want 4 (one per schedule)", len(u.group.members))
			}
			if u.group.diverge != 10_000 {
				t.Errorf("group diverges at %d, want 10000", u.group.diverge)
			}
			if u.group.reserve == 0 {
				t.Error("group reserved no sequence numbers")
			}
			continue
		}
		singles++
	}
	if groups != n/4 {
		t.Errorf("planned %d groups, want %d (one per (bench, policy))", groups, n/4)
	}
	if singles != 3 {
		t.Errorf("planned %d singles, want 3 (plain, ringed, lone-fault)", singles)
	}

	disableForking(t)
	units = planUnits(jobs)
	if len(units) != len(jobs) {
		t.Fatalf("forking off planned %d units, want %d singles", len(units), len(jobs))
	}
	for i, u := range units {
		if u.group != nil || u.single != i {
			t.Fatalf("forking off produced non-trivial unit %d: %+v", i, u)
		}
	}
}
