// Package sim is the experiment-session layer between the public awg API /
// the experiment harnesses and the GPU model underneath. It owns the
// construction of one simulation — config → memory → machine → policy →
// tracer — and provides a worker pool (RunAll) that fans *independent*
// simulations out across OS cores.
//
// Each simulation keeps its single-goroutine deterministic event engine, so
// a run's result is bit-identical whether it executes on the serial path or
// inside the pool; only wall-clock time changes. That property is what lets
// the paper's evaluation — hundreds of independent (benchmark × policy ×
// oversubscription) runs — scale with the host machine, and it is enforced
// by TestRunAllMatchesSerial.
package sim

import (
	"fmt"
	"sync/atomic"

	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/trace"
)

// Injection schedules a second kernel mid-run (the Section V.D priority
// experiment): Spec launches at cycle At with the given priority.
type Injection struct {
	Spec     *gpu.KernelSpec
	At       event.Cycle
	Priority int
}

// Config describes one simulation. Zero-valued fields take the paper's
// baseline (Table 1 machine, full launch, default policy parameters).
type Config struct {
	// Benchmark names the kernel: one of kernels.All()/Apps()/Extensions().
	// Leave empty when Kernel supplies an explicit spec instead.
	Benchmark string
	// Policy names the scheduling architecture, including parameterized
	// forms such as "Sleep-16k" / "Timeout-50k".
	Policy string

	// Kernel overrides Benchmark with an explicit kernel spec; Init and
	// Verify then take the roles kernels.Benchmark gives them (either may
	// be nil). The harness-built episodes (e.g. Figure 6's
	// producer/consumer) use this.
	Kernel *gpu.KernelSpec
	Init   func(write func(mem.Addr, int64))
	Verify func(read func(mem.Addr) int64) error

	// GPU/Mem override the Table 1 machine when non-zero.
	GPU gpu.Config
	Mem mem.Config

	// Params override the launch shape when NumWGs is non-zero.
	Params kernels.Params

	// Oversubscribe enables the dynamic resource-loss experiment: one CU is
	// preempted at PreemptAt (default 100k cycles = 50 µs at 2 GHz).
	Oversubscribe bool
	PreemptAt     event.Cycle

	// Inject optionally launches a second kernel mid-run.
	Inject *Injection

	// Faults, when non-nil, arms a fault-injection schedule on the machine
	// (CU loss/restore, SyncMon degradation, CP cadence jitter).
	Faults *fault.Schedule

	// CycleBudget caps the run's simulated cycles (0 = the GPU config's
	// MaxCycles). awgexp sets it so livelocked runs terminate diagnosed
	// instead of burning the full two-billion-cycle default. It also arms
	// an event budget (64 events/cycle) against zero-delay livelocks that
	// never advance the clock.
	CycleBudget uint64

	// SkipVerify disables the post-run functional validation (used only by
	// experiments that expect a deadlock).
	SkipVerify bool

	// Tracer, when non-nil, records the run's per-WG timeline.
	Tracer *trace.Recorder

	// Seed perturbs the machine's deterministic jitter stream. Runs with
	// equal seeds are bit-identical; the default 0 reproduces the
	// historical stream.
	Seed uint64
}

// fill derives defaults.
func (c *Config) fill() error {
	if c.Benchmark == "" && c.Kernel == nil {
		return fmt.Errorf("sim: no benchmark named")
	}
	if c.Policy == "" {
		return fmt.Errorf("sim: no policy named")
	}
	if c.GPU.NumCUs == 0 {
		c.GPU = gpu.DefaultConfig()
	}
	if c.GPU.SnapshotEvery == 0 {
		// The process-wide default (awgexp -snapshot-every) flows through the
		// config — and therefore the run-cache fingerprint, since a snapshot
		// ring changes the engine's event stream.
		c.GPU.SnapshotEvery = snapshotEveryDefault.Load()
	}
	if c.GPU.Exec == gpu.ExecIR {
		// The process-wide default (awgexp -exec) flows through the config
		// like SnapshotEvery above; ExecIR is the zero value, so an explicit
		// ExecGoroutine in cfg.GPU always wins.
		c.GPU.Exec = gpu.ExecMode(execModeDefault.Load())
	}
	if c.Mem.LineSize == 0 {
		c.Mem = mem.DefaultConfig()
	}
	if c.Params.NumWGs == 0 {
		c.Params = kernels.DefaultParams()
		c.Params.Groups = c.GPU.NumCUs
		c.Params.NumWGs = c.GPU.NumCUs * c.GPU.MaxWGsPerCU
	}
	if c.PreemptAt == 0 {
		c.PreemptAt = 100_000 // 50 µs at 2 GHz
	}
	if c.CycleBudget != 0 {
		if c.GPU.MaxCycles == 0 || c.CycleBudget < c.GPU.MaxCycles {
			c.GPU.MaxCycles = c.CycleBudget
		}
		if c.GPU.MaxEvents == 0 {
			c.GPU.MaxEvents = c.CycleBudget * 64
		}
	}
	return nil
}

// Session is one fully constructed simulation: machine built, memory
// initialized, policy attached, tracer and scheduled events (CU preemption,
// kernel injection) in place. Between NewSession and Run a harness may
// reach through Machine() for bespoke setup the Config cannot express.
type Session struct {
	cfg    Config
	m      *gpu.Machine
	verify func(read func(mem.Addr) int64) error

	injected    gpu.KernelHandle
	hasInjected bool

	// seqBase is the first of the engine sequence numbers reserved in place
	// of fault arming (fork-planner prefix sessions only; see newSession).
	seqBase uint64
}

// NewSession builds a simulation from cfg without running it.
func NewSession(cfg Config) (*Session, error) {
	return newSession(cfg, 0)
}

// NewSessionReserving builds a simulation like NewSession, additionally
// reserving `reserve` engine sequence numbers at the construction point a
// fault arm would consume them (cfg.Faults must be nil). SeqBase reports
// the first reserved number. The fleet layer builds each workload machine
// this way: device-coupled fault schedules are spliced in later — at
// genesis placement and after migrations — with fault.ArmReserved /
// ArmReservedAfter, so late arming lands on the same calendar positions a
// construction-time arm would give it and stays bit-identical across runs.
func NewSessionReserving(cfg Config, reserve int) (*Session, error) {
	if cfg.Faults != nil {
		return nil, fmt.Errorf("sim: NewSessionReserving with a fault schedule; reservation replaces arming")
	}
	return newSession(cfg, reserve)
}

// SeqBase reports the first engine sequence number reserved at
// construction (NewSessionReserving), zero when none were reserved.
func (s *Session) SeqBase() uint64 { return s.seqBase }

// newSession builds a simulation, optionally reserving engine sequence
// numbers where fault arming would occur. The fork planner builds a sweep
// group's shared-prefix session with Faults == nil and reserve set to the
// group's largest applicable-event count: the reservation happens at
// exactly the construction point fault.Arm would consume those numbers, so
// a member's faults can later be spliced in (fault.ArmReserved) at the
// calendar positions a cold run gives them.
func newSession(cfg Config, reserve int) (*Session, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	spec := cfg.Kernel
	initFn, verifyFn := cfg.Init, cfg.Verify
	if spec == nil {
		bench, err := kernels.Build(cfg.Benchmark, cfg.Params)
		if err != nil {
			return nil, err
		}
		spec, initFn, verifyFn = &bench.Spec, bench.Init, bench.Verify
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	m, err := gpu.NewMachine(cfg.GPU, cfg.Mem, spec, pol)
	if err != nil {
		return nil, err
	}
	if initFn != nil {
		initFn(m.Mem().Write)
	}
	if cfg.Seed != 0 {
		m.SeedJitter(cfg.Seed)
	}
	if cfg.Tracer != nil {
		m.SetTracer(cfg.Tracer)
	}
	if cfg.Oversubscribe {
		last := gpu.CUID(cfg.GPU.NumCUs - 1)
		m.Engine().At(cfg.PreemptAt, func() { m.PreemptCU(last) })
	}
	s := &Session{cfg: cfg, m: m, verify: verifyFn}
	if cfg.Faults != nil {
		if err := fault.Arm(m, *cfg.Faults); err != nil {
			return nil, err
		}
	} else if reserve > 0 {
		s.seqBase = m.Engine().ReserveSeqs(reserve)
	}
	if inj := cfg.Inject; inj != nil {
		h, err := m.InjectKernel(inj.Spec, inj.At, inj.Priority)
		if err != nil {
			return nil, err
		}
		s.injected, s.hasInjected = h, true
	}
	return s, nil
}

// Machine exposes the constructed machine for bespoke pre-run setup and
// post-run inspection (memory reads, extra injections).
func (s *Session) Machine() *gpu.Machine { return s.m }

// Release recycles the session machine's large buffers (engine, cache tag
// arrays) into their package pools. Internal one-shot paths call it after
// the result is extracted; the session, its machine, and snapshots taken
// from the machine must not be used afterward.
func (s *Session) Release() { s.m.ReleaseBuffers() }

// InjectedLatency reports the injected kernel's launch-to-finish latency
// (0 when nothing was injected or it did not finish).
func (s *Session) InjectedLatency() uint64 {
	if !s.hasInjected {
		return 0
	}
	return s.injected.Latency()
}

// Run executes the session's simulation to completion, deadlock, or the
// cycle cap, then functionally validates a completed run (unless
// SkipVerify). A deadlocked run is not an error — Result.Deadlocked
// reports it. Run may be called once.
func (s *Session) Run() (metrics.Result, error) {
	res := s.m.Run()
	totalCycles.Add(res.Cycles)
	totalRuns.Add(1)
	if !res.Deadlocked && !s.cfg.SkipVerify && s.verify != nil {
		if verr := s.verify(s.m.Mem().Read); verr != nil {
			return res, fmt.Errorf("sim: %s under %s completed but failed validation: %w",
				res.Benchmark, res.Policy, verr)
		}
	}
	return res, nil
}

// Finish completes a staged run the caller drove itself through
// Machine().Prepare/RunTo (the fleet layer's per-slice pacing does this):
// it classifies and tears the run down (gpu.Machine.FinishRun), accounts
// the simulated work in the process-wide ledger, and functionally
// validates a completed run exactly like Run. Call once, after the last
// RunTo.
func (s *Session) Finish() (metrics.Result, error) {
	res := s.m.FinishRun()
	totalCycles.Add(res.Cycles)
	totalRuns.Add(1)
	if !res.Deadlocked && !s.cfg.SkipVerify && s.verify != nil {
		if verr := s.verify(s.m.Mem().Read); verr != nil {
			return res, fmt.Errorf("sim: %s under %s completed but failed validation: %w",
				res.Benchmark, res.Policy, verr)
		}
	}
	return res, nil
}

// Run builds and executes one simulation. Fully-declarative Configs are
// run-deduplicated: a Config equal to one already simulated this process
// replays its cached Result (see runcache.go; SetDedupe(false) opts out).
// Callers needing post-run access to the machine use NewSession directly,
// which always simulates.
func Run(cfg Config) (metrics.Result, error) {
	return runDeduped(cfg)
}

// totalCycles/totalRuns account all simulated work since process start (or
// the last ResetTotals); the awgexp bench-trajectory writer records them
// next to wall-clock so perf baselines compare like with like.
var (
	totalCycles atomic.Uint64
	totalRuns   atomic.Uint64
)

// Totals reports the simulated cycles and completed runs accounted so far.
func Totals() (cycles, runs uint64) { return totalCycles.Load(), totalRuns.Load() }

// ResetTotals zeroes the simulated-work accounting.
func ResetTotals() { totalCycles.Store(0); totalRuns.Store(0) }
