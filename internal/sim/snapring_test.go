package sim

import (
	"strings"
	"testing"
)

// TestSnapshotRingAttachesTrace drives the time-travel diagnosis end to
// end: an oversubscribed Baseline launch deadlocks (residents spin at the
// exit barrier, pending WGs can never dispatch), and running it with a
// snapshot ring must (a) leave every simulated observable identical to the
// ring-less run — the ring is pure instrumentation — and (b) attach the
// replayed pre-stall timeline to the diagnosis.
func TestSnapshotRingAttachesTrace(t *testing.T) {
	cfg := quickConfig("SPM_G", "Baseline", false, 0)
	cfg.Params.NumWGs = 2 * cfg.GPU.NumCUs * cfg.GPU.MaxWGsPerCU

	coldSession, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRes := coldSession.Machine().Run()
	if coldRes.Diagnosis == nil {
		t.Fatal("oversubscribed Baseline run did not produce a diagnosis")
	}
	if coldRes.Diagnosis.Trace != "" {
		t.Fatalf("ring-less run attached a trace:\n%s", coldRes.Diagnosis.Trace)
	}

	ringCfg := cfg
	ringCfg.GPU.SnapshotEvery = 100_000
	ringSession, err := NewSession(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	ringRes := ringSession.Machine().Run()
	if ringRes.Diagnosis == nil {
		t.Fatal("ring run did not produce a diagnosis")
	}
	if ringRes.Diagnosis.Trace == "" {
		t.Fatal("snapshot ring run attached no pre-stall trace")
	}
	if !strings.Contains(ringRes.Diagnosis.String(), "pre-stall trace") {
		t.Errorf("diagnosis rendering omits the trace:\n%s", ringRes.Diagnosis.String())
	}

	// The ring must not perturb the simulation: identical results and an
	// identical diagnosis apart from the attached trace.
	if got, want := ringRes.Diagnosis.Summary(), coldRes.Diagnosis.Summary(); got != want {
		t.Errorf("ring run diagnosis diverged:\n  ring: %s\n  cold: %s", got, want)
	}
	ringRes.Diagnosis.Trace = ""
	if got, want := ringRes.Diagnosis.String(), coldRes.Diagnosis.String(); got != want {
		t.Errorf("ring run diagnosis body diverged:\n  ring: %s\n  cold: %s", got, want)
	}
	ringNorm, _ := normalize(ringRes)
	coldNorm, _ := normalize(coldRes)
	if ringNorm != coldNorm {
		t.Errorf("ring run result diverged:\n  ring: %+v\n  cold: %+v", ringNorm, coldNorm)
	}
}
