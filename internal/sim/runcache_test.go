package sim

import (
	"fmt"
	"reflect"
	"testing"

	"awgsim/internal/mem"
)

// TestFingerprintCoversConfig pins Config's exact field list. If this
// fails, a field was added (or renamed): decide whether it changes a run's
// outcome, teach fingerprint() about it — either encode it or treat it as
// non-fingerprintable — and then update the list here.
func TestFingerprintCoversConfig(t *testing.T) {
	want := []string{
		"Benchmark", "Policy", "Kernel", "Init", "Verify", "GPU", "Mem",
		"Params", "Oversubscribe", "PreemptAt", "Inject", "Faults",
		"CycleBudget", "SkipVerify", "Tracer", "Seed",
	}
	rt := reflect.TypeOf(Config{})
	got := make([]string, rt.NumField())
	for i := range got {
		got[i] = rt.Field(i).Name
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sim.Config fields changed without updating fingerprint():\n  got  %v\n  want %v", got, want)
	}
}

// TestDedupeReplaysIdenticalResult: a duplicate Config replays the cached
// Result bit for bit, counts a cache hit, and still accounts a run in
// Totals() — and the replay equals what a genuine re-simulation produces.
func TestDedupeReplaysIdenticalResult(t *testing.T) {
	ResetCache()
	ResetTotals()
	cfg := quickConfig("SPM_G", "AWG", false, 3)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0+1 {
		t.Fatalf("cache hits %d after duplicate run, want %d", CacheHits(), h0+1)
	}
	if r1 != r2 {
		t.Fatalf("replayed result diverged:\n  first:  %+v\n  replay: %+v", r1, r2)
	}
	if cycles, runs := Totals(); runs != 2 || cycles != 2*r1.Cycles {
		t.Fatalf("Totals() = %d cycles, %d runs; replay must account a run (want %d, 2)",
			cycles, runs, 2*r1.Cycles)
	}
	SetDedupe(false)
	defer SetDedupe(true)
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("fresh simulation diverged from cached result:\n  cached: %+v\n  fresh:  %+v", r1, r3)
	}
}

// TestDedupeDistinguishesConfigs: any field difference — here the jitter
// seed — is a different fingerprint, so no replay happens.
func TestDedupeDistinguishesConfigs(t *testing.T) {
	ResetCache()
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 11)); err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 12)); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0 {
		t.Fatalf("different seeds shared a cache entry (%d hits, want %d)", CacheHits(), h0)
	}
}

// TestDedupeSkipsClosures: a Config carrying any closure field is not
// fingerprintable and always simulates fresh.
func TestDedupeSkipsClosures(t *testing.T) {
	ResetCache()
	cfg := quickConfig("SPM_G", "AWG", false, 5)
	cfg.Init = func(write func(mem.Addr, int64)) {}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0 {
		t.Fatalf("closure-carrying config was deduplicated (%d hits, want %d)", CacheHits(), h0)
	}
}

// TestDedupeSingleflight: concurrent duplicates collapse onto one
// simulation — one miss, the rest hits, every outcome identical.
func TestDedupeSingleflight(t *testing.T) {
	ResetCache()
	const n = 8
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("dup%d", i), Config: quickConfig("SPM_G", "Timeout", false, 21)}
	}
	outs := RunAllWorkers(jobs, 4)
	if CacheHits() != n-1 {
		t.Fatalf("cache hits %d for %d concurrent duplicates, want %d", CacheHits(), n, n-1)
	}
	for i := 1; i < n; i++ {
		if outs[i].Err != nil {
			t.Fatalf("%s: %v", outs[i].Key, outs[i].Err)
		}
		if outs[i].Result != outs[0].Result {
			t.Fatalf("duplicate %d diverged from first outcome", i)
		}
	}
}
