package sim

import (
	"fmt"
	"reflect"
	"testing"

	"awgsim/internal/mem"
)

// TestFingerprintCoversConfig pins Config's exact field list. If this
// fails, a field was added (or renamed): decide whether it changes a run's
// outcome, teach fingerprint() about it — either encode it or treat it as
// non-fingerprintable — and then update the list here.
func TestFingerprintCoversConfig(t *testing.T) {
	want := []string{
		"Benchmark", "Policy", "Kernel", "Init", "Verify", "GPU", "Mem",
		"Params", "Oversubscribe", "PreemptAt", "Inject", "Faults",
		"CycleBudget", "SkipVerify", "Tracer", "Seed",
	}
	rt := reflect.TypeOf(Config{})
	got := make([]string, rt.NumField())
	for i := range got {
		got[i] = rt.Field(i).Name
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sim.Config fields changed without updating fingerprint():\n  got  %v\n  want %v", got, want)
	}
}

// TestDedupeReplaysIdenticalResult: a duplicate Config replays the cached
// Result bit for bit, counts a cache hit, and still accounts a run in
// Totals() — and the replay equals what a genuine re-simulation produces.
func TestDedupeReplaysIdenticalResult(t *testing.T) {
	ResetCache()
	ResetTotals()
	cfg := quickConfig("SPM_G", "AWG", false, 3)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0+1 {
		t.Fatalf("cache hits %d after duplicate run, want %d", CacheHits(), h0+1)
	}
	if r1 != r2 {
		t.Fatalf("replayed result diverged:\n  first:  %+v\n  replay: %+v", r1, r2)
	}
	if cycles, runs := Totals(); runs != 2 || cycles != 2*r1.Cycles {
		t.Fatalf("Totals() = %d cycles, %d runs; replay must account a run (want %d, 2)",
			cycles, runs, 2*r1.Cycles)
	}
	SetDedupe(false)
	defer SetDedupe(true)
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("fresh simulation diverged from cached result:\n  cached: %+v\n  fresh:  %+v", r1, r3)
	}
}

// TestDedupeDistinguishesConfigs: any field difference — here the jitter
// seed — is a different fingerprint, so no replay happens.
func TestDedupeDistinguishesConfigs(t *testing.T) {
	ResetCache()
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 11)); err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 12)); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0 {
		t.Fatalf("different seeds shared a cache entry (%d hits, want %d)", CacheHits(), h0)
	}
}

// TestDedupeSkipsClosures: a Config carrying any closure field is not
// fingerprintable and always simulates fresh.
func TestDedupeSkipsClosures(t *testing.T) {
	ResetCache()
	cfg := quickConfig("SPM_G", "AWG", false, 5)
	cfg.Init = func(write func(mem.Addr, int64)) {}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	h0 := CacheHits()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0 {
		t.Fatalf("closure-carrying config was deduplicated (%d hits, want %d)", CacheHits(), h0)
	}
}

// TestRunCacheBounded: the cache holds at most the configured cap, FIFO —
// the newest entries replay, the oldest re-simulate after eviction.
func TestRunCacheBounded(t *testing.T) {
	ResetCache()
	SetRunCacheCap(4)
	defer SetRunCacheCap(defaultRunCacheCap)
	for seed := uint64(101); seed <= 108; seed++ {
		if _, err := Run(quickConfig("SPM_G", "AWG", false, seed)); err != nil {
			t.Fatal(err)
		}
	}
	cacheMu.Lock()
	n, q := len(runCache), len(cacheQueue)
	cacheMu.Unlock()
	if n != 4 || q != 4 {
		t.Fatalf("cache holds %d entries (queue %d) after 8 runs at cap 4", n, q)
	}
	h0 := CacheHits()
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 108)); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0+1 {
		t.Fatalf("newest entry did not replay (%d hits, want %d)", CacheHits(), h0+1)
	}
	if _, err := Run(quickConfig("SPM_G", "AWG", false, 101)); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != h0+1 {
		t.Fatalf("oldest entry replayed after eviction (%d hits, want %d)", CacheHits(), h0+1)
	}
}

// TestEvictionSkipsInFlight: an entry still simulating is never evicted —
// waiters are parked on its done channel and the singleflight contract
// needs the map slot stable — so eviction passes over it to the next
// completed entry.
func TestEvictionSkipsInFlight(t *testing.T) {
	ResetCache()
	defer ResetCache()
	SetRunCacheCap(2)
	defer SetRunCacheCap(defaultRunCacheCap)
	cacheMu.Lock()
	inflight := &cacheEntry{done: make(chan struct{})}
	runCache["k0"] = inflight
	cacheQueue = append(cacheQueue, cacheQueueEntry{"k0", inflight})
	for i := 1; i <= 3; i++ {
		e := &cacheEntry{done: make(chan struct{}), completed: true}
		k := fmt.Sprintf("k%d", i)
		runCache[k] = e
		cacheQueue = append(cacheQueue, cacheQueueEntry{k, e})
	}
	evictLocked()
	defer cacheMu.Unlock()
	if runCache["k0"] != inflight {
		t.Fatal("in-flight entry evicted")
	}
	if len(runCache) != 2 || runCache["k3"] == nil {
		t.Fatalf("want in-flight k0 + newest k3 resident, have %d entries", len(runCache))
	}
	if len(cacheQueue) != 2 {
		t.Fatalf("queue holds %d slots, want 2", len(cacheQueue))
	}
}

// TestResetCacheRacesConstructionError pins the first-arrival error
// cleanup against a mid-run ResetCache: the map is swapped while the
// arrival is constructing, a fresh arrival claims the same fingerprint in
// the new map, and the old arrival's failure cleanup must not delete the
// new owner's entry.
func TestResetCacheRacesConstructionError(t *testing.T) {
	ResetCache()
	defer ResetCache()
	cfg := quickConfig("no-such-bench", "AWG", false, 1)
	keyCfg := cfg
	if err := keyCfg.fill(); err != nil {
		t.Fatal(err)
	}
	key, ok := fingerprint(&keyCfg)
	if !ok {
		t.Fatal("config not fingerprintable")
	}

	ready := make(chan int)
	proceed := make(chan struct{})
	arrivals := 0
	testHookConstruct = func() {
		arrivals++
		ready <- arrivals
		<-proceed
	}
	defer func() { testHookConstruct = nil }()

	errs := make(chan error, 2)
	go func() { _, err := Run(cfg); errs <- err }()
	<-ready      // arrival 1 holds the key, construction not started
	ResetCache() // the map swap arrival 1 cannot see
	go func() { _, err := Run(cfg); errs <- err }()
	<-ready // arrival 2 owns the key in the new map, parked mid-construction

	proceed <- struct{}{} // arrival 1: construction fails, cleanup runs
	if err := <-errs; err == nil {
		t.Fatal("unknown benchmark built")
	}
	cacheMu.Lock()
	survived := runCache[key] != nil
	cacheMu.Unlock()
	if !survived {
		t.Fatal("arrival 1's cleanup deleted arrival 2's in-flight entry")
	}

	proceed <- struct{}{} // arrival 2 finishes (and removes its own entry)
	if err := <-errs; err == nil {
		t.Fatal("unknown benchmark built")
	}
	cacheMu.Lock()
	gone := runCache[key] == nil
	cacheMu.Unlock()
	if !gone {
		t.Fatal("construction-error entry left resident")
	}
}

// TestDedupeSingleflight: concurrent duplicates collapse onto one
// simulation — one miss, the rest hits, every outcome identical.
func TestDedupeSingleflight(t *testing.T) {
	ResetCache()
	const n = 8
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("dup%d", i), Config: quickConfig("SPM_G", "Timeout", false, 21)}
	}
	outs := RunAllWorkers(jobs, 4)
	if CacheHits() != n-1 {
		t.Fatalf("cache hits %d for %d concurrent duplicates, want %d", CacheHits(), n, n-1)
	}
	for i := 1; i < n; i++ {
		if outs[i].Err != nil {
			t.Fatalf("%s: %v", outs[i].Key, outs[i].Err)
		}
		if outs[i].Result != outs[0].Result {
			t.Fatalf("duplicate %d diverged from first outcome", i)
		}
	}
}
