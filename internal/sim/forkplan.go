package sim

import (
	"fmt"
	"sync/atomic"

	"awgsim/internal/event"
	"awgsim/internal/fault"
	"awgsim/internal/gpu"
	"awgsim/internal/metrics"
)

// Prefix-forked sweeps: a fault-injection sweep runs many configs that are
// identical except for their fault schedule, and faults land only after the
// kernel has built up waiting state (cycle ~10k+). Every member of such a
// group simulates the exact same prefix — so the planner simulates it once,
// snapshots the machine just before the earliest fault any member injects,
// and completes each member by restoring the snapshot and splicing its
// faults onto the calendar under sequence numbers reserved at construction
// (fault.ArmReserved). A forked member is bit-identical to its cold run:
// the reservation pins every fault to the calendar position a cold arm
// gives it, and unused reservations shift later sequence numbers uniformly,
// which cannot reorder same-cycle events. CI verifies this by running the
// golden suite forked and unforked and diffing byte-for-byte.
//
// Forking composes with the run cache (runcache.go): each member's result
// is published under its own fingerprint, and members already cached replay
// instead of re-running. The simulated-work ledger stays identical to the
// cold path — each member accounts its full run — while ForkStats tracks
// the wall-clock story: forked runs, prefix cycles not re-simulated, and
// snapshot footprint.

var (
	forkOff              atomic.Bool
	snapshotEveryDefault atomic.Uint64
	execModeDefault      atomic.Int64

	forkForks       atomic.Uint64
	forkCyclesSaved atomic.Uint64
	forkSnapBytes   atomic.Uint64
)

// SetForking toggles prefix-forked sweep execution (on by default; awgexp
// -no-fork disables it).
func SetForking(on bool) { forkOff.Store(!on) }

// SetSnapshotEvery sets the process-wide default for gpu.Config.
// SnapshotEvery: every run keeps a periodic snapshot ring for time-travel
// stall diagnosis. Non-zero values disable prefix forking implicitly (the
// ring changes the event stream, so such runs are not fork-eligible).
func SetSnapshotEvery(n uint64) { snapshotEveryDefault.Store(n) }

// SetExecMode sets the process-wide default for gpu.Config.Exec: whether
// kernels carrying a program IR run on the machine's inline interpreter
// (gpu.ExecIR, the default) or fall back to the goroutine runtime
// (gpu.ExecGoroutine; awgexp -exec=goroutine selects it). The mode flows
// through the config into the run-cache fingerprint, so the two execution
// paths never share cached results even though their outputs are pinned
// identical by the dual-mode golden check.
func SetExecMode(m gpu.ExecMode) { execModeDefault.Store(int64(m)) }

// ForkStats reports the fork planner's cumulative counters since process
// start (or the last ResetForkStats): members completed by forking, prefix
// cycles they did not re-simulate, and the bytes of the group snapshots.
func ForkStats() (forks, prefixCyclesSaved, snapshotBytes uint64) {
	return forkForks.Load(), forkCyclesSaved.Load(), forkSnapBytes.Load()
}

// ResetForkStats zeroes the fork counters.
func ResetForkStats() {
	forkForks.Store(0)
	forkCyclesSaved.Store(0)
	forkSnapBytes.Store(0)
}

// forkMember is one sweep config completed from the group snapshot.
type forkMember struct {
	idx int    // job index
	key string // run-cache fingerprint
	cfg Config // filled, with its fault schedule
}

// forkGroup is a set of jobs identical except for their fault schedules.
type forkGroup struct {
	members []forkMember
	reserve int         // engine seqs a cold arm consumes, group maximum
	diverge event.Cycle // earliest applicable fault across members
}

// unit is one work item of the pool: a lone job, or a fork group whose
// members share a machine and must run on one worker.
type unit struct {
	single int // job index when group == nil
	group  *forkGroup
}

// planUnits partitions jobs into fork groups and singles. Fork-eligible
// jobs are fully declarative (fingerprintable), carry a non-empty fault
// schedule, and run without a snapshot ring; they group by their
// fingerprint with the fault section stripped. Groups keep first-member
// order; everything else stays a single in job order.
func planUnits(jobs []Job) []unit {
	units := make([]unit, 0, len(jobs))
	if forkOff.Load() {
		for i := range jobs {
			units = append(units, unit{single: i})
		}
		return units
	}
	groups := map[string]*forkGroup{}
	for i := range jobs {
		cfg := jobs[i].Config
		key, ok := "", false
		if cfg.Inject == nil && cfg.Faults != nil && len(cfg.Faults.Events) > 0 && cfg.fill() == nil {
			key, ok = fingerprint(&cfg)
			ok = ok && cfg.GPU.SnapshotEvery == 0
		}
		if !ok {
			units = append(units, unit{single: i})
			continue
		}
		gk := forkGroupKey(&cfg)
		g := groups[gk]
		if g == nil {
			g = &forkGroup{}
			groups[gk] = g
			units = append(units, unit{single: -1, group: g})
		}
		g.members = append(g.members, forkMember{idx: i, key: key, cfg: cfg})
	}
	// Demote groups that cannot fork back into singles.
	out := units[:0]
	for _, u := range units {
		if u.group == nil || (len(u.group.members) >= 2 && u.group.plan()) {
			out = append(out, u)
			continue
		}
		for _, m := range u.group.members {
			out = append(out, unit{single: m.idx})
		}
	}
	return out
}

// forkGroupKey is the member's fingerprint with the fault section stripped:
// what the shared prefix simulates.
func forkGroupKey(c *Config) string {
	cc := *c
	cc.Faults = nil
	key, _ := fingerprint(&cc)
	return key
}

// plan computes the group's divergence cycle and sequence reservation,
// reporting false when forking cannot help.
func (g *forkGroup) plan() bool {
	pol, err := NewPolicy(g.members[0].cfg.Policy)
	if err != nil {
		return false
	}
	// With no applicable fault anywhere (capacity faults under a
	// monitor-less policy) the whole run is shared and members replay the
	// prefix's end state.
	g.diverge = event.Cycle(g.members[0].cfg.GPU.MaxCycles)
	for i := range g.members {
		m := &g.members[i]
		if n := fault.CountApplicable(pol, *m.cfg.Faults); n > g.reserve {
			g.reserve = n
		}
		if at, ok := fault.FirstApplicableAt(pol, *m.cfg.Faults); ok && at < g.diverge {
			g.diverge = at
		}
	}
	return g.diverge >= 2
}

// run executes the group on one worker: the shared prefix once, then each
// member forked from the snapshot. When the prefix stalls or exhausts its
// event budget before the divergence point, the group falls back to cold
// per-member runs.
func (g *forkGroup) run(jobs []Job, out []Outcome) {
	cold := func() {
		for _, mem := range g.members {
			out[mem.idx] = runJob(jobs[mem.idx])
		}
	}
	prefixCfg := g.members[0].cfg
	prefixCfg.Faults = nil
	s, err := newSession(prefixCfg, g.reserve)
	if err != nil {
		cold()
		return
	}
	m := s.m
	m.SetResponseLogging(true)
	m.Prepare()
	limit := event.Cycle(prefixCfg.GPU.MaxCycles)
	stop := g.diverge - 1
	if stop > limit {
		stop = limit
	}
	m.RunTo(stop)
	if m.Deadlocked() || m.Engine().BudgetExhausted() {
		m.FinishRun() // discard; tears the prefix goroutines down
		m.ReleaseBuffers()
		cold()
		return
	}
	snap := m.Snapshot()
	m.SetResponseLogging(false)
	prefixCycles := uint64(m.Engine().Now())
	forkSnapBytes.Add(uint64(snap.Bytes()))

	ran := uint64(0)
	needTeardown := true // the prefix (or an arm-failed restore) left live WGs
	for i := range g.members {
		mem := &g.members[i]
		key := jobs[mem.idx].Key
		entry, cached := claimFork(mem.key)
		if cached {
			out[mem.idx] = replayFork(key, entry)
			continue
		}
		m.Restore(snap)
		needTeardown = true
		var res metrics.Result
		armed := true
		err := fault.ArmReserved(m, *mem.cfg.Faults, s.seqBase)
		if err != nil {
			armed = false // failed before simulating; entry is retractable
		} else {
			ran++
			m.RunTo(limit)
			res = m.FinishRun()
			needTeardown = false
			totalCycles.Add(res.Cycles)
			totalRuns.Add(1)
			if !res.Deadlocked && !mem.cfg.SkipVerify && s.verify != nil {
				if verr := s.verify(m.Mem().Read); verr != nil {
					err = fmt.Errorf("sim: %s under %s completed but failed validation: %w",
						res.Benchmark, res.Policy, verr)
				}
			}
		}
		finishFork(entry, mem.key, res, err, armed)
		out[mem.idx] = Outcome{Key: key, Result: res, Err: err}
	}
	if ran > 0 {
		forkForks.Add(ran)
		forkCyclesSaved.Add(prefixCycles * (ran - 1))
	}
	if needTeardown {
		m.FinishRun() // discard: every member replayed from the cache
	}
	// The prefix's response logs (goroutine-mode members only; IR frames
	// never log) have served their respawn purpose — drop them so a pooled
	// worker machine does not retain O(prefix) memory per group.
	m.DropResponseLogs()
	// The group is done with its machine (and with snap, which dies here),
	// so its buffers can seed the next group's construction.
	m.ReleaseBuffers()
}

// claimFork claims key in the run cache, or waits out a prior claim.
// cached=true returns the finished entry; cached=false returns a fresh
// claimed entry the caller must finishFork. A nil entry means deduplication
// is off.
func claimFork(key string) (*cacheEntry, bool) {
	if dedupeOff.Load() {
		return nil, false
	}
	cacheMu.Lock()
	if e := runCache[key]; e != nil {
		cacheMu.Unlock()
		<-e.done
		return e, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	runCache[key] = e
	cacheMu.Unlock()
	return e, false
}

// replayFork converts a finished cache entry into an outcome, accounting
// the replayed run exactly like runDeduped.
func replayFork(key string, e *cacheEntry) Outcome {
	if !e.ran {
		return Outcome{Key: key, Err: e.err}
	}
	cacheHits.Add(1)
	totalCycles.Add(e.res.Cycles)
	totalRuns.Add(1)
	return Outcome{Key: key, Result: e.res, Err: e.err}
}

// finishFork publishes a member's result under its claimed entry. ran=false
// marks a failure before simulation (arm error) — mirrored from
// runDeduped's construction-error path, the entry is dropped so a later
// attempt retries.
func finishFork(e *cacheEntry, key string, res metrics.Result, err error, ran bool) {
	if e == nil {
		return
	}
	e.res, e.err, e.ran = res, err, ran
	close(e.done)
	if !ran {
		cacheMu.Lock()
		delete(runCache, key)
		cacheMu.Unlock()
	}
}
