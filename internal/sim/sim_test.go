package sim

import (
	"fmt"
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/kernels"
)

// quickConfig builds a reduced-scale config matching the experiment
// packages' quick mode: quarter occupancy, three synchronization rounds.
func quickConfig(bench, policy string, oversub bool, seed uint64) Config {
	g := gpu.DefaultConfig()
	g.MaxWGsPerCU /= 4
	p := kernels.DefaultParams()
	p.NumWGs = g.NumCUs * g.MaxWGsPerCU
	p.Iters = 3
	return Config{
		Benchmark:     bench,
		Policy:        policy,
		GPU:           g,
		Params:        p,
		Oversubscribe: oversub,
		PreemptAt:     10_000,
		Seed:          seed,
	}
}

// disableDedupe turns the run cache off for one test, so repeated runs
// genuinely re-simulate (replays would make determinism checks vacuous).
func disableDedupe(t *testing.T) {
	t.Helper()
	SetDedupe(false)
	t.Cleanup(func() { SetDedupe(true) })
}

// TestRunAllMatchesSerial is the determinism regression the package doc
// promises: a (benchmark × policy × seed) grid, including oversubscribed
// runs, simulated twice through the parallel pool and once serially, must
// produce equal metrics.Result values cell for cell.
func TestRunAllMatchesSerial(t *testing.T) {
	disableDedupe(t)
	benches := []string{"SPM_G", "FAM_G", "TB_LG", "SLM_G"}
	policies := []string{"Baseline", "Timeout", "MonNR-All", "AWG"}
	seeds := []uint64{0, 1, 42}
	var jobs []Job
	for _, b := range benches {
		for _, p := range policies {
			for _, s := range seeds {
				oversub := p != "Baseline" // Baseline deadlocks oversubscribed; keep it resident-only
				jobs = append(jobs, Job{
					Key:    fmt.Sprintf("%s/%s/seed%d", b, p, s),
					Config: quickConfig(b, p, oversub, s),
				})
			}
		}
	}
	serial := RunAllWorkers(jobs, 1)
	parallel1 := RunAll(jobs)
	parallel2 := RunAllWorkers(jobs, 4)
	for i := range jobs {
		if err := serial[i].Err; err != nil {
			t.Fatalf("%s: serial run failed: %v", jobs[i].Key, err)
		}
		for run, got := range map[string]Outcome{"pool": parallel1[i], "pool-4": parallel2[i]} {
			if got.Err != nil {
				t.Fatalf("%s: %s run failed: %v", jobs[i].Key, run, got.Err)
			}
			if got.Key != jobs[i].Key {
				t.Fatalf("outcome %d key %q, want %q", i, got.Key, jobs[i].Key)
			}
			if got.Result != serial[i].Result {
				t.Errorf("%s: %s result diverged from serial:\n  serial:   %+v\n  parallel: %+v",
					jobs[i].Key, run, serial[i].Result, got.Result)
			}
		}
	}
}

// TestSeedPerturbsRun checks the seed axis is live: different seeds may
// produce different timings, equal seeds must reproduce exactly.
func TestSeedPerturbsRun(t *testing.T) {
	disableDedupe(t)
	a1, err := Run(quickConfig("SPM_G", "AWG", false, 7))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(quickConfig("SPM_G", "AWG", false, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("equal seeds diverged:\n  %+v\n  %+v", a1, a2)
	}
}

func TestRunAllCarriesErrors(t *testing.T) {
	jobs := []Job{
		{Key: "good", Config: quickConfig("SPM_G", "Baseline", false, 0)},
		{Key: "bad-policy", Config: quickConfig("SPM_G", "NoSuchPolicy", false, 0)},
		{Key: "bad-bench", Config: quickConfig("NoSuchBench", "Baseline", false, 0)},
	}
	outs := RunAll(jobs)
	if outs[0].Err != nil {
		t.Fatalf("good job failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil || outs[2].Err == nil {
		t.Fatalf("bad jobs did not carry errors: %+v", outs)
	}
	if outs[0].Result.Cycles == 0 {
		t.Fatal("good job reported zero cycles")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Policy: "AWG"}); err == nil {
		t.Error("config without benchmark or kernel accepted")
	}
	if _, err := Run(Config{Benchmark: "SPM_G"}); err == nil {
		t.Error("config without policy accepted")
	}
}

func TestTotalsAccumulate(t *testing.T) {
	ResetTotals()
	if _, err := Run(quickConfig("SPM_G", "Baseline", false, 0)); err != nil {
		t.Fatal(err)
	}
	cycles, runs := Totals()
	if runs != 1 || cycles == 0 {
		t.Fatalf("Totals() = %d cycles, %d runs after one run", cycles, runs)
	}
}
