package gpu

import (
	"fmt"
	"sort"
	"sync"

	"awgsim/internal/event"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/trace"
)

// Policy lowers synchronization wait episodes. Exactly one policy is active
// per machine; the paper's design space (Baseline, Sleep, Timeout, the
// monitor family, AWG) is expressed entirely through this interface.
type Policy interface {
	// Name identifies the policy in results ("Baseline", "AWG", ...).
	Name() string
	// Attach is called once before the kernel launches, giving the policy
	// access to machine services (and letting it subscribe to atomic
	// updates for its monitors). A non-nil error (e.g. an invalid SyncMon
	// or CP geometry) fails machine construction.
	Attach(m *Machine) error
	// Wait completes one synchronization episode for w: the program needs
	// op (OpLoad for pure waits, OpExch/OpCAS for lock acquires, with
	// operands a and b) to be retried until the value it returns equals
	// want. The policy decides what happens between attempts — busy
	// polling, backoff, timed stalls, monitor arming, waiting atomics,
	// context switches — and finally calls done exactly once with the
	// observed value. done must be called in an engine event.
	Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, hint WaitHint, done func(observed int64))
}

// Machine is the whole simulated GPU. It owns the event engine, the memory
// hierarchy, the WG runtimes and the device request loop, and wires three
// collaborators (see subsystems.go) that do everything else: the dispatcher
// places WGs onto CUs, the atomic pipeline services atomics at the L2, and
// the context engine saves and restores WG contexts.
type Machine struct {
	cfg  Config
	eng  *event.Engine
	mem  *mem.System
	spec *KernelSpec
	pol  Policy

	sched   dispatcher
	atomics atomicPipeline
	ctx     contextEngine

	wgs     []*WG // primary kernel's WGs (results, charz)
	kernels []*kernelRun
	allWGs  []*WG // every WG on the machine, indexed by WGID

	Count Counters

	tracer *trace.Recorder //lint:allow snapcover observational trace sink wired by the host, not simulation state

	completed    int
	maxWait      uint64
	lastDoneAt   event.Cycle
	lastProgress event.Cycle
	deadlocked   bool
	ran          bool //lint:allow snapcover one-shot Run latch; snapshots fork mid-run and restore into the same run

	diag      *metrics.Diagnosis
	diagSinks []func(*metrics.Diagnosis) //lint:allow snapcover host-side diagnosis callbacks; function values are re-wired, not snapshotted

	wgWait sync.WaitGroup

	// irOps accumulates inline-interpreted IR ops for ExecStats, flushed to
	// the package counter at FinishRun.
	irOps uint64 //lint:allow snapcover host-side telemetry like sim.Totals; restores must not rewind it

	jitterState uint64

	// Snapshot machinery (snapshot.go). snapHooks carries policy-side state
	// in and out of machine snapshots; respLogging records WG responses for
	// goroutine replay; snapRing is the watchdog's periodic pre-stall
	// snapshots; replaying suppresses watchdog/ring side effects while a
	// diagnosis replay re-executes a window of the run.
	snapHooks   []snapHook
	respLogging bool        //lint:allow snapcover replay-capture switch; toggled by the replay driver around a restore, never inside it
	replaying   bool        //lint:allow snapcover the replay flag itself gates restore side effects; carrying it through a snapshot would wedge replays on
	snapRing    []*Snapshot //lint:allow snapcover the watchdog ring holds snapshots; capturing it inside one would recurse
}

// NewMachine builds a machine for one kernel launch under one policy.
func NewMachine(cfg Config, memCfg mem.Config, spec *KernelSpec, pol Policy) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("gpu: nil policy")
	}
	eng := event.NewPooled()
	ms, err := mem.NewSystem(memCfg, eng, cfg.NumCUs)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:  cfg,
		eng:  eng,
		mem:  ms,
		spec: spec,
		pol:  pol,
	}
	m.sched = newScheduler(m)
	m.atomics = newAtomicUnit(m)
	m.ctx = newCtxSwitcher(m)
	// Build the WGs with their static home groups: WGs are assigned to
	// scheduling groups in dispatch order, MaxWGsPerCU per group, wrapping
	// over the CUs — the blocked placement the sequential dispatcher of
	// Section II.D produces.
	groupOf := func(i int) int { return (i / cfg.MaxWGsPerCU) % cfg.NumCUs }
	groupSize := make(map[int]int)
	for i := 0; i < spec.NumWGs; i++ {
		groupSize[groupOf(i)]++
	}
	m.wgs = make([]*WG, spec.NumWGs)
	for i := range m.wgs {
		m.wgs[i] = &WG{
			id:    WGID(i),
			spec:  spec,
			home:  groupOf(i),
			inGrp: (i/cfg.MaxWGsPerCU)/cfg.NumCUs*cfg.MaxWGsPerCU + i%cfg.MaxWGsPerCU,
			grpSz: groupSize[groupOf(i)],
			state: StatePending,
			cu:    NoCU,
		}
	}
	primary := &kernelRun{spec: spec, wgs: m.wgs}
	for _, w := range m.wgs {
		w.kr = primary
	}
	m.kernels = []*kernelRun{primary}
	m.allWGs = append(m.allWGs, m.wgs...)
	m.sched.enqueuePending(m.wgs)
	if err := pol.Attach(m); err != nil {
		return nil, fmt.Errorf("gpu: attaching policy %s: %w", pol.Name(), err)
	}
	return m, nil
}

// InjectKernel launches another kernel at cycle `at` with the given
// priority (higher preempts lower). If the machine lacks free resources
// when the kernel arrives, enough resident lower-priority WGs are
// force-preempted (context switched out, queued ready) to make room —
// the kernel-level preemptive scheduling current GPUs already perform.
// The injected kernel's WGs run under the machine's active policy.
func (m *Machine) InjectKernel(spec *KernelSpec, at event.Cycle, priority int) (KernelHandle, error) {
	if err := spec.validate(); err != nil {
		return KernelHandle{}, err
	}
	if m.ran {
		return KernelHandle{}, fmt.Errorf("gpu: InjectKernel after Run started; schedule before Run")
	}
	kr := &kernelRun{spec: spec, priority: priority}
	base := len(m.allWGs)
	for i := 0; i < spec.NumWGs; i++ {
		w := &WG{
			id:    WGID(base + i),
			spec:  spec,
			kr:    kr,
			home:  i % m.cfg.NumCUs,
			grpSz: spec.NumWGs / max(m.cfg.NumCUs, 1),
			inGrp: i / m.cfg.NumCUs,
			state: StatePending,
			cu:    NoCU,
		}
		kr.wgs = append(kr.wgs, w)
	}
	m.allWGs = append(m.allWGs, kr.wgs...)
	m.kernels = append(m.kernels, kr)
	t := m.eng.NewTask(runKernelLaunch)
	t.Env[0] = m
	t.Env[1] = kr
	m.eng.AtTask(at, t)
	return KernelHandle{kr: kr}, nil
}

// runKernelLaunch fires at a kernel's injection time: its WGs enqueue
// pending, a positive-priority kernel evicts residents for room, and the
// dispatcher runs.
func runKernelLaunch(t *event.Task) {
	m := t.Env[0].(*Machine)
	kr := t.Env[1].(*kernelRun)
	kr.launched = m.eng.Now()
	m.sched.enqueuePending(kr.wgs)
	if kr.priority > 0 {
		m.sched.evictForRoom(kr)
	}
	m.sched.kick()
}

// Engine exposes the event engine (harnesses use it to schedule the
// mid-kernel preemption of the oversubscribed experiment).
func (m *Machine) Engine() *event.Engine { return m.eng }

// Policy exposes the attached policy (fault injection type-asserts it to
// reach monitor hardware when present).
func (m *Machine) Policy() Policy { return m.pol }

// AddDiagnostic registers a hook that enriches deadlock diagnoses; the
// monitor policies use it to report SyncMon/CP occupancy.
func (m *Machine) AddDiagnostic(f func(*metrics.Diagnosis)) {
	m.diagSinks = append(m.diagSinks, f)
}

// Mem exposes the memory hierarchy.
func (m *Machine) Mem() *mem.System { return m.mem }

// Config reports the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// PollOverhead reports the configured busy-wait retry overhead in cycles.
// Retry loops fire this per attempt; it reads one field where Config()
// would copy the whole struct.
func (m *Machine) PollOverhead() event.Cycle { return event.Cycle(m.cfg.PollOverhead) }

// CycleLimit reports the configured per-run cycle cap (0 = none), for
// harness advance loops that test it every slice.
func (m *Machine) CycleLimit() event.Cycle { return event.Cycle(m.cfg.MaxCycles) }

// ReleaseBuffers recycles the machine's engine and memory tag arrays into
// their package pools for the next machine this process builds. It must be
// the caller's last use of the machine: the engine, the memory system, and
// any snapshot restore against them are invalid afterward.
func (m *Machine) ReleaseBuffers() {
	m.mem.ReleaseBuffers()
	m.eng.Recycle()
}

// Spec reports the kernel being run.
func (m *Machine) Spec() *KernelSpec { return m.spec }

// WGs exposes every work-group runtime on the machine, indexed by WGID
// (read-only use by policies/tests).
func (m *Machine) WGs() []*WG { return m.allWGs }

// SetTracer attaches an optional timeline recorder; nil disables tracing.
func (m *Machine) SetTracer(r *trace.Recorder) { m.tracer = r }

// Trace records a timeline event for w when tracing is enabled. Policies
// use it for their resume/timeout annotations.
func (m *Machine) Trace(w *WG, kind trace.Kind) {
	if m.tracer != nil && w != nil {
		m.tracer.Record(m.eng.Now(), int(w.id), kind)
	}
}

// SeedJitter perturbs the deterministic jitter stream. Runs with the same
// seed are bit-identical; different seeds de-synchronize policy timeouts
// without giving up replayability. Call before Run.
func (m *Machine) SeedJitter(seed uint64) { m.jitterState = seed }

// Jitter returns a deterministic pseudo-random value in [0, n), varying per
// call; policies use it to de-synchronize timeouts without breaking replay.
func (m *Machine) Jitter(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	m.jitterState++
	x := m.jitterState + 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return (x ^ x>>31) % n
}

// progress records a forward-progress event for the deadlock watchdog.
func (m *Machine) progress() { m.lastProgress = m.eng.Now() }

// SetStalled marks whether w is parked without issuing instructions. A
// stalled WG frees its CU's instruction-issue bandwidth — the reason the
// paper's waiting policies speed up even co-resident WGs, while busy
// waiters steal issue slots from critical-section holders.
func (m *Machine) SetStalled(w *WG, stalled bool) {
	if stalled && !w.stalled {
		m.Trace(w, trace.StallBegin)
	}
	w.stalled = stalled
}

// Done reports whether every WG of every kernel has completed.
func (m *Machine) Done() bool { return m.completed == len(m.allWGs) }

// CompletedWGs reports how many WGs have run to completion so far — the
// fleet layer's SLO checker samples it between slices as its forward-
// progress signal.
func (m *Machine) CompletedWGs() int { return m.completed }

// Deadlocked reports whether the watchdog has declared the run dead (the
// fork planner checks it to abandon forking when a shared prefix stalls).
func (m *Machine) Deadlocked() bool { return m.deadlocked }

// Halt declares an unfinished run dead for an external reason — the fleet
// layer drains surviving workloads this way when device churn drops the
// fleet below its survivable-capacity floor — capturing the same
// structured diagnosis the watchdog would and stopping the engine. A later
// FinishRun keeps this diagnosis instead of classifying the stop itself.
// No-op on a completed or already-diagnosed machine.
func (m *Machine) Halt(reason string) {
	if m.Done() || m.deadlocked {
		return
	}
	m.deadlocked = true
	m.diag = m.diagnose(reason)
	m.eng.Stop()
}

// --- the WG request loop ---

// start launches a pending WG on cu for the first time.
func (m *Machine) start(w *WG, cu *computeUnit) {
	cu.host(w, m.cfg.SIMDWidth)
	w.state = StateResident
	at := m.sched.dispatchSlot()
	t := m.eng.NewTask(runStartBody)
	t.Env[0] = m
	t.Env[1] = w
	m.eng.AtTask(at, t)
}

// runStartBody fires at a WG's dispatch slot: an IR kernel gets its inline
// interpreter frame and advances immediately; a closure kernel launches its
// program goroutine and the machine enters the WG's request loop.
func runStartBody(t *event.Task) {
	m := t.Env[0].(*Machine)
	w := t.Env[1].(*WG)
	w.started = true
	w.live = true
	w.phaseStart = m.eng.Now()
	m.progress()
	m.Trace(w, trace.Start)
	if m.useIR(w) {
		m.startIRFrame(w)
		m.advanceIR(w)
		return
	}
	m.spawnBody(w)
	m.receive(w)
}

// spawnBody launches w's program goroutine (creating the rendezvous
// channels on first use — IR WGs never allocate them) and leaves its first
// request pending for the caller to receive.
func (m *Machine) spawnBody(w *WG) {
	if w.req == nil {
		w.req = make(chan request)
		w.resp = make(chan response)
	}
	dev := &wgDevice{w: w, numWGs: w.spec.NumWGs}
	body := w.spec.body()
	goroutineSpawns.Add(1)
	m.wgWait.Add(1)
	go func() {
		defer m.wgWait.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSentinel); !ok {
					panic(r)
				}
			}
		}()
		body(dev)
		w.req <- request{kind: reqDone}
	}()
}

// runCompute advances w through cycles of computation, re-sampling the
// CU's issue-slot contention in chunks so that neighbours stalling or
// resuming mid-computation changes the rate — busy pollers slow a
// critical-section holder for exactly as long as they keep polling.
func (m *Machine) runCompute(w *WG, cycles event.Cycle) {
	chunk := cycles / 4
	// Chunks must also stay under the watchdog window (progress is marked
	// per chunk) and re-sample issue contention often enough.
	if limit := event.Cycle(m.cfg.ProgressWindow / 8); chunk > limit && limit > 0 {
		chunk = limit
	}
	m.computeStep(w, cycles, chunk)
}

// computeStep runs one contention-sampled chunk and schedules the next via
// a pooled task — this chain is the CU-issue hot path.
func (m *Machine) computeStep(w *WG, remaining, chunk event.Cycle) {
	// Executing real work is forward progress: only synchronization
	// stalls may trip the deadlock watchdog. (Busy-wait polling is
	// atomics, not Compute, so spinning never counts.)
	m.progress()
	if remaining == 0 {
		m.step(w, response{})
		return
	}
	c := chunk
	if c == 0 || c > remaining {
		c = remaining
	}
	t := m.eng.NewTask(runComputeChunk)
	t.Env[0] = m
	t.Env[1] = w
	t.I[0] = int64(remaining - c)
	t.I[1] = int64(chunk)
	m.eng.AfterTask(c*m.sched.issueFactor(w), t)
}

func runComputeChunk(t *event.Task) {
	t.Env[0].(*Machine).computeStep(t.Env[1].(*WG), event.Cycle(t.I[0]), event.Cycle(t.I[1]))
}

// runLoadResp completes a load: the value is read at response time, as the
// closure-based path did.
func runLoadResp(t *event.Task) {
	m := t.Env[0].(*Machine)
	m.step(t.Env[1].(*WG), response{val: m.mem.Read(mem.Addr(t.I[0]))})
}

// runStepEmpty resumes a WG with an empty response (stores, barriers).
func runStepEmpty(t *event.Task) {
	t.Env[0].(*Machine).step(t.Env[1].(*WG), response{})
}

// runAtomicStepResp resumes a WG with its atomic's returned value.
func runAtomicStepResp(t *event.Task) {
	t.Env[0].(*Machine).step(t.Env[1].(*WG), response{val: t.I[AtomicRet]})
}

// runParked fires the continuations queued while the WG was away.
func (m *Machine) runParked(w *WG) {
	parked := w.parked
	w.parked = nil
	for _, f := range parked {
		f()
	}
}

// step resumes w's program with a response; if the WG lost residency, the
// delivery parks until it returns. An IR WG's frame advances inline in this
// event; a closure WG's goroutine is resumed over the channel rendezvous,
// with the value logged (up to the cap) when replay capture is on.
func (m *Machine) step(w *WG, r response) {
	if !w.Resident() {
		w.Park(func() { m.step(w, r) })
		return
	}
	w.respCount++
	if f := w.frame; f != nil {
		if f.dst >= 0 {
			f.regs[f.dst] = r.val
		}
		m.advanceIR(w)
		return
	}
	if m.respLogging {
		if len(w.respLog) < m.cfg.respLogCap() {
			w.respLog = append(w.respLog, r.val)
		} else {
			w.respLogCapped = true
		}
	}
	//lint:allow chansend goroutine-fallback response delivery; IR WGs took the frame path above
	w.resp <- r
	m.receive(w)
}

// receive synchronously accepts w's next request. The WG goroutine is the
// only runnable activity at this point, so this is a deterministic
// rendezvous, not a race.
func (m *Machine) receive(w *WG) {
	m.handle(w, <-w.req)
}

// handle processes one device request.
func (m *Machine) handle(w *WG, r request) {
	now := m.eng.Now()
	switch r.kind {
	case reqCompute:
		m.runCompute(w, r.cycles)

	case reqLoad:
		respAt := m.mem.LoadTiming(int(w.cu), r.addr)
		t := m.eng.NewTask(runLoadResp)
		t.Env[0] = m
		t.Env[1] = w
		t.I[0] = int64(r.addr)
		m.eng.AtTask(respAt, t)

	case reqStore:
		respAt := m.mem.StoreTiming(int(w.cu), r.addr)
		m.mem.Write(r.addr, r.a)
		t := m.eng.NewTask(runStepEmpty)
		t.Env[0] = m
		t.Env[1] = w
		m.eng.AtTask(respAt, t)

	case reqAtomic:
		t := m.eng.NewTask(runAtomicStepResp)
		t.Env[0] = m
		t.Env[1] = w
		m.atomics.issueTask(w, r.v, r.op, r.a, r.b, t)

	case reqSyncThreads:
		// The intra-WG barrier's cost grows with the wavefronts it gathers.
		wf := event.Cycle(w.spec.Wavefronts(m.cfg.SIMDWidth))
		t := m.eng.NewTask(runStepEmpty)
		t.Env[0] = m
		t.Env[1] = w
		m.eng.AfterTask(event.Cycle(m.cfg.SyncThreadsLatency)*wf, t)

	case reqAwait, reqAcquire:
		op := OpLoad
		a, b := int64(0), int64(0)
		cmp := r.cmp
		if r.kind == reqAcquire {
			op, a, b = r.op, r.a, r.b
			cmp = CmpEQ
		}
		w.setPhase(now, true)
		w.waitVar, w.waitWant, w.waitCmp, w.waitBegan = r.v, r.want, cmp, now
		m.atomics.charBegin(w, r.v, r.want)
		began := now
		m.pol.Wait(w, r.v, op, a, b, r.want, cmp, r.hint, func(observed int64) {
			m.atomics.charMet(w, r.v, r.want)
			if d := uint64(m.eng.Now() - began); d > m.maxWait {
				m.maxWait = d
			}
			w.setPhase(m.eng.Now(), false)
			m.progress()
			m.Trace(w, trace.Acquired)
			m.step(w, response{val: observed})
		})

	case reqDone:
		m.Trace(w, trace.Finish)
		w.closePhase(now)
		w.finished = true
		w.live = false
		w.state = StateDone
		m.sched.cu(w.cu).release(w, m.cfg.SIMDWidth)
		m.completed++
		w.kr.completed++
		if w.kr.completed == len(w.kr.wgs) {
			w.kr.doneAt = now
		}
		m.lastDoneAt = now
		m.progress()
		m.sched.kick()

	default:
		panic(fmt.Sprintf("gpu: unknown request kind %d", r.kind))
	}
}

// diagnose captures the machine's synchronization state for a run that
// failed to finish: every unfinished WG, the conditions they block on,
// queue occupancies, and policy-side monitor occupancy via the registered
// diagnostic sinks.
func (m *Machine) diagnose(reason string) *metrics.Diagnosis {
	d := &metrics.Diagnosis{
		Reason:       reason,
		AtCycle:      uint64(m.eng.Now()),
		LastProgress: uint64(m.lastProgress),
		Completed:    m.completed,
		Total:        len(m.allWGs),
		EnabledCUs:   m.sched.enabledCUs(),
		TotalCUs:     m.cfg.NumCUs,
	}
	d.PendingWGs, d.ReadyWGs = m.sched.queueLens()
	now := m.eng.Now()
	type condKey struct {
		addr uint64
		want int64
		cmp  Cmp
	}
	conds := make(map[condKey][]int)
	for _, w := range m.allWGs {
		if w.finished {
			continue
		}
		wd := metrics.WGDiag{ID: int(w.id), State: w.state.String(), CU: int(w.cu)}
		if v, want, cmp, ok := w.WaitingOn(); ok {
			wd.Blocked = true
			wd.Addr = uint64(v.Addr)
			wd.Want = want
			wd.Cmp = cmp.String()
			wd.StuckFor = uint64(now - w.waitBegan)
			k := condKey{uint64(v.Addr), want, cmp}
			conds[k] = append(conds[k], int(w.id))
		}
		d.WGs = append(d.WGs, wd)
	}
	keys := make([]condKey, 0, len(conds))
	for k := range conds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		if keys[i].want != keys[j].want {
			return keys[i].want < keys[j].want
		}
		// cmp completes the key: (addr, want) alone ties e.g. a reader's
		// `>= 0` against a writer's `== 0` on the same lock word, and a tie
		// leaks map iteration order into the diagnosis.
		return keys[i].cmp < keys[j].cmp
	})
	for _, k := range keys {
		ids := conds[k]
		sort.Ints(ids)
		d.Conditions = append(d.Conditions, metrics.BlockedCond{
			Addr: k.addr, Want: k.want, Cmp: k.cmp.String(), Waiters: ids,
		})
	}
	for _, f := range m.diagSinks {
		f(d)
	}
	return d
}

// Run launches the kernel and simulates to completion, deadlock, or the
// cycle cap. It may be called once.
func (m *Machine) Run() metrics.Result {
	m.Prepare()
	m.RunTo(event.Cycle(m.cfg.MaxCycles))
	return m.FinishRun()
}

// Prepare arms the run without driving the engine: the event budget, the
// first dispatcher kick, the deadlock watchdog and — when SnapshotEvery is
// set — response logging plus the periodic snapshot ring the time-travel
// diagnosis replays from. The fork planner uses the Prepare/RunTo/FinishRun
// decomposition to pause a run at a sweep group's divergence point, snapshot
// it, and finish it once per forked member. It may be called once.
func (m *Machine) Prepare() {
	if m.ran {
		panic("gpu: Machine.Run called twice")
	}
	m.ran = true
	m.eng.SetEventBudget(m.cfg.MaxEvents)
	m.sched.kick()
	// Deadlock watchdog: on a full progress window without any WG advancing,
	// capture a structured diagnosis before stopping the engine. During a
	// diagnosis replay the closure must consume the same engine state (fire,
	// not reschedule) without re-diagnosing, so replays stay cycle- and
	// seq-identical to the original run.
	var watch func()
	watch = func() {
		if m.Done() {
			return
		}
		if m.eng.Now()-m.lastProgress >= event.Cycle(m.cfg.ProgressWindow) {
			if !m.replaying {
				m.deadlocked = true
				m.diag = m.diagnose(metrics.ReasonProgressStall)
				m.eng.Stop()
			}
			return
		}
		m.eng.After(event.Cycle(m.cfg.ProgressWindow/4), watch)
	}
	m.eng.After(event.Cycle(m.cfg.ProgressWindow/4), watch)
	if m.cfg.SnapshotEvery > 0 {
		m.respLogging = true
		var tick func()
		tick = func() {
			if m.Done() {
				return
			}
			// Reschedule before snapshotting so the snapshot carries the
			// next tick: a replay then consumes identical sequence numbers.
			m.eng.After(event.Cycle(m.cfg.SnapshotEvery), tick)
			if !m.replaying {
				m.pushRingSnapshot()
			}
		}
		m.eng.After(event.Cycle(m.cfg.SnapshotEvery), tick)
	}
}

// RunTo drives the engine to the given cycle (or to a stop, budget
// exhaustion, or calendar drain, whichever comes first).
func (m *Machine) RunTo(c event.Cycle) { m.eng.RunUntil(c) }

// SetResponseLogging toggles per-WG response logging. The fork planner turns
// it on for a sweep group's shared prefix (so member restores can rebuild
// the program goroutines) and off after the group snapshot, bounding the log
// at the prefix length.
func (m *Machine) SetResponseLogging(on bool) { m.respLogging = on }

// FinishRun classifies an unfinished run, renders the time-travel diagnosis
// when a snapshot ring is armed, tears the WG goroutines down and assembles
// the result. After a snapshot Restore, RunTo/FinishRun may run again —
// that is the fork planner's member loop.
func (m *Machine) FinishRun() metrics.Result {
	if !m.Done() {
		m.deadlocked = true
		if m.diag == nil {
			reason := metrics.ReasonCycleBudget
			if m.eng.BudgetExhausted() {
				reason = metrics.ReasonEventBudget
			} else if m.eng.Pending() == 0 {
				reason = metrics.ReasonNoEvents
			}
			m.diag = m.diagnose(reason)
		}
	}
	if m.deadlocked && m.diag != nil && len(m.snapRing) > 0 {
		m.diag.Trace = m.replayTrace()
	}
	end := m.eng.Now()
	for _, w := range m.allWGs {
		w.closePhase(end)
	}
	m.abortLiveWGs()
	irOpsInterpreted.Add(m.irOps)
	m.irOps = 0
	return m.result(end)
}

// DropResponseLogs frees every WG's replay log. The fork planner calls it
// once a sweep group's members have all finished and no further restore can
// need the shared prefix's responses.
func (m *Machine) DropResponseLogs() {
	for _, w := range m.allWGs {
		w.respLog = nil
		w.respLogCapped = false
	}
}

// abortLiveWGs unwinds the goroutines of unfinished WGs so the process
// doesn't leak them after a deadlocked run. IR WGs have no goroutine to
// unwind; their frames simply stop being advanced.
func (m *Machine) abortLiveWGs() {
	for _, w := range m.allWGs {
		if w.live {
			if w.frame == nil {
				w.resp <- response{abort: true}
			}
			w.live = false
		}
	}
	m.wgWait.Wait()
}
