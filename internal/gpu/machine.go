package gpu

import (
	"fmt"
	"sync"

	"awgsim/internal/event"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/trace"
)

// Policy lowers synchronization wait episodes. Exactly one policy is active
// per machine; the paper's design space (Baseline, Sleep, Timeout, the
// monitor family, AWG) is expressed entirely through this interface.
type Policy interface {
	// Name identifies the policy in results ("Baseline", "AWG", ...).
	Name() string
	// Attach is called once before the kernel launches, giving the policy
	// access to machine services (and letting it subscribe to atomic
	// updates for its monitors).
	Attach(m *Machine)
	// Wait completes one synchronization episode for w: the program needs
	// op (OpLoad for pure waits, OpExch/OpCAS for lock acquires, with
	// operands a and b) to be retried until the value it returns equals
	// want. The policy decides what happens between attempts — busy
	// polling, backoff, timed stalls, monitor arming, waiting atomics,
	// context switches — and finally calls done exactly once with the
	// observed value. done must be called in an engine event.
	Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, hint WaitHint, done func(observed int64))
}

// AtomicObserver is notified at bank-service time of every atomic, after
// its value applies. The SyncMon implementations subscribe through this.
type AtomicObserver func(by *WG, v Var, op AtomicOp, old, new int64)

// Counters aggregates policy- and machine-level scheduling activity.
// Policies increment their own fields through Machine.Count.
type Counters struct {
	SwitchesOut, SwitchesIn uint64
	Stalls                  uint64
	Resumes                 uint64
	WastedResumes           uint64
	Timeouts                uint64
	PredictAll, PredictOne  uint64
	BloomResets             uint64
	LogSpills, LogRejects   uint64
	MaxConditions           int
	MaxWaitingWGs           int
	MaxMonitoredVars        int
	MaxLogEntries           int
}

// kernelRun tracks one kernel's execution on the machine. The primary
// kernel is created with the machine; further kernels (e.g. a
// high-priority job arriving mid-run) are injected with InjectKernel.
type kernelRun struct {
	spec      *KernelSpec
	priority  int
	wgs       []*WG
	completed int
	launched  event.Cycle
	doneAt    event.Cycle
}

// KernelHandle reports an injected kernel's progress.
type KernelHandle struct {
	kr *kernelRun
}

// Done reports whether every WG of the kernel completed.
func (h KernelHandle) Done() bool { return h.kr.completed == len(h.kr.wgs) }

// Latency reports launch-to-completion in cycles (0 while running).
func (h KernelHandle) Latency() uint64 {
	if !h.Done() {
		return 0
	}
	return uint64(h.kr.doneAt - h.kr.launched)
}

// Machine is the whole simulated GPU: engine, memory hierarchy, CUs,
// dispatcher, the WG runtimes, and the active scheduling policy.
type Machine struct {
	cfg  Config
	eng  *event.Engine
	mem  *mem.System
	spec *KernelSpec
	pol  Policy

	cus     []*computeUnit
	wgs     []*WG // primary kernel's WGs (results, charz)
	kernels []*kernelRun
	allWGs  []*WG // every WG on the machine, indexed by WGID

	pending    []*WG // never-started WGs, in dispatch order
	readyQueue []*WG // switched-out WGs whose conditions are met
	queueSeq   uint64
	dispFree   event.Cycle
	kickQueued bool

	observers []AtomicObserver

	Count Counters

	tracer *trace.Recorder

	completed    int
	maxWait      uint64
	lastDoneAt   event.Cycle
	lastProgress event.Cycle
	deadlocked   bool
	ran          bool

	wgWait sync.WaitGroup

	// Table 2 characterization.
	chars map[mem.Addr]*varChar

	jitterState uint64
}

type varChar struct {
	scope         Scope
	wants         map[int64]bool
	waiters       map[condKey]int // concurrent waiters per condition
	maxWaiters    int
	episodes      map[WGID]int // updates observed per active episode
	updatesPerMet []int
}

type condKey struct {
	addr mem.Addr
	want int64
}

// NewMachine builds a machine for one kernel launch under one policy.
func NewMachine(cfg Config, memCfg mem.Config, spec *KernelSpec, pol Policy) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("gpu: nil policy")
	}
	eng := event.New()
	ms, err := mem.NewSystem(memCfg, eng, cfg.NumCUs)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		eng:   eng,
		mem:   ms,
		spec:  spec,
		pol:   pol,
		chars: make(map[mem.Addr]*varChar),
	}
	m.cus = make([]*computeUnit, cfg.NumCUs)
	for i := range m.cus {
		m.cus[i] = newComputeUnit(CUID(i), cfg)
	}
	// Build the WGs with their static home groups: WGs are assigned to
	// scheduling groups in dispatch order, MaxWGsPerCU per group, wrapping
	// over the CUs — the blocked placement the sequential dispatcher of
	// Section II.D produces.
	groupOf := func(i int) int { return (i / cfg.MaxWGsPerCU) % cfg.NumCUs }
	groupSize := make(map[int]int)
	for i := 0; i < spec.NumWGs; i++ {
		groupSize[groupOf(i)]++
	}
	m.wgs = make([]*WG, spec.NumWGs)
	for i := range m.wgs {
		m.wgs[i] = &WG{
			id:    WGID(i),
			spec:  spec,
			home:  groupOf(i),
			inGrp: (i/cfg.MaxWGsPerCU)/cfg.NumCUs*cfg.MaxWGsPerCU + i%cfg.MaxWGsPerCU,
			grpSz: groupSize[groupOf(i)],
			state: StatePending,
			cu:    NoCU,
			req:   make(chan request),
			resp:  make(chan response),
		}
	}
	primary := &kernelRun{spec: spec, wgs: m.wgs}
	for _, w := range m.wgs {
		w.kr = primary
	}
	m.kernels = []*kernelRun{primary}
	m.allWGs = append(m.allWGs, m.wgs...)
	m.enqueuePending(m.wgs)
	pol.Attach(m)
	return m, nil
}

// InjectKernel launches another kernel at cycle `at` with the given
// priority (higher preempts lower). If the machine lacks free resources
// when the kernel arrives, enough resident lower-priority WGs are
// force-preempted (context switched out, queued ready) to make room —
// the kernel-level preemptive scheduling current GPUs already perform.
// The injected kernel's WGs run under the machine's active policy.
func (m *Machine) InjectKernel(spec *KernelSpec, at event.Cycle, priority int) (KernelHandle, error) {
	if err := spec.validate(); err != nil {
		return KernelHandle{}, err
	}
	if m.ran {
		return KernelHandle{}, fmt.Errorf("gpu: InjectKernel after Run started; schedule before Run")
	}
	kr := &kernelRun{spec: spec, priority: priority}
	base := len(m.allWGs)
	for i := 0; i < spec.NumWGs; i++ {
		w := &WG{
			id:    WGID(base + i),
			spec:  spec,
			kr:    kr,
			home:  i % m.cfg.NumCUs,
			grpSz: spec.NumWGs / max(m.cfg.NumCUs, 1),
			inGrp: i / m.cfg.NumCUs,
			state: StatePending,
			cu:    NoCU,
			req:   make(chan request),
			resp:  make(chan response),
		}
		kr.wgs = append(kr.wgs, w)
	}
	m.allWGs = append(m.allWGs, kr.wgs...)
	m.kernels = append(m.kernels, kr)
	m.eng.At(at, func() {
		kr.launched = m.eng.Now()
		m.enqueuePending(kr.wgs)
		if priority > 0 {
			m.evictForRoom(kr)
		}
		m.kick()
	})
	return KernelHandle{kr: kr}, nil
}

// enqueuePending inserts WGs into the pending queue in priority order
// (stable: earlier kernels first within a priority).
func (m *Machine) enqueuePending(wgs []*WG) {
	for _, w := range wgs {
		m.queueSeq++
		w.queueSeq = m.queueSeq
	}
	m.pending = append(m.pending, wgs...)
	sortWGQueue(m.pending)
}

// sortWGQueue orders a queue by (priority desc, arrival seq asc): higher
// priority kernels jump ahead, but within a priority the queue stays FIFO
// — anything else starves FIFO synchronization primitives (a ticket
// holder re-queued behind perpetually re-trying lower-id WGs would never
// get a slot).
func sortWGQueue(q []*WG) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0; j-- {
			a, b := q[j-1], q[j]
			if b.kr.priority > a.kr.priority || (b.kr.priority == a.kr.priority && b.queueSeq < a.queueSeq) {
				q[j-1], q[j] = b, a
			} else {
				break
			}
		}
	}
}

// evictForRoom force-preempts resident lower-priority WGs until kr's WGs
// all fit (waiting/stalled victims first — they were not making progress
// anyway — then running ones).
func (m *Machine) evictForRoom(kr *kernelRun) {
	need := 0
	for _, w := range kr.wgs {
		if w.state == StatePending {
			need++
		}
	}
	free := 0
	for _, cu := range m.cus {
		if cu.enabled {
			f := cu.wgSlots
			if wf := cu.wfSlots / kr.spec.Wavefronts(m.cfg.SIMDWidth); wf < f {
				f = wf
			}
			free += f
		}
	}
	deficit := need - free
	if deficit <= 0 {
		return
	}
	// Victim selection: lower priority only; stalled before running;
	// deterministic by WG id.
	var victims []*WG
	pass := func(wantStalled bool) {
		for _, w := range m.allWGs {
			if deficit <= len(victims) {
				return
			}
			if w.state != StateResident || w.kr == kr || w.kr.priority >= kr.priority {
				continue
			}
			if w.stalled != wantStalled {
				continue
			}
			victims = append(victims, w)
		}
	}
	pass(true)
	pass(false)
	for _, w := range victims {
		m.forceEvict(w)
	}
}

// forceEvict context switches a resident WG out on behalf of the
// kernel-level scheduler; the WG requeues ready (it was not waiting on
// the policy's say-so, so it wants its resources back).
func (m *Machine) forceEvict(w *WG) {
	if w.state != StateResident {
		return
	}
	w.forcePreempted = true
	w.state = StateSwitchingOut
	w.readyWhenSaved = true
	m.Count.SwitchesOut++
	m.Trace(w, trace.SwitchOut)
	cu := m.cus[w.cu]
	m.eng.After(event.Cycle(m.cfg.CPLatency), func() {
		doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
		m.eng.At(doneAt, func() {
			cu.release(w, m.cfg.SIMDWidth)
			w.state = StateSwitchedOut
			if w.readyWhenSaved {
				w.readyWhenSaved = false
				m.MarkReady(w)
			}
			m.kick()
		})
	})
}

// Engine exposes the event engine (harnesses use it to schedule the
// mid-kernel preemption of the oversubscribed experiment).
func (m *Machine) Engine() *event.Engine { return m.eng }

// Mem exposes the memory hierarchy.
func (m *Machine) Mem() *mem.System { return m.mem }

// Config reports the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Spec reports the kernel being run.
func (m *Machine) Spec() *KernelSpec { return m.spec }

// WGs exposes every work-group runtime on the machine, indexed by WGID
// (read-only use by policies/tests).
func (m *Machine) WGs() []*WG { return m.allWGs }

// OnAtomicApply subscribes f to every atomic's bank-service instant.
func (m *Machine) OnAtomicApply(f AtomicObserver) {
	m.observers = append(m.observers, f)
}

// Oversubscribed reports whether other WGs are waiting for execution
// resources — the paper's condition for context switching a waiting WG out
// ("only if there are other WGs ready to be resumed or started").
func (m *Machine) Oversubscribed() bool {
	return len(m.pending) > 0 || len(m.readyQueue) > 0
}

// SetTracer attaches an optional timeline recorder; nil disables tracing.
func (m *Machine) SetTracer(r *trace.Recorder) { m.tracer = r }

// Trace records a timeline event for w when tracing is enabled. Policies
// use it for their resume/timeout annotations.
func (m *Machine) Trace(w *WG, kind trace.Kind) {
	if m.tracer != nil && w != nil {
		m.tracer.Record(m.eng.Now(), int(w.id), kind)
	}
}

// Jitter returns a deterministic pseudo-random value in [0, n), varying per
// call; policies use it to de-synchronize timeouts without breaking replay.
func (m *Machine) Jitter(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	m.jitterState++
	x := m.jitterState + 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return (x ^ x>>31) % n
}

// progress records a forward-progress event for the deadlock watchdog.
func (m *Machine) progress() { m.lastProgress = m.eng.Now() }

// SetStalled marks whether w is parked without issuing instructions. A
// stalled WG frees its CU's instruction-issue bandwidth — the reason the
// paper's waiting policies speed up even co-resident WGs, while busy
// waiters steal issue slots from critical-section holders.
func (m *Machine) SetStalled(w *WG, stalled bool) {
	if stalled && !w.stalled {
		m.Trace(w, trace.StallBegin)
	}
	w.stalled = stalled
}

// issueFactor models SIMD issue-slot sharing on w's CU: compute throughput
// divides among the wavefronts of the resident WGs that are actively
// issuing (a 4-wavefront WG takes four slots' worth of issue bandwidth).
func (m *Machine) issueFactor(w *WG) event.Cycle {
	if !w.Resident() {
		return 1
	}
	executing := 0
	for _, r := range m.cus[w.cu].resident {
		if !r.stalled && r.state == StateResident {
			executing += r.spec.Wavefronts(m.cfg.SIMDWidth)
		}
	}
	f := (executing + m.cfg.SIMDsPerCU - 1) / m.cfg.SIMDsPerCU
	if f < 1 {
		f = 1
	}
	return event.Cycle(f)
}

// IssueAtomic performs an atomic for w (nil for agent-issued operations
// such as CP condition checks). The op's value effect and all monitor
// observations happen at bank-service time; resp, if non-nil, runs at
// response time with the op's returned value. atBank, if non-nil, runs at
// bank-service time after observers — this is where waiting atomics
// register their condition race-free.
func (m *Machine) IssueAtomic(w *WG, v Var, op AtomicOp, a, b int64, atBank func(old, new int64), resp func(ret int64)) {
	if w != nil && !w.Resident() {
		w.Park(func() { m.IssueAtomic(w, v, op, a, b, atBank, resp) })
		return
	}
	m.Trace(w, trace.Attempt)
	var applyAt, respAt event.Cycle
	if v.Scope == Local && w != nil && int(w.cu) == v.Group {
		applyAt, respAt = m.mem.LocalAtomicTiming(int(w.cu), v.Addr)
	} else {
		applyAt, respAt = m.mem.AtomicTiming(v.Addr)
	}
	var retVal int64
	m.eng.At(applyAt, func() {
		old := m.mem.Read(v.Addr)
		newVal, ret := op.Apply(old, a, b)
		retVal = ret
		if newVal != old {
			m.mem.Write(v.Addr, newVal)
		}
		if op.IsWrite() {
			m.observeUpdate(v.Addr)
		}
		for _, obs := range m.observers {
			obs(w, v, op, old, newVal)
		}
		if atBank != nil {
			atBank(old, newVal)
		}
	})
	if resp != nil {
		m.eng.At(respAt, func() { resp(retVal) })
	}
}

// IssueArm sends a wait-instruction arm for w to the SyncMon at the L2:
// atBank runs at bank-service time (where the monitor registers the
// condition — any update applied between the triggering atomic and this
// instant is missed, the paper's window of vulnerability), and resp at
// response time.
func (m *Machine) IssueArm(w *WG, v Var, atBank func(), resp func()) {
	if w != nil && !w.Resident() {
		w.Park(func() { m.IssueArm(w, v, atBank, resp) })
		return
	}
	m.Trace(w, trace.Arm)
	applyAt, respAt := m.mem.ArmTiming(v.Addr)
	if atBank != nil {
		m.eng.At(applyAt, atBank)
	}
	if resp != nil {
		m.eng.At(respAt, resp)
	}
}

// Done reports whether every WG of every kernel has completed.
func (m *Machine) Done() bool { return m.completed == len(m.allWGs) }

// Deliver runs f once w is resident: immediately if it already is,
// otherwise f is parked and the WG is marked ready so the dispatcher swaps
// it back in.
func (m *Machine) Deliver(w *WG, f func()) {
	if w.Resident() {
		f()
		return
	}
	w.Park(f)
	m.MarkReady(w)
}

// MarkReady promotes a switched-out WG to the ready queue. Safe to call in
// any state; only switched-out (or switching-out) WGs change state.
func (m *Machine) MarkReady(w *WG) {
	switch w.state {
	case StateSwitchedOut:
		w.state = StateReady
		m.queueSeq++
		w.queueSeq = m.queueSeq
		m.readyQueue = append(m.readyQueue, w)
		sortWGQueue(m.readyQueue)
		m.kick()
	case StateSwitchingOut:
		w.readyWhenSaved = true
	}
}

// SwitchOut context-switches a resident WG out: CP firmware latency plus
// the context-save memory traffic, then the resources free and the
// dispatcher runs. Policies call this for waiting WGs when the machine is
// oversubscribed.
func (m *Machine) SwitchOut(w *WG) {
	if w.state != StateResident {
		return
	}
	w.state = StateSwitchingOut
	m.Count.SwitchesOut++
	m.Trace(w, trace.SwitchOut)
	cu := m.cus[w.cu]
	m.eng.After(event.Cycle(m.cfg.CPLatency), func() {
		doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
		m.eng.At(doneAt, func() {
			cu.release(w, m.cfg.SIMDWidth)
			w.state = StateSwitchedOut
			if w.readyWhenSaved {
				w.readyWhenSaved = false
				m.MarkReady(w)
			}
			m.kick()
		})
	})
}

// PreemptCU models the oversubscribed experiment's mid-kernel resource
// loss: the CU is disabled, its L1 dropped, and every resident WG is
// force-preempted (context saved and queued ready, since these WGs were
// executing, not waiting).
func (m *Machine) PreemptCU(id CUID) {
	cu := m.cus[id]
	if !cu.enabled {
		return
	}
	cu.enabled = false
	m.mem.InvalidateCU(int(id))
	victims := make([]*WG, 0, len(cu.resident))
	for _, w := range cu.resident {
		victims = append(victims, w)
	}
	// Deterministic order.
	for i := 0; i < len(victims); i++ {
		for j := i + 1; j < len(victims); j++ {
			if victims[j].id < victims[i].id {
				victims[i], victims[j] = victims[j], victims[i]
			}
		}
	}
	for _, w := range victims {
		w.forcePreempted = true
		if w.state == StateResident {
			w.state = StateSwitchingOut
			w.readyWhenSaved = true // it was running; it wants back in
			m.Count.SwitchesOut++
			m.Trace(w, trace.SwitchOut)
			m.eng.After(event.Cycle(m.cfg.CPLatency), func() {
				doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
				m.eng.At(doneAt, func() {
					cu.release(w, m.cfg.SIMDWidth)
					w.state = StateSwitchedOut
					if w.readyWhenSaved {
						w.readyWhenSaved = false
						m.MarkReady(w)
					}
					m.kick()
				})
			})
		}
	}
	m.kick()
}

// RestoreCU re-enables a previously preempted CU — the paper's dynamic
// resource environment in the other direction: "resource availability
// varies across kernel scheduling time slices". Queued ready WGs flow
// back onto it immediately.
func (m *Machine) RestoreCU(id CUID) {
	cu := m.cus[id]
	if cu.enabled {
		return
	}
	cu.enabled = true
	m.kick()
}

// EnabledCUs reports how many CUs are still enabled.
func (m *Machine) EnabledCUs() int {
	n := 0
	for _, cu := range m.cus {
		if cu.enabled {
			n++
		}
	}
	return n
}

// kick schedules one dispatcher pass (coalescing repeated requests within
// an event).
func (m *Machine) kick() {
	if m.kickQueued {
		return
	}
	m.kickQueued = true
	m.eng.After(0, func() {
		m.kickQueued = false
		m.dispatchPass()
	})
}

// pickCU chooses a CU for w, preferring its home group for local-scope
// affinity.
func (m *Machine) pickCU(w *WG) *computeUnit {
	if home := m.cus[w.home]; home.canHost(w.spec, m.cfg.SIMDWidth) {
		return home
	}
	for _, cu := range m.cus {
		if cu.canHost(w.spec, m.cfg.SIMDWidth) {
			return cu
		}
	}
	return nil
}

// dispatchPass places ready WGs first (they are older and hold conditions
// already met), then never-started pending WGs, until resources run out.
func (m *Machine) dispatchPass() {
	for {
		// Pick across the two queues by (priority, then global arrival
		// sequence). A re-readied WG takes a fresh sequence number each
		// time it re-enters the ready queue, so a never-dispatched pending
		// WG eventually outranks the churners — without this, a barrier
		// kernel that oversubscribes the launch livelocks: the resident
		// waiters cycle through the ready queue forever while the WGs they
		// are waiting for starve in pending.
		var w *WG
		fromReady := false
		if len(m.readyQueue) > 0 {
			w = m.readyQueue[0]
			fromReady = true
		}
		if len(m.pending) > 0 {
			p := m.pending[0]
			if w == nil || p.kr.priority > w.kr.priority ||
				(p.kr.priority == w.kr.priority && p.queueSeq < w.queueSeq) {
				w = p
				fromReady = false
			}
		}
		if w == nil {
			return
		}
		cu := m.pickCU(w)
		if cu == nil {
			// The preferred head does not fit; try the other queue's head
			// once (shapes differ across kernels), then give up.
			var alt *WG
			if fromReady && len(m.pending) > 0 {
				alt = m.pending[0]
			} else if !fromReady && len(m.readyQueue) > 0 {
				alt = m.readyQueue[0]
			}
			if alt == nil {
				return
			}
			if cu = m.pickCU(alt); cu == nil {
				return
			}
			w, fromReady = alt, !fromReady
		}
		if fromReady {
			m.readyQueue = m.readyQueue[1:]
			m.switchIn(w, cu)
		} else {
			m.pending = m.pending[1:]
			m.start(w, cu)
		}
	}
}

// dispatchSlot serializes dispatcher actions.
func (m *Machine) dispatchSlot() event.Cycle {
	at := m.eng.Now()
	if m.dispFree > at {
		at = m.dispFree
	}
	m.dispFree = at + event.Cycle(m.cfg.DispatchLatency)
	return m.dispFree
}

// start launches a pending WG on cu for the first time.
func (m *Machine) start(w *WG, cu *computeUnit) {
	cu.host(w, m.cfg.SIMDWidth)
	w.state = StateResident
	at := m.dispatchSlot()
	m.eng.At(at, func() {
		w.started = true
		w.phaseStart = m.eng.Now()
		m.progress()
		m.Trace(w, trace.Start)
		dev := &wgDevice{w: w, numWGs: w.spec.NumWGs}
		m.wgWait.Add(1)
		go func() {
			defer m.wgWait.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSentinel); !ok {
						panic(r)
					}
				}
			}()
			w.spec.Program(dev)
			w.req <- request{kind: reqDone}
		}()
		m.receive(w)
	})
}

// switchIn restores a ready WG onto cu: CP latency plus context-restore
// traffic, then parked continuations run.
func (m *Machine) switchIn(w *WG, cu *computeUnit) {
	cu.host(w, m.cfg.SIMDWidth)
	w.state = StateSwitchingIn
	m.Count.SwitchesIn++
	at := m.dispatchSlot()
	m.eng.At(at, func() {
		m.eng.After(event.Cycle(m.cfg.CPLatency), func() {
			doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
			m.eng.At(doneAt, func() {
				if !cu.enabled {
					// The CU was preempted away mid-restore; requeue.
					cu.release(w, m.cfg.SIMDWidth)
					w.state = StateReady
					m.readyQueue = append(m.readyQueue, w)
					m.kick()
					return
				}
				w.state = StateResident
				m.progress()
				m.Trace(w, trace.SwitchIn)
				m.runParked(w)
			})
		})
	})
}

// runCompute advances w through cycles of computation, re-sampling the
// CU's issue-slot contention in chunks so that neighbours stalling or
// resuming mid-computation changes the rate — busy pollers slow a
// critical-section holder for exactly as long as they keep polling.
func (m *Machine) runCompute(w *WG, cycles event.Cycle) {
	chunk := cycles / 4
	// Chunks must also stay under the watchdog window (progress is marked
	// per chunk) and re-sample issue contention often enough.
	if limit := event.Cycle(m.cfg.ProgressWindow / 8); chunk > limit && limit > 0 {
		chunk = limit
	}
	var step func(remaining event.Cycle)
	step = func(remaining event.Cycle) {
		// Executing real work is forward progress: only synchronization
		// stalls may trip the deadlock watchdog. (Busy-wait polling is
		// atomics, not Compute, so spinning never counts.)
		m.progress()
		if remaining == 0 {
			m.step(w, response{})
			return
		}
		c := chunk
		if c == 0 || c > remaining {
			c = remaining
		}
		m.eng.After(c*m.issueFactor(w), func() { step(remaining - c) })
	}
	step(cycles)
}

// runParked fires the continuations queued while the WG was away.
func (m *Machine) runParked(w *WG) {
	parked := w.parked
	w.parked = nil
	for _, f := range parked {
		f()
	}
}

// step resumes w's program with a response; if the WG lost residency, the
// delivery parks until it returns.
func (m *Machine) step(w *WG, r response) {
	if !w.Resident() {
		w.Park(func() { m.step(w, r) })
		return
	}
	w.resp <- r
	m.receive(w)
}

// receive synchronously accepts w's next request. The WG goroutine is the
// only runnable activity at this point, so this is a deterministic
// rendezvous, not a race.
func (m *Machine) receive(w *WG) {
	m.handle(w, <-w.req)
}

// handle processes one device request.
func (m *Machine) handle(w *WG, r request) {
	now := m.eng.Now()
	switch r.kind {
	case reqCompute:
		m.runCompute(w, r.cycles)

	case reqLoad:
		respAt := m.mem.LoadTiming(int(w.cu), r.addr)
		m.eng.At(respAt, func() { m.step(w, response{val: m.mem.Read(r.addr)}) })

	case reqStore:
		respAt := m.mem.StoreTiming(int(w.cu), r.addr)
		m.mem.Write(r.addr, r.a)
		m.eng.At(respAt, func() { m.step(w, response{}) })

	case reqAtomic:
		m.IssueAtomic(w, r.v, r.op, r.a, r.b, nil, func(ret int64) {
			m.step(w, response{val: ret})
		})

	case reqSyncThreads:
		// The intra-WG barrier's cost grows with the wavefronts it gathers.
		wf := event.Cycle(w.spec.Wavefronts(m.cfg.SIMDWidth))
		m.eng.After(event.Cycle(m.cfg.SyncThreadsLatency)*wf, func() { m.step(w, response{}) })

	case reqAwait, reqAcquire:
		op := OpLoad
		a, b := int64(0), int64(0)
		cmp := r.cmp
		if r.kind == reqAcquire {
			op, a, b = r.op, r.a, r.b
			cmp = CmpEQ
		}
		w.setPhase(now, true)
		m.charBegin(w, r.v, r.want)
		began := now
		m.pol.Wait(w, r.v, op, a, b, r.want, cmp, r.hint, func(observed int64) {
			m.charMet(w, r.v, r.want)
			if d := uint64(m.eng.Now() - began); d > m.maxWait {
				m.maxWait = d
			}
			w.setPhase(m.eng.Now(), false)
			m.progress()
			m.Trace(w, trace.Acquired)
			m.step(w, response{val: observed})
		})

	case reqDone:
		m.Trace(w, trace.Finish)
		w.closePhase(now)
		w.finished = true
		w.state = StateDone
		m.cus[w.cu].release(w, m.cfg.SIMDWidth)
		m.completed++
		w.kr.completed++
		if w.kr.completed == len(w.kr.wgs) {
			w.kr.doneAt = now
		}
		m.lastDoneAt = now
		m.progress()
		m.kick()

	default:
		panic(fmt.Sprintf("gpu: unknown request kind %d", r.kind))
	}
}

// --- Table 2 characterization instrumentation ---

func (m *Machine) charFor(v Var) *varChar {
	addr := v.Addr.WordAligned() // observeUpdate keys by aligned address
	c := m.chars[addr]
	if c == nil {
		c = &varChar{
			scope:    v.Scope,
			wants:    make(map[int64]bool),
			waiters:  make(map[condKey]int),
			episodes: make(map[WGID]int),
		}
		m.chars[addr] = c
	}
	return c
}

func (m *Machine) charBegin(w *WG, v Var, want int64) {
	c := m.charFor(v)
	c.wants[want] = true
	k := condKey{v.Addr, want}
	c.waiters[k]++
	if c.waiters[k] > c.maxWaiters {
		c.maxWaiters = c.waiters[k]
	}
	c.episodes[w.id] = 0
}

func (m *Machine) charMet(w *WG, v Var, want int64) {
	c := m.charFor(v)
	k := condKey{v.Addr, want}
	if c.waiters[k] > 0 {
		c.waiters[k]--
	}
	if n, ok := c.episodes[w.id]; ok {
		c.updatesPerMet = append(c.updatesPerMet, n)
		delete(c.episodes, w.id)
	}
}

func (m *Machine) observeUpdate(a mem.Addr) {
	if c, ok := m.chars[a.WordAligned()]; ok {
		for id := range c.episodes {
			c.episodes[id]++
		}
	}
}

// Run launches the kernel and simulates to completion, deadlock, or the
// cycle cap. It may be called once.
func (m *Machine) Run() metrics.Result {
	if m.ran {
		panic("gpu: Machine.Run called twice")
	}
	m.ran = true
	m.kick()
	// Deadlock watchdog.
	var watch func()
	watch = func() {
		if m.Done() {
			return
		}
		if m.eng.Now()-m.lastProgress >= event.Cycle(m.cfg.ProgressWindow) {
			m.deadlocked = true
			m.eng.Stop()
			return
		}
		m.eng.After(event.Cycle(m.cfg.ProgressWindow/4), watch)
	}
	m.eng.After(event.Cycle(m.cfg.ProgressWindow/4), watch)

	m.eng.RunUntil(event.Cycle(m.cfg.MaxCycles))
	if !m.Done() {
		m.deadlocked = true
	}
	end := m.eng.Now()
	for _, w := range m.allWGs {
		w.closePhase(end)
	}
	m.abortLiveWGs()
	return m.result(end)
}

// abortLiveWGs unwinds the goroutines of unfinished WGs so the process
// doesn't leak them after a deadlocked run.
func (m *Machine) abortLiveWGs() {
	for _, w := range m.allWGs {
		if w.started && !w.finished {
			w.resp <- response{abort: true}
		}
	}
	m.wgWait.Wait()
}

func (m *Machine) result(end event.Cycle) metrics.Result {
	ms := m.mem.Stats()
	res := metrics.Result{
		Benchmark:  m.spec.Name,
		Policy:     m.pol.Name(),
		Deadlocked: m.deadlocked,

		Atomics:      ms.Atomics + ms.LocalAtomics,
		BankWait:     ms.BankWait,
		ContextBytes: ms.ContextBytes,

		SwitchesOut:   m.Count.SwitchesOut,
		SwitchesIn:    m.Count.SwitchesIn,
		Stalls:        m.Count.Stalls,
		Resumes:       m.Count.Resumes,
		WastedResumes: m.Count.WastedResumes,
		Timeouts:      m.Count.Timeouts,
		PredictAll:    m.Count.PredictAll,
		PredictOne:    m.Count.PredictOne,
		BloomResets:   m.Count.BloomResets,
		LogSpills:     m.Count.LogSpills,
		LogRejects:    m.Count.LogRejects,

		MaxConditions:   m.Count.MaxConditions,
		MaxWaitingWGs:   m.Count.MaxWaitingWGs,
		MaxMonitoredVar: m.Count.MaxMonitoredVars,
		MaxLogEntries:   m.Count.MaxLogEntries,

		ContextKB: float64(m.spec.ContextBytes(m.cfg.SIMDWidth)) / 1024,
		MaxWait:   m.maxWait,
	}
	res.Completed = m.kernels[0].completed
	if m.deadlocked {
		res.Cycles = uint64(end)
	} else {
		res.Cycles = uint64(m.kernels[0].doneAt)
	}
	for _, w := range m.wgs {
		res.Breakdown.Running += w.runningCycles
		res.Breakdown.Waiting += w.waitingCycles
	}
	// Table 2 characterization.
	res.SyncVars = len(m.chars)
	var conds, maxW int
	var updSum float64
	var updN int
	for _, c := range m.chars {
		conds += len(c.wants)
		if c.maxWaiters > maxW {
			maxW = c.maxWaiters
		}
		for _, u := range c.updatesPerMet {
			updSum += float64(u)
			updN++
		}
	}
	res.VarStats = metrics.SyncVarStats{
		Conditions: conds,
		MaxWaiters: maxW,
	}
	if updN > 0 {
		res.VarStats.UpdatesPerCond = updSum / float64(updN)
	}
	return res
}
