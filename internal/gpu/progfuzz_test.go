package gpu

import (
	"encoding/json"
	"testing"

	"awgsim/internal/mem"
	"awgsim/internal/prog"
)

// fuzzVarBase spaces the fuzz programs' shared variables a cache line
// apart, like the kernel library's allocator.
const fuzzVarBase = 0x1000

// fuzzProgram decodes data into a valid IR program: a bounded loop whose
// body mixes pure arithmetic, geometry reads, plain and atomic memory
// traffic on a small shared-variable table, and intra-WG barriers. The
// wait/acquire ops are deliberately excluded — a random lock protocol
// rarely terminates — so every generated program runs to completion and
// the two exec modes can be compared end-state to end-state.
func fuzzProgram(data []byte) *prog.Program {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	b := prog.NewBuilder()
	gvar := func() prog.Mem { return b.GVar(fuzzVarBase + 64*uint64(next()%8)) }
	lvar := func() prog.Mem { return b.LVar(64 * uint64(next()%4)) }
	regs := []prog.Src{b.Geom(prog.GeomID), b.Geom(prog.GeomIndexInGroup)}
	val := func() prog.Src {
		if n := next(); n%2 == 0 {
			return regs[int(n/2)%len(regs)]
		} else {
			return prog.Imm(int64(n%7) - 3)
		}
	}
	iters := 1 + int64(next()%3)
	i := b.Let(prog.Imm(0))
	top := b.Here()
	steps := len(data)
	if steps > 48 {
		steps = 48
	}
	for s := 0; s < steps; s++ {
		switch next() % 13 {
		case 0:
			b.Compute(prog.Imm(int64(1 + next()%16)))
		case 1:
			regs = append(regs, b.Load(gvar()))
		case 2:
			b.Store(gvar(), val())
		case 3:
			regs = append(regs, b.AtomicAdd(gvar(), val()))
		case 4:
			b.AtomicAddX(gvar(), prog.Imm(int64(next()%5)-2))
		case 5:
			regs = append(regs, b.AtomicExch(gvar(), val()))
		case 6:
			regs = append(regs, b.AtomicCAS(gvar(), prog.Imm(int64(next()%3)), val()))
		case 7:
			regs = append(regs, b.AtomicLoad(gvar()))
		case 8:
			b.AtomicStore(gvar(), val())
		case 9:
			regs = append(regs, b.Add(val(), val()))
		case 10:
			regs = append(regs, b.Mod(val(), val())) // divisor 0 yields 0 by spec
		case 11:
			b.SyncThreads()
		case 12:
			b.AtomicAddX(lvar(), prog.Imm(1))
		}
	}
	b.ArithTo(prog.OpAdd, i, i, prog.Imm(1))
	b.Br(prog.LT, i, prog.Imm(iters), top)
	return b.MustBuild()
}

// FuzzProgIR differentially tests the inline interpreter against the
// goroutine runtime: the same random program runs once as an IR frame and
// once as a closure through the ExecIRProgram oracle, and the two machines
// must agree on the full metrics.Result and on every shared variable's
// final value.
func FuzzProgIR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23})
	f.Add([]byte("atomic soup: add exch cas load store"))
	f.Add([]byte{0xff, 0x00, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProgram(data)
		run := func(mode ExecMode) (metricsJSON string, words [8]int64) {
			cfg := testConfig()
			cfg.Exec = mode
			spec := &KernelSpec{
				Name: "fuzz", NumWGs: 8, WIsPerWG: 64,
				IR:      p,
				Program: func(d Device) { ExecIRProgram(p, d) },
			}
			m := newTestMachine(t, cfg, spec, nil)
			res := m.Run()
			if res.Deadlocked {
				t.Fatalf("fuzz program deadlocked under %v: %+v", mode, res.Diagnosis)
			}
			j, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			for i := range words {
				words[i] = m.Mem().Read(mem.Addr(fuzzVarBase + 64*uint64(i)))
			}
			return string(j), words
		}
		irRes, irWords := run(ExecIR)
		gorRes, gorWords := run(ExecGoroutine)
		if irRes != gorRes {
			t.Errorf("results diverged:\n  ir:        %s\n  goroutine: %s", irRes, gorRes)
		}
		if irWords != gorWords {
			t.Errorf("final memory diverged:\n  ir:        %v\n  goroutine: %v", irWords, gorWords)
		}
	})
}
