package gpu

import (
	"testing"

	"awgsim/internal/event"
	"awgsim/internal/mem"
)

// spinPolicy is a minimal busy-wait policy for machine tests.
type spinPolicy struct{ m *Machine }

func (p *spinPolicy) Name() string            { return "spin" }
func (p *spinPolicy) Attach(m *Machine) error { p.m = m; return nil }

func (p *spinPolicy) Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, _ WaitHint, done func(int64)) {
	var attempt func()
	attempt = func() {
		p.m.IssueAtomic(w, v, op, a, b, nil, func(ret int64) {
			if cmp.Test(ret, want) {
				done(ret)
				return
			}
			p.m.Engine().After(16, attempt)
		})
	}
	attempt()
}

// yieldPolicy context-switches waiters out whenever the machine is
// oversubscribed, for dispatcher/preemption tests.
type yieldPolicy struct{ m *Machine }

func (p *yieldPolicy) Name() string            { return "yield" }
func (p *yieldPolicy) Attach(m *Machine) error { p.m = m; return nil }

func (p *yieldPolicy) Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, _ WaitHint, done func(int64)) {
	var attempt func()
	attempt = func() {
		p.m.IssueAtomic(w, v, op, a, b, nil, func(ret int64) {
			if cmp.Test(ret, want) {
				done(ret)
				return
			}
			if p.m.Oversubscribed() {
				p.m.SwitchOut(w)
			}
			p.m.Engine().After(2000, func() { p.m.Deliver(w, attempt) })
		})
	}
	attempt()
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumCUs = 2
	cfg.MaxWGsPerCU = 4
	cfg.ProgressWindow = 200_000
	cfg.MaxCycles = 10_000_000
	return cfg
}

func newTestMachine(t *testing.T, cfg Config, spec *KernelSpec, pol Policy) *Machine {
	t.Helper()
	if pol == nil {
		pol = &spinPolicy{}
	}
	m, err := NewMachine(cfg, mem.DefaultConfig(), spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineValidation(t *testing.T) {
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(Device) {}}
	if _, err := NewMachine(testConfig(), mem.DefaultConfig(), spec, nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := testConfig()
	bad.NumCUs = 0
	if _, err := NewMachine(bad, mem.DefaultConfig(), spec, &spinPolicy{}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewMachine(testConfig(), mem.DefaultConfig(), &KernelSpec{}, &spinPolicy{}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestTrivialKernelCompletes(t *testing.T) {
	ran := make([]bool, 8)
	spec := &KernelSpec{
		Name: "trivial", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			d.Compute(100)
			ran[d.ID()] = true
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("trivial kernel deadlocked")
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d WGs, want 8", res.Completed)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("WG %d never ran", i)
		}
	}
	if res.Cycles == 0 {
		t.Fatal("zero runtime")
	}
}

func TestRunTwicePanics(t *testing.T) {
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(d Device) {}}
	m := newTestMachine(t, testConfig(), spec, nil)
	m.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run()
}

func TestAtomicAddAccumulates(t *testing.T) {
	const counter = mem.Addr(0x1000)
	spec := &KernelSpec{
		Name: "adders", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			for i := 0; i < 10; i++ {
				d.AtomicAdd(GlobalVar(counter), 1)
			}
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if got := m.Mem().Read(counter); got != 80 {
		t.Fatalf("counter = %d, want 80", got)
	}
	if res.Atomics != 80 {
		t.Fatalf("atomics counted = %d, want 80", res.Atomics)
	}
}

func TestAtomicOpsReturnOldValue(t *testing.T) {
	const a = mem.Addr(0x2000)
	var exchOld, casOld, loadVal int64
	spec := &KernelSpec{
		Name: "ops", NumWGs: 1, WIsPerWG: 64,
		Program: func(d Device) {
			v := GlobalVar(a)
			d.AtomicStore(v, 5)
			exchOld = d.AtomicExch(v, 9)
			casOld = d.AtomicCAS(v, 9, 13)
			loadVal = d.AtomicLoad(v)
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	if res := m.Run(); res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if exchOld != 5 || casOld != 9 || loadVal != 13 {
		t.Fatalf("exch=%d cas=%d load=%d, want 5 9 13", exchOld, casOld, loadVal)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	const a = mem.Addr(0x3000)
	var got int64
	spec := &KernelSpec{
		Name: "ls", NumWGs: 1, WIsPerWG: 64,
		Program: func(d Device) {
			d.Store(a, 42)
			got = d.Load(a)
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	if res := m.Run(); res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if got != 42 {
		t.Fatalf("loaded %d, want 42", got)
	}
}

func TestProducerConsumerViaAwait(t *testing.T) {
	const flag = mem.Addr(0x4000)
	var observed int64
	spec := &KernelSpec{
		Name: "pc", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			v := GlobalVar(flag)
			if d.ID() == 0 {
				d.Compute(5000)
				d.AtomicStore(v, 7)
			} else {
				observed = d.AwaitEq(v, 7)
			}
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if observed != 7 {
		t.Fatalf("consumer observed %d, want 7", observed)
	}
}

func TestAwaitGE(t *testing.T) {
	const c = mem.Addr(0x5000)
	spec := &KernelSpec{
		Name: "ge", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) {
			v := GlobalVar(c)
			d.AtomicAdd(v, 1)
			d.AwaitGE(v, 4) // everyone waits for all arrivals
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	if res := m.Run(); res.Deadlocked {
		t.Fatal("GE barrier deadlocked")
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Machine {
		const lock = mem.Addr(0x6000)
		spec := &KernelSpec{
			Name: "replay", NumWGs: 8, WIsPerWG: 64,
			Program: func(d Device) {
				v := GlobalVar(lock)
				for i := 0; i < 5; i++ {
					d.AcquireExch(v, 1, 0)
					d.Compute(50)
					d.AtomicExch(v, 0)
				}
			},
		}
		return newTestMachine(t, testConfig(), spec, nil)
	}
	a := build().Run()
	b := build().Run()
	if a.Cycles != b.Cycles || a.Atomics != b.Atomics {
		t.Fatalf("replay diverged: %d/%d cycles, %d/%d atomics",
			a.Cycles, b.Cycles, a.Atomics, b.Atomics)
	}
}

func TestDeadlockDetection(t *testing.T) {
	const never = mem.Addr(0x7000)
	cfg := testConfig()
	cfg.ProgressWindow = 50_000
	spec := &KernelSpec{
		Name: "stuck", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			d.AwaitEq(GlobalVar(never), 1) // no one ever sets it
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	res := m.Run()
	if !res.Deadlocked {
		t.Fatal("watchdog missed an obvious deadlock")
	}
	if res.Completed != 0 {
		t.Fatalf("%d WGs completed in a deadlocked run", res.Completed)
	}
}

func TestOccupancyLimitedDispatch(t *testing.T) {
	// 16 WGs on a machine with 8 slots: the second half must start only
	// after the first half finishes (no policy-driven context switching
	// here).
	cfg := testConfig() // 2 CUs x 4 slots
	order := make(chan WGID, 16)
	spec := &KernelSpec{
		Name: "waves", NumWGs: 16, WIsPerWG: 64,
		Program: func(d Device) {
			d.Compute(1000)
			order <- d.ID()
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	res := m.Run()
	if res.Deadlocked || res.Completed != 16 {
		t.Fatalf("run failed: deadlocked=%v completed=%d", res.Deadlocked, res.Completed)
	}
	close(order)
	var ids []WGID
	for id := range order {
		ids = append(ids, id)
	}
	// The first 8 finishers must be exactly WGs 0..7 (dispatch order).
	seen := map[WGID]bool{}
	for _, id := range ids[:8] {
		seen[id] = true
	}
	for i := WGID(0); i < 8; i++ {
		if !seen[i] {
			t.Fatalf("WG %d not in first dispatch wave: %v", i, ids[:8])
		}
	}
}

func TestHomeGroupsAndPlacement(t *testing.T) {
	cfg := testConfig() // 2 CUs x 4
	spec := &KernelSpec{
		Name: "groups", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			if d.GroupSize() != 4 {
				t.Errorf("WG %d group size %d, want 4", d.ID(), d.GroupSize())
			}
			want := int(d.ID()) / 4
			if d.Group() != want {
				t.Errorf("WG %d in group %d, want %d", d.ID(), d.Group(), want)
			}
			// Initial placement puts each WG on its home CU.
			if int(d.ID())/4 != want {
				t.Errorf("placement mismatch")
			}
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	if res := m.Run(); res.Deadlocked {
		t.Fatal("deadlocked")
	}
	for _, w := range m.WGs() {
		if w.Home() != int(w.ID())/4 {
			t.Errorf("WG %d home %d", w.ID(), w.Home())
		}
	}
}

func TestPreemptCUForcesWGsOut(t *testing.T) {
	// Long-running WGs on 2 CUs; preempt CU 1 mid-run. With the yield
	// policy, everything still completes on CU 0.
	const flag = mem.Addr(0x8000)
	cfg := testConfig()
	spec := &KernelSpec{
		Name: "preempt", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(60_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, cfg, spec, &yieldPolicy{})
	m.Engine().At(10_000, func() { m.PreemptCU(1) })
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked after preemption under a yielding policy")
	}
	if m.EnabledCUs() != 1 {
		t.Fatalf("EnabledCUs = %d, want 1", m.EnabledCUs())
	}
	if res.SwitchesOut == 0 {
		t.Fatal("preemption recorded no context switches")
	}
	// Preempting again is a no-op.
	prev := m.Count.SwitchesOut
	m.PreemptCU(1)
	if m.Count.SwitchesOut != prev {
		t.Fatal("double preemption switched WGs again")
	}
}

func TestStalledWGsFreeIssueSlots(t *testing.T) {
	// Two WGs on one CU with one SIMD: when the neighbour busy-spins,
	// compute takes ~2x as long as when it is stalled.
	run := func(stallNeighbour bool) uint64 {
		const flag = mem.Addr(0x9000)
		cfg := testConfig()
		cfg.NumCUs = 1
		cfg.SIMDsPerCU = 1
		cfg.MaxWGsPerCU = 2
		var pol Policy = &spinPolicy{}
		if stallNeighbour {
			pol = &stallingPolicy{}
		}
		spec := &KernelSpec{
			Name: "interfere", NumWGs: 2, WIsPerWG: 64,
			Program: func(d Device) {
				if d.ID() == 0 {
					d.Compute(100_000)
					d.AtomicStore(GlobalVar(flag), 1)
					return
				}
				d.AwaitEq(GlobalVar(flag), 1)
			},
		}
		m := newTestMachine(t, cfg, spec, pol)
		res := m.Run()
		if res.Deadlocked {
			t.Fatal("deadlocked")
		}
		return res.Cycles
	}
	spinning := run(false)
	stalled := run(true)
	if spinning < stalled*3/2 {
		t.Fatalf("busy neighbour (%d cycles) not meaningfully slower than stalled neighbour (%d)",
			spinning, stalled)
	}
}

// stallingPolicy stalls waiters (releasing issue slots) and re-polls on a
// long timer.
type stallingPolicy struct{ m *Machine }

func (p *stallingPolicy) Name() string            { return "stalling" }
func (p *stallingPolicy) Attach(m *Machine) error { p.m = m; return nil }

func (p *stallingPolicy) Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, _ WaitHint, done func(int64)) {
	var attempt func()
	attempt = func() {
		p.m.IssueAtomic(w, v, op, a, b, nil, func(ret int64) {
			if cmp.Test(ret, want) {
				p.m.SetStalled(w, false)
				done(ret)
				return
			}
			p.m.SetStalled(w, true)
			p.m.Engine().After(5_000, attempt)
		})
	}
	attempt()
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(Device) {}}
	m1 := newTestMachine(t, testConfig(), spec, nil)
	m2 := newTestMachine(t, testConfig(), spec, nil)
	for i := 0; i < 1000; i++ {
		a, b := m1.Jitter(100), m2.Jitter(100)
		if a != b {
			t.Fatal("jitter not deterministic across machines")
		}
		if a >= 100 {
			t.Fatalf("jitter %d out of range", a)
		}
	}
	if m1.Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	const flag = mem.Addr(0xa000)
	spec := &KernelSpec{
		Name: "breakdown", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(20_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.Breakdown.Waiting == 0 {
		t.Fatal("consumer recorded no waiting time")
	}
	if res.Breakdown.Running == 0 {
		t.Fatal("no running time recorded")
	}
	// The consumer waited roughly as long as the producer computed.
	if res.Breakdown.Waiting < 15_000 {
		t.Fatalf("waiting = %d, expected ~20k", res.Breakdown.Waiting)
	}
}

func TestCharacterizationStats(t *testing.T) {
	const lock = mem.Addr(0xb000)
	spec := &KernelSpec{
		Name: "charz", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) {
			v := GlobalVar(lock)
			for i := 0; i < 3; i++ {
				d.AcquireExch(v, 1, 0)
				d.Compute(100)
				d.AtomicExch(v, 0)
			}
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.SyncVars != 1 {
		t.Fatalf("SyncVars = %d, want 1", res.SyncVars)
	}
	if res.VarStats.MaxWaiters < 1 || res.VarStats.MaxWaiters > 4 {
		t.Fatalf("MaxWaiters = %d, want in [1,4]", res.VarStats.MaxWaiters)
	}
}

func TestSyncThreadsCost(t *testing.T) {
	cfg := testConfig()
	spec := &KernelSpec{
		Name: "sync", NumWGs: 1, WIsPerWG: 64,
		Program: func(d Device) {
			for i := 0; i < 10; i++ {
				d.SyncThreads()
			}
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	res := m.Run()
	minCost := uint64(10 * cfg.SyncThreadsLatency)
	if res.Cycles < minCost {
		t.Fatalf("10 syncthreads took %d cycles, want >= %d", res.Cycles, minCost)
	}
}

func TestOversubscribedFlag(t *testing.T) {
	cfg := testConfig() // capacity 8
	spec := &KernelSpec{
		Name: "k", NumWGs: 12, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(1000) },
	}
	m := newTestMachine(t, cfg, spec, nil)
	if !m.Oversubscribed() {
		t.Fatal("12 WGs on 8 slots not reported oversubscribed before dispatch")
	}
	res := m.Run()
	if res.Deadlocked || res.Completed != 12 {
		t.Fatalf("oversubscribed-by-launch run failed: %+v", res)
	}
	if m.Oversubscribed() {
		t.Fatal("still oversubscribed after completion")
	}
}

func TestAbortCleansUpGoroutines(t *testing.T) {
	// A deadlocked run must unwind all WG goroutines; run many times to
	// shake out leaks (the race detector would flag misuse).
	cfg := testConfig()
	cfg.ProgressWindow = 20_000
	for i := 0; i < 5; i++ {
		spec := &KernelSpec{
			Name: "stuck", NumWGs: 8, WIsPerWG: 64,
			Program: func(d Device) {
				d.AwaitEq(GlobalVar(0xdead0), 1)
			},
		}
		m := newTestMachine(t, cfg, spec, nil)
		if res := m.Run(); !res.Deadlocked {
			t.Fatal("expected deadlock")
		}
	}
}

func TestEventEngineExposed(t *testing.T) {
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(Device) {}}
	m := newTestMachine(t, testConfig(), spec, nil)
	fired := false
	m.Engine().At(event.Cycle(1), func() { fired = true })
	m.Run()
	if !fired {
		t.Fatal("harness event did not fire")
	}
}
