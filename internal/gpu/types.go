// Package gpu models the GPU execution hierarchy of the paper's baseline
// (Table 1): compute units holding work-group (WG) contexts, a dispatcher
// assigning globally unique WG IDs, and a coroutine-based WG runtime that
// executes kernel programs written as ordinary Go functions against a
// Device interface.
//
// The package deliberately knows nothing about *how* synchronization waits
// are implemented: kernels express intent (wait until this variable equals
// this value; acquire this test-and-set lock) and a pluggable Policy lowers
// each intent to busy-waiting, backoff, timeouts, monitor arming, or the
// paper's waiting atomics. That split mirrors the paper's observation that
// the same primitive library runs under every architecture in its design
// space.
package gpu

import (
	"awgsim/internal/mem"
)

// WGID is the globally unique work-group ID the dispatcher assigns; AWG
// uses it throughout the cooperative scheduling process (Section V.B).
type WGID int

// CUID identifies a compute unit. NoCU marks a WG without a resident CU.
type CUID int

// NoCU is the CU assignment of a non-resident WG.
const NoCU CUID = -1

// Scope is a synchronization variable's visibility scope, matching
// HeteroSync's globally (G) and locally (L) scoped variants.
type Scope int

const (
	// Global variables are shared by all WGs and their atomics execute at
	// the L2.
	Global Scope = iota
	// Local variables are shared only by the WGs of one scheduling group
	// (the WGs initially co-resident on a CU); their atomics execute at the
	// CU's local synchronization unit while the WG stays home.
	Local
)

func (s Scope) String() string {
	if s == Local {
		return "local"
	}
	return "global"
}

// Var names a synchronization variable: a word address plus its scope. For
// Local scope, Group is the owning scheduling group (home CU index).
type Var struct {
	Addr  mem.Addr
	Scope Scope
	Group int
}

// GlobalVar builds a globally scoped variable.
func GlobalVar(a mem.Addr) Var { return Var{Addr: a, Scope: Global} }

// LocalVar builds a variable locally scoped to a group.
func LocalVar(a mem.Addr, group int) Var { return Var{Addr: a, Scope: Local, Group: group} }

// Cmp is the comparison a wait condition applies between the observed
// value and the expected operand. Equality is the paper's waiting-atomic
// form; GE supports the monotonic-counter spins of the barrier and ticket
// primitives (a sparse poller must not miss a value that sweeps past its
// target).
type Cmp int

const (
	CmpEQ Cmp = iota
	CmpGE
)

// Test applies the comparison.
func (c Cmp) Test(got, want int64) bool {
	if c == CmpGE {
		return got >= want
	}
	return got == want
}

func (c Cmp) String() string {
	if c == CmpGE {
		return ">="
	}
	return "=="
}

// AtomicOp enumerates the atomic operations the device supports. All of
// them have waiting forms under the MonNR/AWG architectures: the paper
// extends atomics with an expected-value operand (Section IV.D).
type AtomicOp int

const (
	OpAdd AtomicOp = iota
	OpExch
	OpCAS
	OpLoad
	OpStore
)

func (op AtomicOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpExch:
		return "exch"
	case OpCAS:
		return "cas"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	default:
		return "?"
	}
}

// Apply computes the atomic's new value and returned (old) value.
// operand2 is only used by CAS (the swap value; operand is the compare
// value).
func (op AtomicOp) Apply(old, operand, operand2 int64) (newVal, ret int64) {
	switch op {
	case OpAdd:
		return old + operand, old
	case OpExch:
		return operand, old
	case OpCAS:
		if old == operand {
			return operand2, old
		}
		return old, old
	case OpLoad:
		return old, old
	case OpStore:
		return operand, old
	default:
		panic("gpu: unknown atomic op")
	}
}

// IsWrite reports whether the op can modify memory.
func (op AtomicOp) IsWrite() bool { return op != OpLoad }

// WGState is a work-group's scheduling state, the state machine the paper's
// Command Processor firmware tracks: "stalled, context switching out,
// waiting, ready, or context switching in" (Section IV.A), plus the
// bookkeeping states around kernel start and finish.
type WGState int

const (
	// StatePending: not yet dispatched for the first time.
	StatePending WGState = iota
	// StateResident: occupying CU resources; executing or stalled.
	StateResident
	// StateSwitchingOut: context save in flight.
	StateSwitchingOut
	// StateSwitchedOut: context in memory, waiting on its condition.
	StateSwitchedOut
	// StateReady: context in memory, condition met, queued for resources.
	StateReady
	// StateSwitchingIn: context restore in flight.
	StateSwitchingIn
	// StateDone: ran to completion.
	StateDone
)

func (s WGState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateResident:
		return "resident"
	case StateSwitchingOut:
		return "switching-out"
	case StateSwitchedOut:
		return "switched-out"
	case StateReady:
		return "ready"
	case StateSwitchingIn:
		return "switching-in"
	case StateDone:
		return "done"
	default:
		return "?"
	}
}
