package gpu

import (
	"fmt"
	"sync/atomic"

	"awgsim/internal/event"
	"awgsim/internal/mem"
	"awgsim/internal/prog"
)

// Inline program-IR execution: a WG whose kernel carries a prog.Program
// (KernelSpec.IR) runs without a goroutine. Its position is a plain frame —
// program counter plus register file — that the machine advances directly in
// the response path: pure IR ops (register arithmetic, branches, geometry
// reads) execute immediately at zero simulated cost, exactly like the Go
// code between Device calls on the closure path, and each device op issues
// the same request the closure path's wgDevice would build, through the same
// Machine.handle. The two paths therefore produce identical event streams;
// CI pins this with the dual-mode golden run and the differential fuzzer.
//
// The frame is what makes snapshots and migration cheap: where a closure WG
// must be rebuilt by re-running its program against a logged response stream
// (Machine.respawnWG), an IR WG's exact position is copied in O(registers).

// maxPureOps bounds the pure ops an interpreter slice may execute between
// device operations — the backstop against a program whose register loop
// never issues one (the IR analogue of a zero-delay livelock).
const maxPureOps = 1 << 22

// irFrame is one WG's resumable interpreter state.
type irFrame struct {
	prog *prog.Program
	pc   int
	// dst is the register awaiting the in-flight device response (< 0
	// discards it).
	dst  int16
	regs []int64
	// geom caches the per-WG launch-geometry constants, indexed by
	// prog.Geom. Derived from immutable WG identity, so snapshots skip it.
	geom [6]int64
}

func newIRFrame(p *prog.Program, id, numWGs, wisPerWG, group, groupSize, indexInGroup int) *irFrame {
	f := &irFrame{prog: p, dst: -1, regs: make([]int64, p.NumRegs)}
	f.geom[prog.GeomID] = int64(id)
	f.geom[prog.GeomNumWGs] = int64(numWGs)
	f.geom[prog.GeomWIsPerWG] = int64(wisPerWG)
	f.geom[prog.GeomGroup] = int64(group)
	f.geom[prog.GeomGroupSize] = int64(groupSize)
	f.geom[prog.GeomIndexInGroup] = int64(indexInGroup)
	return f
}

// val evaluates a source operand.
func (f *irFrame) val(s prog.Src) int64 {
	if s.Reg >= 0 {
		return f.regs[s.Reg]
	}
	return s.Imm
}

// addr resolves a pool-index operand to its word address.
func (f *irFrame) addr(s prog.Src) mem.Addr {
	i := f.val(s)
	if i < 0 || i >= int64(len(f.prog.Pool)) {
		panic(fmt.Sprintf("gpu: IR op at pc %d addresses pool[%d], pool has %d entries", f.pc-1, i, len(f.prog.Pool)))
	}
	return mem.Addr(f.prog.Pool[i])
}

// varOf builds the synchronization variable a memory op addresses; local
// scope binds to the executing WG's scheduling group.
func (f *irFrame) varOf(op *prog.Op) Var {
	if op.Scope == prog.Local {
		return LocalVar(f.addr(op.A), int(f.geom[prog.GeomGroup]))
	}
	return GlobalVar(f.addr(op.A))
}

// runPure executes pure ops (and skips zero-cycle computes, which the
// closure path's Device.Compute never issues either) until the next device
// op or the program's end. It returns the device op to issue — with pc
// already advanced past it, so resumption continues at the next op — or nil
// at program end, plus the ops consumed.
func (f *irFrame) runPure() (*prog.Op, uint64) {
	code := f.prog.Code
	n := uint64(0)
	for f.pc < len(code) {
		op := &code[f.pc]
		f.pc++
		n++
		if n > maxPureOps {
			panic(fmt.Sprintf("gpu: IR program executed %d pure ops without a device operation (pc %d)", n, f.pc-1))
		}
		switch op.Kind {
		case prog.OpMov:
			f.regs[op.Dst] = f.val(op.A)
		case prog.OpAdd:
			f.regs[op.Dst] = f.val(op.A) + f.val(op.B)
		case prog.OpSub:
			f.regs[op.Dst] = f.val(op.A) - f.val(op.B)
		case prog.OpMul:
			f.regs[op.Dst] = f.val(op.A) * f.val(op.B)
		case prog.OpDiv:
			if d := f.val(op.B); d != 0 {
				f.regs[op.Dst] = f.val(op.A) / d
			} else {
				f.regs[op.Dst] = 0
			}
		case prog.OpMod:
			if d := f.val(op.B); d != 0 {
				f.regs[op.Dst] = f.val(op.A) % d
			} else {
				f.regs[op.Dst] = 0
			}
		case prog.OpGeom:
			f.regs[op.Dst] = f.geom[op.Geom]
		case prog.OpJmp:
			f.pc = int(op.Target)
		case prog.OpBr:
			if op.Cmp.Test(f.val(op.A), f.val(op.B)) {
				f.pc = int(op.Target)
			}
		case prog.OpCompute:
			if f.val(op.A) > 0 {
				return op, n
			}
		default:
			return op, n
		}
	}
	return nil, n
}

// useIR reports whether w executes through the inline interpreter.
func (m *Machine) useIR(w *WG) bool {
	return w.spec.IR != nil && m.cfg.Exec != ExecGoroutine
}

// startIRFrame builds w's interpreter frame at program start.
func (m *Machine) startIRFrame(w *WG) {
	w.frame = newIRFrame(w.spec.IR, int(w.id), w.spec.NumWGs, w.spec.WIsPerWG, w.home, w.grpSz, w.inGrp)
}

// advanceIR drives w's frame forward: pure ops execute inline at zero
// simulated cost, the next device op (or program end) is handed to the
// machine as the request the closure path's wgDevice would have sent. Runs
// inside the engine event that delivered the previous response — the inline
// replacement for the channel rendezvous of Machine.step/receive.
func (m *Machine) advanceIR(w *WG) {
	f := w.frame
	op, n := f.runPure()
	//lint:allow replaypure interpreter work meter, not simulation state; IR frames restore by copy, never by replay
	m.irOps += n
	if op == nil {
		m.handle(w, request{kind: reqDone})
		return
	}
	f.dst = op.Dst
	switch op.Kind {
	case prog.OpCompute:
		m.handle(w, request{kind: reqCompute, cycles: event.Cycle(f.val(op.A))})
	case prog.OpLoad:
		m.handle(w, request{kind: reqLoad, addr: f.addr(op.A)})
	case prog.OpStore:
		m.handle(w, request{kind: reqStore, addr: f.addr(op.A), a: f.val(op.B)})
	case prog.OpAtomicAdd:
		m.handle(w, request{kind: reqAtomic, v: f.varOf(op), op: OpAdd, a: f.val(op.B)})
	case prog.OpAtomicExch:
		m.handle(w, request{kind: reqAtomic, v: f.varOf(op), op: OpExch, a: f.val(op.B)})
	case prog.OpAtomicCAS:
		m.handle(w, request{kind: reqAtomic, v: f.varOf(op), op: OpCAS, a: f.val(op.B), b: f.val(op.C)})
	case prog.OpAtomicLoad:
		m.handle(w, request{kind: reqAtomic, v: f.varOf(op), op: OpLoad})
	case prog.OpAtomicStore:
		m.handle(w, request{kind: reqAtomic, v: f.varOf(op), op: OpStore, a: f.val(op.B)})
	case prog.OpSyncThreads:
		m.handle(w, request{kind: reqSyncThreads})
	case prog.OpAwaitEq:
		m.handle(w, request{kind: reqAwait, v: f.varOf(op), want: f.val(op.B), hint: WaitHint{Backoff: op.Hint}})
	case prog.OpAwaitGE:
		m.handle(w, request{kind: reqAwait, v: f.varOf(op), want: f.val(op.B), cmp: CmpGE})
	case prog.OpAcquireExch:
		m.handle(w, request{kind: reqAcquire, v: f.varOf(op), op: OpExch, a: f.val(op.B), want: f.val(op.C), hint: WaitHint{Backoff: op.Hint}})
	case prog.OpAcquireCAS:
		m.handle(w, request{kind: reqAcquire, v: f.varOf(op), op: OpCAS, a: f.val(op.B), b: f.val(op.C), want: f.val(op.B)})
	default:
		panic(fmt.Sprintf("gpu: IR device op %s not dispatched", op.Kind))
	}
}

// ExecIRProgram interprets p against d, one Device call per device op —
// the compatibility path that runs an IR-only kernel on the goroutine
// runtime, and the oracle the differential fuzzer diffs the inline
// interpreter against. Pure-op semantics are shared with the inline path
// (irFrame.runPure), so the two executions issue identical device-operation
// sequences.
func ExecIRProgram(p *prog.Program, d Device) {
	f := newIRFrame(p, int(d.ID()), d.NumWGs(), d.WIsPerWG(), d.Group(), d.GroupSize(), d.IndexInGroup())
	hd, hinted := d.(HintedDevice)
	for {
		op, _ := f.runPure()
		if op == nil {
			return
		}
		var ret int64
		switch op.Kind {
		case prog.OpCompute:
			d.Compute(event.Cycle(f.val(op.A)))
		case prog.OpLoad:
			ret = d.Load(f.addr(op.A))
		case prog.OpStore:
			d.Store(f.addr(op.A), f.val(op.B))
		case prog.OpAtomicAdd:
			ret = d.AtomicAdd(f.varOf(op), f.val(op.B))
		case prog.OpAtomicExch:
			ret = d.AtomicExch(f.varOf(op), f.val(op.B))
		case prog.OpAtomicCAS:
			ret = d.AtomicCAS(f.varOf(op), f.val(op.B), f.val(op.C))
		case prog.OpAtomicLoad:
			ret = d.AtomicLoad(f.varOf(op))
		case prog.OpAtomicStore:
			d.AtomicStore(f.varOf(op), f.val(op.B))
		case prog.OpSyncThreads:
			d.SyncThreads()
		case prog.OpAwaitEq:
			if op.Hint && hinted {
				ret = hd.AwaitEqHint(f.varOf(op), f.val(op.B), WaitHint{Backoff: true})
			} else {
				ret = d.AwaitEq(f.varOf(op), f.val(op.B))
			}
		case prog.OpAwaitGE:
			ret = d.AwaitGE(f.varOf(op), f.val(op.B))
		case prog.OpAcquireExch:
			if op.Hint && hinted {
				hd.AcquireExchHint(f.varOf(op), f.val(op.B), f.val(op.C), WaitHint{Backoff: true})
			} else {
				d.AcquireExch(f.varOf(op), f.val(op.B), f.val(op.C))
			}
		case prog.OpAcquireCAS:
			d.AcquireCAS(f.varOf(op), f.val(op.B), f.val(op.C))
		default:
			panic(fmt.Sprintf("gpu: IR device op %s not dispatched", op.Kind))
		}
		if op.Dst >= 0 {
			f.regs[op.Dst] = ret
		}
	}
}

// Process-wide execution telemetry: how much work ran through the inline
// interpreter and how many program goroutines the closure fallback spawned.
// Pure telemetry for the bench trajectory — never part of metrics.Result,
// so results stay bit-identical across exec modes — and, like sim.Totals,
// never rewound by snapshot restores.
var (
	irOpsInterpreted atomic.Uint64
	goroutineSpawns  atomic.Uint64
)

// ExecStats reports the cumulative process-wide execution-path counters:
// IR ops interpreted inline and WG program goroutines spawned (initial
// starts plus replay respawns).
func ExecStats() (opsInterpreted, goroutinesSpawned uint64) {
	return irOpsInterpreted.Load(), goroutineSpawns.Load()
}
