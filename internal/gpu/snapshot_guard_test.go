package gpu

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversMachine pins the field lists of the machine's stateful
// structs. If one fails, a field was added (or renamed): decide whether it
// is replayable state, teach Snapshot()/Restore() about it — save it or
// document it as host-side — and update the list here.
func TestSnapshotCoversMachine(t *testing.T) {
	// Covered: eng, mem, Count, completed, maxWait, lastDoneAt,
	// lastProgress, deadlocked, diag, jitterState, kernels, sched (+ its
	// CUs), wgs, atomics, and the attached hook states. Excluded: cfg/spec/
	// pol/ctx (immutable or stateless wiring), allWGs (identity list; the
	// WGs themselves are saved), tracer (host-side observer), ran (Run
	// lifecycle guard), diagSinks/snapHooks (registration lists), wgWait
	// (goroutine bookkeeping), respLogging/replaying/snapRing (the snapshot
	// machinery itself).
	machine := []string{
		"cfg", "eng", "mem", "spec", "pol", "sched", "atomics", "ctx",
		"wgs", "kernels", "allWGs", "Count", "tracer", "completed",
		"maxWait", "lastDoneAt", "lastProgress", "deadlocked", "ran",
		"diag", "diagSinks", "wgWait", "jitterState", "snapHooks",
		"respLogging", "replaying", "snapRing",
	}
	// Covered: every mutable field (state through live, plus respCount).
	// Excluded: id/spec/kr/home/inGrp/grpSz (immutable identity), req/resp
	// (channels; goroutine position is reconstructed from respCount and
	// respLog), respLog (managed by Restore's truncate-and-replay, not
	// copied into each snapshot).
	wg := []string{
		"id", "spec", "kr", "home", "inGrp", "grpSz", "state", "cu",
		"req", "resp", "parked", "queueSeq", "readyWhenSaved", "PolicyData",
		"waiting", "waitVar", "waitWant", "waitCmp", "waitBegan", "stalled",
		"phaseStart", "runningCycles", "waitingCycles", "started",
		"finished", "forcePreempted", "respLog", "respCount", "live",
	}
	// Covered: pending, readyQueue, queueSeq, dispFree, kickQueued, and per
	// CU enabled/wgSlots/wfSlots/ldsFree (resident maps are rebuilt from
	// each WG's cu field). Excluded: m (wiring), kickFn (hoisted closure).
	sched := []string{
		"m", "cus", "pending", "readyQueue", "queueSeq", "dispFree",
		"kickQueued", "kickFn",
	}
	cu := []string{"id", "enabled", "wgSlots", "wfSlots", "ldsFree", "resident"}
	// Covered: charIdx, charSlab (deep-cloned), charAddrs. Excluded: m
	// (wiring), observers (registration list, fixed after construction).
	atomics := []string{"m", "observers", "charIdx", "charSlab", "charAddrs"}
	// Covered in full by kernelSnap (spec/priority/wgs are immutable
	// identity; completed/launched/doneAt are the mutable trio).
	kernel := []string{"spec", "priority", "wgs", "completed", "launched", "doneAt"}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"gpu.Machine", fieldNames(Machine{}), machine},
		{"gpu.WG", fieldNames(WG{}), wg},
		{"gpu.scheduler", fieldNames(scheduler{}), sched},
		{"gpu.computeUnit", fieldNames(computeUnit{}), cu},
		{"gpu.atomicUnit", fieldNames(atomicUnit{}), atomics},
		{"gpu.kernelRun", fieldNames(kernelRun{}), kernel},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating Snapshot():\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
