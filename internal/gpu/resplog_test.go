package gpu

import (
	"strings"
	"testing"

	"awgsim/internal/mem"
	"awgsim/internal/prog"
)

// chattyKernel issues ops device operations, each drawing a response, so a
// WG's replay log grows by ops entries under response logging.
func chattyKernel(ops int) *KernelSpec {
	return &KernelSpec{
		Name: "chatty", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			for i := 0; i < ops; i++ {
				d.Load(mem.Addr(uint64(8 * i)))
			}
		},
	}
}

// chattyIR is chattyKernel's register-machine form: a bounded load loop.
func chattyIR(ops int) *KernelSpec {
	b := prog.NewBuilder()
	addrs := make([]uint64, ops)
	for i := range addrs {
		addrs[i] = uint64(8 * i)
	}
	base := b.AddrRange(addrs)
	i := b.Let(prog.Imm(0))
	top := b.Here()
	idx := b.Add(prog.Imm(base), i)
	b.Load(prog.At(idx, prog.Global))
	b.ArithTo(prog.OpAdd, i, i, prog.Imm(1))
	b.Br(prog.LT, i, prog.Imm(int64(ops)), top)
	return &KernelSpec{Name: "chatty-ir", NumWGs: 2, WIsPerWG: 64, IR: b.MustBuild()}
}

// TestRespLogCap pins the replay-log bound: with logging on, a WG's log
// stops growing at Config.RespLogCap, the truncation is recorded, and a
// restore that would need the dropped responses fails loudly instead of
// silently replaying a truncated program position.
func TestRespLogCap(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = ExecGoroutine
	cfg.RespLogCap = 8
	m := newTestMachine(t, cfg, chattyKernel(40), nil)
	m.SetResponseLogging(true)
	m.Prepare()
	m.RunTo(m.CycleLimit())
	for _, w := range m.allWGs {
		if len(w.respLog) != cfg.RespLogCap {
			t.Fatalf("%v respLog has %d entries, want capped at %d", w, len(w.respLog), cfg.RespLogCap)
		}
		if !w.respLogCapped {
			t.Fatalf("%v dropped responses without recording respLogCapped", w)
		}
	}
	res := m.FinishRun()
	if res.Deadlocked {
		t.Fatalf("capped run did not complete: %+v", res)
	}
	// Teardown: dropping the logs releases every entry and the cap marker.
	m.DropResponseLogs()
	for _, w := range m.allWGs {
		if w.respLog != nil || w.respLogCapped {
			t.Fatalf("%v kept respLog state after DropResponseLogs", w)
		}
	}
}

// TestRespLogCapRestoreFails pins the loud-failure contract: restoring a
// snapshot whose WGs are past the cap panics naming RespLogCap rather than
// respawning a goroutine from a truncated log.
func TestRespLogCapRestoreFails(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = ExecGoroutine
	cfg.RespLogCap = 4
	m := newTestMachine(t, cfg, chattyKernel(400), nil)
	m.SetResponseLogging(true)
	m.Prepare()
	// Run deep enough that every WG has consumed more responses than the
	// log retains, then snapshot that position.
	for m.Engine().Now() < m.CycleLimit() {
		m.RunTo(m.Engine().Now() + 1000)
		past := 0
		for _, w := range m.allWGs {
			if w.respCount > cfg.RespLogCap {
				past++
			}
		}
		if past == len(m.allWGs) {
			break
		}
	}
	snap := m.Snapshot()
	// Advance past the snapshot so the restore cannot keep the live
	// goroutines in place and must replay from the (truncated) log.
	m.RunTo(m.Engine().Now() + 2000)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Restore replayed a truncated response log without panicking")
		}
		if !strings.Contains(fmtRecover(r), "RespLogCap") {
			t.Fatalf("restore panic does not name the cap: %v", r)
		}
	}()
	m.Restore(snap)
}

func fmtRecover(r any) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return ""
}

// TestIRNeverAllocatesRespLog is the allocation regression the tentpole
// promises: an IR WG's position is its frame, so even with response logging
// enabled end to end it must never allocate a replay log.
func TestIRNeverAllocatesRespLog(t *testing.T) {
	cfg := testConfig()
	m := newTestMachine(t, cfg, chattyIR(40), nil)
	m.SetResponseLogging(true)
	res := m.Run()
	if res.Deadlocked {
		t.Fatalf("IR run did not complete: %+v", res)
	}
	for _, w := range m.allWGs {
		if w.frame == nil {
			t.Fatalf("%v ran without a frame under ExecIR", w)
		}
		if w.respLog != nil || w.respLogCapped {
			t.Fatalf("%v allocated a respLog (%d entries) on the IR path", w, len(w.respLog))
		}
	}
}
