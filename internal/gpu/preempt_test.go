package gpu

import (
	"testing"

	"awgsim/internal/mem"
)

// evictMidAtomicPolicy busy-waits like spinPolicy but force-evicts WG 1 one
// cycle after its first atomic issues — while the operation is still in
// flight to the L2.
type evictMidAtomicPolicy struct {
	m       *Machine
	evicted bool
}

func (p *evictMidAtomicPolicy) Name() string            { return "evict-mid-atomic" }
func (p *evictMidAtomicPolicy) Attach(m *Machine) error { p.m = m; return nil }

func (p *evictMidAtomicPolicy) Wait(w *WG, v Var, op AtomicOp, a, b, want int64, cmp Cmp, _ WaitHint, done func(int64)) {
	var attempt func()
	attempt = func() {
		p.m.IssueAtomic(w, v, op, a, b, nil, func(ret int64) {
			if cmp.Test(ret, want) {
				done(ret)
				return
			}
			p.m.Engine().After(16, attempt)
		})
		if !p.evicted && w.ID() == 1 {
			p.evicted = true
			p.m.Engine().After(1, func() { p.m.sched.forceEvict(w) })
		}
	}
	attempt()
}

func TestForceEvictMidAtomic(t *testing.T) {
	// WG 1 is evicted between its atomic's issue and response. The response
	// must survive the switch-out (the retry parks until the WG is resident
	// again) and the run must still complete.
	const flag = mem.Addr(0x8000)
	cfg := testConfig()
	cfg.NumCUs = 1
	spec := &KernelSpec{
		Name: "evict-mid-atomic", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(20_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, cfg, spec, &evictMidAtomicPolicy{})
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked after mid-atomic eviction")
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d WGs, want 2", res.Completed)
	}
	if res.SwitchesOut == 0 {
		t.Fatal("forced eviction recorded no switch-out")
	}
}

func TestPreemptThenImmediateRestore(t *testing.T) {
	// RestoreCU in the same cycle as PreemptCU: the resident WGs are already
	// committed to switching out, but the CU is eligible again, so the run
	// completes at full width.
	const flag = mem.Addr(0x8000)
	cfg := testConfig()
	spec := &KernelSpec{
		Name: "preempt-restore", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(60_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, cfg, spec, &yieldPolicy{})
	m.Engine().At(10_000, func() {
		m.PreemptCU(1)
		m.RestoreCU(1)
	})
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked after preempt+restore")
	}
	if m.EnabledCUs() != 2 {
		t.Fatalf("EnabledCUs = %d, want 2", m.EnabledCUs())
	}
	if res.SwitchesOut == 0 {
		t.Fatal("preemption recorded no switch-out")
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d WGs, want 8", res.Completed)
	}
}

func TestDispatchStarvationAllCUsDisabled(t *testing.T) {
	// With every CU preempted nothing can dispatch; the watchdog must
	// declare the run deadlocked rather than hang.
	cfg := testConfig()
	cfg.ProgressWindow = 50_000
	spec := &KernelSpec{
		Name: "starve", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(1000) },
	}
	m := newTestMachine(t, cfg, spec, &yieldPolicy{})
	m.Engine().At(0, func() {
		m.PreemptCU(0)
		m.PreemptCU(1)
	})
	res := m.Run()
	if !res.Deadlocked {
		t.Fatal("run with every CU disabled did not report deadlock")
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d WGs with no enabled CU", res.Completed)
	}
	if m.EnabledCUs() != 0 {
		t.Fatalf("EnabledCUs = %d, want 0", m.EnabledCUs())
	}
}

func TestDispatchResumesAfterRestore(t *testing.T) {
	// Same full-disable, but the CUs come back before the watchdog fires;
	// the pending launch must then drain normally.
	cfg := testConfig()
	spec := &KernelSpec{
		Name: "starve-restore", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(1000) },
	}
	m := newTestMachine(t, cfg, spec, &yieldPolicy{})
	m.Engine().At(0, func() {
		m.PreemptCU(0)
		m.PreemptCU(1)
	})
	m.Engine().At(20_000, func() {
		m.RestoreCU(0)
		m.RestoreCU(1)
	})
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked despite restored CUs")
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d WGs, want 8", res.Completed)
	}
}
