package gpu

import "awgsim/internal/event"

// This file defines the seams between the Machine and its collaborators.
// The Machine owns the event engine, the memory system, the WG runtimes and
// the device request loop; everything else is delegated to three
// narrowly-scoped subsystems, each behind an interface so tests can
// substitute instrumented implementations:
//
//	dispatcher     — CU resource pools, the pending/ready WG queues, WG
//	                 placement, priority eviction (scheduler.go)
//	atomicPipeline — the L2/CU atomic path, monitor-arm traffic, atomic
//	                 observers, Table 2 characterization (atomics.go)
//	contextEngine  — the WG context save/restore state machine and the
//	                 CU-level preemption of the oversubscribed experiment
//	                 (context.go)
//
// The subsystems collaborate only through these interfaces (wired up by
// NewMachine), so each one can be read, tested, and replaced on its own:
// the dispatcher asks the context engine to restore ready WGs, the context
// engine hands freed resources back to the dispatcher, and the request loop
// feeds the atomic pipeline.

// dispatcher places work-groups onto compute units. It owns the CU resource
// pools, the two scheduling queues (never-started pending WGs and
// switched-out ready WGs) and the dispatcher serialization slot.
type dispatcher interface {
	// enqueuePending inserts never-started WGs in (priority, arrival) order.
	enqueuePending(wgs []*WG)
	// enqueueReady promotes a switched-out WG whose condition is met,
	// stamping a fresh arrival sequence (see sortWGQueue for why).
	enqueueReady(w *WG)
	// requeueReady re-appends a WG whose context restore was revoked
	// mid-flight (its CU was preempted away); the WG keeps its sequence.
	requeueReady(w *WG)
	// kick schedules one dispatcher pass, coalescing repeated requests
	// within an event.
	kick()
	// evictForRoom force-preempts resident lower-priority WGs until kr's
	// WGs all fit.
	evictForRoom(kr *kernelRun)
	// forceEvict context switches one resident WG out on behalf of the
	// kernel-level scheduler.
	forceEvict(w *WG)
	// oversubscribed reports whether WGs are waiting for resources.
	oversubscribed() bool
	// queueLens reports the pending/ready queue occupancies (diagnostics).
	queueLens() (pending, ready int)
	// cu resolves a CU by id.
	cu(id CUID) *computeUnit
	// disableCU/enableCU flip a CU's availability, reporting whether the
	// call changed anything.
	disableCU(id CUID) bool
	enableCU(id CUID) bool
	// enabledCUs counts CUs currently available for placement.
	enabledCUs() int
	// dispatchSlot serializes dispatcher actions, returning the cycle at
	// which the next action completes.
	dispatchSlot() event.Cycle
	// issueFactor models SIMD issue-slot sharing on w's CU.
	issueFactor(w *WG) event.Cycle
}

// atomicPipeline carries every atomic and monitor-arm operation to the
// variable's synchronization point (the L2 bank or the CU-local unit),
// applies value effects at bank-service time, and notifies subscribed
// observers (the SyncMon implementations). It also keeps the Table 2
// synchronization characterization.
type atomicPipeline interface {
	// subscribe registers f for every atomic's bank-service instant.
	subscribe(f AtomicObserver)
	// issue performs an atomic for w (nil for agent-issued operations).
	issue(w *WG, v Var, op AtomicOp, a, b int64, atBank func(old, new int64), resp func(ret int64))
	// issueTask performs an atomic whose response continuation is a pooled
	// task, fired with the returned value in resp.I[AtomicRet].
	issueTask(w *WG, v Var, op AtomicOp, a, b int64, resp *event.Task)
	// arm sends a wait-instruction arm for w to the SyncMon at the L2.
	arm(w *WG, v Var, atBank func(), resp func())
	// charBegin/charMet bracket one wait episode for the Table 2 stats.
	charBegin(w *WG, v Var, want int64)
	charMet(w *WG, v Var, want int64)
	// characterization aggregates the Table 2 columns at end of run.
	characterization() charSummary
}

// contextEngine runs the WG context save/restore state machine the paper's
// Command Processor firmware implements (stalled → switching-out → waiting
// → ready → switching-in), plus the CU-level preemption of the dynamic
// resource-loss experiment.
type contextEngine interface {
	// saveOut runs the context-save sequence for a resident WG: CP firmware
	// latency, context-store memory traffic, then resource release. When
	// requeueReady is set the WG queues ready as soon as the save lands (it
	// was preempted while executing, so it wants its resources back).
	saveOut(w *WG, requeueReady bool)
	// switchOut context switches a waiting resident WG out on the policy's
	// request.
	switchOut(w *WG)
	// switchIn restores a ready WG onto cu.
	switchIn(w *WG, cu *computeUnit)
	// markReady promotes a switched-out WG to the ready queue.
	markReady(w *WG)
	// preemptCU disables a CU and force-preempts its resident WGs.
	preemptCU(id CUID)
	// restoreCU re-enables a previously preempted CU.
	restoreCU(id CUID)
	// deliver runs f once w is resident.
	deliver(w *WG, f func())
}
