package gpu

import (
	"sort"

	"awgsim/internal/event"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/trace"
)

// AtomicObserver is notified at bank-service time of every atomic, after
// its value applies. The SyncMon implementations subscribe through this.
type AtomicObserver func(by *WG, v Var, op AtomicOp, old, new int64)

// atomicUnit is the production atomic pipeline: it routes atomics and
// monitor arms to the variable's synchronization point with the memory
// system's timing, applies value effects at bank-service time, fans out to
// observers, and keeps the Table 2 synchronization characterization.
type atomicUnit struct {
	m         *Machine
	observers []AtomicObserver

	// Table 2 characterization: a slab of per-variable records indexed by
	// word-aligned address. observeUpdate runs at every write atomic's
	// bank-service instant, so the lookup and the active-episode walk are
	// flat-array operations rather than map traffic.
	charIdx   *hashutil.Flat[mem.Addr, int32] // aligned addr -> 1-based slab ref
	charSlab  []varChar
	charAddrs []mem.Addr // slab insertion order (characterization re-sorts)
}

// varChar keeps one synchronization variable's Table 2 statistics. The
// per-variable populations (distinct waited-for values, concurrent
// conditions, active episodes) are small — bounded by concurrent waiters —
// so linear scans of flat slices beat map overhead on every path.
type varChar struct {
	scope Scope

	wantVals []int64    // distinct waited-for values
	conds    []condStat // concurrent waiters per (addr, want) condition

	maxWaiters int

	epWGs    []WGID // active episodes: the waiting WGs...
	epCounts []int  // ...and updates observed since each began

	updatesPerMet []int
}

type condStat struct {
	key condKey
	n   int
}

type condKey struct {
	addr mem.Addr
	want int64
}

func newAtomicUnit(m *Machine) *atomicUnit {
	return &atomicUnit{m: m, charIdx: hashutil.NewFlat[mem.Addr, int32](64, func(a mem.Addr) uint64 {
		return hashutil.Mix64(uint64(a))
	})}
}

func (p *atomicUnit) subscribe(f AtomicObserver) {
	p.observers = append(p.observers, f)
}

// AtomicRet is the resp-task slot the atomic pipeline deposits the op's
// returned value into before the response task fires (see IssueAtomicTask).
const AtomicRet = 5

// issue performs an atomic for w (nil for agent-issued operations such as
// CP condition checks). The op's value effect and all monitor observations
// happen at bank-service time; resp, if non-nil, runs at response time with
// the op's returned value. atBank, if non-nil, runs at bank-service time
// after observers — this is where waiting atomics register their condition
// race-free.
func (p *atomicUnit) issue(w *WG, v Var, op AtomicOp, a, b int64, atBank func(old, new int64), resp func(ret int64)) {
	if w != nil && !w.Resident() {
		w.Park(func() { p.issue(w, v, op, a, b, atBank, resp) })
		return
	}
	var rt *event.Task
	if resp != nil {
		rt = p.m.eng.NewTask(runAtomicRespFunc)
		rt.Env[0] = resp
	}
	p.start(w, v, op, a, b, atBank, rt)
}

// issueTask performs an atomic whose response continuation is a pooled
// task: resp fires at response time with the op's returned value already
// deposited in resp.I[AtomicRet].
func (p *atomicUnit) issueTask(w *WG, v Var, op AtomicOp, a, b int64, resp *event.Task) {
	if w != nil && !w.Resident() {
		w.Park(func() { p.issueTask(w, v, op, a, b, resp) })
		return
	}
	p.start(w, v, op, a, b, nil, resp)
}

// start schedules the apply and response legs for a resident (or agent)
// atomic. The apply leg is scheduled before the response leg so their seq
// order — and therefore every same-timestamp interleaving — matches event
// issue order.
func (p *atomicUnit) start(w *WG, v Var, op AtomicOp, a, b int64, atBank func(old, new int64), resp *event.Task) {
	m := p.m
	m.Trace(w, trace.Attempt)
	var applyAt, respAt event.Cycle
	if v.Scope == Local && w != nil && int(w.cu) == v.Group {
		applyAt, respAt = m.mem.LocalAtomicTiming(int(w.cu), v.Addr)
	} else {
		applyAt, respAt = m.mem.AtomicTiming(v.Addr)
	}
	t := m.eng.NewTask(runAtomicApply)
	t.Env[0] = p
	t.Env[1] = w
	t.Env[2] = atBank
	t.Env[3] = resp
	t.I[0] = int64(v.Addr)
	t.I[1] = int64(v.Scope)
	t.I[2] = int64(v.Group)
	t.I[3] = a
	t.I[4] = b
	t.I[5] = int64(op)
	m.eng.AtTask(applyAt, t)
	if resp != nil {
		m.eng.AtTask(respAt, resp)
	}
}

// runAtomicApply is the bank-service leg: value effect, monitored-bit fan
// out, and the race-free atBank hook, in the same order the closure-based
// path used.
func runAtomicApply(t *event.Task) {
	p := t.Env[0].(*atomicUnit)
	w, _ := t.Env[1].(*WG)
	m := p.m
	v := Var{Addr: mem.Addr(t.I[0]), Scope: Scope(t.I[1]), Group: int(t.I[2])}
	a, b := t.I[3], t.I[4]
	op := AtomicOp(t.I[5])
	old := m.mem.Read(v.Addr)
	newVal, ret := op.Apply(old, a, b)
	if rt, _ := t.Env[3].(*event.Task); rt != nil {
		// The response task is still on the calendar (respAt >= applyAt,
		// scheduled after us): deposit the return value for it.
		rt.I[AtomicRet] = ret
	}
	if newVal != old {
		m.mem.Write(v.Addr, newVal)
	}
	if op.IsWrite() {
		p.observeUpdate(v.Addr)
	}
	for _, obs := range p.observers {
		obs(w, v, op, old, newVal)
	}
	if atBank, _ := t.Env[2].(func(old, new int64)); atBank != nil {
		atBank(old, newVal)
	}
}

// runAtomicRespFunc adapts a closure-style resp callback to the task path.
func runAtomicRespFunc(t *event.Task) {
	t.Env[0].(func(ret int64))(t.I[AtomicRet])
}

// arm sends a wait-instruction arm for w to the SyncMon at the L2: atBank
// runs at bank-service time (where the monitor registers the condition —
// any update applied between the triggering atomic and this instant is
// missed, the paper's window of vulnerability), and resp at response time.
func (p *atomicUnit) arm(w *WG, v Var, atBank func(), resp func()) {
	m := p.m
	if w != nil && !w.Resident() {
		w.Park(func() { p.arm(w, v, atBank, resp) })
		return
	}
	m.Trace(w, trace.Arm)
	applyAt, respAt := m.mem.ArmTiming(v.Addr)
	if atBank != nil {
		m.eng.At(applyAt, atBank)
	}
	if resp != nil {
		m.eng.At(respAt, resp)
	}
}

// --- Table 2 characterization instrumentation ---

func (p *atomicUnit) charFor(v Var) *varChar {
	addr := v.Addr.WordAligned() // observeUpdate keys by aligned address
	r := p.charIdx.Put(addr)
	if *r == 0 {
		p.charSlab = append(p.charSlab, varChar{scope: v.Scope})
		p.charAddrs = append(p.charAddrs, addr)
		*r = int32(len(p.charSlab))
	}
	return &p.charSlab[*r-1]
}

func (p *atomicUnit) charBegin(w *WG, v Var, want int64) {
	c := p.charFor(v)
	seen := false
	for _, wv := range c.wantVals {
		if wv == want {
			seen = true
			break
		}
	}
	if !seen {
		c.wantVals = append(c.wantVals, want)
	}
	k := condKey{v.Addr, want}
	bumped := false
	for i := range c.conds {
		if c.conds[i].key == k {
			c.conds[i].n++
			if c.conds[i].n > c.maxWaiters {
				c.maxWaiters = c.conds[i].n
			}
			bumped = true
			break
		}
	}
	if !bumped {
		c.conds = append(c.conds, condStat{key: k, n: 1})
		if c.maxWaiters < 1 {
			c.maxWaiters = 1
		}
	}
	// Begin (or restart) w's episode with a zeroed update count.
	for i, id := range c.epWGs {
		if id == w.id {
			c.epCounts[i] = 0
			return
		}
	}
	c.epWGs = append(c.epWGs, w.id)
	c.epCounts = append(c.epCounts, 0)
}

func (p *atomicUnit) charMet(w *WG, v Var, want int64) {
	c := p.charFor(v)
	k := condKey{v.Addr, want}
	for i := range c.conds {
		if c.conds[i].key == k {
			if c.conds[i].n > 0 {
				c.conds[i].n--
			}
			break
		}
	}
	for i, id := range c.epWGs {
		if id == w.id {
			c.updatesPerMet = append(c.updatesPerMet, c.epCounts[i])
			// Episode order is immaterial (observeUpdate increments all,
			// charMet records only the finished one): swap-remove.
			last := len(c.epWGs) - 1
			c.epWGs[i], c.epCounts[i] = c.epWGs[last], c.epCounts[last]
			c.epWGs, c.epCounts = c.epWGs[:last], c.epCounts[:last]
			return
		}
	}
}

func (p *atomicUnit) observeUpdate(a mem.Addr) {
	r := p.charIdx.Ref(a.WordAligned())
	if r == nil {
		return
	}
	c := &p.charSlab[*r-1]
	for i := range c.epCounts {
		c.epCounts[i]++
	}
}

// charSummary aggregates the Table 2 columns over a whole run.
type charSummary struct {
	syncVars int
	stats    metrics.SyncVarStats
}

func (p *atomicUnit) characterization() charSummary {
	var conds, maxW int
	var updSum float64
	var updN int
	// Iterate in address order: the float accumulation below is not
	// associative, so insertion order would leak into the Table 2 mean.
	addrs := append([]mem.Addr(nil), p.charAddrs...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		c := &p.charSlab[*p.charIdx.Ref(a)-1]
		conds += len(c.wantVals)
		if c.maxWaiters > maxW {
			maxW = c.maxWaiters
		}
		for _, u := range c.updatesPerMet {
			updSum += float64(u)
			updN++
		}
	}
	sum := charSummary{
		syncVars: len(p.charSlab),
		stats:    metrics.SyncVarStats{Conditions: conds, MaxWaiters: maxW},
	}
	if updN > 0 {
		sum.stats.UpdatesPerCond = updSum / float64(updN)
	}
	return sum
}

// OnAtomicApply subscribes f to every atomic's bank-service instant.
func (m *Machine) OnAtomicApply(f AtomicObserver) { m.atomics.subscribe(f) }

// IssueAtomicTask performs an atomic like IssueAtomic but delivers the
// response through a pooled event task: resp fires at response time with
// the op's returned value in resp.I[AtomicRet]. High-rate agent paths (the
// CP's periodic condition checks) use this to avoid a fresh closure per
// probe.
func (m *Machine) IssueAtomicTask(w *WG, v Var, op AtomicOp, a, b int64, resp *event.Task) {
	m.atomics.issueTask(w, v, op, a, b, resp)
}

// IssueAtomic performs an atomic for w (nil for agent-issued operations
// such as CP condition checks). The op's value effect and all monitor
// observations happen at bank-service time; resp, if non-nil, runs at
// response time with the op's returned value. atBank, if non-nil, runs at
// bank-service time after observers — this is where waiting atomics
// register their condition race-free.
func (m *Machine) IssueAtomic(w *WG, v Var, op AtomicOp, a, b int64, atBank func(old, new int64), resp func(ret int64)) {
	m.atomics.issue(w, v, op, a, b, atBank, resp)
}

// IssueArm sends a wait-instruction arm for w to the SyncMon at the L2:
// atBank runs at bank-service time (where the monitor registers the
// condition — any update applied between the triggering atomic and this
// instant is missed, the paper's window of vulnerability), and resp at
// response time.
func (m *Machine) IssueArm(w *WG, v Var, atBank func(), resp func()) {
	m.atomics.arm(w, v, atBank, resp)
}
