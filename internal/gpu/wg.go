package gpu

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/mem"
)

// reqKind discriminates the operations a WG program can request from the
// machine.
type reqKind int

const (
	reqCompute reqKind = iota
	reqLoad
	reqStore
	reqAtomic
	reqSyncThreads
	reqAwait
	reqAcquire
	reqDone
)

// request is one device operation sent from a WG goroutine to the machine.
type request struct {
	kind   reqKind
	v      Var
	addr   mem.Addr
	op     AtomicOp
	a, b   int64 // operands (CAS: a=compare, b=swap)
	want   int64 // await: expected value; acquire: old value meaning success
	cmp    Cmp   // await comparison (acquires are always CmpEQ)
	cycles event.Cycle
	hint   WaitHint
}

// response completes a device operation.
type response struct {
	val   int64
	abort bool
}

// abortSentinel unwinds a WG goroutine when the simulation tears down
// before the program finishes (deadlock or watchdog stop).
type abortSentinel struct{}

// WG is one work-group's runtime state. The machine owns all fields; the
// program goroutine only ever touches the channels through its Device.
type WG struct {
	id    WGID
	spec  *KernelSpec
	kr    *kernelRun
	home  int // home scheduling group (initial CU)
	inGrp int // rank within the group
	grpSz int

	state WGState
	cu    CUID

	// frame is the inline interpreter's resumable position for an IR kernel
	// (nil on the closure path). Where it is set, the channels below stay
	// nil: the WG has no goroutine, and step advances the frame directly.
	frame *irFrame

	// req/resp are the closure path's rendezvous channels, created lazily at
	// first goroutine spawn so IR WGs never allocate them.
	req  chan request
	resp chan response

	// parked holds continuations that must wait for the WG to be resident
	// again (response deliveries frozen by preemption, policy resume
	// actions queued behind a context switch-in).
	parked []func()
	// queueSeq orders the WG within the pending/ready queues (FIFO within
	// a priority class).
	queueSeq uint64
	// readyWhenSaved marks a WG whose wait condition was met while its
	// context save was still in flight; the save completion promotes it
	// straight to ready.
	readyWhenSaved bool

	// Policy scratch: the active wait episode's bookkeeping lives here so
	// policies don't need side tables. Opaque to the machine.
	PolicyData any

	waiting bool // currently inside a wait episode (for breakdown)
	// The active wait episode's condition, recorded by the request loop so
	// deadlock diagnoses can name what every blocked WG is waiting for
	// without asking the policy. Valid while waiting is set.
	waitVar   Var
	waitWant  int64
	waitCmp   Cmp
	waitBegan event.Cycle

	stalled        bool // parked without issuing instructions (frees issue slots)
	phaseStart     event.Cycle
	runningCycles  uint64
	waitingCycles  uint64
	started        bool
	finished       bool
	forcePreempted bool

	// respCount counts every response the machine has delivered to the
	// program goroutine; with response logging on, respLog also records the
	// values. Together they let a snapshot restore rebuild the goroutine at
	// an exact program position: the deterministic program is re-run from the
	// top with its first respCount requests answered from the log (see
	// Machine.restoreWG).
	respLog   []int64
	respCount int
	// respLogCapped records that responses were dropped once respLog hit the
	// configured cap; a restore that would need them fails loudly instead of
	// replaying a truncated log.
	respLogCapped bool
	// live is true while the program goroutine exists. Machine-owned (never
	// written from the WG goroutine, so snapshots read it race-free): set
	// when the goroutine is (re)spawned, cleared at reqDone or abort.
	live bool
}

// ID reports the dispatcher-assigned work-group ID.
func (w *WG) ID() WGID { return w.id }

// State reports the scheduling state.
func (w *WG) State() WGState { return w.state }

// CU reports the current CU, or NoCU.
func (w *WG) CU() CUID { return w.cu }

// Home reports the WG's home scheduling group.
func (w *WG) Home() int { return w.home }

// Resident reports whether the WG currently holds CU resources.
func (w *WG) Resident() bool { return w.state == StateResident }

// Spec reports the kernel this WG belongs to.
func (w *WG) Spec() *KernelSpec { return w.spec }

// Park queues f to run when the WG next becomes resident.
func (w *WG) Park(f func()) { w.parked = append(w.parked, f) }

// Stalled reports whether the WG is parked without issuing instructions.
func (w *WG) Stalled() bool { return w.stalled }

// WaitingOn reports the condition of the WG's active wait episode, and
// whether one is active at all.
func (w *WG) WaitingOn() (v Var, want int64, cmp Cmp, ok bool) {
	if !w.waiting {
		return Var{}, 0, 0, false
	}
	return w.waitVar, w.waitWant, w.waitCmp, true
}

func (w *WG) String() string {
	return fmt.Sprintf("WG%d[%s@cu%d]", w.id, w.state, w.cu)
}

// flushPhase charges the interval since the last phase change to the
// current phase.
func (w *WG) flushPhase(now event.Cycle) {
	d := uint64(now - w.phaseStart)
	if w.waiting {
		w.waitingCycles += d
	} else {
		w.runningCycles += d
	}
	w.phaseStart = now
}

// setPhase moves the WG between running and waiting attribution, charging
// the elapsed interval to the phase just ended.
func (w *WG) setPhase(now event.Cycle, waiting bool) {
	if w.waiting == waiting {
		return
	}
	w.flushPhase(now)
	w.waiting = waiting
}

// closePhase charges the final interval when the WG finishes or the
// simulation ends.
func (w *WG) closePhase(now event.Cycle) {
	if !w.started || w.finished {
		return
	}
	w.flushPhase(now)
}

// wgDevice implements Device for one WG. Its methods run on the WG's
// goroutine and communicate with the machine exclusively through the
// request/response channels.
type wgDevice struct {
	w      *WG
	numWGs int
}

func (d *wgDevice) call(r request) int64 {
	d.w.req <- r
	resp := <-d.w.resp
	if resp.abort {
		panic(abortSentinel{})
	}
	return resp.val
}

func (d *wgDevice) ID() WGID          { return d.w.id }
func (d *wgDevice) NumWGs() int       { return d.numWGs }
func (d *wgDevice) WIsPerWG() int     { return d.w.spec.WIsPerWG }
func (d *wgDevice) Group() int        { return d.w.home }
func (d *wgDevice) GroupSize() int    { return d.w.grpSz }
func (d *wgDevice) IndexInGroup() int { return d.w.inGrp }

func (d *wgDevice) Compute(cycles event.Cycle) {
	if cycles == 0 {
		return
	}
	d.call(request{kind: reqCompute, cycles: cycles})
}

func (d *wgDevice) Load(a mem.Addr) int64 {
	return d.call(request{kind: reqLoad, addr: a})
}

func (d *wgDevice) Store(a mem.Addr, v int64) {
	d.call(request{kind: reqStore, addr: a, a: v})
}

func (d *wgDevice) AtomicAdd(v Var, delta int64) int64 {
	return d.call(request{kind: reqAtomic, v: v, op: OpAdd, a: delta})
}

func (d *wgDevice) AtomicExch(v Var, val int64) int64 {
	return d.call(request{kind: reqAtomic, v: v, op: OpExch, a: val})
}

func (d *wgDevice) AtomicCAS(v Var, cmp, val int64) int64 {
	return d.call(request{kind: reqAtomic, v: v, op: OpCAS, a: cmp, b: val})
}

func (d *wgDevice) AtomicLoad(v Var) int64 {
	return d.call(request{kind: reqAtomic, v: v, op: OpLoad})
}

func (d *wgDevice) AtomicStore(v Var, val int64) {
	d.call(request{kind: reqAtomic, v: v, op: OpStore, a: val})
}

func (d *wgDevice) SyncThreads() {
	d.call(request{kind: reqSyncThreads})
}

func (d *wgDevice) AwaitEq(v Var, want int64) int64 {
	return d.call(request{kind: reqAwait, v: v, want: want})
}

func (d *wgDevice) AwaitGE(v Var, want int64) int64 {
	return d.call(request{kind: reqAwait, v: v, want: want, cmp: CmpGE})
}

func (d *wgDevice) AwaitEqHint(v Var, want int64, hint WaitHint) int64 {
	return d.call(request{kind: reqAwait, v: v, want: want, hint: hint})
}

func (d *wgDevice) AcquireExch(v Var, lockedVal, unlockedVal int64) {
	d.call(request{kind: reqAcquire, v: v, op: OpExch, a: lockedVal, want: unlockedVal})
}

func (d *wgDevice) AcquireExchHint(v Var, lockedVal, unlockedVal int64, hint WaitHint) {
	d.call(request{kind: reqAcquire, v: v, op: OpExch, a: lockedVal, want: unlockedVal, hint: hint})
}

func (d *wgDevice) AcquireCAS(v Var, expect, newVal int64) {
	d.call(request{kind: reqAcquire, v: v, op: OpCAS, a: expect, b: newVal, want: expect})
}

// HintedDevice is the extended device interface carrying WaitHints; the
// backoff-variant benchmarks (SPMBO_*) type-assert to it.
type HintedDevice interface {
	Device
	AwaitEqHint(v Var, want int64, hint WaitHint) int64
	AcquireExchHint(v Var, lockedVal, unlockedVal int64, hint WaitHint)
}
