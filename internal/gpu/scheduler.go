package gpu

import "awgsim/internal/event"

// scheduler is the production dispatcher: it owns the CU resource pools and
// the two WG queues and places WGs onto CUs whenever resources free up. It
// asks the context engine to restore ready WGs and the machine to launch
// never-started ones.
type scheduler struct {
	m   *Machine
	cus []*computeUnit

	pending    []*WG // never-started WGs, in dispatch order
	readyQueue []*WG // switched-out WGs whose conditions are met
	queueSeq   uint64
	dispFree   event.Cycle
	kickQueued bool
	kickFn     func() // reusable kick continuation (kick fires constantly)
}

func newScheduler(m *Machine) *scheduler {
	s := &scheduler{m: m, cus: make([]*computeUnit, m.cfg.NumCUs)}
	for i := range s.cus {
		s.cus[i] = newComputeUnit(CUID(i), m.cfg)
	}
	s.kickFn = func() {
		s.kickQueued = false
		s.dispatchPass()
	}
	return s
}

func (s *scheduler) cu(id CUID) *computeUnit { return s.cus[id] }

// enqueuePending inserts WGs into the pending queue in priority order
// (stable: earlier kernels first within a priority).
func (s *scheduler) enqueuePending(wgs []*WG) {
	for _, w := range wgs {
		s.queueSeq++
		w.queueSeq = s.queueSeq
	}
	s.pending = append(s.pending, wgs...)
	sortWGQueue(s.pending)
}

// enqueueReady appends a ready WG with a fresh arrival sequence and runs the
// dispatcher. The fresh sequence is what lets never-dispatched pending WGs
// eventually outrank ready-queue churners (see dispatchPass).
func (s *scheduler) enqueueReady(w *WG) {
	s.queueSeq++
	w.queueSeq = s.queueSeq
	s.readyQueue = append(s.readyQueue, w)
	sortWGQueue(s.readyQueue)
	s.kick()
}

// requeueReady re-appends a WG whose restore was revoked mid-flight; it
// keeps its sequence number (it never got to run).
func (s *scheduler) requeueReady(w *WG) {
	s.readyQueue = append(s.readyQueue, w)
	s.kick()
}

// oversubscribed reports whether other WGs are waiting for execution
// resources — the paper's condition for context switching a waiting WG out.
func (s *scheduler) oversubscribed() bool {
	return len(s.pending) > 0 || len(s.readyQueue) > 0
}

// queueLens reports the queue occupancies for deadlock diagnoses.
func (s *scheduler) queueLens() (pending, ready int) {
	return len(s.pending), len(s.readyQueue)
}

// sortWGQueue orders a queue by (priority desc, arrival seq asc): higher
// priority kernels jump ahead, but within a priority the queue stays FIFO
// — anything else starves FIFO synchronization primitives (a ticket
// holder re-queued behind perpetually re-trying lower-id WGs would never
// get a slot).
func sortWGQueue(q []*WG) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0; j-- {
			a, b := q[j-1], q[j]
			if b.kr.priority > a.kr.priority || (b.kr.priority == a.kr.priority && b.queueSeq < a.queueSeq) {
				q[j-1], q[j] = b, a
			} else {
				break
			}
		}
	}
}

// evictForRoom force-preempts resident lower-priority WGs until kr's WGs
// all fit (waiting/stalled victims first — they were not making progress
// anyway — then running ones).
func (s *scheduler) evictForRoom(kr *kernelRun) {
	need := 0
	for _, w := range kr.wgs {
		if w.state == StatePending {
			need++
		}
	}
	free := 0
	for _, cu := range s.cus {
		if cu.enabled {
			f := cu.wgSlots
			if wf := cu.wfSlots / kr.spec.Wavefronts(s.m.cfg.SIMDWidth); wf < f {
				f = wf
			}
			free += f
		}
	}
	deficit := need - free
	if deficit <= 0 {
		return
	}
	// Victim selection: lower priority only; stalled before running;
	// deterministic by WG id.
	var victims []*WG
	pass := func(wantStalled bool) {
		for _, w := range s.m.allWGs {
			if deficit <= len(victims) {
				return
			}
			if w.state != StateResident || w.kr == kr || w.kr.priority >= kr.priority {
				continue
			}
			if w.stalled != wantStalled {
				continue
			}
			victims = append(victims, w)
		}
	}
	pass(true)
	pass(false)
	for _, w := range victims {
		s.forceEvict(w)
	}
}

// forceEvict context switches a resident WG out on behalf of the
// kernel-level scheduler; the WG requeues ready (it was not waiting on
// the policy's say-so, so it wants its resources back).
func (s *scheduler) forceEvict(w *WG) {
	if w.state != StateResident {
		return
	}
	w.forcePreempted = true
	s.m.ctx.saveOut(w, true)
}

// disableCU takes a CU out of placement, reporting whether it was enabled.
func (s *scheduler) disableCU(id CUID) bool {
	cu := s.cus[id]
	if !cu.enabled {
		return false
	}
	cu.enabled = false
	return true
}

// enableCU returns a CU to placement, reporting whether it was disabled.
func (s *scheduler) enableCU(id CUID) bool {
	cu := s.cus[id]
	if cu.enabled {
		return false
	}
	cu.enabled = true
	return true
}

// enabledCUs reports how many CUs are still enabled.
func (s *scheduler) enabledCUs() int {
	n := 0
	for _, cu := range s.cus {
		if cu.enabled {
			n++
		}
	}
	return n
}

// kick schedules one dispatcher pass (coalescing repeated requests within
// an event).
func (s *scheduler) kick() {
	if s.kickQueued {
		return
	}
	s.kickQueued = true
	// Same-cycle continuation, stated explicitly: the dispatcher pass runs
	// after the current event completes but before the clock advances.
	s.m.eng.At(s.m.eng.Now(), s.kickFn)
}

// pickCU chooses a CU for w, preferring its home group for local-scope
// affinity.
func (s *scheduler) pickCU(w *WG) *computeUnit {
	if home := s.cus[w.home]; home.canHost(w.spec, s.m.cfg.SIMDWidth) {
		return home
	}
	for _, cu := range s.cus {
		if cu.canHost(w.spec, s.m.cfg.SIMDWidth) {
			return cu
		}
	}
	return nil
}

// dispatchPass places ready WGs first (they are older and hold conditions
// already met), then never-started pending WGs, until resources run out.
func (s *scheduler) dispatchPass() {
	for {
		// Pick across the two queues by (priority, then global arrival
		// sequence). A re-readied WG takes a fresh sequence number each
		// time it re-enters the ready queue, so a never-dispatched pending
		// WG eventually outranks the churners — without this, a barrier
		// kernel that oversubscribes the launch livelocks: the resident
		// waiters cycle through the ready queue forever while the WGs they
		// are waiting for starve in pending.
		var w *WG
		fromReady := false
		if len(s.readyQueue) > 0 {
			w = s.readyQueue[0]
			fromReady = true
		}
		if len(s.pending) > 0 {
			p := s.pending[0]
			if w == nil || p.kr.priority > w.kr.priority ||
				(p.kr.priority == w.kr.priority && p.queueSeq < w.queueSeq) {
				w = p
				fromReady = false
			}
		}
		if w == nil {
			return
		}
		cu := s.pickCU(w)
		if cu == nil {
			// The preferred head does not fit; try the other queue's head
			// once (shapes differ across kernels), then give up.
			var alt *WG
			if fromReady && len(s.pending) > 0 {
				alt = s.pending[0]
			} else if !fromReady && len(s.readyQueue) > 0 {
				alt = s.readyQueue[0]
			}
			if alt == nil {
				return
			}
			if cu = s.pickCU(alt); cu == nil {
				return
			}
			w, fromReady = alt, !fromReady
		}
		if fromReady {
			s.readyQueue = s.readyQueue[1:]
			s.m.ctx.switchIn(w, cu)
		} else {
			s.pending = s.pending[1:]
			s.m.start(w, cu)
		}
	}
}

// dispatchSlot serializes dispatcher actions.
func (s *scheduler) dispatchSlot() event.Cycle {
	at := s.m.eng.Now()
	if s.dispFree > at {
		at = s.dispFree
	}
	s.dispFree = at + event.Cycle(s.m.cfg.DispatchLatency)
	return s.dispFree
}

// issueFactor models SIMD issue-slot sharing on w's CU: compute throughput
// divides among the wavefronts of the resident WGs that are actively
// issuing (a 4-wavefront WG takes four slots' worth of issue bandwidth).
func (s *scheduler) issueFactor(w *WG) event.Cycle {
	if !w.Resident() {
		return 1
	}
	executing := 0
	//lint:allow simdeterminism commutative integer sum; Wavefronts is a pure function of the immutable spec
	for _, r := range s.cus[w.cu].resident {
		if !r.stalled && r.state == StateResident {
			executing += r.spec.Wavefronts(s.m.cfg.SIMDWidth)
		}
	}
	f := (executing + s.m.cfg.SIMDsPerCU - 1) / s.m.cfg.SIMDsPerCU
	if f < 1 {
		f = 1
	}
	return event.Cycle(f)
}

// Oversubscribed reports whether other WGs are waiting for execution
// resources — the paper's condition for context switching a waiting WG out
// ("only if there are other WGs ready to be resumed or started").
func (m *Machine) Oversubscribed() bool { return m.sched.oversubscribed() }

// EnabledCUs reports how many CUs are still enabled.
func (m *Machine) EnabledCUs() int { return m.sched.enabledCUs() }
