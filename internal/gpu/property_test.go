package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awgsim/internal/event"
	"awgsim/internal/mem"
)

// TestAtomicFunctionalEquivalence: whatever the timing model does with
// scheduling and bank queues, the *functional* outcome of commutative
// atomics must match a sequential model: per-address sums for adds, and
// for exchange chains the final value must be one of the written values.
func TestAtomicFunctionalEquivalence(t *testing.T) {
	f := func(seed int64, nWGsRaw, nOpsRaw uint8) bool {
		nWGs := int(nWGsRaw)%6 + 2
		nOps := int(nOpsRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		addrs := []mem.Addr{0x1000, 0x1040, 0x1080}
		// Pre-generate per-WG op sequences.
		type op struct {
			addr  mem.Addr
			delta int64
		}
		plans := make([][]op, nWGs)
		expected := map[mem.Addr]int64{}
		for i := range plans {
			for j := 0; j < nOps; j++ {
				o := op{addrs[rng.Intn(len(addrs))], int64(rng.Intn(9) - 4)}
				plans[i] = append(plans[i], o)
				expected[o.addr] += o.delta
			}
		}
		spec := &KernelSpec{
			Name: "prop", NumWGs: nWGs, WIsPerWG: 64,
			Program: func(d Device) {
				for _, o := range plans[d.ID()] {
					d.AtomicAdd(GlobalVar(o.addr), o.delta)
				}
			},
		}
		cfg := testConfig()
		m, err := NewMachine(cfg, mem.DefaultConfig(), spec, &spinPolicy{})
		if err != nil {
			return false
		}
		if m.Run().Deadlocked {
			return false
		}
		for a, want := range expected {
			if got := m.Mem().Read(a); got != want {
				t.Logf("addr %x: got %d want %d", a, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMutualExclusionProperty: under random critical-section lengths, a
// test-and-set lock must still serialize increments of an unprotected
// counter (read-modify-write through plain loads/stores).
func TestMutualExclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nWGs, iters = 6, 3
		work := make([][]uint64, nWGs)
		for i := range work {
			for j := 0; j < iters; j++ {
				work[i] = append(work[i], uint64(rng.Intn(400)))
			}
		}
		const lock, counter = mem.Addr(0x2000), mem.Addr(0x2040)
		spec := &KernelSpec{
			Name: "mutex-prop", NumWGs: nWGs, WIsPerWG: 64,
			Program: func(d Device) {
				v := GlobalVar(lock)
				for j := 0; j < iters; j++ {
					d.AcquireExch(v, 1, 0)
					x := d.Load(counter)
					d.Compute(event.Cycle(work[d.ID()][j]) + 1)
					d.Store(counter, x+1)
					d.AtomicExch(v, 0)
				}
			},
		}
		m, err := NewMachine(testConfig(), mem.DefaultConfig(), spec, &spinPolicy{})
		if err != nil {
			return false
		}
		if m.Run().Deadlocked {
			return false
		}
		return m.Mem().Read(counter) == int64(nWGs*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierEpochProperty: no WG may start epoch e+1 before every WG
// finished epoch e. The kernel writes per-WG epoch stamps; inside each
// epoch it verifies no stamp is more than one behind.
func TestBarrierEpochProperty(t *testing.T) {
	const nWGs, epochs = 8, 4
	const count = mem.Addr(0x3000)
	stampBase := mem.Addr(0x4000)
	violated := false
	spec := &KernelSpec{
		Name: "barrier-prop", NumWGs: nWGs, WIsPerWG: 64,
		Program: func(d Device) {
			me := stampBase + mem.Addr(int(d.ID())*64)
			for e := 1; e <= epochs; e++ {
				d.Compute(event.Cycle(100 * (int(d.ID()) + 1)))
				d.Store(me, int64(e))
				v := GlobalVar(count)
				target := int64(e * nWGs)
				if d.AtomicAdd(v, 1)+1 != target {
					d.AwaitGE(v, target)
				}
				// After the barrier, every stamp must be >= e.
				for i := 0; i < nWGs; i++ {
					if d.Load(stampBase+mem.Addr(i*64)) < int64(e) {
						violated = true
					}
				}
			}
		},
	}
	m, err := NewMachine(testConfig(), mem.DefaultConfig(), spec, &spinPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Run().Deadlocked {
		t.Fatal("deadlocked")
	}
	if violated {
		t.Fatal("a WG crossed the barrier before everyone arrived")
	}
}
