package gpu

import (
	"testing"

	"awgsim/internal/mem"
)

func TestInjectKernelBothComplete(t *testing.T) {
	cfg := testConfig()
	primary := &KernelSpec{
		Name: "lp", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(50_000) },
	}
	m := newTestMachine(t, cfg, primary, nil)
	hpDone := mem.Addr(0x100)
	hp := &KernelSpec{
		Name: "hp", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			d.Compute(5_000)
			d.AtomicAdd(GlobalVar(hpDone), 1)
		},
	}
	h, err := m.InjectKernel(hp, 10_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if !h.Done() {
		t.Fatal("injected kernel did not finish")
	}
	if got := m.Mem().Read(hpDone); got != 2 {
		t.Fatalf("hp counter = %d, want 2", got)
	}
	if h.Latency() == 0 {
		t.Fatal("no latency recorded")
	}
	// Primary result reflects only the primary kernel.
	if res.Completed != 8 {
		t.Fatalf("primary completed = %d, want 8", res.Completed)
	}
}

func TestInjectKernelPreemptsLowerPriority(t *testing.T) {
	// Fill the machine (8 slots) with long-running LP WGs; a priority-1
	// kernel arriving mid-run must evict LP WGs rather than queue behind
	// them.
	cfg := testConfig()
	primary := &KernelSpec{
		Name: "lp", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(500_000) },
	}
	m := newTestMachine(t, cfg, primary, &yieldPolicy{})
	hp := &KernelSpec{
		Name: "hp", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(10_000) },
	}
	h, err := m.InjectKernel(hp, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.SwitchesOut == 0 {
		t.Fatal("no LP WG was evicted for the high-priority kernel")
	}
	// The HP kernel must finish long before the LP kernel's 500k compute
	// blocks would otherwise allow: launch 20k + evictions + 10k compute
	// (with interference) plus margin.
	if h.Latency() > 120_000 {
		t.Fatalf("high-priority latency %d cycles — it waited for LP completions", h.Latency())
	}
}

func TestInjectKernelWithoutPriorityQueues(t *testing.T) {
	// Priority-0 injection must NOT evict anyone: it waits for free slots.
	cfg := testConfig()
	primary := &KernelSpec{
		Name: "lp", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(100_000) },
	}
	m := newTestMachine(t, cfg, primary, nil)
	hp := &KernelSpec{
		Name: "bg", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(1_000) },
	}
	h, err := m.InjectKernel(hp, 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked || !h.Done() {
		t.Fatal("run failed")
	}
	if res.SwitchesOut != 0 {
		t.Fatal("priority-0 injection evicted resident WGs")
	}
	// It can only have started after a primary WG finished (~100k+).
	if h.Latency() < 80_000 {
		t.Fatalf("background kernel latency %d — it jumped the queue", h.Latency())
	}
}

func TestInjectKernelValidation(t *testing.T) {
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(Device) {}}
	m := newTestMachine(t, testConfig(), spec, nil)
	if _, err := m.InjectKernel(&KernelSpec{}, 0, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
	m.Run()
	if _, err := m.InjectKernel(spec, 0, 1); err == nil {
		t.Fatal("InjectKernel after Run accepted")
	}
}

func TestInjectedKernelCanSynchronize(t *testing.T) {
	// The injected kernel uses inter-WG synchronization itself (a small
	// counter barrier) under the active policy.
	cfg := testConfig()
	primary := &KernelSpec{
		Name: "lp", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(200_000) },
	}
	m := newTestMachine(t, cfg, primary, &yieldPolicy{})
	const count = mem.Addr(0x2000)
	hp := &KernelSpec{
		Name: "hp-sync", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) {
			v := GlobalVar(count)
			d.AtomicAdd(v, 1)
			d.AwaitGE(v, 4)
		},
	}
	h, err := m.InjectKernel(hp, 5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if !h.Done() {
		t.Fatal("synchronizing injected kernel did not finish")
	}
}

func TestEvictionPrefersStalledVictims(t *testing.T) {
	// Half the LP WGs wait (stalled) on a flag; the HP kernel needs half
	// the machine. The evicted WGs should be the stalled ones, so the LP
	// computation continues unharmed.
	cfg := testConfig() // 2 CUs x 4
	const flag = mem.Addr(0x3000)
	primary := &KernelSpec{
		Name: "lp", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() < 4 {
				d.Compute(300_000)
				if d.ID() == 0 {
					d.AtomicStore(GlobalVar(flag), 1)
				}
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, cfg, primary, &stallingPolicy{})
	hp := &KernelSpec{
		Name: "hp", NumWGs: 4, WIsPerWG: 64,
		Program: func(d Device) { d.Compute(2_000) },
	}
	if _, err := m.InjectKernel(hp, 50_000, 1); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	// The four stalled waiters are the natural victims; the computing WGs
	// should not have been evicted (4 evictions, not more).
	if res.SwitchesOut > 4 {
		t.Fatalf("%d evictions; expected only the 4 stalled waiters", res.SwitchesOut)
	}
}

func TestMultiWavefrontWGsOccupyMore(t *testing.T) {
	// A 256-WI WG is 4 wavefronts: a CU with 8 WF slots fits 2 of them
	// even though the WG-slot cap would allow 4.
	cfg := testConfig()
	cfg.NumCUs = 1
	cfg.WavefrontsPerSIMD = 4 // 2 SIMDs x 4 = 8 WF slots
	cfg.MaxWGsPerCU = 4
	// Track the maximum concurrency the dispatcher allows: program bodies
	// run in lock-step with the engine, so these counters are race-free.
	cur, peak := 0, 0
	spec := &KernelSpec{
		Name: "wide", NumWGs: 4, WIsPerWG: 256,
		Program: func(d Device) {
			cur++
			if cur > peak {
				peak = cur
			}
			d.Compute(10_000)
			cur--
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	if res := m.Run(); res.Deadlocked || res.Completed != 4 {
		t.Fatalf("wide-WG run failed: %+v", res)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2 (WF-slot limited)", peak)
	}
}

func TestMultiWavefrontComputeInterference(t *testing.T) {
	// Two 4-WF WGs on a 2-SIMD CU contend 4x harder than two 1-WF WGs.
	run := func(wis int) uint64 {
		cfg := testConfig()
		cfg.NumCUs = 1
		cfg.MaxWGsPerCU = 2
		spec := &KernelSpec{
			Name: "k", NumWGs: 2, WIsPerWG: wis,
			Program: func(d Device) { d.Compute(10_000) },
		}
		m := newTestMachine(t, cfg, spec, nil)
		res := m.Run()
		if res.Deadlocked {
			t.Fatal("deadlocked")
		}
		return res.Cycles
	}
	narrow, wide := run(64), run(256)
	if wide < narrow*3 {
		t.Fatalf("4-WF WGs (%d cycles) not ~4x slower than 1-WF (%d)", wide, narrow)
	}
}

func TestSyncThreadsScalesWithWavefronts(t *testing.T) {
	run := func(wis int) uint64 {
		cfg := testConfig()
		spec := &KernelSpec{
			Name: "k", NumWGs: 1, WIsPerWG: wis,
			Program: func(d Device) {
				for i := 0; i < 20; i++ {
					d.SyncThreads()
				}
			},
		}
		m := newTestMachine(t, cfg, spec, nil)
		return m.Run().Cycles
	}
	if one, four := run(64), run(256); four < one*3 {
		t.Fatalf("4-WF syncthreads (%d) not ~4x the 1-WF cost (%d)", four, one)
	}
}

func TestMaxWaitReported(t *testing.T) {
	const flag = mem.Addr(0x5000)
	spec := &KernelSpec{
		Name: "wait", NumWGs: 2, WIsPerWG: 64,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(30_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, testConfig(), spec, nil)
	res := m.Run()
	if res.MaxWait < 25_000 {
		t.Fatalf("MaxWait = %d, want ~30k (the consumer's single wait)", res.MaxWait)
	}
}

func TestTransientCULossRecovers(t *testing.T) {
	// Unlike the permanent loss of the Figure 15 experiment, a CU that
	// comes back lets even the busy-waiting baseline finish: the evicted
	// WGs re-dispatch onto the restored CU and satisfy the barrier.
	cfg := testConfig()
	cfg.ProgressWindow = 400_000
	const count = mem.Addr(0x6000)
	spec := &KernelSpec{
		Name: "transient", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			d.Compute(30_000)
			v := GlobalVar(count)
			if d.AtomicAdd(v, 1)+1 != 8 {
				d.AwaitGE(v, 8)
			}
		},
	}
	m := newTestMachine(t, cfg, spec, nil) // busy-wait policy
	m.Engine().At(5_000, func() { m.PreemptCU(1) })
	m.Engine().At(120_000, func() { m.RestoreCU(1) })
	res := m.Run()
	if res.Deadlocked {
		t.Fatal("baseline deadlocked on a transient CU loss — the evicted WGs should return")
	}
	if m.EnabledCUs() != 2 {
		t.Fatalf("EnabledCUs = %d after restore, want 2", m.EnabledCUs())
	}
	// Restoring an enabled CU is a no-op.
	m.RestoreCU(0)
}

func TestPermanentCULossDeadlocksBaseline(t *testing.T) {
	// The contrast case: same kernel, no restore — the barrier waits
	// forever for the evicted WGs.
	cfg := testConfig()
	cfg.ProgressWindow = 150_000
	const count = mem.Addr(0x7000)
	spec := &KernelSpec{
		Name: "permanent", NumWGs: 8, WIsPerWG: 64,
		Program: func(d Device) {
			d.Compute(30_000)
			v := GlobalVar(count)
			if d.AtomicAdd(v, 1)+1 != 8 {
				d.AwaitGE(v, 8)
			}
		},
	}
	m := newTestMachine(t, cfg, spec, nil)
	m.Engine().At(5_000, func() { m.PreemptCU(1) })
	if res := m.Run(); !res.Deadlocked {
		t.Fatal("baseline completed despite a permanent CU loss")
	}
}
