package gpu

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/mem"
	"awgsim/internal/prog"
)

// Program is the body one work-group executes. It runs on its own goroutine
// in strict lock-step with the simulation engine: every Device call hands
// control back until the simulated operation completes, so programs are
// ordinary sequential Go code, exactly like the CUDA kernels of Figure 10.
type Program func(d Device)

// KernelSpec describes a kernel launch: grid shape, per-WG resource
// demands (which determine the context size of Figure 5 and the occupancy
// limits of Section II.D) and the program body — a Go closure (Program), a
// register-machine program (IR), or both. When IR is set, the machine
// executes it inline under the default exec mode; Program, if also set, is
// ignored except under Config.Exec == ExecGoroutine, where it is preferred
// over interpreting the IR through the Device adapter.
type KernelSpec struct {
	Name     string
	NumWGs   int // G in Table 2
	WIsPerWG int // n in Table 2

	VGPRsPerWI int // 32-bit vector registers per work-item
	SGPRsPerWF int // 32-bit scalar registers per wavefront
	LDSBytes   int // local data share per WG

	Program Program
	IR      *prog.Program
}

// Wavefronts reports how many wavefronts the WG occupies given the
// machine's SIMD width.
func (k KernelSpec) Wavefronts(simdWidth int) int {
	return (k.WIsPerWG + simdWidth - 1) / simdWidth
}

// ContextBytes is the WG context that must move on a context switch:
// vector registers for every work-item, scalar registers for every
// wavefront, and the LDS allocation. This is the quantity Figure 5 plots
// (2–10 KB across the HeteroSync benchmarks).
func (k KernelSpec) ContextBytes(simdWidth int) int {
	return k.WIsPerWG*k.VGPRsPerWI*4 + k.Wavefronts(simdWidth)*k.SGPRsPerWF*4 + k.LDSBytes
}

func (k KernelSpec) validate() error {
	switch {
	case k.Name == "":
		return fmt.Errorf("gpu: kernel without a name")
	case k.NumWGs <= 0:
		return fmt.Errorf("gpu: kernel %s launches %d WGs", k.Name, k.NumWGs)
	case k.WIsPerWG <= 0:
		return fmt.Errorf("gpu: kernel %s has %d WIs per WG", k.Name, k.WIsPerWG)
	case k.Program == nil && k.IR == nil:
		return fmt.Errorf("gpu: kernel %s has no program", k.Name)
	}
	if k.IR != nil {
		if err := k.IR.Validate(); err != nil {
			return fmt.Errorf("gpu: kernel %s: %w", k.Name, err)
		}
	}
	return nil
}

// body returns the closure the goroutine path runs: the explicit Program
// when present, otherwise the IR interpreted against the device.
func (k *KernelSpec) body() Program {
	if k.Program != nil {
		return k.Program
	}
	ir := k.IR
	return func(d Device) { ExecIRProgram(ir, d) }
}

// kernelRun tracks one kernel's execution on the machine. The primary
// kernel is created with the machine; further kernels (e.g. a
// high-priority job arriving mid-run) are injected with InjectKernel.
type kernelRun struct {
	spec      *KernelSpec
	priority  int
	wgs       []*WG
	completed int
	launched  event.Cycle
	doneAt    event.Cycle
}

// KernelHandle reports an injected kernel's progress.
type KernelHandle struct {
	kr *kernelRun
}

// Done reports whether every WG of the kernel completed.
func (h KernelHandle) Done() bool { return h.kr.completed == len(h.kr.wgs) }

// Latency reports launch-to-completion in cycles (0 while running).
func (h KernelHandle) Latency() uint64 {
	if !h.Done() {
		return 0
	}
	return uint64(h.kr.doneAt - h.kr.launched)
}

// Device is the programming interface a WG's program sees. Methods block
// (in simulated time) until the operation completes. All atomic methods
// return the value observed at the moment the operation was serviced at
// the synchronization point (the L2 bank or the CU-local unit).
type Device interface {
	// Identity and launch geometry.
	ID() WGID
	NumWGs() int
	WIsPerWG() int
	// Group reports the WG's scheduling group (its home CU), the sharer
	// set for locally scoped synchronization.
	Group() int
	// GroupSize reports how many WGs share the group (L in Table 2).
	GroupSize() int
	// IndexInGroup reports this WG's rank within its group.
	IndexInGroup() int

	// Compute advances the WG by the given amount of pure computation.
	Compute(cycles event.Cycle)

	// Plain memory operations through the L1.
	Load(a mem.Addr) int64
	Store(a mem.Addr, v int64)

	// Atomics, serviced at the variable's synchronization point.
	AtomicAdd(v Var, delta int64) int64
	AtomicExch(v Var, val int64) int64
	AtomicCAS(v Var, cmp, val int64) int64
	AtomicLoad(v Var) int64
	AtomicStore(v Var, val int64)

	// SyncThreads is the intra-WG barrier (Figure 3c); with all wavefronts
	// of a WG on one CU it is a fixed-latency local operation.
	SyncThreads()

	// AwaitEq blocks until the variable has been observed equal to want,
	// returning the observed value. How the wait happens — busy polling,
	// backoff, timeouts, monitor arming or waiting atomics — is decided by
	// the active scheduling policy.
	AwaitEq(v Var, want int64) int64

	// AwaitGE blocks until the variable has been observed >= want. The
	// monotonic-counter form every barrier and ticket spin needs: a value
	// that sweeps past the target still satisfies a late poller.
	AwaitGE(v Var, want int64) int64

	// AcquireExch implements a test-and-set acquire: atomically exchange
	// lockedVal into v until the old value it returns equals unlockedVal.
	// The policy decides how to wait between failed attempts.
	AcquireExch(v Var, lockedVal, unlockedVal int64)

	// AcquireCAS acquires by compare-and-swap: repeat CAS(v, expect,
	// newVal) until it succeeds.
	AcquireCAS(v Var, expect, newVal int64)
}

// WaitHint carries per-callsite information from the primitive library to
// the policy, such as whether the benchmark variant was written with
// software exponential backoff (the SPMBO_* benchmarks).
type WaitHint struct {
	Backoff bool
}
