package gpu

import (
	"sort"

	"awgsim/internal/event"
	"awgsim/internal/trace"
)

// ctxSwitcher is the production context engine: it sequences every WG
// context save and restore (CP firmware latency plus the context-size
// memory traffic of Figure 5) and implements the CU-level preemption of the
// paper's dynamic resource-loss experiment.
type ctxSwitcher struct {
	m *Machine
}

func newCtxSwitcher(m *Machine) *ctxSwitcher { return &ctxSwitcher{m: m} }

// saveOut runs the context-save sequence for a resident WG. The caller has
// already checked residency and decided why the WG leaves; requeueReady
// marks a WG that was preempted while executing (not parked by the policy),
// so it queues ready the instant its save lands.
func (c *ctxSwitcher) saveOut(w *WG, requeueReady bool) {
	m := c.m
	w.state = StateSwitchingOut
	if requeueReady {
		w.readyWhenSaved = true
	}
	m.Count.SwitchesOut++
	m.Trace(w, trace.SwitchOut)
	cu := m.sched.cu(w.cu)
	t := m.eng.NewTask(runSaveTraffic)
	t.Env[0] = c
	t.Env[1] = w
	t.Env[2] = cu
	m.eng.AfterTask(event.Cycle(m.cfg.CPLatency), t)
}

// runSaveTraffic is the CP-firmware leg of a context save: it reserves the
// context-size memory traffic and schedules the completion leg.
func runSaveTraffic(t *event.Task) {
	c := t.Env[0].(*ctxSwitcher)
	w := t.Env[1].(*WG)
	m := c.m
	doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
	t2 := m.eng.NewTask(runSaveDone)
	t2.Env[0] = c
	t2.Env[1] = w
	t2.Env[2] = t.Env[2]
	m.eng.AtTask(doneAt, t2)
}

// runSaveDone lands a context save: resources free, the WG is switched out
// (queued ready when it was preempted mid-execution), the dispatcher runs.
func runSaveDone(t *event.Task) {
	c := t.Env[0].(*ctxSwitcher)
	w := t.Env[1].(*WG)
	cu := t.Env[2].(*computeUnit)
	m := c.m
	cu.release(w, m.cfg.SIMDWidth)
	w.state = StateSwitchedOut
	if w.readyWhenSaved {
		w.readyWhenSaved = false
		c.markReady(w)
	}
	m.sched.kick()
}

// switchOut context-switches a resident WG out: CP firmware latency plus
// the context-save memory traffic, then the resources free and the
// dispatcher runs. Policies call this for waiting WGs when the machine is
// oversubscribed.
func (c *ctxSwitcher) switchOut(w *WG) {
	if w.state != StateResident {
		return
	}
	c.saveOut(w, false)
}

// switchIn restores a ready WG onto cu: CP latency plus context-restore
// traffic, then parked continuations run.
func (c *ctxSwitcher) switchIn(w *WG, cu *computeUnit) {
	m := c.m
	cu.host(w, m.cfg.SIMDWidth)
	w.state = StateSwitchingIn
	m.Count.SwitchesIn++
	at := m.sched.dispatchSlot()
	t := m.eng.NewTask(runRestoreCP)
	t.Env[0] = c
	t.Env[1] = w
	t.Env[2] = cu
	m.eng.AtTask(at, t)
}

// runRestoreCP fires at the restore's dispatch slot and starts the CP
// firmware latency leg.
func runRestoreCP(t *event.Task) {
	c := t.Env[0].(*ctxSwitcher)
	t2 := c.m.eng.NewTask(runRestoreTraffic)
	t2.Env[0] = c
	t2.Env[1] = t.Env[1]
	t2.Env[2] = t.Env[2]
	c.m.eng.AfterTask(event.Cycle(c.m.cfg.CPLatency), t2)
}

// runRestoreTraffic reserves the context-restore memory traffic and
// schedules the completion leg.
func runRestoreTraffic(t *event.Task) {
	c := t.Env[0].(*ctxSwitcher)
	w := t.Env[1].(*WG)
	m := c.m
	doneAt := m.mem.ContextTraffic(w.spec.ContextBytes(m.cfg.SIMDWidth))
	t2 := m.eng.NewTask(runRestoreDone)
	t2.Env[0] = c
	t2.Env[1] = w
	t2.Env[2] = t.Env[2]
	m.eng.AtTask(doneAt, t2)
}

// runRestoreDone lands a context restore: the WG becomes resident and its
// parked continuations run — unless its CU was preempted away mid-restore,
// in which case it requeues ready.
func runRestoreDone(t *event.Task) {
	c := t.Env[0].(*ctxSwitcher)
	w := t.Env[1].(*WG)
	cu := t.Env[2].(*computeUnit)
	m := c.m
	if !cu.enabled {
		cu.release(w, m.cfg.SIMDWidth)
		w.state = StateReady
		m.sched.requeueReady(w)
		return
	}
	w.state = StateResident
	m.progress()
	m.Trace(w, trace.SwitchIn)
	m.runParked(w)
}

// markReady promotes a switched-out WG to the ready queue. Safe to call in
// any state; only switched-out (or switching-out) WGs change state.
func (c *ctxSwitcher) markReady(w *WG) {
	switch w.state {
	case StateSwitchedOut:
		w.state = StateReady
		c.m.sched.enqueueReady(w)
	case StateSwitchingOut:
		w.readyWhenSaved = true
	}
}

// preemptCU models the oversubscribed experiment's mid-kernel resource
// loss: the CU is disabled, its L1 dropped, and every resident WG is
// force-preempted (context saved and queued ready, since these WGs were
// executing, not waiting).
func (c *ctxSwitcher) preemptCU(id CUID) {
	m := c.m
	if !m.sched.disableCU(id) {
		return
	}
	m.mem.InvalidateCU(int(id))
	cu := m.sched.cu(id)
	victims := make([]*WG, 0, len(cu.resident))
	for _, w := range cu.resident {
		victims = append(victims, w)
	}
	// Deterministic order.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, w := range victims {
		w.forcePreempted = true
		if w.state == StateResident {
			c.saveOut(w, true)
		}
	}
	m.sched.kick()
}

// restoreCU re-enables a previously preempted CU — the paper's dynamic
// resource environment in the other direction: "resource availability
// varies across kernel scheduling time slices". Queued ready WGs flow
// back onto it immediately.
func (c *ctxSwitcher) restoreCU(id CUID) {
	if !c.m.sched.enableCU(id) {
		return
	}
	c.m.sched.kick()
}

// deliver runs f once w is resident: immediately if it already is,
// otherwise f is parked and the WG is marked ready so the dispatcher swaps
// it back in.
func (c *ctxSwitcher) deliver(w *WG, f func()) {
	if w.Resident() {
		f()
		return
	}
	w.Park(f)
	c.markReady(w)
}

// SwitchOut context-switches a resident WG out: CP firmware latency plus
// the context-save memory traffic, then the resources free and the
// dispatcher runs. Policies call this for waiting WGs when the machine is
// oversubscribed.
func (m *Machine) SwitchOut(w *WG) { m.ctx.switchOut(w) }

// MarkReady promotes a switched-out WG to the ready queue. Safe to call in
// any state; only switched-out (or switching-out) WGs change state.
func (m *Machine) MarkReady(w *WG) { m.ctx.markReady(w) }

// PreemptCU models the oversubscribed experiment's mid-kernel resource
// loss: the CU is disabled, its L1 dropped, and every resident WG is
// force-preempted (context saved and queued ready, since these WGs were
// executing, not waiting).
func (m *Machine) PreemptCU(id CUID) { m.ctx.preemptCU(id) }

// RestoreCU re-enables a previously preempted CU. Queued ready WGs flow
// back onto it immediately.
func (m *Machine) RestoreCU(id CUID) { m.ctx.restoreCU(id) }

// Deliver runs f once w is resident: immediately if it already is,
// otherwise f is parked and the WG is marked ready so the dispatcher swaps
// it back in.
func (m *Machine) Deliver(w *WG, f func()) { m.ctx.deliver(w, f) }
