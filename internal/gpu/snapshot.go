package gpu

import (
	"fmt"
	"strings"

	"awgsim/internal/event"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
	"awgsim/internal/metrics"
	"awgsim/internal/trace"
)

// Machine.Snapshot/Restore capture and rewind the whole simulated GPU: the
// event calendar, the memory hierarchy, the scheduler queues and CU pools,
// every WG's runtime state, the Table 2 characterization, and — via the
// registered snapshot hooks — the attached policy's monitor hardware.
//
// An IR WG's program position is plain data — its interpreter frame (pc,
// pending destination register, register file) — so snapshots copy it and
// restores copy it back, in O(registers).
//
// The closure fallback is the one case a copy cannot capture: programs are
// ordinary Go code running on goroutines. Snapshots instead exploit the
// machine's determinism. Between events every live program goroutine is
// quiescent — blocked in <-w.resp having had its latest request consumed —
// so a WG's position is fully determined by how many responses it has
// received (respCount). Restore rebuilds a goroutine by re-running the
// program from the top and answering its first respCount requests from the
// response log; the program deterministically re-issues the same requests,
// so the discarded requests and logged responses line up exactly. When the
// live goroutine is already at the saved position (the first restore after
// a snapshot — the fork planner's common case) no surgery happens at all.
//
// Host-side state is deliberately excluded: the tracer, diagnostic sinks,
// the snapshot ring itself, and the engine's task free list are not
// simulated state. Deep slabs (the paged word store) are shared
// copy-on-write, so a snapshot costs O(dirty), not O(footprint).

// EpisodeState is implemented by policy episode records stored in
// WG.PolicyData whose mutable fields must travel with machine snapshots.
// The calendar's closures keep referencing the same episode object across a
// restore, so LoadEpisode rewinds the object in place rather than replacing
// it.
type EpisodeState interface {
	SaveEpisode() any
	LoadEpisode(any)
}

// snapHook carries one policy-side subsystem in and out of machine
// snapshots.
type snapHook struct {
	save    func() any
	restore func(any)
}

// AddSnapshotHook registers policy-side state with the machine's snapshot
// machinery: save is called by Machine.Snapshot, restore with the saved
// value by Machine.Restore. Monitor policies use it to bundle their
// SyncMon/CP/predictor state.
func (m *Machine) AddSnapshotHook(save func() any, restore func(any)) {
	m.snapHooks = append(m.snapHooks, snapHook{save: save, restore: restore})
}

// Snapshot is a point-in-time copy of the Machine's simulated state. It is
// immutable after capture and may be restored any number of times, on the
// machine that produced it.
type Snapshot struct {
	eng *event.Snapshot
	mem *mem.Snapshot

	count        Counters
	completed    int
	maxWait      uint64
	lastDoneAt   event.Cycle
	lastProgress event.Cycle
	deadlocked   bool
	diag         *metrics.Diagnosis
	jitterState  uint64

	kernels []kernelSnap
	sched   schedSnap
	cus     []cuSnap
	wgs     []wgSnap
	atomics atomicsSnap
	hooks   []any
}

// Now reports the simulated cycle at which the snapshot was taken.
func (s *Snapshot) Now() event.Cycle { return s.eng.Now() }

// Bytes estimates the snapshot's memory footprint (shared COW pages count
// at pointer cost, so this reflects the O(dirty) fork cost).
func (s *Snapshot) Bytes() int {
	n := 256 + s.eng.Bytes() + s.mem.Bytes()
	n += 24 * len(s.kernels)
	n += 16 * (len(s.sched.pending) + len(s.sched.readyQueue))
	n += 16 * len(s.cus)
	for i := range s.wgs {
		n += 160 + 8*len(s.wgs[i].parked)
		if f := s.wgs[i].frame; f != nil {
			n += 40 + 8*len(f.regs)
		}
	}
	n += 24 * len(s.atomics.charAddrs)
	for i := range s.atomics.charSlab {
		c := &s.atomics.charSlab[i]
		n += 64 + 8*(len(c.wantVals)+len(c.epWGs)+len(c.epCounts)+len(c.updatesPerMet)) + 24*len(c.conds)
	}
	for _, h := range s.hooks {
		if b, ok := h.(interface{ Bytes() int }); ok {
			n += b.Bytes()
		}
	}
	return n
}

type kernelSnap struct {
	completed int
	launched  event.Cycle
	doneAt    event.Cycle
}

type schedSnap struct {
	pending    []*WG
	readyQueue []*WG
	queueSeq   uint64
	dispFree   event.Cycle
	kickQueued bool
}

type cuSnap struct {
	enabled                   bool
	wgSlots, wfSlots, ldsFree int
}

// frameSnap records an IR WG's interpreter position: everything mutable in
// its frame (the program and geometry constants are launch-immutable).
type frameSnap struct {
	pc   int
	dst  int16
	regs []int64
}

// wgSnap records one WG's mutable runtime state. The resident maps are not
// saved: w.cu mirrors residency exactly (host sets it, release clears it),
// so Restore rebuilds each CU's resident set from the WGs — no map
// iteration anywhere in the snapshot path.
type wgSnap struct {
	frame          *frameSnap
	state          WGState
	cu             CUID
	parked         []func()
	queueSeq       uint64
	readyWhenSaved bool
	policyData     any
	epState        any
	waiting        bool
	waitVar        Var
	waitWant       int64
	waitCmp        Cmp
	waitBegan      event.Cycle
	stalled        bool
	phaseStart     event.Cycle
	runningCycles  uint64
	waitingCycles  uint64
	started        bool
	finished       bool
	forcePreempted bool
	respCount      int
	live           bool
}

type atomicsSnap struct {
	charIdx   *hashutil.Flat[mem.Addr, int32]
	charSlab  []varChar
	charAddrs []mem.Addr
}

func cloneVarChar(c *varChar) varChar {
	return varChar{
		scope:         c.scope,
		wantVals:      append([]int64(nil), c.wantVals...),
		conds:         append([]condStat(nil), c.conds...),
		maxWaiters:    c.maxWaiters,
		epWGs:         append([]WGID(nil), c.epWGs...),
		epCounts:      append([]int(nil), c.epCounts...),
		updatesPerMet: append([]int(nil), c.updatesPerMet...),
	}
}

// Snapshot captures the machine's simulated state. It must be called between
// events (from the driving goroutine, or from within a single event), where
// every live program goroutine is quiescent.
func (m *Machine) Snapshot() *Snapshot {
	sched, ok := m.sched.(*scheduler)
	if !ok {
		panic("gpu: Snapshot requires the production scheduler")
	}
	au, ok := m.atomics.(*atomicUnit)
	if !ok {
		panic("gpu: Snapshot requires the production atomic pipeline")
	}
	s := &Snapshot{
		eng:          m.eng.Snapshot(),
		mem:          m.mem.Snapshot(),
		count:        m.Count,
		completed:    m.completed,
		maxWait:      m.maxWait,
		lastDoneAt:   m.lastDoneAt,
		lastProgress: m.lastProgress,
		deadlocked:   m.deadlocked,
		diag:         m.diag,
		jitterState:  m.jitterState,
	}
	s.kernels = make([]kernelSnap, len(m.kernels))
	for i, kr := range m.kernels {
		s.kernels[i] = kernelSnap{completed: kr.completed, launched: kr.launched, doneAt: kr.doneAt}
	}
	s.sched = schedSnap{
		pending:    append([]*WG(nil), sched.pending...),
		readyQueue: append([]*WG(nil), sched.readyQueue...),
		queueSeq:   sched.queueSeq,
		dispFree:   sched.dispFree,
		kickQueued: sched.kickQueued,
	}
	s.cus = make([]cuSnap, len(sched.cus))
	for i, cu := range sched.cus {
		s.cus[i] = cuSnap{enabled: cu.enabled, wgSlots: cu.wgSlots, wfSlots: cu.wfSlots, ldsFree: cu.ldsFree}
	}
	s.wgs = make([]wgSnap, len(m.allWGs))
	for i, w := range m.allWGs {
		ws := wgSnap{
			state:          w.state,
			cu:             w.cu,
			parked:         append([]func(){}, w.parked...),
			queueSeq:       w.queueSeq,
			readyWhenSaved: w.readyWhenSaved,
			policyData:     w.PolicyData,
			waiting:        w.waiting,
			waitVar:        w.waitVar,
			waitWant:       w.waitWant,
			waitCmp:        w.waitCmp,
			waitBegan:      w.waitBegan,
			stalled:        w.stalled,
			phaseStart:     w.phaseStart,
			runningCycles:  w.runningCycles,
			waitingCycles:  w.waitingCycles,
			started:        w.started,
			finished:       w.finished,
			forcePreempted: w.forcePreempted,
			respCount:      w.respCount,
			live:           w.live,
		}
		if f := w.frame; f != nil {
			ws.frame = &frameSnap{pc: f.pc, dst: f.dst, regs: append([]int64(nil), f.regs...)}
		}
		if ep, ok := w.PolicyData.(EpisodeState); ok {
			ws.epState = ep.SaveEpisode()
		}
		s.wgs[i] = ws
	}
	s.atomics = atomicsSnap{
		charIdx:   au.charIdx.Clone(),
		charSlab:  make([]varChar, len(au.charSlab)),
		charAddrs: append([]mem.Addr(nil), au.charAddrs...),
	}
	for i := range au.charSlab {
		s.atomics.charSlab[i] = cloneVarChar(&au.charSlab[i])
	}
	for _, h := range m.snapHooks {
		s.hooks = append(s.hooks, h.save())
	}
	return s
}

// Restore rewinds the machine to the snapshot: engine calendar, memory,
// machine bookkeeping, subsystems, WG runtime state (including program
// goroutine surgery) and the hooked policy state. A restored machine
// continues with RunTo/FinishRun and is bit-identical to a run that was
// never interrupted.
func (m *Machine) Restore(s *Snapshot) {
	sched := m.sched.(*scheduler)
	au := m.atomics.(*atomicUnit)
	m.eng.Restore(s.eng)
	m.mem.Restore(s.mem)
	m.Count = s.count
	m.completed = s.completed
	m.maxWait = s.maxWait
	m.lastDoneAt = s.lastDoneAt
	m.lastProgress = s.lastProgress
	m.deadlocked = s.deadlocked
	m.diag = s.diag
	m.jitterState = s.jitterState
	for i, kr := range m.kernels {
		ks := &s.kernels[i]
		kr.completed, kr.launched, kr.doneAt = ks.completed, ks.launched, ks.doneAt
	}
	sched.pending = append(sched.pending[:0], s.sched.pending...)
	sched.readyQueue = append(sched.readyQueue[:0], s.sched.readyQueue...)
	sched.queueSeq = s.sched.queueSeq
	sched.dispFree = s.sched.dispFree
	sched.kickQueued = s.sched.kickQueued
	for i, cu := range sched.cus {
		cs := &s.cus[i]
		cu.enabled, cu.wgSlots, cu.wfSlots, cu.ldsFree = cs.enabled, cs.wgSlots, cs.wfSlots, cs.ldsFree
		clear(cu.resident)
	}
	for i, w := range m.allWGs {
		m.restoreWG(w, &s.wgs[i])
		if w.cu != NoCU {
			sched.cus[w.cu].resident[w.id] = w
		}
	}
	au.charIdx.CopyFrom(s.atomics.charIdx)
	au.charSlab = au.charSlab[:0]
	for i := range s.atomics.charSlab {
		au.charSlab = append(au.charSlab, cloneVarChar(&s.atomics.charSlab[i]))
	}
	au.charAddrs = append(au.charAddrs[:0], s.atomics.charAddrs...)
	for i, h := range m.snapHooks {
		h.restore(s.hooks[i])
	}
}

// restoreWG rewinds one WG: an IR WG's interpreter frame is copied back
// into place, a closure WG's program goroutine is rebuilt when the saved
// position differs from the live one.
func (m *Machine) restoreWG(w *WG, ws *wgSnap) {
	if ws.frame != nil || w.frame != nil {
		// IR path: the program position is plain data. A snapshot from
		// before the WG started has no frame; runStartBody recreates it.
		if ws.frame == nil {
			w.frame = nil
		} else {
			if w.frame == nil {
				m.startIRFrame(w)
			}
			w.frame.pc = ws.frame.pc
			w.frame.dst = ws.frame.dst
			copy(w.frame.regs, ws.frame.regs)
		}
		w.live = ws.live
		m.restoreWGFields(w, ws)
		return
	}
	// Goroutine surgery first: a live goroutine already at the saved
	// position (first restore after a snapshot) is kept; anything else is
	// aborted and, if the snapshot had a live goroutine, replayed back into
	// position from the response log.
	inPlace := w.live && ws.live && w.respCount == ws.respCount
	if w.live && !inPlace {
		w.resp <- response{abort: true}
		w.live = false
	}
	m.restoreWGFields(w, ws)
	if ws.live && !inPlace {
		m.respawnWG(w, ws.respCount)
	}
}

// restoreWGFields copies the path-independent WG fields from a snapshot.
func (m *Machine) restoreWGFields(w *WG, ws *wgSnap) {
	w.state = ws.state
	w.cu = ws.cu
	w.parked = append(w.parked[:0], ws.parked...)
	w.queueSeq = ws.queueSeq
	w.readyWhenSaved = ws.readyWhenSaved
	w.PolicyData = ws.policyData
	if ws.epState != nil {
		ws.policyData.(EpisodeState).LoadEpisode(ws.epState)
	}
	w.waiting = ws.waiting
	w.waitVar, w.waitWant, w.waitCmp, w.waitBegan = ws.waitVar, ws.waitWant, ws.waitCmp, ws.waitBegan
	w.stalled = ws.stalled
	w.phaseStart = ws.phaseStart
	w.runningCycles = ws.runningCycles
	w.waitingCycles = ws.waitingCycles
	w.started = ws.started
	w.finished = ws.finished
	w.forcePreempted = ws.forcePreempted
	// The log is append-only and its content deterministic, so rewinding is
	// a truncation; a later-state restore after a replay regenerated the
	// same entries finds them already in place.
	if len(w.respLog) > ws.respCount {
		w.respLog = w.respLog[:ws.respCount]
	}
	w.respCount = ws.respCount
}

// respawnWG rebuilds w's program goroutine at position k: the deterministic
// program re-runs from the top, each of its first k requests is discarded
// and answered from the response log, and the (k+1)-th request — the one
// that was in flight at the snapshot — is consumed, leaving the goroutine
// blocked awaiting the response event already on the restored calendar.
func (m *Machine) respawnWG(w *WG, k int) {
	if len(w.respLog) < k {
		capped := ""
		if w.respLogCapped {
			capped = fmt.Sprintf(" (log dropped entries at the %d-response RespLogCap)", m.cfg.respLogCap())
		}
		panic(fmt.Sprintf("gpu: restoring %v needs %d logged responses, have %d%s; enable response logging before the run", w, k, len(w.respLog), capped))
	}
	w.live = true
	m.spawnBody(w)
	for i := 0; i < k; i++ {
		<-w.req
		w.resp <- response{val: w.respLog[i]}
	}
	<-w.req
}

// snapRingSize bounds the time-travel ring: the newest few periodic
// snapshots are enough to find one just before the stall.
const snapRingSize = 4

// pushRingSnapshot appends a periodic snapshot, dropping the oldest beyond
// the ring size.
func (m *Machine) pushRingSnapshot() {
	sn := m.Snapshot()
	if len(m.snapRing) == snapRingSize {
		copy(m.snapRing, m.snapRing[1:])
		m.snapRing[snapRingSize-1] = sn
		return
	}
	m.snapRing = append(m.snapRing, sn)
}

// replayTrace re-executes the window before a diagnosed stall with tracing
// enabled and renders the timeline: the machine rewinds to the newest ring
// snapshot at or before the last progress event, runs to the diagnosis
// cycle recording every scheduling event, then restores its end state. The
// replay is cycle- and seq-identical to the original run (the watchdog and
// ring closures consume identical engine state under m.replaying), except
// that a JitterCP window replays against the jitter stream's advanced state
// — acceptable for a diagnostic artifact.
func (m *Machine) replayTrace() string {
	diag := m.diag
	endSnap := m.Snapshot()
	pick := m.snapRing[0]
	for _, sn := range m.snapRing {
		if uint64(sn.Now()) <= diag.LastProgress {
			pick = sn
		}
	}
	rec := trace.NewRecorder(100_000)
	oldTracer := m.tracer
	m.replaying = true
	m.Restore(pick)
	m.tracer = rec
	m.RunTo(event.Cycle(diag.AtCycle))
	m.tracer = oldTracer
	m.Restore(endSnap)
	m.replaying = false
	var b strings.Builder
	fmt.Fprintf(&b, "replay of cycles %d..%d (%s):\n", uint64(pick.Now()), diag.AtCycle, rec.Signature())
	b.WriteString(rec.Timeline(100))
	return b.String()
}
