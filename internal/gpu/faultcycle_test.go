package gpu

import (
	"testing"

	"awgsim/internal/event"
	"awgsim/internal/mem"
)

// TestRepeatedPreemptRestoreAccounting flaps both CUs through six
// loss/restore rounds at odd strides — landing preemptions mid-atomic and
// mid-context-switch — on an oversubscribed launch with a real LDS
// footprint, then checks every CU's resource pools (WG slots, wavefront
// slots, LDS) drained back to exactly their configured capacity.
func TestRepeatedPreemptRestoreAccounting(t *testing.T) {
	const flag = mem.Addr(0x8000)
	cfg := testConfig() // 2 CUs, 4 WGs/CU
	spec := &KernelSpec{
		Name: "flap-accounting", NumWGs: 16, WIsPerWG: 64, LDSBytes: 1024,
		Program: func(d Device) {
			if d.ID() == 0 {
				d.Compute(120_000)
				d.AtomicStore(GlobalVar(flag), 1)
				return
			}
			d.Compute(1_000)
			d.AwaitEq(GlobalVar(flag), 1)
		},
	}
	m := newTestMachine(t, cfg, spec, &yieldPolicy{})
	// Odd, co-prime strides so the outages drift across every phase of the
	// atomic and context-switch pipelines over the rounds. The two CUs'
	// outages briefly overlap in some rounds; both restores always land
	// within a few thousand cycles, far inside the progress window.
	eng := m.Engine()
	for i := 0; i < 6; i++ {
		at := event.Cycle(5_000 + 17_123*i)
		eng.At(at, func() { m.PreemptCU(1) })
		eng.At(at+7_919, func() { m.RestoreCU(1) })
		eng.At(at+3_557, func() { m.PreemptCU(0) })
		eng.At(at+9_973, func() { m.RestoreCU(0) })
	}
	res := m.Run()
	if res.Deadlocked {
		t.Fatalf("deadlocked under repeated preempt/restore: %v", res.Diagnosis)
	}
	if res.Completed != 16 {
		t.Fatalf("completed %d WGs, want 16", res.Completed)
	}
	if res.SwitchesOut == 0 {
		t.Fatal("flapping CUs recorded no context switches")
	}
	if got := m.EnabledCUs(); got != cfg.NumCUs {
		t.Fatalf("EnabledCUs = %d, want %d", got, cfg.NumCUs)
	}
	for id := 0; id < cfg.NumCUs; id++ {
		cu := m.sched.cu(CUID(id))
		if !cu.enabled {
			t.Errorf("cu%d left disabled", id)
		}
		if cu.wgSlots != cfg.MaxWGsPerCU {
			t.Errorf("cu%d wgSlots = %d, want %d", id, cu.wgSlots, cfg.MaxWGsPerCU)
		}
		if cu.wfSlots != cfg.wfSlotsPerCU() {
			t.Errorf("cu%d wfSlots = %d, want %d", id, cu.wfSlots, cfg.wfSlotsPerCU())
		}
		if cu.ldsFree != cfg.LDSPerCU {
			t.Errorf("cu%d ldsFree = %d, want %d", id, cu.ldsFree, cfg.LDSPerCU)
		}
		if len(cu.resident) != 0 {
			t.Errorf("cu%d still hosts %d WGs", id, len(cu.resident))
		}
	}
}
