package gpu

import "fmt"

// ExecMode selects how kernels carrying a program IR execute (closure-only
// kernels always run on the goroutine path).
type ExecMode int

const (
	// ExecIR (the default) runs IR kernels through the machine's inline
	// interpreter: no goroutine, no channel rendezvous per device op.
	ExecIR ExecMode = iota
	// ExecGoroutine forces the legacy path: every kernel runs as a Go
	// closure on its own goroutine (IR kernels via the gpu.ExecIRProgram
	// adapter). The compatibility fallback and differential-testing oracle.
	ExecGoroutine
)

// Config describes the machine, defaulting to the paper's Table 1 baseline.
type Config struct {
	NumCUs            int // 8
	SIMDsPerCU        int // 2
	SIMDWidth         int // 64
	WavefrontsPerSIMD int // 20
	MaxWGsPerCU       int // occupancy cap; sets L, the WGs per CU of Table 2
	LDSPerCU          int // local data share capacity per CU

	SyncThreadsLatency uint64 // intra-WG barrier cost, cycles
	PollOverhead       uint64 // loop overhead between busy-wait retries
	DispatchLatency    uint64 // dispatcher cost per WG start
	CPLatency          uint64 // CP firmware cost per context switch leg

	MaxCycles      uint64 // hard simulation cap
	ProgressWindow uint64 // deadlock watchdog: max cycles without progress
	// MaxEvents caps total engine events (0 = off): the backstop against
	// zero-delay livelocks that never advance the simulated clock, which
	// neither MaxCycles nor the progress watchdog can terminate.
	MaxEvents uint64
	// SnapshotEvery, when non-zero, keeps a ring of periodic machine
	// snapshots (and the response log that makes them restorable) so a
	// diagnosed stall can be replayed from the last pre-stall snapshot with
	// tracing enabled — time-travel debugging for DEADLOCK cells. Costs one
	// logged word per WG response for the whole run; off by default.
	SnapshotEvery uint64

	// Exec selects the execution path for IR kernels; see ExecMode. The two
	// modes are bit-identical in results — pinned by the dual-mode golden
	// comparison — so this only trades speed against the legacy runtime.
	Exec ExecMode

	// RespLogCap bounds each WG's replay-capture log (responses per WG; 0
	// means the default cap). Only the closure path logs responses; once a
	// WG's log fills, further responses are dropped and any later restore
	// needing them fails loudly rather than replaying a truncated log.
	RespLogCap int
}

// defaultRespLogCap bounds replay logs when Config.RespLogCap is zero: one
// million responses per WG (8 MB) — far beyond any fork prefix in the
// experiment suite, small enough that a pathological run can't grow a log
// without bound.
const defaultRespLogCap = 1 << 20

// respLogCap resolves the configured replay-log bound.
func (c Config) respLogCap() int {
	if c.RespLogCap > 0 {
		return c.RespLogCap
	}
	return defaultRespLogCap
}

// DefaultConfig returns the Table 1 machine: 8 CUs, 2 SIMD units of width
// 64, 20 wavefronts per SIMD, with an occupancy cap of 24 WGs per CU
// (L=24 — HeteroSync launches single-wavefront WGs at high occupancy, so
// the 40 wavefront slots and the LDS pool, not this cap, are the physical
// limits; 24 keeps every benchmark's LDS footprint resident).
func DefaultConfig() Config {
	return Config{
		NumCUs:             8,
		SIMDsPerCU:         2,
		SIMDWidth:          64,
		WavefrontsPerSIMD:  20,
		MaxWGsPerCU:        24,
		LDSPerCU:           64 << 10,
		SyncThreadsLatency: 24,
		PollOverhead:       8,
		DispatchLatency:    100,
		CPLatency:          600,
		MaxCycles:          2_000_000_000,
		ProgressWindow:     4_000_000,
	}
}

func (c Config) validate() error {
	switch {
	case c.NumCUs <= 0:
		return fmt.Errorf("gpu: %d CUs", c.NumCUs)
	case c.SIMDsPerCU <= 0 || c.SIMDWidth <= 0 || c.WavefrontsPerSIMD <= 0:
		return fmt.Errorf("gpu: bad SIMD geometry")
	case c.MaxWGsPerCU <= 0:
		return fmt.Errorf("gpu: occupancy cap %d", c.MaxWGsPerCU)
	case c.LDSPerCU <= 0:
		return fmt.Errorf("gpu: LDS capacity %d", c.LDSPerCU)
	case c.MaxCycles == 0:
		return fmt.Errorf("gpu: zero cycle cap")
	case c.ProgressWindow == 0:
		return fmt.Errorf("gpu: zero progress window")
	case c.Exec != ExecIR && c.Exec != ExecGoroutine:
		return fmt.Errorf("gpu: unknown exec mode %d", c.Exec)
	case c.RespLogCap < 0:
		return fmt.Errorf("gpu: negative response-log cap %d", c.RespLogCap)
	}
	return nil
}

// wfSlotsPerCU is the CU's wavefront capacity.
func (c Config) wfSlotsPerCU() int { return c.SIMDsPerCU * c.WavefrontsPerSIMD }

// computeUnit tracks one CU's resource pools. WGs claim a WG slot, their
// wavefront slots, and their LDS allocation while resident.
type computeUnit struct {
	id       CUID
	enabled  bool
	wgSlots  int
	wfSlots  int
	ldsFree  int
	resident map[WGID]*WG
}

func newComputeUnit(id CUID, cfg Config) *computeUnit {
	return &computeUnit{
		id:       id,
		enabled:  true,
		wgSlots:  cfg.MaxWGsPerCU,
		wfSlots:  cfg.wfSlotsPerCU(),
		ldsFree:  cfg.LDSPerCU,
		resident: make(map[WGID]*WG),
	}
}

// canHost reports whether the CU has room for a WG of the given shape.
func (cu *computeUnit) canHost(spec *KernelSpec, simdWidth int) bool {
	return cu.enabled &&
		cu.wgSlots > 0 &&
		cu.wfSlots >= spec.Wavefronts(simdWidth) &&
		cu.ldsFree >= spec.LDSBytes
}

// host claims resources for w. The caller must have checked canHost.
func (cu *computeUnit) host(w *WG, simdWidth int) {
	cu.wgSlots--
	cu.wfSlots -= w.spec.Wavefronts(simdWidth)
	cu.ldsFree -= w.spec.LDSBytes
	cu.resident[w.id] = w
	w.cu = cu.id
}

// release returns w's resources to the pool.
func (cu *computeUnit) release(w *WG, simdWidth int) {
	if _, ok := cu.resident[w.id]; !ok {
		panic(fmt.Sprintf("gpu: releasing %v not resident on cu%d", w, cu.id))
	}
	cu.wgSlots++
	cu.wfSlots += w.spec.Wavefronts(simdWidth)
	cu.ldsFree += w.spec.LDSBytes
	delete(cu.resident, w.id)
	w.cu = NoCU
}
