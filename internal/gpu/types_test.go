package gpu

import (
	"testing"
	"testing/quick"
)

func TestAtomicOpApply(t *testing.T) {
	cases := []struct {
		op          AtomicOp
		old, a, b   int64
		newVal, ret int64
	}{
		{OpAdd, 5, 3, 0, 8, 5},
		{OpAdd, -2, 2, 0, 0, -2},
		{OpExch, 7, 1, 0, 1, 7},
		{OpCAS, 0, 0, 9, 9, 0}, // matches: swap
		{OpCAS, 4, 0, 9, 4, 4}, // mismatch: unchanged
		{OpLoad, 11, 0, 0, 11, 11},
		{OpStore, 11, 3, 0, 3, 11},
	}
	for _, c := range cases {
		newVal, ret := c.op.Apply(c.old, c.a, c.b)
		if newVal != c.newVal || ret != c.ret {
			t.Errorf("%v.Apply(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.op, c.old, c.a, c.b, newVal, ret, c.newVal, c.ret)
		}
	}
}

func TestAtomicOpIsWrite(t *testing.T) {
	if OpLoad.IsWrite() {
		t.Error("OpLoad reported as write")
	}
	for _, op := range []AtomicOp{OpAdd, OpExch, OpCAS, OpStore} {
		if !op.IsWrite() {
			t.Errorf("%v not reported as write", op)
		}
	}
}

func TestAtomicOpStrings(t *testing.T) {
	for op, want := range map[AtomicOp]string{
		OpAdd: "add", OpExch: "exch", OpCAS: "cas", OpLoad: "load", OpStore: "store",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if AtomicOp(99).String() != "?" {
		t.Error("unknown op did not render as ?")
	}
}

func TestUnknownOpApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on unknown op did not panic")
		}
	}()
	AtomicOp(99).Apply(0, 0, 0)
}

func TestCmpTest(t *testing.T) {
	if !CmpEQ.Test(3, 3) || CmpEQ.Test(3, 4) {
		t.Error("CmpEQ wrong")
	}
	if !CmpGE.Test(4, 3) || !CmpGE.Test(3, 3) || CmpGE.Test(2, 3) {
		t.Error("CmpGE wrong")
	}
	if CmpEQ.String() != "==" || CmpGE.String() != ">=" {
		t.Error("Cmp strings wrong")
	}
}

func TestCmpGEImpliesEQAtTarget(t *testing.T) {
	f := func(v int64) bool {
		return !CmpEQ.Test(v, v) == false && CmpGE.Test(v, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScopeAndVarHelpers(t *testing.T) {
	g := GlobalVar(0x100)
	if g.Scope != Global || g.Addr != 0x100 {
		t.Errorf("GlobalVar = %+v", g)
	}
	l := LocalVar(0x200, 3)
	if l.Scope != Local || l.Group != 3 {
		t.Errorf("LocalVar = %+v", l)
	}
	if Global.String() != "global" || Local.String() != "local" {
		t.Error("scope strings wrong")
	}
}

func TestWGStateStrings(t *testing.T) {
	states := map[WGState]string{
		StatePending: "pending", StateResident: "resident",
		StateSwitchingOut: "switching-out", StateSwitchedOut: "switched-out",
		StateReady: "ready", StateSwitchingIn: "switching-in", StateDone: "done",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if WGState(42).String() != "?" {
		t.Error("unknown state did not render as ?")
	}
}

func TestKernelSpecWavefronts(t *testing.T) {
	k := KernelSpec{WIsPerWG: 64}
	if k.Wavefronts(64) != 1 {
		t.Errorf("64 WIs = %d WFs at width 64", k.Wavefronts(64))
	}
	k.WIsPerWG = 65
	if k.Wavefronts(64) != 2 {
		t.Errorf("65 WIs = %d WFs at width 64", k.Wavefronts(64))
	}
	k.WIsPerWG = 1024
	if k.Wavefronts(64) != 16 {
		t.Errorf("1024 WIs = %d WFs", k.Wavefronts(64))
	}
}

func TestKernelSpecContextBytes(t *testing.T) {
	// 64 WIs x 8 VGPRs x 4B + 1 WF x 128 SGPRs x 4B + 1 KB LDS.
	k := KernelSpec{WIsPerWG: 64, VGPRsPerWI: 8, SGPRsPerWF: 128, LDSBytes: 1024}
	want := 64*8*4 + 128*4 + 1024
	if got := k.ContextBytes(64); got != want {
		t.Errorf("ContextBytes = %d, want %d", got, want)
	}
}

func TestKernelSpecValidate(t *testing.T) {
	valid := KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 1, Program: func(Device) {}}
	if err := valid.validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for _, bad := range []KernelSpec{
		{NumWGs: 1, WIsPerWG: 1, Program: func(Device) {}},
		{Name: "k", WIsPerWG: 1, Program: func(Device) {}},
		{Name: "k", NumWGs: 1, Program: func(Device) {}},
		{Name: "k", NumWGs: 1, WIsPerWG: 1},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumCUs = 0
	if err := bad.validate(); err == nil {
		t.Error("zero-CU config accepted")
	}
	bad = DefaultConfig()
	bad.ProgressWindow = 0
	if err := bad.validate(); err == nil {
		t.Error("zero progress window accepted")
	}
	bad = DefaultConfig()
	bad.MaxWGsPerCU = -1
	if err := bad.validate(); err == nil {
		t.Error("negative occupancy cap accepted")
	}
}

func TestComputeUnitAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cu := newComputeUnit(0, cfg)
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, LDSBytes: 1024, Program: func(Device) {}}
	if !cu.canHost(spec, cfg.SIMDWidth) {
		t.Fatal("fresh CU cannot host a 1-WF WG")
	}
	hosted := 0
	for cu.canHost(spec, cfg.SIMDWidth) {
		w := &WG{id: WGID(hosted), spec: spec}
		cu.host(w, cfg.SIMDWidth)
		hosted++
	}
	if hosted != cfg.MaxWGsPerCU {
		t.Fatalf("hosted %d WGs, want occupancy cap %d", hosted, cfg.MaxWGsPerCU)
	}
	// Releasing one makes room for exactly one more.
	w := cu.resident[0]
	cu.release(w, cfg.SIMDWidth)
	if !cu.canHost(spec, cfg.SIMDWidth) {
		t.Fatal("CU full after release")
	}
	if w.cu != NoCU {
		t.Fatal("released WG still assigned a CU")
	}
}

func TestComputeUnitLDSLimit(t *testing.T) {
	cfg := DefaultConfig()
	cu := newComputeUnit(0, cfg)
	big := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, LDSBytes: cfg.LDSPerCU/2 + 1, Program: func(Device) {}}
	cu.host(&WG{id: 0, spec: big}, cfg.SIMDWidth)
	if cu.canHost(big, cfg.SIMDWidth) {
		t.Fatal("two WGs using >half the LDS each both hosted")
	}
}

func TestComputeUnitDoubleReleasePanics(t *testing.T) {
	cfg := DefaultConfig()
	cu := newComputeUnit(0, cfg)
	spec := &KernelSpec{Name: "k", NumWGs: 1, WIsPerWG: 64, Program: func(Device) {}}
	w := &WG{id: 0, spec: spec}
	cu.host(w, cfg.SIMDWidth)
	cu.release(w, cfg.SIMDWidth)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	cu.release(w, cfg.SIMDWidth)
}
