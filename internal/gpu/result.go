package gpu

import (
	"awgsim/internal/event"
	"awgsim/internal/metrics"
)

// Counters aggregates policy- and machine-level scheduling activity.
// Policies increment their own fields through Machine.Count.
type Counters struct {
	SwitchesOut, SwitchesIn uint64
	Stalls                  uint64
	Resumes                 uint64
	WastedResumes           uint64
	Timeouts                uint64
	PredictAll, PredictOne  uint64
	BloomResets             uint64
	LogSpills, LogRejects   uint64
	MaxConditions           int
	MaxWaitingWGs           int
	MaxMonitoredVars        int
	MaxLogEntries           int
}

// result assembles the run's metrics from the machine, the memory system,
// and the atomic pipeline's characterization.
func (m *Machine) result(end event.Cycle) metrics.Result {
	ms := m.mem.Stats()
	res := metrics.Result{
		Benchmark:  m.spec.Name,
		Policy:     m.pol.Name(),
		Deadlocked: m.deadlocked,
		Diagnosis:  m.diag,

		Atomics:      ms.Atomics + ms.LocalAtomics,
		BankWait:     ms.BankWait,
		ContextBytes: ms.ContextBytes,

		SwitchesOut:   m.Count.SwitchesOut,
		SwitchesIn:    m.Count.SwitchesIn,
		Stalls:        m.Count.Stalls,
		Resumes:       m.Count.Resumes,
		WastedResumes: m.Count.WastedResumes,
		Timeouts:      m.Count.Timeouts,
		PredictAll:    m.Count.PredictAll,
		PredictOne:    m.Count.PredictOne,
		BloomResets:   m.Count.BloomResets,
		LogSpills:     m.Count.LogSpills,
		LogRejects:    m.Count.LogRejects,

		MaxConditions:   m.Count.MaxConditions,
		MaxWaitingWGs:   m.Count.MaxWaitingWGs,
		MaxMonitoredVar: m.Count.MaxMonitoredVars,
		MaxLogEntries:   m.Count.MaxLogEntries,

		ContextKB: float64(m.spec.ContextBytes(m.cfg.SIMDWidth)) / 1024,
		MaxWait:   m.maxWait,
	}
	res.Completed = m.kernels[0].completed
	if m.deadlocked {
		res.Cycles = uint64(end)
	} else {
		res.Cycles = uint64(m.kernels[0].doneAt)
	}
	for _, w := range m.wgs {
		res.Breakdown.Running += w.runningCycles
		res.Breakdown.Waiting += w.waitingCycles
	}
	// Table 2 characterization.
	sum := m.atomics.characterization()
	res.SyncVars = sum.syncVars
	res.VarStats = sum.stats
	return res
}
