package syncmon

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversSyncMon pins the field lists of the monitor's stateful
// structs. If one fails, a field was added (or renamed): decide whether it
// is replayable state, teach Snapshot()/Restore() about it, and update the
// list here.
func TestSnapshotCoversSyncMon(t *testing.T) {
	// Covered: cfg (Degrade mutates it), store, waiters, log, maxConds,
	// maxWaiters, maxMonitored, conds. Excluded: m/hash/selector/wake
	// (wiring and stateless helpers), *Scratch (transient per-call buffers,
	// always empty between events).
	syncMon := []string{
		"cfg", "m", "hash", "store", "waiters", "log", "selector", "wake",
		"maxConds", "maxWaiters", "maxMonitored", "conds",
		"metScratch", "wakeScratch", "clsScratch",
	}
	// Covered: everything but stride, which is immutable geometry.
	store := []string{
		"stride", "setEnt", "setLen", "ents", "freeEnt", "wnodes", "freeW",
		"byAddr",
	}
	// Covered in full: the ring is pure replayable state.
	ring := []string{"entries", "dead", "head", "size", "live", "maxLive"}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"syncmon.SyncMon", fieldNames(SyncMon{}), syncMon},
		{"syncmon.condStore", fieldNames(condStore{}), store},
		{"syncmon.MonitorLog", fieldNames(MonitorLog{}), ring},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating Snapshot():\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
