package syncmon

import (
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// Snapshot/Restore for the SyncMon. The condition slab, waiter slab and set
// arrays are flat POD — PR 5's layout makes a snapshot a handful of slice
// copies with no per-entry work. The observe() scratch slices are excluded:
// their contents never survive a call, so they are allocator state, not
// simulated state.

// Snapshot is a point-in-time copy of a SyncMon's simulated state. It is
// immutable after capture and may be restored any number of times, on the
// monitor that produced it.
type Snapshot struct {
	cfg     Config // Ways/WaitListSize mutate under Degrade
	store   storeSnap
	waiters int
	log     logSnap

	maxConds, maxWaiters, maxMonitored int
	conds                              int
}

// Snapshot captures the monitor's mutable state: the condition cache slabs,
// the waiter count, the Monitor Log ring, the (fault-degradable) geometry
// and the high-water marks.
func (s *SyncMon) Snapshot() *Snapshot {
	return &Snapshot{
		cfg:          s.cfg,
		store:        s.store.snapshot(),
		waiters:      s.waiters,
		log:          s.log.snapshot(),
		maxConds:     s.maxConds,
		maxWaiters:   s.maxWaiters,
		maxMonitored: s.maxMonitored,
		conds:        s.conds,
	}
}

// Restore rewinds the monitor to the snapshot.
func (s *SyncMon) Restore(sn *Snapshot) {
	s.cfg = sn.cfg
	s.store.restore(&sn.store)
	s.waiters = sn.waiters
	s.log.restore(&sn.log)
	s.maxConds, s.maxWaiters, s.maxMonitored = sn.maxConds, sn.maxWaiters, sn.maxMonitored
	s.conds = sn.conds
}

// Bytes estimates the snapshot's memory footprint.
func (sn *Snapshot) Bytes() int {
	return 128 + sn.store.bytes() + sn.log.bytes()
}

// storeSnap is a point-in-time copy of a condStore's slabs and index.
type storeSnap struct {
	setEnt  []int32
	setLen  []int32
	ents    []condSlot
	freeEnt int32
	wnodes  []waiterSlot
	freeW   int32
	byAddr  *hashutil.Flat[mem.Addr, addrState]
}

// snapshot copies the store's slabs; stride is construction-immutable and
// stays on the live store.
func (cs *condStore) snapshot() storeSnap {
	return storeSnap{
		setEnt:  append([]int32(nil), cs.setEnt...),
		setLen:  append([]int32(nil), cs.setLen...),
		ents:    append([]condSlot(nil), cs.ents...),
		freeEnt: cs.freeEnt,
		wnodes:  append([]waiterSlot(nil), cs.wnodes...),
		freeW:   cs.freeW,
		byAddr:  cs.byAddr.Clone(),
	}
}

// restore overwrites the store's slabs from the snapshot. The slabs'
// backing arrays are fixed-capacity (pointer stability), so shrinking back
// to the snapshot length reuses them and allocates nothing.
func (cs *condStore) restore(sn *storeSnap) {
	copy(cs.setEnt, sn.setEnt)
	copy(cs.setLen, sn.setLen)
	cs.ents = cs.ents[:len(sn.ents)]
	copy(cs.ents, sn.ents)
	cs.freeEnt = sn.freeEnt
	cs.wnodes = cs.wnodes[:len(sn.wnodes)]
	copy(cs.wnodes, sn.wnodes)
	cs.freeW = sn.freeW
	cs.byAddr.CopyFrom(sn.byAddr)
}

func (sn *storeSnap) bytes() int {
	return 4*(len(sn.setEnt)+len(sn.setLen)) + 40*len(sn.ents) +
		24*len(sn.wnodes) + 24*sn.byAddr.Len()
}

// logSnap is a point-in-time copy of the Monitor Log ring. Only the
// occupied span [head, head+size) is stored, unwrapped: every ring reader
// stays inside that span, so slots outside it are dead storage a restore
// can leave stale. ringCap keeps the live ring's capacity so bytes()
// reports the same footprint a dense copy would.
type logSnap struct {
	ringCap int
	entries []LogEntry // size entries, unwrapped from head
	dead    []bool
	head    int
	size    int
	live    int
	maxLive int
}

func (l *MonitorLog) snapshot() logSnap {
	sn := logSnap{
		ringCap: len(l.entries),
		head:    l.head,
		size:    l.size,
		live:    l.live,
		maxLive: l.maxLive,
	}
	if l.size > 0 {
		sn.entries = make([]LogEntry, l.size)
		sn.dead = make([]bool, l.size)
		for k := 0; k < l.size; k++ {
			idx := (l.head + k) % len(l.entries)
			sn.entries[k] = l.entries[idx]
			sn.dead[k] = l.dead[idx]
		}
	}
	return sn
}

func (l *MonitorLog) restore(sn *logSnap) {
	for k := 0; k < sn.size; k++ {
		idx := (sn.head + k) % len(l.entries)
		l.entries[idx] = sn.entries[k]
		l.dead[idx] = sn.dead[k]
	}
	l.head, l.size, l.live, l.maxLive = sn.head, sn.size, sn.live, sn.maxLive
}

func (sn *logSnap) bytes() int { return 33*sn.ringCap + 24 }
