// Package syncmon implements the paper's Synchronization Monitor: the
// hardware block attached to the GPU L2 that tracks waiting conditions
// (address, expected-value pairs), the waiting-WG list, the monitored bit
// per L2 tag (with line pinning), and the Monitor Log through which the
// structure virtualizes its finite capacity into global memory
// (Section V.A).
//
// The SyncMon observes every atomic at bank-service time. In checking mode
// (MonR/MonNR/AWG) it evaluates waiting conditions against the updated
// value and resumes the number of waiters a ResumeSelector chooses; in
// sporadic mode (MonRS) it wakes every waiter registered on an address the
// moment the address is touched, without checking — the relaxed
// monitor/mwait-style semantics the paper shows to be dominated by
// unnecessary resumes.
package syncmon

import (
	"fmt"

	"awgsim/internal/gpu"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// OpClass coarsely classifies what a waiter will do when resumed: re-try a
// read (every such waiter can succeed at once) or re-try a read-modify-write
// acquire (only one can succeed). The MinResume oracle keys off this.
type OpClass int

const (
	ClassLoad OpClass = iota
	ClassRMW
)

// ClassOf maps an atomic op to its class.
func ClassOf(op gpu.AtomicOp) OpClass {
	if op == gpu.OpLoad {
		return ClassLoad
	}
	return ClassRMW
}

// ResumeSelector decides how many of a met condition's waiters resume.
// AWG's Bloom-filter predictor, the fixed all/one policies, and the oracle
// all implement this.
type ResumeSelector interface {
	// ObserveUpdate is called for every write-class atomic applied to a
	// monitored address.
	ObserveUpdate(addr mem.Addr, newVal int64)
	// Select returns how many of the condition's waiters to resume, in
	// [1, waiters]. classes lists the waiters' op classes in queue order.
	Select(addr mem.Addr, want int64, classes []OpClass) int
	// AddressUnmonitored is called when an address loses its last waiting
	// condition, letting predictors reset per-address state.
	AddressUnmonitored(addr mem.Addr)
}

// RegisterResult reports where a waiter's condition landed.
type RegisterResult int

const (
	// Registered: the condition and waiter fit in the SyncMon cache.
	Registered RegisterResult = iota
	// Spilled: SyncMon capacity was exhausted; the entry went to the
	// Monitor Log and the CP will check it periodically.
	Spilled
	// Rejected: the Monitor Log is full too. Per the paper's Mesa
	// semantics the WG does not enter a waiting state and must retry its
	// waiting atomic.
	Rejected
)

func (r RegisterResult) String() string {
	switch r {
	case Registered:
		return "registered"
	case Spilled:
		return "spilled"
	default:
		return "rejected"
	}
}

// Config sizes the SyncMon per Section V.C: a 4-way, 256-set condition
// cache (1024 conditions) and a 512-entry waiting-WG list.
type Config struct {
	Sets         int // condition cache sets (256)
	Ways         int // condition cache ways (4)
	WaitListSize int // waiting WG list capacity (512)
	LogCapacity  int // Monitor Log entries (circular buffer in memory)
	Seed         uint64
	Sporadic     bool // wake on any access without checking conditions
}

// DefaultConfig returns the paper's geometry.
func DefaultConfig() Config {
	return Config{Sets: 256, Ways: 4, WaitListSize: 512, LogCapacity: 4096, Seed: 0x5eed}
}

// WakeFunc delivers a resume notification to the scheduling policy. met
// reports whether the SyncMon verified the waiter's condition (false for
// sporadic notifications, which are hints in the Mesa sense).
type WakeFunc func(wg gpu.WGID, addr mem.Addr, want int64, met bool)

type waiter struct {
	wg    gpu.WGID
	class OpClass
}

// LogEntry is one spilled waiting condition: "the monitored address, the
// waiting value, and the waiting WG ID".
type LogEntry struct {
	Addr mem.Addr
	Want int64
	Cmp  gpu.Cmp
	WG   gpu.WGID
}

// MonitorLog is the circular buffer in global memory the SyncMon spills to
// and the CP drains.
type MonitorLog struct {
	entries []LogEntry
	dead    []bool
	head    int
	size    int // occupied ring slots, tombstones included (gates Push)
	live    int // non-tombstoned entries
	maxLive int // high-water mark of live
}

// NewMonitorLog builds a log with the given capacity.
func NewMonitorLog(capacity int) *MonitorLog {
	return &MonitorLog{entries: make([]LogEntry, capacity), dead: make([]bool, capacity)}
}

// Push appends an entry; it reports false when the log is full.
func (l *MonitorLog) Push(e LogEntry) bool {
	if l.size == len(l.entries) {
		return false
	}
	tail := (l.head + l.size) % len(l.entries)
	l.entries[tail] = e
	l.dead[tail] = false
	l.size++
	l.live++
	if l.live > l.maxLive {
		l.maxLive = l.live
	}
	return true
}

// Pop removes and returns the oldest live entry.
func (l *MonitorLog) Pop() (LogEntry, bool) {
	for l.size > 0 {
		e, dead := l.entries[l.head], l.dead[l.head]
		l.head = (l.head + 1) % len(l.entries)
		l.size--
		if !dead {
			l.live--
			return e, true
		}
	}
	return LogEntry{}, false
}

// Len reports the live entry count; tombstoned entries still occupy ring
// slots (and gate Push) but are not waiting conditions and do not count.
func (l *MonitorLog) Len() int { return l.live }

// MaxLen reports the high-water mark of live entries.
func (l *MonitorLog) MaxLen() int { return l.maxLive }

// Remove tombstones all live entries for the given waiter/condition (used
// when a waiter's timeout fires before the CP drains it) and reports how
// many it tombstoned — zero tells the caller the entry is not in the ring
// (already popped into a drain batch, or never spilled).
func (l *MonitorLog) Remove(wg gpu.WGID, addr mem.Addr, want int64) int {
	removed := 0
	for i := 0; i < l.size; i++ {
		idx := (l.head + i) % len(l.entries)
		e := l.entries[idx]
		if !l.dead[idx] && e.WG == wg && e.Addr == addr && e.Want == want {
			l.dead[idx] = true
			l.live--
			removed++
		}
	}
	return removed
}

// SyncMon is the monitor block. It subscribes to the machine's atomic
// stream and owns the condition cache, waiting list and Monitor Log.
type SyncMon struct {
	cfg      Config
	m        *gpu.Machine
	hash     hashutil.Universal
	store    condStore // slab-backed condition cache + address index
	waiters  int       // total waiters in the cache
	log      *MonitorLog
	selector ResumeSelector
	wake     WakeFunc

	// High-water marks for Figure 13 / the hardware-overhead analysis.
	maxConds, maxWaiters, maxMonitored int
	conds                              int

	// observe() scratch, reused across calls: a hot barrier's release makes
	// the wake fan-out fire on every update, so it must not allocate.
	metScratch  []int32   //lint:allow snapcover reusable observe scratch, dead between calls
	wakeScratch []wakeup  //lint:allow snapcover reusable observe scratch, dead between calls
	clsScratch  []OpClass //lint:allow snapcover reusable observe scratch, dead between calls
}

// wakeup is one pending resume collected during an observe pass; wakes are
// delivered after all condition bookkeeping so callbacks see settled state.
type wakeup struct {
	wt   waiter
	want int64
}

// New builds a SyncMon on machine m. selector picks resume counts in
// checking mode (ignored when cfg.Sporadic); wake delivers notifications.
func New(cfg Config, m *gpu.Machine, selector ResumeSelector, wake WakeFunc) (*SyncMon, error) {
	if cfg.Sets < 0 || cfg.Ways <= 0 || cfg.WaitListSize < 0 || cfg.LogCapacity <= 0 {
		return nil, fmt.Errorf("syncmon: bad config %+v", cfg)
	}
	s := &SyncMon{
		cfg:      cfg,
		m:        m,
		hash:     hashutil.NewUniversal(cfg.Seed, max(cfg.Sets, 1)),
		store:    newCondStore(max(cfg.Sets, 1), cfg.Ways, cfg.WaitListSize),
		log:      NewMonitorLog(cfg.LogCapacity),
		selector: selector,
		wake:     wake,
	}
	m.OnAtomicApply(s.observe)
	return s, nil
}

// Degrade shrinks the condition cache to newWays ways per set and the
// waiting-WG list to newWaitList entries, modelling a mid-run capacity
// fault (fault injection). Entries and waiters beyond the new capacity are
// evicted youngest-first and spilled to the Monitor Log; when even the log
// is full, the displaced waiter is woken unchecked (met=false, a Mesa-style
// hint) so nobody is stranded — its retry re-registers or falls back to its
// policy timeout. Growing capacity is ignored: faults only take away.
func (s *SyncMon) Degrade(newWays, newWaitList int) {
	if newWays < 1 {
		newWays = 1
	}
	if newWaitList < 0 {
		newWaitList = 0
	}
	type displaced struct {
		wt   waiter
		addr mem.Addr
		want int64
		cmp  gpu.Cmp
	}
	var out []displaced
	if newWays < s.cfg.Ways {
		s.cfg.Ways = newWays
		for si := range s.store.setLen {
			for s.store.setSize(si) > newWays {
				// Evict the youngest entry of the overfull set (the last way).
				e := s.store.setEnt[si*s.store.stride+s.store.setSize(si)-1]
				c := s.store.at(e)
				for w := c.wHead; w != nilRef; w = s.store.wnodes[w].next {
					out = append(out, displaced{s.store.wnodes[w].wt, c.addr, c.want, c.cmp})
				}
				s.waiters -= s.store.clearWaiters(e)
				s.dropEntry(e)
			}
		}
	}
	if newWaitList < s.cfg.WaitListSize {
		s.cfg.WaitListSize = newWaitList
		// Shed the youngest waiters (walking sets in order, entries back to
		// front) until the list fits.
		for si := range s.store.setLen {
			if s.waiters <= newWaitList {
				break
			}
			for i := s.store.setSize(si) - 1; i >= 0 && s.waiters > newWaitList; i-- {
				e := s.store.setEnt[si*s.store.stride+i]
				c := s.store.at(e)
				for c.wLen > 0 && s.waiters > newWaitList {
					wt := s.store.shedTailWaiter(e)
					s.waiters--
					out = append(out, displaced{wt, c.addr, c.want, c.cmp})
				}
				if c.wLen == 0 {
					s.dropEntry(e)
				}
			}
		}
	}
	for _, d := range out {
		if s.spill(d.wt.wg, d.addr, d.want, d.cmp) == Rejected {
			s.wake(d.wt.wg, d.addr, d.want, false)
		}
	}
}

// Log exposes the Monitor Log for the Command Processor to drain.
func (s *SyncMon) Log() *MonitorLog { return s.log }

// setIndex hashes (addr, want) per Section V.C: the word address is shifted
// up and ORed with the waiting value, then universally hashed into a set.
func (s *SyncMon) setIndex(addr mem.Addr, want int64) int {
	key := uint64(addr>>3)<<8 | uint64(want)&0xff
	return s.hash.Hash(key)
}

func (s *SyncMon) findEntry(addr mem.Addr, want int64, cmp gpu.Cmp) int32 {
	return s.store.find(s.setIndex(addr, want), addr, want, cmp)
}

// Register records wg as waiting for mem[v.Addr] == want. Called at bank
// service time of a failing waiting atomic (race-free) or of a wait
// instruction's arm (with the window of vulnerability upstream).
func (s *SyncMon) Register(wg gpu.WGID, v gpu.Var, want int64, cmp gpu.Cmp, class OpClass) RegisterResult {
	addr := v.Addr.WordAligned()
	if s.cfg.Sets == 0 || s.cfg.WaitListSize == 0 {
		return s.spill(wg, addr, want, cmp)
	}
	si := s.setIndex(addr, want)
	e := s.store.find(si, addr, want, cmp)
	if e == nilRef {
		if s.store.setSize(si) >= s.cfg.Ways {
			return s.spill(wg, addr, want, cmp)
		}
		var first bool
		e, first = s.store.insert(si, addr, want, cmp)
		s.conds++
		if first {
			s.m.Mem().L2().Pin(addr)
		}
		s.noteHighWater()
	}
	if s.waiters >= s.cfg.WaitListSize {
		if s.store.at(e).wLen == 0 {
			s.dropEntry(e)
		}
		return s.spill(wg, addr, want, cmp)
	}
	s.store.pushWaiter(e, waiter{wg: wg, class: class})
	s.waiters++
	s.noteHighWater()
	return Registered
}

func (s *SyncMon) spill(wg gpu.WGID, addr mem.Addr, want int64, cmp gpu.Cmp) RegisterResult {
	if !s.log.Push(LogEntry{Addr: addr, Want: want, Cmp: cmp, WG: wg}) {
		s.m.Count.LogRejects++
		return Rejected
	}
	s.m.Count.LogSpills++
	if s.log.MaxLen() > s.m.Count.MaxLogEntries {
		s.m.Count.MaxLogEntries = s.log.MaxLen()
	}
	return Spilled
}

// Unregister removes wg's condition from the cache, reporting whether it
// was found there; used when a policy-side timeout ends the wait. A waiter
// lives in exactly one place — the cache or (spilled) the log/CP side — so
// on a cache hit the caller must NOT also unregister with the CP: doing so
// would plant a stale tombstone that silently swallows the WG's next spill
// on the same condition (a lost wakeup).
func (s *SyncMon) Unregister(wg gpu.WGID, v gpu.Var, want int64, cmp gpu.Cmp) bool {
	addr := v.Addr.WordAligned()
	e := s.findEntry(addr, want, cmp)
	if e == nilRef {
		return false
	}
	found := s.store.removeWaiter(e, wg)
	if found {
		s.waiters--
	}
	if s.store.at(e).wLen == 0 {
		s.dropEntry(e)
	}
	return found
}

// dropEntry frees a condition entry and unpins/unmonitors as needed.
func (s *SyncMon) dropEntry(e int32) {
	addr, last := s.store.drop(e)
	s.conds--
	if last {
		s.m.Mem().L2().Unpin(addr)
		s.selector.AddressUnmonitored(addr)
	}
}

// observe is the machine's atomic-apply hook: the monitored-bit check at
// the L2 bank.
func (s *SyncMon) observe(by *gpu.WG, v gpu.Var, op gpu.AtomicOp, old, new int64) {
	addr := v.Addr.WordAligned()
	head := s.store.addrHead(addr)
	if head == nilRef {
		return
	}
	if s.cfg.Sporadic {
		// Any access to a monitored address resumes every registered
		// waiter, unchecked ("sporadic" notifications).
		s.wakeAllOnAddr(addr)
		return
	}
	if !op.IsWrite() {
		// Only updates re-check conditions (Figure 12 step 3 passes the
		// *updated* value). A condition that was already true at a waiting
		// atomic's bank instant never registers, so no wake-up is lost by
		// ignoring reads — but a resume-one policy's remaining waiters
		// must wait for another matching update or their timeout, the
		// paper's stated deficiency of MonNR-One at barriers.
		return
	}
	s.selector.ObserveUpdate(addr, new)
	met := s.metScratch[:0]
	for e := head; e != nilRef; e = s.store.at(e).addrNext {
		c := s.store.at(e)
		if c.wLen > 0 && c.cmp.Test(new, c.want) {
			met = append(met, e)
		}
	}
	wakeups := s.wakeScratch[:0]
	for _, e := range met {
		c := s.store.at(e)
		classes := s.clsScratch[:0]
		for w := c.wHead; w != nilRef; w = s.store.wnodes[w].next {
			classes = append(classes, s.store.wnodes[w].wt.class)
		}
		s.clsScratch = classes
		n := s.selector.Select(addr, c.want, classes)
		if n < 1 {
			n = 1
		}
		if n > int(c.wLen) {
			n = int(c.wLen)
		}
		want := c.want
		for i := 0; i < n; i++ {
			wakeups = append(wakeups, wakeup{s.store.popWaiter(e), want})
		}
		s.waiters -= n
		if c.wLen == 0 {
			s.dropEntry(e)
		}
	}
	s.metScratch = met[:0]
	s.wakeScratch = wakeups[:0]
	for _, wu := range wakeups {
		s.wake(wu.wt.wg, addr, wu.want, true)
	}
}

// wakeAllOnAddr implements sporadic notification: every waiter on every
// condition of addr resumes, unchecked. The walk is set-major (set scan
// order, not registration order), matching the historical wake sequence.
func (s *SyncMon) wakeAllOnAddr(addr mem.Addr) {
	var resumed []waiter
	var wants []int64
	var emptied []int32
	for si := range s.store.setLen {
		base := si * s.store.stride
		for j := 0; j < s.store.setSize(si); j++ {
			e := s.store.setEnt[base+j]
			c := s.store.at(e)
			if c.addr != addr {
				continue
			}
			for w := c.wHead; w != nilRef; w = s.store.wnodes[w].next {
				resumed = append(resumed, s.store.wnodes[w].wt)
				wants = append(wants, c.want)
			}
			s.waiters -= s.store.clearWaiters(e)
			emptied = append(emptied, e)
		}
	}
	// Drop entries after the walk; drop splices the set arrays, so doing it
	// mid-walk would shift unvisited entries under the index.
	for _, e := range emptied {
		s.dropEntry(e)
	}
	for i, wt := range resumed {
		s.wake(wt.wg, addr, wants[i], false)
	}
}

// Waiters reports the current waiting-WG list occupancy.
func (s *SyncMon) Waiters() int { return s.waiters }

// Conditions reports the current condition cache occupancy.
func (s *SyncMon) Conditions() int { return s.conds }

// MonitoredAddrs reports how many distinct addresses are monitored.
func (s *SyncMon) MonitoredAddrs() int { return s.store.monitoredAddrs() }

func (s *SyncMon) noteHighWater() {
	if s.conds > s.maxConds {
		s.maxConds = s.conds
	}
	if s.waiters > s.maxWaiters {
		s.maxWaiters = s.waiters
	}
	if n := s.store.monitoredAddrs(); n > s.maxMonitored {
		s.maxMonitored = n
	}
	if s.maxConds > s.m.Count.MaxConditions {
		s.m.Count.MaxConditions = s.maxConds
	}
	if s.maxWaiters > s.m.Count.MaxWaitingWGs {
		s.m.Count.MaxWaitingWGs = s.maxWaiters
	}
	if s.maxMonitored > s.m.Count.MaxMonitoredVars {
		s.m.Count.MaxMonitoredVars = s.maxMonitored
	}
}
