package syncmon

import (
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// oCond is the oracle's view of one cached condition: the tag, its set,
// and its waiter FIFO.
type oCond struct {
	set  int
	addr mem.Addr
	want int64
	cmp  gpu.Cmp
	ws   []waiter
}

// condOracle mirrors condStore semantics with plain Go slices and a map —
// essentially the pre-slab representation — so a fuzzer can drive both
// through one op stream and diff every observable: set occupancy and
// insertion order, per-address registration chains, waiter FIFOs, and the
// monitored-address count.
type condOracle struct {
	sets   [][]*oCond            // per-set, insertion order
	byAddr map[mem.Addr][]*oCond // per-address, registration order
}

func (o *condOracle) insert(si int, addr mem.Addr, want int64, cmp gpu.Cmp) (oc *oCond, first bool) {
	oc = &oCond{set: si, addr: addr, want: want, cmp: cmp}
	first = len(o.byAddr[addr]) == 0
	o.sets[si] = append(o.sets[si], oc)
	o.byAddr[addr] = append(o.byAddr[addr], oc)
	return oc, first
}

func (o *condOracle) drop(oc *oCond) (last bool) {
	o.sets[oc.set] = spliceOut(o.sets[oc.set], oc)
	chain := spliceOut(o.byAddr[oc.addr], oc)
	if len(chain) == 0 {
		delete(o.byAddr, oc.addr)
		return true
	}
	o.byAddr[oc.addr] = chain
	return false
}

func spliceOut(s []*oCond, oc *oCond) []*oCond {
	for i, c := range s {
		if c == oc {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// checkMirror diffs every observable of cs against the oracle.
func checkMirror(t *testing.T, cs *condStore, o *condOracle, live []*oCond, refs []int32) {
	t.Helper()
	if cs.monitoredAddrs() != len(o.byAddr) {
		t.Fatalf("monitoredAddrs = %d, oracle %d", cs.monitoredAddrs(), len(o.byAddr))
	}
	for si := range o.sets {
		if cs.setSize(si) != len(o.sets[si]) {
			t.Fatalf("set %d size = %d, oracle %d", si, cs.setSize(si), len(o.sets[si]))
		}
		for i, oc := range o.sets[si] {
			c := cs.at(cs.setEnt[si*cs.stride+i])
			if c.addr != oc.addr || c.want != oc.want || c.cmp != oc.cmp {
				t.Fatalf("set %d way %d = (%d,%d,%v), oracle (%d,%d,%v)",
					si, i, c.addr, c.want, c.cmp, oc.addr, oc.want, oc.cmp)
			}
		}
	}
	// Address chains must list conditions in registration order. The finite
	// address space is enumerated directly (not by ranging the oracle map)
	// to keep failure output deterministic.
	for a := mem.Addr(0); a < 6*4; a += 4 {
		chain := o.byAddr[a]
		e := cs.addrHead(a)
		for i, oc := range chain {
			if e == nilRef {
				t.Fatalf("addr %d chain ends at %d, oracle has %d", a, i, len(chain))
			}
			c := cs.at(e)
			if c.addr != oc.addr || c.want != oc.want || c.cmp != oc.cmp {
				t.Fatalf("addr %d chain[%d] = (%d,%d,%v), oracle (%d,%d,%v)",
					a, i, c.addr, c.want, c.cmp, oc.addr, oc.want, oc.cmp)
			}
			e = c.addrNext
		}
		if e != nilRef {
			t.Fatalf("addr %d chain longer than oracle's %d", a, len(chain))
		}
	}
	// Waiter FIFOs, per live condition.
	for i, oc := range live {
		c := cs.at(refs[i])
		if int(c.wLen) != len(oc.ws) {
			t.Fatalf("cond (%d,%d,%v) wLen = %d, oracle %d", oc.addr, oc.want, oc.cmp, c.wLen, len(oc.ws))
		}
		w := c.wHead
		for j, want := range oc.ws {
			if cs.wnodes[w].wt != want {
				t.Fatalf("cond (%d,%d,%v) waiter[%d] = %+v, oracle %+v",
					oc.addr, oc.want, oc.cmp, j, cs.wnodes[w].wt, want)
			}
			w = cs.wnodes[w].next
		}
		if w != nilRef {
			t.Fatalf("cond (%d,%d,%v) waiter list longer than oracle's %d", oc.addr, oc.want, oc.cmp, len(oc.ws))
		}
	}
}

// FuzzCondStore drives the slab condition store and the map/slice oracle
// through one byte-encoded op stream and diffs every observable after each
// op: a divergence in set order, chain order, waiter FIFO order, freelist
// reuse, or any returned value fails with the op position in hand.
func FuzzCondStore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 8, 1, 1, 2, 2, 0, 3, 0})
	f.Add([]byte{0, 1, 1, 1, 2, 0, 5, 2, 2, 1, 3, 0, 4, 0, 5, 0, 7, 6, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const sets, ways = 4, 2
		cs := newCondStore(sets, ways, 8)
		o := condOracle{sets: make([][]*oCond, sets), byAddr: map[mem.Addr][]*oCond{}}
		var live []*oCond
		var refs []int32
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		pick := func() int { return int(next()) % len(live) }
		for pos < len(data) {
			switch op := next(); op % 8 {
			case 0: // insert, guarded exactly as SyncMon guards it
				si := int(next()) % sets
				addr := mem.Addr(next()%6) * 4
				want := int64(next() % 3)
				cmp := gpu.Cmp(next() % 2)
				if cs.setSize(si) >= ways || cs.find(si, addr, want, cmp) != nilRef {
					continue
				}
				e, first := cs.insert(si, addr, want, cmp)
				oc, ofirst := o.insert(si, addr, want, cmp)
				if first != ofirst {
					t.Fatalf("pos %d: insert firstOnAddr = %v, oracle %v", pos, first, ofirst)
				}
				live = append(live, oc)
				refs = append(refs, e)
			case 1: // drop
				if len(live) == 0 {
					continue
				}
				i := pick()
				addr, last := cs.drop(refs[i])
				oc := live[i]
				if olast := o.drop(oc); addr != oc.addr || last != olast {
					t.Fatalf("pos %d: drop = (%d,%v), oracle (%d,%v)", pos, addr, last, oc.addr, olast)
				}
				live = append(live[:i], live[i+1:]...)
				refs = append(refs[:i], refs[i+1:]...)
			case 2: // pushWaiter
				if len(live) == 0 {
					continue
				}
				i := pick()
				wt := waiter{wg: gpu.WGID(next() % 16), class: OpClass(next() % 2)}
				cs.pushWaiter(refs[i], wt)
				live[i].ws = append(live[i].ws, wt)
			case 3: // popWaiter (oldest)
				if len(live) == 0 {
					continue
				}
				i := pick()
				oc := live[i]
				if len(oc.ws) == 0 {
					continue
				}
				if got := cs.popWaiter(refs[i]); got != oc.ws[0] {
					t.Fatalf("pos %d: popWaiter = %+v, oracle %+v", pos, got, oc.ws[0])
				}
				oc.ws = oc.ws[1:]
			case 4: // shedTailWaiter (youngest)
				if len(live) == 0 {
					continue
				}
				i := pick()
				oc := live[i]
				if len(oc.ws) == 0 {
					continue
				}
				if got := cs.shedTailWaiter(refs[i]); got != oc.ws[len(oc.ws)-1] {
					t.Fatalf("pos %d: shedTailWaiter = %+v, oracle %+v", pos, got, oc.ws[len(oc.ws)-1])
				}
				oc.ws = oc.ws[:len(oc.ws)-1]
			case 5: // removeWaiter by WG (first match)
				if len(live) == 0 {
					continue
				}
				i := pick()
				oc := live[i]
				wg := gpu.WGID(next() % 16)
				want := false
				for j, wt := range oc.ws {
					if wt.wg == wg {
						oc.ws = append(oc.ws[:j], oc.ws[j+1:]...)
						want = true
						break
					}
				}
				if got := cs.removeWaiter(refs[i], wg); got != want {
					t.Fatalf("pos %d: removeWaiter(%d) = %v, oracle %v", pos, wg, got, want)
				}
			case 6: // clearWaiters
				if len(live) == 0 {
					continue
				}
				i := pick()
				oc := live[i]
				if got := cs.clearWaiters(refs[i]); got != len(oc.ws) {
					t.Fatalf("pos %d: clearWaiters = %d, oracle %d", pos, got, len(oc.ws))
				}
				oc.ws = nil
			case 7: // find probe on an arbitrary tag
				si := int(next()) % sets
				addr := mem.Addr(next()%6) * 4
				want := int64(next() % 3)
				cmp := gpu.Cmp(next() % 2)
				e := cs.find(si, addr, want, cmp)
				found := false
				for _, oc := range o.sets[si] {
					if oc.addr == addr && oc.want == want && oc.cmp == cmp {
						found = true
						break
					}
				}
				if (e != nilRef) != found {
					t.Fatalf("pos %d: find(%d,%d,%d,%v) = %d, oracle found=%v", pos, si, addr, want, cmp, e, found)
				}
			}
			checkMirror(t, &cs, &o, live, refs)
		}
	})
}
