package syncmon

import (
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// fakeSelector records calls and returns a fixed count (0 = all).
type fakeSelector struct {
	updates     []int64
	unmonitored []mem.Addr
	fixed       int
}

func (f *fakeSelector) ObserveUpdate(_ mem.Addr, v int64) { f.updates = append(f.updates, v) }
func (f *fakeSelector) AddressUnmonitored(a mem.Addr)     { f.unmonitored = append(f.unmonitored, a) }
func (f *fakeSelector) Select(_ mem.Addr, _ int64, classes []OpClass) int {
	if f.fixed > 0 {
		return f.fixed
	}
	return len(classes)
}

type wakeRec struct {
	wg   gpu.WGID
	addr mem.Addr
	want int64
	met  bool
}

type harness struct {
	m     *gpu.Machine
	sm    *SyncMon
	sel   *fakeSelector
	wakes []wakeRec
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	spec := &gpu.KernelSpec{Name: "noop", NumWGs: 1, WIsPerWG: 64, Program: func(gpu.Device) {}}
	m, err := gpu.NewMachine(gpu.DefaultConfig(), mem.DefaultConfig(), spec, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{m: m, sel: &fakeSelector{}}
	h.sm, err = New(cfg, m, h.sel, func(wg gpu.WGID, addr mem.Addr, want int64, met bool) {
		h.wakes = append(h.wakes, wakeRec{wg, addr, want, met})
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// update applies an atomic write and flushes the event calendar so the
// SyncMon observes it.
func (h *harness) update(a mem.Addr, op gpu.AtomicOp, val int64) {
	h.m.IssueAtomic(nil, gpu.GlobalVar(a), op, val, 0, nil, nil)
	h.m.Engine().Run()
}

type nopPolicy struct{}

func (nopPolicy) Name() string              { return "nop" }
func (nopPolicy) Attach(*gpu.Machine) error { return nil }
func (nopPolicy) Wait(*gpu.WG, gpu.Var, gpu.AtomicOp, int64, int64, int64, gpu.Cmp, gpu.WaitHint, func(int64)) {
}

func TestMonitorLogFIFO(t *testing.T) {
	l := NewMonitorLog(4)
	for i := 0; i < 4; i++ {
		if !l.Push(LogEntry{Addr: mem.Addr(i), WG: gpu.WGID(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if l.Push(LogEntry{}) {
		t.Fatal("push into full log succeeded")
	}
	if l.Len() != 4 || l.MaxLen() != 4 {
		t.Fatalf("len=%d max=%d", l.Len(), l.MaxLen())
	}
	for i := 0; i < 4; i++ {
		e, ok := l.Pop()
		if !ok || e.WG != gpu.WGID(i) {
			t.Fatalf("pop %d = %+v ok=%v", i, e, ok)
		}
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop from empty log succeeded")
	}
}

func TestMonitorLogWraps(t *testing.T) {
	l := NewMonitorLog(3)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !l.Push(LogEntry{WG: gpu.WGID(round*3 + i)}) {
				t.Fatalf("round %d push %d failed", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			e, ok := l.Pop()
			if !ok || e.WG != gpu.WGID(round*3+i) {
				t.Fatalf("round %d pop %d = %+v", round, i, e)
			}
		}
	}
}

func TestMonitorLogRemove(t *testing.T) {
	l := NewMonitorLog(4)
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 5})
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 6})
	if n := l.Remove(5, 8, 1); n != 1 {
		t.Fatalf("Remove tombstoned %d entries, want 1", n)
	}
	e, ok := l.Pop()
	if !ok || e.WG != 6 {
		t.Fatalf("pop after remove = %+v ok=%v, want WG 6", e, ok)
	}
	// A second removal of the same waiter finds nothing: the entry is
	// already dead. Callers (the CP's Unregister) rely on the zero return
	// to tell "still in the ring" from "already popped".
	if n := l.Remove(5, 8, 1); n != 0 {
		t.Fatalf("re-Remove tombstoned %d entries, want 0", n)
	}
}

func TestMonitorLogLenIgnoresTombstones(t *testing.T) {
	l := NewMonitorLog(8)
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 5})
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 6})
	l.Push(LogEntry{Addr: 16, Want: 2, WG: 7})
	if l.Len() != 3 || l.MaxLen() != 3 {
		t.Fatalf("len=%d max=%d, want 3/3", l.Len(), l.MaxLen())
	}
	// Tombstoned entries are not waiting conditions: Len drops, MaxLen
	// keeps the live high-water.
	l.Remove(5, 8, 1)
	if l.Len() != 2 || l.MaxLen() != 3 {
		t.Fatalf("after remove len=%d max=%d, want 2/3", l.Len(), l.MaxLen())
	}
	l.Remove(7, 16, 2)
	if l.Len() != 1 {
		t.Fatalf("after second remove len=%d, want 1", l.Len())
	}
	// A push after removals raises Len but not the high-water (2 < 3).
	l.Push(LogEntry{Addr: 24, Want: 3, WG: 8})
	if l.Len() != 2 || l.MaxLen() != 3 {
		t.Fatalf("after push len=%d max=%d, want 2/3", l.Len(), l.MaxLen())
	}
	// Pops skip the dead entries and account only live ones.
	if e, ok := l.Pop(); !ok || e.WG != 6 {
		t.Fatalf("pop = %+v ok=%v, want WG 6", e, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("after pop len=%d, want 1", l.Len())
	}
	if e, ok := l.Pop(); !ok || e.WG != 8 {
		t.Fatalf("pop = %+v ok=%v, want WG 8", e, ok)
	}
	if l.Len() != 0 {
		t.Fatalf("after draining len=%d, want 0", l.Len())
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop from drained log succeeded")
	}
}

func TestMonitorLogPushGatedByPhysicalSlots(t *testing.T) {
	// Tombstones still occupy ring slots until a pop walks past them, so a
	// physically full ring rejects pushes even when Len is low.
	l := NewMonitorLog(2)
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 1})
	l.Push(LogEntry{Addr: 8, Want: 1, WG: 2})
	l.Remove(1, 8, 1)
	if l.Len() != 1 {
		t.Fatalf("len=%d, want 1", l.Len())
	}
	if l.Push(LogEntry{Addr: 8, Want: 1, WG: 3}) {
		t.Fatal("push into physically full ring succeeded")
	}
	// Popping reclaims the dead slot along with the live one.
	if e, ok := l.Pop(); !ok || e.WG != 2 {
		t.Fatalf("pop = %+v ok=%v, want WG 2", e, ok)
	}
	if !l.Push(LogEntry{Addr: 8, Want: 1, WG: 3}) {
		t.Fatal("push after reclaim failed")
	}
	if l.Len() != 1 || l.MaxLen() != 2 {
		t.Fatalf("len=%d max=%d, want 1/2", l.Len(), l.MaxLen())
	}
}

func TestRegisterAndWakeEQ(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0x100)
	if got := h.sm.Register(3, v, 1, gpu.CmpEQ, ClassLoad); got != Registered {
		t.Fatalf("Register = %v", got)
	}
	if h.sm.Waiters() != 1 || h.sm.Conditions() != 1 || h.sm.MonitoredAddrs() != 1 {
		t.Fatalf("occupancy %d/%d/%d", h.sm.Waiters(), h.sm.Conditions(), h.sm.MonitoredAddrs())
	}
	// A non-matching update does not wake.
	h.update(0x100, gpu.OpStore, 2)
	if len(h.wakes) != 0 {
		t.Fatalf("non-matching update woke %d", len(h.wakes))
	}
	// The matching update wakes with met=true and clears the condition.
	h.update(0x100, gpu.OpStore, 1)
	if len(h.wakes) != 1 || h.wakes[0].wg != 3 || !h.wakes[0].met {
		t.Fatalf("wakes = %+v", h.wakes)
	}
	if h.sm.Waiters() != 0 || h.sm.MonitoredAddrs() != 0 {
		t.Fatal("condition not cleared after wake")
	}
	if len(h.sel.unmonitored) != 1 {
		t.Fatal("selector not told the address is unmonitored")
	}
}

func TestRegisterAndWakeGE(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0x200)
	h.sm.Register(1, v, 10, gpu.CmpGE, ClassLoad)
	h.update(0x200, gpu.OpStore, 9)
	if len(h.wakes) != 0 {
		t.Fatal("GE condition met below target")
	}
	h.update(0x200, gpu.OpStore, 12) // sweeps past 10
	if len(h.wakes) != 1 {
		t.Fatalf("GE condition missed an overshooting update: %+v", h.wakes)
	}
}

func TestLoadsDoNotTriggerChecks(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0x280)
	h.m.Mem().Write(0x280, 5)
	h.sm.Register(1, v, 5, gpu.CmpEQ, ClassLoad)
	h.update(0x280, gpu.OpLoad, 0)
	if len(h.wakes) != 0 {
		t.Fatal("an atomic load triggered a condition check")
	}
}

func TestSelectorControlsResumeCount(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.sel.fixed = 1 // resume-one
	v := gpu.GlobalVar(0x300)
	for i := gpu.WGID(0); i < 4; i++ {
		h.sm.Register(i, v, 7, gpu.CmpEQ, ClassRMW)
	}
	h.update(0x300, gpu.OpStore, 7)
	if len(h.wakes) != 1 {
		t.Fatalf("resume-one woke %d waiters", len(h.wakes))
	}
	if h.wakes[0].wg != 0 {
		t.Fatalf("woke %d, want FIFO head 0", h.wakes[0].wg)
	}
	// The condition stays monitored for the remaining waiters.
	if h.sm.Waiters() != 3 {
		t.Fatalf("waiters after resume-one = %d, want 3", h.sm.Waiters())
	}
	// Another matching update releases the next one.
	h.update(0x300, gpu.OpStore, 7)
	if len(h.wakes) != 2 || h.wakes[1].wg != 1 {
		t.Fatalf("second wake = %+v", h.wakes)
	}
}

func TestSporadicWakesAllUnchecked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sporadic = true
	h := newHarness(t, cfg)
	v := gpu.GlobalVar(0x400)
	h.sm.Register(1, v, 100, gpu.CmpEQ, ClassLoad)
	h.sm.Register(2, v, 200, gpu.CmpEQ, ClassLoad)
	// Any access — even one that satisfies neither condition — wakes both,
	// with met=false (Mesa hint).
	h.update(0x400, gpu.OpStore, 5)
	if len(h.wakes) != 2 {
		t.Fatalf("sporadic woke %d, want 2", len(h.wakes))
	}
	for _, w := range h.wakes {
		if w.met {
			t.Fatal("sporadic wake claimed the condition was met")
		}
	}
	if h.sm.Waiters() != 0 {
		t.Fatal("sporadic wake left waiters registered")
	}
}

func TestSetConflictSpillsToLog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 1 // every condition maps to one set of Ways entries
	cfg.Ways = 2
	h := newHarness(t, cfg)
	a := gpu.GlobalVar(0x500)
	b := gpu.GlobalVar(0x540)
	c := gpu.GlobalVar(0x580)
	if h.sm.Register(1, a, 1, gpu.CmpEQ, ClassLoad) != Registered {
		t.Fatal("first register spilled")
	}
	if h.sm.Register(2, b, 1, gpu.CmpEQ, ClassLoad) != Registered {
		t.Fatal("second register spilled")
	}
	if got := h.sm.Register(3, c, 1, gpu.CmpEQ, ClassLoad); got != Spilled {
		t.Fatalf("conflicting register = %v, want Spilled", got)
	}
	if h.sm.Log().Len() != 1 {
		t.Fatalf("log has %d entries, want 1", h.sm.Log().Len())
	}
}

func TestWaitListFullSpills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WaitListSize = 2
	h := newHarness(t, cfg)
	v := gpu.GlobalVar(0x600)
	h.sm.Register(1, v, 1, gpu.CmpEQ, ClassLoad)
	h.sm.Register(2, v, 1, gpu.CmpEQ, ClassLoad)
	if got := h.sm.Register(3, v, 1, gpu.CmpEQ, ClassLoad); got != Spilled {
		t.Fatalf("over-capacity register = %v, want Spilled", got)
	}
}

func TestLogFullRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 0 // force everything to the log
	cfg.LogCapacity = 2
	h := newHarness(t, cfg)
	v := gpu.GlobalVar(0x700)
	if h.sm.Register(1, v, 1, gpu.CmpEQ, ClassLoad) != Spilled {
		t.Fatal("expected spill with no cache")
	}
	h.sm.Register(2, v, 1, gpu.CmpEQ, ClassLoad)
	if got := h.sm.Register(3, v, 1, gpu.CmpEQ, ClassLoad); got != Rejected {
		t.Fatalf("register with full log = %v, want Rejected (Mesa retry)", got)
	}
	if h.m.Count.LogRejects != 1 {
		t.Fatalf("LogRejects = %d", h.m.Count.LogRejects)
	}
}

func TestUnregister(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0x800)
	h.sm.Register(1, v, 1, gpu.CmpEQ, ClassLoad)
	if !h.sm.Unregister(1, v, 1, gpu.CmpEQ) {
		t.Fatal("Unregister missed a cached waiter")
	}
	if h.sm.Waiters() != 0 || h.sm.Conditions() != 0 {
		t.Fatal("unregister left state behind")
	}
	// A second withdrawal reports a cache miss, telling the policy the
	// waiter (if it exists at all) is on the spilled log/CP side.
	if h.sm.Unregister(1, v, 1, gpu.CmpEQ) {
		t.Fatal("Unregister reported a hit for an absent waiter")
	}
	h.update(0x800, gpu.OpStore, 1)
	if len(h.wakes) != 0 {
		t.Fatal("unregistered waiter was woken")
	}
}

func TestUnregisterSpilledReportsMiss(t *testing.T) {
	// With no cache, every registration spills: Unregister must report a
	// miss (it no longer touches the log — the CP's Unregister owns the
	// spilled side) and the ring entry must stay live.
	cfg := DefaultConfig()
	cfg.Sets = 0
	h := newHarness(t, cfg)
	v := gpu.GlobalVar(0x840)
	if h.sm.Register(1, v, 1, gpu.CmpEQ, ClassLoad) != Spilled {
		t.Fatal("expected spill with no cache")
	}
	if h.sm.Unregister(1, v, 1, gpu.CmpEQ) {
		t.Fatal("Unregister claimed a cache hit for a spilled waiter")
	}
	if h.sm.Log().Len() != 1 {
		t.Fatalf("log len=%d, want 1 (SyncMon must not tombstone the ring)", h.sm.Log().Len())
	}
}

func TestMonitoredLinePinnedInL2(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0x900)
	h.sm.Register(1, v, 1, gpu.CmpEQ, ClassLoad)
	if !h.m.Mem().L2().Contains(0x900) {
		t.Fatal("monitored line not resident in L2")
	}
	if h.m.Mem().L2().Pinned() != 1 {
		t.Fatalf("pinned lines = %d, want 1", h.m.Mem().L2().Pinned())
	}
	h.sm.Unregister(1, v, 1, gpu.CmpEQ)
	if h.m.Mem().L2().Pinned() != 0 {
		t.Fatal("line still pinned after unmonitor")
	}
}

func TestDistinctConditionsPerAddress(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	v := gpu.GlobalVar(0xa00)
	// Two waiters on different expected values of the same variable (a
	// ticket lock's shape).
	h.sm.Register(1, v, 5, gpu.CmpEQ, ClassLoad)
	h.sm.Register(2, v, 6, gpu.CmpEQ, ClassLoad)
	if h.sm.Conditions() != 2 || h.sm.MonitoredAddrs() != 1 {
		t.Fatalf("conds=%d addrs=%d, want 2/1", h.sm.Conditions(), h.sm.MonitoredAddrs())
	}
	h.update(0xa00, gpu.OpStore, 6)
	if len(h.wakes) != 1 || h.wakes[0].wg != 2 {
		t.Fatalf("wrong waiter woken: %+v", h.wakes)
	}
	// The other condition survives.
	if h.sm.Conditions() != 1 {
		t.Fatalf("conds after partial wake = %d", h.sm.Conditions())
	}
}

func TestHighWaterCounters(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for i := 0; i < 5; i++ {
		h.sm.Register(gpu.WGID(i), gpu.GlobalVar(mem.Addr(0xb00+i*64)), 1, gpu.CmpEQ, ClassLoad)
	}
	if h.m.Count.MaxConditions != 5 || h.m.Count.MaxWaitingWGs != 5 || h.m.Count.MaxMonitoredVars != 5 {
		t.Fatalf("high-water %d/%d/%d, want 5/5/5",
			h.m.Count.MaxConditions, h.m.Count.MaxWaitingWGs, h.m.Count.MaxMonitoredVars)
	}
	for i := 0; i < 5; i++ {
		h.update(mem.Addr(0xb00+i*64), gpu.OpStore, 1)
	}
	// High-water marks persist after the waiters drain.
	if h.m.Count.MaxConditions != 5 {
		t.Fatal("high-water mark reset")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(gpu.OpLoad) != ClassLoad {
		t.Fatal("OpLoad not ClassLoad")
	}
	for _, op := range []gpu.AtomicOp{gpu.OpAdd, gpu.OpExch, gpu.OpCAS, gpu.OpStore} {
		if ClassOf(op) != ClassRMW {
			t.Fatalf("%v not ClassRMW", op)
		}
	}
}

func TestRegisterResultStrings(t *testing.T) {
	if Registered.String() != "registered" || Spilled.String() != "spilled" || Rejected.String() != "rejected" {
		t.Fatal("RegisterResult strings wrong")
	}
}
