package syncmon

import (
	"awgsim/internal/gpu"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// nilRef marks an empty slab link.
const nilRef int32 = -1

// condSlot is one slab-resident condition-cache entry: the (addr, want,
// cmp) tag, its resident set, the intrusive registration-order chain of
// conditions on the same address, and an intrusive FIFO waiter list.
type condSlot struct {
	addr mem.Addr
	want int64
	cmp  gpu.Cmp
	set  int32 // resident set index

	addrNext int32 // next condition on the same address (registration order)

	wHead, wTail int32 // waiter list, FIFO
	wLen         int32

	next int32 // freelist link while unallocated
}

// waiterSlot is one waiting-WG list node.
type waiterSlot struct {
	wt   waiter
	next int32
}

// addrState is the per-address record of the open-addressed index: the
// head/tail of the address's condition chain and the condition count (the
// monitored-bit refcount — present in the index means monitored).
type addrState struct {
	head, tail int32
	count      int32
}

// condStore is the SyncMon condition cache's storage: a fixed-capacity
// condition slab (Sets x Ways, the paper's cache geometry) with flat
// per-set occupancy arrays, a waiter slab bounded by the waiting-WG list
// size, and an open-addressed address index. Every list is intrusive and
// freelist-backed: registering, waking and evicting touch no allocator
// and no Go map, and every order the old map-based representation exposed
// (set scan order, per-address registration order, waiter FIFO) is
// preserved by construction.
type condStore struct {
	stride int     // ways per set at construction (Degrade only shrinks use)
	setEnt []int32 // sets x stride resident refs, insertion order
	setLen []int32

	ents    []condSlot
	freeEnt int32

	wnodes []waiterSlot
	freeW  int32

	byAddr *hashutil.Flat[mem.Addr, addrState]
}

func newCondStore(sets, ways, waitList int) condStore {
	return condStore{
		stride:  ways,
		setEnt:  make([]int32, sets*ways),
		setLen:  make([]int32, sets),
		ents:    make([]condSlot, 0, sets*ways),
		freeEnt: nilRef,
		wnodes:  make([]waiterSlot, 0, waitList),
		freeW:   nilRef,
		byAddr: hashutil.NewFlat[mem.Addr, addrState](64, func(a mem.Addr) uint64 {
			return hashutil.Mix64(uint64(a))
		}),
	}
}

// at returns the slot for ref e; the pointer is stable for the slab's
// lifetime (capacity is fixed at construction, so the backing array never
// moves).
func (cs *condStore) at(e int32) *condSlot { return &cs.ents[e] }

// setSize reports set si's occupancy.
func (cs *condStore) setSize(si int) int { return int(cs.setLen[si]) }

// find scans set si in insertion order for (addr, want, cmp).
func (cs *condStore) find(si int, addr mem.Addr, want int64, cmp gpu.Cmp) int32 {
	base := si * cs.stride
	for i := 0; i < int(cs.setLen[si]); i++ {
		e := cs.setEnt[base+i]
		c := &cs.ents[e]
		if c.addr == addr && c.want == want && c.cmp == cmp {
			return e
		}
	}
	return nilRef
}

// insert allocates a condition in set si (which must have room) and links
// it at the tail of its address chain; firstOnAddr reports whether this
// made the address monitored.
func (cs *condStore) insert(si int, addr mem.Addr, want int64, cmp gpu.Cmp) (e int32, firstOnAddr bool) {
	if cs.freeEnt != nilRef {
		e = cs.freeEnt
		cs.freeEnt = cs.ents[e].next
	} else {
		cs.ents = append(cs.ents, condSlot{})
		e = int32(len(cs.ents) - 1)
	}
	cs.ents[e] = condSlot{addr: addr, want: want, cmp: cmp, set: int32(si),
		addrNext: nilRef, wHead: nilRef, wTail: nilRef}
	cs.setEnt[si*cs.stride+int(cs.setLen[si])] = e
	cs.setLen[si]++
	st := cs.byAddr.Put(addr)
	if st.count == 0 {
		st.head, st.tail = e, e
		firstOnAddr = true
	} else {
		cs.ents[st.tail].addrNext = e
		st.tail = e
	}
	st.count++
	return e, firstOnAddr
}

// drop removes condition e from its set (preserving set order) and its
// address chain, frees any remaining waiter nodes, and returns the entry's
// address plus whether the address just lost its last condition.
func (cs *condStore) drop(e int32) (addr mem.Addr, lastOnAddr bool) {
	c := &cs.ents[e]
	addr = c.addr
	// Splice out of the set, shifting later (younger) ways down.
	base := int(c.set) * cs.stride
	n := int(cs.setLen[c.set])
	for i := 0; i < n; i++ {
		if cs.setEnt[base+i] == e {
			copy(cs.setEnt[base+i:base+n-1], cs.setEnt[base+i+1:base+n])
			break
		}
	}
	cs.setLen[c.set]--
	// Unlink from the address chain.
	st := cs.byAddr.Ref(addr)
	if st.head == e {
		st.head = c.addrNext
		if st.tail == e {
			st.tail = nilRef
		}
	} else {
		prev := st.head
		for cs.ents[prev].addrNext != e {
			prev = cs.ents[prev].addrNext
		}
		cs.ents[prev].addrNext = c.addrNext
		if st.tail == e {
			st.tail = prev
		}
	}
	st.count--
	if st.count == 0 {
		cs.byAddr.Delete(addr)
		lastOnAddr = true
	}
	// Free any waiter nodes still chained (eviction paths clear them
	// first; normal drops happen at wLen == 0).
	for w := c.wHead; w != nilRef; {
		nx := cs.wnodes[w].next
		cs.wnodes[w].next = cs.freeW
		cs.freeW = w
		w = nx
	}
	c.wHead, c.wTail, c.wLen = nilRef, nilRef, 0
	c.next = cs.freeEnt
	cs.freeEnt = e
	return addr, lastOnAddr
}

// addrHead returns the first condition registered on addr, nilRef when the
// address is unmonitored. The chain continues through addrNext in
// registration order.
func (cs *condStore) addrHead(addr mem.Addr) int32 {
	st := cs.byAddr.Ref(addr)
	if st == nil {
		return nilRef
	}
	return st.head
}

// monitoredAddrs reports how many distinct addresses hold conditions.
func (cs *condStore) monitoredAddrs() int { return cs.byAddr.Len() }

// pushWaiter appends wt to e's FIFO waiter list.
func (cs *condStore) pushWaiter(e int32, wt waiter) {
	var w int32
	if cs.freeW != nilRef {
		w = cs.freeW
		cs.freeW = cs.wnodes[w].next
	} else {
		cs.wnodes = append(cs.wnodes, waiterSlot{})
		w = int32(len(cs.wnodes) - 1)
	}
	cs.wnodes[w] = waiterSlot{wt: wt, next: nilRef}
	c := &cs.ents[e]
	if c.wTail == nilRef {
		c.wHead = w
	} else {
		cs.wnodes[c.wTail].next = w
	}
	c.wTail = w
	c.wLen++
}

// popWaiter removes and returns e's oldest waiter.
func (cs *condStore) popWaiter(e int32) waiter {
	c := &cs.ents[e]
	w := c.wHead
	wt := cs.wnodes[w].wt
	c.wHead = cs.wnodes[w].next
	if c.wHead == nilRef {
		c.wTail = nilRef
	}
	c.wLen--
	cs.wnodes[w].next = cs.freeW
	cs.freeW = w
	return wt
}

// shedTailWaiter removes and returns e's youngest waiter (fault-injection
// eviction sheds newest-first).
func (cs *condStore) shedTailWaiter(e int32) waiter {
	c := &cs.ents[e]
	w := c.wTail
	wt := cs.wnodes[w].wt
	if c.wHead == w {
		c.wHead, c.wTail = nilRef, nilRef
	} else {
		prev := c.wHead
		for cs.wnodes[prev].next != w {
			prev = cs.wnodes[prev].next
		}
		cs.wnodes[prev].next = nilRef
		c.wTail = prev
	}
	c.wLen--
	cs.wnodes[w].next = cs.freeW
	cs.freeW = w
	return wt
}

// removeWaiter unlinks the first waiter for wg from e, reporting whether
// it was present.
func (cs *condStore) removeWaiter(e int32, wg gpu.WGID) bool {
	c := &cs.ents[e]
	prev := nilRef
	for w := c.wHead; w != nilRef; w = cs.wnodes[w].next {
		if cs.wnodes[w].wt.wg != wg {
			prev = w
			continue
		}
		if prev == nilRef {
			c.wHead = cs.wnodes[w].next
		} else {
			cs.wnodes[prev].next = cs.wnodes[w].next
		}
		if c.wTail == w {
			c.wTail = prev
		}
		c.wLen--
		cs.wnodes[w].next = cs.freeW
		cs.freeW = w
		return true
	}
	return false
}

// clearWaiters frees e's whole waiter list without delivering anyone,
// returning how many were dropped; eviction paths collect the waiters
// themselves before calling this.
func (cs *condStore) clearWaiters(e int32) int {
	c := &cs.ents[e]
	n := int(c.wLen)
	for w := c.wHead; w != nilRef; {
		nx := cs.wnodes[w].next
		cs.wnodes[w].next = cs.freeW
		cs.freeW = w
		w = nx
	}
	c.wHead, c.wTail, c.wLen = nilRef, nilRef, 0
	return n
}
