package cp

import (
	"awgsim/internal/event"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// Snapshot/Restore for the Command Processor. The spill table is flat POD
// slabs plus two open-addressed indices, so a snapshot is a few slice
// copies. The firmware loop continuations (drainFn/checkFn) are hoisted
// once in Start and live on the engine calendar — the engine snapshot
// carries the pending loop events, and the func values themselves are
// stable, so the Processor only records its bookkeeping. The checkPass
// scratch buffers are excluded: nothing in them survives a pass.
//
// The cadence-jitter hook is a func value whose pseudo-random walk lives in
// the Processor's jitterState (the SetCadenceJitter contract), so saving
// the func reference plus the state word replays the exact skew sequence
// after a rewind.

// Snapshot is a point-in-time copy of a Processor's simulated state.
type Snapshot struct {
	tab         tableSnap
	order       []condKey
	rotate      int
	maxTab      int
	jitter      func(state *uint64, base event.Cycle) event.Cycle
	jitterState uint64
}

// Snapshot captures the processor's mutable state.
func (p *Processor) Snapshot() *Snapshot {
	return &Snapshot{
		tab:         p.tab.snapshot(),
		order:       append([]condKey(nil), p.order...),
		rotate:      p.rotate,
		maxTab:      p.maxTab,
		jitter:      p.jitter,
		jitterState: p.jitterState,
	}
}

// Restore rewinds the processor to the snapshot.
func (p *Processor) Restore(sn *Snapshot) {
	p.tab.restore(&sn.tab)
	p.order = append(p.order[:0], sn.order...)
	p.rotate = sn.rotate
	p.maxTab = sn.maxTab
	p.jitter = sn.jitter
	p.jitterState = sn.jitterState
}

// Bytes estimates the snapshot's memory footprint.
func (sn *Snapshot) Bytes() int {
	return 64 + sn.tab.bytes() + 24*len(sn.order)
}

// tableSnap is a point-in-time copy of a spillTable.
type tableSnap struct {
	ents    []spillSlot
	freeEnt int32
	wnodes  []wgNode
	freeW   int32
	idx     *hashutil.Flat[condKey, int32]
	addrs   *hashutil.Flat[mem.Addr, int32]

	waiters  int
	condLive int
}

func (t *spillTable) snapshot() tableSnap {
	return tableSnap{
		ents:     append([]spillSlot(nil), t.ents...),
		freeEnt:  t.freeEnt,
		wnodes:   append([]wgNode(nil), t.wnodes...),
		freeW:    t.freeW,
		idx:      t.idx.Clone(),
		addrs:    t.addrs.Clone(),
		waiters:  t.waiters,
		condLive: t.condLive,
	}
}

func (t *spillTable) restore(sn *tableSnap) {
	t.ents = append(t.ents[:0], sn.ents...)
	t.freeEnt = sn.freeEnt
	t.wnodes = append(t.wnodes[:0], sn.wnodes...)
	t.freeW = sn.freeW
	t.idx.CopyFrom(sn.idx)
	t.addrs.CopyFrom(sn.addrs)
	t.waiters = sn.waiters
	t.condLive = sn.condLive
}

func (sn *tableSnap) bytes() int {
	return 48*len(sn.ents) + 16*len(sn.wnodes) + 32*(sn.idx.Len()+sn.addrs.Len())
}
