package cp

import (
	"testing"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/syncmon"
)

type nopPolicy struct{}

func (nopPolicy) Name() string              { return "nop" }
func (nopPolicy) Attach(*gpu.Machine) error { return nil }
func (nopPolicy) Wait(*gpu.WG, gpu.Var, gpu.AtomicOp, int64, int64, int64, gpu.Cmp, gpu.WaitHint, func(int64)) {
}

type wakeRec struct {
	wg   gpu.WGID
	addr mem.Addr
	want int64
	met  bool
}

type harness struct {
	m     *gpu.Machine
	log   *syncmon.MonitorLog
	p     *Processor
	wakes []wakeRec
	done  bool
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	spec := &gpu.KernelSpec{Name: "noop", NumWGs: 1, WIsPerWG: 64, Program: func(gpu.Device) {}}
	m, err := gpu.NewMachine(gpu.DefaultConfig(), mem.DefaultConfig(), spec, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{m: m, log: syncmon.NewMonitorLog(64)}
	h.p, err = New(cfg, m, h.log, func(wg gpu.WGID, addr mem.Addr, want int64, met bool) {
		h.wakes = append(h.wakes, wakeRec{wg, addr, want, met})
	})
	if err != nil {
		t.Fatal(err)
	}
	h.p.Start(func() bool { return !h.done })
	return h
}

// runFor advances the engine limit cycles (the firmware loops keep the
// calendar alive, so a bounded run is required).
func (h *harness) runFor(d event.Cycle) {
	h.m.Engine().RunUntil(h.m.Engine().Now() + d)
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}, nil, nil, nil); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := New(Config{DrainInterval: 1, CheckInterval: 1}, nil, nil, nil); err == nil {
		t.Fatal("zero drain batch accepted")
	}
}

func TestDrainAndCheckWakes(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.log.Push(syncmon.LogEntry{Addr: 0x100, Want: 7, Cmp: gpu.CmpEQ, WG: 3})
	// The condition does not hold yet: a drain + check must not wake.
	h.runFor(20_000)
	if len(h.wakes) != 0 {
		t.Fatalf("woken before condition held: %+v", h.wakes)
	}
	if h.p.TableSize() != 1 {
		t.Fatalf("table size %d after drain, want 1", h.p.TableSize())
	}
	// Make the condition hold; the next periodic check wakes the waiter.
	h.m.Mem().Write(0x100, 7)
	h.runFor(20_000)
	if len(h.wakes) != 1 || h.wakes[0].wg != 3 || !h.wakes[0].met {
		t.Fatalf("wakes = %+v", h.wakes)
	}
	if h.p.TableSize() != 0 {
		t.Fatal("condition left in table after wake")
	}
}

func TestCheckHonorsGE(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.log.Push(syncmon.LogEntry{Addr: 0x200, Want: 10, Cmp: gpu.CmpGE, WG: 1})
	h.m.Mem().Write(0x200, 25) // swept past the target
	h.runFor(20_000)
	if len(h.wakes) != 1 {
		t.Fatalf("GE spilled condition missed: %+v", h.wakes)
	}
}

func TestMultipleWaitersOneCondition(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for i := gpu.WGID(0); i < 3; i++ {
		h.log.Push(syncmon.LogEntry{Addr: 0x300, Want: 1, Cmp: gpu.CmpEQ, WG: i})
	}
	h.m.Mem().Write(0x300, 1)
	h.runFor(20_000)
	if len(h.wakes) != 3 {
		t.Fatalf("woke %d of 3 spilled waiters", len(h.wakes))
	}
}

func TestUnregisterAfterDrain(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.log.Push(syncmon.LogEntry{Addr: 0x400, Want: 1, Cmp: gpu.CmpEQ, WG: 5})
	h.runFor(10_000) // drained into the table
	h.p.Unregister(5, gpu.GlobalVar(0x400), 1, gpu.CmpEQ)
	h.m.Mem().Write(0x400, 1)
	h.runFor(20_000)
	if len(h.wakes) != 0 {
		t.Fatalf("unregistered waiter woken: %+v", h.wakes)
	}
	if h.p.TableSize() != 0 {
		t.Fatal("table not empty after unregister")
	}
}

func TestUnregisterBeforeDrainTombstones(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Unregister arrives while the entry is conceptually in flight (the
	// log's own Remove covers the ring; the tombstone covers a popped
	// batch). Simulate by unregistering before any drain and then pushing.
	h.p.Unregister(6, gpu.GlobalVar(0x500), 2, gpu.CmpEQ)
	h.log.Push(syncmon.LogEntry{Addr: 0x500, Want: 2, Cmp: gpu.CmpEQ, WG: 6})
	h.m.Mem().Write(0x500, 2)
	h.runFor(20_000)
	if len(h.wakes) != 0 {
		t.Fatalf("tombstoned waiter woken: %+v", h.wakes)
	}
}

func TestUnregisterConsumesRingEntry(t *testing.T) {
	// The lost-wakeup regression: a waiter spills, its policy timeout fires
	// before any drain, and the WG later re-registers and re-spills the
	// same condition. The withdrawal must consume the ring entry directly —
	// recording a deferred tombstone instead leaves it stale, and the
	// re-spilled entry is silently discarded at drain time (the waiter then
	// never reaches the table and no check pass ever wakes it).
	h := newHarness(t, DefaultConfig())
	h.log.Push(syncmon.LogEntry{Addr: 0xb00, Want: 1, Cmp: gpu.CmpEQ, WG: 7})
	h.p.Unregister(7, gpu.GlobalVar(0xb00), 1, gpu.CmpEQ)
	if h.log.Len() != 0 {
		t.Fatalf("ring entry not consumed by Unregister (log len %d)", h.log.Len())
	}
	// The WG retries, fails again, and spills the same condition again.
	h.log.Push(syncmon.LogEntry{Addr: 0xb00, Want: 1, Cmp: gpu.CmpEQ, WG: 7})
	h.runFor(10_000) // drain
	if h.p.TableSize() != 1 {
		t.Fatal("re-spilled waiter swallowed by a stale tombstone")
	}
	h.m.Mem().Write(0xb00, 1)
	h.runFor(20_000)
	if len(h.wakes) != 1 || h.wakes[0].wg != 7 {
		t.Fatalf("wakes = %+v, want one wake of WG 7", h.wakes)
	}
}

func TestTwoSpilledConditionsMetSamePass(t *testing.T) {
	// Both conditions hold when a check pass starts: the first wake drops
	// its condition from p.order mid-pass, which must not make the walk
	// skip or repeat the second (the pass snapshots its walk first).
	h := newHarness(t, DefaultConfig())
	h.log.Push(syncmon.LogEntry{Addr: 0xc00, Want: 1, Cmp: gpu.CmpEQ, WG: 1})
	h.log.Push(syncmon.LogEntry{Addr: 0xc40, Want: 2, Cmp: gpu.CmpEQ, WG: 2})
	h.m.Mem().Write(0xc00, 1)
	h.m.Mem().Write(0xc40, 2)
	h.runFor(20_000)
	if len(h.wakes) != 2 {
		t.Fatalf("woke %d waiters, want 2: %+v", len(h.wakes), h.wakes)
	}
	if h.wakes[0].wg != 1 || h.wakes[1].wg != 2 {
		t.Fatalf("wake order %+v, want WG 1 then WG 2 (drain arrival)", h.wakes)
	}
	if h.p.TableSize() != 0 {
		t.Fatalf("table size %d after both wakes, want 0", h.p.TableSize())
	}
}

func TestHighWaterMarks(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	for i := 0; i < 4; i++ {
		h.log.Push(syncmon.LogEntry{Addr: mem.Addr(0x600 + i*64), Want: 1, Cmp: gpu.CmpEQ, WG: gpu.WGID(i)})
	}
	h.runFor(10_000)
	if h.p.MaxTableSize() != 4 {
		t.Fatalf("MaxTableSize = %d, want 4", h.p.MaxTableSize())
	}
	if h.m.Count.MaxConditions != 4 || h.m.Count.MaxWaitingWGs != 4 || h.m.Count.MaxMonitoredVars != 4 {
		t.Fatalf("machine high-water %d/%d/%d",
			h.m.Count.MaxConditions, h.m.Count.MaxWaitingWGs, h.m.Count.MaxMonitoredVars)
	}
}

func TestStopEndsFirmwareLoops(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.done = true
	h.runFor(100_000)
	// With the loops stopped, the calendar must drain completely.
	if h.m.Engine().Pending() != 0 {
		t.Fatalf("%d events still pending after stop", h.m.Engine().Pending())
	}
	// Starting twice is a no-op (no panic, no duplicate loops).
	h.p.Start(func() bool { return false })
}

func TestDrainBatchBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DrainBatch = 2
	h := newHarness(t, cfg)
	for i := 0; i < 5; i++ {
		h.log.Push(syncmon.LogEntry{Addr: mem.Addr(0x700 + i*64), Want: 1, Cmp: gpu.CmpEQ, WG: gpu.WGID(i)})
	}
	// One drain pass moves at most 2 entries.
	h.runFor(cfg.DrainInterval + 1)
	if h.p.TableSize() > 2 {
		t.Fatalf("drain pass moved %d entries, batch is 2", h.p.TableSize())
	}
	// Subsequent passes finish the job.
	h.runFor(5 * cfg.DrainInterval)
	if h.p.TableSize() != 5 {
		t.Fatalf("table size %d after all drains, want 5", h.p.TableSize())
	}
}

func TestCheckOrderDeterministic(t *testing.T) {
	// Two identical harnesses must wake spilled waiters in the same order
	// (the check pass walks a deterministic list, never a Go map).
	run := func() []gpu.WGID {
		h := newHarness(t, DefaultConfig())
		for i := 0; i < 8; i++ {
			a := mem.Addr(0x900 + i*64)
			h.log.Push(syncmon.LogEntry{Addr: a, Want: 1, Cmp: gpu.CmpEQ, WG: gpu.WGID(i)})
			h.m.Mem().Write(a, 1) // all conditions already hold
		}
		h.runFor(30_000)
		var order []gpu.WGID
		for _, w := range h.wakes {
			order = append(order, w.wg)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("wake counts %d/%d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("check order diverged: %v vs %v", a, b)
		}
	}
}

func TestRoundRobinRotatesStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Order = OrderRoundRobin
	h := newHarness(t, cfg)
	// Two conditions that never become true: each check pass probes both,
	// but rotation must alternate which is probed first. Observe through
	// wake order once we satisfy them at different times.
	h.log.Push(syncmon.LogEntry{Addr: 0xa00, Want: 1, Cmp: gpu.CmpEQ, WG: 1})
	h.log.Push(syncmon.LogEntry{Addr: 0xa40, Want: 1, Cmp: gpu.CmpEQ, WG: 2})
	h.runFor(20_000) // drained, neither satisfied
	h.m.Mem().Write(0xa00, 1)
	h.m.Mem().Write(0xa40, 1)
	h.runFor(20_000)
	if len(h.wakes) != 2 {
		t.Fatalf("woke %d, want 2", len(h.wakes))
	}
}
