package cp

import (
	"reflect"
	"testing"
)

// fieldNames returns a struct type's field names in declaration order.
func fieldNames(v any) []string {
	rt := reflect.TypeOf(v)
	names := make([]string, rt.NumField())
	for i := range names {
		names[i] = rt.Field(i).Name
	}
	return names
}

// TestSnapshotCoversProcessor pins the field lists of the CP's stateful
// structs. If one fails, a field was added (or renamed): decide whether it
// is replayable state, teach Snapshot()/Restore() about it, and update the
// list here.
func TestSnapshotCoversProcessor(t *testing.T) {
	// Covered: tab, order, rotate, maxTab, jitter. Excluded: cfg/m/log/wake/
	// drainFn/checkFn (construction wiring), started/stopped (started flips
	// once before the first event and stopped only at teardown — both are
	// constant across the window snapshots are taken in), scratch/wakeBuf
	// (transient per-pass buffers, empty between events).
	processor := []string{
		"cfg", "m", "log", "wake", "tab", "order", "rotate", "maxTab",
		"started", "stopped", "jitter", "jitterState", "drainFn", "checkFn",
		"scratch", "wakeBuf",
	}
	// Covered in full: the slab table is pure replayable state.
	table := []string{
		"ents", "freeEnt", "wnodes", "freeW", "idx", "addrs", "waiters",
		"condLive",
	}
	for _, c := range []struct {
		name string
		got  []string
		want []string
	}{
		{"cp.Processor", fieldNames(Processor{}), processor},
		{"cp.spillTable", fieldNames(spillTable{}), table},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s fields changed without updating Snapshot():\n  got  %v\n  want %v", c.name, c.got, c.want)
		}
	}
}
