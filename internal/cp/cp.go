// Package cp models the Command Processor firmware extensions of Section
// V: the CP stays off the critical path, handling only the high-latency,
// uncommon operations — draining the Monitor Log into a look-up-efficient
// in-memory table, periodically checking the waiting conditions of spilled
// synchronization variables, and (through the machine's dispatcher) the
// context-switch legs of WG scheduling.
package cp

import (
	"fmt"

	"awgsim/internal/event"
	"awgsim/internal/gpu"
	"awgsim/internal/mem"
	"awgsim/internal/syncmon"
)

// DrainOrder selects how the CP walks spilled conditions during a check
// pass. The paper notes the Monitor Log "may contain younger waiting
// conditions than the SyncMon Cache", creating fairness issues it leaves
// to future work; these two orders bracket the space.
type DrainOrder int

const (
	// OrderFIFO checks conditions oldest-first (drain arrival order).
	OrderFIFO DrainOrder = iota
	// OrderRoundRobin rotates the starting point across passes so no
	// address is persistently checked last.
	OrderRoundRobin
)

// Config tunes the firmware's cadence.
type Config struct {
	// DrainInterval is how often the CP parses new Monitor Log entries.
	DrainInterval event.Cycle
	// CheckInterval is how often the CP re-checks spilled conditions.
	CheckInterval event.Cycle
	// DrainBatch bounds entries parsed per drain pass.
	DrainBatch int
	// Order selects the check pass's walk order.
	Order DrainOrder
}

// DefaultConfig returns a cadence that keeps spilled waiters' extra
// latency in the tens of microseconds, as a firmware loop would.
func DefaultConfig() Config {
	return Config{DrainInterval: 8_000, CheckInterval: 8_000, DrainBatch: 256}
}

type condKey struct {
	addr mem.Addr
	want int64
	cmp  gpu.Cmp
}

// Processor is the firmware model. It owns the spilled-condition table;
// the SyncMon owns the fast path.
type Processor struct {
	cfg  Config
	m    *gpu.Machine
	log  *syncmon.MonitorLog
	wake syncmon.WakeFunc

	tab    spillTable // slab-backed spilled-condition store
	order  []condKey  // check order (drain arrival order)
	rotate int        // round-robin start offset
	maxTab int

	started bool        //lint:allow snapcover lifecycle latch set by Start; restore targets an already-started processor
	stopped func() bool //lint:allow snapcover engine-stop probe wired at start; function values are re-wired, not snapshotted
	// jitter perturbs loop cadence; its pseudo-random walk lives in
	// jitterState (not a closure variable) so Snapshot/Restore rewinds it.
	jitter      func(state *uint64, base event.Cycle) event.Cycle
	jitterState uint64

	drainFn, checkFn func()     //lint:allow snapcover hoisted episode continuations wired once at start; a restored processor reuses the armed loops
	scratch          []condKey  //lint:allow snapcover reusable scratch, rebuilt from the table every pass; dead between passes
	wakeBuf          []gpu.WGID //lint:allow snapcover reusable scratch, rebuilt from the table every pass; dead between passes
}

// New builds a processor draining log on machine m. wake delivers met
// conditions to the policy. stopped, if non-nil, lets the owner end the
// periodic firmware loop (e.g. when the kernel completes).
func New(cfg Config, m *gpu.Machine, log *syncmon.MonitorLog, wake syncmon.WakeFunc) (*Processor, error) {
	if cfg.DrainInterval == 0 || cfg.CheckInterval == 0 || cfg.DrainBatch <= 0 {
		return nil, fmt.Errorf("cp: bad config %+v", cfg)
	}
	return &Processor{
		cfg:  cfg,
		m:    m,
		log:  log,
		wake: wake,
		tab:  newSpillTable(),
	}, nil
}

// SetCadenceJitter installs a hook that perturbs the firmware loops'
// rescheduling intervals (fault injection models a busy or descheduled CP
// by stretching its cadence). The hook receives the configured base
// interval and returns the one to use; nil restores the exact cadence.
// Hooks must keep any evolving randomness in *state (seeded here) rather
// than in captured variables, so a machine snapshot restore replays the
// same skew sequence.
func (p *Processor) SetCadenceJitter(f func(state *uint64, base event.Cycle) event.Cycle, seed uint64) {
	p.jitter = f
	p.jitterState = seed
}

// SetCadenceScale stretches the firmware loops' cadence by a constant
// integer factor — the fleet layer's thermal-throttle model: a derated
// device clocks its command processor down with its CUs. factor <= 1
// restores the exact cadence. Implemented through the jitter hook with no
// evolving state, so it composes with snapshot rewinds trivially; a
// subsequent SetCadenceJitter (e.g. a JitterCP fault) replaces it.
func (p *Processor) SetCadenceScale(factor int) {
	if factor <= 1 {
		p.SetCadenceJitter(nil, 0)
		return
	}
	f := event.Cycle(factor)
	p.SetCadenceJitter(func(_ *uint64, base event.Cycle) event.Cycle { return base * f }, 0)
}

// cadence applies the jitter hook to a base interval, keeping the result
// at least one cycle so the loops always advance.
func (p *Processor) cadence(base event.Cycle) event.Cycle {
	if p.jitter != nil {
		base = p.jitter(&p.jitterState, base)
	}
	if base == 0 {
		base = 1
	}
	return base
}

// Start arms the periodic firmware loops. stopUnless reports whether the
// loops should keep running (typically "kernel not finished").
func (p *Processor) Start(keepRunning func() bool) {
	if p.started {
		return
	}
	p.started = true
	p.stopped = func() bool { return keepRunning != nil && !keepRunning() }
	p.drainFn = p.drainPass
	p.checkFn = p.checkPass
	p.m.Engine().After(p.cadence(p.cfg.DrainInterval), p.drainFn)
	p.m.Engine().After(p.cadence(p.cfg.CheckInterval), p.checkFn)
}

// TableSize reports current spilled conditions tracked.
func (p *Processor) TableSize() int { return p.tab.waiters }

// MaxTableSize reports the high-water mark, the "Monitor Table" series of
// Figure 13.
func (p *Processor) MaxTableSize() int { return p.maxTab }

// Unregister withdraws a waiter (its policy timeout fired) so a later
// drain or check does not wake it spuriously. The waiter is in exactly one
// of three places: the table (drained), the Monitor Log ring (spilled, not
// yet drained), or a drain batch in flight. Only the last needs a deferred
// tombstone — recording one when the ring removal already succeeded leaves
// it stale, and it would silently swallow the WG's *next* spill on the same
// condition (a lost wakeup: the waiter never reaches the table and no check
// pass ever resumes it).
func (p *Processor) Unregister(wg gpu.WGID, v gpu.Var, want int64, cmp gpu.Cmp) {
	k := condKey{v.Addr.WordAligned(), want, cmp}
	if p.tab.removeWaiter(k, wg) {
		return
	}
	if p.log.Remove(wg, k.addr, k.want) > 0 {
		// Still physically in the ring; the tombstone there is consumed when
		// a drain pops past it, so no drain-time state is needed.
		return
	}
	// Popped into a drain batch but not yet in the table: remember the
	// tombstone for drain time.
	p.tab.addTombstone(k, wg)
}

// drainPass moves log entries into the table.
func (p *Processor) drainPass() {
	if p.stopped() {
		return
	}
	for i := 0; i < p.cfg.DrainBatch; i++ {
		e, ok := p.log.Pop()
		if !ok {
			break
		}
		k := condKey{e.Addr, e.Want, e.Cmp}
		if p.tab.consumeTombstone(k, e.WG) {
			continue
		}
		if p.tab.addWaiter(k, e.WG) {
			p.order = append(p.order, k)
		}
		if p.tab.waiters > p.maxTab {
			p.maxTab = p.tab.waiters
		}
		p.noteHighWater()
	}
	p.m.Engine().After(p.cadence(p.cfg.DrainInterval), p.drainFn)
}

// dropCond removes a condition from the table, maintaining the address
// index and check order, and returns its waiters in FIFO order (valid
// until the next dropCond).
func (p *Processor) dropCond(k condKey) []gpu.WGID {
	ws := p.tab.dropWaiters(k, p.wakeBuf[:0])
	p.wakeBuf = ws
	for i, o := range p.order {
		if o == k {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return ws
}

// noteHighWater folds the CP's occupancy into the machine counters — the
// Figure 13 series: waiting conditions, monitored addresses, waiting WGs,
// and the monitor table.
func (p *Processor) noteHighWater() {
	if p.tab.condLive > p.m.Count.MaxConditions {
		p.m.Count.MaxConditions = p.tab.condLive
	}
	if p.tab.waiters > p.m.Count.MaxWaitingWGs {
		p.m.Count.MaxWaitingWGs = p.tab.waiters
	}
	if n := p.tab.monitoredAddrs(); n > p.m.Count.MaxMonitoredVars {
		p.m.Count.MaxMonitoredVars = n
	}
}

// checkPass issues an L2 read per spilled condition and wakes the waiters
// of conditions that now hold ("asynchronous periodic condition check").
func (p *Processor) checkPass() {
	if p.stopped() {
		return
	}
	// Walk in a deterministic order: drain arrival (FIFO) or rotated
	// round-robin. Map iteration order would break replay determinism.
	//
	// Snapshot the walk before issuing anything: a check result runs
	// dropCond, which splices p.order, so indexing the live slice with the
	// pass's stale length would skip or repeat conditions once the first
	// met condition of the pass is dropped.
	n := len(p.order)
	start := 0
	if p.cfg.Order == OrderRoundRobin && n > 0 {
		start = p.rotate % n
		p.rotate++
	}
	keys := p.scratch[:0]
	for i := 0; i < n; i++ {
		keys = append(keys, p.order[(start+i)%n])
	}
	p.scratch = keys
	for _, k := range keys {
		t := p.m.Engine().NewTask(runCheckResult)
		t.Env[0] = p
		t.I[0] = int64(k.addr)
		t.I[1] = k.want
		t.I[2] = int64(k.cmp)
		p.m.IssueAtomicTask(nil, gpu.GlobalVar(k.addr), gpu.OpLoad, 0, 0, t)
	}
	p.m.Engine().After(p.cadence(p.cfg.CheckInterval), p.checkFn)
}

// runCheckResult receives one condition check's L2 read (the value in
// I[gpu.AtomicRet]) and wakes the condition's waiters if it now holds.
func runCheckResult(t *event.Task) {
	p := t.Env[0].(*Processor)
	k := condKey{mem.Addr(t.I[0]), t.I[1], gpu.Cmp(t.I[2])}
	if !k.cmp.Test(t.I[gpu.AtomicRet], k.want) {
		return
	}
	if !p.tab.inTable(k) {
		return
	}
	ws := p.dropCond(k)
	for _, wg := range ws {
		p.wake(wg, k.addr, k.want, true)
	}
}
