package cp

import (
	"testing"

	"awgsim/internal/gpu"
	"awgsim/internal/mem"
)

// spillModel mirrors spillTable semantics with the pre-slab representation:
// a map of waiter FIFOs and a map of tombstone sets (order-free membership).
type spillModel struct {
	waiters map[condKey][]gpu.WGID
	tombs   map[condKey][]gpu.WGID
}

// keyspace enumerates the finite condition space the test drives, in a
// fixed order (4 addresses x 3 wants x 2 cmps).
func keyspace() []condKey {
	var ks []condKey
	for a := mem.Addr(0); a < 4*4; a += 4 {
		for w := int64(0); w < 3; w++ {
			for c := gpu.Cmp(0); c < 2; c++ {
				ks = append(ks, condKey{addr: a, want: w, cmp: c})
			}
		}
	}
	return ks
}

func (m *spillModel) check(t *testing.T, tab *spillTable, step int) {
	t.Helper()
	total, condLive := 0, 0
	liveAddrs := map[mem.Addr]bool{}
	for _, k := range keyspace() {
		ws := m.waiters[k]
		total += len(ws)
		if len(ws) > 0 {
			condLive++
			liveAddrs[k.addr] = true
		}
		if got := tab.inTable(k); got != (len(ws) > 0) {
			t.Fatalf("step %d: inTable(%+v) = %v, oracle %v", step, k, got, len(ws) > 0)
		}
		// dropWaiters is the only reader of waiter order; probing it would
		// mutate, so diff the FIFO by walking the slot chain directly.
		if e := tab.lookup(k); e != nilRef {
			w := tab.ents[e].wHead
			for i, want := range ws {
				if w == nilRef || tab.wnodes[w].wg != want {
					t.Fatalf("step %d: cond %+v waiter[%d] diverges from oracle %v", step, k, i, ws)
				}
				w = tab.wnodes[w].next
			}
			if w != nilRef {
				t.Fatalf("step %d: cond %+v waiter list longer than oracle %v", step, k, ws)
			}
			// Tombstones are a set: same size, every table entry in the model.
			rn := 0
			for r := tab.ents[e].rHead; r != nilRef; r = tab.wnodes[r].next {
				found := false
				for _, tw := range m.tombs[k] {
					if tw == tab.wnodes[r].wg {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("step %d: cond %+v has tombstone %d the oracle lacks", step, k, tab.wnodes[r].wg)
				}
				rn++
			}
			if rn != len(m.tombs[k]) {
				t.Fatalf("step %d: cond %+v has %d tombstones, oracle %d", step, k, rn, len(m.tombs[k]))
			}
		} else if len(ws) > 0 || len(m.tombs[k]) > 0 {
			t.Fatalf("step %d: cond %+v missing from table, oracle ws=%v tombs=%v", step, k, ws, m.tombs[k])
		}
	}
	if tab.waiters != total {
		t.Fatalf("step %d: waiters = %d, oracle %d", step, tab.waiters, total)
	}
	if tab.condLive != condLive {
		t.Fatalf("step %d: condLive = %d, oracle %d", step, tab.condLive, condLive)
	}
	if tab.monitoredAddrs() != len(liveAddrs) {
		t.Fatalf("step %d: monitoredAddrs = %d, oracle %d", step, tab.monitoredAddrs(), len(liveAddrs))
	}
}

// TestSpillTableOracle drives the slab spill table and a map-based oracle
// through a long seeded-random op sequence, diffing waiter order, counters,
// tombstone membership, and every returned value at each step. Freelist
// reuse after drops/consumes is exactly what the interleaving stresses.
func TestSpillTableOracle(t *testing.T) {
	ks := keyspace()
	for _, seed := range []uint64{1, 0x5eed, 0xdecafbad} {
		tab := newSpillTable()
		m := spillModel{waiters: map[condKey][]gpu.WGID{}, tombs: map[condKey][]gpu.WGID{}}
		rng := seed
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		for step := 0; step < 4000; step++ {
			k := ks[next(len(ks))]
			wg := gpu.WGID(next(8))
			switch next(6) {
			case 0, 1: // addWaiter (weighted: the table needs occupancy)
				wantNew := len(m.waiters[k]) == 0
				if got := tab.addWaiter(k, wg); got != wantNew {
					t.Fatalf("seed %#x step %d: addWaiter(%+v,%d) = %v, oracle %v", seed, step, k, wg, got, wantNew)
				}
				m.waiters[k] = append(m.waiters[k], wg)
			case 2: // removeWaiter (first match)
				want := false
				for j, w := range m.waiters[k] {
					if w == wg {
						m.waiters[k] = append(m.waiters[k][:j], m.waiters[k][j+1:]...)
						want = true
						break
					}
				}
				if got := tab.removeWaiter(k, wg); got != want {
					t.Fatalf("seed %#x step %d: removeWaiter(%+v,%d) = %v, oracle %v", seed, step, k, wg, got, want)
				}
			case 3: // dropWaiters (check-met wake): FIFO order must match
				got := tab.dropWaiters(k, nil)
				want := m.waiters[k]
				if len(got) != len(want) {
					t.Fatalf("seed %#x step %d: dropWaiters(%+v) = %v, oracle %v", seed, step, k, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %#x step %d: dropWaiters(%+v) = %v, oracle %v", seed, step, k, got, want)
					}
				}
				delete(m.waiters, k)
			case 4: // addTombstone (set semantics)
				tab.addTombstone(k, wg)
				dup := false
				for _, w := range m.tombs[k] {
					if w == wg {
						dup = true
						break
					}
				}
				if !dup {
					m.tombs[k] = append(m.tombs[k], wg)
				}
			case 5: // consumeTombstone
				want := false
				for j, w := range m.tombs[k] {
					if w == wg {
						m.tombs[k] = append(m.tombs[k][:j], m.tombs[k][j+1:]...)
						want = true
						break
					}
				}
				if got := tab.consumeTombstone(k, wg); got != want {
					t.Fatalf("seed %#x step %d: consumeTombstone(%+v,%d) = %v, oracle %v", seed, step, k, wg, got, want)
				}
			}
			if step%37 == 0 || step > 3900 {
				m.check(t, &tab, step)
			}
		}
		m.check(t, &tab, 4000)
	}
}
