package cp

import (
	"awgsim/internal/gpu"
	"awgsim/internal/hashutil"
	"awgsim/internal/mem"
)

// nilRef marks an empty slab link.
const nilRef int32 = -1

// spillSlot is one slab-resident spilled condition. A slot exists while it
// has live waiters (it is "in the table") or pending removed-tombstones (a
// waiter withdrawn while its log entry sat in a drain batch in flight —
// the PR 3 single-home bookkeeping, now a flagged list on the same slot
// instead of a separate map of maps).
type spillSlot struct {
	key condKey

	wHead, wTail int32 // live waiters, drain arrival order (FIFO)
	wLen         int32

	rHead int32 // removed-tombstone WGs awaiting drain consumption
	rLen  int32

	next int32 // freelist link while unallocated
}

// wgNode is one waiter/tombstone list node.
type wgNode struct {
	wg   gpu.WGID
	next int32
}

// spillTable is the CP's in-memory spilled-condition store: a slab of
// condition slots indexed by an open-addressed (addr, want, cmp) table,
// with intrusive freelist-backed waiter and tombstone lists and an
// open-addressed per-address condition counter. It replaces the
// table/removed/addrs Go maps; the check-order walk stays with the
// Processor (drain arrival order is a slice, exactly as before).
type spillTable struct {
	ents    []spillSlot
	freeEnt int32

	wnodes []wgNode
	freeW  int32

	idx   *hashutil.Flat[condKey, int32]  // key -> 1-based slot ref (0 = fresh)
	addrs *hashutil.Flat[mem.Addr, int32] // in-table conditions per address

	waiters  int // total live waiters (the old inTable)
	condLive int // conditions with live waiters (the old len(table))
}

func newSpillTable() spillTable {
	hashKey := func(k condKey) uint64 {
		h := hashutil.Mix64(uint64(k.addr))
		h = hashutil.Mix64(h ^ uint64(k.want))
		return hashutil.Mix64(h ^ uint64(k.cmp))
	}
	return spillTable{
		freeEnt: nilRef,
		freeW:   nilRef,
		idx:     hashutil.NewFlat[condKey, int32](64, hashKey),
		addrs: hashutil.NewFlat[mem.Addr, int32](64, func(a mem.Addr) uint64 {
			return hashutil.Mix64(uint64(a))
		}),
	}
}

// monitoredAddrs reports distinct addresses with in-table conditions.
func (t *spillTable) monitoredAddrs() int { return t.addrs.Len() }

func (t *spillTable) lookup(k condKey) int32 {
	p := t.idx.Ref(k)
	if p == nil {
		return nilRef
	}
	return *p - 1
}

func (t *spillTable) getOrCreate(k condKey) int32 {
	p := t.idx.Put(k)
	if *p == 0 {
		e := t.alloc(k)
		*p = e + 1
		return e
	}
	return *p - 1
}

func (t *spillTable) alloc(k condKey) int32 {
	var e int32
	if t.freeEnt != nilRef {
		e = t.freeEnt
		t.freeEnt = t.ents[e].next
	} else {
		t.ents = append(t.ents, spillSlot{})
		e = int32(len(t.ents) - 1)
	}
	t.ents[e] = spillSlot{key: k, wHead: nilRef, wTail: nilRef, rHead: nilRef}
	return e
}

// maybeFree releases e once it holds neither waiters nor tombstones.
func (t *spillTable) maybeFree(e int32) {
	s := &t.ents[e]
	if s.wLen > 0 || s.rLen > 0 {
		return
	}
	t.idx.Delete(s.key)
	s.next = t.freeEnt
	t.freeEnt = e
}

func (t *spillTable) pushNode(head, tail *int32, wg gpu.WGID) {
	var w int32
	if t.freeW != nilRef {
		w = t.freeW
		t.freeW = t.wnodes[w].next
	} else {
		t.wnodes = append(t.wnodes, wgNode{})
		w = int32(len(t.wnodes) - 1)
	}
	t.wnodes[w] = wgNode{wg: wg, next: nilRef}
	if *tail == nilRef {
		*head = w
	} else {
		t.wnodes[*tail].next = w
	}
	*tail = w
}

// addWaiter appends wg to k's waiter list (drain arrival order),
// reporting whether the condition just entered the table.
func (t *spillTable) addWaiter(k condKey, wg gpu.WGID) (newCond bool) {
	e := t.getOrCreate(k)
	s := &t.ents[e]
	newCond = s.wLen == 0
	t.pushNode(&s.wHead, &s.wTail, wg)
	s.wLen++
	t.waiters++
	if newCond {
		t.condLive++
		*t.addrs.Put(k.addr)++
	}
	return newCond
}

// removeWaiter unlinks wg from k's waiter list (a policy-timeout
// withdrawal), reporting whether it was present.
func (t *spillTable) removeWaiter(k condKey, wg gpu.WGID) bool {
	e := t.lookup(k)
	if e == nilRef {
		return false
	}
	s := &t.ents[e]
	prev := nilRef
	for w := s.wHead; w != nilRef; w = t.wnodes[w].next {
		if t.wnodes[w].wg != wg {
			prev = w
			continue
		}
		if prev == nilRef {
			s.wHead = t.wnodes[w].next
		} else {
			t.wnodes[prev].next = t.wnodes[w].next
		}
		if s.wTail == w {
			s.wTail = prev
		}
		s.wLen--
		t.wnodes[w].next = t.freeW
		t.freeW = w
		t.waiters--
		if s.wLen == 0 {
			t.condLive--
			t.addrDec(k.addr)
			t.maybeFree(e)
		}
		return true
	}
	return false
}

// dropWaiters removes condition k from the table entirely, appending its
// waiters to buf in FIFO order (the check-met wake path).
func (t *spillTable) dropWaiters(k condKey, buf []gpu.WGID) []gpu.WGID {
	e := t.lookup(k)
	if e == nilRef {
		return buf
	}
	s := &t.ents[e]
	for w := s.wHead; w != nilRef; {
		buf = append(buf, t.wnodes[w].wg)
		nx := t.wnodes[w].next
		t.wnodes[w].next = t.freeW
		t.freeW = w
		w = nx
	}
	t.waiters -= int(s.wLen)
	if s.wLen > 0 {
		t.condLive--
		t.addrDec(k.addr)
	}
	s.wHead, s.wTail, s.wLen = nilRef, nilRef, 0
	t.maybeFree(e)
	return buf
}

// inTable reports whether k currently has live waiters.
func (t *spillTable) inTable(k condKey) bool {
	e := t.lookup(k)
	return e != nilRef && t.ents[e].wLen > 0
}

// addTombstone records that wg withdrew from k while its spill was in a
// drain batch in flight. Set semantics: a WG is recorded at most once per
// condition, as with the old map-of-sets.
func (t *spillTable) addTombstone(k condKey, wg gpu.WGID) {
	e := t.getOrCreate(k)
	s := &t.ents[e]
	for w := s.rHead; w != nilRef; w = t.wnodes[w].next {
		if t.wnodes[w].wg == wg {
			return
		}
	}
	// Tombstone list order is immaterial (membership only): push at head.
	var w int32
	if t.freeW != nilRef {
		w = t.freeW
		t.freeW = t.wnodes[w].next
	} else {
		t.wnodes = append(t.wnodes, wgNode{})
		w = int32(len(t.wnodes) - 1)
	}
	t.wnodes[w] = wgNode{wg: wg, next: s.rHead}
	s.rHead = w
	s.rLen++
}

// consumeTombstone removes wg's tombstone on k if present (a drain pop
// matching a withdrawn waiter), reporting whether one was consumed.
func (t *spillTable) consumeTombstone(k condKey, wg gpu.WGID) bool {
	e := t.lookup(k)
	if e == nilRef {
		return false
	}
	s := &t.ents[e]
	prev := nilRef
	for w := s.rHead; w != nilRef; w = t.wnodes[w].next {
		if t.wnodes[w].wg != wg {
			prev = w
			continue
		}
		if prev == nilRef {
			s.rHead = t.wnodes[w].next
		} else {
			t.wnodes[prev].next = t.wnodes[w].next
		}
		s.rLen--
		t.wnodes[w].next = t.freeW
		t.freeW = w
		t.maybeFree(e)
		return true
	}
	return false
}

func (t *spillTable) addrDec(a mem.Addr) {
	p := t.addrs.Ref(a)
	*p--
	if *p == 0 {
		t.addrs.Delete(a)
	}
}
