package mem

import "sync"

// Tag-array recycling. Every machine allocates (and the runtime zeroes)
// a few hundred KB of cacheLine arrays; the experiment sweeps build
// hundreds of machines per suite. Released arrays are guaranteed all-zero
// (release invalidates through the touched-set list), so NewCache can
// adopt one without the big memclr.

type cacheSlabs struct {
	lines      []cacheLine
	touchedSet []bool
	touched    []int32
}

var slabPool struct {
	mu    sync.Mutex
	byGeo map[[2]int][]cacheSlabs // key: {sets, ways}
}

const slabPoolCapPerGeo = 128

func getSlabs(sets, ways int) (cacheSlabs, bool) {
	slabPool.mu.Lock()
	defer slabPool.mu.Unlock()
	list := slabPool.byGeo[[2]int{sets, ways}]
	if n := len(list); n > 0 {
		s := list[n-1]
		list[n-1] = cacheSlabs{}
		slabPool.byGeo[[2]int{sets, ways}] = list[:n-1]
		return s, true
	}
	return cacheSlabs{}, false
}

func putSlabs(sets, ways int, s cacheSlabs) {
	slabPool.mu.Lock()
	defer slabPool.mu.Unlock()
	if slabPool.byGeo == nil {
		slabPool.byGeo = make(map[[2]int][]cacheSlabs)
	}
	key := [2]int{sets, ways}
	if len(slabPool.byGeo[key]) < slabPoolCapPerGeo {
		slabPool.byGeo[key] = append(slabPool.byGeo[key], s)
	}
}

// release zeroes the cache's occupied sets (restoring the all-zero array
// the touched-set invariant promises) and returns its slabs to the pool.
// The cache must not be used afterward.
func (c *Cache) release() {
	c.InvalidateAll()
	putSlabs(c.sets, c.ways, cacheSlabs{lines: c.lines, touchedSet: c.touchedSet, touched: c.touched[:0]})
	c.lines, c.touchedSet, c.touched = nil, nil, nil
}

// ReleaseBuffers returns the hierarchy's tag arrays to the recycle pool
// for a later NewSystem. It must be the caller's last use of the system;
// snapshots taken from it stay valid (they own their storage).
func (s *System) ReleaseBuffers() {
	for _, c := range s.l1 {
		c.release()
	}
	s.l2.release()
}
