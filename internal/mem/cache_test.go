package mem

import (
	"testing"
	"testing/quick"
)

// mustCache builds a cache, failing the test on a geometry error.
func mustCache(t *testing.T, sizeBytes, ways, lineSize int) *Cache {
	t.Helper()
	c, err := NewCache(sizeBytes, ways, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheGeometry(t *testing.T) {
	c := mustCache(t, 32<<10, 16, 64) // Table 1 L1
	if c.Sets() != 32 {
		t.Fatalf("32KB/16-way/64B cache has %d sets, want 32", c.Sets())
	}
	c2 := mustCache(t, 512<<10, 16, 64) // Table 1 L2
	if c2.Sets() != 512 {
		t.Fatalf("512KB/16-way/64B cache has %d sets, want 512", c2.Sets())
	}
}

func TestCacheBadGeometryErrors(t *testing.T) {
	if _, err := NewCache(100, 16, 64); err == nil {
		t.Fatal("non-multiple cache size accepted")
	}
	if _, err := NewCache(0, 16, 64); err == nil {
		t.Fatal("zero-size cache accepted")
	}
	if _, err := NewCache(1024, 0, 64); err == nil {
		t.Fatal("zero-way cache accepted")
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	if c.Access(0x40, true) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x40, true) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x7f, true) {
		t.Fatal("same-line offset missed")
	}
	if c.Access(0x80, true) {
		t.Fatal("different line hit")
	}
}

func TestCacheNoAllocate(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	c.Access(0x40, false)
	if c.Contains(0x40) {
		t.Fatal("no-allocate access filled the line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache, one set worth of conflicting lines: A, B fill the set;
	// touching A then inserting C must evict B.
	c := mustCache(t, 128, 2, 64) // 1 set, 2 ways
	a, b, d := Addr(0), Addr(64), Addr(128)
	c.Access(a, true)
	c.Access(b, true)
	c.Access(a, true) // refresh A
	c.Access(d, true) // evicts LRU = B
	if !c.Contains(a) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Contains(d) {
		t.Fatal("newly inserted line absent")
	}
}

func TestCachePinSurvivesConflicts(t *testing.T) {
	c := mustCache(t, 128, 2, 64) // 1 set, 2 ways
	lock := Addr(0)
	if !c.Pin(lock) {
		t.Fatal("pin failed on empty set")
	}
	// Stream many conflicting lines through the set.
	for i := 1; i <= 100; i++ {
		c.Access(Addr(i*64), true)
	}
	if !c.Contains(lock) {
		t.Fatal("pinned (monitored) line was evicted by conflict misses")
	}
	c.Unpin(lock)
	for i := 101; i <= 300; i++ {
		c.Access(Addr(i*64), true)
	}
	if c.Contains(lock) {
		t.Fatal("unpinned line survived 200 conflicting fills in a 2-way set")
	}
}

func TestCacheFullyPinnedSetBypasses(t *testing.T) {
	c := mustCache(t, 128, 2, 64) // 1 set, 2 ways
	c.Pin(0)
	c.Pin(64)
	if c.Pinned() != 2 {
		t.Fatalf("pinned %d lines, want 2", c.Pinned())
	}
	c.Access(128, true) // should bypass, not evict a pinned line
	if c.Contains(128) {
		t.Fatal("access allocated into a fully pinned set")
	}
	if !c.Contains(0) || !c.Contains(64) {
		t.Fatal("pinned line lost in fully pinned set")
	}
	// A third pin in the same set must fail.
	if c.Pin(128) {
		t.Fatal("pin succeeded in a fully pinned set")
	}
}

func TestCachePinIdempotent(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	c.Pin(0x40)
	c.Pin(0x40)
	if c.Pinned() != 1 {
		t.Fatalf("double pin counted %d, want 1", c.Pinned())
	}
	c.Unpin(0x40)
	c.Unpin(0x40)
	if c.Pinned() != 0 {
		t.Fatalf("double unpin counted %d, want 0", c.Pinned())
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	c.Pin(0x40)
	c.Access(0x80, true)
	c.InvalidateAll()
	if c.Contains(0x40) || c.Contains(0x80) {
		t.Fatal("lines survived InvalidateAll")
	}
	if c.Pinned() != 0 {
		t.Fatalf("pinned count %d after InvalidateAll", c.Pinned())
	}
}

// TestCacheProperty: after any access sequence, an immediate re-access of
// the last allocated address must hit (working-set-of-one property), and
// the number of valid lines never exceeds capacity.
func TestCacheProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mustCache(t, 2048, 4, 64)
		for _, a16 := range addrs {
			a := Addr(a16)
			c.Access(a, true)
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitRate(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	if c.HitRate() != 0 {
		t.Fatal("hit rate non-zero before any access")
	}
	c.Access(0, true)
	c.Access(0, true)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %f, want 0.5", got)
	}
}
