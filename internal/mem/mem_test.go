package mem

import (
	"testing"

	"awgsim/internal/event"
)

func newSys(t *testing.T) (*System, *event.Engine) {
	t.Helper()
	eng := event.New()
	s, err := NewSystem(DefaultConfig(), eng, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestSystemValidation(t *testing.T) {
	eng := event.New()
	bad := DefaultConfig()
	bad.L2Banks = 0
	if _, err := NewSystem(bad, eng, 8); err == nil {
		t.Fatal("zero-bank config accepted")
	}
	if _, err := NewSystem(DefaultConfig(), eng, 0); err == nil {
		t.Fatal("zero-CU system accepted")
	}
}

func TestValueStoreWordGranularity(t *testing.T) {
	s, _ := newSys(t)
	s.Write(0x100, 42)
	if got := s.Read(0x100); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	// Sub-word offsets address the same word.
	if got := s.Read(0x104); got != 42 {
		t.Fatalf("Read(offset 4) = %d, want 42 (same word)", got)
	}
	if got := s.Read(0x108); got != 0 {
		t.Fatalf("Read(next word) = %d, want 0", got)
	}
}

func TestAtomicTimingUncontended(t *testing.T) {
	s, _ := newSys(t)
	cfg := s.Config()
	applyAt, respAt := s.AtomicTiming(0x1000)
	// Cold atomic: L2 travel + bank service + DRAM miss penalty.
	wantApply := cfg.L2Latency + cfg.AtomicService + cfg.DRAMLatency
	if applyAt != wantApply {
		t.Fatalf("cold applyAt = %d, want %d", applyAt, wantApply)
	}
	if respAt != applyAt+cfg.L2Latency {
		t.Fatalf("respAt = %d, want applyAt+%d", respAt, cfg.L2Latency)
	}
}

func TestAtomicSecondAccessHitsL2(t *testing.T) {
	s, eng := newSys(t)
	cfg := s.Config()
	s.AtomicTiming(0x1000)
	// Move past the first atomic's bank reservation.
	eng.At(10000, func() {})
	eng.Run()
	applyAt, _ := s.AtomicTiming(0x1000)
	want := eng.Now() + cfg.L2Latency + cfg.AtomicService
	if applyAt != want {
		t.Fatalf("warm applyAt = %d, want %d (no DRAM penalty)", applyAt, want)
	}
}

func TestAtomicBankSerialization(t *testing.T) {
	s, _ := newSys(t)
	cfg := s.Config()
	a := Addr(0x1000)
	// Warm the line so DRAM is out of the picture.
	s.AtomicTiming(a)
	base := Stats{}
	_ = base
	var lastApply event.Cycle
	const n = 10
	for i := 0; i < n; i++ {
		applyAt, _ := s.AtomicTiming(a)
		if applyAt <= lastApply {
			t.Fatalf("atomic %d applied at %d, not after previous %d", i, applyAt, lastApply)
		}
		if lastApply != 0 && applyAt != lastApply+cfg.AtomicService {
			t.Fatalf("atomic %d applied at %d, want back-to-back %d", i, applyAt, lastApply+cfg.AtomicService)
		}
		lastApply = applyAt
	}
	if s.Stats().BankWait == 0 {
		t.Fatal("serialized atomics recorded no bank wait")
	}
}

func TestAtomicsToDifferentBanksDontQueue(t *testing.T) {
	s, eng := newSys(t)
	if s.bankOf(0) == s.bankOf(64) {
		t.Fatal("adjacent lines mapped to same bank")
	}
	// Warm both lines, then let the banks drain.
	s.AtomicTiming(0)
	s.AtomicTiming(64)
	eng.At(100000, func() {})
	eng.Run()
	wait0 := s.Stats().BankWait
	// Back-to-back atomics to different banks must proceed in parallel.
	a1, _ := s.AtomicTiming(0)
	a2, _ := s.AtomicTiming(64)
	if a1 != a2 {
		t.Fatalf("different-bank atomics serialized: %d vs %d", a1, a2)
	}
	if s.Stats().BankWait != wait0 {
		t.Fatalf("different-bank atomics recorded bank wait")
	}
}

func TestLoadHierarchy(t *testing.T) {
	s, _ := newSys(t)
	cfg := s.Config()
	a := Addr(0x2000)
	// Cold: L1 + L2 + DRAM.
	if got := s.LoadTiming(0, a); got != cfg.L1Latency+cfg.L2Latency+cfg.DRAMLatency {
		t.Fatalf("cold load = %d", got)
	}
	// Warm: L1 hit.
	if got := s.LoadTiming(0, a); got != cfg.L1Latency {
		t.Fatalf("warm load = %d, want L1 %d", got, cfg.L1Latency)
	}
	// Different CU: misses its own L1 but hits shared L2.
	if got := s.LoadTiming(1, a); got != cfg.L1Latency+cfg.L2Latency {
		t.Fatalf("cross-CU load = %d, want L1+L2", got)
	}
	st := s.Stats()
	if st.L1Hits != 1 || st.L1Miss != 2 {
		t.Fatalf("L1 hits/misses = %d/%d, want 1/2", st.L1Hits, st.L1Miss)
	}
}

func TestStoreWritesThrough(t *testing.T) {
	s, _ := newSys(t)
	a := Addr(0x3000)
	s.StoreTiming(0, a)
	st := s.Stats()
	if st.Stores != 1 {
		t.Fatalf("stores = %d", st.Stores)
	}
	// Write-through: the line is now in L2, so a load from another CU's
	// perspective should be an L2 hit.
	cfg := s.Config()
	if got := s.LoadTiming(1, a); got != cfg.L1Latency+cfg.L2Latency {
		t.Fatalf("load after write-through = %d, want L1+L2 hit", got)
	}
}

func TestLocalAtomicCheaperThanGlobal(t *testing.T) {
	s, _ := newSys(t)
	// Warm the global line first so both are steady-state.
	s.AtomicTiming(0x1000)
	_, gResp := s.AtomicTiming(0x1000)
	_, lResp := s.LocalAtomicTiming(0, 0x9000)
	gCost := gResp - s.Config().L2Latency // remove queue skew from first atomic
	if lResp >= gCost {
		t.Fatalf("local atomic (%d) not cheaper than global (%d)", lResp, gCost)
	}
}

func TestLocalAtomicPerCUSerialization(t *testing.T) {
	s, _ := newSys(t)
	a1, _ := s.LocalAtomicTiming(0, 0x100)
	a2, _ := s.LocalAtomicTiming(0, 0x100)
	if a2 <= a1 {
		t.Fatal("same-CU local atomics did not serialize")
	}
	b1, _ := s.LocalAtomicTiming(1, 0x100)
	if b1 != a1 {
		t.Fatalf("different-CU local atomic queued (%d vs %d)", b1, a1)
	}
}

func TestContextTrafficScalesWithSize(t *testing.T) {
	s, _ := newSys(t)
	small := s.ContextTraffic(2 << 10)
	s2, _ := newSys(t)
	large := s2.ContextTraffic(10 << 10)
	if large <= small {
		t.Fatalf("10KB context (%d) not slower than 2KB (%d)", large, small)
	}
	if s.Stats().ContextBytes != 2<<10 {
		t.Fatalf("context bytes = %d", s.Stats().ContextBytes)
	}
}

func TestContextTrafficZero(t *testing.T) {
	s, eng := newSys(t)
	if got := s.ContextTraffic(0); got != eng.Now() {
		t.Fatalf("zero-byte context transfer took until %d", got)
	}
}

func TestContextTrafficUsesChannels(t *testing.T) {
	// With 4 channels, 8 lines take 2 service slots, not 8.
	s, _ := newSys(t)
	cfg := s.Config()
	done := s.ContextTraffic(8 * cfg.LineSize)
	want := cfg.L2Latency + cfg.DRAMLatency + 2*cfg.DRAMService
	if done != want {
		t.Fatalf("8-line transfer done at %d, want %d", done, want)
	}
}

func TestInvalidateCU(t *testing.T) {
	s, _ := newSys(t)
	cfg := s.Config()
	a := Addr(0x4000)
	s.LoadTiming(0, a)
	s.InvalidateCU(0)
	if got := s.LoadTiming(0, a); got != cfg.L1Latency+cfg.L2Latency {
		t.Fatalf("load after invalidate = %d, want L1 miss + L2 hit", got)
	}
}
